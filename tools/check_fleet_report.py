#!/usr/bin/env python3
"""Validator for ``sweep --fleet-report`` / ``--fleet-prom`` output.

Checks an ``ospredict-fleet-v1`` document (the store-backed worker
telemetry aggregation of src/driver/fleet.hh) for structural and
arithmetic consistency, and optionally the matching Prometheus text
exposition:

  * schema tag, required fields and field types
  * cell counts: the per-state buckets partition the total, and
    ``outstanding`` equals total - done - failed
  * every worker: owner/pid/phase/version/epoch present and sane
    (version a positive integer, phase running|exited, cell wall
    totals consistent with the executed-cell count)
  * fleet totals are exactly the column sums of the per-worker
    stats, including the dropped-trace-event attribution
  * merged metrics are in sorted (component, name) order and every
    histogram's bucket counts sum to its count
  * the Prometheus file (--prom): every sample line parses, every
    metric is TYPE-declared before its first sample, histogram
    bucket series are cumulative and close with le="+Inf" == count

CI assertions for the kill-a-worker scenario:

  --expect-workers N   exactly N worker snapshots
  --expect-dead OWNER  OWNER's snapshot exists, is still in phase
                       "running" (a SIGKILLed worker never publishes
                       its exited snapshot) and shows at least one
                       claim — the victim's partial progress must be
                       visible and attributed
  --min-reclaimed N    the fleet reclaimed at least N leases (the
                       survivors must have taken over the victim's)

Exit status 0 when everything holds; 1 with a diagnostic otherwise.

Usage:
  tools/check_fleet_report.py REPORT.json [--prom FILE]
      [--expect-workers N] [--expect-dead OWNER] [--min-reclaimed N]
"""

import argparse
import json
import re
import sys

SCHEMA = "ospredict-fleet-v1"

STAT_FIELDS = ("claimed", "executed", "committed", "reclaimed",
               "retries_recorded", "exhausted", "lost_leases",
               "polls", "heartbeats", "refreshes")
CELL_STATES = ("done", "failed", "claimed", "retry", "unclaimed")


class Bad(Exception):
    pass


def need(obj, key, kind, what):
    if not isinstance(obj, dict) or key not in obj:
        raise Bad(f"{what}: missing field {key!r}")
    value = obj[key]
    if kind is int and isinstance(value, bool):
        raise Bad(f"{what}.{key}: got a bool, want {kind.__name__}")
    if not isinstance(value, kind):
        raise Bad(f"{what}.{key}: got {type(value).__name__}, "
                  f"want {kind.__name__}")
    return value


def check_stats(stats, what):
    for field in STAT_FIELDS:
        if need(stats, field, int, what) < 0:
            raise Bad(f"{what}.{field} is negative")


def check_metrics(metrics, what):
    """Sorted-order and histogram-arithmetic checks on one
    telemetry section (the compact snapshot codec of
    src/obs/snapshot_io.hh)."""
    for section, shape in (("counters", list), ("gauges", list),
                           ("histograms", list)):
        need(metrics, section, shape, what)
    for section in ("counters", "gauges"):
        keys = []
        for entry in metrics[section]:
            if not isinstance(entry, list) or len(entry) != 3:
                raise Bad(f"{what}.{section}: entry {entry!r} is "
                          "not a [component, name, value] triple")
            keys.append((entry[0], entry[1]))
        if keys != sorted(keys):
            raise Bad(f"{what}.{section} is not in sorted "
                      "(component, name) order")
    keys = []
    for h in metrics["histograms"]:
        comp = need(h, "component", str, f"{what}.histograms")
        name = need(h, "name", str, f"{what}.histograms")
        count = need(h, "count", int, f"{what}.histograms")
        need(h, "sum", int, f"{what}.histograms")
        buckets = need(h, "buckets", list, f"{what}.histograms")
        keys.append((comp, name))
        total = 0
        prev_low = -1
        for b in buckets:
            if not isinstance(b, list) or len(b) != 2:
                raise Bad(f"{what} histogram {comp}/{name}: bucket "
                          f"{b!r} is not a [low, count] pair")
            low, n = b
            if low <= prev_low:
                raise Bad(f"{what} histogram {comp}/{name}: bucket "
                          "lows not strictly ascending")
            prev_low = low
            total += n
        if total != count:
            raise Bad(f"{what} histogram {comp}/{name}: buckets "
                      f"sum to {total}, count says {count}")
    if keys != sorted(keys):
        raise Bad(f"{what}.histograms is not in sorted "
                  "(component, name) order")


def check_report(doc, args):
    if need(doc, "schema", str, "report") != SCHEMA:
        raise Bad(f"schema is {doc['schema']!r}, want {SCHEMA!r}")
    need(doc, "fingerprint", str, "report")
    heartbeat = need(doc, "heartbeat", int, "report")

    cells = need(doc, "cells", dict, "report")
    total = need(cells, "total", int, "cells")
    by_state = {s: need(cells, s, int, "cells") for s in CELL_STATES}
    if sum(by_state.values()) != total:
        raise Bad(f"cell states sum to {sum(by_state.values())}, "
                  f"total says {total}")
    outstanding = need(cells, "outstanding", int, "cells")
    want = total - by_state["done"] - by_state["failed"]
    if outstanding != want:
        raise Bad(f"outstanding is {outstanding}, want {want}")

    totals = need(doc, "totals", dict, "report")
    check_stats(totals, "totals")
    need(totals, "rings_with_drops", int, "totals")
    need(totals, "total_dropped", int, "totals")

    workers = need(doc, "workers", list, "report")
    sums = {field: 0 for field in STAT_FIELDS}
    drop_sums = {"rings_with_drops": 0, "total_dropped": 0}
    owners = set()
    for w in workers:
        owner = need(w, "owner", str, "worker")
        what = f"worker {owner}"
        if owner in owners:
            raise Bad(f"{what} appears twice")
        owners.add(owner)
        need(w, "pid", int, what)
        if need(w, "version", int, what) < 1:
            raise Bad(f"{what}: version must be >= 1")
        epoch = need(w, "epoch", int, what)
        if epoch > heartbeat:
            raise Bad(f"{what}: epoch {epoch} is ahead of the "
                      f"heartbeat {heartbeat}")
        phase = need(w, "phase", str, what)
        if phase not in ("running", "exited"):
            raise Bad(f"{what}: phase {phase!r}")
        lag = need(w, "heartbeat_lag", int, what)
        if lag != heartbeat - epoch:
            raise Bad(f"{what}: heartbeat_lag {lag}, want "
                      f"{heartbeat - epoch}")
        stats = need(w, "stats", dict, what)
        check_stats(stats, what)
        for field in STAT_FIELDS:
            sums[field] += stats[field]
        for field in drop_sums:
            drop_sums[field] += need(w, field, int, what)
        executed_cells = need(w, "cells_executed", int, what)
        if executed_cells != stats["executed"]:
            raise Bad(f"{what}: cells_executed {executed_cells} "
                      f"mismatches stats.executed "
                      f"{stats['executed']}")
        need(w, "cell_wall_us_total", int, what)
        need(w, "events", int, what)
        need(w, "events_dropped", int, what)
    for field in STAT_FIELDS:
        if totals[field] != sums[field]:
            raise Bad(f"totals.{field} is {totals[field]}, worker "
                      f"sum is {sums[field]}")
    for field, total_drops in drop_sums.items():
        if totals[field] != total_drops:
            raise Bad(f"totals.{field} is {totals[field]}, worker "
                      f"sum is {total_drops}")

    check_metrics(need(doc, "metrics", dict, "report"), "metrics")

    if (args.expect_workers is not None
            and len(workers) != args.expect_workers):
        raise Bad(f"{len(workers)} worker snapshot(s), expected "
                  f"{args.expect_workers}")
    if args.expect_dead is not None:
        dead = next((w for w in workers
                     if w["owner"] == args.expect_dead), None)
        if dead is None:
            raise Bad(f"no snapshot for expected-dead worker "
                      f"{args.expect_dead!r} (its last published "
                      "transaction must survive the kill)")
        if dead["phase"] != "running":
            raise Bad(f"dead worker {args.expect_dead!r} published "
                      "an exited snapshot — it was not killed "
                      "mid-run")
        if dead["stats"]["claimed"] < 1:
            raise Bad(f"dead worker {args.expect_dead!r} shows no "
                      "claims; its partial progress was lost")
    if (args.min_reclaimed is not None
            and totals["reclaimed"] < args.min_reclaimed):
        raise Bad(f"fleet reclaimed {totals['reclaimed']} "
                  f"lease(s), expected >= {args.min_reclaimed}")
    return workers


SAMPLE_RE = re.compile(
    r'^([a-zA-Z_:][a-zA-Z0-9_:]*)'
    r'(?:\{([^}]*)\})?'
    r' (-?[0-9]+(?:\.[0-9]+)?(?:[eE][+-]?[0-9]+)?|[+-]Inf|NaN)$')
LABEL_RE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*="(?:[^"\\]|\\.)*"$')


def check_prom(text):
    """Prometheus text-exposition lint: sample framing, TYPE-before-
    sample, cumulative histogram bucket series ending at +Inf."""
    typed = {}
    sampled = 0
    # metric -> list of (le, value) for *_bucket series without
    # distinguishing label sets (the exporter emits one series per
    # histogram, so this is exact for our output).
    buckets = {}
    counts = {}
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "histogram"):
                raise Bad(f"prom line {lineno}: malformed TYPE")
            typed[parts[2]] = parts[3]
            continue
        if line.startswith("#"):
            continue
        m = SAMPLE_RE.match(line)
        if not m:
            raise Bad(f"prom line {lineno}: unparsable sample "
                      f"{line!r}")
        name, labels, value = m.groups()
        base = re.sub(r'_(bucket|sum|count)$', '', name)
        if base not in typed and name not in typed:
            raise Bad(f"prom line {lineno}: sample {name} has no "
                      "preceding # TYPE")
        for label in (labels.split(",") if labels else []):
            if not LABEL_RE.match(label):
                raise Bad(f"prom line {lineno}: malformed label "
                          f"{label!r}")
        sampled += 1
        if name.endswith("_bucket"):
            le = dict(l.split("=", 1) for l in
                      labels.split(","))["le"].strip('"')
            buckets.setdefault(base, []).append((le, float(value)))
        elif name.endswith("_count") and typed.get(base) == \
                "histogram":
            counts[base] = float(value)
    for base, series in buckets.items():
        if series[-1][0] != "+Inf":
            raise Bad(f"prom histogram {base}: bucket series does "
                      "not end at le=\"+Inf\"")
        values = [v for _, v in series]
        if values != sorted(values):
            raise Bad(f"prom histogram {base}: bucket values are "
                      "not cumulative")
        if base in counts and values[-1] != counts[base]:
            raise Bad(f"prom histogram {base}: +Inf bucket "
                      f"{values[-1]} mismatches _count "
                      f"{counts[base]}")
    if sampled == 0:
        raise Bad("prom file has no samples")
    return sampled


def main() -> int:
    ap = argparse.ArgumentParser(
        description="Validate an ospredict-fleet-v1 report.")
    ap.add_argument("report", help="fleet report JSON path")
    ap.add_argument("--prom", default=None,
                    help="also validate this Prometheus text file")
    ap.add_argument("--expect-workers", type=int, default=None)
    ap.add_argument("--expect-dead", default=None,
                    help="owner id of a worker killed mid-run")
    ap.add_argument("--min-reclaimed", type=int, default=None)
    args = ap.parse_args()

    try:
        with open(args.report) as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_fleet_report: {e}", file=sys.stderr)
        return 1

    try:
        workers = check_report(doc, args)
        samples = 0
        if args.prom is not None:
            with open(args.prom) as f:
                samples = check_prom(f.read())
    except Bad as e:
        print(f"check_fleet_report: {args.report}: {e}",
              file=sys.stderr)
        return 1
    except OSError as e:
        print(f"check_fleet_report: {e}", file=sys.stderr)
        return 1

    summary = ", ".join(
        f"{w['owner']}[{w['phase']},v{w['version']}]"
        for w in workers)
    print(f"{args.report}: OK — {len(workers)} worker(s): "
          f"{summary}"
          + (f"; prom: {samples} samples" if samples else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
