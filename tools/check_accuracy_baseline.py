#!/usr/bin/env python3
"""Gate a sweep's accuracy section against a committed baseline.

Usage: check_accuracy_baseline.py RESULTS_JSON BASELINE_JSON \
           [--backend plt|learned]

Structure is compared exactly (same sweep, same backend, same set
of accuracy cells, audits present); numerics are compared with
tolerances, because cluster formation and cycle sums shift slightly
across compilers and optimisation levels (FP contraction), and the
point of the gate is catching *accuracy regressions*, not bit
drift:

  - prediction/audit counts must stay within `count_rtol` of the
    baseline (a collapse in prediction coverage or audit volume is
    a regression even if errors look fine);
  - the audit-estimated end-to-end error and the oracle-measured
    error must stay within `err_atol` of the baseline values;
  - the oracle error must fall within the ledger's own reported
    95% CI whenever the baseline says it did (the repo's headline
    cross-check);
  - per-predictor summary rollups (mean/worst oracle cycle error
    and mean coverage across every workload in the sweep) must
    stay within `err_atol` of the baseline.

Each predictor backend gates against its own committed baseline:
`--backend` (default plt) asserts the results document was produced
by that backend before any numeric comparison, so a plt run can
never green-light the learned baseline or vice versa.

Regenerate a baseline (after an intentional accuracy change):

  ./bench/sweep fig08 --smoke --no-timing --out smoke.json
  ./tools/check_accuracy_baseline.py smoke.json \
      bench/baselines/accuracy_smoke.json --update
  ./bench/sweep fig08 --smoke --no-timing --backend learned \
      --out smoke-learned.json
  ./tools/check_accuracy_baseline.py smoke-learned.json \
      bench/baselines/accuracy_smoke_learned.json \
      --backend learned --update
"""

import argparse
import json
import sys

COUNT_RTOL = 0.25
ERR_ATOL = 0.05


def fail(msg):
    print(f"accuracy baseline: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def cell_key(cell):
    return (cell["workload"], cell["predictor"],
            cell["l2_bytes"], cell["seed_index"])


def doc_backends(doc):
    """The set of predictor backends that produced the document.

    The sweep only emits a "backends" array when some variant uses
    a non-default backend, so its absence means plt throughout.
    """
    return set(doc["sweep"].get("backends", ["plt"]))


def distil(doc, backend):
    """Reduce a results document to the gated quantities."""
    backends = doc_backends(doc)
    if backends != {backend}:
        fail(f"results produced by backend(s) "
             f"{sorted(backends)}, expected [{backend!r}]")
    acc = doc.get("accuracy")
    if acc is None:
        fail("results document has no 'accuracy' section")
    if acc.get("schema") != "ospredict-accuracy-v1":
        fail(f"unexpected accuracy schema {acc.get('schema')!r}")
    cells = {}
    for cell in acc["cells"]:
        ledger = cell["ledger"]
        entry = {
            "predictions": ledger["predictions"],
            "audits": ledger["audits"],
            "audit_failures": ledger["audit_failures"],
            "drifting_clusters": ledger["drifting_clusters"],
        }
        est = ledger.get("estimate")
        if est is not None:
            entry["est_rel_total_err"] = est["rel_total_err"]
            if "ci95" in est:
                entry["est_ci95"] = est["ci95"]
        oracle = cell.get("oracle")
        if oracle is not None:
            entry["oracle_rel_err"] = oracle["rel_err"]
            if "within_ci" in oracle:
                entry["within_ci"] = oracle["within_ci"]
        cells["/".join(map(str, cell_key(cell)))] = entry
    # Per-predictor rollups cover every workload in the sweep, not
    # just the cells that accumulated audit samples: a backend that
    # silently degraded on a workload without audits still moves
    # mean/worst oracle error here.
    summary = {}
    for pred in doc["summary"]["predictors"]:
        summary[pred["predictor"]] = {
            "cells": pred["cells"],
            "mean_cycle_error": pred["mean_cycle_error"],
            "worst_cycle_error": pred["worst_cycle_error"],
            "mean_coverage": pred["mean_coverage"],
        }
    return {
        "schema": "ospredict-accuracy-baseline-v1",
        "sweep": doc["sweep"]["name"],
        "smoke": doc["sweep"].get("smoke", False),
        "backend": backend,
        "count_rtol": COUNT_RTOL,
        "err_atol": ERR_ATOL,
        "cells": cells,
        "summary": summary,
    }


def close_count(got, want, rtol):
    return abs(got - want) <= max(1, rtol * max(abs(want), 1))


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("results")
    ap.add_argument("baseline")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the results")
    ap.add_argument("--backend", default="plt",
                    choices=["plt", "learned"],
                    help="predictor backend the results (and the "
                         "baseline) must belong to")
    args = ap.parse_args()

    with open(args.results) as f:
        got = distil(json.load(f), args.backend)

    if args.update:
        with open(args.baseline, "w") as f:
            json.dump(got, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"accuracy baseline: wrote {args.baseline} "
              f"({len(got['cells'])} cells)")
        return

    with open(args.baseline) as f:
        want = json.load(f)
    if want.get("schema") != "ospredict-accuracy-baseline-v1":
        fail(f"bad baseline schema {want.get('schema')!r}")
    if got["sweep"] != want["sweep"] or got["smoke"] != want["smoke"]:
        fail(f"sweep mismatch: results {got['sweep']!r} "
             f"smoke={got['smoke']} vs baseline {want['sweep']!r} "
             f"smoke={want['smoke']}")
    if want.get("backend", "plt") != args.backend:
        fail(f"baseline belongs to backend "
             f"{want.get('backend', 'plt')!r}, "
             f"but --backend {args.backend} was requested")

    rtol = want.get("count_rtol", COUNT_RTOL)
    atol = want.get("err_atol", ERR_ATOL)
    if set(got["cells"]) != set(want["cells"]):
        fail(f"accuracy cell set changed: "
             f"results {sorted(got['cells'])} vs "
             f"baseline {sorted(want['cells'])}")

    for key, base in want["cells"].items():
        cur = got["cells"][key]
        for field in ("predictions", "audits"):
            if not close_count(cur[field], base[field], rtol):
                fail(f"{key}: {field} {cur[field]} drifted from "
                     f"baseline {base[field]} (rtol {rtol})")
        if cur["audits"] == 0:
            fail(f"{key}: no audit samples")
        for field in ("est_rel_total_err", "oracle_rel_err"):
            if field in base:
                if field not in cur:
                    fail(f"{key}: {field} disappeared")
                if abs(cur[field] - base[field]) > atol:
                    fail(f"{key}: {field} {cur[field]:+.4f} "
                         f"drifted from baseline "
                         f"{base[field]:+.4f} (atol {atol})")
        if base.get("within_ci") and not cur.get("within_ci"):
            fail(f"{key}: oracle error left the audit estimate's "
                 f"95% CI (baseline agreed)")

    # Summary rollups (absent from baselines written before the
    # backend dimension existed; regenerate with --update to arm).
    want_summary = want.get("summary", {})
    if want_summary:
        if set(got["summary"]) != set(want_summary):
            fail(f"predictor summary set changed: "
                 f"results {sorted(got['summary'])} vs "
                 f"baseline {sorted(want_summary)}")
        for label, base in want_summary.items():
            cur = got["summary"][label]
            if cur["cells"] != base["cells"]:
                fail(f"summary[{label}]: cell count "
                     f"{cur['cells']} != baseline {base['cells']}")
            for field in ("mean_cycle_error", "worst_cycle_error",
                          "mean_coverage"):
                if abs(cur[field] - base[field]) > atol:
                    fail(f"summary[{label}]: {field} "
                         f"{cur[field]:.4f} drifted from baseline "
                         f"{base[field]:.4f} (atol {atol})")

    print(f"accuracy baseline: OK [{args.backend}] "
          f"({len(want['cells'])} cells, "
          f"{len(want_summary)} predictor rollups, "
          f"count_rtol {rtol}, err_atol {atol})")


if __name__ == "__main__":
    main()
