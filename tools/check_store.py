#!/usr/bin/env python3
"""Offline integrity checker for ospredict page-store files.

Independently re-implements the on-disk format of
src/store/page_store.hh (dual checksummed meta pages, two-level
copy-on-write B+tree, freelist run) and validates a store file
without linking the simulator:

  * both meta slots are parsed; each is checked for magic, version,
    FNV-1a checksum, and bounds (numPages within the file, root and
    freelist in range) — the valid slot with the larger txid is the
    live one, mirroring PageStore::open()
  * the live tree is walked: the root directory run, every leaf
    (header id/flags/record framing, keys sorted and in-bounds) and
    every overflow value run
  * the freelist run is decoded and checked for range, duplicates
    and overlap with reachable pages
  * the claim/lease keyspace of distributed sweeps
    (src/store/claim_table.hh) is cross-checked: every
    ``claim/<fp>/<cellkey>`` record must decode (owner, known
    state, epoch, retries), a done claim must have its matching
    ``cell/<fp>/<cellkey>`` value, a live claim must *not* (commit
    writes both atomically), no owner may hold two live claims at
    once (workers claim one cell per transaction), and no claim may
    be newer than its fingerprint's ``claimhb/<fp>`` heartbeat
  * the cell result keyspace (src/driver/cell_io.cc) is validated:
    every ``cell/<fp>/<cellkey>`` value must be a valid
    ``ospredict-cell-v1`` document, and any cell recorded under a
    sampled run mode (RunMode::Sampled / RunMode::SampledAccel)
    must carry a well-formed ``sample`` section — interval/stratum
    bookkeeping, the stratified estimate and its CI fields, and one
    4-tuple per stratum — so a store written by a pre-sampling
    binary (or hand-edited) is rejected instead of silently
    assembling sampled cells with no estimates
  * the fleet telemetry keyspace (src/driver/fleet.hh) is
    cross-checked: every ``fleet/<fp>/<owner>`` value must be a
    valid ``ospredict-worker-v1`` snapshot whose owner field matches
    the key path, whose publish version is a positive integer, and
    whose version and epoch do not exceed the fingerprint's
    heartbeat (every publish rides a transaction that bumps the
    heartbeat exactly once, so version <= heartbeat is an invariant
    of the publish protocol, not a coincidence)

Exit status 0 means the store is healthy (a report is printed,
``--json`` for machine-readable form); any corruption exits 1 with
a diagnostic on stderr. CI runs this after the cold and warm smoke
sweeps, after the distributed-sweep assembly (with ``--no-orphans``:
a live or retry-state claim surviving assembly means a cell was
lost), and over a corpus of deliberately truncated files (which
must all fail).

Usage:
  tools/check_store.py STORE [--json] [--expect-keys N] [--no-orphans]
"""

import argparse
import json
import struct
import sys

PAGE_HEADER_SIZE = 16
STORE_MAGIC = 0x4F535044  # "OSPD"
STORE_VERSION = 1
MAX_KEY_SIZE = 1024
META_BYTES = 56
# Page sizes probed for meta slot 1 when slot 0 is torn (must match
# the candidate list in PageStore::open()).
PROBE_PAGE_SIZES = (4096, 8192, 16384, 32768, 65536)

FLAG_FREELIST = 0x02
FLAG_BRANCH = 0x04
FLAG_LEAF = 0x08
FLAG_OVERFLOW = 0x10


def fnv1a64(data: bytes) -> int:
    """64-bit FNV-1a — the same function as util/hash.hh."""
    h = 0xCBF29CE484222325
    for b in data:
        h ^= b
        h = (h * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return h


class Corrupt(Exception):
    pass


class Meta:
    FMT = "<IIII4Q"  # magic version pageSize reserved root freelist numPages txid

    def __init__(self, raw: bytes):
        (self.magic, self.version, self.page_size, self.reserved,
         self.root, self.freelist, self.num_pages,
         self.txid) = struct.unpack(self.FMT, raw[:48])
        (self.checksum,) = struct.unpack("<Q", raw[48:56])

    def valid(self, page_size: int, file_len: int) -> bool:
        """Mirror of metaValid() in page_store.cc."""
        if self.magic != STORE_MAGIC or self.version != STORE_VERSION:
            return False
        if self.page_size != page_size or self.page_size < 512:
            return False
        if self.checksum != fnv1a64(bytes(self_raw48(self))):
            return False
        if self.num_pages < 2 or self.num_pages * self.page_size > file_len:
            return False
        if self.root >= self.num_pages or self.freelist >= self.num_pages:
            return False
        return True


def self_raw48(m: Meta) -> bytes:
    return struct.pack(Meta.FMT, m.magic, m.version, m.page_size,
                       m.reserved, m.root, m.freelist, m.num_pages,
                       m.txid)


def page_header(data: bytes, page_size: int, pid: int):
    off = pid * page_size
    if off + PAGE_HEADER_SIZE > len(data):
        raise Corrupt(f"page {pid} beyond file")
    hid, flags, count, overflow = struct.unpack_from("<QHHI", data, off)
    if hid != pid:
        raise Corrupt(f"page {pid} header id {hid}")
    return flags, count, overflow


def run_data(data: bytes, page_size: int, pid: int, want_flag: int,
             what: str) -> bytes:
    """The payload of the run starting at @p pid (headers stripped
    from the first page only — runs are contiguous after it)."""
    flags, _, overflow = page_header(data, page_size, pid)
    if not flags & want_flag:
        raise Corrupt(f"{what} page {pid} has flags {flags:#x}")
    run_pages = 1 + overflow
    start = pid * page_size
    end = start + run_pages * page_size
    if end > len(data):
        raise Corrupt(f"{what} run {pid}(+{overflow}) beyond file")
    return data[start + PAGE_HEADER_SIZE:end]


def pick_meta(data: bytes, path: str):
    """Both meta slots, validated; the live one; per-slot status."""
    file_len = len(data)
    slots = []

    m0 = None
    if file_len >= PAGE_HEADER_SIZE + META_BYTES:
        m0 = Meta(data[PAGE_HEADER_SIZE:PAGE_HEADER_SIZE + META_BYTES])
        if not m0.valid(m0.page_size, file_len):
            m0 = None
    if m0:
        slots.append(m0)
        candidates = (m0.page_size,)
    else:
        candidates = PROBE_PAGE_SIZES
    for ps in candidates:
        off = ps + PAGE_HEADER_SIZE
        if file_len < off + META_BYTES:
            continue
        m1 = Meta(data[off:off + META_BYTES])
        if m1.valid(ps, file_len):
            slots.append(m1)
            break

    if not slots:
        raise Corrupt(f"no valid meta page in '{path}' "
                      "(corrupt or truncated store)")
    live = max(slots, key=lambda m: m.txid)
    return live, len(slots)


def walk_tree(data: bytes, meta: Meta):
    """Validate the live tree; returns (stats, reachable page set,
    coordination view). The coordination view is what the claim and
    payload checkers need: claim records, heartbeats, cell results
    and fleet snapshots by key (raw values)."""
    ps = meta.page_size
    reachable = {0, 1}
    stats = {"leaf_pages": 0, "overflow_pages": 0,
             "root_run_pages": 0, "keys": 0, "value_bytes": 0}
    coord = {"claims": {}, "heartbeats": {}, "cells": {},
             "fleet": {}}
    if meta.root == 0:
        return stats, reachable, coord

    # Root directory run: count, then (leaf u64, ksize u32, key).
    _, _, root_ov = page_header(data, ps, meta.root)
    stats["root_run_pages"] = 1 + root_ov
    reachable.update(range(meta.root, meta.root + 1 + root_ov))
    payload = run_data(data, ps, meta.root, FLAG_BRANCH, "root")
    (count,) = struct.unpack_from("<Q", payload, 0)
    pos = 8
    index = []
    for _ in range(count):
        if pos + 12 > len(payload):
            raise Corrupt("root entry overruns run")
        leaf, ksize = struct.unpack_from("<QI", payload, pos)
        pos += 12
        if ksize > MAX_KEY_SIZE or pos + ksize > len(payload):
            raise Corrupt("root key overruns run")
        index.append((payload[pos:pos + ksize], leaf))
        pos += ksize
    if [k for k, _ in index] != sorted(k for k, _ in index):
        raise Corrupt("root directory keys out of order")

    prev_key = None
    for first_key, leaf in index:
        if leaf >= meta.num_pages:
            raise Corrupt(f"leaf {leaf} out of range")
        if leaf in reachable:
            raise Corrupt(f"leaf {leaf} reached twice")
        reachable.add(leaf)
        stats["leaf_pages"] += 1
        flags, rec_count, _ = page_header(data, ps, leaf)
        if not flags & FLAG_LEAF:
            raise Corrupt(f"page {leaf} is not a leaf")
        base = leaf * ps
        pos = PAGE_HEADER_SIZE
        for i in range(rec_count):
            if pos + 9 > ps:
                raise Corrupt(f"leaf {leaf} record {i} overruns page")
            ksize, vsize = struct.unpack_from("<II", data, base + pos)
            is_overflow = data[base + pos + 8] != 0
            rec = 9 + ksize + (8 if is_overflow else vsize)
            if ksize > MAX_KEY_SIZE or pos + rec > ps:
                raise Corrupt(f"leaf {leaf} record {i} overruns page")
            key = data[base + pos + 9:base + pos + 9 + ksize]
            if i == 0 and key != first_key:
                raise Corrupt(f"leaf {leaf} first key mismatches "
                              "root directory")
            if prev_key is not None and key <= prev_key:
                raise Corrupt(f"keys out of order at leaf {leaf}")
            prev_key = key
            value = None
            want_value = key.startswith(
                (b"claim/", b"claimhb/", b"cell/", b"fleet/"))
            if is_overflow:
                (ov,) = struct.unpack_from(
                    "<Q", data, base + pos + 9 + ksize)
                oflags, _, oextra = page_header(data, ps, ov)
                if not oflags & FLAG_OVERFLOW:
                    raise Corrupt(f"value run page {ov} is not "
                                  "overflow")
                run = range(ov, ov + 1 + oextra)
                if run.stop > meta.num_pages:
                    raise Corrupt(f"value run {ov} out of range")
                if reachable & set(run):
                    raise Corrupt(f"value run {ov} reached twice")
                capacity = (1 + oextra) * ps - PAGE_HEADER_SIZE
                if vsize > capacity:
                    raise Corrupt(f"value at leaf {leaf} overruns "
                                  f"run {ov}")
                reachable.update(run)
                stats["overflow_pages"] += 1 + oextra
                if want_value:
                    start = ov * ps + PAGE_HEADER_SIZE
                    value = data[start:start + vsize]
            elif want_value:
                start = base + pos + 9 + ksize
                value = data[start:start + vsize]
            if key.startswith(b"claim/"):
                coord["claims"][key.decode("utf-8",
                                           "replace")] = value
            elif key.startswith(b"claimhb/"):
                coord["heartbeats"][key.decode(
                    "utf-8", "replace")] = value
            elif key.startswith(b"cell/"):
                coord["cells"][key.decode("utf-8",
                                          "replace")] = value
            elif key.startswith(b"fleet/"):
                coord["fleet"][key.decode("utf-8",
                                          "replace")] = value
            stats["keys"] += 1
            stats["value_bytes"] += vsize
            pos += rec
    return stats, reachable, coord


def check_freelist(data: bytes, meta: Meta, reachable: set):
    if meta.freelist == 0:
        return 0, 0
    ps = meta.page_size
    _, _, ov = page_header(data, ps, meta.freelist)
    run = set(range(meta.freelist, meta.freelist + 1 + ov))
    if reachable & run:
        raise Corrupt("freelist run overlaps the tree")
    payload = run_data(data, ps, meta.freelist, FLAG_FREELIST,
                       "freelist")
    (count,) = struct.unpack_from("<Q", payload, 0)
    if 8 + count * 8 > len(payload):
        raise Corrupt("freelist overruns run")
    ids = struct.unpack_from(f"<{count}Q", payload, 8) if count else ()
    seen = set()
    for pid in ids:
        if pid < 2 or pid >= meta.num_pages:
            raise Corrupt(f"freelist lists page {pid}")
        if pid in seen:
            raise Corrupt(f"freelist lists page {pid} twice")
        if pid in reachable or pid in run:
            raise Corrupt(f"freelist lists live page {pid}")
        seen.add(pid)
    return count, 1 + ov


CLAIM_STATES = ("claimed", "retry", "done", "failed")


def check_claims(coord: dict, no_orphans: bool) -> dict:
    """Validate the claim/lease keyspace (see module docstring);
    returns per-state counts. Raises Corrupt on any violation."""
    counts = {state: 0 for state in CLAIM_STATES}
    heartbeats = {}
    for key, raw in coord["heartbeats"].items():
        fp = key[len("claimhb/"):]
        try:
            heartbeats[fp] = int(raw.decode("ascii"))
        except (UnicodeDecodeError, ValueError):
            raise Corrupt(f"heartbeat {key} is not a decimal "
                          "counter")

    live_owners = {}  # fingerprint -> owner -> claim key
    for key, raw in sorted(coord["claims"].items()):
        fp, _, cell_key = key[len("claim/"):].partition("/")
        if not cell_key:
            raise Corrupt(f"claim key {key} lacks a cell key")
        try:
            rec = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise Corrupt(f"claim {key} is not valid JSON")
        if (not isinstance(rec, dict)
                or not isinstance(rec.get("owner"), str)
                or rec.get("state") not in CLAIM_STATES
                or not isinstance(rec.get("epoch"), int)
                or not isinstance(rec.get("retries"), int)):
            raise Corrupt(f"claim {key} has a malformed record")
        state = rec["state"]
        counts[state] += 1

        hb = heartbeats.get(fp)
        if hb is None:
            raise Corrupt(f"claim {key} has no heartbeat "
                          f"claimhb/{fp}")
        if rec["epoch"] > hb:
            raise Corrupt(f"claim {key} epoch {rec['epoch']} is "
                          f"ahead of heartbeat {hb}")

        has_cell = f"cell/{fp}/{cell_key}" in coord["cells"]
        if state == "done" and not has_cell:
            raise Corrupt(f"done claim {key} has no cell value")
        if state == "claimed":
            if has_cell:
                raise Corrupt(f"live claim {key} on a committed "
                              "cell (commit writes both "
                              "atomically)")
            other = live_owners.setdefault(fp, {})
            if rec["owner"] in other:
                raise Corrupt(
                    f"owner {rec['owner']} holds two live claims "
                    f"({other[rec['owner']]} and {key})")
            other[rec["owner"]] = key

    if no_orphans and (counts["claimed"] or counts["retry"]):
        raise Corrupt(
            f"{counts['claimed']} live and {counts['retry']} "
            "retry-state claim(s) survive (--no-orphans: "
            "every cell must be done or failed after assembly)")
    return counts


CELL_SCHEMA = "ospredict-cell-v1"
# RunMode values carrying a mandatory "sample" section (Sampled,
# SampledAccel in src/driver/sweep.hh).
SAMPLED_MODES = (3, 4)
# The fields encodeCellResult() writes for every sampled cell
# (src/driver/cell_io.cc); "strata" is checked separately.
SAMPLE_FIELDS = (
    "interval_len", "num_intervals", "num_strata",
    "sampled_intervals", "tail_insts", "tail_cycles",
    "detailed_app_insts", "ff_app_insts", "est_app_cycles",
    "est_total_cycles", "ci95_half", "df", "has_ci",
    "detailed_fraction",
)


def check_cells(coord: dict) -> dict:
    """Validate the cell/<fp>/<cellkey> result keyspace (see module
    docstring); returns counts of total/sampled/failed cells."""
    counts = {"total": 0, "sampled": 0, "failed": 0}
    for key, raw in sorted(coord["cells"].items()):
        counts["total"] += 1
        try:
            doc = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise Corrupt(f"cell {key} is not valid JSON")
        if not isinstance(doc, dict):
            raise Corrupt(f"cell {key} is not an object")
        if doc.get("schema") != CELL_SCHEMA:
            raise Corrupt(f"cell {key} schema is "
                          f"{doc.get('schema')!r}, want "
                          f"{CELL_SCHEMA!r}")
        cell = doc.get("cell")
        if (not isinstance(cell, dict)
                or not isinstance(cell.get("mode"), int)):
            raise Corrupt(f"cell {key} lacks a cell/mode record")
        if "error" in doc:
            # Failed cells encode only identity + diagnostic.
            counts["failed"] += 1
            continue
        sampled = cell["mode"] in SAMPLED_MODES
        sample = doc.get("sample")
        if not sampled:
            if sample is not None:
                raise Corrupt(f"cell {key} mode {cell['mode']} "
                              "carries a sample section")
            continue
        counts["sampled"] += 1
        # A sampled cell written by a pre-sampling binary (or a
        # hand-edited store) would be missing the estimator state
        # the aggregator needs; reject rather than mis-assemble.
        if not isinstance(sample, dict):
            raise Corrupt(f"sampled cell {key} has no sample "
                          "section (stale writer?)")
        missing = [f for f in SAMPLE_FIELDS if f not in sample]
        if missing:
            raise Corrupt(f"sampled cell {key} sample section "
                          f"lacks {', '.join(missing)}")
        strata = sample.get("strata")
        if (not isinstance(strata, list)
                or not all(isinstance(row, list) and len(row) == 4
                           for row in strata)):
            raise Corrupt(f"sampled cell {key} strata table is "
                          "malformed")
        if len(strata) != sample["num_strata"]:
            raise Corrupt(f"sampled cell {key} records "
                          f"{sample['num_strata']} strata but "
                          f"lists {len(strata)}")
    return counts


WORKER_SCHEMA = "ospredict-worker-v1"


def check_fleet(coord: dict) -> int:
    """Validate the fleet/<fp>/<owner> telemetry keyspace (see
    module docstring); returns the worker-snapshot count."""
    heartbeats = {}
    for key, raw in coord["heartbeats"].items():
        heartbeats[key[len("claimhb/"):]] = int(raw.decode("ascii"))

    for key, raw in sorted(coord["fleet"].items()):
        fp, _, owner = key[len("fleet/"):].partition("/")
        if not owner:
            raise Corrupt(f"fleet key {key} lacks an owner")
        try:
            snap = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise Corrupt(f"fleet snapshot {key} is not valid JSON")
        if not isinstance(snap, dict):
            raise Corrupt(f"fleet snapshot {key} is not an object")
        if snap.get("schema") != WORKER_SCHEMA:
            raise Corrupt(f"fleet snapshot {key} schema is "
                          f"{snap.get('schema')!r}, want "
                          f"{WORKER_SCHEMA!r}")
        if snap.get("owner") != owner:
            raise Corrupt(f"fleet snapshot {key} owner "
                          f"{snap.get('owner')!r} mismatches its "
                          "key path")
        version = snap.get("version")
        if not isinstance(version, int) or version < 1:
            raise Corrupt(f"fleet snapshot {key} version "
                          f"{version!r} is not a positive integer")
        epoch = snap.get("epoch")
        if not isinstance(epoch, int) or epoch < 0:
            raise Corrupt(f"fleet snapshot {key} epoch {epoch!r} "
                          "is not a non-negative integer")
        hb = heartbeats.get(fp)
        if hb is None:
            raise Corrupt(f"fleet snapshot {key} has no heartbeat "
                          f"claimhb/{fp}")
        # Every publish rides a transaction that bumps the
        # heartbeat exactly once, so neither counter can be ahead
        # of the clock they advance.
        if version > hb:
            raise Corrupt(f"fleet snapshot {key} version {version} "
                          f"is ahead of heartbeat {hb}")
        if epoch > hb:
            raise Corrupt(f"fleet snapshot {key} epoch {epoch} is "
                          f"ahead of heartbeat {hb}")
    return len(coord["fleet"])


def main() -> int:
    ap = argparse.ArgumentParser(
        description="Validate an ospredict page-store file.")
    ap.add_argument("store", help="store file path")
    ap.add_argument("--json", action="store_true",
                    help="print the report as JSON")
    ap.add_argument("--expect-keys", type=int, default=None,
                    help="additionally require exactly N keys")
    ap.add_argument("--no-orphans", action="store_true",
                    help="fail when any live or retry-state claim "
                         "remains (run after --assemble)")
    args = ap.parse_args()

    try:
        with open(args.store, "rb") as f:
            data = f.read()
    except OSError as e:
        print(f"check_store: {e}", file=sys.stderr)
        return 1

    try:
        meta, valid_slots = pick_meta(data, args.store)
        stats, reachable, coord = walk_tree(data, meta)
        free_count, freelist_run_pages = check_freelist(
            data, meta, reachable)
        claim_counts = check_claims(coord, args.no_orphans)
        cell_counts = check_cells(coord)
        fleet_workers = check_fleet(coord)
    except Corrupt as e:
        print(f"check_store: {args.store}: CORRUPT: {e}",
              file=sys.stderr)
        return 1

    report = {
        "store": args.store,
        "file_bytes": len(data),
        "page_size": meta.page_size,
        "txid": meta.txid,
        "valid_meta_slots": valid_slots,
        "num_pages": meta.num_pages,
        "reachable_pages": len(reachable),
        "free_pages": free_count,
        "freelist_run_pages": freelist_run_pages,
        **stats,
        "claims": claim_counts,
        "cells": cell_counts,
        "fleet_workers": fleet_workers,
    }
    if args.expect_keys is not None and stats["keys"] != args.expect_keys:
        print(f"check_store: {args.store}: expected "
              f"{args.expect_keys} keys, found {stats['keys']}",
              file=sys.stderr)
        return 1

    if args.json:
        print(json.dumps(report, indent=2))
    else:
        claims = ", ".join(f"{claim_counts[s]} {s}"
                           for s in CLAIM_STATES
                           if claim_counts[s])
        print(f"{args.store}: OK — txid {meta.txid}, "
              f"{stats['keys']} keys, {meta.num_pages} pages "
              f"({stats['leaf_pages']} leaf, "
              f"{stats['overflow_pages']} overflow, "
              f"{free_count} free), "
              f"{valid_slots}/2 meta slots valid"
              + (f"; claims: {claims}" if claims else "")
              + (f"; cells: {cell_counts['total']} "
                 f"({cell_counts['sampled']} sampled)"
                 if cell_counts["total"] else "")
              + (f"; fleet: {fleet_workers} worker(s)"
                 if fleet_workers else ""))
    return 0


if __name__ == "__main__":
    sys.exit(main())
