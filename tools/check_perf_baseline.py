#!/usr/bin/env python3
"""Gate a hot-path bench document against a committed baseline.

Usage: check_perf_baseline.py BENCH_JSON BASELINE_JSON

Absolute throughput (MIPS, accesses/sec, sweep wall-clock) varies
wildly across CI machines, so those are only sanity-checked (present,
finite, positive). What the gate actually enforces are the *mode
ratios*, which are largely machine-independent properties of the
simulator's hot path:

  - block_speedup        = emulate_block_mips / emulate_perop_mips
    The batched run loop must never regress to (or below) the legacy
    per-op loop: a hard floor of `block_floor`, plus a tolerance band
    around the baseline ratio.
  - emulate_over_inorder = emulate_block_mips / inorder_cache_mips
  - emulate_over_ooo     = emulate_block_mips / ooo_cache_mips
    Emulation must stay the cheap mode; a collapse of either ratio
    means someone made the emulate path expensive (or the timing
    models suspiciously cheap) without noticing.
  - sweep_jobs_scaling   = sweep_table2_jobs1_fleet_seconds /
                           sweep_table2_jobs2_fleet_seconds
    Adding a second worker process to a distributed sweep must keep
    helping: the claim/lease coordination cost (see
    src/driver/claim_executor.hh) stays bounded.

Each ratio must lie within a multiplicative factor `ratio_tol` of
the baseline value (band [base / tol, base * tol]).

Regenerate the baseline (after an intentional hot-path change), on a
quiet machine with a Release (-O3) build:

  ./bench/microbench_components --bench-json hotpath.json --smoke
  ./bench/sweep fig08 --smoke --threads "$(nproc)" --out /dev/null \
      --bench-json hotpath.json --log-level silent
  ./bench/fig13_sampled_speedup --smoke --threads "$(nproc)" \
      --bench-json hotpath.json > /dev/null
  for j in 1 2; do
    rm -f "jobs$j.db" "jobs$j.db.lock"
    ./bench/sweep table2 --smoke --jobs "$j" --store "jobs$j.db" \
        --threads 2 --out /dev/null --bench-json hotpath.json \
        --log-level silent
  done
  ./tools/check_perf_baseline.py hotpath.json \
      bench/baselines/hotpath_smoke.json --update
"""

import argparse
import json
import math
import sys

RATIO_TOL = 2.5
BLOCK_FLOOR = 1.0
# Composed sampling x prediction shrink of detailed-simulated
# instructions (fig13's median over the workload set). Instruction
# counts are deterministic, so unlike the wall-clock ratios this
# gets a hard floor, not a tolerance band: median >= 3 is exactly
# ">= 3x shrink on at least 3 of the 5 workloads".
SAMPLED_FLOOR = 3.0

RATIOS = {
    "block_speedup": ("emulate_block_mips", "emulate_perop_mips"),
    "emulate_over_inorder": ("emulate_block_mips",
                             "inorder_cache_mips"),
    "emulate_over_ooo": ("emulate_block_mips", "ooo_cache_mips"),
    # Multi-process scaling: one-worker fleet time over two-worker
    # fleet time for the same sweep (>1 = the second process helps;
    # the tolerance band keeps a coordination regression — e.g. a
    # writer gate held across cell execution — from landing).
    "sweep_jobs_scaling": ("sweep_table2_jobs1_fleet_seconds",
                           "sweep_table2_jobs2_fleet_seconds"),
}


def fail(msg):
    print(f"perf baseline: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema") != "ospredict-bench-v1":
        fail(f"{path}: unexpected schema {doc.get('schema')!r}")
    metrics = {}
    for name, entry in doc.get("metrics", {}).items():
        value = entry.get("value")
        if not isinstance(value, (int, float)) or \
                not math.isfinite(value) or value <= 0:
            fail(f"{path}: metric {name!r} has non-positive or "
                 f"non-finite value {value!r}")
        metrics[name] = float(value)
    if not metrics:
        fail(f"{path}: no metrics")
    return doc, metrics


def ratios_of(metrics, path):
    out = {}
    for name, (num, den) in RATIOS.items():
        if num not in metrics or den not in metrics:
            fail(f"{path}: needs {num!r} and {den!r} for the "
                 f"{name!r} ratio")
        out[name] = metrics[num] / metrics[den]
    return out


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("results")
    ap.add_argument("baseline")
    ap.add_argument("--update", action="store_true",
                    help="rewrite the baseline from the results")
    args = ap.parse_args()

    doc, metrics = load_metrics(args.results)
    got = ratios_of(metrics, args.results)

    if args.update:
        baseline = {
            "schema": "ospredict-bench-baseline-v1",
            "smoke": doc.get("smoke", False),
            "ratio_tol": RATIO_TOL,
            "block_floor": BLOCK_FLOOR,
            "ratios": {k: round(v, 4)
                       for k, v in sorted(got.items())},
            "required_metrics": sorted(metrics),
        }
        if "sampled_vs_full_speedup" in metrics:
            baseline["sampled_floor"] = SAMPLED_FLOOR
        with open(args.baseline, "w") as f:
            json.dump(baseline, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"perf baseline: wrote {args.baseline} "
              f"({len(got)} ratios)")
        return

    with open(args.baseline) as f:
        want = json.load(f)
    if want.get("schema") != "ospredict-bench-baseline-v1":
        fail(f"bad baseline schema {want.get('schema')!r}")
    if doc.get("smoke", False) != want.get("smoke", False):
        fail(f"smoke mismatch: results {doc.get('smoke', False)} "
             f"vs baseline {want.get('smoke', False)}")

    missing = set(want.get("required_metrics", [])) - set(metrics)
    if missing:
        fail(f"metrics disappeared: {sorted(missing)}")

    tol = want.get("ratio_tol", RATIO_TOL)
    floor = want.get("block_floor", BLOCK_FLOOR)
    if got["block_speedup"] < floor:
        fail(f"block_speedup {got['block_speedup']:.3f} fell below "
             f"the hard floor {floor} — the batched loop is slower "
             f"than the per-op loop")
    for name, base in want["ratios"].items():
        cur = got.get(name)
        if cur is None:
            fail(f"ratio {name!r} not computable from results")
        if not base / tol <= cur <= base * tol:
            fail(f"{name} {cur:.3f} outside [{base / tol:.3f}, "
                 f"{base * tol:.3f}] (baseline {base:.3f}, "
                 f"tol x{tol})")

    if "sampled_vs_full_speedup" in want.get("required_metrics",
                                             []):
        sampled_floor = want.get("sampled_floor", SAMPLED_FLOOR)
        speedup = metrics["sampled_vs_full_speedup"]
        if speedup < sampled_floor:
            fail(f"sampled_vs_full_speedup {speedup:.3f} fell "
                 f"below the floor {sampled_floor} — the composed "
                 f"sampling x prediction shrink regressed")
        fraction = metrics.get("sampled_detailed_fraction")
        if fraction is None or not fraction < 1.0:
            fail(f"sampled_detailed_fraction {fraction!r} must be "
                 f"below 1.0 — sampled runs are not skipping work")

    print(f"perf baseline: OK ({len(want['ratios'])} ratios within "
          f"x{tol} of baseline; block_speedup "
          f"{got['block_speedup']:.2f} >= {floor})")


if __name__ == "__main__":
    main()
