/** @file Tests for the workload models and registry. */

#include <gtest/gtest.h>

#include <map>

#include "workload/netbench.hh"
#include "workload/oltp.hh"
#include "workload/registry.hh"
#include "workload/spec_like.hh"
#include "workload/unix_tools.hh"
#include "workload/webserver.hh"

namespace osp
{
namespace
{

/** Functionally run a workload against a kernel, tallying the
 *  syscall mix (no timing models). */
std::map<ServiceType, std::uint64_t>
drive(UserProgram &prog, SyntheticKernel &kernel,
      InstCount max_user = 5000000)
{
    std::map<ServiceType, std::uint64_t> mix;
    MicroOp op;
    ServiceRequest req;
    InstCount user = 0;
    while (user < max_user) {
        auto s = prog.step(op, req);
        if (s == UserProgram::Step::Done)
            break;
        if (s == UserProgram::Step::Op) {
            ++user;
            continue;
        }
        mix[req.type] += 1;
        ServiceResult res =
            kernel.invoke(req.type, req.args, user, nullptr);
        prog.onServiceReturn(req.type, res);
    }
    return mix;
}

TEST(AbWorkload, EmitsApacheSyscallMix)
{
    KernelParams kp = kernelParamsFor("ab-rand", 5);
    SyntheticKernel kernel(kp);
    AbParams p;
    p.warmupRequests = 2;
    p.measureRequests = 10;
    AbWorkload ab(kernel, p, 5);
    auto mix = drive(ab, kernel);

    // Every request: accept, ipc, poll, recv, stat, open, fcntl,
    // 2 gettimeofday, log write, 2 closes, >=1 read+writev.
    EXPECT_EQ(mix[ServiceType::SysSocketcall], 24u);  // accept+recv
    EXPECT_EQ(mix[ServiceType::SysIpc], 12u);
    EXPECT_EQ(mix[ServiceType::SysPoll], 12u);
    EXPECT_EQ(mix[ServiceType::SysStat64], 12u);
    EXPECT_EQ(mix[ServiceType::SysOpen], 13u);  // + access log
    EXPECT_EQ(mix[ServiceType::SysFcntl64], 12u);
    EXPECT_EQ(mix[ServiceType::SysGettimeofday], 24u);
    EXPECT_EQ(mix[ServiceType::SysClose], 24u);
    EXPECT_EQ(mix[ServiceType::SysWrite], 12u);
    EXPECT_GE(mix[ServiceType::SysRead], 12u);
    EXPECT_EQ(mix[ServiceType::SysRead], mix[ServiceType::SysWritev]);
    EXPECT_EQ(ab.requestsDone(), 12u);
}

TEST(AbWorkload, WarmupFlagTracksRequests)
{
    KernelParams kp = kernelParamsFor("ab-rand", 5);
    SyntheticKernel kernel(kp);
    AbParams p;
    p.warmupRequests = 3;
    p.measureRequests = 3;
    AbWorkload ab(kernel, p, 5);
    EXPECT_TRUE(ab.inWarmup());
    drive(ab, kernel);
    EXPECT_FALSE(ab.inWarmup());
}

TEST(AbWorkload, SeqServesAscendingSizes)
{
    KernelParams kp = kernelParamsFor("ab-seq", 5);
    SyntheticKernel kernel(kp);
    AbParams p;
    p.sequential = true;
    p.warmupRequests = 0;
    p.measureRequests = 16;
    AbWorkload ab(kernel, p, 5);

    // Track stat64 arguments (file ids) in order.
    std::vector<std::uint64_t> stat_order;
    MicroOp op;
    ServiceRequest req;
    for (;;) {
        auto s = ab.step(op, req);
        if (s == UserProgram::Step::Done)
            break;
        if (s == UserProgram::Step::Op)
            continue;
        if (req.type == ServiceType::SysStat64)
            stat_order.push_back(req.args.arg0);
        ab.onServiceReturn(
            req.type,
            kernel.invoke(req.type, req.args, 0, nullptr));
    }
    ASSERT_EQ(stat_order.size(), 16u);
    for (std::size_t i = 1; i < stat_order.size(); ++i)
        EXPECT_GE(stat_order[i], stat_order[i - 1]);
    // 16 requests over 8 documents: two per document.
    EXPECT_EQ(stat_order.front(), stat_order[1]);
}

TEST(DuWorkload, WalksWholeTree)
{
    KernelParams kp = kernelParamsFor("du", 5);
    kp.vfs.numDirs = 8;
    SyntheticKernel kernel(kp);
    UnixToolParams p;
    p.warmupDirs = 1;
    p.maxDirs = 8;
    DuWorkload du(kernel, p, 5);
    auto mix = drive(du, kernel);
    // One open/getdents/close per dir; one stat per file.
    EXPECT_EQ(mix[ServiceType::SysOpen], 8u);
    EXPECT_EQ(mix[ServiceType::SysClose], 8u);
    std::uint64_t files = 0;
    for (std::uint32_t d = 0; d < kernel.vfs().numDirs(); ++d)
        files += kernel.vfs().dirFiles(d).size();
    EXPECT_EQ(mix[ServiceType::SysStat64], files);
}

TEST(FindOdWorkload, ReadsEveryFileToEof)
{
    KernelParams kp = kernelParamsFor("find-od", 5);
    kp.vfs.numDirs = 4;
    SyntheticKernel kernel(kp);
    UnixToolParams p;
    p.warmupDirs = 1;
    p.maxDirs = 4;
    FindOdWorkload fo(kernel, p, 5);
    auto mix = drive(fo, kernel, 50000000);
    std::uint64_t files = 0;
    std::uint64_t bytes = 0;
    for (std::uint32_t d = 0; d < 4; ++d) {
        for (std::uint32_t f : kernel.vfs().dirFiles(d)) {
            ++files;
            bytes += kernel.vfs().fileSize(f);
        }
    }
    // Dirs + files + output log.
    EXPECT_EQ(mix[ServiceType::SysOpen], 4 + files + 1);
    EXPECT_EQ(mix[ServiceType::SysStat64], files);
    // Reads: getdents per dir + ceil(size/4096)+EOF per file.
    EXPECT_GT(mix[ServiceType::SysRead], bytes / 4096);
    // One formatted write per non-empty read.
    EXPECT_GE(mix[ServiceType::SysWrite], bytes / 4096);
}

TEST(IperfWorkload, WriteLoopWithTimestamps)
{
    KernelParams kp = kernelParamsFor("iperf", 5);
    SyntheticKernel kernel(kp);
    IperfParams p;
    p.warmupWrites = 0;
    p.measureWrites = 256;
    p.reportEvery = 64;
    IperfWorkload ip(kernel, p, 5);
    auto mix = drive(ip, kernel);
    EXPECT_EQ(mix[ServiceType::SysWrite], 256u);
    EXPECT_EQ(mix[ServiceType::SysGettimeofday], 4u);
    EXPECT_EQ(mix[ServiceType::SysSocketcall], 1u);  // connect
}

TEST(SpecWorkload, AlmostNoSyscalls)
{
    KernelParams kp = kernelParamsFor("gzip", 5);
    SyntheticKernel kernel(kp);
    SpecParams p;
    p.warmupOps = 0;
    p.measureOps = 500000;
    p.syscallEvery = 200000;
    SpecWorkload spec(kernel, p, 5);
    auto mix = drive(spec, kernel);
    std::uint64_t total = 0;
    for (auto &[t, n] : mix)
        total += n;
    EXPECT_LE(total, 3u);
}

TEST(OltpWorkload, TransactionSyscallMix)
{
    KernelParams kp = kernelParamsFor("oltp", 5);
    SyntheticKernel kernel(kp);
    OltpParams p;
    p.warmupTransactions = 2;
    p.measureTransactions = 18;
    p.clientEvery = 4;
    OltpWorkload oltp(kernel, p, 5);
    auto mix = drive(oltp, kernel);

    EXPECT_EQ(oltp.transactionsDone(), 20u);
    // Lock + unlock per transaction.
    EXPECT_EQ(mix[ServiceType::SysIpc], 40u);
    // One WAL append per commit.
    EXPECT_EQ(mix[ServiceType::SysWrite], 20u);
    // 1..maxReads record opens per transaction, plus the WAL open.
    EXPECT_GE(mix[ServiceType::SysOpen], 20u + 1);
    EXPECT_LE(mix[ServiceType::SysOpen],
              20u * p.maxReadsPerTxn + 1);
    // Record closes match record opens.
    EXPECT_EQ(mix[ServiceType::SysClose],
              mix[ServiceType::SysOpen] - 1);
    // A client round-trip every 4 transactions.
    EXPECT_EQ(mix[ServiceType::SysPoll], 5u);
    // accept + one send per round-trip.
    EXPECT_EQ(mix[ServiceType::SysSocketcall], 6u);
}

TEST(OltpWorkload, WarmupTracksTransactions)
{
    KernelParams kp = kernelParamsFor("oltp", 5);
    SyntheticKernel kernel(kp);
    OltpParams p;
    p.warmupTransactions = 3;
    p.measureTransactions = 3;
    OltpWorkload oltp(kernel, p, 5);
    EXPECT_TRUE(oltp.inWarmup());
    drive(oltp, kernel);
    EXPECT_FALSE(oltp.inWarmup());
}

TEST(OltpWorkload, RegistryBuildsOsIntensiveMachine)
{
    MachineConfig cfg;
    cfg.seed = 3;
    cfg.level = DetailLevel::Emulate;
    auto m = makeMachine("oltp", cfg, 0.2);
    const RunTotals &t = m->run();
    EXPECT_GT(t.osInstFraction(), 0.5);
    EXPECT_GT(t.osInvocations, 100u);
}

TEST(SpecWorkload, VariantNames)
{
    EXPECT_STREQ(specVariantName(SpecVariant::Gzip), "gzip");
    EXPECT_STREQ(specVariantName(SpecVariant::Swim), "swim");
}

TEST(Registry, AllWorkloadsConstructAndRunBriefly)
{
    for (const auto &name : allWorkloads()) {
        MachineConfig cfg;
        cfg.seed = 3;
        cfg.level = DetailLevel::Emulate;
        auto m = makeMachine(name, cfg, 0.05);
        const RunTotals &t = m->run(400000);
        EXPECT_GT(t.totalInsts(), 0u) << name;
    }
}

TEST(Registry, NamesAreConsistent)
{
    EXPECT_EQ(allWorkloads().size(), 9u);
    EXPECT_EQ(osIntensiveWorkloads().size(), 5u);
    EXPECT_EQ(specWorkloads().size(), 4u);
    for (const auto &n : allWorkloads())
        EXPECT_TRUE(isWorkload(n));
    for (const auto &n : extraWorkloads())
        EXPECT_TRUE(isWorkload(n));
    EXPECT_FALSE(isWorkload("nonesuch"));
}

TEST(Registry, UnknownWorkloadDies)
{
    MachineConfig cfg;
    EXPECT_DEATH(makeMachine("nonesuch", cfg), "unknown workload");
}

TEST(Registry, OsIntensiveHaveHighOsFraction)
{
    for (const auto &name : osIntensiveWorkloads()) {
        MachineConfig cfg;
        cfg.seed = 3;
        cfg.level = DetailLevel::Emulate;
        auto m = makeMachine(name, cfg, 0.1);
        const RunTotals &t = m->run(2000000);
        // The paper reports 67-99% OS instructions.
        EXPECT_GT(t.osInstFraction(), 0.5) << name;
    }
}

TEST(Registry, SpecHaveLowOsFraction)
{
    for (const auto &name : specWorkloads()) {
        MachineConfig cfg;
        cfg.seed = 3;
        cfg.level = DetailLevel::Emulate;
        // Uncapped: the initialization sweep (first-touch page
        // faults) must complete inside the skipped warm-up.
        auto m = makeMachine(name, cfg, 0.2);
        const RunTotals &t = m->run();
        EXPECT_LT(t.osInstFraction(), 0.05) << name;
    }
}

} // namespace
} // namespace osp
