/** @file Tests for the stratified-sampling primitives: seeded
 *  k-means determinism, allocation policies, and the stratified
 *  estimator's math and confidence interval. */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "stats/stratify.hh"
#include "util/random.hh"

namespace osp
{
namespace
{

/** Two well-separated blobs plus a linear ramp feature. */
std::vector<std::vector<double>>
blobFeatures(std::size_t n, std::uint64_t seed)
{
    Pcg32 rng(seed, 99);
    std::vector<std::vector<double>> rows;
    for (std::size_t i = 0; i < n; ++i) {
        double base = (i % 2 == 0) ? 0.0 : 10.0;
        rows.push_back({base + rng.range(100) / 1000.0,
                        base * 2 + rng.range(100) / 1000.0,
                        static_cast<double>(i)});
    }
    return rows;
}

TEST(Stratify, DeterministicForSameInputs)
{
    auto rows = blobFeatures(64, 7);
    StratifyParams p;
    p.strata = 3;
    p.seed = 42;
    StrataAssignment a = stratifyIntervals(rows, p);
    StrataAssignment b = stratifyIntervals(rows, p);
    EXPECT_EQ(a.numStrata, b.numStrata);
    EXPECT_EQ(a.assignment, b.assignment);
    EXPECT_EQ(a.population, b.population);
}

TEST(Stratify, SeedChangesNothingAboutShapeButMayRelabel)
{
    auto rows = blobFeatures(64, 7);
    StratifyParams p;
    p.strata = 2;
    p.seed = 1;
    StrataAssignment a = stratifyIntervals(rows, p);
    p.seed = 2;
    StrataAssignment b = stratifyIntervals(rows, p);
    // The two blobs are unambiguous: every same-parity pair must
    // land together under either seed.
    for (std::size_t i = 2; i < rows.size(); ++i) {
        EXPECT_EQ(a.assignment[i] == a.assignment[i - 2], true);
        EXPECT_EQ(b.assignment[i] == b.assignment[i - 2], true);
    }
}

TEST(Stratify, SeparatesObviousClusters)
{
    auto rows = blobFeatures(40, 3);
    StratifyParams p;
    p.strata = 2;
    StrataAssignment a = stratifyIntervals(rows, p);
    ASSERT_EQ(a.numStrata, 2u);
    // Parity decides the blob; all evens together, all odds
    // together, and in different strata.
    EXPECT_NE(a.assignment[0], a.assignment[1]);
    for (std::size_t i = 0; i < rows.size(); ++i)
        EXPECT_EQ(a.assignment[i], a.assignment[i % 2]);
    EXPECT_EQ(a.population[0] + a.population[1], rows.size());
}

TEST(Stratify, MoreStrataThanPointsClamps)
{
    auto rows = blobFeatures(3, 11);
    StratifyParams p;
    p.strata = 16;
    StrataAssignment a = stratifyIntervals(rows, p);
    EXPECT_LE(a.numStrata, 3u);
    EXPECT_EQ(a.assignment.size(), 3u);
}

TEST(Stratify, EmptyInputYieldsEmptyAssignment)
{
    StrataAssignment a = stratifyIntervals({}, {});
    EXPECT_EQ(a.numStrata, 0u);
    EXPECT_TRUE(a.assignment.empty());
}

TEST(StratifiedDraw, DeterministicSortedWithoutReplacement)
{
    auto rows = blobFeatures(100, 5);
    StratifyParams p;
    p.strata = 4;
    p.rate = 0.25;
    p.seed = 9;
    StrataAssignment a = stratifyIntervals(rows, p);
    auto s1 = drawStratifiedSample(a, p, {});
    auto s2 = drawStratifiedSample(a, p, {});
    EXPECT_EQ(s1, s2);
    for (std::size_t i = 1; i < s1.size(); ++i)
        EXPECT_LT(s1[i - 1], s1[i]);  // sorted, no duplicates
    EXPECT_GE(s1.size(), rows.size() / 8);
    EXPECT_LT(s1.size(), rows.size());
}

TEST(StratifiedDraw, SeedChangesThePick)
{
    auto rows = blobFeatures(200, 5);
    StratifyParams p;
    p.strata = 4;
    p.rate = 0.2;
    p.seed = 9;
    StrataAssignment a = stratifyIntervals(rows, p);
    auto s1 = drawStratifiedSample(a, p, {});
    p.seed = 10;
    auto s2 = drawStratifiedSample(a, p, {});
    EXPECT_NE(s1, s2);
    EXPECT_EQ(s1.size(), s2.size());  // allocation is seed-free
}

TEST(StratifiedDraw, MinPerStratumFloorApplies)
{
    auto rows = blobFeatures(40, 13);
    StratifyParams p;
    p.strata = 2;
    p.rate = 0.01;  // would round to ~0 per stratum
    StrataAssignment a = stratifyIntervals(rows, p);
    auto s = drawStratifiedSample(a, p, {});
    EXPECT_EQ(s.size(), 2u * p.minPerStratum);
}

TEST(StratifiedDraw, NeymanFavorsHighVarianceStratum)
{
    // Stratum of evens has wildly varying cost, odds are constant.
    auto rows = blobFeatures(200, 17);
    StratifyParams p;
    p.strata = 2;
    p.rate = 0.2;
    p.allocation = StratifyParams::Allocation::Neyman;
    StrataAssignment a = stratifyIntervals(rows, p);
    std::vector<double> cost(rows.size(), 1.0);
    for (std::size_t i = 0; i < cost.size(); i += 2)
        cost[i] = static_cast<double>(i);
    auto s = drawStratifiedSample(a, p, cost);
    std::size_t even_stratum = a.assignment[0];
    std::size_t n_even = 0;
    for (auto idx : s)
        if (a.assignment[idx] == even_stratum)
            ++n_even;
    EXPECT_GT(n_even, s.size() - n_even);
}

TEST(StratifiedEstimator, ExactWhenSampleIsCensus)
{
    auto rows = blobFeatures(20, 23);
    StratifyParams p;
    p.strata = 2;
    p.rate = 1.0;
    StrataAssignment a = stratifyIntervals(rows, p);
    auto s = drawStratifiedSample(a, p, {});
    ASSERT_EQ(s.size(), rows.size());
    std::vector<double> vals;
    double truth = 0.0;
    for (auto idx : s) {
        vals.push_back(static_cast<double>(idx) + 1.0);
        truth += static_cast<double>(idx) + 1.0;
    }
    StratifiedEstimate e = estimateStratifiedTotal(a, s, vals);
    EXPECT_NEAR(e.total, truth, 1e-9);
    EXPECT_NEAR(e.variance, 0.0, 1e-9);  // census: fpc kills it
}

TEST(StratifiedEstimator, MatchesHandComputation)
{
    // One stratum of 10, sample {2, 4, 6}: mean 4, s^2 = 4,
    // total = 10*4 = 40, var = 100*(1-3/10)*4/3.
    StrataAssignment a;
    a.numStrata = 1;
    a.assignment.assign(10, 0);
    a.population = {10};
    std::vector<std::uint64_t> idx = {0, 1, 2};
    std::vector<double> vals = {2.0, 4.0, 6.0};
    StratifiedEstimate e = estimateStratifiedTotal(a, idx, vals);
    EXPECT_NEAR(e.total, 40.0, 1e-9);
    EXPECT_NEAR(e.variance, 100.0 * 0.7 * 4.0 / 3.0, 1e-9);
    EXPECT_EQ(e.df, 2u);
    ASSERT_TRUE(e.hasCi);
    EXPECT_NEAR(e.ci95Half, 4.303 * std::sqrt(e.variance), 2e-2);
    ASSERT_EQ(e.strata.size(), 1u);
    EXPECT_EQ(e.strata[0].population, 10u);
    EXPECT_EQ(e.strata[0].sampled, 3u);
}

TEST(StratifiedEstimator, CiBracketsTruthOnSyntheticData)
{
    // Population where the stratifier can see the value-relevant
    // structure: value tracks the feature. The 95% CI should
    // bracket the true total for (nearly) every seed; require all
    // of a fixed seed set to keep the test deterministic.
    std::size_t n = 400;
    std::vector<std::vector<double>> rows;
    std::vector<double> value(n);
    Pcg32 noise(77, 1);
    for (std::size_t i = 0; i < n; ++i) {
        double level = static_cast<double>(i % 4);
        double v = 100.0 * (level + 1) + noise.range(200) * 0.05;
        value[i] = v;
        rows.push_back({level, level * level});
    }
    double truth = 0.0;
    for (double v : value)
        truth += v;

    StratifyParams p;
    p.strata = 4;
    p.rate = 0.2;
    StrataAssignment a = stratifyIntervals(rows, p);
    int hits = 0;
    for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        p.seed = seed;
        auto s = drawStratifiedSample(a, p, value);
        std::vector<double> vals;
        for (auto idx : s)
            vals.push_back(value[idx]);
        StratifiedEstimate e = estimateStratifiedTotal(a, s, vals);
        ASSERT_TRUE(e.hasCi);
        if (std::fabs(e.total - truth) <= e.ci95Half)
            ++hits;
    }
    EXPECT_EQ(hits, 8);
}

TEST(StratifiedEstimator, AllocationNames)
{
    EXPECT_STREQ(
        allocationName(StratifyParams::Allocation::Proportional),
        "proportional");
    EXPECT_STREQ(allocationName(StratifyParams::Allocation::Neyman),
                 "neyman");
}

} // namespace
} // namespace osp
