/** @file Tests for 1-D and bubble histograms (Fig. 5 binning). */

#include <gtest/gtest.h>

#include "stats/histogram.hh"

namespace osp
{
namespace
{

TEST(Histogram, BinAssignment)
{
    Histogram h(1000.0);
    EXPECT_EQ(h.binOf(0.0), 0);
    EXPECT_EQ(h.binOf(999.9), 0);
    EXPECT_EQ(h.binOf(1000.0), 1);
    EXPECT_EQ(h.binOf(-1.0), -1);
}

TEST(Histogram, OriginShiftsBins)
{
    Histogram h(10.0, 5.0);
    EXPECT_EQ(h.binOf(5.0), 0);
    EXPECT_EQ(h.binOf(14.9), 0);
    EXPECT_EQ(h.binOf(15.0), 1);
    EXPECT_EQ(h.binOf(4.9), -1);
}

TEST(Histogram, CountsAccumulate)
{
    Histogram h(10.0);
    h.add(1.0);
    h.add(2.0);
    h.add(15.0);
    EXPECT_EQ(h.countAt(0), 2u);
    EXPECT_EQ(h.countAt(1), 1u);
    EXPECT_EQ(h.countAt(2), 0u);
    EXPECT_EQ(h.totalCount(), 3u);
}

TEST(Histogram, BinCenter)
{
    Histogram h(1000.0);
    EXPECT_DOUBLE_EQ(h.binCenter(0), 500.0);
    EXPECT_DOUBLE_EQ(h.binCenter(3), 3500.0);
}

TEST(Histogram, NonEmptySortedAscending)
{
    Histogram h(1.0);
    h.add(5.0);
    h.add(2.0);
    h.add(5.5);
    auto bins = h.nonEmpty();
    ASSERT_EQ(bins.size(), 2u);
    EXPECT_EQ(bins[0].first, 2);
    EXPECT_EQ(bins[0].second, 1u);
    EXPECT_EQ(bins[1].first, 5);
    EXPECT_EQ(bins[1].second, 2u);
}

TEST(Histogram, ZeroWidthDies)
{
    EXPECT_DEATH(Histogram(0.0), "positive");
}

TEST(BubbleHistogram, PaperBinning)
{
    // Fig. 5: 1000-instruction by 4000-cycle bins.
    BubbleHistogram b(1000.0, 4000.0);
    b.add(1500.0, 9000.0);   // bins (1, 2)
    b.add(1999.0, 11999.0);  // bins (1, 2)
    b.add(2000.0, 12000.0);  // bins (2, 3)
    EXPECT_EQ(b.totalCount(), 3u);
    EXPECT_EQ(b.numBubbles(), 2u);
    auto bubbles = b.bubbles();
    ASSERT_EQ(bubbles.size(), 2u);
    EXPECT_EQ(bubbles[0].xBin, 1);
    EXPECT_EQ(bubbles[0].yBin, 2);
    EXPECT_EQ(bubbles[0].count, 2u);
    EXPECT_DOUBLE_EQ(bubbles[0].xCenter, 1500.0);
    EXPECT_DOUBLE_EQ(bubbles[0].yCenter, 10000.0);
    EXPECT_EQ(bubbles[1].count, 1u);
}

TEST(BubbleHistogram, FewBubblesForClusteredInput)
{
    // The paper's key observation: repeated behaviour points produce
    // few, large bubbles.
    BubbleHistogram b(1000.0, 4000.0);
    for (int i = 0; i < 100; ++i) {
        b.add(2100.0 + i % 50, 8100.0 + i % 300);
        b.add(7300.0 + i % 50, 30000.0 + i % 300);
    }
    EXPECT_EQ(b.totalCount(), 200u);
    EXPECT_LE(b.numBubbles(), 2u);
}

} // namespace
} // namespace osp
