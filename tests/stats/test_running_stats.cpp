/** @file Unit tests for the Welford accumulator. */

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "stats/running_stats.hh"
#include "util/random.hh"

namespace osp
{
namespace
{

TEST(RunningStats, EmptyIsNeutral)
{
    RunningStats s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
    EXPECT_EQ(s.variance(), 0.0);
    EXPECT_EQ(s.cv(), 0.0);
}

TEST(RunningStats, SingleSample)
{
    RunningStats s;
    s.add(42.0);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 42.0);
    EXPECT_DOUBLE_EQ(s.variance(), 0.0);
    EXPECT_DOUBLE_EQ(s.min(), 42.0);
    EXPECT_DOUBLE_EQ(s.max(), 42.0);
}

TEST(RunningStats, MatchesNaiveComputation)
{
    std::vector<double> xs = {1.5, 2.25, -3.0, 8.0, 0.0, 4.5, 4.5};
    RunningStats s;
    double sum = 0.0;
    for (double x : xs) {
        s.add(x);
        sum += x;
    }
    double mean = sum / xs.size();
    double var = 0.0;
    for (double x : xs)
        var += (x - mean) * (x - mean);
    var /= xs.size();

    EXPECT_NEAR(s.mean(), mean, 1e-12);
    EXPECT_NEAR(s.variance(), var, 1e-12);
    EXPECT_NEAR(s.stddev(), std::sqrt(var), 1e-12);
    EXPECT_DOUBLE_EQ(s.sum(), sum);
}

TEST(RunningStats, SampleVarianceUsesNMinusOne)
{
    RunningStats s;
    s.add(1.0);
    s.add(3.0);
    EXPECT_DOUBLE_EQ(s.variance(), 1.0);        // population
    EXPECT_DOUBLE_EQ(s.sampleVariance(), 2.0);  // n-1
}

TEST(RunningStats, CvIsStddevOverMean)
{
    RunningStats s;
    s.add(10.0);
    s.add(20.0);
    // mean 15, population stddev 5 -> CV = 1/3
    EXPECT_NEAR(s.cv(), 5.0 / 15.0, 1e-12);
}

TEST(RunningStats, MinMaxTracked)
{
    RunningStats s;
    for (double x : {3.0, -7.0, 12.0, 0.5})
        s.add(x);
    EXPECT_DOUBLE_EQ(s.min(), -7.0);
    EXPECT_DOUBLE_EQ(s.max(), 12.0);
}

TEST(RunningStats, MergeEqualsSequential)
{
    Pcg32 rng(99);
    RunningStats whole;
    RunningStats a;
    RunningStats b;
    for (int i = 0; i < 500; ++i) {
        double x = rng.gaussian(5.0, 3.0);
        whole.add(x);
        (i < 200 ? a : b).add(x);
    }
    a.merge(b);
    EXPECT_EQ(a.count(), whole.count());
    EXPECT_NEAR(a.mean(), whole.mean(), 1e-9);
    EXPECT_NEAR(a.variance(), whole.variance(), 1e-9);
    EXPECT_DOUBLE_EQ(a.min(), whole.min());
    EXPECT_DOUBLE_EQ(a.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty)
{
    RunningStats a;
    a.add(1.0);
    a.add(2.0);
    RunningStats empty;
    RunningStats copy = a;
    copy.merge(empty);
    EXPECT_EQ(copy.count(), 2u);
    EXPECT_DOUBLE_EQ(copy.mean(), 1.5);

    RunningStats other;
    other.merge(a);
    EXPECT_EQ(other.count(), 2u);
    EXPECT_DOUBLE_EQ(other.mean(), 1.5);
}

TEST(RunningStats, ResetClears)
{
    RunningStats s;
    s.add(5.0);
    s.reset();
    EXPECT_EQ(s.count(), 0u);
    EXPECT_EQ(s.mean(), 0.0);
}

TEST(RunningStats, NumericallyStableForLargeOffsets)
{
    // Naive sum-of-squares catastrophically cancels here.
    RunningStats s;
    double base = 1e9;
    for (double d : {0.0, 1.0, 2.0, 3.0, 4.0})
        s.add(base + d);
    EXPECT_NEAR(s.mean(), base + 2.0, 1e-3);
    EXPECT_NEAR(s.variance(), 2.0, 1e-6);
}

TEST(RunningStats, ClampWeightPreservesMoments)
{
    RunningStats s;
    for (int i = 0; i < 1000; ++i)
        s.add(i % 2 ? 4.0 : 6.0);
    double mean = s.mean();
    double var = s.variance();
    s.clampWeight(10);
    EXPECT_EQ(s.count(), 10u);
    EXPECT_DOUBLE_EQ(s.mean(), mean);
    EXPECT_NEAR(s.variance(), var, 1e-9);
}

TEST(RunningStats, ClampWeightLetsNewSamplesMoveTheMean)
{
    RunningStats s;
    for (int i = 0; i < 1000; ++i)
        s.add(5.0);
    s.clampWeight(10);
    for (int i = 0; i < 10; ++i)
        s.add(6.0);
    // 10 stale vs 10 fresh members: the mean meets in the middle,
    // where without the clamp it would barely move (~5.01).
    EXPECT_NEAR(s.mean(), 5.5, 1e-9);
}

TEST(RunningStats, ClampWeightBelowCountIsANoOp)
{
    RunningStats s;
    s.add(1.0);
    s.add(3.0);
    s.clampWeight(10);
    EXPECT_EQ(s.count(), 2u);
    EXPECT_DOUBLE_EQ(s.mean(), 2.0);
}

} // namespace
} // namespace osp
