/** @file Tests for the binomial learning-window analysis (Sec. 4.3,
 *  Fig. 7). */

#include <gtest/gtest.h>

#include <cmath>

#include "stats/learning_window.hh"

namespace osp
{
namespace
{

TEST(LearningWindow, PaperOperatingPoint95)
{
    // pmin = 3%, DoC = 95%: the paper rounds the answer to 100.
    std::uint64_t n = learningWindowSize(0.03, 0.95);
    EXPECT_EQ(n, 99u);
    EXPECT_GE(probOccursAtLeastOnce(0.03, n), 0.95);
    EXPECT_LT(probOccursAtLeastOnce(0.03, n - 1), 0.95);
}

TEST(LearningWindow, PaperOperatingPoint99)
{
    // "a little bit over 150" at 99% confidence.
    std::uint64_t n = learningWindowSize(0.03, 0.99);
    EXPECT_EQ(n, 152u);
    EXPECT_GE(probOccursAtLeastOnce(0.03, n), 0.99);
    EXPECT_LT(probOccursAtLeastOnce(0.03, n - 1), 0.99);
}

TEST(LearningWindow, MonotoneInPmin)
{
    // Rarer clusters need longer windows.
    std::uint64_t prev = ~0ULL;
    for (double p = 0.01; p <= 0.2; p += 0.01) {
        std::uint64_t n = learningWindowSize(p, 0.95);
        EXPECT_LE(n, prev);
        prev = n;
    }
}

TEST(LearningWindow, MonotoneInConfidence)
{
    EXPECT_LT(learningWindowSize(0.05, 0.90),
              learningWindowSize(0.05, 0.95));
    EXPECT_LT(learningWindowSize(0.05, 0.95),
              learningWindowSize(0.05, 0.99));
}

TEST(LearningWindow, InvalidArgumentsDie)
{
    EXPECT_DEATH(learningWindowSize(0.0, 0.95), "p_min");
    EXPECT_DEATH(learningWindowSize(1.0, 0.95), "p_min");
    EXPECT_DEATH(learningWindowSize(0.03, 0.0), "doc");
    EXPECT_DEATH(learningWindowSize(0.03, 1.0), "doc");
}

TEST(ProbOccurs, Extremes)
{
    EXPECT_DOUBLE_EQ(probOccursAtLeastOnce(0.0, 100), 0.0);
    EXPECT_DOUBLE_EQ(probOccursAtLeastOnce(1.0, 1), 1.0);
    EXPECT_DOUBLE_EQ(probOccursAtLeastOnce(0.5, 0), 0.0);
}

TEST(ProbOccurs, MatchesClosedForm)
{
    // 1 - (1-p)^n
    EXPECT_NEAR(probOccursAtLeastOnce(0.5, 2), 0.75, 1e-12);
    EXPECT_NEAR(probOccursAtLeastOnce(0.1, 10),
                1.0 - std::pow(0.9, 10), 1e-12);
}

TEST(BinomialPmf, SumsToOne)
{
    double sum = 0.0;
    for (std::uint64_t k = 0; k <= 20; ++k)
        sum += binomialPmf(20, k, 0.3);
    EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(BinomialPmf, KnownValues)
{
    // C(4,2) * 0.5^4 = 6/16
    EXPECT_NEAR(binomialPmf(4, 2, 0.5), 0.375, 1e-12);
    EXPECT_NEAR(binomialPmf(3, 0, 0.2), 0.512, 1e-12);
    EXPECT_DOUBLE_EQ(binomialPmf(3, 4, 0.2), 0.0);
}

TEST(BinomialPmf, DegenerateProbabilities)
{
    EXPECT_DOUBLE_EQ(binomialPmf(5, 0, 0.0), 1.0);
    EXPECT_DOUBLE_EQ(binomialPmf(5, 3, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(binomialPmf(5, 5, 1.0), 1.0);
    EXPECT_DOUBLE_EQ(binomialPmf(5, 4, 1.0), 0.0);
}

TEST(BinomialTail, AgreesWithAtLeastOnce)
{
    // Eq. 2 is the k >= 1 tail of Eq. 1.
    for (double p : {0.01, 0.03, 0.1, 0.5}) {
        for (std::uint64_t n : {1u, 10u, 100u}) {
            EXPECT_NEAR(binomialTailAtLeast(n, 1, p),
                        probOccursAtLeastOnce(p, n), 1e-9);
        }
    }
}

TEST(BinomialTail, AtLeastZeroIsCertain)
{
    EXPECT_DOUBLE_EQ(binomialTailAtLeast(10, 0, 0.3), 1.0);
}

/** Fig. 7 property: the curve the paper plots. */
class LearningWindowCurve
    : public ::testing::TestWithParam<double>
{
};

TEST_P(LearningWindowCurve, WindowSatisfiesConfidence)
{
    double pmin = GetParam();
    for (double doc : {0.95, 0.99}) {
        std::uint64_t n = learningWindowSize(pmin, doc);
        EXPECT_GE(probOccursAtLeastOnce(pmin, n), doc);
        if (n > 1) {
            EXPECT_LT(probOccursAtLeastOnce(pmin, n - 1), doc);
        }
    }
}

INSTANTIATE_TEST_SUITE_P(Fig7Sweep, LearningWindowCurve,
                         ::testing::Values(0.005, 0.01, 0.02, 0.03,
                                           0.05, 0.08, 0.1, 0.15,
                                           0.2));

} // namespace
} // namespace osp
