/** @file Tests for Student's-t critical values and the Eq. 8 EPO
 *  bound. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "stats/student_t.hh"

namespace osp
{
namespace
{

TEST(StudentT, TabulatedValues)
{
    EXPECT_NEAR(studentTCritical(1, 0.05), 6.314, 1e-3);
    EXPECT_NEAR(studentTCritical(3, 0.05), 2.353, 1e-3);
    EXPECT_NEAR(studentTCritical(10, 0.05), 1.812, 1e-3);
    EXPECT_NEAR(studentTCritical(30, 0.05), 1.697, 1e-3);
    EXPECT_NEAR(studentTCritical(120, 0.05), 1.658, 1e-3);
}

TEST(StudentT, OtherAlphas)
{
    EXPECT_NEAR(studentTCritical(5, 0.10), 1.476, 1e-3);
    EXPECT_NEAR(studentTCritical(5, 0.025), 2.571, 1e-3);
    EXPECT_NEAR(studentTCritical(5, 0.01), 3.365, 1e-3);
}

TEST(StudentT, DecreasesWithDf)
{
    for (std::uint64_t df = 1; df < 30; ++df) {
        EXPECT_GT(studentTCritical(df, 0.05),
                  studentTCritical(df + 1, 0.05));
    }
}

TEST(StudentT, LargeDfApproachesNormal)
{
    // z_{0.05} = 1.645
    EXPECT_NEAR(studentTCritical(100000, 0.05), 1.645, 5e-3);
    EXPECT_NEAR(studentTCritical(100000, 0.01), 2.326, 5e-3);
}

TEST(StudentT, InterpolatedDfBetweenRows)
{
    // df = 50 sits between the 40 and 60 rows.
    double t50 = studentTCritical(50, 0.05);
    EXPECT_LT(t50, studentTCritical(40, 0.05));
    EXPECT_GT(t50, studentTCritical(60, 0.05));
}

TEST(StudentT, UnsupportedAlphaDies)
{
    EXPECT_DEATH(studentTCritical(5, 0.5), "alpha");
}

TEST(EpoUpperBound, TooFewSamplesIsInfinite)
{
    EXPECT_TRUE(std::isinf(epoUpperBound({})));
    EXPECT_TRUE(std::isinf(epoUpperBound({0.05})));
}

TEST(EpoUpperBound, ZeroVarianceEqualsMean)
{
    std::vector<double> epos = {0.04, 0.04, 0.04, 0.04};
    EXPECT_NEAR(epoUpperBound(epos), 0.04, 1e-12);
}

TEST(EpoUpperBound, MatchesHandComputation)
{
    // epos = {0.02, 0.04}: mean 0.03, sample stddev ~0.014142,
    // t_{1,0.05} = 6.314, bound = 0.03 + 6.314*0.014142/sqrt(2).
    std::vector<double> epos = {0.02, 0.04};
    double s = std::sqrt(((0.02 - 0.03) * (0.02 - 0.03) +
                          (0.04 - 0.03) * (0.04 - 0.03)) /
                         1.0);
    double expect = 0.03 + 6.314 * s / std::sqrt(2.0);
    EXPECT_NEAR(epoUpperBound(epos), expect, 1e-6);
}

TEST(EpoUpperBound, RareClusterStaysBelowPmin)
{
    // Consistently tiny EPOs: we stay confident it's rare.
    std::vector<double> epos = {0.01, 0.012, 0.008, 0.011};
    EXPECT_LT(epoUpperBound(epos), 0.03);
}

TEST(EpoUpperBound, FrequentClusterCrossesPmin)
{
    std::vector<double> epos = {0.05, 0.06, 0.04, 0.05};
    EXPECT_GE(epoUpperBound(epos), 0.03);
}

TEST(EpoUpperBound, MoreSamplesTightenTheBound)
{
    std::vector<double> few = {0.02, 0.03, 0.025, 0.028};
    std::vector<double> many = few;
    for (int i = 0; i < 4; ++i)
        many.insert(many.end(), few.begin(), few.end());
    EXPECT_LT(epoUpperBound(many), epoUpperBound(few));
}

} // namespace
} // namespace osp
