/** @file Tests for the mmap page store: basic KV semantics,
 *  persistence across reopen, overflow values, leaf splitting,
 *  freelist reuse, crash recovery via commit fail points and torn
 *  meta pages, snapshot isolation of readers against a concurrent
 *  writer, and corruption rejection. */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <random>
#include <stdexcept>
#include <string>

#include "store/page_store.hh"

namespace osp::store
{
namespace
{

/** A unique store path in the test temp dir, removed on teardown. */
class PageStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("osp_store_test_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()) +
                  ".db"))
                    .string();
        std::filesystem::remove(path_);
    }

    void TearDown() override { std::filesystem::remove(path_); }

    std::string path_;
};

TEST_F(PageStoreTest, PutGetAndReopen)
{
    {
        auto store = PageStore::open(path_);
        WriteTx tx = store->beginWrite();
        tx.put("alpha", "1");
        tx.put("beta", "2");
        tx.commit();
        auto read = store->beginRead();
        EXPECT_EQ(read.get("alpha"), "1");
        EXPECT_EQ(read.get("beta"), "2");
        EXPECT_EQ(read.get("gamma"), std::nullopt);
        EXPECT_EQ(read.size(), 2u);
    }
    // Durable across process-lifetime boundaries (fresh open).
    auto store = PageStore::open(path_);
    auto read = store->beginRead();
    EXPECT_EQ(read.get("alpha"), "1");
    EXPECT_EQ(read.get("beta"), "2");
}

TEST_F(PageStoreTest, OverwriteAndErase)
{
    auto store = PageStore::open(path_);
    {
        WriteTx tx = store->beginWrite();
        tx.put("k", "old");
        tx.commit();
    }
    {
        WriteTx tx = store->beginWrite();
        tx.put("k", "new");
        EXPECT_EQ(tx.get("k"), "new");  // reads through staging
        tx.commit();
    }
    EXPECT_EQ(store->beginRead().get("k"), "new");
    {
        WriteTx tx = store->beginWrite();
        EXPECT_TRUE(tx.erase("k"));
        EXPECT_FALSE(tx.erase("k"));
        tx.commit();
    }
    EXPECT_EQ(store->beginRead().get("k"), std::nullopt);
    EXPECT_EQ(store->beginRead().size(), 0u);
}

TEST_F(PageStoreTest, DroppedWriteTxRollsBack)
{
    auto store = PageStore::open(path_);
    {
        WriteTx tx = store->beginWrite();
        tx.put("k", "v");
        // no commit
    }
    EXPECT_EQ(store->beginRead().get("k"), std::nullopt);
}

TEST_F(PageStoreTest, OverflowValuesRoundTrip)
{
    // Values far beyond one page go to overflow runs.
    std::string big(200 * 1024, 'x');
    for (std::size_t i = 0; i < big.size(); ++i)
        big[i] = static_cast<char>('a' + i % 26);
    {
        auto store = PageStore::open(path_);
        WriteTx tx = store->beginWrite();
        tx.put("big", big);
        tx.put("small", "s");
        tx.commit();
    }
    auto store = PageStore::open(path_);
    EXPECT_EQ(store->beginRead().get("big"), big);
    EXPECT_EQ(store->beginRead().get("small"), "s");
}

TEST_F(PageStoreTest, ManyKeysSplitLeavesAndScanInOrder)
{
    auto store = PageStore::open(path_);
    {
        WriteTx tx = store->beginWrite();
        for (int i = 0; i < 500; ++i) {
            char key[32];
            std::snprintf(key, sizeof key, "key/%05d", i);
            tx.put(key, "value-" + std::to_string(i));
        }
        tx.commit();
    }
    EXPECT_GT(store->info().leafPages, 1u);

    auto read = store->beginRead();
    EXPECT_EQ(read.size(), 500u);
    int n = 0;
    std::string prev;
    read.scan("key/", [&](std::string_view k, std::string_view v) {
        EXPECT_GT(std::string(k), prev);
        prev = std::string(k);
        ++n;
        EXPECT_EQ(v.substr(0, 6), "value-");
        return true;
    });
    EXPECT_EQ(n, 500);

    // Prefix scans see only their subtree; early exit works.
    n = 0;
    read.scan("key/0002",
              [&](std::string_view, std::string_view) {
                  ++n;
                  return true;
              });
    EXPECT_EQ(n, 10);
    n = 0;
    read.scan("key/", [&](std::string_view, std::string_view) {
        return ++n < 7;
    });
    EXPECT_EQ(n, 7);
}

TEST_F(PageStoreTest, FreelistReusePlateausFileSize)
{
    auto store = PageStore::open(path_);
    std::uint64_t high_water = 0;
    for (int round = 0; round < 30; ++round) {
        WriteTx tx = store->beginWrite();
        for (int k = 0; k < 20; ++k)
            tx.put("k" + std::to_string(k),
                   "round-" + std::to_string(round));
        tx.commit();
        std::uint64_t pages = store->info().numPages;
        if (round == 10)
            high_water = pages;
        if (round > 10) {
            // Copy-on-write churn must recycle pages, not grow the
            // file forever (some slack for freelist-run resizing).
            EXPECT_LE(pages, high_water + 8)
                << "round " << round;
        }
    }
    EXPECT_GT(store->info().freePages +
                  store->info().pendingPages,
              0u);
}

TEST_F(PageStoreTest, KillBeforeMetaWriteRecoversOldState)
{
    auto store = PageStore::open(path_);
    {
        WriteTx tx = store->beginWrite();
        tx.put("stable", "v1");
        tx.commit();
    }
    store->setFailPoint(PageStore::FailPoint::BeforeMetaWrite);
    {
        WriteTx tx = store->beginWrite();
        tx.put("stable", "v2");
        tx.put("fresh", "x");
        EXPECT_THROW(tx.commit(), std::runtime_error);
    }
    // In-process state rolled back...
    EXPECT_EQ(store->beginRead().get("stable"), "v1");
    EXPECT_EQ(store->beginRead().get("fresh"), std::nullopt);
    // ...and the next commit works on the old tree.
    {
        WriteTx tx = store->beginWrite();
        tx.put("after", "y");
        tx.commit();
    }
    EXPECT_EQ(store->beginRead().get("stable"), "v1");
    EXPECT_EQ(store->beginRead().get("after"), "y");

    // The on-disk image never saw the aborted commit's meta: a
    // fresh open (the "kill -9 and restart" view) agrees.
    store.reset();
    auto reopened = PageStore::open(path_);
    EXPECT_EQ(reopened->beginRead().get("stable"), "v1");
    EXPECT_EQ(reopened->beginRead().get("fresh"), std::nullopt);
    EXPECT_EQ(reopened->beginRead().get("after"), "y");
}

TEST_F(PageStoreTest, TornMetaFallsBackToOtherSlot)
{
    std::uint32_t page_size = 0;
    {
        auto store = PageStore::open(path_);
        page_size = store->pageSize();
        {
            WriteTx tx = store->beginWrite();
            tx.put("a", "1");
            tx.commit();  // txid 2 -> meta slot 0
        }
        {
            WriteTx tx = store->beginWrite();
            tx.put("b", "2");
            tx.commit();  // txid 3 -> meta slot 1
        }
    }
    // Corrupt the newest meta (slot 1): flip a checksummed byte.
    {
        std::FILE *f = std::fopen(path_.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        std::fseek(f, static_cast<long>(page_size) + 40, SEEK_SET);
        int c = std::fgetc(f);
        std::fseek(f, static_cast<long>(page_size) + 40, SEEK_SET);
        std::fputc(c ^ 0xff, f);
        std::fclose(f);
    }
    // Open falls back to slot 0: the tx1 state.
    auto store = PageStore::open(path_);
    EXPECT_EQ(store->beginRead().get("a"), "1");
    EXPECT_EQ(store->beginRead().get("b"), std::nullopt);
}

TEST_F(PageStoreTest, BothMetasCorruptIsAnError)
{
    {
        auto store = PageStore::open(path_);
        WriteTx tx = store->beginWrite();
        tx.put("a", "1");
        tx.commit();
    }
    {
        std::FILE *f = std::fopen(path_.c_str(), "r+b");
        ASSERT_NE(f, nullptr);
        // Smash the magic of both meta pages.
        for (long off : {16L, 4096L + 16L, 8192L + 16L,
                         16384L + 16L, 65536L + 16L}) {
            std::fseek(f, off, SEEK_SET);
            std::fputc(0, f);
        }
        std::fclose(f);
    }
    EXPECT_THROW(PageStore::open(path_), std::runtime_error);
}

TEST_F(PageStoreTest, TruncatedFileIsAnError)
{
    std::uint32_t page_size = 0;
    {
        auto store = PageStore::open(path_);
        page_size = store->pageSize();
        // Two commits so BOTH meta slots reference the grown file
        // (otherwise open could legitimately fall back to the
        // still-valid older slot).
        for (int round = 0; round < 2; ++round) {
            WriteTx tx = store->beginWrite();
            for (int i = 0; i < 100; ++i)
                tx.put("k" + std::to_string(round) +
                           "/" + std::to_string(i),
                       std::string(1000, 'v'));
            tx.commit();
        }
    }
    // Keep the two meta pages, drop the data behind them. Both
    // metas' numPages now point beyond the file: corrupt, not a
    // silently-empty store.
    std::filesystem::resize_file(path_, 2 * page_size);
    EXPECT_THROW(PageStore::open(path_), std::runtime_error);
}

TEST_F(PageStoreTest, ReaderIsSnapshotIsolatedFromWriter)
{
    auto store = PageStore::open(path_);
    {
        WriteTx tx = store->beginWrite();
        tx.put("k", "before");
        tx.put("gone", "x");
        tx.commit();
    }

    ReadTx snapshot = store->beginRead();
    {
        WriteTx tx = store->beginWrite();
        tx.put("k", "after");
        tx.erase("gone");
        tx.put("new", "y");
        tx.commit();
    }
    // The snapshot still sees the world at its begin...
    EXPECT_EQ(snapshot.get("k"), "before");
    EXPECT_EQ(snapshot.get("gone"), "x");
    EXPECT_EQ(snapshot.get("new"), std::nullopt);
    EXPECT_EQ(snapshot.size(), 2u);
    // ...while new readers see the commit.
    EXPECT_EQ(store->beginRead().get("k"), "after");
    EXPECT_EQ(store->beginRead().get("new"), "y");
}

TEST_F(PageStoreTest, SnapshotSurvivesChurnAndGrowth)
{
    auto store = PageStore::open(path_);
    {
        WriteTx tx = store->beginWrite();
        tx.put("pinned", std::string(5000, 'p'));
        tx.commit();
    }
    ReadTx snapshot = store->beginRead();

    // Heavy churn: many commits, overflow values, file growth (the
    // mapping is replaced while the snapshot holds the old view).
    std::mt19937 rng(7);
    for (int round = 0; round < 15; ++round) {
        WriteTx tx = store->beginWrite();
        for (int k = 0; k < 10; ++k) {
            std::string v(1000 + rng() % 20000, 'a');
            tx.put("churn" + std::to_string(rng() % 50), v);
        }
        tx.commit();
    }
    EXPECT_EQ(snapshot.get("pinned"), std::string(5000, 'p'));
    EXPECT_EQ(snapshot.size(), 1u);
}

TEST_F(PageStoreTest, PendingPagesNotReusedWhileReaderLive)
{
    auto store = PageStore::open(path_);
    {
        WriteTx tx = store->beginWrite();
        tx.put("k", std::string(3000, 'v'));
        tx.commit();
    }
    {
        ReadTx reader = store->beginRead();
        {
            WriteTx tx = store->beginWrite();
            tx.put("k", std::string(3000, 'w'));
            tx.commit();
        }
        // Pages of the reader's tree were freed by the commit but
        // must sit pending, not free.
        StoreInfo info = store->info();
        EXPECT_GT(info.pendingPages, 0u);
        EXPECT_EQ(reader.get("k"), std::string(3000, 'v'));
    }
    // Reader gone: the next commit may promote and reuse them.
    {
        WriteTx tx = store->beginWrite();
        tx.put("k2", "x");
        tx.commit();
    }
    EXPECT_GT(store->info().freePages + store->info().pendingPages,
              0u);
}

TEST_F(PageStoreTest, ReadOnlyOpenSeesDataAndRejectsWrites)
{
    {
        auto store = PageStore::open(path_);
        WriteTx tx = store->beginWrite();
        tx.put("k", "v");
        tx.commit();
    }
    StoreOptions opts;
    opts.readOnly = true;
    auto store = PageStore::open(path_, opts);
    EXPECT_EQ(store->beginRead().get("k"), "v");
    EXPECT_THROW(store->beginWrite(), std::runtime_error);
}

TEST_F(PageStoreTest, ReadOnlyOpenOfMissingFileIsAnError)
{
    StoreOptions opts;
    opts.readOnly = true;
    EXPECT_THROW(PageStore::open(path_, opts),
                 std::runtime_error);
}

TEST_F(PageStoreTest, KeySizeLimitEnforced)
{
    auto store = PageStore::open(path_);
    WriteTx tx = store->beginWrite();
    EXPECT_THROW(tx.put("", "v"), std::runtime_error);
    EXPECT_THROW(tx.put(std::string(maxKeySize + 1, 'k'), "v"),
                 std::runtime_error);
    tx.put(std::string(maxKeySize, 'k'), "v");  // at the limit: ok
    tx.commit();
}

TEST_F(PageStoreTest, MetaChecksumMatchesToolContract)
{
    // tools/check_store.py re-computes this checksum; pin the
    // algorithm with a fixed meta.
    Meta m;
    m.pageSize = 4096;
    m.root = 3;
    m.freelist = 4;
    m.numPages = 7;
    m.txid = 9;
    std::uint64_t sum = metaChecksum(m);
    EXPECT_NE(sum, 0u);
    m.checksum = sum;
    EXPECT_EQ(metaChecksum(m), sum);  // checksum field excluded
    m.txid = 10;
    EXPECT_NE(metaChecksum(m), sum);
}

} // namespace
} // namespace osp::store
