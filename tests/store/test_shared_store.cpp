/** @file Tests for multi-process store arbitration: the exclusive
 *  open-lifetime writer gate (clear double-open diagnostics, the
 *  --store-wait path, lockless read-only opens) and shared worker
 *  mode (per-transaction gating, cross-handle visibility through
 *  refresh, nested-transaction rejection, gate timeouts).
 *
 *  flock(2) locks belong to the open file description, so two
 *  PageStore handles in one process contend exactly like two
 *  processes — every cross-process scenario here runs in-process.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <filesystem>
#include <string>
#include <thread>

#include "store/page_store.hh"

namespace osp::store
{
namespace
{

class SharedStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("osp_shared_test_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()) +
                  ".db"))
                    .string();
        std::filesystem::remove(path_);
        std::filesystem::remove(path_ + ".lock");
    }

    void
    TearDown() override
    {
        std::filesystem::remove(path_);
        std::filesystem::remove(path_ + ".lock");
    }

    StoreOptions
    sharedOptions(long tx_wait_ms = 60000) const
    {
        StoreOptions o;
        o.shared = true;
        o.txLockWaitMs = tx_wait_ms;
        return o;
    }

    std::string path_;
};

TEST_F(SharedStoreTest, SecondReadWriteOpenFailsWithDiagnostic)
{
    auto first = PageStore::open(path_);
    try {
        auto second = PageStore::open(path_);
        FAIL() << "second read-write open must throw";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        // The diagnostic names the store, the holder, and the
        // escape hatch — satellite: no UB, a clear failure.
        EXPECT_NE(msg.find(path_), std::string::npos) << msg;
        EXPECT_NE(msg.find("exclusive"), std::string::npos) << msg;
        EXPECT_NE(msg.find("--store-wait"), std::string::npos)
            << msg;
    }
}

TEST_F(SharedStoreTest, LockWaitRidesOutAShortHolder)
{
    auto holder = PageStore::open(path_);
    std::thread releaser([&holder] {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));
        holder.reset();
    });
    StoreOptions wait;
    wait.lockWaitMs = 10000;
    // Blocks until the holder releases, then succeeds.
    auto second = PageStore::open(path_, wait);
    releaser.join();
    EXPECT_EQ(second->beginRead().size(), 0u);
}

TEST_F(SharedStoreTest, ReadOnlyOpenTakesNoLock)
{
    auto writer = PageStore::open(path_);
    {
        WriteTx tx = writer->beginWrite();
        tx.put("k", "v");
        tx.commit();
    }
    StoreOptions ro;
    ro.readOnly = true;
    // Concurrent with the exclusive writer: read-only inspection
    // tools must never be locked out.
    auto reader = PageStore::open(path_, ro);
    EXPECT_EQ(reader->beginRead().get("k"), "v");
}

TEST_F(SharedStoreTest, SharedHandlesSeeEachOthersCommits)
{
    auto a = PageStore::open(path_, sharedOptions());
    auto b = PageStore::open(path_, sharedOptions());

    {
        WriteTx tx = a->beginWrite();
        tx.put("from-a", "1");
        tx.commit();
    }
    // b's next transaction refreshes from disk and sees a's commit.
    EXPECT_EQ(b->beginRead().get("from-a"), "1");

    {
        WriteTx tx = b->beginWrite();
        tx.put("from-b", "2");
        tx.commit();
    }
    EXPECT_EQ(a->beginRead().get("from-a"), "1");
    EXPECT_EQ(a->beginRead().get("from-b"), "2");
}

TEST_F(SharedStoreTest, SharedRefreshFollowsFileGrowth)
{
    auto a = PageStore::open(path_, sharedOptions());
    auto b = PageStore::open(path_, sharedOptions());

    // Grow the file well past its creation size through a, then
    // read every value back through b (whose mapping must refresh).
    std::string big(64 * 1024, 'x');
    for (int i = 0; i < 8; ++i) {
        WriteTx tx = a->beginWrite();
        tx.put("big" + std::to_string(i),
               big + std::to_string(i));
        tx.commit();
    }
    for (int i = 0; i < 8; ++i) {
        auto got =
            b->beginRead().get("big" + std::to_string(i));
        ASSERT_TRUE(got.has_value()) << i;
        EXPECT_EQ(*got, big + std::to_string(i));
    }
    // And interleaved writes through b still commit correctly.
    {
        WriteTx tx = b->beginWrite();
        tx.put("after-growth", "ok");
        tx.commit();
    }
    EXPECT_EQ(a->beginRead().get("after-growth"), "ok");
}

TEST_F(SharedStoreTest, NestedTransactionThrowsInSharedMode)
{
    auto store = PageStore::open(path_, sharedOptions());
    ReadTx read = store->beginRead();
    // A second transaction on the same thread would self-deadlock
    // on the gate; the store throws instead.
    EXPECT_THROW(store->beginWrite(), std::runtime_error);
    EXPECT_THROW(store->beginRead(), std::runtime_error);
}

TEST_F(SharedStoreTest, SharedOpenTimesOutAgainstExclusiveHolder)
{
    auto exclusive = PageStore::open(path_);
    try {
        auto worker = PageStore::open(path_, sharedOptions(50));
        FAIL() << "shared open must time out";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find(path_), std::string::npos) << msg;
        EXPECT_NE(msg.find("exclusive"), std::string::npos) << msg;
    }
}

TEST_F(SharedStoreTest, TransactionGateTimesOutWithHolderHint)
{
    auto a = PageStore::open(path_, sharedOptions());
    auto b = PageStore::open(path_, sharedOptions(50));

    {
        WriteTx held = a->beginWrite();  // a holds the gate
        try {
            WriteTx blocked = b->beginWrite();
            FAIL() << "gated transaction must time out";
        } catch (const std::runtime_error &e) {
            std::string msg = e.what();
            EXPECT_NE(msg.find("writer gate"), std::string::npos)
                << msg;
            EXPECT_NE(msg.find("shared worker"), std::string::npos)
                << msg;
        }
        held.commit();
    }  // the gate is held until destruction, not commit
    // Gate released: b proceeds.
    {
        WriteTx after = b->beginWrite();
        after.put("k", "v");
        after.commit();
    }
    EXPECT_EQ(a->beginRead().get("k"), "v");
}

} // namespace
} // namespace osp::store
