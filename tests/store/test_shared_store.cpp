/** @file Tests for multi-process store arbitration: the exclusive
 *  open-lifetime writer gate (clear double-open diagnostics, the
 *  --store-wait path, lockless read-only opens) and shared worker
 *  mode (per-transaction gating, cross-handle visibility through
 *  refresh, nested-transaction rejection, gate timeouts), and the
 *  snapshot isolation the fleet telemetry plane leans on: a reader
 *  concurrent with a publishing writer sees the old or the new
 *  fleet snapshot, never a torn one, and a commit killed at the
 *  meta-write fail point leaves the previous snapshot intact.
 *
 *  flock(2) locks belong to the open file description, so two
 *  PageStore handles in one process contend exactly like two
 *  processes — every cross-process scenario here runs in-process.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>

#include "driver/fleet.hh"
#include "store/claim_table.hh"
#include "store/page_store.hh"

namespace osp::store
{
namespace
{

class SharedStoreTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("osp_shared_test_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()) +
                  ".db"))
                    .string();
        std::filesystem::remove(path_);
        std::filesystem::remove(path_ + ".lock");
    }

    void
    TearDown() override
    {
        std::filesystem::remove(path_);
        std::filesystem::remove(path_ + ".lock");
    }

    StoreOptions
    sharedOptions(long tx_wait_ms = 60000) const
    {
        StoreOptions o;
        o.shared = true;
        o.txLockWaitMs = tx_wait_ms;
        return o;
    }

    std::string path_;
};

TEST_F(SharedStoreTest, SecondReadWriteOpenFailsWithDiagnostic)
{
    auto first = PageStore::open(path_);
    try {
        auto second = PageStore::open(path_);
        FAIL() << "second read-write open must throw";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        // The diagnostic names the store, the holder, and the
        // escape hatch — satellite: no UB, a clear failure.
        EXPECT_NE(msg.find(path_), std::string::npos) << msg;
        EXPECT_NE(msg.find("exclusive"), std::string::npos) << msg;
        EXPECT_NE(msg.find("--store-wait"), std::string::npos)
            << msg;
    }
}

TEST_F(SharedStoreTest, LockWaitRidesOutAShortHolder)
{
    auto holder = PageStore::open(path_);
    std::thread releaser([&holder] {
        std::this_thread::sleep_for(
            std::chrono::milliseconds(100));
        holder.reset();
    });
    StoreOptions wait;
    wait.lockWaitMs = 10000;
    // Blocks until the holder releases, then succeeds.
    auto second = PageStore::open(path_, wait);
    releaser.join();
    EXPECT_EQ(second->beginRead().size(), 0u);
}

TEST_F(SharedStoreTest, ReadOnlyOpenTakesNoLock)
{
    auto writer = PageStore::open(path_);
    {
        WriteTx tx = writer->beginWrite();
        tx.put("k", "v");
        tx.commit();
    }
    StoreOptions ro;
    ro.readOnly = true;
    // Concurrent with the exclusive writer: read-only inspection
    // tools must never be locked out.
    auto reader = PageStore::open(path_, ro);
    EXPECT_EQ(reader->beginRead().get("k"), "v");
}

TEST_F(SharedStoreTest, SharedHandlesSeeEachOthersCommits)
{
    auto a = PageStore::open(path_, sharedOptions());
    auto b = PageStore::open(path_, sharedOptions());

    {
        WriteTx tx = a->beginWrite();
        tx.put("from-a", "1");
        tx.commit();
    }
    // b's next transaction refreshes from disk and sees a's commit.
    EXPECT_EQ(b->beginRead().get("from-a"), "1");

    {
        WriteTx tx = b->beginWrite();
        tx.put("from-b", "2");
        tx.commit();
    }
    EXPECT_EQ(a->beginRead().get("from-a"), "1");
    EXPECT_EQ(a->beginRead().get("from-b"), "2");
}

TEST_F(SharedStoreTest, SharedRefreshFollowsFileGrowth)
{
    auto a = PageStore::open(path_, sharedOptions());
    auto b = PageStore::open(path_, sharedOptions());

    // Grow the file well past its creation size through a, then
    // read every value back through b (whose mapping must refresh).
    std::string big(64 * 1024, 'x');
    for (int i = 0; i < 8; ++i) {
        WriteTx tx = a->beginWrite();
        tx.put("big" + std::to_string(i),
               big + std::to_string(i));
        tx.commit();
    }
    for (int i = 0; i < 8; ++i) {
        auto got =
            b->beginRead().get("big" + std::to_string(i));
        ASSERT_TRUE(got.has_value()) << i;
        EXPECT_EQ(*got, big + std::to_string(i));
    }
    // And interleaved writes through b still commit correctly.
    {
        WriteTx tx = b->beginWrite();
        tx.put("after-growth", "ok");
        tx.commit();
    }
    EXPECT_EQ(a->beginRead().get("after-growth"), "ok");
}

TEST_F(SharedStoreTest, NestedTransactionThrowsInSharedMode)
{
    auto store = PageStore::open(path_, sharedOptions());
    ReadTx read = store->beginRead();
    // A second transaction on the same thread would self-deadlock
    // on the gate; the store throws instead.
    EXPECT_THROW(store->beginWrite(), std::runtime_error);
    EXPECT_THROW(store->beginRead(), std::runtime_error);
}

TEST_F(SharedStoreTest, SharedOpenTimesOutAgainstExclusiveHolder)
{
    auto exclusive = PageStore::open(path_);
    try {
        auto worker = PageStore::open(path_, sharedOptions(50));
        FAIL() << "shared open must time out";
    } catch (const std::runtime_error &e) {
        std::string msg = e.what();
        EXPECT_NE(msg.find(path_), std::string::npos) << msg;
        EXPECT_NE(msg.find("exclusive"), std::string::npos) << msg;
    }
}

TEST_F(SharedStoreTest, TransactionGateTimesOutWithHolderHint)
{
    auto a = PageStore::open(path_, sharedOptions());
    auto b = PageStore::open(path_, sharedOptions(50));

    {
        WriteTx held = a->beginWrite();  // a holds the gate
        try {
            WriteTx blocked = b->beginWrite();
            FAIL() << "gated transaction must time out";
        } catch (const std::runtime_error &e) {
            std::string msg = e.what();
            EXPECT_NE(msg.find("writer gate"), std::string::npos)
                << msg;
            EXPECT_NE(msg.find("shared worker"), std::string::npos)
                << msg;
        }
        held.commit();
    }  // the gate is held until destruction, not commit
    // Gate released: b proceeds.
    {
        WriteTx after = b->beginWrite();
        after.put("k", "v");
        after.commit();
    }
    EXPECT_EQ(a->beginRead().get("k"), "v");
}

/** Build a minimal fleet snapshot whose version and epoch both
 *  equal @p n — the pairing the torn-read check below leans on. */
osp::WorkerSnapshot
pairedSnapshot(std::uint64_t n)
{
    osp::WorkerSnapshot snap;
    snap.owner = "w";
    snap.pid = 1;
    snap.version = n;
    snap.epoch = n;
    snap.stats.claimed = n;
    return snap;
}

TEST_F(SharedStoreTest, FleetSnapshotReadersSeeOldOrNewNeverTorn)
{
    // The monitor's crash-consistency contract: a fleet snapshot
    // and the heartbeat it was published against are committed in
    // one transaction, so any reader must observe them as a pair —
    // decodable, version == heartbeat, versions never going
    // backwards — no matter how its reads interleave with the
    // writer's commits.
    constexpr const char *fp = "tornfp";
    const std::string key = osp::fleetKey(fp, "w");
    const std::string hb_key = ClaimTable::heartbeatKey(fp);
    constexpr std::uint64_t rounds = 40;

    auto writer = PageStore::open(path_, sharedOptions());
    auto reader = PageStore::open(path_, sharedOptions());

    std::atomic<bool> done{false};
    std::thread publisher([&] {
        for (std::uint64_t i = 1; i <= rounds; ++i) {
            WriteTx tx = writer->beginWrite();
            tx.put(key, osp::encodeWorkerSnapshot(
                            pairedSnapshot(i)));
            tx.put(hb_key, std::to_string(i));
            tx.commit();
        }
        done = true;
    });

    std::uint64_t last_seen = 0;
    while (!done) {
        std::optional<std::string> raw;
        std::optional<std::string> hb;
        {
            ReadTx read = reader->beginRead();
            raw = read.get(key);
            hb = read.get(hb_key);
        }
        if (!raw) {
            // Nothing published yet; the heartbeat can't have
            // committed without the snapshot either.
            EXPECT_FALSE(hb.has_value());
            continue;
        }
        auto snap = osp::decodeWorkerSnapshot(*raw);
        ASSERT_TRUE(snap.has_value()) << "torn snapshot bytes";
        ASSERT_TRUE(hb.has_value());
        // The pair is atomic and time never runs backwards.
        EXPECT_EQ(std::to_string(snap->version), *hb);
        EXPECT_GE(snap->version, last_seen);
        last_seen = snap->version;
    }
    publisher.join();

    // After the writer is done the final pair is durable.
    ReadTx read = reader->beginRead();
    auto snap = osp::decodeWorkerSnapshot(*read.get(key));
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->version, rounds);
    EXPECT_EQ(read.get(hb_key), std::to_string(rounds));
}

TEST_F(SharedStoreTest, FailedCommitPreservesPreviousFleetSnapshot)
{
    // Kill-point companion to the page-store crash tests: a commit
    // that dies before the meta write must leave the previously
    // committed fleet snapshot (and its heartbeat) intact, both for
    // this handle and for a fresh read-only open — which is what a
    // monitor polling across a worker crash sees.
    constexpr const char *fp = "killfp";
    const std::string key = osp::fleetKey(fp, "w");
    const std::string hb_key = ClaimTable::heartbeatKey(fp);

    auto store = PageStore::open(path_, sharedOptions());
    {
        WriteTx tx = store->beginWrite();
        tx.put(key,
               osp::encodeWorkerSnapshot(pairedSnapshot(1)));
        tx.put(hb_key, "1");
        tx.commit();
    }

    store->setFailPoint(PageStore::FailPoint::BeforeMetaWrite);
    {
        WriteTx tx = store->beginWrite();
        tx.put(key,
               osp::encodeWorkerSnapshot(pairedSnapshot(2)));
        tx.put(hb_key, "2");
        EXPECT_THROW(tx.commit(), std::runtime_error);
    }
    store->setFailPoint(PageStore::FailPoint::None);

    // In-process state rolled back to version 1...
    {
        ReadTx read = store->beginRead();
        auto snap = osp::decodeWorkerSnapshot(*read.get(key));
        ASSERT_TRUE(snap.has_value());
        EXPECT_EQ(snap->version, 1u);
        EXPECT_EQ(read.get(hb_key), "1");
    }
    // ...and so did the durable state a monitor would open.
    {
        StoreOptions ro;
        ro.readOnly = true;
        auto monitor = PageStore::open(path_, ro);
        auto snap = osp::decodeWorkerSnapshot(
            *monitor->beginRead().get(key));
        ASSERT_TRUE(snap.has_value());
        EXPECT_EQ(snap->version, 1u);
    }

    // The store keeps working on the old tree: the next publish
    // lands normally.
    {
        WriteTx tx = store->beginWrite();
        tx.put(key,
               osp::encodeWorkerSnapshot(pairedSnapshot(2)));
        tx.put(hb_key, "2");
        tx.commit();
    }
    auto snap =
        osp::decodeWorkerSnapshot(*store->beginRead().get(key));
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->version, 2u);
}

} // namespace
} // namespace osp::store
