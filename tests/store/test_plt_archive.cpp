/** @file Tests for the PLT archive layer: save/load/list/remove
 *  semantics over the shared page store, keyspace hygiene against
 *  the cell cache, and the headline property — warm-starting a
 *  predictor from an archived profile is deterministic (two runs
 *  from the same profile encode to identical bytes). */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "core/predictor_backend.hh"
#include "driver/cell_io.hh"
#include "driver/experiments.hh"
#include "driver/sweep.hh"
#include "store/plt_archive.hh"
#include "util/hash.hh"

namespace osp
{
namespace
{

class PltArchiveTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("osp_plt_test_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()) +
                  ".db"))
                    .string();
        std::filesystem::remove(path_);
        store_ = store::PageStore::open(path_);
    }

    void
    TearDown() override
    {
        store_.reset();
        std::filesystem::remove(path_);
    }

    std::string path_;
    std::unique_ptr<store::PageStore> store_;
};

/** The small sweep the driver tests use: 2 workloads x (Full +
 *  2 accelerated predictor variants) = 6 cells. */
SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.name = "tiny";
    spec.workloads = {"ab-rand", "du"};
    spec.modes = {RunMode::Full, RunMode::Accelerated};
    spec.predictors = {
        {"statistical",
         experimentPredictor(RelearnStrategy::Statistical)},
        {"eager", experimentPredictor(RelearnStrategy::Eager)}};
    spec.scale = 0.2;
    return spec;
}

TEST_F(PltArchiveTest, SaveLoadRoundTrip)
{
    store::PltArchive archive(*store_);
    EXPECT_EQ(archive.load("du"), std::nullopt);

    archive.save("du", "ospredict-profile v1\nfake body\n");
    EXPECT_EQ(archive.load("du"),
              "ospredict-profile v1\nfake body\n");

    // Replacement, not accumulation.
    archive.save("du", "ospredict-profile v1\nnewer\n");
    EXPECT_EQ(archive.load("du"),
              "ospredict-profile v1\nnewer\n");
}

TEST_F(PltArchiveTest, ListIsSortedAndScopedToPltKeys)
{
    store::PltArchive archive(*store_);
    archive.save("zz-last", "profile-z");
    archive.save("aa-first", "profile-a");
    {
        // A foreign keyspace entry (what the cell cache writes)
        // must not leak into the listing.
        store::WriteTx tx = store_->beginWrite();
        tx.put("cell/deadbeef/0123456789abcdef", "{}");
        tx.commit();
    }

    auto entries = archive.list();
    ASSERT_EQ(entries.size(), 2u);
    EXPECT_EQ(entries[0].workload, "aa-first");
    EXPECT_EQ(entries[0].profileHash, stableHash64("profile-a"));
    EXPECT_EQ(entries[0].bytes, 9u);
    EXPECT_EQ(entries[1].workload, "zz-last");
}

TEST_F(PltArchiveTest, RemoveDeletesOnlyItsWorkload)
{
    store::PltArchive archive(*store_);
    archive.save("a", "pa");
    archive.save("b", "pb");
    EXPECT_TRUE(archive.remove("a"));
    EXPECT_FALSE(archive.remove("a"));
    EXPECT_EQ(archive.load("a"), std::nullopt);
    EXPECT_EQ(archive.load("b"), "pb");
}

TEST_F(PltArchiveTest, KeyLayout)
{
    EXPECT_EQ(store::PltArchive::key("du"), "plt/du");
}

TEST_F(PltArchiveTest, ArchivedProfileSurvivesReopen)
{
    {
        store::PltArchive archive(*store_);
        archive.save("du", "persisted profile");
    }
    store_.reset();  // release the writer gate before reopening
    store_ = store::PageStore::open(path_);
    store::PltArchive archive(*store_);
    EXPECT_EQ(archive.load("du"), "persisted profile");
}

TEST_F(PltArchiveTest, WarmStartFromArchivedProfileIsDeterministic)
{
    SweepSpec spec = tinySpec();
    auto cells = expandSweep(spec);
    const SweepCell *accel = nullptr;
    for (const SweepCell &c : cells) {
        if (c.mode == RunMode::Accelerated) {
            accel = &c;
            break;
        }
    }
    ASSERT_NE(accel, nullptr);

    // Cold run learns online and captures its profile...
    CellResult cold = runCell(spec, *accel);
    ASSERT_FALSE(cold.failed);
    ASSERT_FALSE(cold.pltProfile.empty());

    // ...which archives and reloads byte-exactly.
    store::PltArchive archive(*store_);
    archive.save(accel->workload, cold.pltProfile);
    std::optional<std::string> profile =
        archive.load(accel->workload);
    ASSERT_TRUE(profile.has_value());
    EXPECT_EQ(*profile, cold.pltProfile);

    // Warm-starting from the same archived profile is a pure
    // function: two runs encode to identical bytes (this is what
    // makes warm cells cacheable at all).
    CellResult warm1 = runCell(spec, *accel, 0, &*profile);
    CellResult warm2 = runCell(spec, *accel, 0, &*profile);
    ASSERT_FALSE(warm1.failed);
    EXPECT_EQ(encodeCellResult(warm1), encodeCellResult(warm2));
}

/** The accelerated cell of @p spec for @p workload. */
const SweepCell *
findAccel(const std::vector<SweepCell> &cells,
          const std::string &workload)
{
    for (const SweepCell &c : cells) {
        if (c.mode == RunMode::Accelerated &&
            c.workload == workload && c.predictorIndex == 0)
            return &c;
    }
    return nullptr;
}

// Satellite: the archive path is backend-agnostic — a learned-
// backend profile (model row + buckets in the same ospredict-
// profile v1 rows) archives, reloads, and warm-starts exactly like
// a PLT profile.
TEST_F(PltArchiveTest, LearnedBackendProfileRoundTripsThroughStore)
{
    SweepSpec spec = tinySpec();
    setSweepBackend(spec, PredictorBackendKind::Learned);
    auto cells = expandSweep(spec);
    const SweepCell *accel = findAccel(cells, "du");
    ASSERT_NE(accel, nullptr);

    CellResult cold = runCell(spec, *accel);
    ASSERT_FALSE(cold.failed);
    ASSERT_FALSE(cold.pltProfile.empty());

    store::PltArchive archive(*store_);
    archive.save(accel->workload, cold.pltProfile);
    std::optional<std::string> profile =
        archive.load(accel->workload);
    ASSERT_TRUE(profile.has_value());
    EXPECT_EQ(*profile, cold.pltProfile);

    CellResult warm1 = runCell(spec, *accel, 0, &*profile);
    CellResult warm2 = runCell(spec, *accel, 0, &*profile);
    ASSERT_FALSE(warm1.failed);
    EXPECT_EQ(encodeCellResult(warm1), encodeCellResult(warm2));
}

// Satellite: the abl5 scenario — warm-starting from a *stale*
// profile (learned under a different workload's behaviour) must
// recover through audits and drift resets rather than fail, and
// must stay deterministic, for both backends.
TEST_F(PltArchiveTest, StaleProfileWarmStartRecoversPerBackend)
{
    for (PredictorBackendKind kind :
         {PredictorBackendKind::Plt,
          PredictorBackendKind::Learned}) {
        SCOPED_TRACE(predictorBackendName(kind));
        SweepSpec spec = tinySpec();
        setSweepBackend(spec, kind);
        auto cells = expandSweep(spec);
        const SweepCell *donor = findAccel(cells, "du");
        const SweepCell *target = findAccel(cells, "ab-rand");
        ASSERT_NE(donor, nullptr);
        ASSERT_NE(target, nullptr);

        // The donor's profile describes du's services, not
        // ab-rand's: a stale table for the target cell.
        CellResult cold = runCell(spec, *donor);
        ASSERT_FALSE(cold.failed);
        ASSERT_FALSE(cold.pltProfile.empty());

        store::PltArchive archive(*store_);
        archive.save(target->workload, cold.pltProfile);
        std::optional<std::string> stale =
            archive.load(target->workload);
        ASSERT_TRUE(stale.has_value());

        CellResult warm1 = runCell(spec, *target, 0, &*stale);
        CellResult warm2 = runCell(spec, *target, 0, &*stale);
        ASSERT_FALSE(warm1.failed);
        EXPECT_GT(warm1.totals.totalCycles(), 0u);
        EXPECT_EQ(encodeCellResult(warm1),
                  encodeCellResult(warm2));
    }
}

} // namespace
} // namespace osp
