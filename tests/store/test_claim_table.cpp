/** @file Tests for the claim/lease codec and transaction helpers:
 *  canonical record round-trips, strict rejection of malformed
 *  records, key layout, and the heartbeat counter. */

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "store/claim_table.hh"
#include "store/page_store.hh"

namespace osp::store
{
namespace
{

class ClaimTableTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("osp_claim_test_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()) +
                  ".db"))
                    .string();
        std::filesystem::remove(path_);
        std::filesystem::remove(path_ + ".lock");
        store_ = PageStore::open(path_);
    }

    void
    TearDown() override
    {
        store_.reset();
        std::filesystem::remove(path_);
        std::filesystem::remove(path_ + ".lock");
    }

    std::string path_;
    std::unique_ptr<PageStore> store_;
};

TEST(ClaimTableKeys, Layout)
{
    EXPECT_EQ(ClaimTable::claimKey("f00d", "abc123"),
              "claim/f00d/abc123");
    EXPECT_EQ(ClaimTable::heartbeatKey("f00d"), "claimhb/f00d");
}

TEST(ClaimTableCodec, RoundTripsEveryStateExactly)
{
    for (ClaimState state :
         {ClaimState::Claimed, ClaimState::Retry, ClaimState::Done,
          ClaimState::Failed}) {
        ClaimRecord rec;
        rec.owner = "worker-1";
        rec.state = state;
        rec.epoch = 41;
        rec.retries = 2;
        if (state == ClaimState::Retry ||
            state == ClaimState::Failed)
            rec.error = "cell exploded: \"quoted\"";

        std::string encoded = ClaimTable::encode(rec);
        std::optional<ClaimRecord> decoded =
            ClaimTable::decode(encoded);
        ASSERT_TRUE(decoded.has_value())
            << claimStateName(state);
        EXPECT_EQ(decoded->owner, rec.owner);
        EXPECT_EQ(decoded->state, rec.state);
        EXPECT_EQ(decoded->epoch, rec.epoch);
        EXPECT_EQ(decoded->retries, rec.retries);
        EXPECT_EQ(decoded->error, rec.error);
        // Canonical: encoding is a fixpoint.
        EXPECT_EQ(ClaimTable::encode(*decoded), encoded);
    }
}

TEST(ClaimTableCodec, ErrorOmittedWhenEmpty)
{
    ClaimRecord rec;
    rec.owner = "w";
    std::string encoded = ClaimTable::encode(rec);
    EXPECT_EQ(encoded.find("error"), std::string::npos) << encoded;
}

TEST(ClaimTableCodec, RejectsMalformedRecords)
{
    EXPECT_EQ(ClaimTable::decode(""), std::nullopt);
    EXPECT_EQ(ClaimTable::decode("not json"), std::nullopt);
    EXPECT_EQ(ClaimTable::decode("{}"), std::nullopt);
    EXPECT_EQ(ClaimTable::decode("[1,2]"), std::nullopt);
    // Unknown state name.
    EXPECT_EQ(ClaimTable::decode(
                  R"({"owner":"w","state":"zombie","epoch":1,)"
                  R"("retries":0})"),
              std::nullopt);
    // Wrong types.
    EXPECT_EQ(ClaimTable::decode(
                  R"({"owner":1,"state":"done","epoch":1,)"
                  R"("retries":0})"),
              std::nullopt);
    EXPECT_EQ(ClaimTable::decode(
                  R"({"owner":"w","state":"done","epoch":"x",)"
                  R"("retries":0})"),
              std::nullopt);
    // Missing field.
    EXPECT_EQ(
        ClaimTable::decode(R"({"owner":"w","state":"done"})"),
        std::nullopt);
}

TEST(ClaimTableCodec, StateNamesRoundTrip)
{
    for (ClaimState state :
         {ClaimState::Claimed, ClaimState::Retry, ClaimState::Done,
          ClaimState::Failed})
        EXPECT_EQ(claimStateFromName(claimStateName(state)), state);
    EXPECT_EQ(claimStateFromName("bogus"), std::nullopt);
}

TEST_F(ClaimTableTest, HeartbeatStartsAtZeroAndCounts)
{
    ClaimTable table("fp");
    EXPECT_EQ(table.heartbeat(store_->beginRead()), 0u);
    for (std::uint64_t want = 1; want <= 3; ++want) {
        WriteTx tx = store_->beginWrite();
        EXPECT_EQ(table.bumpHeartbeat(tx), want);
        tx.commit();
    }
    EXPECT_EQ(table.heartbeat(store_->beginRead()), 3u);
    // Independent per fingerprint.
    EXPECT_EQ(ClaimTable("other").heartbeat(store_->beginRead()),
              0u);
}

TEST_F(ClaimTableTest, RecordLifecycleThroughTheStore)
{
    ClaimTable table("fp");
    EXPECT_EQ(table.get(store_->beginRead(), "cell1"),
              std::nullopt);

    ClaimRecord rec;
    rec.owner = "w1";
    rec.epoch = 7;
    {
        WriteTx tx = store_->beginWrite();
        table.put(tx, "cell1", rec);
        tx.commit();
    }
    auto got = table.get(store_->beginRead(), "cell1");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->owner, "w1");
    EXPECT_EQ(got->state, ClaimState::Claimed);

    rec.state = ClaimState::Failed;
    rec.retries = 3;
    rec.error = "boom";
    {
        WriteTx tx = store_->beginWrite();
        table.put(tx, "cell1", rec);
        tx.commit();
    }
    got = table.get(store_->beginRead(), "cell1");
    ASSERT_TRUE(got.has_value());
    EXPECT_EQ(got->state, ClaimState::Failed);
    EXPECT_EQ(got->retries, 3u);
    EXPECT_EQ(got->error, "boom");
}

} // namespace
} // namespace osp::store
