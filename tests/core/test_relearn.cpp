/** @file Tests for the four re-learning strategies (Sec. 4.4). */

#include <gtest/gtest.h>

#include "core/relearn.hh"

namespace osp
{
namespace
{

RelearnParams
params(RelearnStrategy s)
{
    RelearnParams p;
    p.strategy = s;
    return p;
}

TEST(Relearn, StrategyNames)
{
    EXPECT_STREQ(relearnStrategyName(RelearnStrategy::BestMatch),
                 "best-match");
    EXPECT_STREQ(relearnStrategyName(RelearnStrategy::Eager),
                 "eager");
    EXPECT_STREQ(relearnStrategyName(RelearnStrategy::Delayed),
                 "delayed");
    EXPECT_STREQ(relearnStrategyName(RelearnStrategy::Statistical),
                 "statistical");
}

TEST(Relearn, BestMatchNeverTriggers)
{
    auto policy =
        RelearnPolicy::make(params(RelearnStrategy::BestMatch));
    PerfLookupTable plt(0.05);
    for (std::uint64_t i = 0; i < 1000; ++i)
        EXPECT_FALSE(policy->onOutlier(plt, 5000, i));
}

TEST(Relearn, EagerTriggersImmediately)
{
    auto policy =
        RelearnPolicy::make(params(RelearnStrategy::Eager));
    PerfLookupTable plt(0.05);
    EXPECT_TRUE(policy->onOutlier(plt, 5000, 0));
}

TEST(Relearn, DelayedTriggersAtThreshold)
{
    RelearnParams p = params(RelearnStrategy::Delayed);
    p.delayedThreshold = 4;
    auto policy = RelearnPolicy::make(p);
    PerfLookupTable plt(0.05);
    EXPECT_FALSE(policy->onOutlier(plt, 5000, 0));
    EXPECT_FALSE(policy->onOutlier(plt, 5010, 5));
    EXPECT_FALSE(policy->onOutlier(plt, 4990, 9));
    EXPECT_TRUE(policy->onOutlier(plt, 5005, 14));
}

TEST(Relearn, DelayedCountsPerOutlierCluster)
{
    RelearnParams p = params(RelearnStrategy::Delayed);
    p.delayedThreshold = 4;
    auto policy = RelearnPolicy::make(p);
    PerfLookupTable plt(0.05);
    // Interleave two distinct outlier clusters: neither reaches 4
    // until its own fourth occurrence.
    EXPECT_FALSE(policy->onOutlier(plt, 5000, 0));
    EXPECT_FALSE(policy->onOutlier(plt, 50000, 1));
    EXPECT_FALSE(policy->onOutlier(plt, 5000, 2));
    EXPECT_FALSE(policy->onOutlier(plt, 50000, 3));
    EXPECT_FALSE(policy->onOutlier(plt, 5000, 4));
    EXPECT_FALSE(policy->onOutlier(plt, 50000, 5));
    EXPECT_TRUE(policy->onOutlier(plt, 5000, 6));
}

TEST(Relearn, StatisticalWaitsForMinEpos)
{
    RelearnParams p = params(RelearnStrategy::Statistical);
    p.minEpos = 4;
    auto policy = RelearnPolicy::make(p);
    PerfLookupTable plt(0.05);
    // Dense occurrences (EPO ~ high): still must see 4 first.
    EXPECT_FALSE(policy->onOutlier(plt, 5000, 1));
    EXPECT_FALSE(policy->onOutlier(plt, 5000, 2));
    EXPECT_FALSE(policy->onOutlier(plt, 5000, 3));
    EXPECT_TRUE(policy->onOutlier(plt, 5000, 4));
}

TEST(Relearn, StatisticalTriggersForFrequentCluster)
{
    RelearnParams p = params(RelearnStrategy::Statistical);
    auto policy = RelearnPolicy::make(p);
    PerfLookupTable plt(0.05);
    // 1 occurrence every 10 invocations: EPO ~ 10% >> pmin 3%.
    bool triggered = false;
    for (std::uint64_t i = 10; i <= 60 && !triggered; i += 10)
        triggered = policy->onOutlier(plt, 5000, i);
    EXPECT_TRUE(triggered);
}

TEST(Relearn, StatisticalHoldsForRareCluster)
{
    RelearnParams p = params(RelearnStrategy::Statistical);
    auto policy = RelearnPolicy::make(p);
    PerfLookupTable plt(0.05);
    // 1 occurrence every 200 invocations: EPO ~ 0.5% << pmin 3%,
    // with low variance once several EPOs accumulate.
    bool triggered = false;
    for (std::uint64_t i = 200; i <= 2000; i += 200)
        triggered = triggered || policy->onOutlier(plt, 5000, i);
    EXPECT_FALSE(triggered);
}

TEST(Relearn, StatisticalUsesMovingWindow)
{
    RelearnParams p = params(RelearnStrategy::Statistical);
    p.movingWindow = 100;
    auto policy = RelearnPolicy::make(p);
    PerfLookupTable plt(0.05);
    // A burst long ago must not count toward a recent EPO: burst at
    // invocations 1-4 (these return false until 4 EPOs...) — use a
    // fresh cluster signature for the recent sparse phase instead.
    for (std::uint64_t i = 1; i <= 3; ++i)
        policy->onOutlier(plt, 5000, i);
    // Sparse later occurrences: window has left the burst behind,
    // each new EPO is 1/100.
    bool late = false;
    for (std::uint64_t i = 1000; i <= 3000; i += 500)
        late = policy->onOutlier(plt, 5000, i);
    EXPECT_FALSE(late);
}

} // namespace
} // namespace osp
