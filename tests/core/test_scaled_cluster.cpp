/** @file Tests for scaled clusters (Sec. 4.2). */

#include <gtest/gtest.h>

#include "core/scaled_cluster.hh"

namespace osp
{
namespace
{

ServiceMetrics
metrics(InstCount insts, Cycles cycles, std::uint64_t l2miss = 10)
{
    ServiceMetrics m;
    m.insts = insts;
    m.cycles = cycles;
    m.mem.l1iAccesses = insts / 16;
    m.mem.l1iMisses = insts / 100;
    m.mem.l1dAccesses = insts / 3;
    m.mem.l1dMisses = insts / 50;
    m.mem.l2Accesses = insts / 40;
    m.mem.l2Misses = l2miss;
    return m;
}

TEST(ScaledCluster, RangeIsCentroidPlusMinusFivePercent)
{
    ScaledCluster c(metrics(1000, 5000), 0.05);
    EXPECT_DOUBLE_EQ(c.centroid(), 1000.0);
    EXPECT_DOUBLE_EQ(c.rangeLo(), 950.0);
    EXPECT_DOUBLE_EQ(c.rangeHi(), 1050.0);
    EXPECT_TRUE(c.matches(950));
    EXPECT_TRUE(c.matches(1050));
    EXPECT_FALSE(c.matches(949));
    EXPECT_FALSE(c.matches(1051));
}

TEST(ScaledCluster, CentroidIsRunningMean)
{
    ScaledCluster c(metrics(1000, 5000));
    c.add(metrics(1040, 5200));
    EXPECT_DOUBLE_EQ(c.centroid(), 1020.0);
    // Range scales with the centroid.
    EXPECT_DOUBLE_EQ(c.rangeHi(), 1020.0 * 1.05);
}

TEST(ScaledCluster, RangeScalesWithMagnitude)
{
    // The motivation for scaled (vs fixed) bins: absolute width
    // grows with instruction count.
    ScaledCluster small(metrics(100, 500));
    ScaledCluster large(metrics(100000, 500000));
    EXPECT_NEAR(small.rangeHi() - small.rangeLo(), 10.0, 1e-9);
    EXPECT_NEAR(large.rangeHi() - large.rangeLo(), 10000.0, 1e-6);
}

TEST(ScaledCluster, DistanceFromCentroid)
{
    ScaledCluster c(metrics(1000, 5000));
    EXPECT_DOUBLE_EQ(c.distance(900), 100.0);
    EXPECT_DOUBLE_EQ(c.distance(1100), 100.0);
}

TEST(ScaledCluster, PredictIsMemberMean)
{
    ScaledCluster c(metrics(1000, 5000, 20));
    c.add(metrics(1000, 7000, 40));
    ServiceMetrics p = c.predict();
    EXPECT_EQ(p.cycles, 6000u);
    EXPECT_EQ(p.mem.l2Misses, 30u);
    EXPECT_EQ(p.insts, 1000u);
}

TEST(ScaledCluster, StatsTrackMembers)
{
    ScaledCluster c(metrics(1000, 4000));
    c.add(metrics(1000, 6000));
    EXPECT_EQ(c.count(), 2u);
    EXPECT_DOUBLE_EQ(c.cyclesStats().mean(), 5000.0);
    EXPECT_GT(c.cyclesStats().cv(), 0.0);
    EXPECT_DOUBLE_EQ(c.instsStats().mean(), 1000.0);
}

TEST(ScaledCluster, IpcStatsDerived)
{
    ScaledCluster c(metrics(1000, 5000));
    EXPECT_NEAR(c.ipcStats().mean(), 0.2, 1e-9);
}

TEST(ScaledCluster, InvalidRangeDies)
{
    EXPECT_DEATH(ScaledCluster(metrics(10, 10), 0.0), "range");
    EXPECT_DEATH(ScaledCluster(metrics(10, 10), 1.0), "range");
}

TEST(ScaledCluster, DecayHistoryPreservesPrediction)
{
    ScaledCluster c(metrics(1000, 5000));
    for (int i = 0; i < 999; ++i)
        c.add(metrics(1000, 5000));
    c.decayHistory(10);
    EXPECT_EQ(c.count(), 10u);
    EXPECT_EQ(c.predict().cycles, 5000u);
    EXPECT_DOUBLE_EQ(c.centroid(), 1000.0);
}

TEST(ScaledCluster, DecayHistoryLetsRelearningMoveTheMean)
{
    ScaledCluster heavy(metrics(1000, 5000));
    ScaledCluster undecayed(metrics(1000, 5000));
    for (int i = 0; i < 999; ++i) {
        heavy.add(metrics(1000, 5000));
        undecayed.add(metrics(1000, 5000));
    }
    heavy.decayHistory(10);
    for (int i = 0; i < 10; ++i) {
        heavy.add(metrics(1000, 6000));
        undecayed.add(metrics(1000, 6000));
    }
    // 10 stale vs 10 fresh: the decayed cluster tracks the shift;
    // the undecayed one stays pinned by its 1000 stale members.
    EXPECT_EQ(heavy.predict().cycles, 5500u);
    EXPECT_LT(undecayed.predict().cycles, 5100u);
}

} // namespace
} // namespace osp
