/** @file Tests for the Accelerator controller. */

#include <gtest/gtest.h>

#include "core/accelerator.hh"

namespace osp
{
namespace
{

PredictorParams
fastParams()
{
    PredictorParams p;
    p.warmupInvocations = 1;
    p.learningWindow = 3;
    return p;
}

ServiceController::IntervalOutcome
detailedOutcome(ServiceType type, std::uint64_t inv, InstCount insts,
                Cycles cycles)
{
    ServiceController::IntervalOutcome o;
    o.type = type;
    o.invocation = inv;
    o.insts = insts;
    o.detailed = true;
    o.cycles = cycles;
    o.mem.l2Misses = insts / 100;
    o.mem.l1dMisses = insts / 20;
    o.mem.l1iMisses = insts / 50;
    return o;
}

TEST(Accelerator, ChoosesDetailUntilLearned)
{
    Accelerator accel(fastParams());
    // warmup(1) + learning(3): four detailed invocations.
    for (std::uint64_t i = 0; i < 4; ++i) {
        EXPECT_EQ(accel.chooseLevel(ServiceType::SysRead),
                  DetailLevel::OooCache);
        accel.onServiceEnd(
            detailedOutcome(ServiceType::SysRead, i, 1000, 5000));
    }
    EXPECT_EQ(accel.chooseLevel(ServiceType::SysRead),
              DetailLevel::Emulate);
}

TEST(Accelerator, ServicesLearnIndependently)
{
    Accelerator accel(fastParams());
    for (std::uint64_t i = 0; i < 4; ++i) {
        accel.onServiceEnd(
            detailedOutcome(ServiceType::SysRead, i, 1000, 5000));
    }
    EXPECT_EQ(accel.chooseLevel(ServiceType::SysRead),
              DetailLevel::Emulate);
    // sys_write never ran: still wants detail.
    EXPECT_EQ(accel.chooseLevel(ServiceType::SysWrite),
              DetailLevel::OooCache);
}

TEST(Accelerator, EmulatedIntervalGetsPrediction)
{
    Accelerator accel(fastParams());
    for (std::uint64_t i = 0; i < 4; ++i) {
        accel.onServiceEnd(
            detailedOutcome(ServiceType::SysRead, i, 1000, 5000));
    }
    ServiceController::IntervalOutcome o;
    o.type = ServiceType::SysRead;
    o.invocation = 4;
    o.insts = 1002;
    o.detailed = false;
    auto pred = accel.onServiceEnd(o);
    EXPECT_EQ(pred.cycles, 5000u);
    EXPECT_EQ(pred.mem.l2Misses, 10u);
}

TEST(Accelerator, AggregateStatsSumAcrossServices)
{
    Accelerator accel(fastParams());
    accel.onServiceEnd(
        detailedOutcome(ServiceType::SysRead, 0, 1000, 5000));
    accel.onServiceEnd(
        detailedOutcome(ServiceType::SysWrite, 0, 2000, 8000));
    auto stats = accel.aggregateStats();
    EXPECT_EQ(stats.warmupRuns, 2u);
    EXPECT_EQ(stats.learnedRuns, 0u);
}

TEST(Accelerator, PredictorAccessor)
{
    Accelerator accel(fastParams());
    accel.chooseLevel(ServiceType::SysPoll);
    EXPECT_EQ(accel.predictor(ServiceType::SysPoll).learningWindow(),
              3u);
    EXPECT_DEATH(accel.predictor(ServiceType::SysBrk),
                 "no predictor");
}

} // namespace
} // namespace osp
