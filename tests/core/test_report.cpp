/** @file Tests for error metrics, Eq. 10, and interval
 *  characterization. */

#include <gtest/gtest.h>

#include "core/report.hh"

namespace osp
{
namespace
{

TEST(Report, AbsError)
{
    EXPECT_DOUBLE_EQ(absError(103.2, 100.0), 0.032);
    EXPECT_DOUBLE_EQ(absError(96.8, 100.0), 0.032);
    EXPECT_DOUBLE_EQ(absError(5.0, 0.0), 0.0);
}

TEST(Report, Eq10MatchesPaperFormula)
{
    // speedup = N / (X/133 + (N - X))
    EXPECT_DOUBLE_EQ(estimatedSpeedup(100, 0, 133.0), 1.0);
    // All instructions predicted: the full 133x.
    EXPECT_NEAR(estimatedSpeedup(100, 100, 133.0), 133.0, 1e-9);
    // Half predicted: ~1.985x.
    EXPECT_NEAR(estimatedSpeedup(100, 50, 133.0),
                100.0 / (50.0 / 133.0 + 50.0), 1e-12);
}

TEST(Report, Eq10FromRunTotals)
{
    RunTotals t;
    t.appInsts = 10;
    t.osInsts = 90;
    t.osPredInsts = 80;
    EXPECT_NEAR(estimatedSpeedup(t, 133.0),
                100.0 / (80.0 / 133.0 + 20.0), 1e-12);
}

TEST(Report, Eq10ZeroInsts)
{
    EXPECT_DOUBLE_EQ(estimatedSpeedup(0, 0, 133.0), 1.0);
}

IntervalRecord
rec(ServiceType type, InstCount insts, Cycles cycles)
{
    IntervalRecord r;
    r.type = type;
    r.insts = insts;
    r.cycles = cycles;
    r.detailed = true;
    return r;
}

TEST(Report, CharacterizeGroupsByService)
{
    std::vector<IntervalRecord> log = {
        rec(ServiceType::SysRead, 1000, 5000),
        rec(ServiceType::SysRead, 1010, 5100),
        rec(ServiceType::SysWrite, 2000, 9000),
    };
    auto chars = characterizeServices(log);
    ASSERT_EQ(chars.size(), 2u);
    EXPECT_EQ(chars[0].type, ServiceType::SysRead);
    EXPECT_EQ(chars[0].invocations, 2u);
    EXPECT_NEAR(chars[0].cycles.mean(), 5050.0, 1e-9);
    EXPECT_EQ(chars[1].type, ServiceType::SysWrite);
}

TEST(Report, ClusteringReducesCv)
{
    // Two well-separated behaviour points: huge unclustered CV,
    // tiny clustered CV — the Fig. 6 effect.
    std::vector<IntervalRecord> log;
    for (int i = 0; i < 50; ++i) {
        log.push_back(
            rec(ServiceType::SysRead, 1000 + i % 10, 5000 + i % 30));
        log.push_back(rec(ServiceType::SysRead, 20000 + i % 10,
                          90000 + i % 50));
    }
    auto chars = characterizeServices(log);
    ASSERT_EQ(chars.size(), 1u);
    EXPECT_EQ(chars[0].numClusters, 2u);
    EXPECT_GT(chars[0].cvCycles, 0.5);
    EXPECT_LT(chars[0].clusteredCvCycles, 0.05);
}

TEST(Report, CvSummaryWeightsByOccurrence)
{
    std::vector<IntervalRecord> log;
    // Service A: 90 invocations, zero variance.
    for (int i = 0; i < 90; ++i)
        log.push_back(rec(ServiceType::SysRead, 1000, 5000));
    // Service B: 10 invocations, large variance.
    for (int i = 0; i < 10; ++i) {
        log.push_back(rec(ServiceType::SysWrite, 1000,
                          i % 2 ? 1000 : 9000));
    }
    auto chars = characterizeServices(log);
    auto summary = summarizeCv(chars);
    // Dominated by the zero-variance service.
    EXPECT_LT(summary.cvCycles, 0.2);
    EXPECT_GT(summary.cvCycles, 0.0);
}

TEST(Report, SingleInvocationServicesExcludedFromSummary)
{
    std::vector<IntervalRecord> log = {
        rec(ServiceType::SysRead, 1000, 5000),
    };
    auto summary = summarizeCv(characterizeServices(log));
    EXPECT_EQ(summary.cvCycles, 0.0);
}

} // namespace
} // namespace osp
