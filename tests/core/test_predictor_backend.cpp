/** @file Tests for the pluggable predictor backends: the
 *  PltBackend/LearnedBackend implementations of PredictorBackend,
 *  the factory/name plumbing, and the predictor-state regressions
 *  this layer fixed (count-only signatures under mix matching,
 *  restoreTable leaking audit state, unit attribution surviving
 *  cluster-vector reallocation). */

#include <gtest/gtest.h>

#include "core/predictor_backend.hh"
#include "core/service_predictor.hh"

namespace osp
{
namespace
{

/** A sample with a realistic, discriminative instruction mix. */
ServiceMetrics
mixMetrics(InstCount insts, Cycles cycles)
{
    ServiceMetrics m;
    m.insts = insts;
    m.cycles = cycles;
    m.loads = insts / 4;
    m.stores = insts / 8;
    m.branches = insts / 5;
    m.mem.l1iAccesses = insts;
    m.mem.l1iMisses = insts / 50;
    m.mem.l1dAccesses = insts / 3;
    m.mem.l1dMisses = insts / 60;
    m.mem.l2Accesses = insts / 40;
    m.mem.l2Misses = insts / 100;
    return m;
}

TEST(PredictorBackendName, RoundTrip)
{
    EXPECT_STREQ(predictorBackendName(PredictorBackendKind::Plt),
                 "plt");
    EXPECT_STREQ(
        predictorBackendName(PredictorBackendKind::Learned),
        "learned");

    PredictorBackendKind kind = PredictorBackendKind::Learned;
    EXPECT_TRUE(predictorBackendFromName("plt", kind));
    EXPECT_EQ(kind, PredictorBackendKind::Plt);
    EXPECT_TRUE(predictorBackendFromName("learned", kind));
    EXPECT_EQ(kind, PredictorBackendKind::Learned);
    EXPECT_FALSE(predictorBackendFromName("nope", kind));
    // A failed parse leaves the output untouched.
    EXPECT_EQ(kind, PredictorBackendKind::Learned);
}

TEST(PredictorBackendFactory, MakesRequestedBackend)
{
    PredictorParams p;
    auto plt = makePredictorBackend(p);
    EXPECT_EQ(plt->kind(), PredictorBackendKind::Plt);
    EXPECT_STREQ(plt->name(), "plt");
    EXPECT_NE(plt->asPlt(), nullptr);

    p.backend = PredictorBackendKind::Learned;
    auto learned = makePredictorBackend(p);
    EXPECT_EQ(learned->kind(), PredictorBackendKind::Learned);
    EXPECT_STREQ(learned->name(), "learned");
    EXPECT_EQ(learned->asPlt(), nullptr);
}

// Regression: a count-only signature (the instruction-count predict
// overload) must match on the count alone even when mix matching is
// enabled. The old code built Signature{insts, 0, 0, 0}, whose
// all-zero mix failed matchesMix against every cluster with a real
// mix — every count-only prediction became a spurious outlier.
TEST(PltBackendMix, InstsOnlySignatureMatchesMixClusters)
{
    PltBackend b(0.05, 0.0, /*use_mix=*/true, RelearnParams{});
    b.learn(mixMetrics(1000, 5000));

    BackendLookup count_only =
        b.lookup(Signature::instsOnly(1000));
    EXPECT_TRUE(count_only.matched);
    EXPECT_TRUE(count_only.hasSource);
    EXPECT_EQ(count_only.unit, 0u);
    EXPECT_EQ(count_only.metrics.cycles, 5000u);

    // A *measured* all-zero mix is a real mismatch and must still
    // be an outlier: hasMix is what distinguishes the two.
    Signature zero_mix{1000, 0, 0, 0};
    EXPECT_FALSE(b.lookup(zero_mix).matched);
}

TEST(ServicePredictorMix, CountOnlyPredictOverloadIsNotAnOutlier)
{
    PredictorParams p;
    p.warmupInvocations = 0;
    p.learningWindow = 2;
    p.useMixSignature = true;
    ServicePredictor pred(p);
    pred.recordDetailed(mixMetrics(1000, 5000));
    pred.recordDetailed(mixMetrics(1000, 5000));
    ASSERT_FALSE(pred.wantsDetail());

    bool outlier = true;
    ServiceMetrics out = pred.predict(1000, 2, &outlier);
    EXPECT_FALSE(outlier);
    EXPECT_EQ(out.cycles, 5000u);
    EXPECT_EQ(pred.stats().outliers, 0u);
}

// Regression: restoreTable() used to reset the mode and phase but
// leak the audit machinery — a pending audit decision, an
// in-flight re-warm burst, the consecutive-failure streak and the
// per-unit CI accumulators all survived into the restored table's
// new index epoch.
TEST(ServicePredictorRestore, ClearsPendingAuditAndFailureStreak)
{
    PredictorParams p;
    p.warmupInvocations = 0;
    p.learningWindow = 1;
    p.auditEvery = 1;
    p.auditWarmup = 0;
    p.auditTriggerCount = 2;
    ServicePredictor pred(p);
    pred.recordDetailed(mixMetrics(1000, 5000));
    ASSERT_FALSE(pred.wantsDetail());

    // One audit failure: streak at 1 of the 2 needed for a reset.
    ASSERT_TRUE(pred.decideDetail());
    pred.recordDetailed(mixMetrics(1000, 20000));
    EXPECT_EQ(pred.stats().auditFailures, 1u);
    EXPECT_EQ(pred.stats().driftResets, 0u);

    // Second audit now pending...
    ASSERT_TRUE(pred.decideDetail());
    // ...when a warm start replaces the table.
    pred.restoreTable(pred.snapshotTable());

    // The next detailed sample must be an ordinary learning
    // sample, not the leaked audit — and must not complete the
    // leaked failure streak into a drift reset.
    pred.recordDetailed(mixMetrics(1000, 20000));
    EXPECT_EQ(pred.stats().audits, 1u);
    EXPECT_EQ(pred.stats().auditFailures, 1u);
    EXPECT_EQ(pred.stats().driftResets, 0u);

    // The streak itself was cleared: one fresh failure is still
    // one strike short of a reset.
    ASSERT_TRUE(pred.decideDetail());
    pred.recordDetailed(mixMetrics(1000, 90000));
    EXPECT_EQ(pred.stats().auditFailures, 2u);
    EXPECT_EQ(pred.stats().driftResets, 0u);
}

TEST(ServicePredictorRestore, ResetsAuditSchedule)
{
    PredictorParams p;
    p.warmupInvocations = 0;
    p.learningWindow = 1;
    p.auditEvery = 2;
    p.auditWarmup = 0;
    ServicePredictor pred(p);
    pred.recordDetailed(mixMetrics(1000, 5000));
    ASSERT_FALSE(pred.wantsDetail());

    // Half the audit period elapses...
    ASSERT_FALSE(pred.decideDetail());
    // ...then the table is replaced. The schedule must restart:
    // the restored table gets a full period before its first
    // audit, rather than inheriting the old countdown.
    pred.restoreTable(pred.snapshotTable());
    EXPECT_FALSE(pred.decideDetail());
    EXPECT_TRUE(pred.decideDetail());
}

// Regression: the audited unit's index used to be derived by
// pointer arithmetic against the cluster vector's base, computed
// *after* operations that can reallocate it. The index is now
// resolved inside the lookup itself, so attribution survives
// arbitrary table growth between learning and auditing.
TEST(ServicePredictorLedger, AuditAttributionSurvivesTableGrowth)
{
    obs::Telemetry tel;
    PredictorParams p;
    p.warmupInvocations = 0;
    p.learningWindow = 1;
    p.auditEvery = 1;
    p.auditWarmup = 0;
    ServicePredictor pred(p);
    pred.attachTelemetry(&tel, "predictor.test", 1);
    pred.recordDetailed(mixMetrics(1000, 5000));  // cluster 0
    ASSERT_FALSE(pred.wantsDetail());

    // Grow the table by dozens of distinct clusters (forced
    // detailed runs while predicting), reallocating the vector
    // several times over.
    double insts = 4000.0;
    for (int i = 0; i < 64; ++i) {
        auto n = static_cast<InstCount>(insts);
        pred.recordDetailed(mixMetrics(n, 5 * n));
        insts *= 1.2;
    }
    ASSERT_EQ(pred.table().numClusters(), 65u);

    // Audit the original cluster: the ledger must book it under
    // unit 0, the index resolved at lookup time.
    ASSERT_TRUE(pred.decideDetail());
    pred.recordDetailed(mixMetrics(1000, 5000));
    obs::AccuracySnapshot snap = tel.accuracy.snapshot();
    bool found = false;
    for (const obs::AccuracyEntry &e : snap.entries) {
        if (e.audits == 0)
            continue;
        EXPECT_EQ(e.cluster, 0u);
        EXPECT_EQ(e.auditFailures, 0u);
        found = true;
    }
    EXPECT_TRUE(found);
}

TEST(LearnedBackendTest, LearnsAndConverges)
{
    LearnedBackend b(LearnedBackendParams{});
    ServiceMetrics m = mixMetrics(1000, 5000);
    for (int i = 0; i < 400; ++i)
        b.learn(m);

    EXPECT_EQ(b.numUnits(), 1u);
    BackendLookup r = b.lookup(m.signature());
    EXPECT_TRUE(r.matched);
    EXPECT_TRUE(r.hasSource);
    EXPECT_EQ(r.unit, b.bucketOf(1000));
    // The SGD model converges to the observed CPI of 5.
    EXPECT_NEAR(static_cast<double>(r.metrics.cycles), 5000.0,
                0.15 * 5000.0);
    // Memory counters come from the bucket's per-invocation means.
    EXPECT_NEAR(static_cast<double>(r.metrics.mem.l2Misses),
                static_cast<double>(m.mem.l2Misses), 1.0);
    EXPECT_NEAR(static_cast<double>(r.metrics.mem.l1iAccesses),
                static_cast<double>(m.mem.l1iAccesses), 1.0);
}

TEST(LearnedBackendTest, DeterministicAcrossInstances)
{
    LearnedBackend a((LearnedBackendParams()));
    LearnedBackend b((LearnedBackendParams()));
    double insts = 500.0;
    for (int i = 0; i < 200; ++i) {
        ServiceMetrics m =
            mixMetrics(static_cast<InstCount>(insts),
                       static_cast<Cycles>(insts) * (3 + i % 4));
        a.learn(m);
        b.learn(m);
        insts *= 1.03;
    }
    EXPECT_EQ(a.numUnits(), b.numUnits());
    EXPECT_EQ(a.modelSteps(), b.modelSteps());
    EXPECT_EQ(a.recentCpi(), b.recentCpi());

    BackendLookup ra = a.lookup(Signature::instsOnly(1000));
    BackendLookup rb = b.lookup(Signature::instsOnly(1000));
    EXPECT_EQ(ra.metrics.cycles, rb.metrics.cycles);
    EXPECT_EQ(ra.unit, rb.unit);

    std::vector<ClusterSnapshot> sa = a.snapshot();
    std::vector<ClusterSnapshot> sb = b.snapshot();
    ASSERT_EQ(sa.size(), sb.size());
    for (std::size_t i = 0; i < sa.size(); ++i) {
        EXPECT_EQ(sa[i].count, sb[i].count);
        EXPECT_EQ(sa[i].instMean, sb[i].instMean);
        EXPECT_EQ(sa[i].cyclesMean, sb[i].cyclesMean);
        EXPECT_EQ(sa[i].cyclesM2, sb[i].cyclesM2);
    }
}

TEST(LearnedBackendTest, UnseenBucketIsOutlierWithFallback)
{
    LearnedBackendParams params;
    LearnedBackend b(params);
    ServiceMetrics m = mixMetrics(1000, 5000);
    for (int i = 0; i < 8; ++i)
        b.learn(m);

    // Far outside any learned bucket: an outlier, but the closest
    // bucket still provides a prediction source.
    BackendLookup r = b.lookup(Signature::instsOnly(1000000));
    EXPECT_FALSE(r.matched);
    EXPECT_TRUE(r.hasSource);
    EXPECT_EQ(r.unit, b.bucketOf(1000));

    // Delayed-style: the same unseen bucket must recur
    // outlierThreshold times before a re-learning window fires.
    for (std::uint64_t i = 1; i < params.outlierThreshold; ++i)
        EXPECT_FALSE(b.onOutlier(1000000, i));
    EXPECT_TRUE(b.onOutlier(1000000, params.outlierThreshold));
    EXPECT_GT(b.numOutlierEntries(), 0u);
    b.clearOutlierState();
    EXPECT_EQ(b.numOutlierEntries(), 0u);
}

TEST(LearnedBackendTest, SnapshotRestoreRoundTrip)
{
    LearnedBackend a((LearnedBackendParams()));
    for (int i = 0; i < 120; ++i) {
        a.learn(mixMetrics(1000, 5000));
        a.learn(mixMetrics(64000, 200000));
    }
    std::vector<ClusterSnapshot> snap = a.snapshot();
    ASSERT_GE(snap.size(), 3u);  // model row + two buckets

    LearnedBackend b((LearnedBackendParams()));
    b.restore(snap);
    EXPECT_EQ(b.numUnits(), a.numUnits());
    EXPECT_EQ(b.modelSteps(), a.modelSteps());
    EXPECT_EQ(b.recentCpi(), a.recentCpi());

    // The restored model is a pure copy: predictions agree on
    // matched and outlier-fallback probes. (Count-only probes are
    // excluded by design: bucket mix statistics are not serialized,
    // so their historical-mix substitution differs until new
    // samples arrive — same contract as the PLT profile.)
    for (InstCount insts :
         {InstCount(1000), InstCount(64000), InstCount(3000000)}) {
        Signature sig = mixMetrics(insts, 1).signature();
        BackendLookup ra = a.lookup(sig);
        BackendLookup rb = b.lookup(sig);
        EXPECT_EQ(ra.metrics.cycles, rb.metrics.cycles) << insts;
        EXPECT_EQ(ra.unit, rb.unit) << insts;
        EXPECT_EQ(ra.matched, rb.matched) << insts;
        EXPECT_DOUBLE_EQ(ra.cyclesSpread, rb.cyclesSpread)
            << insts;
    }

    // Snapshot-of-restore idempotence (what makes the archived
    // profile stable across save/load/save cycles).
    std::vector<ClusterSnapshot> again = b.snapshot();
    ASSERT_EQ(again.size(), snap.size());
    for (std::size_t i = 0; i < snap.size(); ++i) {
        EXPECT_EQ(again[i].count, snap[i].count) << i;
        EXPECT_EQ(again[i].instMean, snap[i].instMean) << i;
        EXPECT_EQ(again[i].cyclesMean, snap[i].cyclesMean) << i;
        EXPECT_DOUBLE_EQ(again[i].cyclesM2, snap[i].cyclesM2)
            << i;
        EXPECT_EQ(again[i].ipcMean, snap[i].ipcMean) << i;
        EXPECT_EQ(again[i].l2MissMean, snap[i].l2MissMean) << i;
    }
}

TEST(LearnedBackendTest, RestoreEmptyClearsEverything)
{
    LearnedBackend b((LearnedBackendParams()));
    for (int i = 0; i < 50; ++i)
        b.learn(mixMetrics(1000, 5000));
    b.onOutlier(1000000, 1);
    ASSERT_GT(b.numUnits(), 0u);

    b.restore({});
    EXPECT_EQ(b.numUnits(), 0u);
    EXPECT_EQ(b.numOutlierEntries(), 0u);
    EXPECT_EQ(b.modelSteps(), 0u);
    BackendLookup r = b.lookup(Signature::instsOnly(1000));
    EXPECT_FALSE(r.matched);
    EXPECT_FALSE(r.hasSource);
    EXPECT_EQ(r.unit, obs::accuracyNoCluster);
}

TEST(LearnedBackendTest, DecayUnitClampsHistoryWeight)
{
    LearnedBackend b((LearnedBackendParams()));
    for (int i = 0; i < 100; ++i)
        b.learn(mixMetrics(1000, 5000));
    ASSERT_EQ(b.modelSteps(), 100u);

    b.decayUnit(b.bucketOf(1000), 10);
    EXPECT_EQ(b.modelSteps(), 10u);
    std::vector<ClusterSnapshot> snap = b.snapshot();
    bool found = false;
    for (const ClusterSnapshot &row : snap) {
        if (row.count == 0)
            continue;  // model row
        EXPECT_EQ(row.count, 10u);
        found = true;
    }
    EXPECT_TRUE(found);

    // Unknown units are ignored, not created.
    std::size_t units = b.numUnits();
    b.decayUnit(999999, 1);
    EXPECT_EQ(b.numUnits(), units);
}

TEST(ServicePredictorLearned, LifecycleAndPrediction)
{
    PredictorParams p;
    p.warmupInvocations = 0;
    p.learningWindow = 50;
    p.backend = PredictorBackendKind::Learned;
    ServicePredictor pred(p);
    for (int i = 0; i < 50; ++i) {
        ASSERT_TRUE(pred.wantsDetail());
        pred.recordDetailed(mixMetrics(1000, 5000));
    }
    ASSERT_FALSE(pred.wantsDetail());

    bool outlier = true;
    ServiceMetrics out =
        pred.predict(mixMetrics(1000, 5000).signature(), 50,
                     &outlier);
    EXPECT_FALSE(outlier);
    EXPECT_EQ(out.insts, 1000u);
    EXPECT_NEAR(static_cast<double>(out.cycles), 5000.0,
                0.25 * 5000.0);
    EXPECT_NE(pred.lastMatchedCluster(), obs::accuracyNoCluster);
    EXPECT_EQ(pred.backend().kind(),
              PredictorBackendKind::Learned);
}

TEST(ServicePredictorLearned, EmptyModelPredictsZero)
{
    PredictorParams p;
    p.warmupInvocations = 0;
    p.learningWindow = 5;
    p.backend = PredictorBackendKind::Learned;
    ServicePredictor pred(p);
    ServiceMetrics out = pred.predict(1234, 0);
    EXPECT_EQ(out.cycles, 0u);
    EXPECT_EQ(out.insts, 1234u);
    EXPECT_EQ(pred.lastMatchedCluster(), obs::accuracyNoCluster);
}

} // namespace
} // namespace osp
