/** @file Tests for the repository's extensions beyond the paper:
 *  mix signatures, PLT serialization / cross-run reuse, audit
 *  sampling, and adaptive warm-up. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/accelerator.hh"

namespace osp
{
namespace
{

ServiceMetrics
metricsWithMix(InstCount insts, Cycles cycles, std::uint64_t loads,
               std::uint64_t stores, std::uint64_t branches)
{
    ServiceMetrics m;
    m.insts = insts;
    m.cycles = cycles;
    m.loads = loads;
    m.stores = stores;
    m.branches = branches;
    m.mem.l2Misses = cycles / 500;
    return m;
}

TEST(MixSignature, SplitsSameCountDifferentMix)
{
    // Two paths: 1000 insts of copy (load/store heavy) vs 1000
    // insts of scan (load/branch heavy). Count-only merges them;
    // mix keeps them apart.
    PerfLookupTable count_only(0.05, 0.0, false);
    PerfLookupTable with_mix(0.05, 0.0, true);
    ServiceMetrics copy = metricsWithMix(1000, 4000, 250, 250, 60);
    ServiceMetrics scan = metricsWithMix(1000, 9000, 330, 40, 200);

    count_only.record(copy);
    count_only.record(scan);
    EXPECT_EQ(count_only.numClusters(), 1u);

    with_mix.record(copy);
    with_mix.record(scan);
    EXPECT_EQ(with_mix.numClusters(), 2u);

    // Mix-aware lookup resolves to the right behaviour point.
    const ScaledCluster *hit = with_mix.match(copy.signature());
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->predict().cycles, 4000u);
    hit = with_mix.match(scan.signature());
    ASSERT_NE(hit, nullptr);
    EXPECT_EQ(hit->predict().cycles, 9000u);
}

TEST(MixSignature, SmallDimensionsAreExempt)
{
    // Branch counts below the noise floor must not fragment
    // clusters.
    PerfLookupTable plt(0.05, 0.0, true);
    plt.record(metricsWithMix(1000, 4000, 250, 250, 8));
    plt.record(metricsWithMix(1000, 4100, 250, 250, 16));
    EXPECT_EQ(plt.numClusters(), 1u);
}

TEST(MixSignature, PredictorEndToEnd)
{
    PredictorParams pp;
    pp.warmupInvocations = 0;
    pp.learningWindow = 4;
    pp.useMixSignature = true;
    ServicePredictor pred(pp);
    ServiceMetrics copy = metricsWithMix(1000, 4000, 250, 250, 60);
    ServiceMetrics scan = metricsWithMix(1000, 9000, 330, 40, 200);
    pred.recordDetailed(copy);
    pred.recordDetailed(scan);
    pred.recordDetailed(copy);
    pred.recordDetailed(scan);
    bool outlier = true;
    ServiceMetrics p =
        pred.predict(copy.signature(), 4, &outlier);
    EXPECT_FALSE(outlier);
    EXPECT_EQ(p.cycles, 4000u);
    p = pred.predict(scan.signature(), 5, &outlier);
    EXPECT_FALSE(outlier);
    EXPECT_EQ(p.cycles, 9000u);
}

TEST(MixSignature, AcceleratorRequestsOpMix)
{
    PredictorParams pp;
    Accelerator plain(pp);
    EXPECT_FALSE(plain.wantsOpMix());
    pp.useMixSignature = true;
    Accelerator mixed(pp);
    EXPECT_TRUE(mixed.wantsOpMix());
}

TEST(ClusterSnapshot, RoundTripPreservesPrediction)
{
    ScaledCluster original(metricsWithMix(1000, 5000, 250, 100, 150),
                           0.05);
    original.add(metricsWithMix(1020, 5200, 255, 102, 153));
    ScaledCluster restored(original.snapshot(), 0.05);

    EXPECT_DOUBLE_EQ(restored.centroid(), original.centroid());
    EXPECT_EQ(restored.count(), original.count());
    EXPECT_EQ(restored.predict().cycles,
              original.predict().cycles);
    EXPECT_EQ(restored.predict().mem.l2Misses,
              original.predict().mem.l2Misses);
    EXPECT_TRUE(restored.matches(1010));
    EXPECT_NEAR(restored.cyclesStats().stddev(),
                original.cyclesStats().stddev(), 1e-6);
}

TEST(ProfileSerialization, SaveLoadRoundTrip)
{
    PredictorParams pp;
    pp.warmupInvocations = 0;
    pp.learningWindow = 2;
    Accelerator trained(pp);

    ServiceController::IntervalOutcome o;
    o.type = ServiceType::SysRead;
    o.detailed = true;
    o.insts = 1000;
    o.cycles = 5000;
    o.mem.l2Misses = 10;
    trained.onServiceEnd(o);
    o.invocation = 1;
    o.cycles = 7000;
    trained.onServiceEnd(o);

    std::ostringstream oss;
    trained.saveState(oss);

    Accelerator loaded(pp);
    std::istringstream iss(oss.str());
    ASSERT_TRUE(loaded.loadState(iss));

    // The loaded accelerator predicts immediately.
    EXPECT_EQ(loaded.chooseLevel(ServiceType::SysRead),
              DetailLevel::Emulate);
    ServiceController::IntervalOutcome q;
    q.type = ServiceType::SysRead;
    q.detailed = false;
    q.insts = 1005;
    auto pred = loaded.onServiceEnd(q);
    EXPECT_EQ(pred.cycles, 6000u);
    EXPECT_EQ(pred.mem.l2Misses, 10u);
    // Untrained services still learn normally.
    EXPECT_EQ(loaded.chooseLevel(ServiceType::SysWrite),
              DetailLevel::OooCache);
}

TEST(ProfileSerialization, RejectsGarbage)
{
    Accelerator accel;
    std::istringstream bad("not-a-profile v9");
    EXPECT_FALSE(accel.loadState(bad));
    std::istringstream truncated(
        "ospredict-profile v1\nservice 0 1\n1 2 3\n");
    EXPECT_FALSE(accel.loadState(truncated));
    std::istringstream noend("ospredict-profile v1\n");
    EXPECT_FALSE(accel.loadState(noend));
}

TEST(AuditSampling, SchedulesEveryNth)
{
    PredictorParams pp;
    pp.warmupInvocations = 0;
    pp.learningWindow = 1;
    pp.auditEvery = 5;
    pp.auditWarmup = 0;  // cadence only; no re-warm runs
    ServicePredictor pred(pp);
    ServiceMetrics m = metricsWithMix(1000, 5000, 250, 100, 150);
    pred.recordDetailed(m);
    int detailed = 0;
    for (int i = 0; i < 25; ++i)
        detailed += pred.decideDetail();
    EXPECT_EQ(detailed, 5);
}

TEST(AuditSampling, WarmupBurstPrecedesAudit)
{
    PredictorParams pp;
    pp.warmupInvocations = 0;
    pp.learningWindow = 1;
    pp.auditEvery = 3;
    pp.auditWarmup = 2;
    ServicePredictor pred(pp);
    ServiceMetrics m = metricsWithMix(1000, 5000, 250, 100, 150);
    pred.recordDetailed(m);
    ASSERT_FALSE(pred.wantsDetail());
    // Every 3rd prediction expands to a 3-run detailed burst: two
    // discarded re-warm runs, then the audited one.
    int audits_seen = 0;
    for (int i = 0; i < 30; ++i) {
        if (pred.decideDetail()) {
            pred.recordDetailed(m);
        } else {
            pred.predict(Signature{1000, 250, 100, 150}, i);
        }
        if (pred.stats().audits >
            static_cast<std::uint64_t>(audits_seen)) {
            audits_seen = static_cast<int>(pred.stats().audits);
            // Each audit was preceded by exactly auditWarmup
            // discarded runs.
            EXPECT_EQ(pred.stats().auditWarmupRuns,
                      pred.stats().audits * pp.auditWarmup);
        }
    }
    EXPECT_GE(pred.stats().audits, 2u);
    // Warm-up runs are discarded: not learned, not audited. The
    // only learned run is the initial window.
    EXPECT_EQ(pred.stats().learnedRuns,
              1u + pred.stats().audits -
                  pred.stats().auditFailures);
    EXPECT_EQ(pred.stats().auditFailures, 0u);
}

TEST(AuditSampling, DriftTriggersRelearning)
{
    PredictorParams pp;
    pp.warmupInvocations = 0;
    pp.learningWindow = 4;
    pp.auditEvery = 2;
    pp.auditTriggerCount = 2;
    pp.stabilityWindow = 0;
    ServicePredictor pred(pp);
    // Learn a stable behaviour point around 5000 cycles.
    for (int i = 0; i < 4; ++i) {
        pred.recordDetailed(
            metricsWithMix(1000, 5000, 250, 100, 150));
    }
    EXPECT_FALSE(pred.wantsDetail());
    // Now the same signature costs 3x: audits must catch it.
    std::uint64_t inv = 4;
    for (int i = 0; i < 20 && !pred.wantsDetail(); ++i) {
        if (pred.decideDetail()) {
            pred.recordDetailed(
                metricsWithMix(1000, 15000, 250, 100, 150));
        } else {
            pred.predict(Signature{1000, 250, 100, 150}, inv);
        }
        ++inv;
    }
    EXPECT_GE(pred.stats().audits, 2u);
    EXPECT_GE(pred.stats().auditFailures, 2u);
    EXPECT_EQ(pred.stats().driftResets, 1u);
    EXPECT_TRUE(pred.wantsDetail());  // back in a learning window
}

TEST(AuditSampling, StationaryNoiseDoesNotTrigger)
{
    PredictorParams pp;
    pp.warmupInvocations = 0;
    pp.learningWindow = 20;
    pp.auditEvery = 2;
    pp.stabilityWindow = 0;
    // This test exercises the 3-sigma audit gate alone; the
    // statistical trigger would alias with the deliberately
    // period-2 cycle pattern (audits phase-lock to one parity and
    // read a stable bias that is not there).
    pp.auditCiMinSamples = 0;
    ServicePredictor pred(pp);
    // Noisy but stationary: cycles alternate widely.
    for (int i = 0; i < 20; ++i) {
        pred.recordDetailed(metricsWithMix(
            1000, i % 2 ? 4000 : 6000, 250, 100, 150));
    }
    std::uint64_t inv = 20;
    for (int i = 0; i < 40; ++i) {
        if (pred.decideDetail()) {
            pred.recordDetailed(metricsWithMix(
                1000, i % 2 ? 4000 : 6000, 250, 100, 150));
        } else {
            pred.predict(Signature{1000, 250, 100, 150}, inv);
        }
        ++inv;
    }
    // 3-sigma gating absorbs the noise.
    EXPECT_EQ(pred.stats().driftResets, 0u);
}

TEST(AuditSampling, SustainedBiasTriggersStatisticalReset)
{
    PredictorParams pp;
    pp.warmupInvocations = 0;
    pp.learningWindow = 100;
    pp.auditEvery = 2;
    pp.auditWarmup = 0;
    pp.auditTriggerCount = 1000;  // keep the consecutive trigger out
    pp.auditCiMinSamples = 8;
    pp.stabilityWindow = 0;
    ServicePredictor pred(pp);
    // A heavy cluster: 100 members at 5000 cycles. Passing audits
    // fold into it, but 100 stale members pin the mean.
    for (int i = 0; i < 100; ++i) {
        pred.recordDetailed(
            metricsWithMix(1000, 5000, 250, 100, 150));
    }
    EXPECT_FALSE(pred.wantsDetail());
    // Behaviour shifts to 5900 cycles (~15% off): inside the 30%
    // per-audit tolerance, so every individual audit passes — only
    // the CI on the accumulated mean error can prove the bias.
    std::uint64_t inv = 100;
    for (int i = 0; i < 100 && !pred.wantsDetail(); ++i) {
        if (pred.decideDetail()) {
            pred.recordDetailed(
                metricsWithMix(1000, 5900, 250, 100, 150));
        } else {
            pred.predict(Signature{1000, 250, 100, 150}, inv);
        }
        ++inv;
    }
    EXPECT_EQ(pred.stats().auditFailures, 0u);
    EXPECT_EQ(pred.stats().driftResets, 1u);
    EXPECT_TRUE(pred.wantsDetail());  // back in a learning window
}

TEST(AuditSampling, StatisticalTriggerCanBeDisabled)
{
    PredictorParams pp;
    pp.warmupInvocations = 0;
    pp.learningWindow = 100;
    pp.auditEvery = 2;
    pp.auditWarmup = 0;
    pp.auditTriggerCount = 1000;
    pp.auditCiMinSamples = 0;  // statistical trigger off
    pp.stabilityWindow = 0;
    ServicePredictor pred(pp);
    for (int i = 0; i < 100; ++i) {
        pred.recordDetailed(
            metricsWithMix(1000, 5000, 250, 100, 150));
    }
    std::uint64_t inv = 100;
    for (int i = 0; i < 100 && !pred.wantsDetail(); ++i) {
        if (pred.decideDetail()) {
            pred.recordDetailed(
                metricsWithMix(1000, 5900, 250, 100, 150));
        } else {
            pred.predict(Signature{1000, 250, 100, 150}, inv);
        }
        ++inv;
    }
    EXPECT_EQ(pred.stats().driftResets, 0u);
    EXPECT_FALSE(pred.wantsDetail());
}

TEST(AdaptiveWarmup, ExtendsWhileCpiDrifts)
{
    PredictorParams pp;
    pp.warmupInvocations = 10;
    pp.stabilityWindow = 5;
    pp.stabilityTolerance = 0.02;
    pp.maxWarmupInvocations = 200;
    pp.learningWindow = 5;
    ServicePredictor pred(pp);
    // Strongly cooling CPI: warm-up must extend past the minimum.
    std::uint64_t runs = 0;
    while (pred.wantsDetail() && runs < 300) {
        Cycles cycles = 20000 - 90 * std::min<std::uint64_t>(
                                         runs, 200);
        pred.recordDetailed(
            metricsWithMix(1000, cycles, 250, 100, 150));
        ++runs;
    }
    // warm-up extended beyond the 10-minimum (plus 5 learning).
    EXPECT_GT(pred.stats().warmupRuns, 20u);
    EXPECT_LE(pred.stats().warmupRuns, 200u);
}

TEST(AdaptiveWarmup, StableCpiEndsAtMinimum)
{
    PredictorParams pp;
    pp.warmupInvocations = 12;
    pp.stabilityWindow = 5;
    pp.stabilityTolerance = 0.02;
    pp.learningWindow = 5;
    ServicePredictor pred(pp);
    std::uint64_t runs = 0;
    while (pred.wantsDetail() && runs < 100) {
        pred.recordDetailed(
            metricsWithMix(1000, 5000, 250, 100, 150));
        ++runs;
    }
    EXPECT_EQ(pred.stats().warmupRuns, 12u);
}

} // namespace
} // namespace osp
