/** @file Tests for the per-service predictor state machine. */

#include <gtest/gtest.h>

#include "core/service_predictor.hh"

namespace osp
{
namespace
{

ServiceMetrics
metrics(InstCount insts, Cycles cycles)
{
    ServiceMetrics m;
    m.insts = insts;
    m.cycles = cycles;
    m.mem.l2Misses = insts / 100;
    return m;
}

PredictorParams
testParams(std::uint64_t warm = 2, std::uint64_t window = 5)
{
    PredictorParams p;
    p.warmupInvocations = warm;
    p.learningWindow = window;
    return p;
}

TEST(ServicePredictor, DefaultWindowFromBinomialAnalysis)
{
    PredictorParams p;
    p.learningWindow = 0;
    p.pMin = 0.03;
    p.doc = 0.95;
    ServicePredictor pred(p);
    EXPECT_EQ(pred.learningWindow(), 99u);
}

TEST(ServicePredictor, LifecyclePhases)
{
    ServicePredictor pred(testParams(2, 3));
    // Warm-up: wants detail, records nothing.
    EXPECT_TRUE(pred.wantsDetail());
    pred.recordDetailed(metrics(1000, 5000));
    pred.recordDetailed(metrics(1000, 5000));
    EXPECT_EQ(pred.table().numClusters(), 0u);
    EXPECT_EQ(pred.stats().warmupRuns, 2u);

    // Learning: records into the PLT.
    EXPECT_TRUE(pred.wantsDetail());
    pred.recordDetailed(metrics(1000, 5000));
    pred.recordDetailed(metrics(1010, 5100));
    pred.recordDetailed(metrics(4000, 20000));
    EXPECT_EQ(pred.table().numClusters(), 2u);
    EXPECT_EQ(pred.stats().learnedRuns, 3u);

    // Window exhausted: predicting.
    EXPECT_FALSE(pred.wantsDetail());
}

TEST(ServicePredictor, ZeroWarmupStartsLearning)
{
    ServicePredictor pred(testParams(0, 2));
    pred.recordDetailed(metrics(1000, 5000));
    EXPECT_EQ(pred.table().numClusters(), 1u);
}

TEST(ServicePredictor, PredictsFromMatchingCluster)
{
    ServicePredictor pred(testParams(0, 2));
    pred.recordDetailed(metrics(1000, 5000));
    pred.recordDetailed(metrics(1000, 7000));
    bool outlier = true;
    ServiceMetrics p = pred.predict(1005, 2, &outlier);
    EXPECT_FALSE(outlier);
    EXPECT_EQ(p.cycles, 6000u);
    EXPECT_EQ(p.insts, 1005u);  // reports the actual signature
    EXPECT_EQ(pred.stats().predictedRuns, 1u);
}

TEST(ServicePredictor, OutlierUsesClosestCluster)
{
    ServicePredictor pred(testParams(0, 2));
    pred.recordDetailed(metrics(1000, 5000));
    pred.recordDetailed(metrics(8000, 40000));
    bool outlier = false;
    ServiceMetrics p = pred.predict(7000, 2, &outlier);
    EXPECT_TRUE(outlier);
    EXPECT_EQ(p.cycles, 40000u);
    EXPECT_EQ(pred.stats().outliers, 1u);
}

TEST(ServicePredictor, EagerOutlierForcesRelearning)
{
    PredictorParams params = testParams(0, 2);
    params.relearn.strategy = RelearnStrategy::Eager;
    ServicePredictor pred(params);
    pred.recordDetailed(metrics(1000, 5000));
    pred.recordDetailed(metrics(1000, 5000));
    EXPECT_FALSE(pred.wantsDetail());
    pred.predict(9000, 2);
    // Back to learning for a fresh window.
    EXPECT_TRUE(pred.wantsDetail());
    EXPECT_EQ(pred.stats().relearnEvents, 1u);
    EXPECT_EQ(pred.table().numOutlierEntries(), 0u);
    // The new cluster gets captured this time.
    pred.recordDetailed(metrics(9000, 90000));
    pred.recordDetailed(metrics(9000, 90000));
    EXPECT_FALSE(pred.wantsDetail());
    bool outlier = true;
    ServiceMetrics p = pred.predict(9000, 5, &outlier);
    EXPECT_FALSE(outlier);
    EXPECT_EQ(p.cycles, 90000u);
}

TEST(ServicePredictor, BestMatchNeverRelearns)
{
    PredictorParams params = testParams(0, 1);
    params.relearn.strategy = RelearnStrategy::BestMatch;
    ServicePredictor pred(params);
    pred.recordDetailed(metrics(1000, 5000));
    for (std::uint64_t i = 1; i <= 500; ++i) {
        pred.predict(100000, i);
        EXPECT_FALSE(pred.wantsDetail());
    }
    EXPECT_EQ(pred.stats().relearnEvents, 0u);
    EXPECT_EQ(pred.stats().outliers, 500u);
}

TEST(ServicePredictor, EmptyTablePredictsZero)
{
    // Degenerate but must not crash: prediction before learning.
    ServicePredictor pred(testParams(0, 5));
    ServiceMetrics p = pred.predict(1234, 0);
    EXPECT_EQ(p.cycles, 0u);
    EXPECT_EQ(p.insts, 1234u);
}

TEST(ServicePredictor, DetailedWhilePredictingStillLearns)
{
    ServicePredictor pred(testParams(0, 1));
    pred.recordDetailed(metrics(1000, 5000));
    EXPECT_FALSE(pred.wantsDetail());
    // A forced detailed run while predicting updates the PLT.
    pred.recordDetailed(metrics(3000, 9000));
    EXPECT_EQ(pred.table().numClusters(), 2u);
    EXPECT_FALSE(pred.wantsDetail());
}

TEST(ServicePredictor, CoverageReflectsWindowAndTraffic)
{
    // 2 warmup + 5 learning out of 100 invocations -> 93%.
    ServicePredictor pred(testParams(2, 5));
    std::uint64_t detailed = 0;
    for (std::uint64_t i = 0; i < 100; ++i) {
        if (pred.wantsDetail()) {
            ++detailed;
            pred.recordDetailed(metrics(1000, 5000));
        } else {
            pred.predict(1000, i);
        }
    }
    EXPECT_EQ(detailed, 7u);
}

} // namespace
} // namespace osp
