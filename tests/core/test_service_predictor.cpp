/** @file Tests for the per-service predictor state machine. */

#include <gtest/gtest.h>

#include "core/service_predictor.hh"

namespace osp
{
namespace
{

ServiceMetrics
metrics(InstCount insts, Cycles cycles)
{
    ServiceMetrics m;
    m.insts = insts;
    m.cycles = cycles;
    m.mem.l2Misses = insts / 100;
    return m;
}

PredictorParams
testParams(std::uint64_t warm = 2, std::uint64_t window = 5)
{
    PredictorParams p;
    p.warmupInvocations = warm;
    p.learningWindow = window;
    return p;
}

TEST(ServicePredictor, DefaultWindowFromBinomialAnalysis)
{
    PredictorParams p;
    p.learningWindow = 0;
    p.pMin = 0.03;
    p.doc = 0.95;
    ServicePredictor pred(p);
    EXPECT_EQ(pred.learningWindow(), 99u);
}

TEST(ServicePredictor, LifecyclePhases)
{
    ServicePredictor pred(testParams(2, 3));
    // Warm-up: wants detail, records nothing.
    EXPECT_TRUE(pred.wantsDetail());
    pred.recordDetailed(metrics(1000, 5000));
    pred.recordDetailed(metrics(1000, 5000));
    EXPECT_EQ(pred.table().numClusters(), 0u);
    EXPECT_EQ(pred.stats().warmupRuns, 2u);

    // Learning: records into the PLT.
    EXPECT_TRUE(pred.wantsDetail());
    pred.recordDetailed(metrics(1000, 5000));
    pred.recordDetailed(metrics(1010, 5100));
    pred.recordDetailed(metrics(4000, 20000));
    EXPECT_EQ(pred.table().numClusters(), 2u);
    EXPECT_EQ(pred.stats().learnedRuns, 3u);

    // Window exhausted: predicting.
    EXPECT_FALSE(pred.wantsDetail());
}

TEST(ServicePredictor, ZeroWarmupStartsLearning)
{
    ServicePredictor pred(testParams(0, 2));
    pred.recordDetailed(metrics(1000, 5000));
    EXPECT_EQ(pred.table().numClusters(), 1u);
}

TEST(ServicePredictor, PredictsFromMatchingCluster)
{
    ServicePredictor pred(testParams(0, 2));
    pred.recordDetailed(metrics(1000, 5000));
    pred.recordDetailed(metrics(1000, 7000));
    bool outlier = true;
    ServiceMetrics p = pred.predict(1005, 2, &outlier);
    EXPECT_FALSE(outlier);
    EXPECT_EQ(p.cycles, 6000u);
    EXPECT_EQ(p.insts, 1005u);  // reports the actual signature
    EXPECT_EQ(pred.stats().predictedRuns, 1u);
}

TEST(ServicePredictor, OutlierUsesClosestCluster)
{
    ServicePredictor pred(testParams(0, 2));
    pred.recordDetailed(metrics(1000, 5000));
    pred.recordDetailed(metrics(8000, 40000));
    bool outlier = false;
    ServiceMetrics p = pred.predict(7000, 2, &outlier);
    EXPECT_TRUE(outlier);
    EXPECT_EQ(p.cycles, 40000u);
    EXPECT_EQ(pred.stats().outliers, 1u);
}

TEST(ServicePredictor, EagerOutlierForcesRelearning)
{
    PredictorParams params = testParams(0, 2);
    params.relearn.strategy = RelearnStrategy::Eager;
    ServicePredictor pred(params);
    pred.recordDetailed(metrics(1000, 5000));
    pred.recordDetailed(metrics(1000, 5000));
    EXPECT_FALSE(pred.wantsDetail());
    pred.predict(9000, 2);
    // Back to learning for a fresh window.
    EXPECT_TRUE(pred.wantsDetail());
    EXPECT_EQ(pred.stats().relearnEvents, 1u);
    EXPECT_EQ(pred.table().numOutlierEntries(), 0u);
    // The new cluster gets captured this time.
    pred.recordDetailed(metrics(9000, 90000));
    pred.recordDetailed(metrics(9000, 90000));
    EXPECT_FALSE(pred.wantsDetail());
    bool outlier = true;
    ServiceMetrics p = pred.predict(9000, 5, &outlier);
    EXPECT_FALSE(outlier);
    EXPECT_EQ(p.cycles, 90000u);
}

TEST(ServicePredictor, BestMatchNeverRelearns)
{
    PredictorParams params = testParams(0, 1);
    params.relearn.strategy = RelearnStrategy::BestMatch;
    ServicePredictor pred(params);
    pred.recordDetailed(metrics(1000, 5000));
    for (std::uint64_t i = 1; i <= 500; ++i) {
        pred.predict(100000, i);
        EXPECT_FALSE(pred.wantsDetail());
    }
    EXPECT_EQ(pred.stats().relearnEvents, 0u);
    EXPECT_EQ(pred.stats().outliers, 500u);
}

TEST(ServicePredictor, EmptyTablePredictsZero)
{
    // Degenerate but must not crash: prediction before learning.
    ServicePredictor pred(testParams(0, 5));
    ServiceMetrics p = pred.predict(1234, 0);
    EXPECT_EQ(p.cycles, 0u);
    EXPECT_EQ(p.insts, 1234u);
}

TEST(ServicePredictor, DetailedWhilePredictingStillLearns)
{
    ServicePredictor pred(testParams(0, 1));
    pred.recordDetailed(metrics(1000, 5000));
    EXPECT_FALSE(pred.wantsDetail());
    // A forced detailed run while predicting updates the PLT.
    pred.recordDetailed(metrics(3000, 9000));
    EXPECT_EQ(pred.table().numClusters(), 2u);
    EXPECT_FALSE(pred.wantsDetail());
}

TEST(ServicePredictorAudit, AuditEveryOneAuditsEachPrediction)
{
    PredictorParams p = testParams(0, 1);
    p.auditEvery = 1;
    p.auditWarmup = 0;
    ServicePredictor pred(p);
    pred.recordDetailed(metrics(1000, 5000));
    ASSERT_FALSE(pred.wantsDetail());
    // Every decision is an audit: the service never emulates.
    for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(pred.decideDetail());
        pred.recordDetailed(metrics(1000, 5000));
    }
    EXPECT_EQ(pred.stats().audits, 6u);
    EXPECT_EQ(pred.stats().auditFailures, 0u);
    EXPECT_EQ(pred.stats().predictedRuns, 0u);
}

TEST(ServicePredictorAudit, AuditEveryOneWithWarmupAlternates)
{
    PredictorParams p = testParams(0, 1);
    p.auditEvery = 1;
    p.auditWarmup = 1;
    ServicePredictor pred(p);
    pred.recordDetailed(metrics(1000, 5000));
    // Bursts of warm + audit back to back.
    for (int i = 0; i < 6; ++i) {
        ASSERT_TRUE(pred.decideDetail());
        pred.recordDetailed(metrics(1000, 5000));
    }
    EXPECT_EQ(pred.stats().audits, 3u);
    EXPECT_EQ(pred.stats().auditWarmupRuns, 3u);
}

TEST(ServicePredictorAudit, PendingAuditDroppedOnRelearnEntry)
{
    // An audit decision taken while predicting must not audit a
    // learning-window sample if a relearn fires in between.
    PredictorParams p = testParams(0, 2);
    p.auditEvery = 1;
    p.auditWarmup = 0;
    p.relearn.strategy = RelearnStrategy::Eager;
    ServicePredictor pred(p);
    pred.recordDetailed(metrics(1000, 5000));
    pred.recordDetailed(metrics(1000, 5000));
    ASSERT_FALSE(pred.wantsDetail());
    ASSERT_TRUE(pred.decideDetail());  // audit now pending
    // Outlier prediction forces an eager relearn before the
    // detailed outcome comes back.
    pred.predict(9000, 2);
    ASSERT_TRUE(pred.wantsDetail());
    pred.recordDetailed(metrics(9000, 90000));
    // The sample joined the learning window instead of auditing.
    EXPECT_EQ(pred.stats().audits, 0u);
    EXPECT_EQ(pred.stats().learnedRuns, 3u);
    // The schedule resumes cleanly once predicting again.
    pred.recordDetailed(metrics(9000, 90000));
    ASSERT_FALSE(pred.wantsDetail());
    ASSERT_TRUE(pred.decideDetail());
    pred.recordDetailed(metrics(9000, 90000));
    EXPECT_EQ(pred.stats().audits, 1u);
}

TEST(ServicePredictorAudit, TriggerCountInvalidatesAndRelearns)
{
    PredictorParams p = testParams(0, 2);
    p.auditEvery = 1;
    p.auditWarmup = 0;
    p.auditTriggerCount = 2;
    ServicePredictor pred(p);
    pred.recordDetailed(metrics(1000, 5000));
    pred.recordDetailed(metrics(1000, 5000));
    ASSERT_FALSE(pred.wantsDetail());

    // Behaviour jumps 4x: two consecutive audit failures force a
    // re-learning window without clearing the table.
    ASSERT_TRUE(pred.decideDetail());
    pred.recordDetailed(metrics(1000, 20000));
    EXPECT_EQ(pred.stats().auditFailures, 1u);
    EXPECT_FALSE(pred.wantsDetail());  // one strike is noise
    ASSERT_TRUE(pred.decideDetail());
    pred.recordDetailed(metrics(1000, 20000));
    EXPECT_EQ(pred.stats().auditFailures, 2u);
    EXPECT_EQ(pred.stats().driftResets, 1u);
    EXPECT_TRUE(pred.wantsDetail());  // back in a learning window

    // The drift sample plus one more complete the fresh window and
    // pull the surviving cluster's mean toward current behaviour.
    pred.recordDetailed(metrics(1000, 20000));
    EXPECT_FALSE(pred.wantsDetail());
    ServiceMetrics after = pred.predict(1000, 6);
    EXPECT_EQ(after.cycles, (5000u + 5000 + 20000 + 20000) / 4);
}

TEST(ServicePredictorAudit, RoutesAuditsIntoAccuracyLedger)
{
    obs::Telemetry tel;
    PredictorParams p = testParams(0, 1);
    p.auditEvery = 1;
    p.auditWarmup = 0;
    ServicePredictor pred(p);
    pred.attachTelemetry(&tel, "predictor.test", 7);
    pred.recordDetailed(metrics(1000, 5000));

    bool outlier = true;
    ServiceMetrics pr = pred.predict(1000, 1, &outlier);
    EXPECT_FALSE(outlier);
    EXPECT_EQ(pred.lastMatchedCluster(), 0u);
    ASSERT_TRUE(pred.decideDetail());
    pred.recordDetailed(metrics(1000, 6000));  // passes (noise)

    obs::AccuracySnapshot snap = tel.accuracy.snapshot();
    ASSERT_EQ(snap.entries.size(), 1u);
    const obs::AccuracyEntry &e = snap.entries[0];
    EXPECT_EQ(e.service, 7);
    EXPECT_EQ(e.cluster, 0u);
    EXPECT_EQ(e.predictions, 1u);
    EXPECT_EQ(e.predictedCycles, pr.cycles);
    EXPECT_EQ(e.audits, 1u);
    ASSERT_EQ(e.errCount, 1u);
    // predicted 5000 vs measured 6000.
    EXPECT_NEAR(e.errMean, (5000.0 - 6000.0) / 6000.0, 1e-12);

    // Satellite: the per-service audit counters surface in
    // metrics snapshots, not just the aggregate stats.
    obs::MetricsSnapshot ms = tel.registry.snapshot();
    EXPECT_EQ(ms.counterValue("predictor.test", "audits"), 1u);
    EXPECT_EQ(ms.counterValue("predictor.test", "audit_failures"),
              0u);
    EXPECT_EQ(ms.counterValue("predictor.test", "drift_resets"),
              0u);
}

TEST(ServicePredictorAudit, NoClusterAuditSkipsLedger)
{
    // predict() before any learning books under the no-cluster
    // sentinel and the audit (no cluster to compare) records the
    // failure without an error sample.
    obs::Telemetry tel;
    PredictorParams p = testParams(0, 1);
    ServicePredictor pred(p);
    pred.attachTelemetry(&tel, "predictor.test", 3);
    pred.predict(1234, 0);
    obs::AccuracySnapshot snap = tel.accuracy.snapshot();
    ASSERT_EQ(snap.entries.size(), 1u);
    EXPECT_EQ(snap.entries[0].cluster, obs::accuracyNoCluster);
    EXPECT_EQ(snap.entries[0].predictions, 1u);
    EXPECT_EQ(snap.entries[0].audits, 0u);
}

TEST(ServicePredictorAudit, WarmRunsDoNotPerturbClusters)
{
    PredictorParams p = testParams(0, 1);
    p.auditEvery = 2;
    p.auditWarmup = 1;
    ServicePredictor pred(p);
    pred.recordDetailed(metrics(1000, 5000));
    std::uint64_t inv = 1;
    // Drive far enough for two full audit bursts; warm runs carry
    // wildly wrong cycles which must never reach the PLT.
    for (int i = 0; i < 12; ++i) {
        if (pred.decideDetail()) {
            bool warm = pred.stats().audits ==
                        pred.stats().auditWarmupRuns;
            pred.recordDetailed(
                metrics(1000, warm ? 900000 : 5000));
        } else {
            pred.predict(1000, inv);
        }
        ++inv;
    }
    EXPECT_GE(pred.stats().auditWarmupRuns, 2u);
    EXPECT_EQ(pred.stats().auditFailures, 0u);
    ASSERT_EQ(pred.table().numClusters(), 1u);
    ServiceMetrics pr = pred.predict(1000, inv);
    EXPECT_EQ(pr.cycles, 5000u);
}

TEST(ServicePredictor, CoverageReflectsWindowAndTraffic)
{
    // 2 warmup + 5 learning out of 100 invocations -> 93%.
    ServicePredictor pred(testParams(2, 5));
    std::uint64_t detailed = 0;
    for (std::uint64_t i = 0; i < 100; ++i) {
        if (pred.wantsDetail()) {
            ++detailed;
            pred.recordDetailed(metrics(1000, 5000));
        } else {
            pred.predict(1000, i);
        }
    }
    EXPECT_EQ(detailed, 7u);
}

} // namespace
} // namespace osp
