/** @file Tests for the Performance Lookup Table (Sec. 4.3-4.4). */

#include <gtest/gtest.h>

#include "core/plt.hh"

namespace osp
{
namespace
{

ServiceMetrics
metrics(InstCount insts, Cycles cycles)
{
    ServiceMetrics m;
    m.insts = insts;
    m.cycles = cycles;
    return m;
}

TEST(PerfLookupTable, RecordCreatesAndMergesClusters)
{
    PerfLookupTable plt(0.05);
    EXPECT_TRUE(plt.record(metrics(1000, 5000)));   // new
    EXPECT_FALSE(plt.record(metrics(1020, 5100)));  // merges
    EXPECT_TRUE(plt.record(metrics(5000, 20000)));  // new
    EXPECT_EQ(plt.numClusters(), 2u);
}

TEST(PerfLookupTable, MatchWithinRangeOnly)
{
    PerfLookupTable plt(0.05);
    plt.record(metrics(1000, 5000));
    EXPECT_NE(plt.match(1000), nullptr);
    EXPECT_NE(plt.match(1049), nullptr);
    EXPECT_EQ(plt.match(1100), nullptr);
    EXPECT_EQ(plt.match(10), nullptr);
}

TEST(PerfLookupTable, OverlappingRangesPickClosestCentroid)
{
    PerfLookupTable plt(0.10);
    plt.record(metrics(1000, 1111));
    plt.record(metrics(1150, 2222));
    // 1070 falls in both ranges; 1000 is closer.
    const ScaledCluster *c = plt.match(1070);
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->predict().cycles, 1111u);
    const ScaledCluster *d = plt.match(1090);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->predict().cycles, 2222u);
}

TEST(PerfLookupTable, ClosestIgnoresRange)
{
    PerfLookupTable plt(0.05);
    EXPECT_EQ(plt.closest(1234), nullptr);
    plt.record(metrics(1000, 1111));
    plt.record(metrics(9000, 9999));
    EXPECT_EQ(plt.closest(200)->predict().cycles, 1111u);
    EXPECT_EQ(plt.closest(6000)->predict().cycles, 9999u);
}

TEST(PerfLookupTable, RecordPrefersClosestOnOverlap)
{
    PerfLookupTable plt(0.10);
    plt.record(metrics(1000, 1000));
    plt.record(metrics(1180, 2000));
    // 1080 matches both; must merge into the 1000 cluster.
    plt.record(metrics(1080, 1500));
    const auto &clusters = plt.allClusters();
    ASSERT_EQ(clusters.size(), 2u);
    EXPECT_EQ(clusters[0].count(), 2u);
    EXPECT_EQ(clusters[1].count(), 1u);
}

TEST(PerfLookupTable, OutlierEntriesClusterBySignature)
{
    PerfLookupTable plt(0.05);
    auto &a = plt.recordOutlier(2000, 10);
    EXPECT_EQ(a.matchCount, 1u);
    auto &b = plt.recordOutlier(2010, 25);
    EXPECT_EQ(&a, &b);
    EXPECT_EQ(b.matchCount, 2u);
    EXPECT_EQ(b.occurredAt.size(), 2u);
    EXPECT_EQ(b.occurredAt[1], 25u);
    EXPECT_EQ(plt.numOutlierEntries(), 1u);

    plt.recordOutlier(9000, 30);
    EXPECT_EQ(plt.numOutlierEntries(), 2u);
}

TEST(PerfLookupTable, OutlierCentroidTracksMembers)
{
    PerfLookupTable plt(0.05);
    plt.recordOutlier(2000, 1);
    auto &e = plt.recordOutlier(2100, 2);
    EXPECT_DOUBLE_EQ(e.centroid, 2050.0);
}

TEST(PerfLookupTable, ClearOutliersKeepsClusters)
{
    PerfLookupTable plt(0.05);
    plt.record(metrics(1000, 5000));
    plt.recordOutlier(2000, 1);
    plt.clearOutliers();
    EXPECT_EQ(plt.numOutlierEntries(), 0u);
    EXPECT_EQ(plt.numClusters(), 1u);
}

TEST(PerfLookupTable, InvalidRangeDies)
{
    EXPECT_DEATH(PerfLookupTable(0.0), "range");
}

} // namespace
} // namespace osp
