/** @file Tests for the synthetic VFS and dentry cache. */

#include <gtest/gtest.h>

#include "os/vfs.hh"

namespace osp
{
namespace
{

VfsParams
smallParams()
{
    VfsParams p;
    p.numDirs = 10;
    p.filesPerDirMin = 2;
    p.filesPerDirMax = 5;
    p.fileSizeMin = 1024;
    p.fileSizeMax = 8192;
    p.dentryCapacity = 16;
    return p;
}

TEST(Vfs, DeterministicTree)
{
    Vfs a(smallParams(), 42);
    Vfs b(smallParams(), 42);
    ASSERT_EQ(a.numFiles(), b.numFiles());
    for (std::uint32_t f = 0; f < a.numFiles(); ++f) {
        EXPECT_EQ(a.fileSize(f), b.fileSize(f));
        EXPECT_EQ(a.pathDepth(f), b.pathDepth(f));
    }
}

TEST(Vfs, DifferentSeedsDiffer)
{
    Vfs a(smallParams(), 42);
    Vfs b(smallParams(), 43);
    bool any_diff = a.numFiles() != b.numFiles();
    for (std::uint32_t f = 0;
         !any_diff && f < std::min(a.numFiles(), b.numFiles()); ++f) {
        any_diff = a.fileSize(f) != b.fileSize(f);
    }
    EXPECT_TRUE(any_diff);
}

TEST(Vfs, TreeShapeWithinParams)
{
    VfsParams p = smallParams();
    Vfs vfs(p, 7);
    EXPECT_EQ(vfs.numDirs(), p.numDirs);
    std::uint32_t total = 0;
    for (std::uint32_t d = 0; d < vfs.numDirs(); ++d) {
        const auto &files = vfs.dirFiles(d);
        EXPECT_GE(files.size(), p.filesPerDirMin);
        EXPECT_LE(files.size(), p.filesPerDirMax);
        total += files.size();
    }
    EXPECT_EQ(total, vfs.numFiles());
    for (std::uint32_t f = 0; f < vfs.numFiles(); ++f) {
        EXPECT_GE(vfs.fileSize(f), p.fileSizeMin);
        EXPECT_LE(vfs.fileSize(f),
                  static_cast<std::uint64_t>(p.fileSizeMax * 1.01));
        EXPECT_GE(vfs.pathDepth(f), 3u);
        EXPECT_LE(vfs.pathDepth(f), 6u);
    }
}

TEST(Vfs, AddFileRegisters)
{
    Vfs vfs(smallParams(), 7);
    std::uint32_t before = vfs.numFiles();
    std::uint32_t id = vfs.addFile(1400 * 1024, 4);
    EXPECT_EQ(id, before);
    EXPECT_EQ(vfs.fileSize(id), 1400u * 1024);
    EXPECT_EQ(vfs.pathDepth(id), 4u);
}

TEST(Vfs, ResolveColdThenWarm)
{
    Vfs vfs(smallParams(), 7);
    std::uint32_t f = 0;
    std::uint32_t cold = vfs.resolve(f);
    EXPECT_GT(cold, 0u);
    EXPECT_LE(cold, vfs.pathDepth(f));
    // Immediately re-resolving: fully cached.
    EXPECT_EQ(vfs.resolve(f), 0u);
}

TEST(Vfs, SiblingsSharePrefixDentries)
{
    Vfs vfs(smallParams(), 7);
    const auto &files = vfs.dirFiles(0);
    ASSERT_GE(files.size(), 2u);
    vfs.resolve(files[0]);
    // The sibling misses at most its leaf (prefix cached).
    EXPECT_LE(vfs.resolve(files[1]), 1u);
}

TEST(Vfs, DentryCapacityEvicts)
{
    VfsParams p = smallParams();
    p.dentryCapacity = 4;
    Vfs vfs(p, 7);
    // Touch many files across dirs: dentries must be evicted.
    for (std::uint32_t d = 0; d < vfs.numDirs(); ++d)
        for (std::uint32_t f : vfs.dirFiles(d))
            vfs.resolve(f);
    EXPECT_GT(vfs.dentryEvictions(), 0u);
    // An early file resolves cold again.
    EXPECT_GT(vfs.resolve(vfs.dirFiles(0)[0]), 0u);
}

TEST(Vfs, BadIdsDie)
{
    Vfs vfs(smallParams(), 7);
    EXPECT_DEATH(vfs.fileSize(100000), "bad file");
    EXPECT_DEATH(vfs.dirFiles(100000), "bad dir");
    EXPECT_DEATH(vfs.resolve(100000), "bad file");
}

} // namespace
} // namespace osp
