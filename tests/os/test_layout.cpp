/** @file Tests for the kernel address-space layout and profiles. */

#include <gtest/gtest.h>

#include "os/layout.hh"

namespace osp
{
namespace
{

TEST(KernelLayout, ServiceCodeRegionsAreDisjoint)
{
    KernelLayout layout = makeKernelLayout();
    for (int a = 0; a < numServiceTypes; ++a) {
        const Region &ra = layout.serviceCode[a];
        EXPECT_GT(ra.size, 0u);
        EXPECT_GE(ra.base, kernelBase);
        for (int b = a + 1; b < numServiceTypes; ++b) {
            const Region &rb = layout.serviceCode[b];
            bool disjoint = ra.base + ra.size <= rb.base ||
                            rb.base + rb.size <= ra.base;
            EXPECT_TRUE(disjoint) << a << " vs " << b;
        }
    }
}

TEST(KernelLayout, ServiceCodeMatchesFootprints)
{
    KernelLayout layout = makeKernelLayout();
    for (int t = 0; t < numServiceTypes; ++t) {
        EXPECT_EQ(layout.serviceCode[t].size,
                  serviceCodeFootprint(static_cast<ServiceType>(t)));
    }
}

TEST(KernelLayout, AggregateCodeFootprintExceedsL1I)
{
    // The reason OS IPC is low (Fig. 3b): kernel code >> 16KB L1I.
    std::uint64_t total = 0;
    for (int t = 0; t < numServiceTypes; ++t)
        total += serviceCodeFootprint(static_cast<ServiceType>(t));
    EXPECT_GT(total, 256u * 1024);
}

TEST(KernelLayout, DataAreasAboveKernelBase)
{
    KernelLayout layout = makeKernelLayout();
    for (const Region *r :
         {&layout.entryCode, &layout.stack, &layout.dentryArea,
          &layout.socketArea, &layout.driverArea, &layout.mmArea,
          &layout.ipcArea, &layout.timeArea,
          &layout.pageCacheArea}) {
        EXPECT_GE(r->base, kernelBase);
        EXPECT_GT(r->size, 0u);
    }
}

TEST(KernelLayout, PageCacheAreaFitsRotatingPool)
{
    // 1024 capacity x 8 spread x 4KB must fit the frame area.
    KernelLayout layout = makeKernelLayout();
    EXPECT_GE(layout.pageCacheArea.size,
              1024ULL * 8 * 4096);
}

TEST(ServiceProfiles, KernelCodeIsBranchyAndSerial)
{
    KernelLayout layout = makeKernelLayout();
    CodeProfile svc =
        serviceProfile(layout, ServiceType::SysRead);
    CodeProfile entry = entryProfile(layout);
    EXPECT_GT(svc.branchFrac, 0.15);
    EXPECT_LT(svc.depDistMean, 4.0);
    EXPECT_GT(svc.branchRandomFrac, entry.branchRandomFrac);
    EXPECT_LT(svc.blockRunBytes, entry.blockRunBytes);
}

TEST(ServiceProfiles, CopyLoopHasTinyFootprint)
{
    KernelLayout layout = makeKernelLayout();
    CodeProfile copy = copyProfile(layout, ServiceType::SysRead);
    EXPECT_LE(copy.code.size, 4096u);
    // The copy loop lives inside its service's code region.
    const Region &svc =
        layout.serviceCode[static_cast<int>(ServiceType::SysRead)];
    EXPECT_GE(copy.code.base, svc.base);
    EXPECT_LE(copy.code.base + copy.code.size,
              svc.base + svc.size);
}

TEST(ServiceTypes, NamesAndInterruptFlags)
{
    EXPECT_STREQ(serviceName(ServiceType::SysRead), "sys_read");
    EXPECT_STREQ(serviceName(ServiceType::IntTimer), "Int_239");
    EXPECT_STREQ(serviceName(ServiceType::IntNic), "Int_121");
    EXPECT_STREQ(serviceName(ServiceType::IntDisk), "Int_49");
    EXPECT_STREQ(serviceName(ServiceType::IntPageFault), "Int_14");
    EXPECT_TRUE(isInterrupt(ServiceType::IntTimer));
    EXPECT_TRUE(isInterrupt(ServiceType::IntNic));
    EXPECT_TRUE(isInterrupt(ServiceType::IntDisk));
    EXPECT_FALSE(isInterrupt(ServiceType::IntPageFault));
    EXPECT_FALSE(isInterrupt(ServiceType::SysRead));
}

} // namespace
} // namespace osp
