/** @file Tests for the interrupt controller. */

#include <gtest/gtest.h>

#include "os/interrupts.hh"

namespace osp
{
namespace
{

TEST(InterruptController, TimerFiresPeriodically)
{
    InterruptController irq(1000);
    EXPECT_FALSE(irq.nextDue(999).has_value());
    auto first = irq.nextDue(1000);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->type, ServiceType::IntTimer);
    // Re-armed: not due again until 2000.
    EXPECT_FALSE(irq.nextDue(1999).has_value());
    EXPECT_TRUE(irq.nextDue(2000).has_value());
}

TEST(InterruptController, TimerCatchesUpOneAtATime)
{
    InterruptController irq(100);
    // Far in the future: ticks deliver one per call.
    auto a = irq.nextDue(1000);
    auto b = irq.nextDue(1000);
    ASSERT_TRUE(a.has_value());
    ASSERT_TRUE(b.has_value());
    EXPECT_EQ(a->type, ServiceType::IntTimer);
    EXPECT_EQ(b->type, ServiceType::IntTimer);
}

TEST(InterruptController, ZeroPeriodDisablesTimer)
{
    InterruptController irq(0);
    EXPECT_FALSE(irq.nextDue(1ULL << 60).has_value());
}

TEST(InterruptController, OneShotDelivery)
{
    InterruptController irq(0);
    SyscallArgs args;
    args.arg0 = 7;
    irq.schedule(ServiceType::IntDisk, 500, args);
    EXPECT_FALSE(irq.nextDue(499).has_value());
    auto due = irq.nextDue(500);
    ASSERT_TRUE(due.has_value());
    EXPECT_EQ(due->type, ServiceType::IntDisk);
    EXPECT_EQ(due->args.arg0, 7u);
    // Consumed.
    EXPECT_FALSE(irq.nextDue(10000).has_value());
}

TEST(InterruptController, DeliversInTimeOrder)
{
    InterruptController irq(0);
    irq.schedule(ServiceType::IntNic, 300);
    irq.schedule(ServiceType::IntDisk, 100);
    irq.schedule(ServiceType::IntNic, 200);
    auto a = irq.nextDue(1000);
    auto b = irq.nextDue(1000);
    auto c = irq.nextDue(1000);
    ASSERT_TRUE(a && b && c);
    EXPECT_EQ(a->type, ServiceType::IntDisk);
    EXPECT_EQ(b->type, ServiceType::IntNic);
    EXPECT_EQ(c->type, ServiceType::IntNic);
}

TEST(InterruptController, DeviceBeforeTimerWhenEarlier)
{
    InterruptController irq(1000);
    irq.schedule(ServiceType::IntDisk, 500);
    auto first = irq.nextDue(1500);
    ASSERT_TRUE(first.has_value());
    EXPECT_EQ(first->type, ServiceType::IntDisk);
    auto second = irq.nextDue(1500);
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->type, ServiceType::IntTimer);
}

TEST(InterruptController, PendingCountsOneShotsOnly)
{
    InterruptController irq(100);
    EXPECT_EQ(irq.pending(), 0u);
    irq.schedule(ServiceType::IntDisk, 50);
    EXPECT_EQ(irq.pending(), 1u);
    irq.nextDue(50);
    EXPECT_EQ(irq.pending(), 0u);
}

/** nextDueAt() is the exact poll-skipping hint the Machine's run
 *  loop uses: nextDue(now) yields an event iff now >= nextDueAt(). */
TEST(InterruptController, NextDueAtIsExact)
{
    InterruptController irq(1000);
    EXPECT_EQ(irq.nextDueAt(), 1000u);

    irq.schedule(ServiceType::IntDisk, 400);
    irq.schedule(ServiceType::IntNic, 700);
    EXPECT_EQ(irq.nextDueAt(), 400u);

    EXPECT_FALSE(irq.nextDue(399).has_value());
    auto disk = irq.nextDue(400);
    ASSERT_TRUE(disk.has_value());
    EXPECT_EQ(disk->type, ServiceType::IntDisk);

    EXPECT_EQ(irq.nextDueAt(), 700u);
    auto nic = irq.nextDue(700);
    ASSERT_TRUE(nic.has_value());
    EXPECT_EQ(nic->type, ServiceType::IntNic);

    // Only the self-arming timer is left.
    EXPECT_EQ(irq.nextDueAt(), 1000u);
    auto timer = irq.nextDue(1000);
    ASSERT_TRUE(timer.has_value());
    EXPECT_EQ(timer->type, ServiceType::IntTimer);
    EXPECT_EQ(irq.nextDueAt(), 2000u);  // re-armed
}

TEST(InterruptController, NextDueAtNeverWhenIdle)
{
    InterruptController irq(0);  // timer disabled
    EXPECT_EQ(irq.nextDueAt(), ~InstCount(0));
    irq.schedule(ServiceType::IntNic, 5);
    EXPECT_EQ(irq.nextDueAt(), 5u);
    ASSERT_TRUE(irq.nextDue(5).has_value());
    EXPECT_EQ(irq.nextDueAt(), ~InstCount(0));
}

} // namespace
} // namespace osp
