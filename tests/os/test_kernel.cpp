/** @file Tests for the synthetic kernel's service handlers. */

#include <gtest/gtest.h>

#include <memory>

#include "os/kernel.hh"
#include "sim/codegen.hh"
#include "stats/running_stats.hh"

namespace osp
{
namespace
{

KernelParams
testParams()
{
    KernelParams p;
    p.seed = 11;
    p.pageCachePages = 64;
    p.vfs.numDirs = 6;
    p.vfs.filesPerDirMin = 2;
    p.vfs.filesPerDirMax = 4;
    p.timerPeriod = 0;  // no timer noise in unit tests
    p.opJitter = 0.0;   // deterministic plan sizes
    return p;
}

struct Invocation
{
    ServiceResult result;
    InstCount insts = 0;
};

/** Invoke a service, draining the plan and counting instructions. */
Invocation
run(SyntheticKernel &k, ServiceType type, SyscallArgs args,
    InstCount now = 0)
{
    CodeGenerator gen(1, 99);
    Invocation inv;
    inv.result = k.invoke(type, args, now, &gen);
    while (!gen.done()) {
        gen.next();
        ++inv.insts;
    }
    return inv;
}

TEST(Kernel, GettimeofdayIsTiny)
{
    SyntheticKernel k(testParams());
    auto inv = run(k, ServiceType::SysGettimeofday, {});
    EXPECT_GT(inv.insts, 100u);
    EXPECT_LT(inv.insts, 600u);
}

TEST(Kernel, OpenReturnsUsableFd)
{
    SyntheticKernel k(testParams());
    auto open = run(k, ServiceType::SysOpen, {0, 0, 0});
    std::uint64_t fd = open.result.value;
    auto close = run(k, ServiceType::SysClose, {fd, 0, 0});
    EXPECT_EQ(close.result.value, 0u);
}

TEST(Kernel, OpenColdCostsMoreThanWarm)
{
    SyntheticKernel k(testParams());
    auto cold = run(k, ServiceType::SysOpen, {0, 0, 0});
    run(k, ServiceType::SysClose, {cold.result.value, 0, 0});
    auto warm = run(k, ServiceType::SysOpen, {0, 0, 0});
    // Dentries cached: the second open plans fewer instructions.
    EXPECT_LT(warm.insts, cold.insts);
}

TEST(Kernel, ReadCachedVsUncachedPaths)
{
    SyntheticKernel k(testParams());
    std::uint32_t file = k.vfs().addFile(64 * 1024, 3);
    auto fd =
        run(k, ServiceType::SysOpen, {file, 0, 0}).result.value;

    auto cold = run(k, ServiceType::SysRead, {fd, 16384, 0x20000});
    EXPECT_EQ(cold.result.value, 16384u);

    // Re-read the same offset via a fresh fd: pages now cached.
    run(k, ServiceType::SysClose, {fd, 0, 0});
    auto fd2 =
        run(k, ServiceType::SysOpen, {file, 0, 0}).result.value;
    auto warm = run(k, ServiceType::SysRead, {fd2, 16384, 0x20000});
    EXPECT_EQ(warm.result.value, 16384u);
    // The miss path plans block I/O + page allocation on top of the
    // copy: clearly more instructions.
    EXPECT_GT(cold.insts, warm.insts + 500);
}

TEST(Kernel, ReadAdvancesOffsetToEof)
{
    SyntheticKernel k(testParams());
    std::uint32_t file = k.vfs().addFile(10000, 3);
    auto fd =
        run(k, ServiceType::SysOpen, {file, 0, 0}).result.value;
    EXPECT_EQ(run(k, ServiceType::SysRead, {fd, 8192, 0x20000})
                  .result.value,
              8192u);
    EXPECT_EQ(run(k, ServiceType::SysRead, {fd, 8192, 0x20000})
                  .result.value,
              1808u);
    auto eof = run(k, ServiceType::SysRead, {fd, 8192, 0x20000});
    EXPECT_EQ(eof.result.value, 0u);
    EXPECT_LT(eof.insts, 600u);  // EOF is a short path
}

TEST(Kernel, ReadSchedulesDiskCompletion)
{
    SyntheticKernel k(testParams());
    std::uint32_t file = k.vfs().addFile(64 * 1024, 3);
    auto fd =
        run(k, ServiceType::SysOpen, {file, 0, 0}).result.value;
    run(k, ServiceType::SysRead, {fd, 4096, 0x20000}, 1000);
    auto irq =
        k.pendingInterrupt(1000 + k.params().diskLatency);
    ASSERT_TRUE(irq.has_value());
    EXPECT_EQ(irq->type, ServiceType::IntDisk);
}

TEST(Kernel, ReadaheadMakesSequentialReadsCheap)
{
    SyntheticKernel k(testParams());
    std::uint32_t file = k.vfs().addFile(256 * 1024, 3);
    auto fd =
        run(k, ServiceType::SysOpen, {file, 0, 0}).result.value;
    auto first = run(k, ServiceType::SysRead, {fd, 4096, 0x20000});
    auto second = run(k, ServiceType::SysRead, {fd, 4096, 0x20000});
    // Readahead filled the next pages: the second read is the
    // cached path.
    EXPECT_LT(second.insts, first.insts);
}

TEST(Kernel, GetdentsOnceThenEof)
{
    SyntheticKernel k(testParams());
    auto fd = run(k, ServiceType::SysOpen, {0x40000000ULL, 0, 0})
                  .result.value;
    auto first = run(k, ServiceType::SysRead, {fd, 16384, 0x20000});
    EXPECT_EQ(first.result.value,
              48ULL * k.vfs().dirFiles(0).size());
    auto eof = run(k, ServiceType::SysRead, {fd, 16384, 0x20000});
    EXPECT_EQ(eof.result.value, 0u);
}

TEST(Kernel, SocketSendQueuesTxAndNicIrq)
{
    SyntheticKernel k(testParams());
    auto accept =
        run(k, ServiceType::SysSocketcall, {0, 0, 0});
    std::uint64_t fd = accept.result.value;
    auto sent =
        run(k, ServiceType::SysWrite, {fd, 8192, 0x20000}, 500);
    EXPECT_EQ(sent.result.value, 8192u);
    EXPECT_GT(k.net().pendingTxPackets(), 0u);
    auto irq = k.pendingInterrupt(500 + k.params().nicLatency);
    ASSERT_TRUE(irq.has_value());
    EXPECT_EQ(irq->type, ServiceType::IntNic);
}

TEST(Kernel, NicIrqCostScalesWithBacklog)
{
    SyntheticKernel k(testParams());
    auto fd = run(k, ServiceType::SysSocketcall, {0, 0, 0})
                  .result.value;
    run(k, ServiceType::SysWrite, {fd, 1448, 0x20000});
    auto small = run(k, ServiceType::IntNic, {});
    run(k, ServiceType::SysWrite, {fd, 40 * 1448, 0x20000});
    auto large = run(k, ServiceType::IntNic, {});
    EXPECT_GT(large.insts, small.insts + 1000);
}

TEST(Kernel, WritevCountsAsSend)
{
    SyntheticKernel k(testParams());
    auto fd = run(k, ServiceType::SysSocketcall, {0, 0, 0})
                  .result.value;
    auto inv = run(k, ServiceType::SysWritev, {fd, 16384, 3});
    EXPECT_EQ(inv.result.value, 16384u);
    EXPECT_GT(inv.insts, 4000u);  // copies dominate
}

TEST(Kernel, PollSynthesizesArrivalWhenIdle)
{
    SyntheticKernel k(testParams());
    auto fd = run(k, ServiceType::SysSocketcall, {0, 0, 0})
                  .result.value;
    auto wait = run(k, ServiceType::SysPoll, {fd, 2, 0});
    EXPECT_EQ(wait.result.value, 1u);
    // Data now pending: the next poll takes the fast path.
    auto fast = run(k, ServiceType::SysPoll, {fd, 2, 0});
    EXPECT_EQ(fast.result.value, 1u);
    EXPECT_LT(fast.insts, wait.insts);
}

TEST(Kernel, TimerTickHasTwoBehaviourPoints)
{
    KernelParams p = testParams();
    SyntheticKernel k(p);
    InstCount plain = 0;
    InstCount sched = 0;
    for (int i = 1; i <= 8; ++i) {
        auto inv = run(k, ServiceType::IntTimer, {});
        if (i % 4 == 0)
            sched = inv.insts;
        else
            plain = inv.insts;
    }
    EXPECT_GT(sched, plain + 300);
}

TEST(Kernel, PageFaultTracksFirstTouchOnly)
{
    SyntheticKernel k(testParams());
    EXPECT_TRUE(k.touchUserPage(0x5000));
    EXPECT_FALSE(k.touchUserPage(0x5000));
    EXPECT_FALSE(k.touchUserPage(0x5FFF));  // same page
    EXPECT_TRUE(k.touchUserPage(0x6000));
    // Kernel addresses never fault.
    EXPECT_FALSE(k.touchUserPage(0xC0000000ULL));
}

TEST(Kernel, PageFaultHandlerPlansZeroFill)
{
    SyntheticKernel k(testParams());
    auto inv = run(k, ServiceType::IntPageFault, {0x5000, 0, 0});
    // VMA walk + 4KB zero-fill (1024 copy ops) + entry/exit.
    EXPECT_GT(inv.insts, 1500u);
}

TEST(Kernel, FunctionalOnlyInvokeUpdatesState)
{
    SyntheticKernel k(testParams());
    std::uint32_t file = k.vfs().addFile(64 * 1024, 3);
    // App-only mode: null generator.
    auto fd = k.invoke(ServiceType::SysOpen, {file, 0, 0}, 0,
                       nullptr);
    auto res = k.invoke(ServiceType::SysRead,
                        {fd.value, 4096, 0x20000}, 0, nullptr);
    EXPECT_EQ(res.value, 4096u);
    // State advanced: page now cached.
    EXPECT_GT(k.pageCache().residentPages(), 0u);
}

TEST(Kernel, BadFdDies)
{
    SyntheticKernel k(testParams());
    EXPECT_DEATH(run(k, ServiceType::SysRead, {63, 4096, 0}),
                 "bad file descriptor");
}

TEST(Kernel, FcntlCostVariesWithCommand)
{
    SyntheticKernel k(testParams());
    auto fd = run(k, ServiceType::SysSocketcall, {0, 0, 0})
                  .result.value;
    auto cmd0 = run(k, ServiceType::SysFcntl64, {fd, 0, 0});
    auto cmd3 = run(k, ServiceType::SysFcntl64, {fd, 3, 0});
    EXPECT_GT(cmd3.insts, cmd0.insts);
}

TEST(Kernel, StatReturnsSize)
{
    SyntheticKernel k(testParams());
    std::uint32_t file = k.vfs().addFile(12345, 3);
    auto inv =
        run(k, ServiceType::SysStat64, {file, 0x30000, 0});
    EXPECT_EQ(inv.result.value, 12345u);
}

TEST(Kernel, FileWritebackBurstEveryBatch)
{
    SyntheticKernel k(testParams());
    std::uint32_t file = k.vfs().addFile(4096, 3);
    auto fd =
        run(k, ServiceType::SysOpen, {file, 0, 0}).result.value;
    // Writes dirty one page each; the 64th dirty page plans an
    // extra writeback burst and schedules a disk completion.
    InstCount normal = 0;
    InstCount burst = 0;
    bool saw_burst = false;
    for (int i = 0; i < 64; ++i) {
        auto inv = run(k, ServiceType::SysWrite,
                       {fd, 4096, 0x20000}, 100);
        if (i == 62)
            normal = inv.insts;
        if (i == 63) {
            burst = inv.insts;
            saw_burst = true;
        }
    }
    ASSERT_TRUE(saw_burst);
    EXPECT_GT(burst, normal + 500);
    EXPECT_TRUE(
        k.pendingInterrupt(100 + k.params().diskLatency)
            .has_value());
}

TEST(Kernel, SocketRecvDrainsBuffered)
{
    SyntheticKernel k(testParams());
    auto fd = run(k, ServiceType::SysSocketcall, {0, 0, 0})
                  .result.value;
    std::uint32_t sock = 0;  // first socket
    k.net().deliverRx(sock, 1000);
    auto got =
        run(k, ServiceType::SysSocketcall, {2, fd, 600});
    EXPECT_EQ(got.result.value, 600u);
    auto rest =
        run(k, ServiceType::SysSocketcall, {2, fd, 600});
    EXPECT_EQ(rest.result.value, 400u);
}

TEST(Kernel, CloseFreesFdForReuse)
{
    SyntheticKernel k(testParams());
    auto a = run(k, ServiceType::SysOpen, {0, 0, 0}).result.value;
    run(k, ServiceType::SysClose, {a, 0, 0});
    auto b = run(k, ServiceType::SysOpen, {0, 0, 0}).result.value;
    EXPECT_EQ(a, b);
}

TEST(Kernel, JitterBoundsPlanSizes)
{
    KernelParams p = testParams();
    p.opJitter = 0.05;
    SyntheticKernel k(p);
    RunningStats sizes;
    for (int i = 0; i < 50; ++i) {
        auto inv = run(k, ServiceType::SysGettimeofday, {});
        sizes.add(static_cast<double>(inv.insts));
    }
    // Jitter produces variation, but bounded by +-5%.
    EXPECT_GT(sizes.stddev(), 0.0);
    EXPECT_GE(sizes.min(), sizes.mean() * 0.93);
    EXPECT_LE(sizes.max(), sizes.mean() * 1.07);
}

TEST(Kernel, BrkScalesWithPages)
{
    SyntheticKernel k(testParams());
    auto small = run(k, ServiceType::SysBrk, {4096, 0, 0});
    auto large = run(k, ServiceType::SysBrk, {64 * 4096, 0, 0});
    EXPECT_GT(large.insts, small.insts);
    EXPECT_EQ(large.result.value, 64u);
}

} // namespace
} // namespace osp
