/** @file Tests for the kernel page cache. */

#include <gtest/gtest.h>

#include "os/page_cache.hh"

namespace osp
{
namespace
{

constexpr Addr base = 0xD0000000ULL;

TEST(PageCache, MissThenHit)
{
    PageCache pc(4, base);
    EXPECT_FALSE(pc.lookup(1, 0).has_value());
    auto fill = pc.fill(1, 0);
    EXPECT_FALSE(fill.evicted);
    auto hit = pc.lookup(1, 0);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(*hit, fill.frameAddr);
    EXPECT_EQ(pc.hits(), 1u);
    EXPECT_EQ(pc.misses(), 1u);
}

TEST(PageCache, FrameAddressesAreDistinctAndAligned)
{
    PageCache pc(4, base);
    Addr a = pc.fill(1, 0).frameAddr;
    Addr b = pc.fill(1, 1).frameAddr;
    EXPECT_NE(a, b);
    EXPECT_EQ(a % 4096, 0u);
    EXPECT_EQ(b % 4096, 0u);
    EXPECT_GE(a, base);
    // Frames come from the rotating pool: capacity x spread (8).
    EXPECT_LT(a, base + 4 * 8 * 4096);
}

TEST(PageCache, LruEvictionAtCapacity)
{
    PageCache pc(2, base);
    pc.fill(1, 0);
    pc.fill(1, 1);
    pc.lookup(1, 0);  // refresh page 0: page 1 becomes LRU
    auto fill = pc.fill(1, 2);
    EXPECT_TRUE(fill.evicted);
    EXPECT_TRUE(pc.lookup(1, 0).has_value());
    EXPECT_FALSE(pc.lookup(1, 1).has_value());
    EXPECT_TRUE(pc.lookup(1, 2).has_value());
}

TEST(PageCache, StableAddressWhileResident)
{
    PageCache pc(8, base);
    Addr first = pc.fill(3, 7).frameAddr;
    pc.fill(3, 8);
    auto again = pc.lookup(3, 7);
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, first);
}

TEST(PageCache, RefillingResidentPageIsNotEviction)
{
    PageCache pc(2, base);
    Addr a = pc.fill(1, 0).frameAddr;
    auto refill = pc.fill(1, 0);
    EXPECT_FALSE(refill.evicted);
    EXPECT_EQ(refill.frameAddr, a);
    EXPECT_EQ(pc.residentPages(), 1u);
}

TEST(PageCache, FilesDoNotCollide)
{
    PageCache pc(8, base);
    pc.fill(1, 5);
    EXPECT_FALSE(pc.lookup(2, 5).has_value());
}

TEST(PageCache, InvalidateFileFreesFrames)
{
    PageCache pc(4, base);
    pc.fill(1, 0);
    pc.fill(1, 1);
    pc.fill(2, 0);
    pc.invalidateFile(1);
    EXPECT_EQ(pc.residentPages(), 1u);
    EXPECT_FALSE(pc.lookup(1, 0).has_value());
    EXPECT_TRUE(pc.lookup(2, 0).has_value());
    // Freed frames are reusable without eviction.
    EXPECT_FALSE(pc.fill(3, 0).evicted);
    EXPECT_FALSE(pc.fill(3, 1).evicted);
}

TEST(PageCache, CapacitySaturation)
{
    PageCache pc(4, base);
    for (std::uint32_t p = 0; p < 16; ++p)
        pc.fill(1, p);
    EXPECT_EQ(pc.residentPages(), 4u);
    // Only the four most recent pages survive.
    for (std::uint32_t p = 12; p < 16; ++p)
        EXPECT_TRUE(pc.lookup(1, p).has_value());
    EXPECT_FALSE(pc.lookup(1, 11).has_value());
}

TEST(PageCache, ZeroCapacityDies)
{
    EXPECT_DEATH(PageCache(0, base), "capacity");
}

} // namespace
} // namespace osp
