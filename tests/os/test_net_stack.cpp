/** @file Tests for the network stack. */

#include <gtest/gtest.h>

#include "os/net_stack.hh"

namespace osp
{
namespace
{

Region area{0xE0000000ULL, 256 * 1024};

TEST(NetStack, SocketLifecycle)
{
    NetStack net(area, 4);
    std::uint32_t a = net.openSocket();
    std::uint32_t b = net.openSocket();
    EXPECT_NE(a, b);
    net.closeSocket(a);
    // Slots are reused.
    EXPECT_EQ(net.openSocket(), a);
}

TEST(NetStack, SocketTableExhaustionDies)
{
    NetStack net(area, 2);
    net.openSocket();
    net.openSocket();
    EXPECT_DEATH(net.openSocket(), "exhausted");
}

TEST(NetStack, TxSegmentation)
{
    NetStack net(area, 4);
    std::uint32_t s = net.openSocket();
    // 1448-byte MSS: 4000 bytes -> 3 packets.
    EXPECT_EQ(net.queueTx(s, 4000), 3u);
    EXPECT_EQ(net.pendingTxPackets(), 3u);
    EXPECT_EQ(net.queueTx(s, 1448), 1u);
    EXPECT_EQ(net.pendingTxPackets(), 4u);
}

TEST(NetStack, DrainTxBounded)
{
    NetStack net(area, 4);
    std::uint32_t s = net.openSocket();
    net.queueTx(s, 100 * 1448);
    EXPECT_EQ(net.drainTx(64), 64u);
    EXPECT_EQ(net.pendingTxPackets(), 36u);
    EXPECT_EQ(net.drainTx(64), 36u);
    EXPECT_EQ(net.drainTx(64), 0u);
}

TEST(NetStack, RxDeliveryAndConsumption)
{
    NetStack net(area, 4);
    std::uint32_t s = net.openSocket();
    EXPECT_EQ(net.rxAvailable(s), 0u);
    net.deliverRx(s, 600);
    EXPECT_EQ(net.rxAvailable(s), 600u);
    EXPECT_EQ(net.takeRx(s, 400), 400u);
    EXPECT_EQ(net.takeRx(s, 400), 200u);
    EXPECT_EQ(net.takeRx(s, 400), 0u);
}

TEST(NetStack, BufferRegionsDisjointPerSocket)
{
    NetStack net(area, 4);
    Region a = net.socketBuffer(0);
    Region b = net.socketBuffer(1);
    EXPECT_GE(b.base, a.base + a.size);
    EXPECT_GT(a.size, 0u);
}

TEST(NetStack, SkbPoolInSecondHalf)
{
    NetStack net(area, 4);
    Region skb = net.skbPool();
    EXPECT_EQ(skb.base, area.base + area.size / 2);
    EXPECT_EQ(skb.size, area.size / 2);
    // Socket buffers stay in the first half.
    Region last = net.socketBuffer(3);
    EXPECT_LE(last.base + last.size, skb.base);
}

TEST(NetStack, ClosedSocketOperationsDie)
{
    NetStack net(area, 4);
    std::uint32_t s = net.openSocket();
    net.closeSocket(s);
    EXPECT_DEATH(net.queueTx(s, 100), "bad socket");
    EXPECT_DEATH(net.deliverRx(s, 100), "bad socket");
    EXPECT_DEATH(net.takeRx(s, 100), "bad socket");
}

TEST(NetStack, CloseDropsRx)
{
    NetStack net(area, 4);
    std::uint32_t s = net.openSocket();
    net.deliverRx(s, 500);
    net.closeSocket(s);
    std::uint32_t again = net.openSocket();
    EXPECT_EQ(again, s);
    EXPECT_EQ(net.rxAvailable(again), 0u);
}

TEST(NetStack, TooSmallAreaDies)
{
    Region tiny{0xE0000000ULL, 8 * 1024};
    EXPECT_DEATH(NetStack(tiny, 16), "too small");
}

} // namespace
} // namespace osp
