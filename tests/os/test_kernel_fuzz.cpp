/** @file Robustness fuzzing: random (valid) service sequences must
 *  never panic the kernel, and plans must stay bounded and
 *  mode-invariant. */

#include <gtest/gtest.h>

#include <vector>

#include "os/kernel.hh"
#include "sim/codegen.hh"
#include "util/random.hh"

namespace osp
{
namespace
{

class KernelFuzz : public ::testing::TestWithParam<int>
{
};

TEST_P(KernelFuzz, RandomServiceSequencesSurvive)
{
    KernelParams params;
    params.seed = GetParam();
    params.pageCachePages = 32;
    params.vfs.numDirs = 4;
    params.timerPeriod = 0;
    SyntheticKernel kernel(params);
    Pcg32 rng(GetParam(), 0xF0FF);

    std::vector<std::uint64_t> file_fds;
    std::vector<std::uint64_t> sock_fds;
    InstCount now = 0;

    for (int step = 0; step < 3000; ++step) {
        CodeGenerator gen(1, 1000 + step);
        int action = rng.range(10);
        if (action == 0 || file_fds.empty()) {
            std::uint32_t file =
                rng.range(kernel.vfs().numFiles());
            auto fd = kernel.invoke(ServiceType::SysOpen,
                                    {file, 0, 0}, now, &gen);
            file_fds.push_back(fd.value);
        } else if (action == 1 && sock_fds.size() < 8) {
            auto fd = kernel.invoke(ServiceType::SysSocketcall,
                                    {0, 0, 0}, now, &gen);
            sock_fds.push_back(fd.value);
        } else if (action == 2 && file_fds.size() > 1) {
            kernel.invoke(ServiceType::SysClose,
                          {file_fds.back(), 0, 0}, now, &gen);
            file_fds.pop_back();
        } else if (action <= 5) {
            std::uint64_t fd = file_fds[rng.range(
                static_cast<std::uint32_t>(file_fds.size()))];
            kernel.invoke(
                ServiceType::SysRead,
                {fd, 1 + rng.range(32768), 0x20000000ULL}, now,
                &gen);
        } else if (action == 6 && !sock_fds.empty()) {
            std::uint64_t fd = sock_fds[rng.range(
                static_cast<std::uint32_t>(sock_fds.size()))];
            kernel.invoke(
                ServiceType::SysWrite,
                {fd, 1 + rng.range(65536), 0x20000000ULL}, now,
                &gen);
        } else if (action == 7) {
            kernel.invoke(
                ServiceType::SysStat64,
                {rng.range(kernel.vfs().numFiles()), 0x30000000ULL,
                 0},
                now, &gen);
        } else if (action == 8) {
            kernel.invoke(ServiceType::SysGettimeofday, {}, now,
                          &gen);
        } else {
            kernel.invoke(ServiceType::IntTimer, {}, now, &gen);
        }

        // Drain the plan; every invocation stays bounded.
        InstCount insts = 0;
        while (!gen.done()) {
            gen.next();
            ++insts;
        }
        EXPECT_LT(insts, 200000u);
        now += insts + 50;

        // Deliver whatever interrupts came due.
        while (auto irq = kernel.pendingInterrupt(now)) {
            CodeGenerator igen(1, 500000 + step);
            kernel.invoke(irq->type, irq->args, now, &igen);
            while (!igen.done()) {
                igen.next();
                ++now;
            }
        }
    }
}

TEST_P(KernelFuzz, PlansAreSeedDeterministic)
{
    auto trace = [&](std::uint64_t seed) {
        KernelParams params;
        params.seed = seed;
        params.vfs.numDirs = 3;
        params.timerPeriod = 0;
        SyntheticKernel kernel(params);
        std::vector<InstCount> counts;
        auto fd = kernel.invoke(ServiceType::SysOpen, {0, 0, 0}, 0,
                                nullptr);
        for (int i = 0; i < 50; ++i) {
            CodeGenerator gen(7, 100 + i);
            kernel.invoke(ServiceType::SysRead,
                          {fd.value, 4096, 0x20000000ULL}, 0,
                          &gen);
            counts.push_back(gen.pendingOps());
        }
        return counts;
    };
    std::uint64_t seed =
        static_cast<std::uint64_t>(GetParam()) + 11;
    EXPECT_EQ(trace(seed), trace(seed));
    // And different seeds jitter the plans.
    EXPECT_NE(trace(seed), trace(seed + 1));
}

INSTANTIATE_TEST_SUITE_P(Seeds, KernelFuzz,
                         ::testing::Range(1, 6));

} // namespace
} // namespace osp
