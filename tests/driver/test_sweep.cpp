/** @file Tests for the parallel sweep runner: expansion, seed
 *  derivation, thread-count determinism, equivalence with
 *  standalone runs, and the JSON results document. */

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <sstream>
#include <stdexcept>
#include <thread>

#include "core/accelerator.hh"
#include "driver/experiments.hh"
#include "driver/sweep.hh"
#include "workload/registry.hh"

namespace osp
{
namespace
{

/** Two workloads x two re-learning strategies, tiny work volume:
 *  large enough to exercise prediction, small enough for CI. */
SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.name = "tiny";
    spec.workloads = {"ab-rand", "du"};
    spec.modes = {RunMode::Full, RunMode::Accelerated};
    spec.predictors = {
        {"statistical",
         experimentPredictor(RelearnStrategy::Statistical)},
        {"eager", experimentPredictor(RelearnStrategy::Eager)},
    };
    spec.scale = 0.2;
    return spec;
}

TEST(CellSeed, IndexZeroIsBaseSeed)
{
    // Single-seed sweeps must replay the documented seed-42 bench
    // results exactly.
    EXPECT_EQ(cellSeed(42, 0), 42u);
    EXPECT_EQ(cellSeed(7, 0), 7u);
}

TEST(CellSeed, FurtherIndicesAreDistinct)
{
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 100; ++i)
        seeds.insert(cellSeed(42, i));
    EXPECT_EQ(seeds.size(), 100u);
}

TEST(ExpandSweep, BaselinesEmittedOncePerWorkload)
{
    // 2 workloads x (1 full + 2 accelerated variants): baselines
    // must not be duplicated per predictor.
    auto cells = expandSweep(tinySpec());
    ASSERT_EQ(cells.size(), 6u);
    int full = 0, accel = 0;
    for (const auto &cell : cells) {
        if (cell.mode == RunMode::Full)
            ++full;
        else
            ++accel;
        EXPECT_EQ(cell.index, &cell - cells.data());
        EXPECT_EQ(cell.seed, 42u);
    }
    EXPECT_EQ(full, 2);
    EXPECT_EQ(accel, 4);
}

TEST(ExpandSweep, ComparableCellsShareSeeds)
{
    SweepSpec spec = tinySpec();
    spec.numSeeds = 3;
    auto cells = expandSweep(spec);
    EXPECT_EQ(cells.size(), 18u);
    // Each (workload, seed index) group: one baseline + two
    // accelerated cells, all with the same machine seed.
    for (const auto &a : cells) {
        for (const auto &b : cells) {
            if (a.workload == b.workload &&
                a.seedIndex == b.seedIndex) {
                EXPECT_EQ(a.seed, b.seed);
            }
        }
    }
}

TEST(ExpandSweep, RejectsInvalidSpecs)
{
    SweepSpec spec = tinySpec();
    spec.workloads = {"no-such-workload"};
    EXPECT_DEATH(expandSweep(spec), "");

    spec = tinySpec();
    spec.predictors.clear();
    EXPECT_DEATH(expandSweep(spec), "");

    spec = tinySpec();
    spec.numSeeds = 0;
    EXPECT_DEATH(expandSweep(spec), "");
}

TEST(RunSweep, ThreadCountInvariance)
{
    // The tentpole contract: the canonical JSON document is
    // byte-identical for 1 worker and 8 workers at the same seed.
    SweepSpec spec = tinySpec();

    RunnerOptions serial;
    serial.threads = 1;
    RunnerOptions parallel;
    parallel.threads = 8;

    JsonOptions canonical;
    canonical.includeTiming = false;

    std::ostringstream os1, os8;
    writeResultsJson(os1, runSweep(spec, serial), canonical);
    writeResultsJson(os8, runSweep(spec, parallel), canonical);
    EXPECT_EQ(os1.str(), os8.str());
}

TEST(RunSweep, AutoThreadCountIsRecordedResolved)
{
    // threads = 0 means "pick hardware_concurrency()"; the timing
    // section must record what was actually used, not the 0.
    SweepSpec spec = tinySpec();
    spec.workloads = {"du"};

    RunnerOptions opts;
    opts.threads = 0;
    opts.cellRunner = [](const SweepSpec &, const SweepCell &cell,
                         std::size_t) {
        CellResult r;
        r.cell = cell;
        return r;
    };
    SweepResult result = runSweep(spec, opts);

    unsigned hw = std::thread::hardware_concurrency();
    EXPECT_GE(result.threads, 1u);
    if (hw != 0) {
        EXPECT_EQ(result.threads, hw);
    }

    JsonValue doc = sweepToJson(result);
    EXPECT_EQ(doc["timing"]["threads"].asUint(), result.threads);
}

TEST(RunSweep, CellsMatchStandaloneRuns)
{
    SweepSpec spec = tinySpec();
    RunnerOptions opts;
    opts.threads = 4;
    SweepResult sweep = runSweep(spec, opts);
    ASSERT_EQ(sweep.cells.size(), 6u);

    for (const auto &res : sweep.cells) {
        // runCell() is the exact per-worker construction.
        CellResult solo = runCell(spec, res.cell);
        EXPECT_EQ(res.totals.totalCycles(),
                  solo.totals.totalCycles());
        EXPECT_EQ(res.totals.totalInsts(), solo.totals.totalInsts());
        EXPECT_EQ(res.hasStats, solo.hasStats);
        EXPECT_EQ(res.stats.predictedRuns, solo.stats.predictedRuns);
        EXPECT_EQ(res.stats.relearnEvents, solo.stats.relearnEvents);
    }

    // And runCell() itself matches a hand-built Machine+Accelerator.
    const CellResult *accel_cell =
        sweep.find("du", RunMode::Accelerated, 1);
    ASSERT_NE(accel_cell, nullptr);
    MachineConfig cfg = spec.baseConfig;
    cfg.seed = 42;
    cfg.hier.l2.sizeBytes = accel_cell->cell.l2Bytes;
    cfg.pollutionPolicy = PollutionPolicy::Footprint;
    auto machine = makeMachine("du", cfg, spec.scale);
    Accelerator accel(spec.predictors[1].params);
    machine->setController(&accel);
    const RunTotals &manual = machine->run();
    EXPECT_EQ(accel_cell->totals.totalCycles(),
              manual.totalCycles());
    EXPECT_EQ(accel_cell->totals.coverage(), manual.coverage());
}

TEST(RunSweep, AggregatorDerivesErrorsAndSummary)
{
    SweepSpec spec = tinySpec();
    SweepResult sweep = runSweep(spec);

    for (const auto &res : sweep.cells) {
        if (res.cell.mode == RunMode::Full) {
            // Baselines are never compared against themselves.
            EXPECT_FALSE(res.hasBaseline);
            EXPECT_DOUBLE_EQ(res.cycleError, 0.0);
        } else {
            EXPECT_TRUE(res.hasBaseline);
            const CellResult *base = sweep.find(
                res.cell.workload, RunMode::Full);
            ASSERT_NE(base, nullptr);
            EXPECT_DOUBLE_EQ(
                res.cycleError,
                absError(static_cast<double>(
                             res.totals.totalCycles()),
                         static_cast<double>(
                             base->totals.totalCycles())));
            EXPECT_GT(res.estSpeedupR133, 1.0);
        }
    }

    ASSERT_EQ(sweep.summary.size(), 2u);
    EXPECT_EQ(sweep.summary[0].label, "statistical");
    EXPECT_EQ(sweep.summary[1].label, "eager");
    for (const auto &variant : sweep.summary) {
        EXPECT_EQ(variant.cells, 2u);
        EXPECT_GE(variant.worstCycleError, variant.meanCycleError);
        EXPECT_GT(variant.meanCoverage, 0.0);
    }
}

TEST(RunSweep, FindLooksUpByCoordinates)
{
    SweepSpec spec = tinySpec();
    SweepResult sweep = runSweep(spec);

    const CellResult *cell =
        sweep.find("ab-rand", RunMode::Accelerated, 1);
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell->cell.workload, "ab-rand");
    EXPECT_EQ(cell->cell.predictorIndex, 1u);

    EXPECT_EQ(sweep.find("iperf", RunMode::Full), nullptr);
    EXPECT_EQ(sweep.find("ab-rand", RunMode::AppOnly), nullptr);
    EXPECT_EQ(sweep.find("ab-rand", RunMode::Accelerated, 2),
              nullptr);
}

TEST(SweepJson, DocumentShapeAndRoundTrip)
{
    SweepSpec spec = tinySpec();
    SweepResult sweep = runSweep(spec);

    JsonOptions canonical;
    canonical.includeTiming = false;
    std::ostringstream os;
    writeResultsJson(os, sweep, canonical);

    bool ok = false;
    std::string error;
    JsonValue doc = JsonValue::parse(os.str(), &ok, &error);
    ASSERT_TRUE(ok) << error;

    EXPECT_EQ(doc["schema"].asString(), "ospredict-sweep-v1");
    EXPECT_EQ(doc["sweep"]["name"].asString(), "tiny");
    EXPECT_EQ(doc["sweep"]["base_seed"].asUint(), 42u);
    ASSERT_EQ(doc["cells"].size(), sweep.cells.size());
    EXPECT_EQ(doc.find("timing"), nullptr);

    for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
        const JsonValue &cell = doc["cells"].at(i);
        const CellResult &res = sweep.cells[i];
        EXPECT_EQ(cell["config"]["index"].asUint(), i);
        EXPECT_EQ(cell["config"]["workload"].asString(),
                  res.cell.workload);
        EXPECT_EQ(cell.find("wall_s"), nullptr);
        const JsonValue &totals = cell["metrics"]["totals"];
        EXPECT_EQ(totals["total_cycles"].asUint(),
                  res.totals.totalCycles());
        EXPECT_DOUBLE_EQ(totals["coverage"].asDouble(),
                         res.totals.coverage());
        if (res.hasStats) {
            EXPECT_EQ(cell["metrics"]["predictor_stats"]
                          ["predicted_runs"]
                              .asUint(),
                      res.stats.predictedRuns);
        }
    }

    ASSERT_EQ(doc["summary"]["predictors"].size(), 2u);
    EXPECT_EQ(doc["summary"]["predictors"].at(0)["predictor"]
                  .asString(),
              "statistical");

    // With timing enabled the volatile fields appear.
    std::ostringstream timed;
    writeResultsJson(timed, sweep, JsonOptions{});
    JsonValue full = JsonValue::parse(timed.str(), &ok, &error);
    ASSERT_TRUE(ok) << error;
    EXPECT_NE(full.find("timing"), nullptr);
    EXPECT_NE(full["cells"].at(0).find("wall_s"), nullptr);
}

TEST(RunSweep, TelemetryPreservesThreadCountInvariance)
{
    // The tentpole extension of the determinism contract: with the
    // telemetry section populated AND event tracing enabled, the
    // canonical document must still be byte-identical across thread
    // counts.
    SweepSpec spec = tinySpec();

    RunnerOptions serial;
    serial.threads = 1;
    serial.traceCapacity = 512;
    RunnerOptions parallel;
    parallel.threads = 8;
    parallel.traceCapacity = 512;

    JsonOptions canonical;
    canonical.includeTiming = false;

    SweepResult r1 = runSweep(spec, serial);
    SweepResult r8 = runSweep(spec, parallel);

    std::ostringstream os1, os8;
    writeResultsJson(os1, r1, canonical);
    writeResultsJson(os8, r8, canonical);
    EXPECT_EQ(os1.str(), os8.str());

    // The chrome trace dump is part of the same contract.
    std::ostringstream t1, t8;
    writeChromeTrace(t1, r1);
    writeChromeTrace(t8, r8);
    EXPECT_EQ(t1.str(), t8.str());
    EXPECT_NE(t1.str().find("traceEvents"), std::string::npos);
}

TEST(RunSweep, CellsCarryPopulatedTelemetry)
{
    SweepSpec spec = tinySpec();
    RunnerOptions opts;
    opts.threads = 4;
    opts.traceCapacity = 256;
    SweepResult sweep = runSweep(spec, opts);

    for (const CellResult &r : sweep.cells) {
        ASSERT_FALSE(r.failed);
        // Every cell publishes machine + cache instruments.
        EXPECT_FALSE(r.telemetry.empty());
        EXPECT_GT(r.telemetry.counterValue("mem.l1d",
                                           "accesses_app"),
                  0u);
        EXPECT_EQ(r.traceInfo.capacity, 256u);
        if (r.cell.mode == RunMode::Accelerated) {
            // Predictors decide every post-warmup invocation.
            std::uint64_t decided = 0;
            for (const auto &c : r.telemetry.counters) {
                if (c.name == "decide_detail" ||
                    c.name == "decide_emulate")
                    decided += c.value;
            }
            EXPECT_GT(decided, 0u);
            EXPECT_GT(r.traceInfo.recorded, 0u);
            EXPECT_EQ(r.trace.size(),
                      r.traceInfo.recorded - r.traceInfo.dropped);
            // Telemetry mirrors the existing stats plumbing.
            EXPECT_EQ(r.telemetry.counterValue(
                          "machine", "services_predicted"),
                      r.totals.osPredicted);
            EXPECT_EQ(r.telemetry.counterValue(
                          "machine", "services_detailed"),
                      r.totals.osSimulated);
        }
    }
}

TEST(RunSweep, AttachedTelemetryChangesNoOutcome)
{
    // Observational purity: a traced cell and a bare cell simulate
    // the exact same cycles.
    SweepSpec spec = tinySpec();
    auto cells = expandSweep(spec);
    for (const SweepCell &cell : cells) {
        CellResult bare = runCell(spec, cell, 0);
        CellResult traced = runCell(spec, cell, 1024);
        EXPECT_EQ(bare.totals.totalCycles(),
                  traced.totals.totalCycles());
        EXPECT_EQ(bare.totals.totalInsts(),
                  traced.totals.totalInsts());
        EXPECT_EQ(bare.stats.predictedRuns,
                  traced.stats.predictedRuns);
    }
}

TEST(RunSweep, WorkerExceptionsAreCapturedPerCell)
{
    SweepSpec spec = tinySpec();
    RunnerOptions opts;
    opts.threads = 4;
    opts.cellRunner = [](const SweepSpec &s, const SweepCell &c,
                         std::size_t trace_capacity) {
        if (c.workload == "du" && c.mode == RunMode::Accelerated)
            throw std::runtime_error("synthetic cell failure");
        return runCell(s, c, trace_capacity);
    };
    SweepResult sweep = runSweep(spec, opts);
    ASSERT_EQ(sweep.cells.size(), 6u);

    std::size_t failed = 0;
    for (const CellResult &r : sweep.cells) {
        if (r.cell.workload == "du" &&
            r.cell.mode == RunMode::Accelerated) {
            EXPECT_TRUE(r.failed);
            EXPECT_EQ(r.error, "synthetic cell failure");
            // The slot still identifies its cell.
            EXPECT_EQ(r.cell.index, &r - sweep.cells.data());
            ++failed;
        } else {
            EXPECT_FALSE(r.failed);
            EXPECT_GT(r.totals.totalCycles(), 0u);
        }
    }
    EXPECT_EQ(failed, 2u);

    // Failed accelerated cells drop out of the variant rollup...
    for (const VariantSummary &s : sweep.summary)
        EXPECT_EQ(s.cells, 1u);

    // ...and the document reports them.
    std::ostringstream os;
    JsonOptions canonical;
    canonical.includeTiming = false;
    writeResultsJson(os, sweep, canonical);
    bool ok = false;
    std::string error;
    JsonValue doc = JsonValue::parse(os.str(), &ok, &error);
    ASSERT_TRUE(ok) << error;
    ASSERT_EQ(doc["summary"]["failed_cells"].size(), 2u);
    bool found_error = false;
    for (std::size_t i = 0; i < doc["cells"].size(); ++i) {
        const JsonValue &cell = doc["cells"].at(i);
        if (cell.find("error")) {
            EXPECT_EQ(cell["error"].asString(),
                      "synthetic cell failure");
            EXPECT_EQ(cell.find("metrics"), nullptr);
            found_error = true;
        }
    }
    EXPECT_TRUE(found_error);
}

TEST(RunSweep, FailedBaselineLeavesDependentsWithoutError)
{
    // A failed Full baseline must not feed garbage into cycleError.
    SweepSpec spec = tinySpec();
    RunnerOptions opts;
    opts.cellRunner = [](const SweepSpec &s, const SweepCell &c,
                         std::size_t trace_capacity) {
        if (c.mode == RunMode::Full)
            throw std::runtime_error("baseline down");
        return runCell(s, c, trace_capacity);
    };
    SweepResult sweep = runSweep(spec, opts);
    for (const CellResult &r : sweep.cells) {
        if (r.cell.mode == RunMode::Accelerated) {
            EXPECT_FALSE(r.failed);
            EXPECT_FALSE(r.hasBaseline);
        }
    }
}

TEST(SweepJson, TelemetrySectionShape)
{
    SweepSpec spec = tinySpec();
    RunnerOptions opts;
    opts.traceCapacity = 128;
    SweepResult sweep = runSweep(spec, opts);

    std::ostringstream os;
    JsonOptions canonical;
    canonical.includeTiming = false;
    writeResultsJson(os, sweep, canonical);
    bool ok = false;
    std::string error;
    JsonValue doc = JsonValue::parse(os.str(), &ok, &error);
    ASSERT_TRUE(ok) << error;

    // Top-level rollup.
    const JsonValue *telemetry = doc.find("telemetry");
    ASSERT_NE(telemetry, nullptr);
    EXPECT_EQ((*telemetry)["schema"].asString(),
              "ospredict-telemetry-v1");
    EXPECT_EQ((*telemetry)["instrumented_cells"].asUint(),
              sweep.cells.size());
    std::uint64_t sum = 0;
    for (const CellResult &r : sweep.cells)
        sum += r.telemetry.counterValue("machine",
                                        "services_predicted");
    EXPECT_EQ((*telemetry)["counters"]["machine.services_predicted"]
                  .asUint(),
              sum);

    // Per-cell section.
    for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
        const JsonValue &cell = doc["cells"].at(i);
        const JsonValue *t = cell.find("telemetry");
        ASSERT_NE(t, nullptr);
        EXPECT_EQ((*t)["trace"]["capacity"].asUint(), 128u);
        EXPECT_EQ((*t)["counters"]["mem.l1d.accesses_app"].asUint(),
                  sweep.cells[i].telemetry.counterValue(
                      "mem.l1d", "accesses_app"));
    }
}

/** fig08's ab-seq column at smoke scale: the cheapest cell pair
 *  that reaches the prediction phase with audit samples AND has a
 *  full-detail oracle baseline to cross-check against. */
SweepSpec
accuracySpec()
{
    SweepSpec spec = makeNamedSweep("fig08", 0.05, true);
    spec.workloads = {"ab-seq"};
    spec.predictors.resize(1);  // statistical only
    return spec;
}

TEST(SweepAccuracy, SectionShapeAndLedgerConsistency)
{
    SweepSpec spec = accuracySpec();
    SweepResult sweep = runSweep(spec);

    std::ostringstream os;
    JsonOptions canonical;
    canonical.includeTiming = false;
    writeResultsJson(os, sweep, canonical);
    bool ok = false;
    std::string error;
    JsonValue doc = JsonValue::parse(os.str(), &ok, &error);
    ASSERT_TRUE(ok) << error;

    const JsonValue *accuracy = doc.find("accuracy");
    ASSERT_NE(accuracy, nullptr);
    EXPECT_EQ((*accuracy)["schema"].asString(),
              "ospredict-accuracy-v1");

    // Exactly the accelerated ab-seq cell (non-vacuously: it must
    // have reached prediction and taken audit samples).
    ASSERT_EQ((*accuracy)["cells"].size(), 1u);
    const JsonValue &cell = (*accuracy)["cells"].at(0);
    EXPECT_EQ(cell["workload"].asString(), "ab-seq");
    const JsonValue &ledger = cell["ledger"];
    EXPECT_GT(ledger["predictions"].asUint(), 0u);
    ASSERT_GE(ledger["audits"].asUint(), 2u);
    EXPECT_GT(ledger["total_cycles"].asUint(),
              ledger["predicted_cycles"].asUint());
    ASSERT_NE(ledger.find("audit_err"), nullptr);
    EXPECT_LE(ledger["audit_err"]["n"].asUint(),
              ledger["audits"].asUint());
    EXPECT_GT(ledger["clusters"].size(), 0u);

    // The serialized ledger mirrors the in-memory snapshot.
    const CellResult *accel =
        sweep.find("ab-seq", RunMode::Accelerated);
    ASSERT_NE(accel, nullptr);
    obs::AccuracyRollup roll = rollupAccuracy(accel->accuracy);
    EXPECT_EQ(ledger["predictions"].asUint(), roll.predictions);
    EXPECT_EQ(ledger["audits"].asUint(), roll.audits);
    ASSERT_EQ(ledger["clusters"].size(),
              accel->accuracy.entries.size());

    // Per-service rollup sums match the per-cluster entries.
    std::uint64_t svc_audits = 0;
    const JsonValue &services = (*accuracy)["services"];
    ASSERT_GT(services.size(), 0u);
    for (std::size_t i = 0; i < services.size(); ++i)
        svc_audits += services.at(i)["audits"].asUint();
    EXPECT_EQ(svc_audits, roll.audits);
}

TEST(SweepAccuracy, OracleErrorFallsWithinAuditEstimateCi)
{
    // The acceptance cross-check at CI scale: the audit-estimated
    // end-to-end cycle error must agree with the offline oracle
    // (full-detail baseline) within its own reported 95% CI.
    SweepSpec spec = accuracySpec();
    SweepResult sweep = runSweep(spec);

    const CellResult *accel =
        sweep.find("ab-seq", RunMode::Accelerated);
    ASSERT_NE(accel, nullptr);
    ASSERT_TRUE(accel->hasBaseline);
    obs::AccuracyRollup roll = rollupAccuracy(accel->accuracy);
    ASSERT_TRUE(roll.hasEstimate);
    ASSERT_TRUE(roll.hasCi);
    EXPECT_LE(std::fabs(accel->signedCycleError -
                        roll.estRelTotalErr),
              roll.estCi95);
    // signedCycleError's magnitude is the reported cycleError.
    EXPECT_DOUBLE_EQ(std::fabs(accel->signedCycleError),
                     accel->cycleError);

    // And the document agrees with the in-memory verdict.
    std::ostringstream os;
    JsonOptions canonical;
    canonical.includeTiming = false;
    writeResultsJson(os, sweep, canonical);
    bool ok = false;
    std::string error;
    JsonValue doc = JsonValue::parse(os.str(), &ok, &error);
    ASSERT_TRUE(ok) << error;
    const JsonValue &oracle =
        doc["accuracy"]["cells"].at(0)["oracle"];
    EXPECT_TRUE(oracle["within_ci"].asBool());
}

TEST(SweepAccuracy, ReportRendersCellAndBudgetTables)
{
    SweepSpec spec = accuracySpec();
    SweepResult sweep = runSweep(spec);

    std::ostringstream os;
    writeAccuracyReport(os, sweep);
    const std::string report = os.str();
    EXPECT_NE(report.find("accuracy report"), std::string::npos);
    EXPECT_NE(report.find("error budget"), std::string::npos);
    EXPECT_NE(report.find("ab-seq"), std::string::npos);
    EXPECT_NE(report.find("oracle_err"), std::string::npos);

    // A sweep with no accelerated predictions reports that fact
    // instead of emitting empty tables.
    SweepSpec bare = accuracySpec();
    bare.modes = {RunMode::Full};
    SweepResult none = runSweep(bare);
    std::ostringstream empty;
    writeAccuracyReport(empty, none);
    EXPECT_NE(empty.str().find("no accelerated cell"),
              std::string::npos);
}

TEST(NamedSweeps, FactoriesMatchTheBenchExperiments)
{
    EXPECT_EQ(namedSweeps().size(), 5u);
    EXPECT_EQ(expandSweep(fig08Sweep()).size(), 15u);
    EXPECT_EQ(expandSweep(fig10Sweep()).size(), 30u);
    EXPECT_EQ(expandSweep(fig11Sweep()).size(), 30u);
    EXPECT_EQ(expandSweep(table2Sweep()).size(), 10u);
    EXPECT_EQ(expandSweep(fig13Sweep()).size(), 20u);

    // Smoke multiplier shrinks work volume, not cell count.
    SweepSpec smoke = makeNamedSweep("fig08", 0.05, true);
    EXPECT_TRUE(smoke.smoke);
    EXPECT_LT(smoke.scale, fig08Sweep().scale);
    EXPECT_EQ(expandSweep(smoke).size(), 15u);
}

} // namespace
} // namespace osp
