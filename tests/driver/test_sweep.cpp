/** @file Tests for the parallel sweep runner: expansion, seed
 *  derivation, thread-count determinism, equivalence with
 *  standalone runs, and the JSON results document. */

#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "core/accelerator.hh"
#include "driver/experiments.hh"
#include "driver/sweep.hh"
#include "workload/registry.hh"

namespace osp
{
namespace
{

/** Two workloads x two re-learning strategies, tiny work volume:
 *  large enough to exercise prediction, small enough for CI. */
SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.name = "tiny";
    spec.workloads = {"ab-rand", "du"};
    spec.modes = {RunMode::Full, RunMode::Accelerated};
    spec.predictors = {
        {"statistical",
         experimentPredictor(RelearnStrategy::Statistical)},
        {"eager", experimentPredictor(RelearnStrategy::Eager)},
    };
    spec.scale = 0.2;
    return spec;
}

TEST(CellSeed, IndexZeroIsBaseSeed)
{
    // Single-seed sweeps must replay the documented seed-42 bench
    // results exactly.
    EXPECT_EQ(cellSeed(42, 0), 42u);
    EXPECT_EQ(cellSeed(7, 0), 7u);
}

TEST(CellSeed, FurtherIndicesAreDistinct)
{
    std::set<std::uint64_t> seeds;
    for (std::uint64_t i = 0; i < 100; ++i)
        seeds.insert(cellSeed(42, i));
    EXPECT_EQ(seeds.size(), 100u);
}

TEST(ExpandSweep, BaselinesEmittedOncePerWorkload)
{
    // 2 workloads x (1 full + 2 accelerated variants): baselines
    // must not be duplicated per predictor.
    auto cells = expandSweep(tinySpec());
    ASSERT_EQ(cells.size(), 6u);
    int full = 0, accel = 0;
    for (const auto &cell : cells) {
        if (cell.mode == RunMode::Full)
            ++full;
        else
            ++accel;
        EXPECT_EQ(cell.index, &cell - cells.data());
        EXPECT_EQ(cell.seed, 42u);
    }
    EXPECT_EQ(full, 2);
    EXPECT_EQ(accel, 4);
}

TEST(ExpandSweep, ComparableCellsShareSeeds)
{
    SweepSpec spec = tinySpec();
    spec.numSeeds = 3;
    auto cells = expandSweep(spec);
    EXPECT_EQ(cells.size(), 18u);
    // Each (workload, seed index) group: one baseline + two
    // accelerated cells, all with the same machine seed.
    for (const auto &a : cells) {
        for (const auto &b : cells) {
            if (a.workload == b.workload &&
                a.seedIndex == b.seedIndex) {
                EXPECT_EQ(a.seed, b.seed);
            }
        }
    }
}

TEST(ExpandSweep, RejectsInvalidSpecs)
{
    SweepSpec spec = tinySpec();
    spec.workloads = {"no-such-workload"};
    EXPECT_DEATH(expandSweep(spec), "");

    spec = tinySpec();
    spec.predictors.clear();
    EXPECT_DEATH(expandSweep(spec), "");

    spec = tinySpec();
    spec.numSeeds = 0;
    EXPECT_DEATH(expandSweep(spec), "");
}

TEST(RunSweep, ThreadCountInvariance)
{
    // The tentpole contract: the canonical JSON document is
    // byte-identical for 1 worker and 8 workers at the same seed.
    SweepSpec spec = tinySpec();

    RunnerOptions serial;
    serial.threads = 1;
    RunnerOptions parallel;
    parallel.threads = 8;

    JsonOptions canonical;
    canonical.includeTiming = false;

    std::ostringstream os1, os8;
    writeResultsJson(os1, runSweep(spec, serial), canonical);
    writeResultsJson(os8, runSweep(spec, parallel), canonical);
    EXPECT_EQ(os1.str(), os8.str());
}

TEST(RunSweep, CellsMatchStandaloneRuns)
{
    SweepSpec spec = tinySpec();
    RunnerOptions opts;
    opts.threads = 4;
    SweepResult sweep = runSweep(spec, opts);
    ASSERT_EQ(sweep.cells.size(), 6u);

    for (const auto &res : sweep.cells) {
        // runCell() is the exact per-worker construction.
        CellResult solo = runCell(spec, res.cell);
        EXPECT_EQ(res.totals.totalCycles(),
                  solo.totals.totalCycles());
        EXPECT_EQ(res.totals.totalInsts(), solo.totals.totalInsts());
        EXPECT_EQ(res.hasStats, solo.hasStats);
        EXPECT_EQ(res.stats.predictedRuns, solo.stats.predictedRuns);
        EXPECT_EQ(res.stats.relearnEvents, solo.stats.relearnEvents);
    }

    // And runCell() itself matches a hand-built Machine+Accelerator.
    const CellResult *accel_cell =
        sweep.find("du", RunMode::Accelerated, 1);
    ASSERT_NE(accel_cell, nullptr);
    MachineConfig cfg = spec.baseConfig;
    cfg.seed = 42;
    cfg.hier.l2.sizeBytes = accel_cell->cell.l2Bytes;
    cfg.pollutionPolicy = PollutionPolicy::Footprint;
    auto machine = makeMachine("du", cfg, spec.scale);
    Accelerator accel(spec.predictors[1].params);
    machine->setController(&accel);
    const RunTotals &manual = machine->run();
    EXPECT_EQ(accel_cell->totals.totalCycles(),
              manual.totalCycles());
    EXPECT_EQ(accel_cell->totals.coverage(), manual.coverage());
}

TEST(RunSweep, AggregatorDerivesErrorsAndSummary)
{
    SweepSpec spec = tinySpec();
    SweepResult sweep = runSweep(spec);

    for (const auto &res : sweep.cells) {
        if (res.cell.mode == RunMode::Full) {
            // Baselines are never compared against themselves.
            EXPECT_FALSE(res.hasBaseline);
            EXPECT_DOUBLE_EQ(res.cycleError, 0.0);
        } else {
            EXPECT_TRUE(res.hasBaseline);
            const CellResult *base = sweep.find(
                res.cell.workload, RunMode::Full);
            ASSERT_NE(base, nullptr);
            EXPECT_DOUBLE_EQ(
                res.cycleError,
                absError(static_cast<double>(
                             res.totals.totalCycles()),
                         static_cast<double>(
                             base->totals.totalCycles())));
            EXPECT_GT(res.estSpeedupR133, 1.0);
        }
    }

    ASSERT_EQ(sweep.summary.size(), 2u);
    EXPECT_EQ(sweep.summary[0].label, "statistical");
    EXPECT_EQ(sweep.summary[1].label, "eager");
    for (const auto &variant : sweep.summary) {
        EXPECT_EQ(variant.cells, 2u);
        EXPECT_GE(variant.worstCycleError, variant.meanCycleError);
        EXPECT_GT(variant.meanCoverage, 0.0);
    }
}

TEST(RunSweep, FindLooksUpByCoordinates)
{
    SweepSpec spec = tinySpec();
    SweepResult sweep = runSweep(spec);

    const CellResult *cell =
        sweep.find("ab-rand", RunMode::Accelerated, 1);
    ASSERT_NE(cell, nullptr);
    EXPECT_EQ(cell->cell.workload, "ab-rand");
    EXPECT_EQ(cell->cell.predictorIndex, 1u);

    EXPECT_EQ(sweep.find("iperf", RunMode::Full), nullptr);
    EXPECT_EQ(sweep.find("ab-rand", RunMode::AppOnly), nullptr);
    EXPECT_EQ(sweep.find("ab-rand", RunMode::Accelerated, 2),
              nullptr);
}

TEST(SweepJson, DocumentShapeAndRoundTrip)
{
    SweepSpec spec = tinySpec();
    SweepResult sweep = runSweep(spec);

    JsonOptions canonical;
    canonical.includeTiming = false;
    std::ostringstream os;
    writeResultsJson(os, sweep, canonical);

    bool ok = false;
    std::string error;
    JsonValue doc = JsonValue::parse(os.str(), &ok, &error);
    ASSERT_TRUE(ok) << error;

    EXPECT_EQ(doc["schema"].asString(), "ospredict-sweep-v1");
    EXPECT_EQ(doc["sweep"]["name"].asString(), "tiny");
    EXPECT_EQ(doc["sweep"]["base_seed"].asUint(), 42u);
    ASSERT_EQ(doc["cells"].size(), sweep.cells.size());
    EXPECT_EQ(doc.find("timing"), nullptr);

    for (std::size_t i = 0; i < sweep.cells.size(); ++i) {
        const JsonValue &cell = doc["cells"].at(i);
        const CellResult &res = sweep.cells[i];
        EXPECT_EQ(cell["config"]["index"].asUint(), i);
        EXPECT_EQ(cell["config"]["workload"].asString(),
                  res.cell.workload);
        EXPECT_EQ(cell.find("wall_s"), nullptr);
        const JsonValue &totals = cell["metrics"]["totals"];
        EXPECT_EQ(totals["total_cycles"].asUint(),
                  res.totals.totalCycles());
        EXPECT_DOUBLE_EQ(totals["coverage"].asDouble(),
                         res.totals.coverage());
        if (res.hasStats) {
            EXPECT_EQ(cell["metrics"]["predictor_stats"]
                          ["predicted_runs"]
                              .asUint(),
                      res.stats.predictedRuns);
        }
    }

    ASSERT_EQ(doc["summary"]["predictors"].size(), 2u);
    EXPECT_EQ(doc["summary"]["predictors"].at(0)["predictor"]
                  .asString(),
              "statistical");

    // With timing enabled the volatile fields appear.
    std::ostringstream timed;
    writeResultsJson(timed, sweep, JsonOptions{});
    JsonValue full = JsonValue::parse(timed.str(), &ok, &error);
    ASSERT_TRUE(ok) << error;
    EXPECT_NE(full.find("timing"), nullptr);
    EXPECT_NE(full["cells"].at(0).find("wall_s"), nullptr);
}

TEST(NamedSweeps, FactoriesMatchTheBenchExperiments)
{
    EXPECT_EQ(namedSweeps().size(), 4u);
    EXPECT_EQ(expandSweep(fig08Sweep()).size(), 15u);
    EXPECT_EQ(expandSweep(fig10Sweep()).size(), 30u);
    EXPECT_EQ(expandSweep(fig11Sweep()).size(), 30u);
    EXPECT_EQ(expandSweep(table2Sweep()).size(), 10u);

    // Smoke multiplier shrinks work volume, not cell count.
    SweepSpec smoke = makeNamedSweep("fig08", 0.05, true);
    EXPECT_TRUE(smoke.smoke);
    EXPECT_LT(smoke.scale, fig08Sweep().scale);
    EXPECT_EQ(expandSweep(smoke).size(), 15u);
}

} // namespace
} // namespace osp
