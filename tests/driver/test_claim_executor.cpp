/** @file Tests for the distributed claim-loop executor: worker-
 *  count byte-invariance of the assembled document, cross-worker
 *  retry of failed cells up to the policy limit (terminal failure
 *  only on exhaustion), stale-lease reclamation (free of retry
 *  charge, including from a corrupt heartbeat counter), the
 *  background lease refresher that keeps a slow cell's claim
 *  fresh, and the claim-aware assembly of exhausted failures.
 *  Concurrency scenarios run two shared-mode store handles in one
 *  process — flock(2) makes them contend exactly like two
 *  processes. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <filesystem>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "driver/cell_cache.hh"
#include "driver/cell_io.hh"
#include "driver/claim_executor.hh"
#include "driver/sweep.hh"
#include "store/claim_table.hh"
#include "store/page_store.hh"

namespace osp
{
namespace
{

constexpr const char *kFingerprint = "claimtestfp";

class ClaimExecutorTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("osp_claim_exec_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()) +
                  ".db"))
                    .string();
        removeFiles();
    }

    void TearDown() override { removeFiles(); }

    void
    removeFiles()
    {
        std::filesystem::remove(path_);
        std::filesystem::remove(path_ + ".lock");
        std::filesystem::remove(path_ + ".ref");
        std::filesystem::remove(path_ + ".ref.lock");
    }

    std::unique_ptr<store::PageStore>
    openShared()
    {
        store::StoreOptions o;
        o.shared = true;
        return store::PageStore::open(path_, o);
    }

    std::string path_;
};

/** A fast deterministic stand-in for runCell(): a pure function of
 *  the cell coordinates, so worker and reference runs produce the
 *  same bytes without paying for real simulation. */
CellResult
fakeCell(const SweepSpec &, const SweepCell &cell, std::size_t)
{
    CellResult r;
    r.cell = cell;
    r.totals.appInsts = 1000 + cell.seed % 257;
    r.totals.appCycles = 3000 + cell.seed % 1031;
    r.totals.osInsts = 100 + cell.l2Bytes % 89;
    r.totals.osSimCycles = 500 + cell.seedIndex * 7;
    r.totals.osInvocations = 4 + cell.index;
    r.totals.osSimulated = 4 + cell.index;
    return r;
}

/** Four cells: (Full + Accelerated) x 2 seeds of one workload. */
SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.name = "claim-tiny";
    spec.workloads = {"du"};
    spec.modes = {RunMode::Full, RunMode::Accelerated};
    spec.predictors = {{"default", PredictorParams{}}};
    spec.numSeeds = 2;
    spec.scale = 0.05;
    return spec;
}

/** Canonical (timing-free) results document bytes. */
std::string
canonicalJson(const SweepResult &result)
{
    JsonOptions jopts;
    jopts.includeTiming = false;
    std::ostringstream os;
    writeResultsJson(os, result, jopts);
    return os.str();
}

/** Reference document: a plain single-process runSweep recording
 *  into its own store (so the store section is present, as it will
 *  be in the assembled document). */
std::string
referenceJson(const SweepSpec &spec, const std::string &store_path,
              const RunnerOptions &base)
{
    auto store = store::PageStore::open(store_path);
    CellCache cache(*store, kFingerprint);
    RunnerOptions opts = base;
    opts.threads = 1;
    opts.cache = &cache;
    return canonicalJson(runSweep(spec, opts));
}

/** Assemble from the claim-covered store and return the canonical
 *  bytes (exclusive open: the fleet is done). */
std::string
assembleJson(const SweepSpec &spec, const std::string &store_path,
             const RunnerOptions &base)
{
    auto store = store::PageStore::open(store_path);
    CellCache cache(*store, kFingerprint);
    RunnerOptions opts = base;
    opts.threads = 1;
    opts.cache = &cache;
    opts.incremental = true;
    opts.claimAware = true;
    return canonicalJson(runSweep(spec, opts));
}

TEST_F(ClaimExecutorTest, SingleWorkerAssemblesColdRunBytes)
{
    SweepSpec spec = tinySpec();
    RunnerOptions base;
    base.cellRunner = fakeCell;

    std::atomic<int> executions{0};
    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        WorkerOptions wopts;
        wopts.owner = "solo";
        wopts.cellRunner = [&](const SweepSpec &s,
                               const SweepCell &c,
                               std::size_t tc) {
            ++executions;
            return fakeCell(s, c, tc);
        };
        WorkerStats stats = runSweepWorker(spec, cache, wopts);
        EXPECT_EQ(stats.claimed, 4u);
        EXPECT_EQ(stats.committed, 4u);
        EXPECT_EQ(stats.reclaimed, 0u);
        EXPECT_EQ(stats.lostLeases, 0u);
    }
    EXPECT_EQ(executions.load(), 4);

    EXPECT_EQ(assembleJson(spec, path_, base),
              referenceJson(spec, path_ + ".ref", base));
}

TEST_F(ClaimExecutorTest, TwoConcurrentWorkersAreByteInvariant)
{
    SweepSpec spec = tinySpec();
    RunnerOptions base;
    base.cellRunner = fakeCell;

    WorkerStats s1, s2;
    {
        auto store1 = openShared();
        auto store2 = openShared();
        CellCache cache1(*store1, kFingerprint);
        CellCache cache2(*store2, kFingerprint);
        std::thread t1([&] {
            WorkerOptions w;
            w.owner = "w1";
            w.cellRunner = fakeCell;
            s1 = runSweepWorker(spec, cache1, w);
        });
        std::thread t2([&] {
            WorkerOptions w;
            w.owner = "w2";
            w.cellRunner = fakeCell;
            s2 = runSweepWorker(spec, cache2, w);
        });
        t1.join();
        t2.join();
    }
    // Every cell committed exactly once across the fleet (default
    // lease is far longer than this run, so no reclaims happen).
    EXPECT_EQ(s1.committed + s2.committed, 4u);
    EXPECT_EQ(s1.lostLeases + s2.lostLeases, 0u);

    // The worker-count invariance contract.
    EXPECT_EQ(assembleJson(spec, path_, base),
              referenceJson(spec, path_ + ".ref", base));
}

TEST_F(ClaimExecutorTest, FailedCellIsRetriedByAnotherClaimant)
{
    SweepSpec spec = tinySpec();
    std::vector<SweepCell> cells = expandSweep(spec);
    const std::size_t victim_index = 1;

    // Worker 1's attempt at the victim cell failed once: it left a
    // retry-state claim behind (exactly what the commit path
    // writes after a throw).
    std::string victim_key;
    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        victim_key = cache.cellKey(spec, cells[victim_index], 0);
        store::ClaimTable table(kFingerprint);
        store::WriteTx tx = store->beginWrite();
        table.bumpHeartbeat(tx);
        store::ClaimRecord rec;
        rec.owner = "w1";
        rec.state = store::ClaimState::Retry;
        rec.epoch = 1;
        rec.retries = 1;
        rec.error = "transient failure in w1";
        table.put(tx, victim_key, rec);
        tx.commit();
    }

    // Worker 2 claims the retry cell and succeeds.
    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        WorkerOptions w;
        w.owner = "w2";
        w.cellRunner = fakeCell;
        WorkerStats stats = runSweepWorker(spec, cache, w);
        EXPECT_EQ(stats.committed, 4u);
    }
    {
        auto store = openShared();
        store::ClaimTable table(kFingerprint);
        auto rec =
            table.get(store->beginRead(), victim_key);
        ASSERT_TRUE(rec.has_value());
        EXPECT_EQ(rec->state, store::ClaimState::Done);
        EXPECT_EQ(rec->owner, "w2");
        // The earlier failure stays on the record.
        EXPECT_EQ(rec->retries, 1u);
    }

    // The recovered cell is indistinguishable from one that never
    // failed.
    RunnerOptions base;
    base.cellRunner = fakeCell;
    EXPECT_EQ(assembleJson(spec, path_, base),
              referenceJson(spec, path_ + ".ref", base));
}

TEST_F(ClaimExecutorTest, CellFailsOnlyAfterRetryExhaustion)
{
    SweepSpec spec = tinySpec();
    std::vector<SweepCell> cells = expandSweep(spec);
    const std::size_t bad_index = 2;
    const std::string error = "deterministic cell failure";

    auto failing = [&](const SweepSpec &s, const SweepCell &c,
                       std::size_t tc) -> CellResult {
        if (c.index == bad_index)
            throw std::runtime_error(error);
        return fakeCell(s, c, tc);
    };

    std::string bad_key;
    std::uint64_t attempts = 0;
    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        bad_key = cache.cellKey(spec, cells[bad_index], 0);
        WorkerOptions w;
        w.owner = "w1";
        w.maxRetries = 3;
        w.cellRunner = [&](const SweepSpec &s, const SweepCell &c,
                           std::size_t tc) {
            if (c.index == bad_index)
                ++attempts;
            return failing(s, c, tc);
        };
        WorkerStats stats = runSweepWorker(spec, cache, w);
        EXPECT_EQ(stats.committed, 3u);
        EXPECT_EQ(stats.retriesRecorded, 2u);
        EXPECT_EQ(stats.exhausted, 1u);
    }
    // The policy limit is a total-attempt budget.
    EXPECT_EQ(attempts, 3u);
    {
        auto store = openShared();
        store::ClaimTable table(kFingerprint);
        auto rec = table.get(store->beginRead(), bad_key);
        ASSERT_TRUE(rec.has_value());
        EXPECT_EQ(rec->state, store::ClaimState::Failed);
        EXPECT_EQ(rec->retries, 3u);
        EXPECT_EQ(rec->error, error);
    }

    // Assembly marks exactly that cell failed — with the same
    // bytes a single-process run with the same failure produces.
    RunnerOptions base;
    base.cellRunner = failing;
    std::string assembled = assembleJson(spec, path_, base);
    EXPECT_EQ(assembled,
              referenceJson(spec, path_ + ".ref", base));
    EXPECT_NE(assembled.find(error), std::string::npos);
}

TEST_F(ClaimExecutorTest, ExpiredLeaseIsReclaimedAndReRun)
{
    SweepSpec spec = tinySpec();
    std::vector<SweepCell> cells = expandSweep(spec);
    const std::size_t stuck_index = 0;

    // A crashed worker's footprint: a live claim whose epoch is
    // far behind the heartbeat. Its retry count already sits one
    // below the limit, so a reclaim that charged a retry would
    // terminally fail the cell.
    std::string stuck_key;
    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        stuck_key = cache.cellKey(spec, cells[stuck_index], 0);
        store::ClaimTable table(kFingerprint);
        store::WriteTx tx = store->beginWrite();
        store::ClaimRecord rec;
        rec.owner = "ghost";
        rec.state = store::ClaimState::Claimed;
        rec.epoch = 1;
        rec.retries = 2;
        table.put(tx, stuck_key, rec);
        tx.put(store::ClaimTable::heartbeatKey(kFingerprint),
               "100");
        tx.commit();
    }

    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        WorkerOptions w;
        w.owner = "rescuer";
        w.leaseTicks = 8;  // 100 - 1 >> 8: expired
        w.maxRetries = 3;
        w.cellRunner = fakeCell;
        WorkerStats stats = runSweepWorker(spec, cache, w);
        EXPECT_EQ(stats.committed, 4u);
        EXPECT_EQ(stats.reclaimed, 1u);
        EXPECT_EQ(stats.exhausted, 0u);
    }
    {
        auto store = openShared();
        store::ClaimTable table(kFingerprint);
        auto rec = table.get(store->beginRead(), stuck_key);
        ASSERT_TRUE(rec.has_value());
        EXPECT_EQ(rec->state, store::ClaimState::Done);
        EXPECT_EQ(rec->owner, "rescuer");
        // Reclaiming is free: only execution failures charge
        // retries, so lease churn can never exhaust a cell.
        EXPECT_EQ(rec->retries, 2u);
    }

    RunnerOptions base;
    base.cellRunner = fakeCell;
    EXPECT_EQ(assembleJson(spec, path_, base),
              referenceJson(spec, path_ + ".ref", base));
}

TEST_F(ClaimExecutorTest, CorruptHeartbeatHealsByFreeReclaim)
{
    SweepSpec spec = tinySpec();
    std::vector<SweepCell> cells = expandSweep(spec);

    // A corrupt heartbeat record parses as 0, so the bumped
    // counter restarts at 1 — *below* every recorded epoch. The
    // claim must read as infinitely old (not as fresh forever, and
    // not underflow into a retry charge): the cell is reclaimed at
    // no cost and the keyspace heals.
    std::string stuck_key;
    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        stuck_key = cache.cellKey(spec, cells[0], 0);
        store::ClaimTable table(kFingerprint);
        store::WriteTx tx = store->beginWrite();
        store::ClaimRecord rec;
        rec.owner = "ghost";
        rec.state = store::ClaimState::Claimed;
        rec.epoch = 50;
        rec.retries = 2;  // one reclaim charge from terminal
        table.put(tx, stuck_key, rec);
        tx.put(store::ClaimTable::heartbeatKey(kFingerprint),
               "not a number");
        tx.commit();
    }

    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        WorkerOptions w;
        w.owner = "healer";
        w.leaseTicks = 8;
        w.maxRetries = 3;
        w.cellRunner = fakeCell;
        WorkerStats stats = runSweepWorker(spec, cache, w);
        EXPECT_EQ(stats.committed, 4u);
        EXPECT_EQ(stats.reclaimed, 1u);
        EXPECT_EQ(stats.exhausted, 0u);
    }
    {
        auto store = openShared();
        store::ClaimTable table(kFingerprint);
        store::ReadTx read = store->beginRead();
        auto rec = table.get(read, stuck_key);
        ASSERT_TRUE(rec.has_value());
        EXPECT_EQ(rec->state, store::ClaimState::Done);
        EXPECT_EQ(rec->owner, "healer");
        EXPECT_EQ(rec->retries, 2u);
        // The counter is a decimal clock again, ahead of every
        // epoch (what check_store.py asserts).
        EXPECT_GE(table.heartbeat(read), rec->epoch);
    }

    RunnerOptions base;
    base.cellRunner = fakeCell;
    EXPECT_EQ(assembleJson(spec, path_, base),
              referenceJson(spec, path_ + ".ref", base));
}

TEST_F(ClaimExecutorTest, RefresherKeepsSlowCellLeaseFresh)
{
    SweepSpec spec = tinySpec();
    std::vector<SweepCell> cells = expandSweep(spec);

    // While cell 0 executes, a peer races the heartbeat far past
    // the lease length, then waits for the owner's background
    // refresher to pull the claim's epoch back within it. Without
    // refreshing, the lease would sit expired for the whole
    // execution (age ~12 >> leaseTicks 4) and never recover.
    std::atomic<bool> refreshed{false};
    WorkerStats stats;
    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        std::string slow_key = cache.cellKey(spec, cells[0], 0);
        WorkerOptions w;
        w.owner = "tortoise";
        w.leaseTicks = 4;
        w.refreshMs = 10;
        w.cellRunner = [&](const SweepSpec &s, const SweepCell &c,
                           std::size_t tc) {
            if (c.index == 0) {
                auto peer = openShared();
                store::ClaimTable table(kFingerprint);
                for (int i = 0; i < 12; ++i) {
                    store::WriteTx tx = peer->beginWrite();
                    table.bumpHeartbeat(tx);
                    tx.commit();
                }
                auto deadline = std::chrono::steady_clock::now() +
                                std::chrono::seconds(10);
                while (std::chrono::steady_clock::now() <
                       deadline) {
                    bool fresh = false;
                    {
                        // Scope the read tx tightly: in shared
                        // mode it holds the store gate, which the
                        // refresher needs to land its write.
                        store::ReadTx read = peer->beginRead();
                        auto rec = table.get(read, slow_key);
                        std::uint64_t hb = table.heartbeat(read);
                        fresh =
                            rec &&
                            rec->state ==
                                store::ClaimState::Claimed &&
                            rec->owner == "tortoise" &&
                            hb - rec->epoch <= 4;
                    }
                    if (fresh) {
                        refreshed = true;
                        break;
                    }
                    std::this_thread::sleep_for(
                        std::chrono::milliseconds(5));
                }
            }
            return fakeCell(s, c, tc);
        };
        stats = runSweepWorker(spec, cache, w);
    }
    EXPECT_TRUE(refreshed.load());
    EXPECT_GE(stats.refreshes, 1u);
    EXPECT_EQ(stats.committed, 4u);
    EXPECT_EQ(stats.lostLeases, 0u);

    RunnerOptions base;
    base.cellRunner = fakeCell;
    EXPECT_EQ(assembleJson(spec, path_, base),
              referenceJson(spec, path_ + ".ref", base));
}

TEST_F(ClaimExecutorTest, LiveLeaseIsNotStolen)
{
    SweepSpec spec = tinySpec();
    std::vector<SweepCell> cells = expandSweep(spec);

    // Another worker holds a *fresh* lease on cell 0.
    std::string held_key;
    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        held_key = cache.cellKey(spec, cells[0], 0);
        store::ClaimTable table(kFingerprint);
        store::WriteTx tx = store->beginWrite();
        std::uint64_t hb = table.bumpHeartbeat(tx);
        store::ClaimRecord rec;
        rec.owner = "busy-peer";
        rec.state = store::ClaimState::Claimed;
        rec.epoch = hb;
        table.put(tx, held_key, rec);
        tx.commit();
    }

    // With a huge lease the peer's claim never expires; the worker
    // must do the other three cells, then poll, and give up only
    // when we complete the peer's cell for it.
    std::thread completer;
    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        WorkerOptions w;
        w.owner = "patient";
        w.leaseTicks = 1'000'000;
        w.pollMs = 10;
        w.cellRunner = fakeCell;
        completer = std::thread([&] {
            // "busy-peer" eventually commits its cell.
            std::this_thread::sleep_for(
                std::chrono::milliseconds(150));
            auto peer_store = openShared();
            CellCache peer_cache(*peer_store, kFingerprint);
            store::ClaimTable table(kFingerprint);
            CellResult r = fakeCell(spec, cells[0], 0);
            store::WriteTx tx = peer_store->beginWrite();
            table.bumpHeartbeat(tx);
            auto rec = table.get(tx, held_key);
            ASSERT_TRUE(rec.has_value());
            rec->state = store::ClaimState::Done;
            tx.put(peer_cache.storeKey(held_key),
                   encodeCellResult(r));
            table.put(tx, held_key, *rec);
            tx.commit();
        });
        WorkerStats stats = runSweepWorker(spec, cache, w);
        EXPECT_EQ(stats.committed, 3u);
        EXPECT_EQ(stats.reclaimed, 0u);
        EXPECT_GE(stats.polls, 1u);
    }
    completer.join();

    RunnerOptions base;
    base.cellRunner = fakeCell;
    EXPECT_EQ(assembleJson(spec, path_, base),
              referenceJson(spec, path_ + ".ref", base));
}

} // namespace
} // namespace osp
