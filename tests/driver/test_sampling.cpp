/** @file Tests for sampled-simulation sweeps: spec expansion and
 *  validation, thread-count byte-determinism of the sample section,
 *  sampled-cell codec round-trips with stale-schema rejection, and
 *  the CI-bracket guarantee of the stratified estimator on the five
 *  OS-intensive workloads. */

#include <gtest/gtest.h>

#include <filesystem>
#include <optional>
#include <sstream>
#include <string>

#include "driver/cell_cache.hh"
#include "driver/cell_io.hh"
#include "driver/experiments.hh"
#include "driver/sweep.hh"
#include "store/page_store.hh"
#include "util/json.hh"
#include "workload/registry.hh"

namespace osp
{
namespace
{

/** Two workloads, all four corners, tiny work volume. */
SweepSpec
sampledSpec()
{
    SweepSpec spec;
    spec.name = "sampled-tiny";
    spec.workloads = {"ab-rand", "du"};
    spec.modes = {RunMode::Full, RunMode::Accelerated};
    PredictorParams pred = experimentPredictor();
    pred.learningWindow = 10;
    spec.predictors = {{"statistical", pred}};
    spec.scale = 0.2;
    SampleParams sample;
    sample.intervalLen = 1000;
    sample.strata = 3;
    sample.rate = 0.3;
    applySweepSampling(spec, sample);
    return spec;
}

std::string
canonicalJson(const SweepResult &result)
{
    JsonOptions jopts;
    jopts.includeTiming = false;
    std::ostringstream os;
    writeResultsJson(os, result, jopts);
    return os.str();
}

TEST(SampledSpec, ApplyAddsOneSampledModePerBaseline)
{
    SweepSpec spec = sampledSpec();
    ASSERT_EQ(spec.modes.size(), 4u);
    EXPECT_EQ(spec.modes[2], RunMode::Sampled);
    EXPECT_EQ(spec.modes[3], RunMode::SampledAccel);
    EXPECT_TRUE(spec.sample.enabled);

    // Applying twice adds nothing.
    applySweepSampling(spec, spec.sample);
    EXPECT_EQ(spec.modes.size(), 4u);

    // Without an Accelerated baseline only Sampled appears.
    SweepSpec bare;
    bare.name = "bare";
    bare.workloads = {"du"};
    bare.modes = {RunMode::Full};
    SampleParams sample;
    applySweepSampling(bare, sample);
    ASSERT_EQ(bare.modes.size(), 2u);
    EXPECT_EQ(bare.modes[1], RunMode::Sampled);
}

TEST(SampledSpec, ExpansionAndValidation)
{
    SweepSpec spec = sampledSpec();
    // 2 workloads x (full + accel + sampled + sampled-accel).
    EXPECT_EQ(expandSweep(spec).size(), 8u);

    SweepSpec bad = sampledSpec();
    bad.sample.rate = 0.0;
    EXPECT_DEATH(expandSweep(bad), "rate");

    bad = sampledSpec();
    bad.sample.enabled = false;
    EXPECT_DEATH(expandSweep(bad), "sample");

    bad = sampledSpec();
    bad.baseConfig.level = DetailLevel::Emulate;
    EXPECT_DEATH(expandSweep(bad), "detail");
}

TEST(SampledSweep, ThreadCountInvarianceIncludesSampleSection)
{
    SweepSpec spec = sampledSpec();
    RunnerOptions opts;
    opts.threads = 1;
    SweepResult one = runSweep(spec, opts);
    opts.threads = 4;
    SweepResult four = runSweep(spec, opts);

    std::string bytes = canonicalJson(one);
    EXPECT_EQ(bytes, canonicalJson(four));
    EXPECT_NE(bytes.find("\"ospredict-sample-v1\""),
              std::string::npos);
}

TEST(SampledSweep, EstimateTracksOracleAndShrinksDetailedWork)
{
    SweepSpec spec = sampledSpec();
    SweepResult sweep = runSweep(spec);

    for (const auto &wl : spec.workloads) {
        const CellResult &full =
            *sweep.find(wl, RunMode::Full);
        const CellResult &samp =
            *sweep.find(wl, RunMode::Sampled);
        ASSERT_TRUE(samp.sample.present);
        ASSERT_TRUE(samp.sample.hasOracle);
        EXPECT_TRUE(samp.sample.withinCi) << wl;
        // Sampling must actually skip application work...
        EXPECT_LT(samp.sample.detailedAppInsts,
                  full.totals.appInsts);
        EXPECT_GT(samp.sample.ffAppInsts, 0u);
        // ...while instruction streams stay mode-invariant.
        EXPECT_EQ(samp.totals.appInsts, full.totals.appInsts);
        EXPECT_EQ(samp.totals.osInsts, full.totals.osInsts);
        EXPECT_EQ(samp.sample.detailedAppInsts +
                      samp.sample.ffAppInsts,
                  full.totals.appInsts);
        EXPECT_GT(samp.sample.estAppCycles, 0.0);
        EXPECT_LT(samp.sample.detailedFraction, 1.0);
    }
}

TEST(SampledSweep, SampledCellCodecRoundTripsByteExactly)
{
    SweepSpec spec = sampledSpec();
    for (const SweepCell &cell : expandSweep(spec)) {
        if (!isSampledMode(cell.mode))
            continue;
        CellResult original = runCell(spec, cell, 0);
        ASSERT_FALSE(original.failed) << cell.workload;
        ASSERT_TRUE(original.sample.present);

        std::string encoded = encodeCellResult(original);
        std::optional<CellResult> decoded =
            decodeCellResult(encoded);
        ASSERT_TRUE(decoded.has_value()) << cell.workload;
        EXPECT_EQ(encodeCellResult(*decoded), encoded)
            << cell.workload;
        EXPECT_EQ(decoded->sample.sampledIntervals,
                  original.sample.sampledIntervals);
        EXPECT_EQ(decoded->sample.strata.size(),
                  original.sample.strata.size());

        // A stale store payload (pre-sampling schema: no "sample"
        // object) must be rejected, not mis-assembled.
        bool ok = false;
        JsonValue doc = JsonValue::parse(encoded, &ok, nullptr);
        ASSERT_TRUE(ok);
        JsonValue stale = JsonValue::object();
        for (const auto &[key, value] : doc.members()) {
            if (key != "sample")
                stale.add(key, JsonValue(value));
        }
        std::ostringstream os;
        stale.write(os, 0);
        EXPECT_FALSE(decodeCellResult(os.str()).has_value())
            << cell.workload;
    }
}

TEST(SampledSweep, CellKeySeparatesSampledIdentity)
{
    auto path = (std::filesystem::temp_directory_path() /
                 "osp_sampling_key_test.db")
                    .string();
    std::filesystem::remove(path);
    auto store = store::PageStore::open(path);
    CellCache cache(*store, "f00d");

    SweepSpec spec = sampledSpec();
    auto cells = expandSweep(spec);
    // Pick a sampled cell and its full twin.
    std::size_t sampled = cells.size();
    std::size_t full = cells.size();
    for (std::size_t i = 0; i < cells.size(); ++i) {
        if (cells[i].workload != "du")
            continue;
        if (cells[i].mode == RunMode::Sampled)
            sampled = i;
        if (cells[i].mode == RunMode::Full)
            full = i;
    }
    ASSERT_LT(sampled, cells.size());
    ASSERT_LT(full, cells.size());
    EXPECT_NE(cache.cellKey(spec, cells[sampled], 0),
              cache.cellKey(spec, cells[full], 0));

    // Sampling parameters fold into the sampled cell's identity
    // but leave unsampled cells' keys untouched.
    SweepSpec retuned = spec;
    retuned.sample.rate = 0.5;
    auto retuned_cells = expandSweep(retuned);
    EXPECT_NE(cache.cellKey(retuned, retuned_cells[sampled], 0),
              cache.cellKey(spec, cells[sampled], 0));
    EXPECT_EQ(cache.cellKey(retuned, retuned_cells[full], 0),
              cache.cellKey(spec, cells[full], 0));

    store.reset();
    std::filesystem::remove(path);
}

TEST(SampledSweep, Fig13BracketsOracleOnAllFiveWorkloads)
{
    // The acceptance gate of the sampling extension: in smoke mode
    // every sampled cell's stratified 95% CI brackets its unsampled
    // twin on all five OS-intensive workloads.
    SweepSpec spec = makeNamedSweep("fig13", 1.0 / 20.0, true);
    EXPECT_EQ(expandSweep(spec).size(), 20u);
    RunnerOptions opts;
    opts.threads = 4;
    SweepResult sweep = runSweep(spec, opts);

    int sampled_cells = 0;
    for (const CellResult &r : sweep.cells) {
        if (!r.sample.present)
            continue;
        ++sampled_cells;
        ASSERT_TRUE(r.sample.hasOracle) << r.cell.workload;
        EXPECT_TRUE(r.sample.withinCi)
            << r.cell.workload << " "
            << runModeName(r.cell.mode);
        EXPECT_TRUE(r.sample.hasCi);
    }
    EXPECT_EQ(sampled_cells, 10);
}

} // namespace
} // namespace osp
