/** @file Unit tests for the work-stealing thread pool. */

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "driver/thread_pool.hh"

namespace osp
{
namespace
{

TEST(WorkStealingPool, RunsEveryTask)
{
    WorkStealingPool pool(4);
    std::atomic<int> count{0};
    for (int i = 0; i < 1000; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1000);
}

TEST(WorkStealingPool, SingleThreadWorks)
{
    WorkStealingPool pool(1);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(WorkStealingPool, ZeroThreadsClampedToOne)
{
    WorkStealingPool pool(0);
    std::atomic<bool> ran{false};
    pool.submit([&] { ran = true; });
    pool.wait();
    EXPECT_TRUE(ran.load());
}

TEST(WorkStealingPool, StealsFromBusyWorker)
{
    // Unbalanced load: one long task followed by many short ones
    // submitted round-robin. With stealing, total wall time is
    // bounded by the long task, and everything completes.
    WorkStealingPool pool(4);
    std::atomic<int> count{0};
    pool.submit([&] {
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
        count.fetch_add(1);
    });
    for (int i = 0; i < 200; ++i)
        pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 201);
}

TEST(WorkStealingPool, WaitIsReusable)
{
    WorkStealingPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 1);
    pool.submit([&] { count.fetch_add(1); });
    pool.submit([&] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(WorkStealingPool, TasksMaySubmitTasks)
{
    WorkStealingPool pool(3);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; ++i) {
        pool.submit([&] {
            count.fetch_add(1);
            pool.submit([&] { count.fetch_add(1); });
        });
    }
    pool.wait();
    EXPECT_EQ(count.load(), 20);
}

TEST(WorkStealingPool, DestructorDrainsQueue)
{
    std::atomic<int> count{0};
    {
        WorkStealingPool pool(2);
        for (int i = 0; i < 50; ++i)
            pool.submit([&] { count.fetch_add(1); });
        // No wait(): the destructor must finish the queue before
        // joining.
    }
    EXPECT_EQ(count.load(), 50);
}

TEST(WorkStealingPool, ParallelSlotWritesAreIsolated)
{
    // The sweep runner's usage pattern: each task writes its own
    // preassigned slot; no two tasks share one.
    WorkStealingPool pool(4);
    std::vector<int> slots(500, 0);
    for (int i = 0; i < 500; ++i)
        pool.submit([&slots, i] { slots[i] = i + 1; });
    pool.wait();
    for (int i = 0; i < 500; ++i)
        EXPECT_EQ(slots[i], i + 1);
}

} // namespace
} // namespace osp
