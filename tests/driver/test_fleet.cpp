/** @file Tests for the fleet observability plane (driver/fleet.hh):
 *  the ospredict-worker-v1 snapshot codec and its strict decoder,
 *  the publisher's bounded event ring, end-to-end publication from
 *  a real claim-loop worker (version/heartbeat invariants, clean
 *  final snapshots), per-owner dropped-trace attribution, the
 *  determinism of the ospredict-fleet-v1 report, the Prometheus
 *  text exposition, and the merged chrome://tracing timeline's
 *  worker lanes. */

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "driver/cell_cache.hh"
#include "driver/claim_executor.hh"
#include "driver/fleet.hh"
#include "driver/sweep.hh"
#include "store/claim_table.hh"
#include "store/page_store.hh"
#include "util/json.hh"

namespace osp
{
namespace
{

constexpr const char *kFingerprint = "fleettestfp";

class FleetTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("osp_fleet_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()) +
                  ".db"))
                    .string();
        removeFiles();
    }

    void TearDown() override { removeFiles(); }

    void
    removeFiles()
    {
        std::filesystem::remove(path_);
        std::filesystem::remove(path_ + ".lock");
    }

    std::unique_ptr<store::PageStore>
    openShared()
    {
        store::StoreOptions o;
        o.shared = true;
        return store::PageStore::open(path_, o);
    }

    /** Cell content hashes in cell-index order, as the CLI's
     *  monitor/report paths compute them. */
    std::vector<std::string>
    cellKeys(const SweepSpec &spec, CellCache &cache,
             std::size_t trace_capacity = 0)
    {
        std::vector<std::string> keys;
        for (const SweepCell &cell : expandSweep(spec))
            keys.push_back(
                cache.cellKey(spec, cell, trace_capacity));
        return keys;
    }

    std::string path_;
};

/** As the claim-executor tests: a deterministic stand-in for
 *  runCell() that is a pure function of the cell coordinates. */
CellResult
fakeCell(const SweepSpec &, const SweepCell &cell, std::size_t)
{
    CellResult r;
    r.cell = cell;
    r.totals.appInsts = 1000 + cell.seed % 257;
    r.totals.appCycles = 3000 + cell.seed % 1031;
    r.totals.osInsts = 100 + cell.l2Bytes % 89;
    r.totals.osSimCycles = 500 + cell.seedIndex * 7;
    r.totals.osInvocations = 4 + cell.index;
    r.totals.osSimulated = 4 + cell.index;
    return r;
}

/** Four cells: (Full + Accelerated) x 2 seeds of one workload. */
SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.name = "fleet-tiny";
    spec.workloads = {"du"};
    spec.modes = {RunMode::Full, RunMode::Accelerated};
    spec.predictors = {{"default", PredictorParams{}}};
    spec.numSeeds = 2;
    spec.scale = 0.05;
    return spec;
}

WorkerSnapshot
sampleSnapshot()
{
    WorkerSnapshot snap;
    snap.owner = "w1";
    snap.pid = 4242;
    snap.version = 7;
    snap.epoch = 31;
    snap.exited = true;
    snap.startUnixUs = 1700000000000000ULL;
    snap.uptimeUs = 123456;
    snap.stats.claimed = 3;
    snap.stats.executed = 3;
    snap.stats.committed = 2;
    snap.stats.retriesRecorded = 1;
    snap.stats.heartbeats = 9;
    snap.ringsWithDrops = 1;
    snap.totalDropped = 17;
    snap.cellWalls = {{0, 1500}, {2, 900}};
    snap.events.push_back(
        {10, FleetEventKind::Claimed, 0, 0});
    snap.events.push_back(
        {1510, FleetEventKind::Executed, 0, 1500});
    snap.events.push_back(
        {1600, FleetEventKind::Exited, FleetEvent::noCell, 0});
    snap.eventsDropped = 2;
    obs::Registry reg;
    reg.histogram("claim_loop", "cell_wall_us").observe(1500);
    snap.metrics = reg.snapshot();
    return snap;
}

TEST(FleetCodec, SnapshotRoundTripsByteStable)
{
    WorkerSnapshot snap = sampleSnapshot();
    std::string bytes = encodeWorkerSnapshot(snap);

    std::optional<WorkerSnapshot> back =
        decodeWorkerSnapshot(bytes);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(encodeWorkerSnapshot(*back), bytes);

    EXPECT_EQ(back->owner, "w1");
    EXPECT_EQ(back->pid, 4242u);
    EXPECT_EQ(back->version, 7u);
    EXPECT_EQ(back->epoch, 31u);
    EXPECT_TRUE(back->exited);
    EXPECT_EQ(back->stats.committed, 2u);
    EXPECT_EQ(back->ringsWithDrops, 1u);
    EXPECT_EQ(back->totalDropped, 17u);
    ASSERT_EQ(back->cellWalls.size(), 2u);
    EXPECT_EQ(back->cellWalls[1].second, 900u);
    ASSERT_EQ(back->events.size(), 3u);
    EXPECT_EQ(back->events[1].kind, FleetEventKind::Executed);
    EXPECT_EQ(back->events[1].durUs, 1500u);
    EXPECT_EQ(back->events[2].cell, FleetEvent::noCell);
    EXPECT_EQ(back->eventsDropped, 2u);
    EXPECT_EQ(
        back->metrics.findHistogram("claim_loop", "cell_wall_us")
            ->count,
        1u);
}

TEST(FleetCodec, DecodeRejectsMalformedSnapshots)
{
    const std::string good = encodeWorkerSnapshot(sampleSnapshot());
    ASSERT_TRUE(decodeWorkerSnapshot(good).has_value());

    // Not JSON at all, and valid JSON of the wrong shape.
    EXPECT_FALSE(decodeWorkerSnapshot("not json").has_value());
    EXPECT_FALSE(decodeWorkerSnapshot("[1,2]").has_value());

    // Wrong schema tag.
    std::string wrong_schema = good;
    wrong_schema.replace(wrong_schema.find("ospredict-worker-v1"),
                         std::string("ospredict-worker-v1").size(),
                         "ospredict-worker-v9");
    EXPECT_FALSE(decodeWorkerSnapshot(wrong_schema).has_value());

    // Unknown lifecycle phase.
    std::string bad_phase = good;
    bad_phase.replace(bad_phase.find("\"exited\""),
                      std::string("\"exited\"").size(),
                      "\"zombie\"");
    EXPECT_FALSE(decodeWorkerSnapshot(bad_phase).has_value());

    // A required field missing entirely.
    std::string no_owner = good;
    no_owner.replace(no_owner.find("\"owner\""),
                     std::string("\"owner\"").size(), "\"ownr\"");
    EXPECT_FALSE(decodeWorkerSnapshot(no_owner).has_value());

    // An event tuple with an out-of-range kind.
    WorkerSnapshot bad_kind = sampleSnapshot();
    bad_kind.events[0].kind =
        static_cast<FleetEventKind>(numFleetEventKinds);
    EXPECT_FALSE(
        decodeWorkerSnapshot(encodeWorkerSnapshot(bad_kind))
            .has_value());
}

TEST(FleetCodec, EventKindNamesAreStable)
{
    EXPECT_STREQ(fleetEventKindName(FleetEventKind::Claimed),
                 "claimed");
    EXPECT_STREQ(fleetEventKindName(FleetEventKind::Reclaimed),
                 "reclaimed");
    EXPECT_STREQ(fleetEventKindName(FleetEventKind::LostLease),
                 "lost_lease");
    EXPECT_STREQ(fleetEventKindName(FleetEventKind::Exited),
                 "exited");
}

TEST_F(FleetTest, PublisherRingDropsOldestAndVersionsAdvance)
{
    auto store = openShared();
    FleetPublisher pub(kFingerprint, "ringer", 2);
    pub.noteEvent(FleetEventKind::Claimed, 0, 0, 10);
    pub.noteEvent(FleetEventKind::Executed, 0, 5, 20);
    pub.noteEvent(FleetEventKind::Committed, 0, 0, 30);

    {
        store::WriteTx tx = store->beginWrite();
        pub.publish(tx, *store, WorkerStats{}, 5, false);
        tx.commit();
    }
    EXPECT_EQ(pub.version(), 1u);

    std::optional<std::string> raw = store->beginRead().get(
        fleetKey(kFingerprint, "ringer"));
    ASSERT_TRUE(raw.has_value());
    std::optional<WorkerSnapshot> snap = decodeWorkerSnapshot(*raw);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->version, 1u);
    EXPECT_EQ(snap->epoch, 5u);
    EXPECT_FALSE(snap->exited);
    // Capacity 2: the oldest event fell off the ring.
    ASSERT_EQ(snap->events.size(), 2u);
    EXPECT_EQ(snap->events[0].kind, FleetEventKind::Executed);
    EXPECT_EQ(snap->events[1].kind, FleetEventKind::Committed);
    EXPECT_EQ(snap->eventsDropped, 1u);

    // A later publish overwrites the same key with the next
    // version; the final snapshot records the clean exit.
    {
        store::WriteTx tx = store->beginWrite();
        pub.publish(tx, *store, WorkerStats{}, 6, true);
        tx.commit();
    }
    raw = store->beginRead().get(fleetKey(kFingerprint, "ringer"));
    ASSERT_TRUE(raw.has_value());
    snap = decodeWorkerSnapshot(*raw);
    ASSERT_TRUE(snap.has_value());
    EXPECT_EQ(snap->version, 2u);
    EXPECT_TRUE(snap->exited);
}

TEST_F(FleetTest, WorkerRunPublishesConsistentFinalSnapshot)
{
    SweepSpec spec = tinySpec();
    WorkerStats stats;
    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        WorkerOptions w;
        w.owner = "solo";
        w.cellRunner = fakeCell;
        stats = runSweepWorker(spec, cache, w);
    }

    auto store = openShared();
    CellCache cache(*store, kFingerprint);
    FleetView view =
        readFleetView(*store, kFingerprint, cellKeys(spec, cache));

    EXPECT_EQ(view.fingerprint, kFingerprint);
    EXPECT_EQ(view.cells.total, 4u);
    EXPECT_EQ(view.cells.done, 4u);
    EXPECT_EQ(view.cells.outstanding(), 0u);

    ASSERT_EQ(view.workers.size(), 1u);
    const WorkerSnapshot &w = view.workers[0];
    EXPECT_EQ(w.owner, "solo");
    EXPECT_TRUE(w.exited);
    // Publish-protocol invariants (what check_store.py asserts):
    // every snapshot rides a transaction that bumps the heartbeat
    // exactly once, so neither counter can outrun it.
    EXPECT_GE(w.version, 1u);
    EXPECT_LE(w.version, view.heartbeat);
    EXPECT_LE(w.epoch, view.heartbeat);
    // The published stats are the stats the worker returned.
    EXPECT_EQ(w.stats.claimed, stats.claimed);
    EXPECT_EQ(w.stats.committed, 4u);
    EXPECT_EQ(w.stats.executed, 4u);
    EXPECT_EQ(view.totals.committed, 4u);
    // One wall-time entry per executed cell.
    EXPECT_EQ(w.cellWalls.size(), 4u);
    EXPECT_EQ(w.eventsDropped, 0u);

    // Merged metrics carry the claim loop's instruments and the
    // store's self-profile.
    const obs::HistogramEntry *walls =
        view.merged.findHistogram("claim_loop", "cell_wall_us");
    ASSERT_NE(walls, nullptr);
    EXPECT_EQ(walls->count, 4u);
    EXPECT_GT(view.merged.counterValue("store", "commit_count"),
              0u);
}

TEST_F(FleetTest, DroppedTraceEventsAreAttributedToOwner)
{
    SweepSpec spec = tinySpec();
    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        WorkerOptions w;
        w.owner = "droppy";
        w.cellRunner = [](const SweepSpec &s, const SweepCell &c,
                          std::size_t tc) {
            CellResult r = fakeCell(s, c, tc);
            r.traceInfo.dropped = 5;
            return r;
        };
        runSweepWorker(spec, cache, w);
    }

    auto store = openShared();
    CellCache cache(*store, kFingerprint);
    FleetView view =
        readFleetView(*store, kFingerprint, cellKeys(spec, cache));
    ASSERT_EQ(view.workers.size(), 1u);
    EXPECT_EQ(view.workers[0].ringsWithDrops, 4u);
    EXPECT_EQ(view.workers[0].totalDropped, 20u);
    EXPECT_EQ(view.ringsWithDrops, 4u);
    EXPECT_EQ(view.totalDropped, 20u);

    // The attribution survives into the report document.
    JsonValue report = fleetReportToJson(view);
    const JsonValue *totals = report.find("totals");
    ASSERT_NE(totals, nullptr);
    EXPECT_EQ(totals->find("total_dropped")->asUint(), 20u);
}

TEST_F(FleetTest, ReportIsDeterministicAndWellFormed)
{
    SweepSpec spec = tinySpec();
    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        WorkerOptions w;
        w.owner = "rep";
        w.cellRunner = fakeCell;
        runSweepWorker(spec, cache, w);
    }

    auto store = openShared();
    CellCache cache(*store, kFingerprint);
    std::vector<std::string> keys = cellKeys(spec, cache);

    FleetView a = readFleetView(*store, kFingerprint, keys);
    a.sweep = spec.name;
    FleetView b = readFleetView(*store, kFingerprint, keys);
    b.sweep = spec.name;
    // Same store bytes, same report bytes.
    std::ostringstream ra, rb;
    writeFleetReport(ra, a);
    writeFleetReport(rb, b);
    EXPECT_EQ(ra.str(), rb.str());

    JsonValue doc = fleetReportToJson(a);
    EXPECT_EQ(doc.find("schema")->asString(), fleetReportSchema);
    EXPECT_EQ(doc.find("sweep")->asString(), "fleet-tiny");
    const JsonValue *cells = doc.find("cells");
    ASSERT_NE(cells, nullptr);
    // The states partition the expansion.
    EXPECT_EQ(cells->find("done")->asUint() +
                  cells->find("failed")->asUint() +
                  cells->find("claimed")->asUint() +
                  cells->find("retry")->asUint() +
                  cells->find("unclaimed")->asUint(),
              cells->find("total")->asUint());
    const JsonValue *workers = doc.find("workers");
    ASSERT_NE(workers, nullptr);
    ASSERT_EQ(workers->size(), 1u);
    const JsonValue &w = workers->at(0);
    EXPECT_EQ(w.find("owner")->asString(), "rep");
    EXPECT_EQ(w.find("phase")->asString(), "exited");
    EXPECT_EQ(w.find("cells_executed")->asUint(), 4u);
    EXPECT_EQ(w.find("heartbeat_lag")->asUint(),
              a.heartbeat - a.workers[0].epoch);
}

TEST_F(FleetTest, PrometheusExportIsWellFormed)
{
    SweepSpec spec = tinySpec();
    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        WorkerOptions w;
        w.owner = "prom";
        w.cellRunner = fakeCell;
        runSweepWorker(spec, cache, w);
    }

    auto store = openShared();
    CellCache cache(*store, kFingerprint);
    FleetView view =
        readFleetView(*store, kFingerprint, cellKeys(spec, cache));
    view.sweep = spec.name;
    std::ostringstream os;
    writePrometheusReport(os, view);
    const std::string text = os.str();

    EXPECT_NE(text.find("# TYPE ospredict_fleet_cells gauge"),
              std::string::npos);
    EXPECT_NE(text.find("ospredict_fleet_cells{sweep=\"fleet-tiny"
                        "\",state=\"done\"} 4"),
              std::string::npos);
    EXPECT_NE(text.find("ospredict_worker_committed_total"
                        "{owner=\"prom\"} 4"),
              std::string::npos);
    // A clean exit reads as down.
    EXPECT_NE(text.find("ospredict_worker_up{owner=\"prom\"} 0"),
              std::string::npos);
    // Histograms expose cumulative buckets ending at +Inf with a
    // sum/count pair.
    EXPECT_NE(text.find("ospredict_claim_loop_cell_wall_us_bucket"
                        "{le=\"+Inf\"} 4"),
              std::string::npos);
    EXPECT_NE(text.find("ospredict_claim_loop_cell_wall_us_count 4"),
              std::string::npos);
}

TEST_F(FleetTest, MergedTraceCarriesWorkerLanes)
{
    SweepSpec spec = tinySpec();
    {
        auto store = openShared();
        CellCache cache(*store, kFingerprint);
        WorkerOptions w;
        w.owner = "tracer";
        w.cellRunner = fakeCell;
        runSweepWorker(spec, cache, w);
    }

    auto store = openShared();
    CellCache cache(*store, kFingerprint);
    // Assemble the results document from the claim-covered store,
    // exactly as `sweep --assemble --trace` would.
    RunnerOptions opts;
    opts.threads = 1;
    opts.cache = &cache;
    opts.incremental = true;
    opts.claimAware = true;
    opts.cellRunner = fakeCell;
    SweepResult result = runSweep(spec, opts);
    FleetView view =
        readFleetView(*store, kFingerprint, cellKeys(spec, cache));
    view.sweep = spec.name;

    std::ostringstream os;
    writeMergedChromeTrace(os, result, view);
    bool ok = false;
    JsonValue doc = JsonValue::parse(os.str(), &ok);
    ASSERT_TRUE(ok);

    // One process_name lane per worker, on the worker's real pid,
    // plus per-event owner attribution.
    std::size_t worker_lanes = 0;
    std::size_t worker_events = 0;
    for (const JsonValue &e :
         doc.find("traceEvents")->elements()) {
        const JsonValue *name = e.find("name");
        const JsonValue *args = e.find("args");
        if (name && name->asString() == "process_name" && args &&
            args->find("name")->asString() == "worker tracer") {
            ++worker_lanes;
            EXPECT_EQ(e.find("pid")->asUint(),
                      view.workers[0].pid);
        }
        if (args && args->find("owner") &&
            args->find("owner")->asString() == "tracer")
            ++worker_events;
    }
    EXPECT_EQ(worker_lanes, 1u);
    // At least claim/execute/commit per cell plus the exit marker.
    EXPECT_GE(worker_events, 13u);
    // The clock-domain note survives for trace viewers.
    const JsonValue *other = doc.find("otherData");
    ASSERT_NE(other, nullptr);
    EXPECT_EQ(other->find("workers")->asUint(), 1u);
}

} // namespace
} // namespace osp
