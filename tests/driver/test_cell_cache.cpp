/** @file Tests for the content-addressed sweep-cell cache and its
 *  codec: lossless CellResult round-trips, cell-key purity (the
 *  same key at every thread count), warm/cold byte-identity of the
 *  results document, hash-collision safety and fingerprint
 *  eviction. */

#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <sstream>
#include <string>

#include "driver/cell_cache.hh"
#include "driver/cell_io.hh"
#include "driver/experiments.hh"
#include "driver/sweep.hh"
#include "store/page_store.hh"

namespace osp
{
namespace
{

class CellCacheTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        path_ = (std::filesystem::temp_directory_path() /
                 ("osp_cache_test_" +
                  std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()) +
                  ".db"))
                    .string();
        std::filesystem::remove(path_);
        store_ = store::PageStore::open(path_);
    }

    void
    TearDown() override
    {
        store_.reset();
        std::filesystem::remove(path_);
    }

    std::string path_;
    std::unique_ptr<store::PageStore> store_;
};

SweepSpec
tinySpec()
{
    SweepSpec spec;
    spec.name = "tiny";
    spec.workloads = {"ab-rand", "du"};
    spec.modes = {RunMode::Full, RunMode::Accelerated};
    spec.predictors = {
        {"statistical",
         experimentPredictor(RelearnStrategy::Statistical)},
        {"eager", experimentPredictor(RelearnStrategy::Eager)}};
    spec.scale = 0.2;
    return spec;
}

/** Canonical (timing-free) results document bytes. */
std::string
canonicalJson(const SweepResult &result)
{
    JsonOptions jopts;
    jopts.includeTiming = false;
    std::ostringstream os;
    writeResultsJson(os, result, jopts);
    return os.str();
}

TEST_F(CellCacheTest, CellCodecRoundTripsByteExactly)
{
    SweepSpec spec = tinySpec();
    // Tracing on: the codec must carry trace events too.
    for (const SweepCell &cell : expandSweep(spec)) {
        CellResult original = runCell(spec, cell, 256);
        ASSERT_FALSE(original.failed) << cell.workload;

        std::string encoded = encodeCellResult(original);
        std::optional<CellResult> decoded =
            decodeCellResult(encoded);
        ASSERT_TRUE(decoded.has_value()) << cell.workload;

        // Byte-exact fixpoint: encode(decode(encode(x))) ==
        // encode(x) proves every carried field round-trips
        // losslessly (doubles included).
        EXPECT_EQ(encodeCellResult(*decoded), encoded)
            << cell.workload;
        EXPECT_EQ(decoded->cell.index, original.cell.index);
        EXPECT_EQ(decoded->totals.appCycles,
                  original.totals.appCycles);
        EXPECT_EQ(decoded->pltProfile, original.pltProfile);
        EXPECT_EQ(decoded->trace.size(), original.trace.size());
    }
}

TEST_F(CellCacheTest, CodecRejectsGarbageAsNullopt)
{
    EXPECT_EQ(decodeCellResult(""), std::nullopt);
    EXPECT_EQ(decodeCellResult("not json at all"), std::nullopt);
    EXPECT_EQ(decodeCellResult("{}"), std::nullopt);
    EXPECT_EQ(decodeCellResult("{\"schema\":\"wrong-v9\"}"),
              std::nullopt);
    EXPECT_EQ(decodeCellResult("[1,2,3]"), std::nullopt);
}

TEST_F(CellCacheTest, CellKeysArePureAndDistinct)
{
    SweepSpec spec = tinySpec();
    CellCache cache(*store_, "f00d");
    auto cells = expandSweep(spec);

    std::set<std::string> keys;
    for (const SweepCell &cell : cells) {
        std::string key = cache.cellKey(spec, cell, 0);
        EXPECT_EQ(key.size(), 16u);
        // Purity: recomputing gives the same key (nothing volatile
        // — no clocks, no pointers — leaks into the context).
        EXPECT_EQ(cache.cellKey(spec, cell, 0), key);
        keys.insert(key);
    }
    // Distinct cells address distinct slots.
    EXPECT_EQ(keys.size(), cells.size());

    // The key depends on what changes the simulation...
    SweepSpec reseeded = tinySpec();
    reseeded.baseSeed = spec.baseSeed + 1;
    auto reseeded_cells = expandSweep(reseeded);
    EXPECT_NE(cache.cellKey(reseeded, reseeded_cells[0], 0),
              cache.cellKey(spec, cells[0], 0));
    EXPECT_NE(cache.cellKey(spec, cells[0], 4096),
              cache.cellKey(spec, cells[0], 0));

    // ...but not on presentation-only fields.
    SweepSpec renamed = tinySpec();
    renamed.name = "tiny-renamed";
    auto renamed_cells = expandSweep(renamed);
    EXPECT_EQ(cache.cellKey(renamed, renamed_cells[0], 0),
              cache.cellKey(spec, cells[0], 0));
}

TEST_F(CellCacheTest, WarmIncrementalRunIsByteIdenticalAcrossThreads)
{
    SweepSpec spec = tinySpec();
    CellCache cache(*store_, "f00d");

    // Cold recording run on one thread.
    RunnerOptions cold_opts;
    cold_opts.threads = 1;
    cold_opts.cache = &cache;
    SweepResult cold = runSweep(spec, cold_opts);
    ASSERT_TRUE(cold.store.present);
    ASSERT_EQ(cold.store.cellKeys.size(), cold.cells.size());
    EXPECT_EQ(cache.registry().snapshot().counterValue(
                  "cell_cache", "inserts"),
              cold.cells.size());

    // Warm incremental run on four threads: every cell a hit, and
    // the canonical document byte-identical — the store section's
    // keys included, proving keys are thread-count invariant.
    CellCache warm_cache(*store_, "f00d");
    RunnerOptions warm_opts;
    warm_opts.threads = 4;
    warm_opts.cache = &warm_cache;
    warm_opts.incremental = true;
    SweepResult warm = runSweep(spec, warm_opts);

    EXPECT_EQ(canonicalJson(warm), canonicalJson(cold));
    auto snap = warm_cache.registry().snapshot();
    EXPECT_EQ(snap.counterValue("cell_cache", "hits"),
              cold.cells.size());
    EXPECT_EQ(snap.counterValue("cell_cache", "misses"), 0u);
}

TEST_F(CellCacheTest, ColdNonIncrementalRunCountsAllMisses)
{
    SweepSpec spec = tinySpec();
    CellCache cache(*store_, "f00d");
    RunnerOptions opts;
    opts.threads = 2;
    opts.cache = &cache;
    SweepResult result = runSweep(spec, opts);
    auto snap = cache.registry().snapshot();
    EXPECT_EQ(snap.counterValue("cell_cache", "misses"),
              result.cells.size());
    EXPECT_EQ(snap.counterValue("cell_cache", "hits"), 0u);
}

TEST_F(CellCacheTest, CollisionOnMismatchedCellDegradesToMiss)
{
    SweepSpec spec = tinySpec();
    auto cells = expandSweep(spec);
    CellResult real = runCell(spec, cells[0]);

    CellCache cache(*store_, "f00d");
    std::string key = cache.cellKey(spec, cells[0], 0);
    cache.commitResults({{key, &real}});

    // The right cell fetches...
    EXPECT_TRUE(cache.fetch(key, cells[0]).has_value());
    // ...but the same key presented for different coordinates (a
    // simulated 64-bit collision) must degrade to a miss, never a
    // wrong result.
    ASSERT_GT(cells.size(), 1u);
    EXPECT_EQ(cache.fetch(key, cells[1]), std::nullopt);
}

TEST_F(CellCacheTest, FetchRewritesIndexToCurrentExpansion)
{
    SweepSpec spec = tinySpec();
    auto cells = expandSweep(spec);
    CellResult real = runCell(spec, cells[0]);

    CellCache cache(*store_, "f00d");
    std::string key = cache.cellKey(spec, cells[0], 0);
    cache.commitResults({{key, &real}});

    SweepCell moved = cells[0];
    moved.index = 17;  // same coordinates, new position
    std::optional<CellResult> hit = cache.fetch(key, moved);
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->cell.index, 17u);
}

TEST_F(CellCacheTest, StaleFingerprintEntriesAreEvictedOnCommit)
{
    SweepSpec spec = tinySpec();
    auto cells = expandSweep(spec);
    CellResult real = runCell(spec, cells[0]);

    CellCache old_cache(*store_, "0ld0ld0ld0ld0ld0");
    old_cache.commitResults(
        {{old_cache.cellKey(spec, cells[0], 0), &real}});

    // A new simulator build commits: the old build's entries go.
    CellCache new_cache(*store_, "new1new1new1new1");
    new_cache.commitResults(
        {{new_cache.cellKey(spec, cells[0], 0), &real}});
    EXPECT_EQ(new_cache.registry().snapshot().counterValue(
                  "cell_cache", "evictions"),
              1u);

    std::size_t old_keys = 0, new_keys = 0;
    store_->beginRead().scan(
        "cell/", [&](std::string_view k, std::string_view) {
            if (k.find("cell/0ld") == 0)
                ++old_keys;
            if (k.find("cell/new1") == 0)
                ++new_keys;
            return true;
        });
    EXPECT_EQ(old_keys, 0u);
    EXPECT_EQ(new_keys, 1u);
}

TEST_F(CellCacheTest, WarmProfileHashChangesAcceleratedIdentity)
{
    SweepSpec spec = tinySpec();
    auto cells = expandSweep(spec);
    const SweepCell *accel = nullptr;
    const SweepCell *full = nullptr;
    for (const SweepCell &c : cells) {
        if (c.mode == RunMode::Accelerated && !accel)
            accel = &c;
        if (c.mode == RunMode::Full && !full)
            full = &c;
    }
    ASSERT_NE(accel, nullptr);
    ASSERT_NE(full, nullptr);

    CellCache plain(*store_, "f00d");
    CellCache warmed(*store_, "f00d");
    warmed.setWarmProfileHash(accel->workload, 0x1234);

    // Warm-started accelerated cells never alias cold ones...
    EXPECT_NE(warmed.cellKey(spec, *accel, 0),
              plain.cellKey(spec, *accel, 0));
    // ...while baseline cells (which never load a profile) keep
    // their identity.
    EXPECT_EQ(warmed.cellKey(spec, *full, 0),
              plain.cellKey(spec, *full, 0));
}

TEST_F(CellCacheTest, StoreStatsDocumentShape)
{
    CellCache cache(*store_, "f00d");
    cache.noteMisses(3);
    JsonValue stats = cache.statsToJson();
    EXPECT_EQ(stats["schema"].asString(),
              "ospredict-store-stats-v1");
    EXPECT_EQ(stats["fingerprint"].asString(), "f00d");
    EXPECT_EQ(stats["cache"]["misses"].asUint(), 3u);
    EXPECT_EQ(stats["cache"]["hits"].asUint(), 0u);
    EXPECT_GE(stats["store"]["num_pages"].asUint(), 2u);
}

} // namespace
} // namespace osp
