/** @file Integration tests for acceleration configurations beyond
 *  the defaults: mix signatures end-to-end, profile warm starts,
 *  detail-level sweeps, and determinism under acceleration. */

#include <gtest/gtest.h>

#include <sstream>

#include "core/accelerator.hh"
#include "core/report.hh"
#include "workload/registry.hh"

namespace osp
{
namespace
{

PredictorParams
smallParams()
{
    PredictorParams pp;
    pp.warmupInvocations = 40;
    pp.learningWindow = 60;
    return pp;
}

TEST(MixSignatureIntegration, AccurateOnWebServer)
{
    MachineConfig cfg;
    cfg.seed = 42;
    auto ref = makeMachine("ab-rand", cfg, 0.4);
    Cycles full = ref->run().totalCycles();

    auto m = makeMachine("ab-rand", cfg, 0.4);
    PredictorParams pp = smallParams();
    pp.useMixSignature = true;
    Accelerator accel(pp);
    m->setController(&accel);
    const RunTotals &t = m->run();

    EXPECT_GT(t.coverage(), 0.2);
    EXPECT_LT(absError(static_cast<double>(t.totalCycles()),
                       static_cast<double>(full)),
              0.15);
}

TEST(MixSignatureIntegration, InstructionCountsStayExact)
{
    MachineConfig cfg;
    cfg.seed = 42;
    auto ref = makeMachine("iperf", cfg, 0.3);
    InstCount full_insts = ref->run().totalInsts();

    auto m = makeMachine("iperf", cfg, 0.3);
    PredictorParams pp = smallParams();
    pp.useMixSignature = true;
    Accelerator accel(pp);
    m->setController(&accel);
    EXPECT_EQ(m->run().totalInsts(), full_insts);
}

TEST(ProfileWarmStart, RaisesCoverageOnSecondRun)
{
    MachineConfig cfg;
    cfg.seed = 42;

    auto first = makeMachine("iperf", cfg, 0.3);
    Accelerator trainer(smallParams());
    first->setController(&trainer);
    double cold_coverage = first->run().coverage();

    std::ostringstream profile;
    trainer.saveState(profile);

    auto second = makeMachine("iperf", cfg, 0.3);
    Accelerator warmed(smallParams());
    std::istringstream in(profile.str());
    ASSERT_TRUE(warmed.loadState(in));
    second->setController(&warmed);
    double warm_coverage = second->run().coverage();

    EXPECT_GT(warm_coverage, cold_coverage + 0.1);
}

TEST(ProfileWarmStart, SameRunStaysAccurate)
{
    MachineConfig cfg;
    cfg.seed = 42;
    auto ref = makeMachine("iperf", cfg, 0.3);
    Cycles full = ref->run().totalCycles();

    auto trainer_machine = makeMachine("iperf", cfg, 0.3);
    Accelerator trainer(smallParams());
    trainer_machine->setController(&trainer);
    trainer_machine->run();
    std::ostringstream profile;
    trainer.saveState(profile);

    auto replay = makeMachine("iperf", cfg, 0.3);
    Accelerator warmed(smallParams());
    std::istringstream in(profile.str());
    ASSERT_TRUE(warmed.loadState(in));
    replay->setController(&warmed);
    const RunTotals &t = replay->run();
    // Frozen profiles inherit the training run's thermal bias, so
    // the bound is looser than online learning's (the abl5 bench
    // quantifies this at full scale).
    EXPECT_LT(absError(static_cast<double>(t.totalCycles()),
                       static_cast<double>(full)),
              0.25);
}

TEST(DetailLevels, AccelerationWorksOnInOrderEngine)
{
    MachineConfig cfg;
    cfg.seed = 42;
    cfg.level = DetailLevel::InOrderCache;
    auto ref = makeMachine("du", cfg, 0.4);
    Cycles full = ref->run().totalCycles();

    auto m = makeMachine("du", cfg, 0.4);
    Accelerator accel(smallParams());
    m->setController(&accel);
    const RunTotals &t = m->run();
    EXPECT_GT(t.coverage(), 0.2);
    EXPECT_LT(absError(static_cast<double>(t.totalCycles()),
                       static_cast<double>(full)),
              0.15);
}

TEST(DetailLevels, ControllerInertInEmulateRuns)
{
    // Regression: a controller attached to an Emulate-level run
    // must be completely inert — no level decisions, no recorded
    // outcomes, no audit/prediction counters. A two-phase sampled
    // run reuses one accelerator across a fast Emulate pass and a
    // detailed pass; a live controller in phase 1 would
    // double-count every service into the audit ledger.
    MachineConfig cfg;
    cfg.seed = 42;
    cfg.level = DetailLevel::Emulate;
    auto bare = makeMachine("du", cfg, 0.2);
    const RunTotals ref = bare->run();

    auto m = makeMachine("du", cfg, 0.2);
    Accelerator accel(smallParams());
    m->setController(&accel);
    const RunTotals &t = m->run();
    EXPECT_EQ(t.totalCycles(), 0u);
    // Identical to the controller-less run: emulated services
    // still count as zero-time "predicted" services, but none of
    // that routes through the controller.
    EXPECT_EQ(t.osPredicted, ref.osPredicted);
    EXPECT_EQ(t.osSimulated, ref.osSimulated);
    EXPECT_EQ(t.osPredCycles, ref.osPredCycles);
    EXPECT_EQ(t.osInsts, ref.osInsts);
    EXPECT_EQ(t.appInsts, ref.appInsts);

    ServicePredictor::Stats s = accel.aggregateStats();
    EXPECT_EQ(s.warmupRuns, 0u);
    EXPECT_EQ(s.learnedRuns, 0u);
    EXPECT_EQ(s.predictedRuns, 0u);
    EXPECT_EQ(s.audits, 0u);
}

TEST(Determinism, AcceleratedRunsAreBitIdentical)
{
    auto run_once = [] {
        MachineConfig cfg;
        cfg.seed = 77;
        auto m = makeMachine("find-od", cfg, 0.3);
        Accelerator accel(smallParams());
        m->setController(&accel);
        const RunTotals &t = m->run();
        return std::tuple(t.totalCycles(), t.osPredicted,
                          t.predictedMem.l2Misses,
                          t.measuredMem.l2Misses);
    };
    EXPECT_EQ(run_once(), run_once());
}

TEST(Determinism, MixSignatureTogglePreservesFunction)
{
    // Mix signatures change which clusters match, but never the
    // functional execution: instruction counts are identical.
    auto insts_with = [](bool mix) {
        MachineConfig cfg;
        cfg.seed = 7;
        auto m = makeMachine("ab-seq", cfg, 0.25);
        PredictorParams pp;
        pp.warmupInvocations = 20;
        pp.learningWindow = 30;
        pp.useMixSignature = mix;
        Accelerator accel(pp);
        m->setController(&accel);
        return m->run().totalInsts();
    };
    EXPECT_EQ(insts_with(false), insts_with(true));
}

} // namespace
} // namespace osp
