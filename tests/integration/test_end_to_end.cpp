/** @file End-to-end integration tests: the full paper pipeline on
 *  scaled-down runs. */

#include <gtest/gtest.h>

#include "core/accelerator.hh"
#include "core/report.hh"
#include "workload/registry.hh"

namespace osp
{
namespace
{

constexpr double testScale = 0.4;

struct Pair
{
    RunTotals full;
    RunTotals accel;
};

Pair
runPair(const std::string &workload,
        RelearnStrategy strategy = RelearnStrategy::Statistical)
{
    MachineConfig cfg;
    cfg.seed = 42;
    auto ref = makeMachine(workload, cfg, testScale);
    Pair out;
    out.full = ref->run();

    auto fast = makeMachine(workload, cfg, testScale);
    PredictorParams pp;
    pp.warmupInvocations = 40;  // scaled-down runs, shorter warm-up
    pp.learningWindow = 60;
    pp.relearn.strategy = strategy;
    Accelerator accel(pp);
    fast->setController(&accel);
    out.accel = fast->run();
    return out;
}

class EndToEnd : public ::testing::TestWithParam<const char *>
{
};

TEST_P(EndToEnd, InstructionCountsMatchExactly)
{
    auto pair = runPair(GetParam());
    // Emulated OS services execute the identical instruction
    // stream: the accelerated run's instruction counts are exact.
    EXPECT_EQ(pair.accel.totalInsts(), pair.full.totalInsts());
    EXPECT_EQ(pair.accel.osInsts, pair.full.osInsts);
    EXPECT_EQ(pair.accel.osInvocations, pair.full.osInvocations);
}

TEST_P(EndToEnd, PredictsExecutionTimeClosely)
{
    auto pair = runPair(GetParam());
    double err = absError(
        static_cast<double>(pair.accel.totalCycles()),
        static_cast<double>(pair.full.totalCycles()));
    // The paper reports 3.2% average / 4.2% worst at full scale;
    // leave margin for the scaled-down runs.
    EXPECT_LT(err, 0.12) << GetParam();
}

TEST_P(EndToEnd, AchievesUsefulCoverage)
{
    auto pair = runPair(GetParam());
    EXPECT_GT(pair.accel.coverage(), 0.3) << GetParam();
    EXPECT_GT(estimatedSpeedup(pair.accel), 1.2) << GetParam();
}

TEST_P(EndToEnd, MissRatePredictionsTrackReality)
{
    auto pair = runPair(GetParam());
    auto full = pair.full.combinedMem();
    auto accel = pair.accel.combinedMem();
    auto rate = [](std::uint64_t m, std::uint64_t a) {
        return a ? static_cast<double>(m) / static_cast<double>(a)
                 : 0.0;
    };
    // Fig. 9: absolute miss-rate differences within a few points on
    // the scaled-down runs (paper: <=1.4 points at full scale; the
    // short test-scale learning window carries more cold-start
    // bias, especially for kernel instruction fetch).
    EXPECT_NEAR(rate(accel.l1dMisses, accel.l1dAccesses),
                rate(full.l1dMisses, full.l1dAccesses), 0.02);
    EXPECT_NEAR(rate(accel.l1iMisses, accel.l1iAccesses),
                rate(full.l1iMisses, full.l1iAccesses), 0.035);
    EXPECT_NEAR(rate(accel.l2Misses, accel.l2Accesses),
                rate(full.l2Misses, full.l2Accesses), 0.03);
}

INSTANTIATE_TEST_SUITE_P(OsIntensive, EndToEnd,
                         ::testing::Values("ab-rand", "ab-seq", "du",
                                           "find-od", "iperf"));

TEST(EndToEndStrategies, EagerIsMostAccurateBestMatchWidest)
{
    // Fig. 11's ordering on one workload: Best-Match has the
    // highest coverage; Eager re-learns most (lowest coverage).
    auto best = runPair("ab-seq", RelearnStrategy::BestMatch);
    auto eager = runPair("ab-seq", RelearnStrategy::Eager);
    EXPECT_GE(best.accel.coverage(), eager.accel.coverage());
}

TEST(EndToEndStrategies, StatisticalBalancesCoverageAndError)
{
    auto stat = runPair("ab-seq", RelearnStrategy::Statistical);
    auto eager = runPair("ab-seq", RelearnStrategy::Eager);
    // Statistical must retain more coverage than Eager...
    EXPECT_GE(stat.accel.coverage() + 0.02,
              eager.accel.coverage());
    // ...while staying accurate.
    double err = absError(
        static_cast<double>(stat.accel.totalCycles()),
        static_cast<double>(stat.full.totalCycles()));
    EXPECT_LT(err, 0.12);
}

TEST(EndToEndDeterminism, SameSeedBitIdentical)
{
    auto a = runPair("ab-rand");
    auto b = runPair("ab-rand");
    EXPECT_EQ(a.full.totalCycles(), b.full.totalCycles());
    EXPECT_EQ(a.accel.totalCycles(), b.accel.totalCycles());
    EXPECT_EQ(a.accel.osPredicted, b.accel.osPredicted);
    EXPECT_EQ(a.accel.predictedMem.l2Misses,
              b.accel.predictedMem.l2Misses);
}

TEST(EndToEndAppOnly, UnderestimatesOsIntensiveWork)
{
    MachineConfig cfg;
    cfg.seed = 42;
    auto full = makeMachine("ab-rand", cfg, 0.2);
    Cycles full_cycles = full->run().totalCycles();
    cfg.appOnly = true;
    auto app = makeMachine("ab-rand", cfg, 0.2);
    Cycles app_cycles = app->run().totalCycles();
    // Fig. 1: app-only wildly underestimates (up to 126x in the
    // paper; >10x here even at test scale).
    EXPECT_GT(full_cycles, app_cycles * 10);
}

TEST(EndToEndPollution, FootprintBeatsNoPollution)
{
    // Full scale with default predictor parameters: the pollution
    // comparison needs long steady-state prediction periods to be
    // meaningful (see also the abl4 bench).
    MachineConfig cfg;
    cfg.seed = 42;
    auto ref = makeMachine("ab-rand", cfg, 1.0);
    Cycles full_cycles = ref->run().totalCycles();

    auto run_with = [&](PollutionPolicy policy) {
        MachineConfig c = cfg;
        c.pollutionPolicy = policy;
        auto m = makeMachine("ab-rand", c, 1.0);
        PredictorParams pp;
        pp.learningWindow = 100;
        Accelerator accel(pp);
        m->setController(&accel);
        return m->run().totalCycles();
    };

    double err_foot =
        absError(static_cast<double>(
                     run_with(PollutionPolicy::Footprint)),
                 static_cast<double>(full_cycles));
    double err_none = absError(
        static_cast<double>(run_with(PollutionPolicy::None)),
        static_cast<double>(full_cycles));
    EXPECT_LT(err_foot, err_none);
}

} // namespace
} // namespace osp
