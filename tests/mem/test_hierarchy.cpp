/** @file Tests for the three-level memory hierarchy. */

#include <gtest/gtest.h>

#include "mem/hierarchy.hh"

namespace osp
{
namespace
{

HierarchyParams
tinyParams()
{
    HierarchyParams p;
    p.l1i = CacheParams{"l1i", 1024, 2, 64, ReplPolicy::Lru};
    p.l1d = CacheParams{"l1d", 1024, 2, 64, ReplPolicy::Lru};
    p.l2 = CacheParams{"l2", 8192, 4, 64, ReplPolicy::Lru};
    return p;
}

TEST(Hierarchy, HitLatencies)
{
    MemoryHierarchy h(tinyParams());
    // Cold: L1 miss, L2 miss -> memory.
    auto cold = h.access(0x1000, AccessType::Load, Owner::App, 0);
    EXPECT_TRUE(cold.l1Miss);
    EXPECT_TRUE(cold.l2Miss);
    EXPECT_GE(cold.latency, h.params().memLatency);

    // Warm: L1 hit at the configured L1D latency.
    auto warm = h.access(0x1000, AccessType::Load, Owner::App, 100);
    EXPECT_FALSE(warm.l1Miss);
    EXPECT_EQ(warm.latency, h.params().l1dHitLatency);
}

TEST(Hierarchy, L2HitAfterL1Eviction)
{
    MemoryHierarchy h(tinyParams());
    // Fill L1D (1KB = 16 lines over 8 sets x 2 ways) well past
    // capacity; early lines fall out of L1 but stay in L2 (8KB).
    for (Addr a = 0; a < 4096; a += 64)
        h.access(a, AccessType::Load, Owner::App, 0);
    auto res = h.access(0, AccessType::Load, Owner::App, 10000);
    EXPECT_TRUE(res.l1Miss);
    EXPECT_FALSE(res.l2Miss);
    EXPECT_EQ(res.latency,
              h.params().l1dHitLatency + h.params().l2HitLatency);
}

TEST(Hierarchy, InstFetchUsesL1I)
{
    MemoryHierarchy h(tinyParams());
    h.access(0x2000, AccessType::InstFetch, Owner::App, 0);
    EXPECT_EQ(h.l1i().stats().totalAccesses(), 1u);
    EXPECT_EQ(h.l1d().stats().totalAccesses(), 0u);
    auto hit = h.access(0x2000, AccessType::InstFetch, Owner::App, 1);
    EXPECT_FALSE(hit.l1Miss);
    EXPECT_EQ(hit.latency, h.params().l1iHitLatency);
}

TEST(Hierarchy, L2IsUnified)
{
    MemoryHierarchy h(tinyParams());
    h.access(0x3000, AccessType::InstFetch, Owner::App, 0);
    // A data access to the same line: L1D miss but L2 hit.
    auto res = h.access(0x3000, AccessType::Load, Owner::App, 10);
    EXPECT_TRUE(res.l1Miss);
    EXPECT_FALSE(res.l2Miss);
}

TEST(Hierarchy, BusQueueingDelaysBackToBackMisses)
{
    MemoryHierarchy h(tinyParams());
    auto first = h.access(0x10000, AccessType::Load, Owner::App, 0);
    auto second = h.access(0x20000, AccessType::Load, Owner::App, 0);
    // The second miss queues behind the first line transfer.
    EXPECT_GT(second.latency, first.latency);
    EXPECT_GE(second.latency,
              first.latency + h.params().busCyclesPerLine -
                  (h.params().l1dHitLatency +
                   h.params().l2HitLatency));
}

TEST(Hierarchy, BusClearsWithTime)
{
    MemoryHierarchy h(tinyParams());
    auto first = h.access(0x10000, AccessType::Load, Owner::App, 0);
    // Far in the future: no queueing.
    auto later =
        h.access(0x20000, AccessType::Load, Owner::App, 1000000);
    EXPECT_EQ(later.latency, first.latency);
}

TEST(Hierarchy, CountsSnapshotDelta)
{
    MemoryHierarchy h(tinyParams());
    h.access(0x0, AccessType::Load, Owner::App, 0);
    HierarchyCounts before = h.counts();
    h.access(0x40, AccessType::Load, Owner::Os, 0);
    h.access(0x40, AccessType::Load, Owner::Os, 0);
    HierarchyCounts delta = h.counts() - before;
    EXPECT_EQ(delta.l1dAccesses, 2u);
    EXPECT_EQ(delta.l1dMisses, 1u);
    EXPECT_EQ(delta.l2Accesses, 1u);
}

TEST(Hierarchy, PerOwnerCounts)
{
    MemoryHierarchy h(tinyParams());
    h.access(0x0, AccessType::Load, Owner::App, 0);
    h.access(0x1000, AccessType::Load, Owner::Os, 0);
    auto app = h.countsFor(Owner::App);
    auto os = h.countsFor(Owner::Os);
    EXPECT_EQ(app.l1dAccesses, 1u);
    EXPECT_EQ(os.l1dAccesses, 1u);
    EXPECT_EQ(app.l1dMisses, 1u);
}

TEST(Hierarchy, ProbeL1MatchesResidency)
{
    MemoryHierarchy h(tinyParams());
    EXPECT_FALSE(h.probeL1(0x5000, AccessType::Load));
    h.access(0x5000, AccessType::Load, Owner::App, 0);
    EXPECT_TRUE(h.probeL1(0x5000, AccessType::Load));
    EXPECT_FALSE(h.probeL1(0x5000, AccessType::InstFetch));
}

TEST(Hierarchy, InstallLineResidency)
{
    MemoryHierarchy h(tinyParams());
    auto out = h.installLine(0x7000, false, Owner::Os);
    EXPECT_TRUE(out.l1Fill);
    EXPECT_TRUE(out.l2Fill);
    // Installs do not perturb demand statistics.
    EXPECT_EQ(h.counts().l1dAccesses, 0u);
    // But the line is resident: a demand access hits.
    auto res = h.access(0x7000, AccessType::Load, Owner::App, 0);
    EXPECT_FALSE(res.l1Miss);
}

TEST(Hierarchy, FlushAllDropsContents)
{
    MemoryHierarchy h(tinyParams());
    h.access(0x0, AccessType::Load, Owner::App, 0);
    h.flushAll();
    auto res = h.access(0x0, AccessType::Load, Owner::App, 0);
    EXPECT_TRUE(res.l1Miss);
    EXPECT_TRUE(res.l2Miss);
}

TEST(Hierarchy, DefaultParamsMatchPaper)
{
    HierarchyParams p;
    EXPECT_EQ(p.l1i.sizeBytes, 16u * 1024);
    EXPECT_EQ(p.l1i.assoc, 2u);
    EXPECT_EQ(p.l1d.sizeBytes, 16u * 1024);
    EXPECT_EQ(p.l1d.assoc, 4u);
    EXPECT_EQ(p.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(p.l2.assoc, 8u);
    EXPECT_EQ(p.l1d.lineBytes, 64u);
    EXPECT_EQ(p.l1dHitLatency, 2u);
    EXPECT_EQ(p.l2HitLatency, 8u);
    EXPECT_EQ(p.memLatency, 300u);
}

TEST(HierarchyTlb, MissPaysWalkPenaltyOncePerPage)
{
    HierarchyParams p = tinyParams();
    p.tlbEntries = 8;
    p.tlbMissPenalty = 30;
    MemoryHierarchy h(p);
    auto first = h.access(0x8000, AccessType::Load, Owner::App, 0);
    EXPECT_TRUE(first.tlbMiss);
    // Same page, different line: TLB hit now.
    auto second =
        h.access(0x8040, AccessType::Load, Owner::App, 10000);
    EXPECT_FALSE(second.tlbMiss);
    EXPECT_EQ(first.latency - second.latency,
              p.tlbMissPenalty);
}

TEST(HierarchyTlb, SeparateInstructionAndDataTlbs)
{
    HierarchyParams p = tinyParams();
    p.tlbEntries = 8;
    MemoryHierarchy h(p);
    h.access(0x8000, AccessType::Load, Owner::App, 0);
    // Fetching from the same page still misses the I-TLB.
    auto fetch =
        h.access(0x8000, AccessType::InstFetch, Owner::App, 0);
    EXPECT_TRUE(fetch.tlbMiss);
    EXPECT_EQ(h.itlb()->stats().totalMisses(), 1u);
    EXPECT_EQ(h.dtlb()->stats().totalMisses(), 1u);
}

TEST(HierarchyTlb, CapacityEviction)
{
    HierarchyParams p = tinyParams();
    p.tlbEntries = 4;
    p.tlbAssoc = 4;  // one set
    MemoryHierarchy h(p);
    for (Addr page = 0; page < 5; ++page)
        h.access(page * 4096, AccessType::Load, Owner::App, 0);
    // Page 0 was evicted by page 4.
    auto res = h.access(0, AccessType::Load, Owner::App, 0);
    EXPECT_TRUE(res.tlbMiss);
}

TEST(HierarchyTlb, DisabledWhenZeroEntries)
{
    HierarchyParams p = tinyParams();
    p.tlbEntries = 0;
    MemoryHierarchy h(p);
    EXPECT_EQ(h.itlb(), nullptr);
    EXPECT_EQ(h.dtlb(), nullptr);
    auto res = h.access(0x8000, AccessType::Load, Owner::App, 0);
    EXPECT_FALSE(res.tlbMiss);
}

TEST(HierarchyTlb, FootprintInstallWarmsTlb)
{
    HierarchyParams p = tinyParams();
    p.tlbEntries = 8;
    MemoryHierarchy h(p);
    h.installLine(0x9000, false, Owner::Os);
    auto res = h.access(0x9000, AccessType::Load, Owner::App, 0);
    EXPECT_FALSE(res.tlbMiss);
}

TEST(HierarchyPrefetch, NextLinePrefetchFillsL2)
{
    HierarchyParams p = tinyParams();
    p.l2NextLinePrefetch = true;
    MemoryHierarchy h(p);
    h.access(0x10000, AccessType::Load, Owner::App, 0);
    // The next line was prefetched: L1 misses but L2 hits.
    auto res =
        h.access(0x10040, AccessType::Load, Owner::App, 10000);
    EXPECT_TRUE(res.l1Miss);
    EXPECT_FALSE(res.l2Miss);
}

TEST(HierarchyPrefetch, StreamingMissesHalveWithPrefetch)
{
    HierarchyParams base = tinyParams();
    HierarchyParams pf = tinyParams();
    pf.l2NextLinePrefetch = true;
    MemoryHierarchy plain(base);
    MemoryHierarchy pref(pf);
    for (Addr a = 0x100000; a < 0x140000; a += 64) {
        plain.access(a, AccessType::Load, Owner::App, 0);
        pref.access(a, AccessType::Load, Owner::App, 0);
    }
    EXPECT_LT(pref.counts().l2Misses,
              plain.counts().l2Misses / 2 + 16);
}

} // namespace
} // namespace osp
