/** @file Unit and property tests for the set-associative cache. */

#include <gtest/gtest.h>

#include <vector>

#include "mem/cache.hh"
#include "util/random.hh"

namespace osp
{
namespace
{

CacheParams
smallCache(std::uint64_t size = 1024, std::uint32_t assoc = 2)
{
    CacheParams p;
    p.name = "test";
    p.sizeBytes = size;
    p.assoc = assoc;
    p.lineBytes = 64;
    return p;
}

TEST(Cache, GeometryDerivation)
{
    Cache c(smallCache(16 * 1024, 2));
    EXPECT_EQ(c.numSets(), 128u);
    EXPECT_EQ(c.assoc(), 2u);
    EXPECT_EQ(c.lineBytes(), 64u);
}

TEST(Cache, ColdMissThenHit)
{
    Cache c(smallCache());
    auto first = c.access(0x100, false, Owner::App);
    EXPECT_FALSE(first.hit);
    auto second = c.access(0x100, false, Owner::App);
    EXPECT_TRUE(second.hit);
    // Same line, different byte.
    EXPECT_TRUE(c.access(0x13F, false, Owner::App).hit);
    // Next line misses.
    EXPECT_FALSE(c.access(0x140, false, Owner::App).hit);
}

TEST(Cache, LruEvictionOrder)
{
    // 1KB, 2-way, 64B lines -> 8 sets. Set 0 holds lines with
    // address bits [8:6] == 0: 0x000, 0x200, 0x400...
    Cache c(smallCache());
    c.access(0x000, false, Owner::App);
    c.access(0x200, false, Owner::App);
    // Touch 0x000 so 0x200 is LRU.
    c.access(0x000, false, Owner::App);
    // Fill a third line in the set; it must evict 0x200.
    c.access(0x400, false, Owner::App);
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x200));
    EXPECT_TRUE(c.probe(0x400));
}

TEST(Cache, WritebackOnDirtyEviction)
{
    Cache c(smallCache());
    c.access(0x000, true, Owner::App);   // dirty
    c.access(0x200, false, Owner::App);  // clean
    auto res = c.access(0x400, false, Owner::App);  // evicts 0x000
    EXPECT_TRUE(res.writeback);
    EXPECT_EQ(c.stats().writebacks, 1u);
    // Evicting the clean line must not write back.
    auto res2 = c.access(0x600, false, Owner::App);  // evicts 0x200
    EXPECT_FALSE(res2.writeback);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, PerOwnerStats)
{
    Cache c(smallCache());
    c.access(0x000, false, Owner::App);
    c.access(0x000, false, Owner::App);
    c.access(0x040, false, Owner::Os);
    const auto &s = c.stats();
    EXPECT_EQ(s.accesses[static_cast<int>(Owner::App)], 2u);
    EXPECT_EQ(s.misses[static_cast<int>(Owner::App)], 1u);
    EXPECT_EQ(s.accesses[static_cast<int>(Owner::Os)], 1u);
    EXPECT_EQ(s.misses[static_cast<int>(Owner::Os)], 1u);
    EXPECT_DOUBLE_EQ(s.missRateFor(Owner::App), 0.5);
}

TEST(Cache, CrossEvictionDetected)
{
    Cache c(smallCache());
    c.access(0x000, false, Owner::App);
    c.access(0x200, false, Owner::App);
    auto res = c.access(0x400, false, Owner::Os);
    EXPECT_TRUE(res.crossEviction);
    EXPECT_EQ(c.stats().crossEvictions, 1u);
}

TEST(Cache, FlushInvalidatesKeepsStats)
{
    Cache c(smallCache());
    c.access(0x000, false, Owner::App);
    c.flush();
    EXPECT_FALSE(c.probe(0x000));
    EXPECT_EQ(c.stats().totalMisses(), 1u);
    EXPECT_FALSE(c.access(0x000, false, Owner::App).hit);
}

TEST(Cache, ResidentLinesPerOwner)
{
    Cache c(smallCache());
    c.access(0x000, false, Owner::App);
    c.access(0x040, false, Owner::Os);
    c.access(0x080, false, Owner::Os);
    EXPECT_EQ(c.residentLines(Owner::App), 1u);
    EXPECT_EQ(c.residentLines(Owner::Os), 2u);
}

TEST(Cache, OwnershipFollowsLastFiller)
{
    Cache c(smallCache());
    c.access(0x000, false, Owner::App);
    // A hit by the OS does not change ownership (fill ownership).
    c.access(0x000, false, Owner::Os);
    EXPECT_EQ(c.residentLines(Owner::App), 1u);
}

TEST(Cache, BadGeometryDies)
{
    CacheParams p = smallCache();
    p.sizeBytes = 1000;  // not a multiple of line*assoc
    EXPECT_DEATH(Cache c(p), "size");
    CacheParams q = smallCache();
    q.lineBytes = 48;
    EXPECT_DEATH(Cache c(q), "power of two");
    CacheParams r = smallCache();
    r.assoc = 0;
    EXPECT_DEATH(Cache c(r), "associativity");
}

TEST(Cache, PollutionInvalidateAppPrefersAppLru)
{
    Cache c(smallCache(128, 2));  // 1 set, 2 ways
    c.access(0x000, false, Owner::App);
    c.access(0x040, false, Owner::App);
    // Full set, both app lines; 0x000 is LRU.
    std::uint64_t n =
        c.pollute(1, Cache::PollutionMode::InvalidateApp);
    EXPECT_EQ(n, 1u);
    EXPECT_FALSE(c.probe(0x000));
    EXPECT_TRUE(c.probe(0x040));
}

TEST(Cache, PollutionInvalidateAppSkipsOsOnlySets)
{
    Cache c(smallCache(128, 2));
    c.access(0x000, false, Owner::Os);
    c.access(0x040, false, Owner::Os);
    EXPECT_EQ(c.pollute(8, Cache::PollutionMode::InvalidateApp), 0u);
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_TRUE(c.probe(0x040));
}

TEST(Cache, PollutionInvalidateAppNoOpOnInvalidSlot)
{
    // Sec. 4.5: a set with an invalid line yields no victim.
    Cache c(smallCache(128, 2));
    c.access(0x000, false, Owner::App);  // one way still invalid
    EXPECT_EQ(c.pollute(8, Cache::PollutionMode::InvalidateApp), 0u);
    EXPECT_TRUE(c.probe(0x000));
}

TEST(Cache, PollutionInvalidateAnyTakesOsVictims)
{
    Cache c(smallCache(128, 2));
    c.access(0x000, false, Owner::Os);
    c.access(0x040, false, Owner::Os);
    EXPECT_EQ(c.pollute(1, Cache::PollutionMode::InvalidateAny), 1u);
    EXPECT_EQ(c.residentLines(Owner::Os), 1u);
}

TEST(Cache, PollutionInstallKeepsSetsFull)
{
    Cache c(smallCache(128, 2));
    c.access(0x000, false, Owner::App);
    c.access(0x040, false, Owner::App);
    std::uint64_t n = c.pollute(4, Cache::PollutionMode::Install);
    EXPECT_EQ(n, 4u);
    // Set still has 2 valid lines, now synthetic OS lines.
    EXPECT_EQ(c.residentLines(Owner::App) +
                  c.residentLines(Owner::Os),
              2u);
    EXPECT_EQ(c.stats().injectedEvictions, 4u);
}

TEST(Cache, PollutionInstallFillsInvalidSlots)
{
    Cache c(smallCache(128, 2));
    EXPECT_EQ(c.pollute(2, Cache::PollutionMode::Install), 2u);
    EXPECT_EQ(c.residentLines(Owner::Os), 2u);
    // Regression: filling an empty slot is not an eviction — it
    // used to be reported as one.
    EXPECT_EQ(c.stats().injectedEvictions, 0u);
    EXPECT_EQ(c.stats().injectedFills, 2u);
}

TEST(Cache, PollutionInvalidateClampsToLiveLines)
{
    // Regression: an invalidation request larger than the resident
    // population used to keep drawing (and burning RNG state) on
    // guaranteed no-op draws. Now the count clamps up front and the
    // return value reports what actually happened.
    Cache c(smallCache(1024, 2));  // 8 sets, 16 lines
    c.access(0x000, false, Owner::App);
    c.access(0x040, false, Owner::App);
    c.access(0x080, false, Owner::Os);

    std::uint64_t n =
        c.pollute(1000, Cache::PollutionMode::InvalidateAny);
    // At most the 3 resident lines can go; no over-reporting.
    EXPECT_LE(n, 3u);
    EXPECT_EQ(c.stats().injectedEvictions, n);
    EXPECT_EQ(c.residentLines(Owner::App) +
                  c.residentLines(Owner::Os),
              3u - n);
}

TEST(Cache, PollutionInvalidateAppClampsToAppLines)
{
    Cache c(smallCache(1024, 2));
    c.access(0x000, false, Owner::App);
    for (int i = 0; i < 8; ++i)
        c.access(0x040ULL + 0x40 * i, false, Owner::Os);

    std::uint64_t n =
        c.pollute(500, Cache::PollutionMode::InvalidateApp);
    // Only the single app line is eligible.
    EXPECT_LE(n, 1u);
    EXPECT_EQ(c.residentLines(Owner::Os), 8u);
    EXPECT_EQ(c.residentLines(Owner::App), 1u - n);
}

TEST(Cache, PollutionOnEmptyCacheIsNoOpForInvalidation)
{
    Cache c(smallCache(1024, 2));
    EXPECT_EQ(c.pollute(64, Cache::PollutionMode::InvalidateAny),
              0u);
    EXPECT_EQ(c.pollute(64, Cache::PollutionMode::InvalidateApp),
              0u);
    EXPECT_EQ(c.stats().injectedEvictions, 0u);
}

TEST(Cache, ResidentLineCountsTrackStateChanges)
{
    Cache c(smallCache(128, 2));
    EXPECT_EQ(c.residentLines(), 0u);
    c.access(0x000, false, Owner::App);
    c.access(0x040, false, Owner::Os);
    EXPECT_EQ(c.residentLines(Owner::App), 1u);
    EXPECT_EQ(c.residentLines(Owner::Os), 1u);
    EXPECT_EQ(c.residentLines(), 2u);
    // Demand eviction of the app LRU line by an OS miss.
    c.access(0x080, false, Owner::Os);
    EXPECT_EQ(c.residentLines(Owner::App), 0u);
    EXPECT_EQ(c.residentLines(Owner::Os), 2u);
    c.flush();
    EXPECT_EQ(c.residentLines(), 0u);
}

TEST(Cache, InstallCountsFillsNotEvictionsOnInvalidSlots)
{
    Cache c(smallCache(128, 2));
    EXPECT_TRUE(c.install(0x000, Owner::Os));
    EXPECT_EQ(c.stats().injectedFills, 1u);
    EXPECT_EQ(c.stats().injectedEvictions, 0u);
    // Displacing a valid line is an eviction.
    c.install(0x040, Owner::Os);
    c.install(0x080, Owner::Os);
    EXPECT_EQ(c.stats().injectedFills, 3u);
    EXPECT_EQ(c.stats().injectedEvictions, 1u);
}

TEST(Cache, InstallResidencyAndRefresh)
{
    Cache c(smallCache(128, 2));
    EXPECT_TRUE(c.install(0x000, Owner::Os));   // fill
    EXPECT_FALSE(c.install(0x000, Owner::Os));  // refresh
    EXPECT_TRUE(c.probe(0x000));
    // Install never counts demand accesses.
    EXPECT_EQ(c.stats().totalAccesses(), 0u);
}

TEST(Cache, InstallRefreshesLruOrder)
{
    Cache c(smallCache(128, 2));
    c.access(0x000, false, Owner::App);
    c.access(0x040, false, Owner::App);
    c.install(0x000, Owner::Os);  // refresh: now 0x040 is LRU
    c.access(0x080, false, Owner::App);
    EXPECT_TRUE(c.probe(0x000));
    EXPECT_FALSE(c.probe(0x040));
}

TEST(Cache, RandomReplacementStaysInSet)
{
    CacheParams p = smallCache(256, 4);  // 1 set, 4 ways
    p.repl = ReplPolicy::Random;
    Cache c(p);
    for (Addr a = 0; a < 64 * 64; a += 64)
        c.access(a, false, Owner::App);
    EXPECT_EQ(c.residentLines(Owner::App), 4u);
}

/** LRU stack property: with identical sets, a larger associativity
 *  never misses more on the same trace. */
class LruStackProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(LruStackProperty, MoreWaysNeverMoreMisses)
{
    int seed = GetParam();
    Pcg32 rng(seed);
    std::vector<Addr> trace;
    for (int i = 0; i < 4000; ++i)
        trace.push_back(64ULL * rng.range(256));

    std::uint64_t prev_misses = ~0ULL;
    for (std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
        // Fix the set count (16) while growing ways.
        CacheParams p = smallCache(
            static_cast<std::uint64_t>(16) * 64 * assoc, assoc);
        Cache c(p);
        for (Addr a : trace)
            c.access(a, false, Owner::App);
        EXPECT_LE(c.stats().totalMisses(), prev_misses);
        prev_misses = c.stats().totalMisses();
    }
}

INSTANTIATE_TEST_SUITE_P(Traces, LruStackProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

/** Bigger caches (more sets) never miss more on a random trace
 *  than a same-associativity smaller cache? Not a theorem for
 *  set-indexed caches in general, but holds for uniform random
 *  traces; we assert it statistically with margin. */
TEST(Cache, LargerCacheFewerMissesOnRandomTrace)
{
    Pcg32 rng(77);
    std::vector<Addr> trace;
    for (int i = 0; i < 20000; ++i)
        trace.push_back(64ULL * rng.range(2048));
    std::uint64_t small_misses = 0;
    std::uint64_t large_misses = 0;
    {
        Cache c(smallCache(16 * 1024, 4));
        for (Addr a : trace)
            c.access(a, false, Owner::App);
        small_misses = c.stats().totalMisses();
    }
    {
        Cache c(smallCache(64 * 1024, 4));
        for (Addr a : trace)
            c.access(a, false, Owner::App);
        large_misses = c.stats().totalMisses();
    }
    EXPECT_LT(large_misses, small_misses);
}

/** flush() must rewind the LRU clock, the MRU memos and the
 *  synthetic-tag allocator: a flushed cache replays a subsequent
 *  access script exactly like a freshly constructed one. (The
 *  script avoids pollute(): the replacement RNG deliberately
 *  survives flush, so RNG-consuming ops would diverge by design.) */
TEST(Cache, FlushResetsReplacementStateDeterministically)
{
    auto script = [](Cache &c) {
        std::vector<bool> hits;
        Pcg32 rng(99);
        for (int i = 0; i < 3000; ++i) {
            Addr a = 64ULL * rng.range(96);
            hits.push_back(c.access(a, i % 3 == 0, Owner::App).hit);
            if (i % 7 == 0)
                c.install(64ULL * rng.range(96), Owner::Os);
        }
        return hits;
    };

    Cache fresh(smallCache(4 * 1024, 4));
    auto want = script(fresh);

    Cache used(smallCache(4 * 1024, 4));
    // Heavy non-RNG use: advance the LRU clock and MRU memos far
    // from their initial values before flushing.
    for (int i = 0; i < 5000; ++i)
        used.access(64ULL * (i % 256), i % 2 == 0, Owner::Os);
    used.flush();
    EXPECT_EQ(used.residentLines(), 0u);

    auto got = script(used);
    EXPECT_EQ(got, want);
    EXPECT_EQ(used.residentLines(), fresh.residentLines());
    EXPECT_EQ(used.residentLines(Owner::App),
              fresh.residentLines(Owner::App));
}

/** InvalidateAny on a completely full cache: every draw lands on a
 *  full set, so each invalidates exactly one victim. */
TEST(Cache, PollutionInvalidateAnyOnFullCache)
{
    Cache c(smallCache(8 * 1024, 4));  // 32 sets x 4 ways
    const std::uint64_t cap = 128;
    for (std::uint64_t i = 0; i < cap; ++i)
        c.access(64 * i, false, Owner::App);
    ASSERT_EQ(c.residentLines(), cap);

    std::uint64_t n = c.pollute(1 << 20,
                                Cache::PollutionMode::InvalidateAny);
    EXPECT_GE(n, 1u);
    EXPECT_LE(n, cap);
    EXPECT_EQ(c.residentLines(), cap - n);
    EXPECT_EQ(c.stats().injectedEvictions, n);
}

/** InvalidateApp with zero app-owned lines resident clamps to zero
 *  before any RNG draw: a free no-op regardless of request size. */
TEST(Cache, PollutionInvalidateAppZeroAppLinesIsFreeNoOp)
{
    Cache c(smallCache(4 * 1024, 4));
    for (std::uint64_t i = 0; i < 16; ++i)
        c.access(64 * i, false, Owner::Os);
    ASSERT_EQ(c.residentLines(Owner::Os), 16u);

    std::uint64_t n = c.pollute(1ULL << 40,
                                Cache::PollutionMode::InvalidateApp);
    EXPECT_EQ(n, 0u);
    EXPECT_EQ(c.residentLines(Owner::Os), 16u);
    EXPECT_EQ(c.stats().injectedEvictions, 0u);
}

/** Synthetic Install lines must never hit for realistic addresses,
 *  under the compact tag layout included. */
TEST(Cache, PollutionInstallSyntheticLinesNeverHit)
{
    CacheParams p = smallCache(2 * 64, 2);  // one set, two ways
    Cache c(p);
    ASSERT_EQ(c.numSets(), 1u);
    std::uint64_t n =
        c.pollute(2, Cache::PollutionMode::Install);
    EXPECT_EQ(n, 2u);
    EXPECT_EQ(c.residentLines(Owner::Os), 2u);

    // Any address below the synthetic-tag range (addr >> 6 < 2^52)
    // must miss against both synthetic lines.
    for (Addr a : {Addr(0), Addr(0x1000), Addr(0xdeadbe00),
                   (Addr(1) << 48) + 64}) {
        EXPECT_FALSE(c.probe(a)) << "addr " << a;
    }
    EXPECT_FALSE(c.access(0x2000, false, Owner::App).hit);
}

} // namespace
} // namespace osp
