/** @file Tests for the accuracy ledger: error accumulation,
 *  Student-t confidence intervals, drift detection, snapshot
 *  determinism, and the error-budget rollup. */

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "obs/accuracy.hh"
#include "stats/student_t.hh"

namespace osp::obs
{
namespace
{

AuditSample
cycleSample(double predicted, double actual, bool failed = false)
{
    AuditSample s;
    s.predictedCycles = predicted;
    s.actualCycles = actual;
    s.failed = failed;
    return s;
}

TEST(AccuracyCi95, MatchesHandComputedStudentT)
{
    // Two samples +-0.10: mean 0, sample stddev 0.1*sqrt(2),
    // ci = t(1, .025) * s / sqrt(2) = 12.706 * 0.1.
    RunningStats err;
    err.add(0.10);
    err.add(-0.10);
    EXPECT_NEAR(accuracyCi95(err),
                studentTCritical(1, 0.025) * 0.1, 1e-12);
    // Fewer than two samples: no interval.
    RunningStats one;
    one.add(0.10);
    EXPECT_EQ(accuracyCi95(one), 0.0);
    EXPECT_EQ(accuracyCi95(RunningStats{}), 0.0);
}

TEST(AccuracyLedger, AuditAccumulatesSignedRelativeErrors)
{
    AccuracyLedger ledger;
    // +10% then -10% cycle error.
    ledger.noteAudit(1, 0, cycleSample(110.0, 100.0));
    ledger.noteAudit(1, 0, cycleSample(90.0, 100.0, true));

    AccuracySnapshot snap = ledger.snapshot();
    ASSERT_EQ(snap.entries.size(), 1u);
    const AccuracyEntry &e = snap.entries[0];
    EXPECT_EQ(e.service, 1);
    EXPECT_EQ(e.cluster, 0u);
    EXPECT_EQ(e.audits, 2u);
    EXPECT_EQ(e.auditFailures, 1u);
    EXPECT_EQ(e.errCount, 2u);
    EXPECT_NEAR(e.errMean, 0.0, 1e-12);
    EXPECT_NEAR(e.errMin, -0.10, 1e-12);
    EXPECT_NEAR(e.errMax, 0.10, 1e-12);
    ASSERT_TRUE(e.hasCi);
    EXPECT_NEAR(e.ci95, studentTCritical(1, 0.025) * 0.1, 1e-12);
    // Mean CI straddles zero: no drift at any sane tolerance.
    EXPECT_FALSE(e.drift);

    // The moments round-trip through the serializable form.
    RunningStats back = e.errStats();
    EXPECT_EQ(back.count(), 2u);
    EXPECT_NEAR(back.sampleStddev(), 0.1 * std::sqrt(2.0), 1e-12);
}

TEST(AccuracyLedger, ZeroDenominatorsAreSkipped)
{
    AccuracyLedger ledger;
    AuditSample s = cycleSample(50.0, 0.0);
    s.predictedL2Misses = 5.0;
    s.actualL2Misses = 0.0;
    s.predictedIpc = 1.0;
    s.actualIpc = 0.0;
    ledger.noteAudit(0, 0, s);
    AccuracySnapshot snap = ledger.snapshot();
    ASSERT_EQ(snap.entries.size(), 1u);
    EXPECT_EQ(snap.entries[0].audits, 1u);
    EXPECT_EQ(snap.entries[0].errCount, 0u);
    EXPECT_EQ(snap.entries[0].missCount, 0u);
    EXPECT_EQ(snap.entries[0].ipcCount, 0u);
    EXPECT_FALSE(snap.entries[0].hasCi);
}

TEST(AccuracyLedger, DriftFlagsCiOutsideToleranceBand)
{
    AccuracyLedger ledger;
    ledger.setTolerance(0.05);
    // Consistent +50% error: CI [~0.38, ~0.64] excludes +-5%.
    ledger.noteAudit(2, 1, cycleSample(150.0, 100.0));
    ledger.noteAudit(2, 1, cycleSample(152.0, 100.0));
    // Noisy but centred cluster: no drift.
    ledger.noteAudit(2, 2, cycleSample(140.0, 100.0));
    ledger.noteAudit(2, 2, cycleSample(60.0, 100.0));

    AccuracySnapshot snap = ledger.snapshot();
    ASSERT_EQ(snap.entries.size(), 2u);
    EXPECT_TRUE(snap.entries[0].drift);
    EXPECT_FALSE(snap.entries[1].drift);

    // Symmetric: a confidently negative mean drifts too.
    AccuracyLedger low;
    low.setTolerance(0.05);
    low.noteAudit(0, 0, cycleSample(50.0, 100.0));
    low.noteAudit(0, 0, cycleSample(52.0, 100.0));
    EXPECT_TRUE(low.snapshot().entries[0].drift);
}

TEST(AccuracyLedger, SnapshotSortedByServiceThenCluster)
{
    AccuracyLedger ledger;
    ledger.notePrediction(3, 2, 10, false);
    ledger.notePrediction(1, 5, 10, false);
    ledger.notePrediction(1, 1, 10, true);
    ledger.notePrediction(3, 0, 10, false);
    ledger.notePrediction(2, accuracyNoCluster, 0, true);

    AccuracySnapshot snap = ledger.snapshot();
    ASSERT_EQ(snap.entries.size(), 5u);
    const char *expect[] = {"1/1", "1/5", "2/-", "3/0", "3/2"};
    for (std::size_t i = 0; i < 5; ++i) {
        std::string got =
            std::to_string(snap.entries[i].service) + "/" +
            (snap.entries[i].cluster == accuracyNoCluster
                 ? "-"
                 : std::to_string(snap.entries[i].cluster));
        EXPECT_EQ(got, expect[i]) << "entry " << i;
    }
    EXPECT_EQ(snap.entries[0].outlierPredictions, 1u);
}

TEST(AccuracyRollup, EstimateScalesByPredictedShare)
{
    AccuracyLedger ledger;
    // 600 of 1000 cycles predicted, all audits read +10% error.
    ledger.notePrediction(1, 0, 600, false);
    ledger.noteAudit(1, 0, cycleSample(110.0, 100.0));
    ledger.noteAudit(1, 0, cycleSample(110.0, 100.0));
    ledger.noteRunTotals(1000, 600);

    AccuracyRollup roll = rollupAccuracy(ledger.snapshot());
    EXPECT_EQ(roll.predictions, 1u);
    EXPECT_EQ(roll.audits, 2u);
    EXPECT_EQ(roll.predictedCycles, 600u);
    ASSERT_TRUE(roll.hasEstimate);
    EXPECT_NEAR(roll.estRelTotalErr, 0.10 * 0.6, 1e-12);
    // Zero dispersion: both CI terms vanish.
    ASSERT_TRUE(roll.hasCi);
    EXPECT_NEAR(roll.estCi95, 0.0, 1e-12);
}

TEST(AccuracyRollup, EstimateCiCoversUnauditedShare)
{
    AccuracyLedger ledger;
    ledger.notePrediction(1, 0, 500, false);
    ledger.noteAudit(1, 0, cycleSample(110.0, 100.0));
    ledger.noteAudit(1, 0, cycleSample(90.0, 100.0));
    ledger.noteRunTotals(1000, 500);

    AccuracyRollup roll = rollupAccuracy(ledger.snapshot());
    ASSERT_TRUE(roll.hasEstimate);
    // share * ci  +  (1 - share) * sample stddev
    double s = 0.1 * std::sqrt(2.0);
    double expected = 0.5 * accuracyCi95(roll.err) + 0.5 * s;
    EXPECT_NEAR(roll.estCi95, expected, 1e-12);
}

TEST(AccuracyRollup, UnauditedClustersAreUnattributed)
{
    AccuracyLedger ledger;
    ledger.notePrediction(1, 0, 600, false);
    ledger.notePrediction(2, 0, 400, false);
    ledger.noteAudit(1, 0, cycleSample(110.0, 100.0));

    AccuracyRollup roll = rollupAccuracy(ledger.snapshot());
    EXPECT_EQ(roll.predictedCycles, 1000u);
    EXPECT_EQ(roll.unattributedCycles, 400u);
    // No run totals noted: no end-to-end estimate.
    EXPECT_FALSE(roll.hasEstimate);
}

TEST(AccuracyRollup, MergesErrorStatsAcrossEntries)
{
    AccuracyLedger ledger;
    ledger.setTolerance(0.05);
    ledger.noteAudit(1, 0, cycleSample(150.0, 100.0));
    ledger.noteAudit(1, 0, cycleSample(152.0, 100.0));
    ledger.noteAudit(2, 0, cycleSample(148.0, 100.0));
    ledger.noteAudit(2, 0, cycleSample(150.0, 100.0));

    AccuracyRollup roll = rollupAccuracy(ledger.snapshot());
    EXPECT_EQ(roll.err.count(), 4u);
    EXPECT_NEAR(roll.err.mean(), 0.50, 1e-12);
    EXPECT_EQ(roll.driftingClusters, 2u);
}

TEST(AccuracyLedger, EmptyUntilFed)
{
    AccuracyLedger ledger;
    EXPECT_TRUE(ledger.empty());
    EXPECT_TRUE(ledger.snapshot().empty());
    ledger.noteRunTotals(100, 0);
    EXPECT_TRUE(ledger.empty());  // totals alone create no entries
    ledger.notePrediction(0, 0, 1, false);
    EXPECT_FALSE(ledger.empty());
}

} // namespace
} // namespace osp::obs
