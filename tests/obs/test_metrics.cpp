/** @file Tests for the telemetry metrics registry: instrument
 *  behaviour, pointer stability, snapshot determinism, and the
 *  cross-type registration guard. */

#include <gtest/gtest.h>

#include "obs/metrics.hh"

namespace osp::obs
{
namespace
{

TEST(Counter, IncrementsByOneAndByN)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
}

TEST(Gauge, SetOverwrites)
{
    Gauge g;
    g.set(3.5);
    g.set(-1.25);
    EXPECT_DOUBLE_EQ(g.value(), -1.25);
}

TEST(Histogram, BucketsByBitWidth)
{
    EXPECT_EQ(Histogram::bucketOf(0), 0u);
    EXPECT_EQ(Histogram::bucketOf(1), 1u);
    EXPECT_EQ(Histogram::bucketOf(2), 2u);
    EXPECT_EQ(Histogram::bucketOf(3), 2u);
    EXPECT_EQ(Histogram::bucketOf(4), 3u);
    EXPECT_EQ(Histogram::bucketOf(~0ULL), 64u);

    EXPECT_EQ(Histogram::bucketLow(0), 0u);
    EXPECT_EQ(Histogram::bucketLow(1), 1u);
    EXPECT_EQ(Histogram::bucketLow(5), 16u);

    // Every value lands in the bucket whose range contains it.
    for (std::size_t i = 1; i < Histogram::numBuckets; ++i) {
        std::uint64_t low = Histogram::bucketLow(i);
        EXPECT_EQ(Histogram::bucketOf(low), i);
        if (i + 1 < Histogram::numBuckets) {
            EXPECT_EQ(Histogram::bucketOf(2 * low - 1), i);
        }
    }
}

TEST(Histogram, ObserveTracksCountSumOccupancy)
{
    Histogram h;
    h.observe(0);
    h.observe(5);
    h.observe(7);
    h.observe(1000);
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.sum(), 1012u);
    EXPECT_EQ(h.bucket(0), 1u);   // 0
    EXPECT_EQ(h.bucket(3), 2u);   // 5, 7 in [4, 7]
    EXPECT_EQ(h.bucket(10), 1u);  // 1000 in [512, 1023]
}

TEST(Registry, ReturnsStableInstrumentReferences)
{
    Registry reg;
    Counter &a = reg.counter("machine", "ops");
    a.inc(3);
    // Later registrations must not move existing instruments.
    for (int i = 0; i < 64; ++i)
        reg.counter("c" + std::to_string(i), "n");
    Counter &again = reg.counter("machine", "ops");
    EXPECT_EQ(&a, &again);
    EXPECT_EQ(again.value(), 3u);
}

TEST(Registry, SnapshotIsSortedRegardlessOfRegistrationOrder)
{
    // Two registries populated in opposite orders must snapshot
    // identically — the root of the results document's thread-count
    // byte-invariance.
    Registry fwd;
    fwd.counter("a", "x").inc(1);
    fwd.counter("b", "y").inc(2);
    fwd.gauge("a", "g").set(0.5);

    Registry rev;
    rev.gauge("a", "g").set(0.5);
    rev.counter("b", "y").inc(2);
    rev.counter("a", "x").inc(1);

    MetricsSnapshot s1 = fwd.snapshot();
    MetricsSnapshot s2 = rev.snapshot();
    ASSERT_EQ(s1.counters.size(), 2u);
    EXPECT_EQ(s1.counters[0].component, "a");
    EXPECT_EQ(s1.counters[1].component, "b");
    ASSERT_EQ(s2.counters.size(), 2u);
    for (std::size_t i = 0; i < s1.counters.size(); ++i) {
        EXPECT_EQ(s1.counters[i].component,
                  s2.counters[i].component);
        EXPECT_EQ(s1.counters[i].name, s2.counters[i].name);
        EXPECT_EQ(s1.counters[i].value, s2.counters[i].value);
    }
    EXPECT_EQ(s1.gauges.size(), 1u);
    EXPECT_EQ(s2.gauges.size(), 1u);
}

TEST(Registry, SnapshotListsOnlyOccupiedHistogramBuckets)
{
    Registry reg;
    Histogram &h = reg.histogram("m", "sizes");
    h.observe(6);
    h.observe(6);
    h.observe(100);

    MetricsSnapshot snap = reg.snapshot();
    ASSERT_EQ(snap.histograms.size(), 1u);
    const HistogramEntry &e = snap.histograms[0];
    EXPECT_EQ(e.count, 3u);
    EXPECT_EQ(e.sum, 112u);
    ASSERT_EQ(e.buckets.size(), 2u);
    EXPECT_EQ(e.buckets[0].first, 4u);    // [4, 7]
    EXPECT_EQ(e.buckets[0].second, 2u);
    EXPECT_EQ(e.buckets[1].first, 64u);   // [64, 127]
    EXPECT_EQ(e.buckets[1].second, 1u);
}

TEST(Registry, CounterValueLookup)
{
    Registry reg;
    reg.counter("machine", "ops").inc(9);
    MetricsSnapshot snap = reg.snapshot();
    EXPECT_EQ(snap.counterValue("machine", "ops"), 9u);
    EXPECT_EQ(snap.counterValue("machine", "absent"), 0u);
    EXPECT_FALSE(snap.empty());
    EXPECT_TRUE(MetricsSnapshot{}.empty());
}

TEST(Registry, CrossTypeRegistrationPanics)
{
    Registry reg;
    reg.counter("m", "x");
    EXPECT_DEATH(reg.gauge("m", "x"), "");
    EXPECT_DEATH(reg.histogram("m", "x"), "");
}

TEST(Registry, SizeCountsAllInstrumentTypes)
{
    Registry reg;
    EXPECT_EQ(reg.size(), 0u);
    reg.counter("a", "c");
    reg.gauge("a", "g");
    reg.histogram("a", "h");
    reg.counter("a", "c");  // re-lookup, not a new instrument
    EXPECT_EQ(reg.size(), 3u);
}

} // namespace
} // namespace osp::obs
