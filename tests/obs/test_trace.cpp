/** @file Tests for the bounded event tracer: disabled mode, ring
 *  overflow semantics, tick stamping, and kind names. */

#include <gtest/gtest.h>

#include "obs/telemetry.hh"
#include "obs/trace.hh"

namespace osp::obs
{
namespace
{

TEST(EventTracer, ZeroCapacityIsDisabled)
{
    EventTracer t(0);
    EXPECT_FALSE(t.enabled());
    t.record(TraceEventKind::Outlier, 3, 1, 2);
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_TRUE(t.events().empty());
}

TEST(EventTracer, RecordsStampTickAndPayload)
{
    EventTracer t(8);
    t.setTick(1000);
    t.record(TraceEventKind::ServiceDetailed, 2, 50, 170);
    t.setTick(1050);
    t.record(TraceEventKind::ClusterMatch, 2, 4, 50);

    auto events = t.events();
    ASSERT_EQ(events.size(), 2u);
    EXPECT_EQ(events[0].tick, 1000u);
    EXPECT_EQ(events[0].kind, TraceEventKind::ServiceDetailed);
    EXPECT_EQ(events[0].service, 2);
    EXPECT_EQ(events[0].a, 50u);
    EXPECT_EQ(events[0].b, 170u);
    EXPECT_EQ(events[1].tick, 1050u);
    EXPECT_EQ(events[1].kind, TraceEventKind::ClusterMatch);
}

TEST(EventTracer, OverflowDropsOldestKeepsOrder)
{
    EventTracer t(4);
    for (std::uint64_t i = 0; i < 10; ++i) {
        t.setTick(i);
        t.record(TraceEventKind::Outlier, traceNoService, i, 0);
    }
    EXPECT_EQ(t.recorded(), 10u);
    EXPECT_EQ(t.dropped(), 6u);

    // Retained: the last four, oldest first.
    auto events = t.events();
    ASSERT_EQ(events.size(), 4u);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(events[i].tick, 6 + i);
        EXPECT_EQ(events[i].a, 6 + i);
    }
}

TEST(EventTracer, ExactCapacityDropsNothing)
{
    EventTracer t(3);
    for (std::uint64_t i = 0; i < 3; ++i)
        t.record(TraceEventKind::Audit, traceNoService, 1, 0);
    EXPECT_EQ(t.recorded(), 3u);
    EXPECT_EQ(t.dropped(), 0u);
    EXPECT_EQ(t.events().size(), 3u);
}

TEST(EventTracer, KindNamesAreDistinct)
{
    const TraceEventKind kinds[] = {
        TraceEventKind::ServiceDetailed,
        TraceEventKind::ServicePredicted,
        TraceEventKind::ClusterMatch,
        TraceEventKind::Outlier,
        TraceEventKind::ModeTransition,
        TraceEventKind::Relearn,
        TraceEventKind::Audit,
        TraceEventKind::Pollution,
    };
    for (TraceEventKind a : kinds) {
        ASSERT_NE(traceEventKindName(a), nullptr);
        EXPECT_STRNE(traceEventKindName(a), "?");
        for (TraceEventKind b : kinds) {
            if (a != b) {
                EXPECT_STRNE(traceEventKindName(a),
                             traceEventKindName(b));
            }
        }
    }
}

TEST(Telemetry, SummarizeReflectsTracerState)
{
    Telemetry t(2);
    EXPECT_TRUE(t.tracer.enabled());
    t.tracer.record(TraceEventKind::Relearn, 0, 0, 100);
    t.tracer.record(TraceEventKind::Relearn, 0, 1, 100);
    t.tracer.record(TraceEventKind::Relearn, 0, 1, 100);

    TraceSummary s = summarize(t.tracer);
    EXPECT_EQ(s.capacity, 2u);
    EXPECT_EQ(s.recorded, 3u);
    EXPECT_EQ(s.dropped, 1u);

    Telemetry metrics_only;
    EXPECT_FALSE(metrics_only.tracer.enabled());
    EXPECT_EQ(summarize(metrics_only.tracer).capacity, 0u);
}

} // namespace
} // namespace osp::obs
