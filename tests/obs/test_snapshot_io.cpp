/** @file Tests for the shared metrics-snapshot codec
 *  (obs/snapshot_io.hh) and the cross-worker merge semantics of
 *  MetricsSnapshot: byte-stable round-trips (the format is part of
 *  the cell cache's byte-identity contract), strict decode of
 *  malformed documents, counter summing, gauge high-water,
 *  histogram bucket merging, and order preservation under merge. */

#include <gtest/gtest.h>

#include <string>

#include "obs/metrics.hh"
#include "obs/snapshot_io.hh"
#include "util/json.hh"

namespace osp::obs
{
namespace
{

MetricsSnapshot
sampleSnapshot()
{
    Registry reg;
    reg.counter("cache", "hits").inc(7);
    reg.counter("predictor", "transitions").inc(3);
    reg.gauge("plt", "occupancy").set(0.75);
    Histogram &h = reg.histogram("intervals", "length");
    h.observe(0);
    h.observe(1);
    h.observe(5);
    h.observe(5);
    h.observe(1000);
    return reg.snapshot();
}

TEST(SnapshotIo, RoundTripIsByteStable)
{
    MetricsSnapshot snap = sampleSnapshot();
    JsonValue doc = metricsSnapshotToJson(snap);
    std::string bytes = doc.dump(-1);

    MetricsSnapshot back;
    bool ok = false;
    ASSERT_TRUE(metricsSnapshotFromJson(
        JsonValue::parse(bytes, &ok), back));
    ASSERT_TRUE(ok);
    EXPECT_EQ(metricsSnapshotToJson(back).dump(-1), bytes);

    ASSERT_EQ(back.counters.size(), 2u);
    EXPECT_EQ(back.counterValue("cache", "hits"), 7u);
    ASSERT_EQ(back.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(back.gauges[0].value, 0.75);
    const HistogramEntry *h =
        back.findHistogram("intervals", "length");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 5u);
    EXPECT_EQ(h->sum, 1011u);
}

TEST(SnapshotIo, EmptySnapshotRoundTrips)
{
    MetricsSnapshot empty;
    JsonValue doc = metricsSnapshotToJson(empty);
    MetricsSnapshot back;
    ASSERT_TRUE(metricsSnapshotFromJson(doc, back));
    EXPECT_TRUE(back.empty());
}

TEST(SnapshotIo, MalformedDocumentsDecodeFalse)
{
    const char *bad[] = {
        // Counters entry is not a triple.
        R"({"counters":[["c","n"]],"gauges":[],"histograms":[]})",
        // Histogram missing its count field.
        R"({"counters":[],"gauges":[],"histograms":[)"
        R"({"component":"c","name":"n","sum":0,"buckets":[]}]})",
        // Bucket pair is a scalar.
        R"({"counters":[],"gauges":[],"histograms":[)"
        R"({"component":"c","name":"n","count":1,"sum":1,)"
        R"("buckets":[1]}]})",
        // Not an object at all.
        R"([1,2,3])",
    };
    for (const char *text : bad) {
        bool ok = false;
        JsonValue doc = JsonValue::parse(text, &ok);
        ASSERT_TRUE(ok) << text;
        MetricsSnapshot out;
        EXPECT_FALSE(metricsSnapshotFromJson(doc, out)) << text;
    }
}

TEST(SnapshotMerge, CountersSumAndOneSidedCopy)
{
    Registry a;
    a.counter("cache", "hits").inc(5);
    a.counter("cache", "misses").inc(2);
    Registry b;
    b.counter("cache", "hits").inc(3);
    b.counter("store", "commits").inc(9);

    MetricsSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    EXPECT_EQ(merged.counterValue("cache", "hits"), 8u);
    EXPECT_EQ(merged.counterValue("cache", "misses"), 2u);
    EXPECT_EQ(merged.counterValue("store", "commits"), 9u);
    ASSERT_EQ(merged.counters.size(), 3u);
    // Sorted (component, name) order is preserved.
    EXPECT_EQ(merged.counters[0].name, "hits");
    EXPECT_EQ(merged.counters[1].name, "misses");
    EXPECT_EQ(merged.counters[2].component, "store");
}

TEST(SnapshotMerge, GaugesKeepHighWater)
{
    Registry a;
    a.gauge("plt", "occupancy").set(0.25);
    Registry b;
    b.gauge("plt", "occupancy").set(0.75);

    MetricsSnapshot lowFirst = a.snapshot();
    lowFirst.merge(b.snapshot());
    MetricsSnapshot highFirst = b.snapshot();
    highFirst.merge(a.snapshot());
    ASSERT_EQ(lowFirst.gauges.size(), 1u);
    EXPECT_DOUBLE_EQ(lowFirst.gauges[0].value, 0.75);
    // High-water is the order-independent reduction.
    EXPECT_DOUBLE_EQ(highFirst.gauges[0].value, 0.75);
}

TEST(SnapshotMerge, HistogramsMergeBucketLists)
{
    Registry a;
    Histogram &ha = a.histogram("claim_loop", "cell_wall_us");
    ha.observe(0);
    ha.observe(3);  // bucket low 2
    Registry b;
    Histogram &hb = b.histogram("claim_loop", "cell_wall_us");
    hb.observe(2);   // bucket low 2
    hb.observe(70);  // bucket low 64

    MetricsSnapshot merged = a.snapshot();
    merged.merge(b.snapshot());
    const HistogramEntry *h =
        merged.findHistogram("claim_loop", "cell_wall_us");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count, 4u);
    EXPECT_EQ(h->sum, 75u);
    // (0,1), (2,2), (64,1): matching lows added, others spliced in
    // ascending order.
    ASSERT_EQ(h->buckets.size(), 3u);
    EXPECT_EQ(h->buckets[0], (std::pair<std::uint64_t,
                                        std::uint64_t>{0, 1}));
    EXPECT_EQ(h->buckets[1], (std::pair<std::uint64_t,
                                        std::uint64_t>{2, 2}));
    EXPECT_EQ(h->buckets[2], (std::pair<std::uint64_t,
                                        std::uint64_t>{64, 1}));
}

TEST(SnapshotMerge, MergeIntoEmptyCopiesEverything)
{
    MetricsSnapshot merged;
    MetricsSnapshot src = sampleSnapshot();
    merged.merge(src);
    EXPECT_EQ(metricsSnapshotToJson(merged).dump(-1),
              metricsSnapshotToJson(src).dump(-1));
}

} // namespace
} // namespace osp::obs
