/** @file Unit tests for the JSON emitter/parser. */

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <sstream>

#include "util/json.hh"

namespace osp
{
namespace
{

TEST(Json, ScalarDump)
{
    EXPECT_EQ(JsonValue().dump(-1), "null");
    EXPECT_EQ(JsonValue(true).dump(-1), "true");
    EXPECT_EQ(JsonValue(false).dump(-1), "false");
    EXPECT_EQ(JsonValue(std::int64_t(-7)).dump(-1), "-7");
    EXPECT_EQ(JsonValue(std::uint64_t(18446744073709551615ull))
                  .dump(-1),
              "18446744073709551615");
    EXPECT_EQ(JsonValue(std::string("hi")).dump(-1), "\"hi\"");
}

TEST(Json, StringEscapes)
{
    JsonValue v(std::string("a\"b\\c\n\t\x01"));
    EXPECT_EQ(v.dump(-1), "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(Json, DoublesRoundTripShortest)
{
    // Shortest round-trip formatting: 0.1 stays "0.1".
    EXPECT_EQ(JsonValue(0.1).dump(-1), "0.1");
    EXPECT_EQ(JsonValue(2.0).dump(-1), "2");
    // Non-finite doubles are not representable in JSON.
    EXPECT_EQ(
        JsonValue(std::numeric_limits<double>::quiet_NaN()).dump(-1),
        "null");
}

TEST(Json, ObjectPreservesInsertionOrder)
{
    JsonValue obj = JsonValue::object();
    obj.add("zebra", 1);
    obj.add("alpha", 2);
    obj.add("mid", JsonValue::array());
    EXPECT_EQ(obj.dump(-1), "{\"zebra\":1,\"alpha\":2,\"mid\":[]}");
}

TEST(Json, IndentedOutput)
{
    JsonValue obj = JsonValue::object();
    obj.add("a", 1);
    JsonValue arr = JsonValue::array();
    arr.append(true);
    obj.add("b", std::move(arr));
    EXPECT_EQ(obj.dump(2),
              "{\n  \"a\": 1,\n  \"b\": [\n    true\n  ]\n}");
}

TEST(Json, ParseRoundTrip)
{
    JsonValue obj = JsonValue::object();
    obj.add("name", std::string("fig08"));
    obj.add("count", std::int64_t(15));
    obj.add("big", std::uint64_t(1) << 63);
    obj.add("error", 0.032);
    obj.add("ok", true);
    obj.add("nothing", JsonValue());
    JsonValue cells = JsonValue::array();
    for (int i = 0; i < 3; ++i) {
        JsonValue cell = JsonValue::object();
        cell.add("index", i);
        cells.append(std::move(cell));
    }
    obj.add("cells", std::move(cells));

    std::string text = obj.dump(2);
    bool ok = false;
    std::string error;
    JsonValue back = JsonValue::parse(text, &ok, &error);
    ASSERT_TRUE(ok) << error;
    // Re-emitting the parsed tree reproduces the bytes exactly:
    // insertion order, integer width, and double formatting all
    // survive the round trip.
    EXPECT_EQ(back.dump(2), text);
    EXPECT_EQ(back["count"].asInt(), 15);
    EXPECT_EQ(back["big"].asUint(), std::uint64_t(1) << 63);
    EXPECT_DOUBLE_EQ(back["error"].asDouble(), 0.032);
    EXPECT_EQ(back["cells"].size(), 3u);
}

TEST(Json, ParseRejectsMalformed)
{
    bool ok = true;
    JsonValue::parse("{\"a\":1,}", &ok);
    EXPECT_FALSE(ok);
    ok = true;
    JsonValue::parse("[1, 2", &ok);
    EXPECT_FALSE(ok);
    ok = true;
    JsonValue::parse("{} trailing", &ok);
    EXPECT_FALSE(ok);
    ok = true;
    JsonValue::parse("{\"a\":1,\"a\":2}", &ok);
    EXPECT_FALSE(ok);
    ok = true;
    JsonValue::parse("nul", &ok);
    EXPECT_FALSE(ok);
}

TEST(Json, ParseUnicodeEscapes)
{
    bool ok = false;
    JsonValue v = JsonValue::parse("\"\\u0041\\u00e9\"", &ok);
    ASSERT_TRUE(ok);
    EXPECT_EQ(v.asString(), "A\xc3\xa9");
}

TEST(Json, FindAndLookup)
{
    JsonValue obj = JsonValue::object();
    obj.add("x", 1);
    EXPECT_NE(obj.find("x"), nullptr);
    EXPECT_EQ(obj.find("y"), nullptr);
    EXPECT_EQ(obj["x"].asInt(), 1);
}

} // namespace
} // namespace osp
