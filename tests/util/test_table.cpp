/** @file Unit tests for TablePrinter. */

#include <gtest/gtest.h>

#include <sstream>

#include "util/table.hh"

namespace osp
{
namespace
{

TEST(TablePrinter, AlignsColumns)
{
    TablePrinter t({"bench", "speedup"});
    t.addRow({"iperf", "15.6"});
    t.addRow({"ab-rand", "2.8"});
    std::ostringstream oss;
    t.print(oss);
    std::string out = oss.str();
    EXPECT_NE(out.find("bench"), std::string::npos);
    EXPECT_NE(out.find("iperf"), std::string::npos);
    // Header separator present.
    EXPECT_NE(out.find("-----"), std::string::npos);
    // Rows count: header + separator + 2 rows = 4 lines.
    int lines = 0;
    for (char c : out)
        lines += (c == '\n');
    EXPECT_EQ(lines, 4);
}

TEST(TablePrinter, CsvOutput)
{
    TablePrinter t({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream oss;
    t.printCsv(oss);
    EXPECT_EQ(oss.str(), "a,b\n1,2\n");
}

TEST(TablePrinter, FmtPrecision)
{
    EXPECT_EQ(TablePrinter::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(TablePrinter::fmt(2.0, 0), "2");
}

TEST(TablePrinter, PctFormatsFraction)
{
    EXPECT_EQ(TablePrinter::pct(0.032, 1), "3.2%");
    EXPECT_EQ(TablePrinter::pct(1.0, 0), "100%");
}

TEST(TablePrinter, RowCellCountMismatchDies)
{
    TablePrinter t({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "cells");
}

TEST(TablePrinter, NumRows)
{
    TablePrinter t({"x"});
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.numRows(), 2u);
}

} // namespace
} // namespace osp
