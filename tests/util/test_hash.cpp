/** @file Tests for the stable FNV-1a hash: golden values from the
 *  published test vectors (the hash is an on-disk format — these
 *  must never change), streaming equivalence, and the string
 *  separator. tools/check_store.py re-implements the same function
 *  in Python against the same constants. */

#include <gtest/gtest.h>

#include "util/hash.hh"

namespace osp
{
namespace
{

TEST(StableHash, GoldenVectors)
{
    // Published 64-bit FNV-1a reference values.
    EXPECT_EQ(stableHash64(""), 0xcbf29ce484222325ULL);
    EXPECT_EQ(stableHash64("a"), 0xaf63dc4c8601ec8cULL);
    EXPECT_EQ(stableHash64("foobar"), 0x85944171f73967e8ULL);
}

TEST(StableHash, StreamingMatchesOneShot)
{
    StableHash h;
    h.bytes("foo", 3).bytes("bar", 3);
    EXPECT_EQ(h.value(), stableHash64("foobar"));
}

TEST(StableHash, U64IsLittleEndianBytes)
{
    const unsigned char bytes[8] = {0xef, 0xbe, 0xad, 0xde,
                                    0,    0,    0,    0};
    EXPECT_EQ(StableHash().u64(0xdeadbeefULL).value(),
              stableHash64(bytes, 8));
}

TEST(StableHash, StrSeparatorPreventsAliasing)
{
    // Without the terminator, ("ab","c") and ("a","bc") would fold
    // identical byte streams.
    StableHash a, b;
    a.str("ab").str("c");
    b.str("a").str("bc");
    EXPECT_NE(a.value(), b.value());
}

TEST(StableHash, HexIsZeroPadded16Digits)
{
    EXPECT_EQ(StableHash().bytes("", 0).hex(),
              "cbf29ce484222325");
    StableHash h;
    // Force a value with a leading zero nibble to check padding.
    for (int i = 0; i < 256 && (h.value() >> 60) != 0; ++i)
        h.u64(static_cast<std::uint64_t>(i));
    EXPECT_EQ(h.hex().size(), 16u);
}

} // namespace
} // namespace osp
