/** @file Unit tests for the PCG32 generator. */

#include <gtest/gtest.h>

#include <limits>
#include <set>
#include <vector>

#include "util/random.hh"

namespace osp
{
namespace
{

TEST(Pcg32, SameSeedSameSequence)
{
    Pcg32 a(123, 7);
    Pcg32 b(123, 7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(123, 7);
    Pcg32 b(124, 7);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a(123, 7);
    Pcg32 b(123, 8);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Pcg32, ReseedReplays)
{
    Pcg32 a(55, 1);
    std::vector<std::uint32_t> first;
    for (int i = 0; i < 64; ++i)
        first.push_back(a.next());
    a.reseed(55, 1);
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(a.next(), first[i]);
}

TEST(Pcg32, RangeRespectsBound)
{
    Pcg32 rng(9);
    for (std::uint32_t bound : {1u, 2u, 3u, 10u, 255u, 1000u}) {
        for (int i = 0; i < 2000; ++i) {
            std::uint32_t v = rng.range(bound);
            ASSERT_LT(v, bound);
        }
    }
}

TEST(Pcg32, RangeZeroOrOneIsZero)
{
    Pcg32 rng(9);
    EXPECT_EQ(rng.range(0), 0u);
    EXPECT_EQ(rng.range(1), 0u);
}

TEST(Pcg32, RangeCoversAllValues)
{
    Pcg32 rng(11);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.range(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Pcg32, RangeInclusiveBounds)
{
    Pcg32 rng(13);
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.rangeInclusive(3, 6);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 6);
    }
}

TEST(Pcg32, RangeInclusiveWideSpans)
{
    // Regression: spans wider than 2^32 used to be truncated to
    // their low 32 bits, so e.g. [0, 2^32] could only ever return
    // 0 and large spans sampled a tiny sliver of their range.
    Pcg32 rng(47);
    const std::int64_t lo = 0;
    const std::int64_t hi = (1LL << 40) - 1;
    bool above32 = false;
    for (int i = 0; i < 4000; ++i) {
        auto v = rng.rangeInclusive(lo, hi);
        ASSERT_GE(v, lo);
        ASSERT_LE(v, hi);
        if (v > 0xFFFFFFFFLL)
            above32 = true;
    }
    // A 40-bit span returns >32-bit values ~255/256 of the time;
    // 4000 draws all landing below 2^32 means the truncation bug.
    EXPECT_TRUE(above32);
}

TEST(Pcg32, RangeInclusiveSpanOfExactlyTwoToThe32)
{
    // The span 2^32 itself (hi - lo + 1 just above uint32) was the
    // sharpest failure: truncation made it span 0, always lo.
    Pcg32 rng(53);
    const std::int64_t lo = 10;
    const std::int64_t hi = 10 + (1LL << 32);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 256; ++i) {
        auto v = rng.rangeInclusive(lo, hi);
        ASSERT_GE(v, lo);
        ASSERT_LE(v, hi);
        seen.insert(v);
    }
    EXPECT_GT(seen.size(), 200u);
}

TEST(Pcg32, RangeInclusiveFullInt64Span)
{
    // [INT64_MIN, INT64_MAX]: the span wraps to 0, which encodes
    // the full 2^64 range. Both signs must show up.
    Pcg32 rng(59);
    bool neg = false;
    bool pos = false;
    for (int i = 0; i < 256; ++i) {
        auto v = rng.rangeInclusive(
            std::numeric_limits<std::int64_t>::min(),
            std::numeric_limits<std::int64_t>::max());
        neg = neg || v < 0;
        pos = pos || v > 0;
    }
    EXPECT_TRUE(neg);
    EXPECT_TRUE(pos);
}

TEST(Pcg32, RangeInclusiveNarrowSpansPreserveHistoricalStream)
{
    // Spans that fit in 32 bits keep the original single-draw
    // path, so existing seeded experiments replay identically:
    // the offsets must equal range() of the same generator state.
    Pcg32 a(61, 3);
    Pcg32 b(61, 3);
    for (int i = 0; i < 512; ++i) {
        auto v = a.rangeInclusive(-20, 100);
        auto off = b.range(121);
        ASSERT_EQ(v, -20 + static_cast<std::int64_t>(off));
    }
}

TEST(Pcg32, Range64RespectsBound)
{
    Pcg32 rng(67);
    for (std::uint64_t bound :
         {2ULL, 1000ULL, (1ULL << 33), (1ULL << 63) + 12345ULL}) {
        for (int i = 0; i < 500; ++i)
            ASSERT_LT(rng.range64(bound), bound);
    }
    EXPECT_EQ(rng.range64(1), 0u);
}

TEST(Pcg32, UniformInUnitInterval)
{
    Pcg32 rng(17);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Pcg32, UniformRangeBounds)
{
    Pcg32 rng(19);
    for (int i = 0; i < 5000; ++i) {
        double u = rng.uniform(2.5, 7.5);
        ASSERT_GE(u, 2.5);
        ASSERT_LT(u, 7.5);
    }
}

TEST(Pcg32, ChanceExtremes)
{
    Pcg32 rng(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Pcg32, ChanceFrequency)
{
    Pcg32 rng(29);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Pcg32, GaussianMoments)
{
    Pcg32 rng(31);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian(10.0, 2.0);
        sum += g;
        sq += g * g;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Pcg32, ExponentialMean)
{
    Pcg32 rng(37);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double e = rng.exponential(5.0);
        ASSERT_GE(e, 0.0);
        sum += e;
    }
    EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Pcg32, GeometricMeanMatches)
{
    Pcg32 rng(41);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        auto g = rng.geometric(0.25);
        ASSERT_GE(g, 1u);
        sum += g;
    }
    EXPECT_NEAR(sum / n, 4.0, 0.25);
}

TEST(Pcg32, GeometricEdgeProbabilities)
{
    Pcg32 rng(43);
    EXPECT_EQ(rng.geometric(1.0), 1u);
    EXPECT_EQ(rng.geometric(0.0), 1u);
}

} // namespace
} // namespace osp
