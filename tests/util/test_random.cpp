/** @file Unit tests for the PCG32 generator. */

#include <gtest/gtest.h>

#include <set>
#include <vector>

#include "util/random.hh"

namespace osp
{
namespace
{

TEST(Pcg32, SameSeedSameSequence)
{
    Pcg32 a(123, 7);
    Pcg32 b(123, 7);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(a.next(), b.next());
}

TEST(Pcg32, DifferentSeedsDiffer)
{
    Pcg32 a(123, 7);
    Pcg32 b(124, 7);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Pcg32, DifferentStreamsDiffer)
{
    Pcg32 a(123, 7);
    Pcg32 b(123, 8);
    int same = 0;
    for (int i = 0; i < 1000; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 5);
}

TEST(Pcg32, ReseedReplays)
{
    Pcg32 a(55, 1);
    std::vector<std::uint32_t> first;
    for (int i = 0; i < 64; ++i)
        first.push_back(a.next());
    a.reseed(55, 1);
    for (int i = 0; i < 64; ++i)
        ASSERT_EQ(a.next(), first[i]);
}

TEST(Pcg32, RangeRespectsBound)
{
    Pcg32 rng(9);
    for (std::uint32_t bound : {1u, 2u, 3u, 10u, 255u, 1000u}) {
        for (int i = 0; i < 2000; ++i) {
            std::uint32_t v = rng.range(bound);
            ASSERT_LT(v, bound);
        }
    }
}

TEST(Pcg32, RangeZeroOrOneIsZero)
{
    Pcg32 rng(9);
    EXPECT_EQ(rng.range(0), 0u);
    EXPECT_EQ(rng.range(1), 0u);
}

TEST(Pcg32, RangeCoversAllValues)
{
    Pcg32 rng(11);
    std::set<std::uint32_t> seen;
    for (int i = 0; i < 2000; ++i)
        seen.insert(rng.range(7));
    EXPECT_EQ(seen.size(), 7u);
}

TEST(Pcg32, RangeInclusiveBounds)
{
    Pcg32 rng(13);
    for (int i = 0; i < 2000; ++i) {
        auto v = rng.rangeInclusive(3, 6);
        ASSERT_GE(v, 3);
        ASSERT_LE(v, 6);
    }
}

TEST(Pcg32, UniformInUnitInterval)
{
    Pcg32 rng(17);
    double sum = 0.0;
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(Pcg32, UniformRangeBounds)
{
    Pcg32 rng(19);
    for (int i = 0; i < 5000; ++i) {
        double u = rng.uniform(2.5, 7.5);
        ASSERT_GE(u, 2.5);
        ASSERT_LT(u, 7.5);
    }
}

TEST(Pcg32, ChanceExtremes)
{
    Pcg32 rng(23);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Pcg32, ChanceFrequency)
{
    Pcg32 rng(29);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += rng.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Pcg32, GaussianMoments)
{
    Pcg32 rng(31);
    double sum = 0.0;
    double sq = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double g = rng.gaussian(10.0, 2.0);
        sum += g;
        sq += g * g;
    }
    double mean = sum / n;
    double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(Pcg32, ExponentialMean)
{
    Pcg32 rng(37);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        double e = rng.exponential(5.0);
        ASSERT_GE(e, 0.0);
        sum += e;
    }
    EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(Pcg32, GeometricMeanMatches)
{
    Pcg32 rng(41);
    double sum = 0.0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        auto g = rng.geometric(0.25);
        ASSERT_GE(g, 1u);
        sum += g;
    }
    EXPECT_NEAR(sum / n, 4.0, 0.25);
}

TEST(Pcg32, GeometricEdgeProbabilities)
{
    Pcg32 rng(43);
    EXPECT_EQ(rng.geometric(1.0), 1u);
    EXPECT_EQ(rng.geometric(0.0), 1u);
}

} // namespace
} // namespace osp
