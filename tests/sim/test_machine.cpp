/** @file Tests for the Machine: mode switching, interval
 *  bookkeeping, interrupts, page faults and app-only mode. */

#include <gtest/gtest.h>

#include <memory>

#include "os/kernel.hh"
#include "sim/machine.hh"
#include "workload/netbench.hh"
#include "workload/registry.hh"
#include "workload/webserver.hh"

namespace osp
{
namespace
{

MachineConfig
testConfig()
{
    MachineConfig cfg;
    cfg.seed = 21;
    cfg.recordIntervals = true;
    return cfg;
}

std::unique_ptr<Machine>
makeIperf(MachineConfig cfg, std::uint32_t writes = 50,
          std::uint32_t warmup = 0)
{
    KernelParams kp = kernelParamsFor("iperf", cfg.seed);
    auto kernel = std::make_unique<SyntheticKernel>(kp);
    IperfParams p;
    p.warmupWrites = warmup;
    p.measureWrites = writes;
    p.reportEvery = 16;
    auto wl =
        std::make_unique<IperfWorkload>(*kernel, p, cfg.seed);
    return std::make_unique<Machine>(cfg, std::move(wl),
                                     std::move(kernel));
}

TEST(Machine, RunsToCompletionAndAccounts)
{
    auto m = makeIperf(testConfig());
    const RunTotals &t = m->run();
    EXPECT_GT(t.appInsts, 0u);
    EXPECT_GT(t.osInsts, t.appInsts);  // iperf is OS-dominated
    EXPECT_GT(t.totalCycles(), t.totalInsts() / 4);
    EXPECT_EQ(t.osPredicted, 0u);  // no controller attached
    EXPECT_EQ(t.osSimulated, t.osInvocations);
}

TEST(Machine, SecondRunDies)
{
    auto m = makeIperf(testConfig());
    m->run();
    EXPECT_DEATH(m->run(), "once");
}

TEST(Machine, MaxInstsBoundsTheRun)
{
    auto m = makeIperf(testConfig(), 100000);
    const RunTotals &t = m->run(50000);
    EXPECT_GE(t.totalInsts(), 50000u);
    EXPECT_LT(t.totalInsts(), 200000u);
}

TEST(Machine, IntervalLogMatchesTotals)
{
    auto m = makeIperf(testConfig());
    const RunTotals &t = m->run();
    const auto &log = m->intervals();
    EXPECT_EQ(log.size(), t.osInvocations);
    InstCount os_insts = 0;
    Cycles os_cycles = 0;
    for (const auto &rec : log) {
        EXPECT_TRUE(rec.detailed);
        os_insts += rec.insts;
        os_cycles += rec.cycles;
    }
    EXPECT_EQ(os_insts, t.osInsts);
    EXPECT_EQ(os_cycles, t.osSimCycles);
}

TEST(Machine, PerServiceInvocationIndicesAreDense)
{
    auto m = makeIperf(testConfig());
    m->run();
    std::array<std::uint64_t, numServiceTypes> next{};
    for (const auto &rec : m->intervals()) {
        auto idx = static_cast<int>(rec.type);
        EXPECT_EQ(rec.invocation, next[idx]);
        ++next[idx];
    }
}

TEST(Machine, InterruptsDelivered)
{
    auto m = makeIperf(testConfig());
    const RunTotals &t = m->run();
    // Socket writes schedule NIC interrupts.
    EXPECT_GT(t.perService[static_cast<int>(ServiceType::IntNic)]
                  .invocations,
              0u);
}

TEST(Machine, TimerFiresAtConfiguredPeriod)
{
    MachineConfig cfg = testConfig();
    KernelParams kp = kernelParamsFor("iperf", cfg.seed);
    kp.timerPeriod = 100000;
    auto kernel = std::make_unique<SyntheticKernel>(kp);
    IperfParams p;
    p.warmupWrites = 0;
    p.measureWrites = 200;
    auto wl =
        std::make_unique<IperfWorkload>(*kernel, p, cfg.seed);
    Machine m(cfg, std::move(wl), std::move(kernel));
    const RunTotals &t = m.run();
    auto ticks =
        t.perService[static_cast<int>(ServiceType::IntTimer)]
            .invocations;
    EXPECT_NEAR(static_cast<double>(ticks),
                static_cast<double>(t.totalInsts()) / 100000.0,
                2.0);
}

TEST(Machine, PageFaultsOnFirstTouchOnly)
{
    auto m = makeIperf(testConfig());
    const RunTotals &t = m->run();
    auto faults =
        t.perService[static_cast<int>(ServiceType::IntPageFault)]
            .invocations;
    // iperf touches its 16KB buffer + small heap/stack/code data
    // regions once each.
    EXPECT_GT(faults, 0u);
    EXPECT_LT(faults, 50u);
}

TEST(Machine, AppOnlySkipsKernelEntirely)
{
    MachineConfig cfg = testConfig();
    cfg.appOnly = true;
    auto m = makeIperf(cfg);
    const RunTotals &t = m->run();
    EXPECT_EQ(t.osInsts, 0u);
    EXPECT_EQ(t.osInvocations, 0u);
    EXPECT_GT(t.appInsts, 0u);
    EXPECT_GT(t.appCycles, 0u);
}

TEST(Machine, WarmupResetsStatistics)
{
    MachineConfig cfg = testConfig();
    auto warm = makeIperf(cfg, 50, 20);
    const RunTotals &t = warm->run();
    auto no_warm = makeIperf(cfg, 50, 0);
    const RunTotals &u = no_warm->run();
    // Warm-up requests are excluded from the measured totals, so
    // both runs measure ~50 writes' worth of work.
    double ratio = static_cast<double>(t.totalInsts()) /
                   static_cast<double>(u.totalInsts());
    EXPECT_NEAR(ratio, 1.0, 0.15);
}

TEST(Machine, EmulateLevelCountsButNoCycles)
{
    MachineConfig cfg = testConfig();
    cfg.level = DetailLevel::Emulate;
    auto m = makeIperf(cfg);
    const RunTotals &t = m->run();
    EXPECT_GT(t.totalInsts(), 0u);
    EXPECT_EQ(t.totalCycles(), 0u);
    EXPECT_EQ(t.measuredMem.l2Accesses, 0u);
}

TEST(Machine, DetailLevelsOrderPlausibly)
{
    // Same workload, increasing detail: nocache variants are faster
    // (fewer cycles) than cache variants is NOT guaranteed, but
    // inorder must be slower (more cycles) than OOO at equal cache
    // config.
    Cycles inorder_cycles = 0;
    Cycles ooo_cycles = 0;
    {
        MachineConfig cfg = testConfig();
        cfg.level = DetailLevel::InOrderCache;
        auto m = makeIperf(cfg);
        inorder_cycles = m->run().totalCycles();
    }
    {
        MachineConfig cfg = testConfig();
        cfg.level = DetailLevel::OooCache;
        auto m = makeIperf(cfg);
        ooo_cycles = m->run().totalCycles();
    }
    EXPECT_GT(inorder_cycles, ooo_cycles);
}

TEST(Machine, InstructionCountsAreDetailInvariant)
{
    // The signature property: instruction counts must be identical
    // across detail levels.
    InstCount detailed = 0;
    InstCount emulated = 0;
    {
        MachineConfig cfg = testConfig();
        cfg.level = DetailLevel::OooCache;
        auto m = makeIperf(cfg);
        detailed = m->run().totalInsts();
    }
    {
        MachineConfig cfg = testConfig();
        cfg.level = DetailLevel::Emulate;
        auto m = makeIperf(cfg);
        emulated = m->run().totalInsts();
    }
    EXPECT_EQ(detailed, emulated);
}

TEST(Machine, DeterministicAcrossRuns)
{
    auto a = makeIperf(testConfig());
    auto b = makeIperf(testConfig());
    const RunTotals &ta = a->run();
    const RunTotals &tb = b->run();
    EXPECT_EQ(ta.totalInsts(), tb.totalInsts());
    EXPECT_EQ(ta.totalCycles(), tb.totalCycles());
    EXPECT_EQ(ta.measuredMem.l2Misses, tb.measuredMem.l2Misses);
}

TEST(Machine, SeedChangesOutcome)
{
    MachineConfig cfg = testConfig();
    auto a = makeIperf(cfg);
    cfg.seed = 22;
    auto b = makeIperf(cfg);
    EXPECT_NE(a->run().totalCycles(), b->run().totalCycles());
}

TEST(Machine, PollutionPolicyNames)
{
    EXPECT_STREQ(pollutionPolicyName(PollutionPolicy::None), "none");
    EXPECT_STREQ(
        pollutionPolicyName(PollutionPolicy::PaperInvalidateApp),
        "paper-invalidate-app");
    EXPECT_STREQ(pollutionPolicyName(PollutionPolicy::Footprint),
                 "footprint");
}

TEST(Machine, MissingWorkloadDies)
{
    MachineConfig cfg;
    KernelParams kp;
    EXPECT_DEATH(Machine(cfg, nullptr,
                         std::make_unique<SyntheticKernel>(kp)),
                 "workload");
}

TEST(Machine, MissingKernelDiesUnlessAppOnly)
{
    MachineConfig cfg = testConfig();
    KernelParams kp = kernelParamsFor("iperf", cfg.seed);
    auto kernel = std::make_unique<SyntheticKernel>(kp);
    IperfParams p;
    auto wl = std::make_unique<IperfWorkload>(*kernel, p, 1);
    EXPECT_DEATH(Machine(cfg, std::move(wl), nullptr), "kernel");
}

/** The block size is a pure throughput knob: every blockOps value
 *  (including the degenerate per-op 1 and the clamp ceiling) must
 *  produce the exact same run — same instruction counts, cycles,
 *  service invocations and memory-system counters. */
TEST(Machine, BlockSizeDoesNotChangeOutcome)
{
    RunTotals want;
    bool have_want = false;
    for (std::uint32_t block : {1u, 2u, 64u, 256u, 100000u}) {
        MachineConfig cfg = testConfig();
        cfg.level = DetailLevel::InOrderCache;
        cfg.blockOps = block;
        auto m = makeIperf(cfg, 200);
        const RunTotals &t = m->run();
        if (!have_want) {
            want = t;
            have_want = true;
            EXPECT_GT(t.appInsts, 0u);
            EXPECT_GT(t.osInvocations, 0u);
            continue;
        }
        EXPECT_EQ(t.appInsts, want.appInsts) << "block " << block;
        EXPECT_EQ(t.osInsts, want.osInsts) << "block " << block;
        EXPECT_EQ(t.osPredInsts, want.osPredInsts);
        EXPECT_EQ(t.appCycles, want.appCycles) << "block " << block;
        EXPECT_EQ(t.osSimCycles, want.osSimCycles);
        EXPECT_EQ(t.osPredCycles, want.osPredCycles);
        EXPECT_EQ(t.osInvocations, want.osInvocations);
        EXPECT_EQ(t.measuredMem.l1dAccesses,
                  want.measuredMem.l1dAccesses);
        EXPECT_EQ(t.measuredMem.l1dMisses,
                  want.measuredMem.l1dMisses);
        EXPECT_EQ(t.measuredMem.l2Misses,
                  want.measuredMem.l2Misses);
    }
}

/** max_insts must stop the run at the same point for every block
 *  size (the batched loop may not overshoot the cap). */
TEST(Machine, MaxInstsExactUnderAppOnlyEmulation)
{
    for (std::uint32_t block : {1u, 7u, 64u, 256u}) {
        MachineConfig cfg = testConfig();
        cfg.level = DetailLevel::Emulate;
        cfg.appOnly = true;
        cfg.blockOps = block;
        auto m = makeIperf(cfg, 100000);
        const RunTotals &t = m->run(12345);
        EXPECT_EQ(t.totalInsts(), 12345u) << "block " << block;
    }
}

} // namespace
} // namespace osp
