/** @file Tests for the in-order and out-of-order timing models. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/inorder_cpu.hh"
#include "sim/ooo_cpu.hh"

namespace osp
{
namespace
{

MicroOp
alu(Addr pc = 0x1000)
{
    MicroOp op;
    op.cls = OpClass::IntAlu;
    op.pc = pc;
    op.execLat = 1;
    return op;
}

MicroOp
load(Addr addr, Addr pc = 0x1000, std::uint8_t dep = 0)
{
    MicroOp op;
    op.cls = OpClass::Load;
    op.pc = pc;
    op.effAddr = addr;
    op.depDist = dep;
    return op;
}

MicroOp
branch(bool taken, Addr pc = 0x1000)
{
    MicroOp op;
    op.cls = OpClass::Branch;
    op.pc = pc;
    op.taken = taken;
    op.execLat = 1;
    return op;
}

TEST(InOrderCpu, OneIpcWithoutMemory)
{
    CpuParams params;
    InOrderCpu cpu(params, nullptr, nullptr);
    for (int i = 0; i < 1000; ++i)
        cpu.execute(alu(), Owner::App);
    EXPECT_EQ(cpu.drain(), 1000u);
    EXPECT_EQ(cpu.instructions(), 1000u);
}

TEST(InOrderCpu, LoadsAddFlatLatencyWithoutCaches)
{
    CpuParams params;
    params.noCacheMemLatency = 5;
    InOrderCpu cpu(params, nullptr, nullptr);
    for (int i = 0; i < 100; ++i)
        cpu.execute(load(0x2000), Owner::App);
    // Each load costs the flat latency (1 base + lat-1 stall).
    EXPECT_EQ(cpu.drain(), 100u * 5);
}

TEST(InOrderCpu, MispredictPenaltyApplied)
{
    CpuParams params;
    GshareBp bp(12);
    InOrderCpu cpu(params, nullptr, &bp);
    // Train taken.
    for (int i = 0; i < 500; ++i)
        cpu.execute(branch(true, 0x3000), Owner::App);
    Cycles base = cpu.drain();
    // 500 cycles base cost plus a handful of warm-up mispredicts.
    EXPECT_LT(base, 800u);
    // Now flip direction: mispredicts until re-trained.
    cpu.execute(branch(false, 0x3000), Owner::App);
    Cycles flipped = cpu.drain();
    EXPECT_GE(flipped, 1 + params.mispredictPenalty);
}

TEST(InOrderCpu, FpLatency)
{
    CpuParams params;
    InOrderCpu cpu(params, nullptr, nullptr);
    MicroOp op;
    op.cls = OpClass::FpAlu;
    op.execLat = 4;
    for (int i = 0; i < 10; ++i)
        cpu.execute(op, Owner::App);
    EXPECT_EQ(cpu.drain(), 40u);
}

TEST(InOrderCpu, DrainResetsIntervalNotClock)
{
    CpuParams params;
    InOrderCpu cpu(params, nullptr, nullptr);
    cpu.execute(alu(), Owner::App);
    EXPECT_EQ(cpu.drain(), 1u);
    cpu.execute(alu(), Owner::App);
    cpu.execute(alu(), Owner::App);
    EXPECT_EQ(cpu.drain(), 2u);
    EXPECT_EQ(cpu.now(), 3u);
}

TEST(OooCpu, IlpBeatsInOrderOnIndependentOps)
{
    CpuParams params;
    OooCpu ooo(params, nullptr, nullptr);
    InOrderCpu inorder(params, nullptr, nullptr);
    for (int i = 0; i < 3000; ++i) {
        ooo.execute(alu(), Owner::App);
        inorder.execute(alu(), Owner::App);
    }
    Cycles ooo_cycles = ooo.drain();
    Cycles inorder_cycles = inorder.drain();
    // Retire width 3 bounds OOO IPC at 3.
    EXPECT_LT(ooo_cycles, inorder_cycles);
    EXPECT_GE(ooo_cycles, 3000u / params.retireWidth);
    EXPECT_LE(ooo_cycles, 3000u / params.retireWidth + 10);
}

TEST(OooCpu, SerialDependenceChainsLimitIlp)
{
    CpuParams params;
    OooCpu cpu(params, nullptr, nullptr);
    for (int i = 0; i < 1000; ++i) {
        MicroOp op = alu();
        op.depDist = 1;  // strict chain
        cpu.execute(op, Owner::App);
    }
    // Each op waits for its predecessor: ~1 IPC.
    EXPECT_GE(cpu.drain(), 999u);
}

TEST(OooCpu, MemoryLevelParallelism)
{
    // Independent loads overlap up to the MSHR count; dependent
    // loads serialize. Same flat latency, very different cycles.
    CpuParams params;
    params.noCacheMemLatency = 2;
    OooCpu independent(params, nullptr, nullptr);
    OooCpu chained(params, nullptr, nullptr);
    for (int i = 0; i < 1000; ++i) {
        independent.execute(load(0x1000 + 64 * i), Owner::App);
        chained.execute(load(0x1000 + 64 * i, 0x1000, 1),
                        Owner::App);
    }
    EXPECT_LT(independent.drain() * 2, chained.drain());
}

TEST(OooCpu, MispredictRedirectsFetch)
{
    CpuParams params;
    GshareBp trained(12);
    OooCpu cpu(params, nullptr, &trained);
    for (int i = 0; i < 2000; ++i)
        cpu.execute(branch(true, 0x5000), Owner::App);
    Cycles steady = cpu.drain();
    // A surprise direction costs the penalty on the next fetch.
    cpu.execute(branch(false, 0x5000), Owner::App);
    cpu.execute(alu(), Owner::App);
    Cycles after = cpu.drain();
    EXPECT_GE(after, params.mispredictPenalty);
    EXPECT_LT(steady, 2000u);
}

TEST(OooCpu, WindowOccupancyStallsFetch)
{
    // One very long-latency load at the head plus window-filling
    // ALU ops: fetch stalls when the window is full, so total time
    // is bounded below by the load latency.
    CpuParams params;
    params.noCacheMemLatency = 500;
    params.windowSize = 16;
    OooCpu cpu(params, nullptr, nullptr);
    cpu.execute(load(0x100, 0x1000, 1), Owner::App);  // slow-ish
    MicroOp dependent = load(0x200, 0x1004, 1);
    cpu.execute(dependent, Owner::App);  // depends on the first
    for (int i = 0; i < 100; ++i)
        cpu.execute(alu(), Owner::App);
    EXPECT_GE(cpu.drain(), 1000u);
}

TEST(OooCpu, DrainSerializesIntervals)
{
    CpuParams params;
    OooCpu cpu(params, nullptr, nullptr);
    for (int i = 0; i < 300; ++i)
        cpu.execute(alu(), Owner::App);
    Cycles first = cpu.drain();
    for (int i = 0; i < 300; ++i)
        cpu.execute(alu(), Owner::App);
    Cycles second = cpu.drain();
    // Same work, same serialized start: equal interval costs.
    EXPECT_EQ(first, second);
    EXPECT_EQ(cpu.now(), first + second);
}

TEST(OooCpu, ResetRestoresInitialState)
{
    CpuParams params;
    OooCpu cpu(params, nullptr, nullptr);
    for (int i = 0; i < 100; ++i)
        cpu.execute(alu(), Owner::App);
    cpu.drain();
    cpu.reset();
    EXPECT_EQ(cpu.now(), 0u);
    EXPECT_EQ(cpu.instructions(), 0u);
}

TEST(OooCpu, BadParamsDie)
{
    CpuParams params;
    params.windowSize = 0;
    EXPECT_DEATH(OooCpu(params, nullptr, nullptr), "window");
}

TEST(OooCpu, CacheMissesRaiseCycles)
{
    HierarchyParams hp;
    MemoryHierarchy warm_h(hp);
    MemoryHierarchy cold_h(hp);
    CpuParams params;
    OooCpu warm(params, &warm_h, nullptr);
    OooCpu cold(params, &cold_h, nullptr);

    // Warm machine: repeatedly touch one line. Cold machine:
    // streaming loads.
    for (int i = 0; i < 2000; ++i) {
        warm.execute(load(0x8000, 0x1000, 1), Owner::App);
        cold.execute(load(0x8000 + 64 * i, 0x1000, 1), Owner::App);
    }
    EXPECT_LT(warm.drain() * 5, cold.drain());
}

TEST(InOrderCpu, StoreMissesBoundedByWriteBuffer)
{
    // Regression: store misses must not reserve unbounded bus
    // occupancy (the art/swim divergence). A long store-miss
    // stream should cost roughly (bus occupancy per line) per
    // store, not quadratic time.
    HierarchyParams hp;
    hp.l2.sizeBytes = 64 * 1024;
    MemoryHierarchy h(hp);
    CpuParams params;
    InOrderCpu cpu(params, &h, nullptr);
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        MicroOp op;
        op.cls = OpClass::Store;
        op.pc = 0x1000;
        op.effAddr = 0x100000 + 64ULL * i;
        cpu.execute(op, Owner::App);
    }
    Cycles cycles = cpu.drain();
    // All miss; the bus serializes ~40 cycles per line + writeback.
    EXPECT_LT(cycles, static_cast<Cycles>(n) * 200);
    EXPECT_GT(cycles, static_cast<Cycles>(n) * 10);
}

} // namespace
} // namespace osp
