/** @file Property tests bounding the timing models analytically:
 *  whatever the instruction stream, cycle counts must respect the
 *  machine's structural limits. */

#include <gtest/gtest.h>

#include <vector>

#include "sim/codegen.hh"
#include "sim/inorder_cpu.hh"
#include "sim/ooo_cpu.hh"
#include "util/random.hh"

namespace osp
{
namespace
{

CodeProfile
randomProfile(Pcg32 &rng)
{
    CodeProfile p;
    p.loadFrac = rng.uniform(0.05, 0.35);
    p.storeFrac = rng.uniform(0.02, 0.2);
    p.branchFrac = rng.uniform(0.02, 0.25);
    p.fpFrac = rng.uniform(0.0, 0.2);
    p.depChance = rng.uniform(0.1, 0.7);
    p.depDistMean = rng.uniform(1.5, 10.0);
    p.branchRandomFrac = rng.uniform(0.0, 0.3);
    p.code = Region{0x400000, 1024ULL << rng.range(6)};
    p.blockRunBytes = 64u << rng.range(5);
    return p;
}

class CpuProperty : public ::testing::TestWithParam<int>
{
};

TEST_P(CpuProperty, OooRespectsStructuralBounds)
{
    Pcg32 rng(GetParam());
    CodeProfile prof = randomProfile(rng);
    CpuParams params;
    HierarchyParams hp;
    MemoryHierarchy hier(hp);
    GshareBp bp(12);
    OooCpu cpu(params, &hier, &bp);
    CodeGenerator gen(GetParam(), 1);
    const std::uint64_t n = 30000;
    gen.pushCompute(prof, n, Region{0x1000000, 1u << 18},
                    PatternKind::Random);
    while (!gen.done())
        cpu.execute(gen.next(), Owner::App);
    Cycles cycles = cpu.drain();

    // IPC can never exceed the retire width.
    EXPECT_GE(cycles, n / params.retireWidth);
    // And the machine can always limp at reciprocal throughput
    // bounded by worst-case per-op serialization.
    Cycles worst_per_op =
        hp.memLatency + hp.tlbMissPenalty +
        hp.busCyclesPerLine * 4 + params.mispredictPenalty + 16;
    EXPECT_LE(cycles, n * worst_per_op);
}

TEST_P(CpuProperty, OooNeverSlowerThanInOrder)
{
    // On identical streams with identical cache state, out-of-order
    // execution is at least as fast as blocking in-order issue.
    Pcg32 rng(GetParam() + 100);
    CodeProfile prof = randomProfile(rng);
    CpuParams params;
    HierarchyParams hp;
    MemoryHierarchy hier_ooo(hp);
    MemoryHierarchy hier_in(hp);
    GshareBp bp_ooo(12);
    GshareBp bp_in(12);
    OooCpu ooo(params, &hier_ooo, &bp_ooo);
    InOrderCpu inorder(params, &hier_in, &bp_in);
    CodeGenerator gen_a(GetParam() + 100, 2);
    CodeGenerator gen_b(GetParam() + 100, 2);
    Region data{0x1000000, 1u << 18};
    gen_a.pushCompute(prof, 20000, data, PatternKind::Random);
    gen_b.pushCompute(prof, 20000, data, PatternKind::Random);
    while (!gen_a.done()) {
        ooo.execute(gen_a.next(), Owner::App);
        inorder.execute(gen_b.next(), Owner::App);
    }
    // Allow 5% slack: the models arbitrate the bus differently.
    EXPECT_LE(ooo.drain(), inorder.drain() * 105 / 100);
}

TEST_P(CpuProperty, LargerWindowNeverHurtsMuch)
{
    Pcg32 rng(GetParam() + 200);
    CodeProfile prof = randomProfile(rng);
    Cycles prev = 0;
    bool first = true;
    for (std::uint32_t window : {16u, 64u, 126u, 256u}) {
        CpuParams params;
        params.windowSize = window;
        OooCpu cpu(params, nullptr, nullptr);
        CodeGenerator gen(GetParam() + 200, 3);
        gen.pushCompute(prof, 20000, Region{0x1000000, 1u << 18},
                        PatternKind::Random);
        while (!gen.done())
            cpu.execute(gen.next(), Owner::App);
        Cycles cycles = cpu.drain();
        if (!first) {
            // Monotone up to 2% modeling slack.
            EXPECT_LE(cycles, prev * 102 / 100) << window;
        }
        prev = cycles;
        first = false;
    }
}

TEST_P(CpuProperty, CyclesScaleLinearlyWithWork)
{
    // Twice the ops of the same profile costs roughly twice the
    // cycles. Flat memory and perfect branch prediction: cache and
    // predictor warm-up transients make real scaling deliberately
    // sublinear, which the other tests cover.
    Pcg32 rng(GetParam() + 300);
    CodeProfile prof = randomProfile(rng);
    auto cycles_for = [&](std::uint64_t n) {
        CpuParams params;
        OooCpu cpu(params, nullptr, nullptr);
        CodeGenerator gen(GetParam() + 300, 4);
        gen.pushCompute(prof, n, Region{0x1000000, 1u << 18},
                        PatternKind::Random);
        while (!gen.done())
            cpu.execute(gen.next(), Owner::App);
        return cpu.drain();
    };
    double ratio = static_cast<double>(cycles_for(60000)) /
                   static_cast<double>(cycles_for(30000));
    EXPECT_GT(ratio, 1.8);
    EXPECT_LT(ratio, 2.2);
}

INSTANTIATE_TEST_SUITE_P(Streams, CpuProperty,
                         ::testing::Range(1, 9));

} // namespace
} // namespace osp
