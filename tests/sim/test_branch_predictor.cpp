/** @file Tests for the gshare branch predictor. */

#include <gtest/gtest.h>

#include "sim/branch_predictor.hh"
#include "util/random.hh"

namespace osp
{
namespace
{

TEST(GshareBp, LearnsAlwaysTaken)
{
    GshareBp bp(12);
    for (int i = 0; i < 1000; ++i)
        bp.predictAndUpdate(0x400000, true);
    // After warm-up the biased branch is predicted near-perfectly.
    EXPECT_LT(bp.mispredictRate(), 0.02);
}

TEST(GshareBp, LearnsAlternatingViaHistory)
{
    GshareBp bp(12);
    for (int i = 0; i < 4000; ++i)
        bp.predictAndUpdate(0x400000, i % 2 == 0);
    // Global history disambiguates a strict alternation.
    GshareBp fresh(12);
    std::uint64_t late_misses = 0;
    for (int i = 0; i < 4000; ++i) {
        bool correct = fresh.predictAndUpdate(0x400000, i % 2 == 0);
        if (i >= 2000 && !correct)
            ++late_misses;
    }
    EXPECT_LT(late_misses / 2000.0, 0.05);
}

TEST(GshareBp, RandomBranchesNearFiftyPercent)
{
    GshareBp bp(12);
    Pcg32 rng(5);
    std::uint64_t misses = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        misses += !bp.predictAndUpdate(64 * rng.range(64),
                                       rng.chance(0.5));
    EXPECT_NEAR(misses / double(n), 0.5, 0.05);
}

TEST(GshareBp, BiasedBranchesBeatRandom)
{
    GshareBp bp(12);
    Pcg32 rng(7);
    const int n = 20000;
    std::uint64_t misses = 0;
    for (int i = 0; i < n; ++i)
        misses += !bp.predictAndUpdate(64 * rng.range(16),
                                       rng.chance(0.95));
    EXPECT_LT(misses / double(n), 0.15);
}

TEST(GshareBp, CountersTrackLookups)
{
    GshareBp bp(10);
    for (int i = 0; i < 50; ++i)
        bp.predictAndUpdate(0x100, true);
    EXPECT_EQ(bp.lookups(), 50u);
    EXPECT_LE(bp.mispredicts(), 50u);
}

TEST(GshareBp, ResetClearsState)
{
    GshareBp bp(10);
    for (int i = 0; i < 100; ++i)
        bp.predictAndUpdate(0x100, true);
    bp.reset();
    EXPECT_EQ(bp.lookups(), 0u);
    EXPECT_EQ(bp.mispredicts(), 0u);
    // Back to the weakly-not-taken initial prediction.
    EXPECT_FALSE(bp.predict(0x100));
}

TEST(GshareBp, InvalidHistoryBitsDie)
{
    EXPECT_DEATH(GshareBp(0), "history");
    EXPECT_DEATH(GshareBp(30), "history");
}

TEST(GshareBp, PredictIsSideEffectFree)
{
    GshareBp bp(10);
    bool p1 = bp.predict(0x200);
    bool p2 = bp.predict(0x200);
    EXPECT_EQ(p1, p2);
    EXPECT_EQ(bp.lookups(), 0u);
}

} // namespace
} // namespace osp
