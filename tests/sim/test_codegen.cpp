/** @file Tests for the work-item code generator. */

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "sim/codegen.hh"

namespace osp
{
namespace
{

CodeProfile
basicProfile()
{
    CodeProfile p;
    p.loadFrac = 0.3;
    p.storeFrac = 0.1;
    p.branchFrac = 0.2;
    p.fpFrac = 0.1;
    p.code = Region{0x1000, 8192};
    return p;
}

TEST(CodeGenerator, ExactOpCountForCompute)
{
    CodeGenerator gen(1, 1);
    gen.pushCompute(basicProfile(), 1234, Region{0x8000, 4096});
    EXPECT_EQ(gen.pendingOps(), 1234u);
    std::uint64_t n = 0;
    while (!gen.done()) {
        gen.next();
        ++n;
    }
    EXPECT_EQ(n, 1234u);
}

TEST(CodeGenerator, ExactOpCountForCopy)
{
    CodeGenerator gen(1, 2);
    // 4 ops per 16 bytes.
    gen.pushCopy(basicProfile(), 4096, Region{0x8000, 4096},
                 Region{0x10000, 4096});
    EXPECT_EQ(gen.pendingOps(), 4096u / 16 * 4);
    gen.pushCopy(basicProfile(), 17, Region{0x8000, 4096},
                 Region{0x10000, 4096});
    // ceil(17/16) = 2 units -> 8 more ops.
    EXPECT_EQ(gen.pendingOps(), 4096u / 16 * 4 + 8);
}

TEST(CodeGenerator, ZeroWorkIsNoop)
{
    CodeGenerator gen(1, 3);
    gen.pushCompute(basicProfile(), 0, Region{0x8000, 4096});
    gen.pushCopy(basicProfile(), 0, Region{0x8000, 64},
                 Region{0x9000, 64});
    EXPECT_TRUE(gen.done());
}

TEST(CodeGenerator, NextOnEmptyDies)
{
    CodeGenerator gen(1, 4);
    EXPECT_DEATH(gen.next(), "no work");
}

TEST(CodeGenerator, MixApproximatesProfile)
{
    CodeGenerator gen(7, 5);
    CodeProfile p = basicProfile();
    const std::uint64_t n = 50000;
    gen.pushCompute(p, n, Region{0x8000, 65536});
    std::map<OpClass, std::uint64_t> counts;
    while (!gen.done())
        counts[gen.next().cls] += 1;
    EXPECT_NEAR(counts[OpClass::Load] / double(n), p.loadFrac, 0.01);
    EXPECT_NEAR(counts[OpClass::Store] / double(n), p.storeFrac,
                0.01);
    EXPECT_NEAR(counts[OpClass::Branch] / double(n), p.branchFrac,
                0.01);
    EXPECT_NEAR(counts[OpClass::FpAlu] / double(n), p.fpFrac, 0.01);
}

TEST(CodeGenerator, SameSeedSameStream)
{
    CodeGenerator a(42, 9);
    CodeGenerator b(42, 9);
    a.pushCompute(basicProfile(), 2000, Region{0x8000, 4096});
    b.pushCompute(basicProfile(), 2000, Region{0x8000, 4096});
    while (!a.done()) {
        MicroOp x = a.next();
        MicroOp y = b.next();
        ASSERT_EQ(x.cls, y.cls);
        ASSERT_EQ(x.pc, y.pc);
        ASSERT_EQ(x.effAddr, y.effAddr);
        ASSERT_EQ(x.depDist, y.depDist);
        ASSERT_EQ(x.taken, y.taken);
    }
    EXPECT_TRUE(b.done());
}

TEST(CodeGenerator, PcStaysInCodeRegion)
{
    CodeGenerator gen(3, 6);
    CodeProfile p = basicProfile();
    gen.pushCompute(p, 20000, Region{0x8000, 4096});
    while (!gen.done()) {
        MicroOp op = gen.next();
        ASSERT_GE(op.pc, p.code.base);
        ASSERT_LT(op.pc, p.code.base + p.code.size);
    }
}

TEST(CodeGenerator, DataStaysInRegion)
{
    CodeGenerator gen(3, 7);
    Region data{0x200000, 32768};
    for (auto pat :
         {PatternKind::Sequential, PatternKind::Random,
          PatternKind::PointerChase, PatternKind::Hot}) {
        gen.pushCompute(basicProfile(), 5000, data, pat);
        while (!gen.done()) {
            MicroOp op = gen.next();
            if (op.cls == OpClass::Load ||
                op.cls == OpClass::Store) {
                ASSERT_GE(op.effAddr, data.base);
                ASSERT_LT(op.effAddr, data.base + data.size);
            }
        }
    }
}

TEST(CodeGenerator, SequentialCursorPersistsAcrossItems)
{
    // A streaming workload split into blocks keeps walking forward
    // (regression: art/swim restarted each block and fit in L2).
    CodeGenerator gen(5, 8);
    Region data{0x300000, 1 << 20};
    CodeProfile p = basicProfile();
    std::set<Addr> lines;
    for (int block = 0; block < 10; ++block) {
        gen.pushCompute(p, 5000, data, PatternKind::Sequential);
        while (!gen.done()) {
            MicroOp op = gen.next();
            if (op.cls == OpClass::Load ||
                op.cls == OpClass::Store) {
                lines.insert(op.effAddr >> 6);
            }
        }
    }
    // ~10 * 5000 * 0.4 accesses at 64B stride: far more than one
    // block's worth of distinct lines.
    EXPECT_GT(lines.size(), 10000u);
}

TEST(CodeGenerator, HotPatternConcentratesAccesses)
{
    CodeGenerator gen(11, 10);
    Region data{0x400000, 100 * 64};
    gen.pushCompute(basicProfile(), 30000, data, PatternKind::Hot);
    std::uint64_t hot = 0;
    std::uint64_t total = 0;
    while (!gen.done()) {
        MicroOp op = gen.next();
        if (op.cls == OpClass::Load || op.cls == OpClass::Store) {
            ++total;
            if (op.effAddr < data.base + data.size / 10)
                ++hot;
        }
    }
    // 90% hot + 10% uniform(includes hot): ~91%.
    EXPECT_GT(hot / double(total), 0.85);
}

TEST(CodeGenerator, PointerChaseSerializesLoads)
{
    CodeGenerator gen(13, 11);
    gen.pushCompute(basicProfile(), 10000, Region{0x500000, 65536},
                    PatternKind::PointerChase);
    std::uint64_t dependent_loads = 0;
    std::uint64_t loads = 0;
    while (!gen.done()) {
        MicroOp op = gen.next();
        if (op.cls == OpClass::Load) {
            ++loads;
            dependent_loads += (op.depDist > 0);
        }
    }
    // Every chase load (except possibly the first) carries a
    // dependence on the previous load.
    EXPECT_GT(dependent_loads, loads * 9 / 10);
}

TEST(CodeGenerator, CopyAlternatesLoadStore)
{
    CodeGenerator gen(17, 12);
    Region src{0x600000, 4096};
    Region dst{0x700000, 4096};
    gen.pushCopy(basicProfile(), 256, src, dst);
    std::vector<MicroOp> ops;
    while (!gen.done())
        ops.push_back(gen.next());
    ASSERT_EQ(ops.size(), 64u);  // 16 units * 4
    for (std::size_t i = 0; i < ops.size(); i += 4) {
        EXPECT_EQ(ops[i].cls, OpClass::Load);
        EXPECT_TRUE(src.contains(ops[i].effAddr));
        EXPECT_EQ(ops[i + 1].cls, OpClass::Store);
        EXPECT_TRUE(dst.contains(ops[i + 1].effAddr));
        EXPECT_EQ(ops[i + 1].depDist, 1);
        EXPECT_EQ(ops[i + 2].cls, OpClass::IntAlu);
        EXPECT_EQ(ops[i + 3].cls, OpClass::Branch);
        EXPECT_TRUE(ops[i + 3].taken);
    }
}

TEST(CodeGenerator, ItemsServeInFifoOrder)
{
    CodeGenerator gen(19, 13);
    Region a{0x600000, 4096};
    Region b{0x700000, 4096};
    CodeProfile p = basicProfile();
    p.loadFrac = 1.0;  // every op is a load: addresses identify items
    p.storeFrac = p.branchFrac = p.fpFrac = 0.0;
    gen.pushCompute(p, 10, a);
    gen.pushCompute(p, 10, b);
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(a.contains(gen.next().effAddr));
    for (int i = 0; i < 10; ++i)
        EXPECT_TRUE(b.contains(gen.next().effAddr));
    EXPECT_TRUE(gen.done());
}

/** nextBlock() is the batched spelling of next(): for any block
 *  capacity — including interleaving the two — it must produce the
 *  identical op sequence (same RNG draws, same values, same item
 *  boundaries). This is the contract the Machine's batched run loop
 *  rests on. */
TEST(CodeGenerator, NextBlockMatchesNextExactly)
{
    auto plan = [](CodeGenerator &gen) {
        CodeProfile p = basicProfile();
        gen.pushCompute(p, 500, Region{0x8000, 64 * 1024},
                        PatternKind::Random);
        gen.pushCopy(p, 777, Region{0x8000, 4096},
                     Region{0x20000, 4096});
        gen.pushCompute(p, 301, Region{0x40000, 8192},
                        PatternKind::Hot);
        gen.pushCompute(p, 7, Region{0x50000, 4096},
                        PatternKind::PointerChase);
    };

    CodeGenerator ref(23, 5);
    plan(ref);
    std::vector<MicroOp> want;
    while (!ref.done())
        want.push_back(ref.next());

    for (std::size_t cap : {std::size_t(1), std::size_t(3),
                            std::size_t(7), std::size_t(64)}) {
        CodeGenerator gen(23, 5);
        plan(gen);
        std::vector<MicroOp> got;
        MicroOp buf[64];
        bool interleave = false;
        while (!gen.done()) {
            // Alternate block fetches with single next() calls so
            // the equivalence also holds for mixed use.
            if (interleave && cap > 1) {
                got.push_back(gen.next());
            } else {
                std::size_t n = gen.nextBlock(buf, cap);
                ASSERT_GT(n, 0u);
                got.insert(got.end(), buf, buf + n);
            }
            interleave = !interleave;
        }
        ASSERT_EQ(got.size(), want.size()) << "cap " << cap;
        for (std::size_t i = 0; i < want.size(); ++i) {
            EXPECT_EQ(got[i].pc, want[i].pc) << i;
            EXPECT_EQ(got[i].effAddr, want[i].effAddr) << i;
            EXPECT_EQ(got[i].cls, want[i].cls) << i;
            EXPECT_EQ(got[i].depDist, want[i].depDist) << i;
            EXPECT_EQ(got[i].execLat, want[i].execLat) << i;
            EXPECT_EQ(got[i].taken, want[i].taken) << i;
        }
    }
}

} // namespace
} // namespace osp
