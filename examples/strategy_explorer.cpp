/**
 * @file
 * Compare the four re-learning strategies (Sec. 4.4) on any
 * workload: coverage, accuracy, outliers and re-learning events —
 * an interactive version of the paper's Fig. 11.
 *
 * Usage: strategy_explorer [workload] [scale]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/accelerator.hh"
#include "core/report.hh"
#include "util/table.hh"
#include "workload/registry.hh"

int
main(int argc, char **argv)
{
    using namespace osp;

    std::string workload = argc > 1 ? argv[1] : "ab-seq";
    double scale = argc > 2 ? std::atof(argv[2]) : 1.0;
    if (!isWorkload(workload)) {
        std::cerr << "unknown workload '" << workload
                  << "'; choose from:";
        for (const auto &n : allWorkloads())
            std::cerr << " " << n;
        std::cerr << "\n";
        return 1;
    }

    MachineConfig cfg;
    cfg.seed = 42;

    auto ref = makeMachine(workload, cfg, scale);
    const RunTotals &full = ref->run();
    std::cout << "workload " << workload << ": "
              << full.totalInsts() << " instructions, "
              << full.osInvocations << " OS-service invocations, "
              << TablePrinter::pct(full.osInstFraction())
              << " kernel instructions\n\n";

    TablePrinter table({"strategy", "coverage", "time_err",
                        "ipc_err", "outliers", "relearn_events",
                        "est_speedup"});

    for (RelearnStrategy strategy :
         {RelearnStrategy::BestMatch, RelearnStrategy::Statistical,
          RelearnStrategy::Delayed, RelearnStrategy::Eager}) {
        auto machine = makeMachine(workload, cfg, scale);
        PredictorParams pp;
        pp.learningWindow = 100;
        pp.relearn.strategy = strategy;
        pp.auditEvery = 0;  // isolate the strategy axis
        Accelerator accel(pp);
        machine->setController(&accel);
        const RunTotals &t = machine->run();
        auto stats = accel.aggregateStats();

        table.addRow(
            {relearnStrategyName(strategy),
             TablePrinter::pct(t.coverage()),
             TablePrinter::pct(absError(
                 static_cast<double>(t.totalCycles()),
                 static_cast<double>(full.totalCycles()))),
             TablePrinter::pct(absError(t.ipc(), full.ipc())),
             std::to_string(stats.outliers),
             std::to_string(stats.relearnEvents),
             TablePrinter::fmt(estimatedSpeedup(t), 2) + "x"});
    }
    table.print(std::cout);

    std::cout << "\nBest-Match never re-learns (widest coverage, "
                 "worst error); Eager\nre-learns on every outlier "
                 "(best error, least coverage); Statistical\nand "
                 "Delayed sit between — the paper's Fig. 11.\n";
    return 0;
}
