/**
 * @file
 * A realistic design study: how much does a larger L2 help an
 * OS-heavy web server? — the question the paper's introduction uses
 * to motivate full-system simulation (Figs. 2 and 10).
 *
 * The study sweeps L2 sizes three ways:
 *   1. application-only simulation (fast, misleading),
 *   2. full-system simulation (accurate, slow),
 *   3. accelerated full-system simulation (the paper's technique).
 *
 * The accelerated column reproduces the full-system conclusions at a
 * fraction of the detailed-simulation work.
 *
 * Usage: webserver_study [scale]
 */

#include <cstdlib>
#include <iostream>

#include "core/accelerator.hh"
#include "core/report.hh"
#include "util/table.hh"
#include "workload/registry.hh"

int
main(int argc, char **argv)
{
    using namespace osp;

    double scale = argc > 1 ? std::atof(argv[1]) : 1.0;
    const std::uint64_t l2_sizes[] = {256 << 10, 512 << 10,
                                      1 << 20, 2 << 20};

    std::cout << "L2 design study on the ab-rand web server\n\n";
    TablePrinter table({"l2_size", "app_only_cycles",
                        "full_cycles", "accel_cycles", "accel_err",
                        "coverage", "est_speedup"});

    for (std::uint64_t l2 : l2_sizes) {
        MachineConfig cfg;
        cfg.seed = 42;
        cfg.hier.l2.sizeBytes = l2;

        cfg.appOnly = true;
        auto app = makeMachine("ab-rand", cfg, scale);
        Cycles app_cycles = app->run().totalCycles();
        cfg.appOnly = false;

        auto full = makeMachine("ab-rand", cfg, scale);
        Cycles full_cycles = full->run().totalCycles();

        auto fast = makeMachine("ab-rand", cfg, scale);
        Accelerator accel;
        fast->setController(&accel);
        const RunTotals &pred = fast->run();

        table.addRow(
            {std::to_string(l2 >> 10) + "KB",
             std::to_string(app_cycles),
             std::to_string(full_cycles),
             std::to_string(pred.totalCycles()),
             TablePrinter::pct(absError(
                 static_cast<double>(pred.totalCycles()),
                 static_cast<double>(full_cycles))),
             TablePrinter::pct(pred.coverage()),
             TablePrinter::fmt(estimatedSpeedup(pred), 2) + "x"});
    }
    table.print(std::cout);

    std::cout
        << "\nReading the table: application-only cycles barely "
           "move with L2 size\n(the wrong conclusion); full-system "
           "and accelerated cycles agree on the\nreal benefit, and "
           "the accelerated runs skip most detailed OS work.\n";
    return 0;
}
