/**
 * @file
 * Quickstart: accelerate a full-system simulation in ~40 lines.
 *
 * Builds the ab-rand web-server benchmark on the paper's default
 * machine (4-wide OOO core, 16KB L1s, 1MB L2), runs it once fully
 * detailed and once with the accelerator attached, and reports
 * coverage, prediction error and the estimated speedup.
 *
 * Usage: quickstart [workload] [scale]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/accelerator.hh"
#include "core/report.hh"
#include "workload/registry.hh"

int
main(int argc, char **argv)
{
    using namespace osp;

    std::string workload = argc > 1 ? argv[1] : "ab-rand";
    double scale = argc > 2 ? std::atof(argv[2]) : 1.0;

    MachineConfig cfg;
    cfg.seed = 42;

    // Reference: every OS service fully simulated.
    auto full = makeMachine(workload, cfg, scale);
    const RunTotals &ref = full->run();

    // Accelerated: learning + prediction (Statistical strategy).
    auto fast = makeMachine(workload, cfg, scale);
    Accelerator accel;
    fast->setController(&accel);
    const RunTotals &pred = fast->run();

    double err = absError(
        static_cast<double>(pred.totalCycles()),
        static_cast<double>(ref.totalCycles()));

    std::cout << "workload:            " << workload << "\n"
              << "total instructions:  " << ref.totalInsts() << "\n"
              << "OS instruction mix:  "
              << 100.0 * ref.osInstFraction() << "%\n"
              << "OS invocations:      " << pred.osInvocations
              << "\n"
              << "prediction coverage: " << 100.0 * pred.coverage()
              << "%\n"
              << "cycles (full sim):   " << ref.totalCycles() << "\n"
              << "cycles (predicted):  " << pred.totalCycles()
              << "\n"
              << "exec-time error:     " << 100.0 * err << "%\n"
              << "IPC (full sim):      " << ref.ipc() << "\n"
              << "IPC (predicted):     " << pred.ipc() << "\n"
              << "estimated speedup:   " << estimatedSpeedup(pred)
              << "x (Eq. 10, 133x detail/emulation ratio)\n";
    return 0;
}
