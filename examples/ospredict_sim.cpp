/**
 * @file
 * ospredict-sim: the command-line driver a downstream user would
 * actually run. Wraps the whole stack — workload registry, machine
 * configuration, the accelerator, profile save/load — behind flags.
 *
 * Examples:
 *   ospredict_sim --workload ab-rand
 *   ospredict_sim --workload iperf --l2 512K --no-accel
 *   ospredict_sim --workload ab-seq --strategy eager --scale 2
 *   ospredict_sim --workload ab-rand --save-profile ab.plt
 *   ospredict_sim --workload ab-rand --load-profile ab.plt
 *   ospredict_sim --workload du --csv
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "core/accelerator.hh"
#include "core/report.hh"
#include "util/table.hh"
#include "workload/registry.hh"

namespace
{

using namespace osp;

void
usage()
{
    std::cout <<
        "ospredict-sim: accelerated full-system simulation\n"
        "\n"
        "  --workload NAME     one of:";
    for (const auto &n : allWorkloads())
        std::cout << " " << n;
    for (const auto &n : extraWorkloads())
        std::cout << " " << n;
    std::cout <<
        "\n"
        "  --scale F           work-volume scale (default 1.0)\n"
        "  --seed N            master seed (default 42)\n"
        "  --l2 SIZE           L2 size, e.g. 512K, 1M, 4M "
        "(default 1M)\n"
        "  --cpu MODEL         ooo | inorder (default ooo)\n"
        "  --no-accel          full detailed simulation only\n"
        "  --app-only          application-only simulation\n"
        "  --strategy S        best-match | eager | delayed | "
        "statistical\n"
        "  --window N          learning window (default 100)\n"
        "  --mix-signature     use instruction-mix signatures\n"
        "  --save-profile F    write the learned profile to F\n"
        "  --load-profile F    warm-start from a saved profile\n"
        "  --services          per-service breakdown\n"
        "  --csv               machine-readable output\n";
}

std::uint64_t
parseSize(const std::string &s)
{
    char *end = nullptr;
    double v = std::strtod(s.c_str(), &end);
    std::uint64_t mult = 1;
    if (end && *end) {
        switch (*end) {
          case 'k': case 'K': mult = 1024; break;
          case 'm': case 'M': mult = 1024 * 1024; break;
          case 'g': case 'G': mult = 1024 * 1024 * 1024; break;
          default:
            std::cerr << "bad size suffix in '" << s << "'\n";
            std::exit(1);
        }
    }
    return static_cast<std::uint64_t>(v * static_cast<double>(mult));
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace osp;

    std::string workload = "ab-rand";
    double scale = 1.0;
    MachineConfig cfg;
    cfg.seed = 42;
    bool accel_on = true;
    bool services = false;
    bool csv = false;
    PredictorParams pp;
    pp.learningWindow = 100;
    std::string save_profile;
    std::string load_profile;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        auto next = [&]() -> std::string {
            if (i + 1 >= argc) {
                std::cerr << arg << " needs a value\n";
                std::exit(1);
            }
            return argv[++i];
        };
        if (arg == "--workload") {
            workload = next();
        } else if (arg == "--scale") {
            scale = std::atof(next().c_str());
        } else if (arg == "--seed") {
            cfg.seed = std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--l2") {
            cfg.hier.l2.sizeBytes = parseSize(next());
        } else if (arg == "--cpu") {
            std::string m = next();
            cfg.level = m == "inorder" ? DetailLevel::InOrderCache
                                       : DetailLevel::OooCache;
        } else if (arg == "--no-accel") {
            accel_on = false;
        } else if (arg == "--app-only") {
            cfg.appOnly = true;
            accel_on = false;
        } else if (arg == "--strategy") {
            std::string s = next();
            if (s == "best-match")
                pp.relearn.strategy = RelearnStrategy::BestMatch;
            else if (s == "eager")
                pp.relearn.strategy = RelearnStrategy::Eager;
            else if (s == "delayed")
                pp.relearn.strategy = RelearnStrategy::Delayed;
            else if (s == "statistical")
                pp.relearn.strategy = RelearnStrategy::Statistical;
            else {
                std::cerr << "unknown strategy '" << s << "'\n";
                return 1;
            }
        } else if (arg == "--window") {
            pp.learningWindow =
                std::strtoull(next().c_str(), nullptr, 10);
        } else if (arg == "--mix-signature") {
            pp.useMixSignature = true;
        } else if (arg == "--save-profile") {
            save_profile = next();
        } else if (arg == "--load-profile") {
            load_profile = next();
        } else if (arg == "--services") {
            services = true;
        } else if (arg == "--csv") {
            csv = true;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else {
            std::cerr << "unknown flag '" << arg
                      << "' (try --help)\n";
            return 1;
        }
    }

    if (!isWorkload(workload)) {
        std::cerr << "unknown workload '" << workload
                  << "' (try --help)\n";
        return 1;
    }

    auto machine = makeMachine(workload, cfg, scale);
    Accelerator accel(pp);
    if (accel_on) {
        if (!load_profile.empty()) {
            std::ifstream in(load_profile);
            if (!in || !accel.loadState(in)) {
                std::cerr << "failed to load profile '"
                          << load_profile << "'\n";
                return 1;
            }
        }
        machine->setController(&accel);
    }

    const RunTotals &t = machine->run();

    if (accel_on && !save_profile.empty()) {
        std::ofstream out(save_profile);
        if (!out) {
            std::cerr << "cannot write profile '" << save_profile
                      << "'\n";
            return 1;
        }
        accel.saveState(out);
    }

    TablePrinter summary({"metric", "value"});
    summary.addRow({"workload", workload});
    summary.addRow({"instructions",
                    std::to_string(t.totalInsts())});
    summary.addRow({"cycles", std::to_string(t.totalCycles())});
    summary.addRow({"ipc", TablePrinter::fmt(t.ipc(), 4)});
    summary.addRow({"os_inst_fraction",
                    TablePrinter::pct(t.osInstFraction())});
    summary.addRow({"os_invocations",
                    std::to_string(t.osInvocations)});
    if (accel_on) {
        summary.addRow({"coverage",
                        TablePrinter::pct(t.coverage())});
        summary.addRow(
            {"est_speedup_eq10",
             TablePrinter::fmt(estimatedSpeedup(t), 2) + "x"});
        auto stats = accel.aggregateStats();
        summary.addRow({"outliers",
                        std::to_string(stats.outliers)});
        summary.addRow({"relearn_events",
                        std::to_string(stats.relearnEvents)});
    }
    if (csv)
        summary.printCsv(std::cout);
    else
        summary.print(std::cout);

    if (services) {
        std::cout << "\n";
        TablePrinter per({"service", "invocations", "predicted",
                          "insts", "cycles"});
        for (int s = 0; s < numServiceTypes; ++s) {
            const auto &svc = t.perService[s];
            if (!svc.invocations)
                continue;
            per.addRow({serviceName(static_cast<ServiceType>(s)),
                        std::to_string(svc.invocations),
                        std::to_string(svc.predicted),
                        std::to_string(svc.insts),
                        std::to_string(svc.cycles)});
        }
        if (csv)
            per.printCsv(std::cout);
        else
            per.print(std::cout);
    }
    return 0;
}
