/**
 * @file
 * Per-OS-service characterization of a workload — the paper's
 * Sec. 3 methodology packaged as a tool. For each service type it
 * reports invocation counts, instruction/cycle statistics, IPC, and
 * how many scaled clusters (behaviour points) the invocations form.
 *
 * Usage: service_profile [workload] [scale]
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "core/report.hh"
#include "util/table.hh"
#include "workload/registry.hh"

int
main(int argc, char **argv)
{
    using namespace osp;

    std::string workload = argc > 1 ? argv[1] : "ab-rand";
    double scale = argc > 2 ? std::atof(argv[2]) : 1.0;
    if (!isWorkload(workload)) {
        std::cerr << "unknown workload '" << workload << "'\n";
        return 1;
    }

    MachineConfig cfg;
    cfg.seed = 42;
    cfg.recordIntervals = true;
    auto machine = makeMachine(workload, cfg, scale);
    const RunTotals &t = machine->run();

    std::cout << "workload " << workload << ": "
              << t.totalInsts() << " instructions ("
              << TablePrinter::pct(t.osInstFraction())
              << " kernel), IPC " << TablePrinter::fmt(t.ipc(), 3)
              << "\n\n";

    auto chars = characterizeServices(machine->intervals());
    TablePrinter table({"service", "invocations", "insts_avg",
                        "cycles_avg", "cycles_cv", "ipc_avg",
                        "clusters", "clustered_cv"});
    for (const auto &c : chars) {
        table.addRow({serviceName(c.type),
                      std::to_string(c.invocations),
                      TablePrinter::fmt(c.insts.mean(), 0),
                      TablePrinter::fmt(c.cycles.mean(), 0),
                      TablePrinter::fmt(c.cvCycles, 3),
                      TablePrinter::fmt(c.ipc.mean(), 3),
                      std::to_string(c.numClusters),
                      TablePrinter::fmt(c.clusteredCvCycles, 3)});
    }
    table.print(std::cout);

    auto summary = summarizeCv(chars);
    std::cout << "\noccurrence-weighted CV of execution time: "
              << TablePrinter::fmt(summary.cvCycles, 3)
              << " unclustered vs "
              << TablePrinter::fmt(summary.clusteredCvCycles, 3)
              << " with scaled clusters\n"
              << "(few clusters per service + low clustered CV = "
                 "the repetitive behaviour\nthe paper's predictor "
                 "exploits)\n";
    return 0;
}
