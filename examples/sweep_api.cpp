/**
 * @file
 * Using the sweep runner as a library: define a custom cartesian
 * sweep, run it on all cores, and consume the aggregated results —
 * both programmatically and as the machine-readable JSON document
 * the `sweep` CLI writes.
 *
 *   ./build/examples/sweep_api
 */

#include <iostream>

#include "driver/experiments.hh"
#include "driver/sweep.hh"
#include "util/table.hh"

int
main()
{
    using namespace osp;

    // A custom question the paper never asked: how does the
    // Statistical strategy compare against Eager across two L2
    // sizes on the web-server workloads?
    SweepSpec spec;
    spec.name = "strategy-vs-l2";
    spec.workloads = {"ab-rand", "ab-seq"};
    spec.modes = {RunMode::Full, RunMode::Accelerated};
    spec.predictors = {
        {"statistical",
         experimentPredictor(RelearnStrategy::Statistical)},
        {"eager", experimentPredictor(RelearnStrategy::Eager)},
    };
    spec.l2Sizes = {512 * 1024, 1024 * 1024};
    spec.scale = 0.5;

    RunnerOptions opts;
    opts.threads = 0;  // one worker per core
    SweepResult sweep = runSweep(spec, opts);

    // Programmatic consumption: look cells up by coordinates.
    TablePrinter table({"bench", "l2", "strategy", "coverage",
                        "time_err", "est_speedup"});
    for (const auto &name : spec.workloads) {
        for (std::uint64_t l2 : spec.l2Sizes) {
            for (std::size_t v = 0; v < spec.predictors.size();
                 ++v) {
                const CellResult &res = *sweep.find(
                    name, RunMode::Accelerated, v, l2);
                table.addRow(
                    {name, std::to_string(l2 / 1024) + "KB",
                     spec.predictors[v].label,
                     TablePrinter::pct(res.totals.coverage()),
                     TablePrinter::pct(res.cycleError),
                     TablePrinter::fmt(res.estSpeedupR133, 2) +
                         "x"});
            }
        }
    }
    table.print(std::cout);

    std::cout << "\n"
              << sweep.cells.size() << " cells in "
              << TablePrinter::fmt(sweep.wallSeconds, 2)
              << " s on " << sweep.threads << " thread(s)\n\n";

    // Machine-readable consumption: the same document `sweep
    // --out` writes. JsonOptions{.includeTiming = false} gives the
    // canonical form that is byte-identical across thread counts.
    JsonOptions jopts;
    jopts.includeTiming = false;
    JsonValue doc = sweepToJson(sweep, jopts);
    const JsonValue &first = doc["summary"]["predictors"].at(0);
    std::cout << "summary[0]: "
              << first["predictor"].asString() << " mean error "
              << TablePrinter::pct(
                     first["mean_cycle_error"].asDouble())
              << " over "
              << first["cells"].asUint() << " cells\n";
    return 0;
}
