/**
 * @file
 * Named sweeps: the paper experiments that regenerate through the
 * parallel runner (Fig. 8, Fig. 10, Fig. 11, Table 2).
 *
 * Each factory returns the exact configuration the corresponding
 * bench/ binary historically ran serially — same workloads, seed,
 * predictor parameters and work scale — so the runner's aggregated
 * numbers reproduce EXPERIMENTS.md bit-for-bit while the cells
 * execute in parallel. The bench binaries and the `sweep` CLI both
 * build their specs here; tests use the same factories to pin the
 * spec shapes.
 */

#ifndef OSP_DRIVER_EXPERIMENTS_HH
#define OSP_DRIVER_EXPERIMENTS_HH

#include <string>
#include <vector>

#include "sweep.hh"

namespace osp
{

/** The replay seed every documented experiment uses. */
inline constexpr std::uint64_t experimentSeed = 42;

/** Work-volume scale for accuracy experiments (bench common). */
inline constexpr double experimentAccuracyScale = 2.0;

/** Work-volume scale for characterization/shape experiments. */
inline constexpr double experimentShapeScale = 1.0;

/** Sampling parameters for the Fig. 13 composition experiment.
 *  The interval length is quoted at scale 1.0 and shrinks with the
 *  sweep's work scale so interval counts stay comparable. */
inline constexpr std::uint64_t experimentSampleIntervalLen = 20000;
inline constexpr std::uint32_t experimentSampleStrata = 4;
inline constexpr double experimentSampleRate = 0.15;
/** Floor on fig13's scale multiplier: below this the predictor
 *  cannot mature inside the run and the composed corner collapses
 *  to sampling alone (smoke passes 1/20; fig13 runs at 1/4). */
inline constexpr double experimentSampleMinScaleMult = 0.25;

/** The paper's predictor configuration (Sec. 4.3-4.4 defaults:
 *  pmin 3%, DoC 95% -> window 100), with a chosen strategy. */
PredictorParams
experimentPredictor(RelearnStrategy strategy =
                        RelearnStrategy::Statistical);

/**
 * Figure 8: App+OS Pred and App-Only vs full-system, OS-intensive
 * set, Statistical strategy. 15 cells at scale_mult 1.
 */
SweepSpec fig08Sweep(double scale_mult = 1.0);

/**
 * Figure 10: the 1MB-over-512KB L2 speedup under App-Only, App+OS
 * and App+OS Pred. 30 cells.
 */
SweepSpec fig10Sweep(double scale_mult = 1.0);

/**
 * Figure 11: the four re-learning strategies (audits off) plus the
 * repository default (Statistical + audits). 30 cells.
 */
SweepSpec fig11Sweep(double scale_mult = 1.0);

/** Table 2: full-detail baseline vs accelerated run per workload
 *  (Eq. 10 inputs and wall-clock numerator/denominator). */
SweepSpec table2Sweep(double scale_mult = 1.0);

/**
 * Figure 13 (extension): stratified interval sampling composed with
 * OS-service prediction. Per workload: full-detail oracle, the
 * predictor-only run, the sample-only run and the combined run, so
 * the composed shrink of detailed-simulation work can be measured
 * against its two ingredients. 20 cells.
 */
SweepSpec fig13Sweep(double scale_mult = 1.0);

/** Names accepted by makeNamedSweep(), in display order. */
const std::vector<std::string> &namedSweeps();

/**
 * Build a named sweep. @p scale_mult multiplies the experiment's
 * native work scale (smoke runs pass ~1/20); @p smoke labels the
 * result set accordingly.
 */
SweepSpec makeNamedSweep(const std::string &name,
                         double scale_mult = 1.0,
                         bool smoke = false);

} // namespace osp

#endif // OSP_DRIVER_EXPERIMENTS_HH
