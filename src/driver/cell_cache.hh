/**
 * @file
 * The content-addressed sweep-cell result cache — the layer that
 * turns the persistent page store into *incremental sweeps*.
 *
 * Every sweep cell's simulation is a pure function of (expanded
 * cell spec, seed, simulator code, trace capacity, warm-start
 * profile). The cache addresses each cell by a stable 64-bit hash
 * of exactly that tuple, serialized canonically (util/hash.hh over
 * the compact JSON of the context — reproducible from Python):
 *
 *     cell/<code-fingerprint>/<16-hex-digit key>
 *
 * The code fingerprint — a hash of the simulator sources, baked in
 * at build time (or overridden via --fingerprint for tests) — is
 * part of the key path, so any source change orphans every cached
 * cell; commitResults() prunes such stale entries (counted as
 * evictions). A fetched value is decoded (driver/cell_io) and its
 * cell coordinates cross-checked against the request, so even a
 * hash collision degrades to a miss, never a wrong result.
 *
 * Determinism: the cache sits entirely on the sweep's driving
 * thread (lookups before the pool starts, one commit transaction
 * after the join), and a hit reproduces the exact CellResult bytes
 * a fresh run would have produced — so a fully-warm incremental
 * sweep's results.json is byte-identical to a cold run's at every
 * thread count. Volatile statistics (hits/misses/bytes) are kept
 * out of the results document; they live in the cache's own
 * telemetry registry, dumped separately via statsToJson()
 * ("ospredict-store-stats-v1", the --store-stats file).
 */

#ifndef OSP_DRIVER_CELL_CACHE_HH
#define OSP_DRIVER_CELL_CACHE_HH

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "obs/metrics.hh"
#include "store/page_store.hh"
#include "sweep.hh"
#include "util/json.hh"

namespace osp
{

class CellCache
{
  public:
    /**
     * @param store            the backing page store (shared with
     *                         the PLT archive; this layer only
     *                         touches "cell/" keys)
     * @param code_fingerprint hex hash of the simulator sources
     */
    CellCache(store::PageStore &store,
              std::string code_fingerprint);

    /** Register the warm-start profile hash for @p workload:
     *  accelerated cells of that workload get the hash folded into
     *  their cache identity. */
    void setWarmProfileHash(const std::string &workload,
                            std::uint64_t hash);

    /** The 16-hex-digit content hash of one cell (see file
     *  comment). Pure; identical for every thread count. */
    std::string cellKey(const SweepSpec &spec,
                        const SweepCell &cell,
                        std::size_t trace_capacity) const;

    /** The full store key for a cell key. */
    std::string storeKey(const std::string &cell_key) const;

    /**
     * Look up a cached result by cell key, verifying the decoded
     * cell coordinates against @p cell. Counts a hit or a miss.
     *
     * With @p claim_aware set (the --assemble pass), a cell with no
     * cached value but an *exhausted* claim record (state failed)
     * synthesizes the failed CellResult a live worker would have
     * produced — same coordinates, same error text — instead of
     * re-running the cell; counted separately as a failed replay.
     */
    std::optional<CellResult> fetch(const std::string &cell_key,
                                    const SweepCell &cell,
                                    bool claim_aware = false);

    /** Count cells that will run without a lookup (a cold,
     *  non-incremental recording pass). */
    void noteMisses(std::uint64_t n);

    /**
     * Persist executed cells in ONE transaction and drop every
     * "cell/", "claim/", "claimhb/" or "fleet/" entry belonging to
     * a different code fingerprint (counted as evictions). Failed
     * cells are the caller's responsibility to exclude — a cached
     * failure would never be retried.
     */
    void commitResults(
        const std::vector<std::pair<std::string,
                                    const CellResult *>> &items);

    const std::string &fingerprint() const { return fingerprint_; }

    /** The backing store — the claim executor shares the handle to
     *  run its claim/commit transactions. */
    store::PageStore &store() { return store_; }

    /** Volatile cache statistics (hits/misses/inserts/evictions/
     *  bytes), as telemetry counters under component "cell_cache". */
    const obs::Registry &registry() const { return registry_; }

    /**
     * The --store-stats document ("ospredict-store-stats-v1"):
     * cache counters plus the store's page-level statistics.
     * Volatile by design — never part of results.json.
     */
    JsonValue statsToJson();

  private:
    store::PageStore &store_;
    std::string fingerprint_;
    std::map<std::string, std::uint64_t> warmProfileHash_;
    obs::Registry registry_;
};

} // namespace osp

#endif // OSP_DRIVER_CELL_CACHE_HH
