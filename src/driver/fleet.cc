#include "fleet.hh"

#include <algorithm>
#include <ostream>

#include <unistd.h>

#include "obs/snapshot_io.hh"
#include "obs/telemetry.hh"
#include "store/claim_table.hh"

namespace osp
{

namespace
{

/** Signals a malformed snapshot to decodeWorkerSnapshot's catch. */
struct BadSnapshot
{
};

const JsonValue &
field(const JsonValue &obj, std::string_view key)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        throw BadSnapshot{};
    return *v;
}

JsonValue
statsToJson(const WorkerStats &s)
{
    JsonValue v = JsonValue::object();
    v.add("claimed", s.claimed);
    v.add("executed", s.executed);
    v.add("committed", s.committed);
    v.add("reclaimed", s.reclaimed);
    v.add("retries_recorded", s.retriesRecorded);
    v.add("exhausted", s.exhausted);
    v.add("lost_leases", s.lostLeases);
    v.add("polls", s.polls);
    v.add("heartbeats", s.heartbeats);
    v.add("refreshes", s.refreshes);
    return v;
}

WorkerStats
statsFromJson(const JsonValue &v)
{
    if (!v.isObject())
        throw BadSnapshot{};
    WorkerStats s;
    s.claimed = field(v, "claimed").asUint();
    s.executed = field(v, "executed").asUint();
    s.committed = field(v, "committed").asUint();
    s.reclaimed = field(v, "reclaimed").asUint();
    s.retriesRecorded = field(v, "retries_recorded").asUint();
    s.exhausted = field(v, "exhausted").asUint();
    s.lostLeases = field(v, "lost_leases").asUint();
    s.polls = field(v, "polls").asUint();
    s.heartbeats = field(v, "heartbeats").asUint();
    s.refreshes = field(v, "refreshes").asUint();
    return s;
}

std::uint64_t
steadyUsSince(std::chrono::steady_clock::time_point t0)
{
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::microseconds>(
            std::chrono::steady_clock::now() - t0)
            .count());
}

} // namespace

const char *
fleetEventKindName(FleetEventKind kind)
{
    switch (kind) {
    case FleetEventKind::Claimed:
        return "claimed";
    case FleetEventKind::Reclaimed:
        return "reclaimed";
    case FleetEventKind::Executed:
        return "executed";
    case FleetEventKind::Committed:
        return "committed";
    case FleetEventKind::Retry:
        return "retry";
    case FleetEventKind::Failed:
        return "failed";
    case FleetEventKind::LostLease:
        return "lost_lease";
    case FleetEventKind::Poll:
        return "poll";
    case FleetEventKind::Exited:
        return "exited";
    }
    return "unknown";
}

std::string
fleetKey(const std::string &fingerprint, const std::string &owner)
{
    return "fleet/" + fingerprint + "/" + owner;
}

std::string
encodeWorkerSnapshot(const WorkerSnapshot &snap)
{
    JsonValue doc = JsonValue::object();
    doc.add("schema", std::string(workerSnapshotSchema));
    doc.add("owner", snap.owner);
    doc.add("pid", snap.pid);
    doc.add("version", snap.version);
    doc.add("epoch", snap.epoch);
    doc.add("phase", snap.exited ? "exited" : "running");
    doc.add("start_unix_us", snap.startUnixUs);
    doc.add("uptime_us", snap.uptimeUs);
    doc.add("stats", statsToJson(snap.stats));
    doc.add("rings_with_drops", snap.ringsWithDrops);
    doc.add("total_dropped", snap.totalDropped);
    JsonValue walls = JsonValue::array();
    for (const auto &[index, us] : snap.cellWalls) {
        JsonValue w = JsonValue::array();
        w.append(index);
        w.append(us);
        walls.append(std::move(w));
    }
    doc.add("cell_walls", std::move(walls));
    JsonValue events = JsonValue::array();
    for (const FleetEvent &ev : snap.events) {
        JsonValue e = JsonValue::array();
        e.append(ev.tUs);
        e.append(static_cast<std::uint64_t>(ev.kind));
        e.append(ev.cell);
        e.append(ev.durUs);
        events.append(std::move(e));
    }
    doc.add("events", std::move(events));
    doc.add("events_dropped", snap.eventsDropped);
    doc.add("metrics", obs::metricsSnapshotToJson(snap.metrics));
    return doc.dump(-1);
}

std::optional<WorkerSnapshot>
decodeWorkerSnapshot(std::string_view text)
try {
    bool ok = false;
    JsonValue doc = JsonValue::parse(text, &ok);
    if (!ok || !doc.isObject())
        return std::nullopt;
    const JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != workerSnapshotSchema)
        return std::nullopt;

    WorkerSnapshot snap;
    snap.owner = field(doc, "owner").asString();
    snap.pid = field(doc, "pid").asUint();
    snap.version = field(doc, "version").asUint();
    snap.epoch = field(doc, "epoch").asUint();
    std::string phase = field(doc, "phase").asString();
    if (phase != "running" && phase != "exited")
        return std::nullopt;
    snap.exited = phase == "exited";
    snap.startUnixUs = field(doc, "start_unix_us").asUint();
    snap.uptimeUs = field(doc, "uptime_us").asUint();
    snap.stats = statsFromJson(field(doc, "stats"));
    snap.ringsWithDrops = field(doc, "rings_with_drops").asUint();
    snap.totalDropped = field(doc, "total_dropped").asUint();
    for (const JsonValue &w : field(doc, "cell_walls").elements()) {
        if (!w.isArray() || w.size() != 2)
            return std::nullopt;
        snap.cellWalls.emplace_back(w.at(0).asUint(),
                                    w.at(1).asUint());
    }
    for (const JsonValue &e : field(doc, "events").elements()) {
        if (!e.isArray() || e.size() != 4)
            return std::nullopt;
        FleetEvent ev;
        ev.tUs = e.at(0).asUint();
        std::uint64_t kind = e.at(1).asUint();
        if (kind >= numFleetEventKinds)
            return std::nullopt;
        ev.kind = static_cast<FleetEventKind>(kind);
        ev.cell = e.at(2).asUint();
        ev.durUs = e.at(3).asUint();
        snap.events.push_back(ev);
    }
    snap.eventsDropped = field(doc, "events_dropped").asUint();
    if (!obs::metricsSnapshotFromJson(field(doc, "metrics"),
                                      snap.metrics))
        return std::nullopt;
    return snap;
} catch (const BadSnapshot &) {
    return std::nullopt;
}

// --- FleetPublisher --------------------------------------------------

FleetPublisher::FleetPublisher(std::string fingerprint,
                               std::string owner,
                               std::size_t event_capacity)
    : fingerprint_(std::move(fingerprint)),
      owner_(std::move(owner)), eventCapacity_(event_capacity),
      pid_(static_cast<std::uint64_t>(::getpid())),
      startUnixUs_(static_cast<std::uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::system_clock::now().time_since_epoch())
              .count())),
      start_(std::chrono::steady_clock::now())
{
}

std::uint64_t
FleetPublisher::nowUs() const
{
    return steadyUsSince(start_);
}

void
FleetPublisher::noteEvent(FleetEventKind kind, std::uint64_t cell,
                          std::uint64_t dur_us, std::uint64_t t_us)
{
    if (eventCapacity_ == 0) {
        ++eventsDropped_;
        return;
    }
    if (events_.size() >= eventCapacity_) {
        events_.erase(events_.begin());
        ++eventsDropped_;
    }
    FleetEvent ev;
    ev.tUs = t_us == UINT64_MAX ? nowUs() : t_us;
    ev.kind = kind;
    ev.cell = cell;
    ev.durUs = dur_us;
    events_.push_back(ev);
}

void
FleetPublisher::noteCellWall(std::uint64_t cell_index,
                             std::uint64_t wall_us)
{
    cellWalls_.emplace_back(cell_index, wall_us);
    registry_.histogram("claim_loop", "cell_wall_us")
        .observe(wall_us);
}

void
FleetPublisher::noteTraceDrops(std::uint64_t dropped)
{
    if (dropped == 0)
        return;
    ++ringsWithDrops_;
    totalDropped_ += dropped;
}

void
FleetPublisher::observeClaimTx(std::uint64_t us)
{
    registry_.histogram("claim_loop", "claim_tx_us").observe(us);
}

void
FleetPublisher::observeCommitTx(std::uint64_t us)
{
    registry_.histogram("claim_loop", "commit_tx_us").observe(us);
}

void
FleetPublisher::publish(store::WriteTx &tx,
                        store::PageStore &store,
                        const WorkerStats &stats,
                        std::uint64_t epoch, bool exited)
{
    WorkerSnapshot snap;
    snap.owner = owner_;
    snap.pid = pid_;
    snap.version = ++version_;
    snap.epoch = epoch;
    snap.exited = exited;
    snap.startUnixUs = startUnixUs_;
    snap.uptimeUs = nowUs();
    snap.stats = stats;
    snap.ringsWithDrops = ringsWithDrops_;
    snap.totalDropped = totalDropped_;
    snap.cellWalls = cellWalls_;
    snap.events = events_;
    snap.eventsDropped = eventsDropped_;

    // Merged-metrics payload: the claim loop's own histograms, then
    // the store's self-profile as component "store". Entries must
    // stay in sorted (component, name) order for merge();
    // "claim_loop" < "store" and the store names are appended
    // alphabetically, so plain push_back preserves it.
    snap.metrics = registry_.snapshot();
    store::StoreProfile p = store.profile();
    snap.metrics.counters.push_back(
        {"store", "commit_count", p.commitCount});
    snap.metrics.counters.push_back(
        {"store", "commit_us_total", p.commitUsTotal});
    snap.metrics.counters.push_back(
        {"store", "lock_acquisitions", p.lockAcquisitions});
    snap.metrics.counters.push_back(
        {"store", "lock_wait_us_total", p.lockWaitUsTotal});
    snap.metrics.counters.push_back(
        {"store", "pages_written_total", p.pagesWrittenTotal});
    snap.metrics.histograms.push_back(obs::histogramEntry(
        "store", "commit_cow_pages", p.commitCowPages));
    snap.metrics.histograms.push_back(obs::histogramEntry(
        "store", "commit_leaf_reads", p.commitLeafReads));
    snap.metrics.histograms.push_back(
        obs::histogramEntry("store", "commit_us", p.commitUs));
    snap.metrics.histograms.push_back(
        obs::histogramEntry("store", "lock_wait_us", p.lockWaitUs));

    tx.put(fleetKey(fingerprint_, owner_),
           encodeWorkerSnapshot(snap));
}

// --- aggregation -----------------------------------------------------

FleetView
readFleetView(store::PageStore &store,
              const std::string &fingerprint,
              const std::vector<std::string> &cell_keys)
{
    FleetView view;
    view.fingerprint = fingerprint;
    store::ClaimTable table(fingerprint);

    store::ReadTx read = store.beginRead();
    view.heartbeat = table.heartbeat(read);

    view.cells.total = cell_keys.size();
    const std::string cell_prefix = "cell/" + fingerprint + "/";
    for (const std::string &key : cell_keys) {
        if (read.get(cell_prefix + key)) {
            ++view.cells.done;
            continue;
        }
        auto rec = table.get(read, key);
        if (!rec) {
            ++view.cells.unclaimed;
            continue;
        }
        switch (rec->state) {
        case store::ClaimState::Done:
            ++view.cells.done;
            break;
        case store::ClaimState::Failed:
            ++view.cells.failed;
            break;
        case store::ClaimState::Claimed:
            ++view.cells.claimed;
            break;
        case store::ClaimState::Retry:
            ++view.cells.retry;
            break;
        }
    }

    // Worker snapshots scan in key order, which is owner order —
    // the aggregation (and every report derived from it) is
    // deterministic in the store contents alone.
    const std::string prefix = "fleet/" + fingerprint + "/";
    read.scan(prefix, [&](std::string_view, std::string_view v) {
        if (auto snap = decodeWorkerSnapshot(v))
            view.workers.push_back(std::move(*snap));
        return true;
    });

    for (const WorkerSnapshot &w : view.workers) {
        view.totals.claimed += w.stats.claimed;
        view.totals.executed += w.stats.executed;
        view.totals.committed += w.stats.committed;
        view.totals.reclaimed += w.stats.reclaimed;
        view.totals.retriesRecorded += w.stats.retriesRecorded;
        view.totals.exhausted += w.stats.exhausted;
        view.totals.lostLeases += w.stats.lostLeases;
        view.totals.polls += w.stats.polls;
        view.totals.heartbeats += w.stats.heartbeats;
        view.totals.refreshes += w.stats.refreshes;
        view.ringsWithDrops += w.ringsWithDrops;
        view.totalDropped += w.totalDropped;
        view.merged.merge(w.metrics);
    }
    return view;
}

namespace
{

std::uint64_t
heartbeatLag(const FleetView &view, const WorkerSnapshot &w)
{
    return view.heartbeat >= w.epoch ? view.heartbeat - w.epoch : 0;
}

const char *
workerPhase(const FleetView &view, const WorkerSnapshot &w,
            std::uint64_t lease_ticks)
{
    if (w.exited)
        return "exited";
    return heartbeatLag(view, w) > lease_ticks ? "stale" : "live";
}

} // namespace

JsonValue
fleetReportToJson(const FleetView &view)
{
    JsonValue doc = JsonValue::object();
    doc.add("schema", std::string(fleetReportSchema));
    doc.add("fingerprint", view.fingerprint);
    doc.add("sweep", view.sweep);
    doc.add("heartbeat", view.heartbeat);

    JsonValue cells = JsonValue::object();
    cells.add("total", view.cells.total);
    cells.add("done", view.cells.done);
    cells.add("failed", view.cells.failed);
    cells.add("claimed", view.cells.claimed);
    cells.add("retry", view.cells.retry);
    cells.add("unclaimed", view.cells.unclaimed);
    cells.add("outstanding", view.cells.outstanding());
    doc.add("cells", std::move(cells));

    JsonValue totals = statsToJson(view.totals);
    totals.add("rings_with_drops", view.ringsWithDrops);
    totals.add("total_dropped", view.totalDropped);
    doc.add("totals", std::move(totals));

    JsonValue workers = JsonValue::array();
    for (const WorkerSnapshot &w : view.workers) {
        JsonValue v = JsonValue::object();
        v.add("owner", w.owner);
        v.add("pid", w.pid);
        v.add("phase", w.exited ? "exited" : "running");
        v.add("version", w.version);
        v.add("epoch", w.epoch);
        v.add("heartbeat_lag", heartbeatLag(view, w));
        v.add("start_unix_us", w.startUnixUs);
        v.add("uptime_us", w.uptimeUs);
        v.add("stats", statsToJson(w.stats));
        v.add("rings_with_drops", w.ringsWithDrops);
        v.add("total_dropped", w.totalDropped);
        v.add("cells_executed",
              static_cast<std::uint64_t>(w.cellWalls.size()));
        std::uint64_t wall_us = 0;
        for (const auto &[index, us] : w.cellWalls)
            wall_us += us;
        v.add("cell_wall_us_total", wall_us);
        v.add("events",
              static_cast<std::uint64_t>(w.events.size()));
        v.add("events_dropped", w.eventsDropped);
        workers.append(std::move(v));
    }
    doc.add("workers", std::move(workers));

    doc.add("metrics", obs::metricsSnapshotToJson(view.merged));
    return doc;
}

void
writeFleetReport(std::ostream &os, const FleetView &view)
{
    fleetReportToJson(view).write(os, 2);
    os << "\n";
}

// --- Prometheus text exposition --------------------------------------

namespace
{

/** Escape a Prometheus label value (\, ", newline). */
std::string
promEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        if (c == '\\' || c == '"')
            out += '\\';
        if (c == '\n') {
            out += "\\n";
            continue;
        }
        out += c;
    }
    return out;
}

/** One `name{labels} value` sample line. */
void
promSample(std::ostream &os, const std::string &name,
           const std::string &labels, std::uint64_t value)
{
    os << name;
    if (!labels.empty())
        os << "{" << labels << "}";
    os << " " << value << "\n";
}

void
promType(std::ostream &os, const std::string &name,
         const char *type, const char *help)
{
    os << "# HELP " << name << " " << help << "\n";
    os << "# TYPE " << name << " " << type << "\n";
}

} // namespace

void
writePrometheusReport(std::ostream &os, const FleetView &view)
{
    const std::string fleet_labels = "sweep=\"" +
                                     promEscape(view.sweep) +
                                     "\"";

    promType(os, "ospredict_fleet_heartbeat", "gauge",
             "Logical heartbeat counter of the sweep fingerprint.");
    promSample(os, "ospredict_fleet_heartbeat", fleet_labels,
               view.heartbeat);

    promType(os, "ospredict_fleet_cells", "gauge",
             "Sweep cells by claim/result state.");
    const std::pair<const char *, std::uint64_t> states[] = {
        {"done", view.cells.done},
        {"failed", view.cells.failed},
        {"claimed", view.cells.claimed},
        {"retry", view.cells.retry},
        {"unclaimed", view.cells.unclaimed},
    };
    for (const auto &[state, count] : states)
        promSample(os, "ospredict_fleet_cells",
                   fleet_labels + ",state=\"" + state + "\"",
                   count);
    promType(os, "ospredict_fleet_cells_total", "gauge",
             "Total cells in the sweep expansion.");
    promSample(os, "ospredict_fleet_cells_total", fleet_labels,
               view.cells.total);

    promType(os, "ospredict_worker_up", "gauge",
             "1 while the worker is running, 0 after a clean exit.");
    for (const WorkerSnapshot &w : view.workers)
        promSample(os, "ospredict_worker_up",
                   "owner=\"" + promEscape(w.owner) + "\"",
                   w.exited ? 0 : 1);
    promType(os, "ospredict_worker_heartbeat_lag", "gauge",
             "Heartbeat ticks since the worker's last snapshot.");
    for (const WorkerSnapshot &w : view.workers)
        promSample(os, "ospredict_worker_heartbeat_lag",
                   "owner=\"" + promEscape(w.owner) + "\"",
                   heartbeatLag(view, w));
    promType(os, "ospredict_worker_snapshot_version", "gauge",
             "Snapshot publish counter of the worker.");
    for (const WorkerSnapshot &w : view.workers)
        promSample(os, "ospredict_worker_snapshot_version",
                   "owner=\"" + promEscape(w.owner) + "\"",
                   w.version);

    struct StatColumn
    {
        const char *name;
        const char *help;
        std::uint64_t WorkerStats::*member;
    };
    const StatColumn columns[] = {
        {"claimed", "Claim transactions won.",
         &WorkerStats::claimed},
        {"executed", "Cells actually run.", &WorkerStats::executed},
        {"committed", "Results committed (done).",
         &WorkerStats::committed},
        {"reclaimed", "Expired leases taken over.",
         &WorkerStats::reclaimed},
        {"retries_recorded", "Failures marked retry.",
         &WorkerStats::retriesRecorded},
        {"exhausted", "Cells marked terminally failed.",
         &WorkerStats::exhausted},
        {"lost_leases", "Results discarded (lease reclaimed).",
         &WorkerStats::lostLeases},
        {"polls", "Idle waits on live leases.",
         &WorkerStats::polls},
        {"heartbeats", "Heartbeat bumps.",
         &WorkerStats::heartbeats},
        {"refreshes", "Lease epochs re-asserted mid-execution.",
         &WorkerStats::refreshes},
    };
    for (const StatColumn &col : columns) {
        std::string name =
            std::string("ospredict_worker_") + col.name + "_total";
        promType(os, name, "counter", col.help);
        for (const WorkerSnapshot &w : view.workers)
            promSample(os, name,
                       "owner=\"" + promEscape(w.owner) + "\"",
                       w.stats.*col.member);
    }

    promType(os, "ospredict_worker_trace_dropped_total", "counter",
             "Trace events dropped by the worker's executed cells.");
    for (const WorkerSnapshot &w : view.workers)
        promSample(os, "ospredict_worker_trace_dropped_total",
                   "owner=\"" + promEscape(w.owner) + "\"",
                   w.totalDropped);

    // Merged histograms, in cumulative-bucket exposition. A bucket
    // with inclusive lower bound L covers [L, 2L-1] (power-of-two
    // layout), so its le is 2L-1 (0 for the zero bucket).
    for (const obs::HistogramEntry &h : view.merged.histograms) {
        std::string name =
            "ospredict_" + h.component + "_" + h.name;
        promType(os, name, "histogram",
                 "Merged across fleet workers.");
        std::uint64_t cumulative = 0;
        for (const auto &[low, count] : h.buckets) {
            cumulative += count;
            std::uint64_t le = low == 0 ? 0 : 2 * low - 1;
            promSample(os, name + "_bucket",
                       "le=\"" + std::to_string(le) + "\"",
                       cumulative);
        }
        promSample(os, name + "_bucket", "le=\"+Inf\"", h.count);
        promSample(os, name + "_sum", "", h.sum);
        promSample(os, name + "_count", "", h.count);
    }
}

// --- monitor rendering -----------------------------------------------

void
renderFleetStatus(std::ostream &os, const FleetView &view,
                  std::uint64_t lease_ticks)
{
    os << "fleet " << (view.sweep.empty() ? "?" : view.sweep)
       << ": fingerprint " << view.fingerprint << ", heartbeat "
       << view.heartbeat << "\n";
    os << "  cells: " << view.cells.done << "/" << view.cells.total
       << " done, " << view.cells.failed << " failed, "
       << view.cells.claimed << " claimed, " << view.cells.retry
       << " retry, " << view.cells.unclaimed << " unclaimed\n";

    std::uint64_t live = 0;
    std::uint64_t wall_us = 0;
    std::uint64_t walls = 0;
    for (const WorkerSnapshot &w : view.workers) {
        const char *phase = workerPhase(view, w, lease_ticks);
        if (std::string_view(phase) == "live")
            ++live;
        for (const auto &[index, us] : w.cellWalls) {
            wall_us += us;
            ++walls;
        }
        os << "  worker " << w.owner << " [" << phase << "] pid "
           << w.pid << " v" << w.version << " lag "
           << heartbeatLag(view, w) << ": claimed "
           << w.stats.claimed << ", executed " << w.stats.executed
           << ", committed " << w.stats.committed << ", reclaimed "
           << w.stats.reclaimed << ", lost " << w.stats.lostLeases
           << ", polls " << w.stats.polls;
        if (w.totalDropped)
            os << ", dropped " << w.totalDropped;
        os << "\n";
    }
    if (view.workers.empty())
        os << "  (no worker snapshots yet)\n";

    std::uint64_t outstanding = view.cells.outstanding();
    if (outstanding == 0) {
        os << "  complete\n";
        return;
    }
    if (walls && live) {
        double mean_us =
            static_cast<double>(wall_us) / static_cast<double>(walls);
        double eta_s = static_cast<double>(outstanding) * mean_us /
                       static_cast<double>(live) / 1e6;
        os << "  throughput: " << walls << " cells, mean "
           << mean_us / 1000.0 << " ms/cell; eta ~" << eta_s
           << " s (" << live << " live worker(s))\n";
    } else if (live == 0) {
        os << "  stalled: " << outstanding
           << " cell(s) outstanding, no live workers\n";
    } else {
        os << "  " << outstanding
           << " cell(s) outstanding (no timing history yet)\n";
    }
}

void
warnFleetDrops(const FleetView &view)
{
    for (const WorkerSnapshot &w : view.workers) {
        if (w.totalDropped == 0)
            continue;
        std::string what = "fleet worker " + w.owner;
        obs::warnIfDropped(what.c_str(), w.ringsWithDrops,
                           w.totalDropped);
    }
}

// --- merged chrome trace ---------------------------------------------

void
writeMergedChromeTrace(std::ostream &os, const SweepResult &result,
                       const FleetView &view)
{
    JsonValue doc = JsonValue::object();
    JsonValue events = JsonValue::array();

    // Cell lanes, byte-identical to writeChromeTrace's.
    appendCellTraceEvents(events, result);

    // One process lane per worker, keyed by its real pid, laid out
    // in microseconds since the Unix epoch (each event's wall time
    // reconstructed from the worker's start stamp + steady offset).
    for (const WorkerSnapshot &w : view.workers) {
        JsonValue meta = JsonValue::object();
        meta.add("name", "process_name");
        meta.add("ph", "M");
        meta.add("pid", w.pid);
        JsonValue margs = JsonValue::object();
        margs.add("name", "worker " + w.owner);
        meta.add("args", std::move(margs));
        events.append(std::move(meta));

        JsonValue tmeta = JsonValue::object();
        tmeta.add("name", "thread_name");
        tmeta.add("ph", "M");
        tmeta.add("pid", w.pid);
        tmeta.add("tid", std::uint64_t{0});
        JsonValue targs = JsonValue::object();
        targs.add("name", "claim-loop");
        tmeta.add("args", std::move(targs));
        events.append(std::move(tmeta));

        for (const FleetEvent &ev : w.events) {
            JsonValue e = JsonValue::object();
            e.add("name", fleetEventKindName(ev.kind));
            e.add("pid", w.pid);
            e.add("tid", std::uint64_t{0});
            e.add("ts", w.startUnixUs + ev.tUs);
            if (ev.kind == FleetEventKind::Executed) {
                e.add("ph", "X");
                e.add("dur", ev.durUs);
            } else {
                e.add("ph", "i");
                e.add("s", "t");
            }
            JsonValue args = JsonValue::object();
            args.add("owner", w.owner);
            if (ev.cell != FleetEvent::noCell)
                args.add("cell", ev.cell);
            e.add("args", std::move(args));
            events.append(std::move(e));
        }
    }

    doc.add("traceEvents", std::move(events));
    doc.add("displayTimeUnit", "ns");
    JsonValue other = JsonValue::object();
    other.add("clock",
              "cell lanes: retired-instructions; worker lanes: "
              "unix-epoch microseconds");
    other.add("sweep", result.spec.name);
    other.add("workers",
              static_cast<std::uint64_t>(view.workers.size()));
    doc.add("otherData", std::move(other));
    doc.write(os, 2);
    os << "\n";
}

} // namespace osp
