/**
 * @file
 * The claim-loop executor: one worker process's share of a
 * distributed sweep.
 *
 * N workers open the same store in shared mode (see
 * store/page_store.hh) and race over the expanded spec through the
 * claim table (store/claim_table.hh). The loop alternates two
 * store transactions around lock-free execution:
 *
 *  1. *Claim.* One write transaction: bump the heartbeat, walk the
 *     cells in index order, skip every cell with a committed result
 *     or a terminal claim, and take the first cell that is
 *     unclaimed, awaiting retry, or whose claim's lease has expired
 *     (heartbeat - epoch > leaseTicks — the owner stopped
 *     refreshing). Reclaiming an expired lease is free: only
 *     execution failures charge retries, so lease churn alone can
 *     never drive a cell to the terminal failed state.
 *  2. *Execute.* runCell() (or the test seam) outside any
 *     transaction — the expensive part runs unserialized, which is
 *     where the multi-process speedup comes from. A background
 *     refresher thread re-asserts the claim's epoch every
 *     refreshMs, so the lease stays fresh however long the cell
 *     takes while other workers' poll transactions advance the
 *     heartbeat.
 *  3. *Commit.* One write transaction: bump the heartbeat, verify
 *     the claim is still ours (a worker whose lease was somehow
 *     reclaimed finds another owner and discards its result — the
 *     duplicate execution is benign because cells are
 *     deterministic), then atomically put the encoded cell value
 *     and the done-state claim. A cell that threw records a retry-
 *     state claim (or failed, on exhaustion) with the error text.
 *
 * When every remaining cell is claimed by live leases the worker
 * polls with exponential backoff; it exits when nothing is left to
 * claim and no other worker's lease is outstanding.
 */

#ifndef OSP_DRIVER_CLAIM_EXECUTOR_HH
#define OSP_DRIVER_CLAIM_EXECUTOR_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "sweep.hh"
#include "util/json.hh"

namespace osp
{

class CellCache;

/** Policy and identity of one claim-loop worker. */
struct WorkerOptions
{
    /** Unique worker id recorded in claim records. */
    std::string owner = "worker";
    /** Lease length in heartbeat ticks: a claim whose epoch lags
     *  the counter by more than this is reclaimable. */
    std::uint64_t leaseTicks = 64;
    /** Total attempts a cell gets before it is marked failed.
     *  Only execution failures count; lease-expiry reclaims are
     *  free. */
    std::uint64_t maxRetries = 3;
    /** Initial idle-poll sleep (doubles up to 1 s) while waiting on
     *  other workers' live leases. */
    long pollMs = 50;
    /** Wall-clock period of the background refresher that
     *  re-asserts this worker's claim epoch while a cell executes,
     *  keeping the lease fresh under other workers' heartbeat
     *  bumps (0 disables refreshing — test seam). */
    long refreshMs = 200;
    /** As RunnerOptions: per-cell event-ring size. */
    std::size_t traceCapacity = 0;
    /** As RunnerOptions: archived PLT profiles by workload. */
    const std::map<std::string, std::string> *warmProfiles = nullptr;
    /** As RunnerOptions: test seam replacing runCell(). */
    std::function<CellResult(const SweepSpec &, const SweepCell &,
                             std::size_t trace_capacity)>
        cellRunner;
    /**
     * Crash-test seam (--kill-after-claim): raise SIGKILL on
     * ourselves right after the first claim transaction commits, so
     * CI gets a victim that dies holding exactly one live lease.
     */
    bool killAfterFirstClaim = false;
    /**
     * Publish fleet/<fingerprint>/<owner> telemetry snapshots
     * (driver/fleet.hh) by piggybacking on every claim and commit
     * transaction. Costs one extra key write per transaction the
     * worker was making anyway; disable for single-process tests
     * that assert exact store contents.
     */
    bool publishFleet = true;
    /** Lifecycle-event ring size in the published snapshots (oldest
     *  dropped beyond this; 0 keeps none). */
    std::size_t fleetEventCapacity = 256;
};

/** What one worker did, for the per-worker stats document. */
struct WorkerStats
{
    std::uint64_t claimed = 0;    //!< claim transactions won
    std::uint64_t executed = 0;   //!< cells actually run
    std::uint64_t committed = 0;  //!< results committed (done)
    std::uint64_t reclaimed = 0;  //!< expired leases taken over
    std::uint64_t retriesRecorded = 0;  //!< failures marked retry
    std::uint64_t exhausted = 0;  //!< cells marked failed terminal
    std::uint64_t lostLeases = 0; //!< results discarded (reclaimed)
    std::uint64_t polls = 0;      //!< idle waits on live leases
    std::uint64_t heartbeats = 0; //!< heartbeat bumps
    std::uint64_t refreshes = 0;  //!< lease epochs re-asserted
                                  //!< mid-execution
};

/**
 * Run the claim loop over @p spec until no claimable work remains.
 * The cache supplies cell keys, the fingerprint and the shared
 * store handle; the store must be open in shared mode when other
 * workers run concurrently.
 */
WorkerStats runSweepWorker(const SweepSpec &spec, CellCache &cache,
                           const WorkerOptions &options);

/** The "worker" section of the per-worker stats document. */
JsonValue workerStatsToJson(const WorkerStats &stats,
                            const std::string &owner);

} // namespace osp

#endif // OSP_DRIVER_CLAIM_EXECUTOR_HH
