#include "sweep.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <exception>
#include <map>
#include <sstream>

#include "cell_cache.hh"
#include "core/accelerator.hh"
#include "thread_pool.hh"
#include "util/logging.hh"
#include "util/table.hh"
#include "workload/registry.hh"

namespace osp
{

const char *
runModeName(RunMode mode)
{
    switch (mode) {
      case RunMode::Full: return "full";
      case RunMode::AppOnly: return "app-only";
      case RunMode::Accelerated: return "accelerated";
      case RunMode::Sampled: return "sampled";
      case RunMode::SampledAccel: return "sampled-accel";
    }
    return "?";
}

bool
isSampledMode(RunMode mode)
{
    return mode == RunMode::Sampled ||
           mode == RunMode::SampledAccel;
}

std::uint64_t
cellSeed(std::uint64_t base_seed, std::uint64_t seed_index)
{
    if (seed_index == 0)
        return base_seed;
    // splitmix64 of (base, index): cheap, full-period, and well
    // decorrelated — each replication gets an independent stream.
    std::uint64_t z =
        base_seed + seed_index * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

namespace
{

bool
needsPredictor(RunMode mode)
{
    return mode == RunMode::Accelerated ||
           mode == RunMode::SampledAccel;
}

void
validateSpec(const SweepSpec &spec)
{
    if (spec.workloads.empty())
        osp_panic("SweepSpec '", spec.name.c_str(),
                  "': no workloads");
    for (const auto &w : spec.workloads) {
        if (!isWorkload(w))
            osp_panic("SweepSpec: unknown workload ", w.c_str());
    }
    if (spec.modes.empty())
        osp_panic("SweepSpec: no run modes");
    if (spec.l2Sizes.empty())
        osp_panic("SweepSpec: no L2 sizes");
    if (spec.numSeeds == 0)
        osp_panic("SweepSpec: numSeeds must be >= 1");
    for (RunMode m : spec.modes) {
        if (needsPredictor(m) &&
            (spec.predictors.empty() || spec.pollution.empty()))
            osp_panic("SweepSpec: Accelerated mode requires at "
                      "least one predictor variant and pollution "
                      "policy");
        if (isSampledMode(m)) {
            if (!spec.sample.enabled)
                osp_panic("SweepSpec: sampled modes require "
                          "sample.enabled");
            if (spec.sample.intervalLen == 0)
                osp_panic("SweepSpec: sample.intervalLen must be "
                          ">= 1");
            if (spec.sample.strata == 0)
                osp_panic("SweepSpec: sample.strata must be >= 1");
            if (!(spec.sample.rate > 0.0) ||
                spec.sample.rate > 1.0)
                osp_panic("SweepSpec: sample.rate must be in "
                          "(0, 1]");
            if (!isDetailed(spec.baseConfig.level))
                osp_panic("SweepSpec: sampled modes require a "
                          "detailed base level");
        }
    }
    if (spec.scale <= 0.0)
        osp_panic("SweepSpec: scale must be positive");
}

} // namespace

void
setSweepBackend(SweepSpec &spec, PredictorBackendKind kind)
{
    for (PredictorVariant &p : spec.predictors)
        p.params.backend = kind;
}

void
applySweepSampling(SweepSpec &spec, const SampleParams &params)
{
    spec.sample = params;
    spec.sample.enabled = true;
    auto has = [&](RunMode m) {
        return std::find(spec.modes.begin(), spec.modes.end(), m) !=
               spec.modes.end();
    };
    bool full = has(RunMode::Full);
    bool accel =
        has(RunMode::Accelerated) && !spec.predictors.empty();
    if (full && !has(RunMode::Sampled))
        spec.modes.push_back(RunMode::Sampled);
    if (accel && !has(RunMode::SampledAccel))
        spec.modes.push_back(RunMode::SampledAccel);
}

std::vector<SweepCell>
expandSweep(const SweepSpec &spec)
{
    validateSpec(spec);
    std::vector<SweepCell> cells;
    for (const auto &workload : spec.workloads) {
        for (std::uint64_t l2 : spec.l2Sizes) {
            for (std::uint64_t si = 0; si < spec.numSeeds; ++si) {
                for (RunMode mode : spec.modes) {
                    std::size_t num_pred =
                        needsPredictor(mode)
                            ? spec.predictors.size()
                            : 1;
                    std::size_t num_poll =
                        needsPredictor(mode) ? spec.pollution.size()
                                             : 1;
                    for (std::size_t pi = 0; pi < num_pred; ++pi) {
                        for (std::size_t qi = 0; qi < num_poll;
                             ++qi) {
                            SweepCell c;
                            c.index = cells.size();
                            c.workload = workload;
                            c.mode = mode;
                            c.predictorIndex = pi;
                            c.pollutionIndex = qi;
                            c.l2Bytes = l2;
                            c.seedIndex = si;
                            c.seed =
                                cellSeed(spec.baseSeed, si);
                            cells.push_back(std::move(c));
                        }
                    }
                }
            }
        }
    }
    return cells;
}

namespace
{

/**
 * The two-phase stratified-sampling cell body. Phase 1 profiles
 * fixed-length app-instruction intervals in pure emulation; the
 * stratifier clusters them and draws a seeded sample; Phase 2
 * re-runs the workload at the configured detail level with only the
 * sampled intervals (plus the partial tail) on the timing engine,
 * fast-forwarding the rest with functional warming. Kernel time is
 * never sampled: SampledAccel predicts it exactly as Accelerated
 * does, Sampled simulates it in detail everywhere.
 */
void
runSampledCell(const SweepSpec &spec, const SweepCell &cell,
               MachineConfig cfg, obs::Telemetry &telemetry,
               const std::string *warm_profile, CellResult &result)
{
    const SampleParams &sp = spec.sample;

    // Phase 1. A separate machine with the same seed: instruction
    // streams are mode-invariant across detail levels, so interval
    // boundaries observed here transfer to Phase 2 exactly. No
    // controller is attached — an Emulate-level pass must not feed
    // predictor or audit state (see Machine::runServiceT).
    IntervalProfiler profiler(sp.intervalLen);
    {
        MachineConfig p1 = cfg;
        p1.level = DetailLevel::Emulate;
        auto machine = makeMachine(cell.workload, p1, spec.scale);
        machine->setIntervalProfiler(&profiler);
        machine->run();
    }

    // Stratify and draw. The draw is seeded by the cell seed, so
    // replications (seed indices) sample independent interval sets
    // while comparable cells share one.
    StratifyParams stp;
    stp.strata = sp.strata;
    stp.rate = sp.rate;
    stp.allocation = sp.allocation;
    stp.seed = cell.seed;
    StrataAssignment strata =
        stratifyIntervals(profiler.featureMatrix(), stp);
    std::vector<std::uint64_t> picks =
        drawStratifiedSample(strata, stp, profiler.costProxy());

    SamplePlan plan;
    plan.intervalLen = sp.intervalLen;
    plan.fullIntervals = profiler.fullIntervals();
    plan.sampledMask.assign(
        static_cast<std::size_t>(plan.fullIntervals), 0);
    for (std::uint64_t idx : picks)
        plan.sampledMask[static_cast<std::size_t>(idx)] = 1;

    // Phase 2.
    auto machine = makeMachine(cell.workload, cfg, spec.scale);
    machine->setSamplePlan(&plan);
    machine->setTelemetry(&telemetry);
    Accelerator accel(
        cell.mode == RunMode::SampledAccel
            ? spec.predictors[cell.predictorIndex].params
            : PredictorParams{});
    if (cell.mode == RunMode::SampledAccel) {
        accel.setTelemetry(&telemetry);
        if (warm_profile) {
            std::istringstream is(*warm_profile);
            if (!accel.loadState(is))
                warn("cell ", cell.workload,
                     ": archived PLT profile rejected; learning "
                     "online");
        }
        machine->setController(&accel);
    }
    result.totals = machine->run();
    if (cell.mode == RunMode::SampledAccel) {
        result.stats = accel.aggregateStats();
        result.hasStats = true;
        std::ostringstream profile;
        accel.saveState(profile);
        result.pltProfile = profile.str();
    }

    // Expand the per-stratum means to a whole-run estimate. The
    // tail (and any partial last interval) was simulated in detail,
    // so it enters as a measured constant, not an extrapolation.
    std::vector<std::uint64_t> idxs;
    std::vector<double> vals;
    Cycles tail_cycles = 0;
    InstCount tail_insts = 0;
    InstCount detailed_app = 0;
    for (const IntervalSample &s : machine->sampleLog()) {
        detailed_app += s.appInsts;
        if (s.index < plan.fullIntervals) {
            idxs.push_back(s.index);
            vals.push_back(static_cast<double>(s.appCycles));
        } else {
            tail_cycles += s.appCycles;
            tail_insts += s.appInsts;
        }
    }
    StratifiedEstimate est =
        estimateStratifiedTotal(strata, idxs, vals);

    CellSampleSection &sec = result.sample;
    sec.present = true;
    sec.intervalLen = sp.intervalLen;
    sec.numIntervals = plan.fullIntervals;
    sec.numStrata = strata.numStrata;
    sec.sampledIntervals = idxs.size();
    sec.tailInsts = tail_insts;
    sec.tailCycles = tail_cycles;
    sec.detailedAppInsts = detailed_app;
    sec.ffAppInsts = result.totals.appInsts - detailed_app;
    sec.estAppCycles =
        est.total + static_cast<double>(tail_cycles);
    sec.estTotalCycles =
        sec.estAppCycles +
        static_cast<double>(result.totals.osSimCycles +
                            result.totals.osPredCycles);
    sec.ciHalfWidth = est.ci95Half;
    sec.df = est.df;
    sec.hasCi = est.hasCi;
    InstCount total_insts = result.totals.totalInsts();
    InstCount detailed_insts =
        detailed_app + (result.totals.osInsts -
                        result.totals.osPredInsts);
    sec.detailedFraction =
        total_insts ? static_cast<double>(detailed_insts) /
                          static_cast<double>(total_insts)
                    : 0.0;
    sec.strata = est.strata;
}

} // namespace

CellResult
runCell(const SweepSpec &spec, const SweepCell &cell,
        std::size_t trace_capacity,
        const std::string *warm_profile)
{
    MachineConfig cfg = spec.baseConfig;
    cfg.seed = cell.seed;
    cfg.hier.l2.sizeBytes = cell.l2Bytes;
    cfg.appOnly = (cell.mode == RunMode::AppOnly);

    CellResult result;
    result.cell = cell;

    // One telemetry sink per cell: cells are the unit of
    // parallelism, so the registry never sees two threads.
    obs::Telemetry telemetry(trace_capacity);

    auto start = std::chrono::steady_clock::now();
    if (isSampledMode(cell.mode)) {
        if (cell.mode == RunMode::SampledAccel)
            cfg.pollutionPolicy =
                spec.pollution[cell.pollutionIndex];
        runSampledCell(spec, cell, cfg, telemetry, warm_profile,
                       result);
    } else if (cell.mode == RunMode::Accelerated) {
        cfg.pollutionPolicy = spec.pollution[cell.pollutionIndex];
        auto machine = makeMachine(cell.workload, cfg, spec.scale);
        Accelerator accel(
            spec.predictors[cell.predictorIndex].params);
        accel.setTelemetry(&telemetry);
        if (warm_profile) {
            // Cross-run warm start: predictors begin in the
            // Predicting state with the archived cluster stats —
            // the paper's offline approach (see store/plt_archive).
            std::istringstream is(*warm_profile);
            if (!accel.loadState(is))
                warn("cell ", cell.workload,
                     ": archived PLT profile rejected; learning "
                     "online");
        }
        machine->setController(&accel);
        machine->setTelemetry(&telemetry);
        result.totals = machine->run();
        result.stats = accel.aggregateStats();
        result.hasStats = true;
        std::ostringstream profile;
        accel.saveState(profile);
        result.pltProfile = profile.str();
    } else {
        auto machine = makeMachine(cell.workload, cfg, spec.scale);
        machine->setTelemetry(&telemetry);
        result.totals = machine->run();
    }
    auto end = std::chrono::steady_clock::now();
    result.wallSeconds =
        std::chrono::duration<double>(end - start).count();

    result.telemetry = telemetry.registry.snapshot();
    result.traceInfo = obs::summarize(telemetry.tracer);
    result.trace = telemetry.tracer.events();
    result.accuracy = telemetry.accuracy.snapshot();
    return result;
}

namespace
{

/**
 * Fill the derived fields: error vs the Full baseline at the same
 * (workload, L2, seed index), Eq. 10 estimates, and the
 * per-predictor-variant rollup. Runs after the pool join, in
 * cell-index order — part of the determinism contract.
 */
void
aggregate(SweepResult &result)
{
    for (CellResult &r : result.cells) {
        if (r.cell.mode == RunMode::Full || r.failed)
            continue;
        for (const CellResult &base : result.cells) {
            if (base.cell.mode != RunMode::Full || base.failed ||
                base.cell.workload != r.cell.workload ||
                base.cell.l2Bytes != r.cell.l2Bytes ||
                base.cell.seedIndex != r.cell.seedIndex)
                continue;
            // Sampled cells are judged on their *estimate*: their
            // measured cycle count only covers the sampled
            // intervals.
            double measured =
                r.sample.present
                    ? r.sample.estTotalCycles
                    : static_cast<double>(r.totals.totalCycles());
            double reference =
                static_cast<double>(base.totals.totalCycles());
            r.cycleError = absError(measured, reference);
            r.signedCycleError =
                reference != 0.0
                    ? (measured - reference) / reference
                    : 0.0;
            r.hasBaseline = true;
            if (r.sample.present) {
                r.sample.hasOracle = true;
                r.sample.oracleError = r.cycleError;
            }
            break;
        }
        // The CI quantifies sampling noise on the estimated
        // quantity — application cycles — so the bracket claim is
        // judged on that quantity against the *unsampled twin* of
        // the cell (Sampled vs Full, SampledAccel vs Accelerated):
        // the twin shares the prediction-error and OS-reproduction
        // budgets, which the stratified estimator neither sees nor
        // claims to bound.
        if (!r.sample.present)
            continue;
        RunMode twin_mode = r.cell.mode == RunMode::SampledAccel
                                ? RunMode::Accelerated
                                : RunMode::Full;
        for (const CellResult &twin : result.cells) {
            if (twin.cell.mode != twin_mode || twin.failed ||
                twin.cell.workload != r.cell.workload ||
                twin.cell.l2Bytes != r.cell.l2Bytes ||
                twin.cell.seedIndex != r.cell.seedIndex)
                continue;
            if (twin_mode == RunMode::Accelerated &&
                (twin.cell.predictorIndex !=
                     r.cell.predictorIndex ||
                 twin.cell.pollutionIndex !=
                     r.cell.pollutionIndex))
                continue;
            r.sample.hasOracle = true;
            r.sample.withinCi =
                std::abs(r.sample.estAppCycles -
                         static_cast<double>(
                             twin.totals.appCycles)) <=
                r.sample.ciHalfWidth;
            break;
        }
    }
    for (CellResult &r : result.cells) {
        if (r.cell.mode == RunMode::Accelerated && !r.failed)
            r.estSpeedupR133 = estimatedSpeedup(r.totals, 133.0);
    }

    result.summary.clear();
    for (std::size_t pi = 0; pi < result.spec.predictors.size();
         ++pi) {
        VariantSummary s;
        s.label = result.spec.predictors[pi].label;
        double err_sum = 0.0;
        std::uint64_t err_count = 0;
        double cov_sum = 0.0;
        double est_sum = 0.0;
        for (const CellResult &r : result.cells) {
            if (r.cell.mode != RunMode::Accelerated || r.failed ||
                r.cell.predictorIndex != pi)
                continue;
            ++s.cells;
            cov_sum += r.totals.coverage();
            est_sum += r.estSpeedupR133;
            if (r.hasBaseline) {
                err_sum += r.cycleError;
                ++err_count;
                if (r.cycleError > s.worstCycleError)
                    s.worstCycleError = r.cycleError;
            }
        }
        if (s.cells == 0)
            continue;
        s.meanCycleError =
            err_count ? err_sum / static_cast<double>(err_count)
                      : 0.0;
        s.meanCoverage = cov_sum / static_cast<double>(s.cells);
        s.meanEstSpeedupR133 =
            est_sum / static_cast<double>(s.cells);
        result.summary.push_back(std::move(s));
    }
}

} // namespace

SweepResult
runSweep(const SweepSpec &spec, const RunnerOptions &options)
{
    SweepResult result;
    result.spec = spec;

    std::vector<SweepCell> cells = expandSweep(spec);
    result.cells.resize(cells.size());

    unsigned threads = options.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }

    // Warm-start profile per cell (accelerated cells of archived
    // workloads only). The map outlives the pool; workers take
    // stable pointers into it.
    std::vector<const std::string *> warm(cells.size(), nullptr);
    if (options.warmProfiles) {
        for (const SweepCell &cell : cells) {
            if (cell.mode != RunMode::Accelerated)
                continue;
            auto it = options.warmProfiles->find(cell.workload);
            if (it != options.warmProfiles->end())
                warm[cell.index] = &it->second;
        }
    }

    // Cache interaction happens entirely on this thread, in
    // cell-index order: keys, then lookups (incremental), and one
    // commit after the join — see the determinism contract.
    std::vector<std::string> keys;
    std::vector<bool> cached(cells.size(), false);
    if (options.cache) {
        keys.resize(cells.size());
        for (const SweepCell &cell : cells)
            keys[cell.index] = options.cache->cellKey(
                spec, cell, options.traceCapacity);
        if (options.incremental) {
            for (const SweepCell &cell : cells) {
                std::optional<CellResult> hit =
                    options.cache->fetch(keys[cell.index], cell,
                                         options.claimAware);
                if (hit) {
                    result.cells[cell.index] = std::move(*hit);
                    cached[cell.index] = true;
                }
            }
        } else {
            options.cache->noteMisses(cells.size());
        }
    }

    auto start = std::chrono::steady_clock::now();
    {
        WorkStealingPool pool(threads);
        result.threads = pool.numThreads();
        for (const SweepCell &cell : cells) {
            if (cached[cell.index])
                continue;
            // Each task owns exactly one preassigned result slot,
            // so completion order cannot affect the aggregate. A
            // throwing cell is captured into its own slot: the rest
            // of the sweep completes, and the failure is reported in
            // the results document instead of tearing down the pool.
            CellResult *slot = &result.cells[cell.index];
            const std::string *profile = warm[cell.index];
            const SweepSpec *s = &spec;
            const RunnerOptions *o = &options;
            pool.submit([slot, s, o, cell, profile] {
                try {
                    *slot = o->cellRunner
                                ? o->cellRunner(*s, cell,
                                                o->traceCapacity)
                                : runCell(*s, cell,
                                          o->traceCapacity,
                                          profile);
                } catch (const std::exception &e) {
                    slot->cell = cell;
                    slot->failed = true;
                    slot->error = e.what();
                } catch (...) {
                    slot->cell = cell;
                    slot->failed = true;
                    slot->error = "unknown exception";
                }
            });
        }
        pool.wait();
    }
    auto end = std::chrono::steady_clock::now();
    result.wallSeconds =
        std::chrono::duration<double>(end - start).count();

    if (options.cache) {
        result.store.present = true;
        result.store.fingerprint = options.cache->fingerprint();
        result.store.cellKeys = keys;
        std::vector<std::pair<std::string, const CellResult *>>
            items;
        for (const SweepCell &cell : cells) {
            const CellResult &r = result.cells[cell.index];
            if (!cached[cell.index] && !r.failed)
                items.emplace_back(keys[cell.index], &r);
        }
        options.cache->commitResults(items);
    }

    aggregate(result);
    return result;
}

const CellResult *
SweepResult::find(const std::string &workload, RunMode mode,
                  std::size_t predictor_index,
                  std::uint64_t l2_bytes, std::uint64_t seed_index,
                  std::size_t pollution_index) const
{
    if (l2_bytes == 0 && !spec.l2Sizes.empty())
        l2_bytes = spec.l2Sizes.front();
    for (const CellResult &r : cells) {
        if (r.cell.workload == workload && r.cell.mode == mode &&
            r.cell.l2Bytes == l2_bytes &&
            r.cell.seedIndex == seed_index &&
            (mode != RunMode::Accelerated ||
             (r.cell.predictorIndex == predictor_index &&
              r.cell.pollutionIndex == pollution_index)))
            return &r;
    }
    return nullptr;
}

namespace
{

/** Serialize one cell's metrics snapshot + trace summary. */
JsonValue
telemetryToJson(const obs::MetricsSnapshot &snap,
                const obs::TraceSummary &trace_info)
{
    JsonValue t = JsonValue::object();

    JsonValue counters = JsonValue::object();
    for (const auto &c : snap.counters)
        counters.add(c.component + "." + c.name, c.value);
    t.add("counters", std::move(counters));

    JsonValue gauges = JsonValue::object();
    for (const auto &g : snap.gauges)
        gauges.add(g.component + "." + g.name, g.value);
    t.add("gauges", std::move(gauges));

    JsonValue histograms = JsonValue::object();
    for (const auto &h : snap.histograms) {
        JsonValue hv = JsonValue::object();
        hv.add("count", h.count);
        hv.add("sum", h.sum);
        JsonValue buckets = JsonValue::array();
        for (const auto &[low, count] : h.buckets) {
            JsonValue pair = JsonValue::array();
            pair.append(low);
            pair.append(count);
            buckets.append(std::move(pair));
        }
        hv.add("buckets", std::move(buckets));
        histograms.add(h.component + "." + h.name, std::move(hv));
    }
    t.add("histograms", std::move(histograms));

    JsonValue trace = JsonValue::object();
    trace.add("capacity", trace_info.capacity);
    trace.add("recorded", trace_info.recorded);
    trace.add("dropped", trace_info.dropped);
    t.add("trace", std::move(trace));
    return t;
}

} // namespace

JsonValue
sweepToJson(const SweepResult &result, const JsonOptions &options)
{
    const SweepSpec &spec = result.spec;

    JsonValue doc = JsonValue::object();
    doc.add("schema", "ospredict-sweep-v1");

    JsonValue sweep = JsonValue::object();
    sweep.add("name", spec.name);
    sweep.add("base_seed", spec.baseSeed);
    sweep.add("scale", spec.scale);
    sweep.add("smoke", spec.smoke);
    sweep.add("num_seeds", spec.numSeeds);
    JsonValue workloads = JsonValue::array();
    for (const auto &w : spec.workloads)
        workloads.append(w);
    sweep.add("workloads", std::move(workloads));
    JsonValue modes = JsonValue::array();
    for (RunMode m : spec.modes)
        modes.append(runModeName(m));
    sweep.add("modes", std::move(modes));
    JsonValue predictors = JsonValue::array();
    for (const auto &p : spec.predictors)
        predictors.append(p.label);
    sweep.add("predictors", std::move(predictors));
    // Backend names, aligned with the predictors array. Emitted
    // only when a non-default backend is present, so plt-only
    // documents keep their exact pre-backend byte layout (the
    // refactor's behaviour-preservation contract).
    bool nonDefaultBackend = false;
    for (const auto &p : spec.predictors)
        nonDefaultBackend |=
            p.params.backend != PredictorBackendKind::Plt;
    if (nonDefaultBackend) {
        JsonValue backends = JsonValue::array();
        for (const auto &p : spec.predictors)
            backends.append(
                predictorBackendName(p.params.backend));
        sweep.add("backends", std::move(backends));
    }
    JsonValue pollution = JsonValue::array();
    for (PollutionPolicy p : spec.pollution)
        pollution.append(pollutionPolicyName(p));
    sweep.add("pollution", std::move(pollution));
    JsonValue l2s = JsonValue::array();
    for (std::uint64_t l2 : spec.l2Sizes)
        l2s.append(l2);
    sweep.add("l2_bytes", std::move(l2s));
    doc.add("sweep", std::move(sweep));

    JsonValue cells = JsonValue::array();
    for (const CellResult &r : result.cells) {
        JsonValue cell = JsonValue::object();

        JsonValue config = JsonValue::object();
        config.add("index",
                   static_cast<std::uint64_t>(r.cell.index));
        config.add("workload", r.cell.workload);
        config.add("mode", runModeName(r.cell.mode));
        if (needsPredictor(r.cell.mode)) {
            config.add(
                "predictor",
                spec.predictors[r.cell.predictorIndex].label);
            config.add("pollution",
                       pollutionPolicyName(
                           spec.pollution[r.cell.pollutionIndex]));
        }
        config.add("l2_bytes", r.cell.l2Bytes);
        config.add("seed_index", r.cell.seedIndex);
        config.add("seed", r.cell.seed);
        cell.add("config", std::move(config));

        if (r.failed) {
            cell.add("error", r.error);
            cells.append(std::move(cell));
            continue;
        }

        JsonValue metrics = JsonValue::object();
        metrics.add("totals", toJson(r.totals));
        if (r.hasStats)
            metrics.add("predictor_stats", toJson(r.stats));
        cell.add("metrics", std::move(metrics));

        if (!r.telemetry.empty())
            cell.add("telemetry",
                     telemetryToJson(r.telemetry, r.traceInfo));

        JsonValue derived = JsonValue::object();
        if (r.hasBaseline)
            derived.add("cycle_error", r.cycleError);
        if (r.cell.mode == RunMode::Accelerated)
            derived.add("est_speedup_r133", r.estSpeedupR133);
        if (derived.size())
            cell.add("derived", std::move(derived));

        if (options.includeTiming)
            cell.add("wall_s", r.wallSeconds);
        cells.append(std::move(cell));
    }
    doc.add("cells", std::move(cells));

    // Sweep-wide telemetry rollup: counters summed across cells
    // (sorted by std::map, so the section inherits the document's
    // thread-count byte-invariance).
    {
        JsonValue telemetry = JsonValue::object();
        telemetry.add("schema", "ospredict-telemetry-v1");
        std::map<std::string, std::uint64_t> totals;
        std::uint64_t instrumented = 0;
        for (const CellResult &r : result.cells) {
            if (r.failed || r.telemetry.empty())
                continue;
            ++instrumented;
            for (const auto &c : r.telemetry.counters)
                totals[c.component + "." + c.name] += c.value;
        }
        telemetry.add("instrumented_cells", instrumented);
        JsonValue counters = JsonValue::object();
        for (const auto &[name, value] : totals)
            counters.add(name, value);
        telemetry.add("counters", std::move(counters));
        doc.add("telemetry", std::move(telemetry));
    }

    // Prediction-accuracy section: one entry per accelerated cell
    // whose ledger saw predictions, each cross-checked against the
    // oracle (the Full baseline) when one exists, plus a
    // per-service rollup merged across cells. Built in cell-index
    // order from per-cell snapshots, so the section inherits the
    // document's thread-count byte-invariance.
    {
        JsonValue accuracy = JsonValue::object();
        accuracy.add("schema", "ospredict-accuracy-v1");

        struct ServiceRoll
        {
            std::uint64_t predictions = 0;
            std::uint64_t outlierPredictions = 0;
            std::uint64_t predictedCycles = 0;
            std::uint64_t audits = 0;
            std::uint64_t auditFailures = 0;
            std::uint64_t driftingClusters = 0;
            RunningStats err;
        };
        std::map<std::uint8_t, ServiceRoll> services;

        JsonValue acells = JsonValue::array();
        for (const CellResult &r : result.cells) {
            if (r.failed || !needsPredictor(r.cell.mode) ||
                r.accuracy.empty())
                continue;

            JsonValue cell = JsonValue::object();
            cell.add("index",
                     static_cast<std::uint64_t>(r.cell.index));
            cell.add("workload", r.cell.workload);
            cell.add(
                "predictor",
                spec.predictors[r.cell.predictorIndex].label);
            cell.add("pollution",
                     pollutionPolicyName(
                         spec.pollution[r.cell.pollutionIndex]));
            cell.add("l2_bytes", r.cell.l2Bytes);
            cell.add("seed_index", r.cell.seedIndex);
            cell.add("ledger", toJson(r.accuracy));

            if (r.hasBaseline) {
                obs::AccuracyRollup roll =
                    rollupAccuracy(r.accuracy);
                JsonValue oracle = JsonValue::object();
                oracle.add("rel_err", r.signedCycleError);
                oracle.add("abs_err", r.cycleError);
                if (roll.hasEstimate && roll.hasCi) {
                    // The acceptance test of the ledger: does the
                    // oracle-measured end-to-end error fall within
                    // the audit-estimated error's own 95% CI?
                    double delta = std::fabs(r.signedCycleError -
                                             roll.estRelTotalErr);
                    oracle.add("est_delta", delta);
                    oracle.add("within_ci",
                               delta <= roll.estCi95);
                }
                cell.add("oracle", std::move(oracle));
            }
            acells.append(std::move(cell));

            for (const obs::AccuracyEntry &e : r.accuracy.entries) {
                ServiceRoll &s = services[e.service];
                s.predictions += e.predictions;
                s.outlierPredictions += e.outlierPredictions;
                s.predictedCycles += e.predictedCycles;
                s.audits += e.audits;
                s.auditFailures += e.auditFailures;
                if (e.drift)
                    ++s.driftingClusters;
                s.err.merge(e.errStats());
            }
        }
        accuracy.add("cells", std::move(acells));

        JsonValue svc = JsonValue::array();
        for (const auto &[index, s] : services) {
            JsonValue v = JsonValue::object();
            v.add("service",
                  index < numServiceTypes
                      ? std::string(serviceName(
                            static_cast<ServiceType>(index)))
                      : std::to_string(index));
            v.add("predictions", s.predictions);
            v.add("outlier_predictions", s.outlierPredictions);
            v.add("predicted_cycles", s.predictedCycles);
            v.add("audits", s.audits);
            v.add("audit_failures", s.auditFailures);
            v.add("drifting_clusters", s.driftingClusters);
            if (s.err.count()) {
                JsonValue err = JsonValue::object();
                err.add("n", s.err.count());
                err.add("mean", s.err.mean());
                err.add("stddev", s.err.sampleStddev());
                if (s.err.count() >= 2)
                    err.add("ci95", obs::accuracyCi95(s.err));
                v.add("err", std::move(err));
            }
            svc.append(std::move(v));
        }
        accuracy.add("services", std::move(svc));
        doc.add("accuracy", std::move(accuracy));
    }

    // Stratified-sampling section: per-cell estimates, confidence
    // intervals and detailed-work accounting. Emitted only when the
    // sweep ran sampled cells, so every pre-sampling document keeps
    // its exact byte layout. Built in cell-index order from
    // deterministic per-cell data, so the section inherits the
    // document's thread-count byte-invariance.
    {
        bool any_sample = false;
        for (const CellResult &r : result.cells)
            any_sample |= !r.failed && r.sample.present;
        if (any_sample) {
            JsonValue sample = JsonValue::object();
            sample.add("schema", "ospredict-sample-v1");
            JsonValue params = JsonValue::object();
            params.add("interval_len", spec.sample.intervalLen);
            params.add("strata", spec.sample.strata);
            params.add("rate", spec.sample.rate);
            params.add("allocation",
                       allocationName(spec.sample.allocation));
            sample.add("params", std::move(params));

            JsonValue scells = JsonValue::array();
            for (const CellResult &r : result.cells) {
                if (r.failed || !r.sample.present)
                    continue;
                const CellSampleSection &s = r.sample;
                JsonValue cell = JsonValue::object();
                cell.add("index",
                         static_cast<std::uint64_t>(r.cell.index));
                cell.add("workload", r.cell.workload);
                cell.add("mode", runModeName(r.cell.mode));
                cell.add("seed_index", r.cell.seedIndex);
                cell.add("num_intervals", s.numIntervals);
                cell.add("num_strata", s.numStrata);
                cell.add("sampled_intervals", s.sampledIntervals);
                cell.add("tail_insts", s.tailInsts);
                cell.add("tail_cycles", s.tailCycles);
                cell.add("detailed_app_insts", s.detailedAppInsts);
                cell.add("ff_app_insts", s.ffAppInsts);
                cell.add("est_app_cycles", s.estAppCycles);
                cell.add("est_total_cycles", s.estTotalCycles);
                cell.add("ci95_half", s.ciHalfWidth);
                cell.add("df", s.df);
                cell.add("has_ci", s.hasCi);
                cell.add("detailed_fraction", s.detailedFraction);
                JsonValue strata = JsonValue::array();
                for (const StratumEstimate &h : s.strata) {
                    JsonValue row = JsonValue::array();
                    row.append(h.population);
                    row.append(h.sampled);
                    row.append(h.mean);
                    row.append(h.sampleVar);
                    strata.append(std::move(row));
                }
                cell.add("strata", std::move(strata));
                if (s.hasOracle) {
                    JsonValue oracle = JsonValue::object();
                    oracle.add("abs_err", s.oracleError);
                    oracle.add("within_ci", s.withinCi);
                    cell.add("oracle", std::move(oracle));
                }
                scells.append(std::move(cell));
            }
            sample.add("cells", std::move(scells));
            doc.add("sample", std::move(sample));
        }
    }

    // Canonical store section: only data invariant across thread
    // counts and warm/cold runs (the code fingerprint and the
    // content-addressed cell keys). Hit/miss statistics are
    // volatile and live in the --store-stats document instead.
    if (result.store.present) {
        JsonValue store = JsonValue::object();
        store.add("schema", "ospredict-store-v1");
        store.add("code_fingerprint", result.store.fingerprint);
        JsonValue keys = JsonValue::array();
        for (const std::string &k : result.store.cellKeys)
            keys.append(k);
        store.add("cell_keys", std::move(keys));
        doc.add("store", std::move(store));
    }

    JsonValue summary = JsonValue::object();
    JsonValue variants = JsonValue::array();
    for (const VariantSummary &s : result.summary) {
        JsonValue v = JsonValue::object();
        v.add("predictor", s.label);
        v.add("cells", s.cells);
        v.add("mean_cycle_error", s.meanCycleError);
        v.add("worst_cycle_error", s.worstCycleError);
        v.add("mean_coverage", s.meanCoverage);
        v.add("mean_est_speedup_r133", s.meanEstSpeedupR133);
        variants.append(std::move(v));
    }
    summary.add("predictors", std::move(variants));
    JsonValue failed = JsonValue::array();
    for (const CellResult &r : result.cells) {
        if (r.failed)
            failed.append(static_cast<std::uint64_t>(r.cell.index));
    }
    summary.add("failed_cells", std::move(failed));
    doc.add("summary", std::move(summary));

    if (options.includeTiming) {
        JsonValue timing = JsonValue::object();
        timing.add("threads", result.threads);
        if (result.workerProcesses > 0)
            timing.add("jobs", result.workerProcesses);
        timing.add("wall_s", result.wallSeconds);
        doc.add("timing", std::move(timing));
    }
    return doc;
}

namespace
{

/** One warn() per serialized document when any cell's event ring
 *  overflowed — a truncated trace must not be silent. */
void
warnDroppedEvents(const SweepResult &result, const char *what)
{
    std::uint64_t rings = 0;
    std::uint64_t dropped = 0;
    for (const CellResult &r : result.cells) {
        if (r.traceInfo.dropped == 0)
            continue;
        ++rings;
        dropped += r.traceInfo.dropped;
    }
    obs::warnIfDropped(what, rings, dropped);
}

} // namespace

void
writeResultsJson(std::ostream &os, const SweepResult &result,
                 const JsonOptions &options)
{
    warnDroppedEvents(result, "results document");
    sweepToJson(result, options).write(os, 2);
    os << "\n";
}

void
appendCellTraceEvents(JsonValue &events, const SweepResult &result)
{
    // chrome://tracing "JSON Array Format" events. Interval-shaped
    // events (service detailed/predicted) become complete ("X")
    // slices whose ts is the retired-instruction count and dur the
    // interval's cycles; everything else becomes an instant ("i")
    // event. One process per sweep cell, one thread per service
    // type. Shared between writeChromeTrace and the fleet-merged
    // trace (driver/fleet.cc), which must keep the cell lanes
    // byte-identical to the single-process ones.
    for (const CellResult &r : result.cells) {
        if (r.failed)
            continue;
        auto pid = static_cast<std::uint64_t>(r.cell.index);

        JsonValue meta = JsonValue::object();
        meta.add("name", "process_name");
        meta.add("ph", "M");
        meta.add("pid", pid);
        JsonValue margs = JsonValue::object();
        margs.add("name",
                  std::string(r.cell.workload) + "/" +
                      runModeName(r.cell.mode) + "/seed" +
                      std::to_string(r.cell.seedIndex));
        meta.add("args", std::move(margs));
        events.append(std::move(meta));

        for (const obs::TraceEvent &ev : r.trace) {
            JsonValue e = JsonValue::object();
            e.add("name", obs::traceEventKindName(ev.kind));
            e.add("pid", pid);
            e.add("tid",
                  static_cast<std::uint64_t>(
                      ev.service == obs::traceNoService
                          ? numServiceTypes
                          : ev.service));
            e.add("ts", ev.tick);
            bool slice =
                ev.kind == obs::TraceEventKind::ServiceDetailed ||
                ev.kind == obs::TraceEventKind::ServicePredicted;
            if (slice) {
                e.add("ph", "X");
                e.add("dur", ev.b);
            } else {
                e.add("ph", "i");
                e.add("s", "t");
            }
            JsonValue args = JsonValue::object();
            args.add("a", ev.a);
            args.add("b", ev.b);
            if (ev.service != obs::traceNoService)
                args.add("service",
                         serviceName(static_cast<ServiceType>(
                             ev.service)));
            e.add("args", std::move(args));
            events.append(std::move(e));
        }
    }
}

void
writeChromeTrace(std::ostream &os, const SweepResult &result)
{
    warnDroppedEvents(result, "chrome trace");
    JsonValue doc = JsonValue::object();
    JsonValue events = JsonValue::array();
    appendCellTraceEvents(events, result);

    doc.add("traceEvents", std::move(events));
    doc.add("displayTimeUnit", "ns");
    JsonValue other = JsonValue::object();
    other.add("clock", "retired-instructions");
    other.add("sweep", result.spec.name);
    doc.add("otherData", std::move(other));
    doc.write(os, 2);
    os << "\n";
}

void
writeAccuracyReport(std::ostream &os, const SweepResult &result)
{
    const SweepSpec &spec = result.spec;
    os << "accuracy report: sweep " << spec.name
       << (spec.smoke ? " [smoke]" : "") << ", base seed "
       << spec.baseSeed << "\n\n";

    // Per-cell rollup: the live accuracy estimate next to the
    // offline oracle where a Full baseline exists.
    TablePrinter cells({"workload", "predictor", "l2KB", "seed",
                        "preds", "audits", "fail", "audit_err",
                        "ci95", "est_err", "oracle_err", "in_ci",
                        "drift"});

    struct BudgetRow
    {
        double absContribution = 0.0;
        std::size_t cellIndex = 0;
        obs::AccuracyEntry entry;
        const CellResult *cell = nullptr;
    };
    std::vector<BudgetRow> budget;

    for (const CellResult &r : result.cells) {
        if (r.failed || r.cell.mode != RunMode::Accelerated ||
            r.accuracy.empty())
            continue;
        obs::AccuracyRollup roll = rollupAccuracy(r.accuracy);

        std::string in_ci = "-";
        std::string oracle_err = "-";
        if (r.hasBaseline) {
            oracle_err = TablePrinter::pct(r.signedCycleError, 2);
            if (roll.hasEstimate && roll.hasCi) {
                double delta = std::fabs(r.signedCycleError -
                                         roll.estRelTotalErr);
                in_ci = delta <= roll.estCi95 ? "yes" : "NO";
            }
        }
        cells.addRow(
            {r.cell.workload,
             spec.predictors[r.cell.predictorIndex].label,
             std::to_string(r.cell.l2Bytes / 1024),
             std::to_string(r.cell.seedIndex),
             std::to_string(roll.predictions),
             std::to_string(roll.audits),
             std::to_string(roll.auditFailures),
             roll.err.count()
                 ? TablePrinter::pct(roll.err.mean(), 2)
                 : "-",
             roll.hasCi ? TablePrinter::pct(roll.ci95, 2) : "-",
             roll.hasEstimate
                 ? TablePrinter::pct(roll.estRelTotalErr, 2)
                 : "-",
             oracle_err, in_ci,
             std::to_string(roll.driftingClusters)});

        for (const obs::AccuracyEntry &e : r.accuracy.entries) {
            BudgetRow row;
            row.absContribution =
                e.errCount
                    ? std::fabs(
                          e.errMean *
                          static_cast<double>(e.predictedCycles))
                    : 0.0;
            row.cellIndex = r.cell.index;
            row.entry = e;
            row.cell = &r;
            budget.push_back(row);
        }
    }

    if (cells.numRows() == 0) {
        os << "no accelerated cell recorded predictions (no audit "
              "data to report).\n";
        return;
    }
    cells.print(os);
    os << "\n";

    // The error budget: which (workload, service, cluster) slices
    // the end-to-end error decomposes into, largest first.
    std::sort(budget.begin(), budget.end(),
              [](const BudgetRow &a, const BudgetRow &b) {
                  if (a.absContribution != b.absContribution)
                      return a.absContribution > b.absContribution;
                  if (a.cellIndex != b.cellIndex)
                      return a.cellIndex < b.cellIndex;
                  if (a.entry.service != b.entry.service)
                      return a.entry.service < b.entry.service;
                  return a.entry.cluster < b.entry.cluster;
              });

    os << "error budget (largest contributors first; contrib = "
          "mean_err x predicted share of the cell's cycles):\n";
    TablePrinter table({"workload", "service", "cluster", "preds",
                        "outl", "audits", "fail", "err_mean",
                        "ci95", "contrib", "drift"});
    for (const BudgetRow &row : budget) {
        const obs::AccuracyEntry &e = row.entry;
        std::string svc =
            e.service < numServiceTypes
                ? serviceName(static_cast<ServiceType>(e.service))
                : std::to_string(e.service);
        std::string contrib = "-";
        if (e.errCount && row.cell->accuracy.totalCycles) {
            contrib = TablePrinter::pct(
                e.errMean *
                    static_cast<double>(e.predictedCycles) /
                    static_cast<double>(
                        row.cell->accuracy.totalCycles),
                3);
        }
        table.addRow(
            {row.cell->cell.workload, svc,
             e.cluster == obs::accuracyNoCluster
                 ? "-"
                 : std::to_string(e.cluster),
             std::to_string(e.predictions),
             std::to_string(e.outlierPredictions),
             std::to_string(e.audits),
             std::to_string(e.auditFailures),
             e.errCount ? TablePrinter::pct(e.errMean, 2) : "-",
             e.hasCi ? TablePrinter::pct(e.ci95, 2) : "-", contrib,
             e.drift ? "YES" : "-"});
    }
    table.print(os);
}

} // namespace osp
