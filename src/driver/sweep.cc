#include "sweep.hh"

#include <chrono>

#include "core/accelerator.hh"
#include "thread_pool.hh"
#include "util/logging.hh"
#include "workload/registry.hh"

namespace osp
{

const char *
runModeName(RunMode mode)
{
    switch (mode) {
      case RunMode::Full: return "full";
      case RunMode::AppOnly: return "app-only";
      case RunMode::Accelerated: return "accelerated";
    }
    return "?";
}

std::uint64_t
cellSeed(std::uint64_t base_seed, std::uint64_t seed_index)
{
    if (seed_index == 0)
        return base_seed;
    // splitmix64 of (base, index): cheap, full-period, and well
    // decorrelated — each replication gets an independent stream.
    std::uint64_t z =
        base_seed + seed_index * 0x9E3779B97F4A7C15ULL;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

namespace
{

bool
needsPredictor(RunMode mode)
{
    return mode == RunMode::Accelerated;
}

void
validateSpec(const SweepSpec &spec)
{
    if (spec.workloads.empty())
        osp_panic("SweepSpec '", spec.name.c_str(),
                  "': no workloads");
    for (const auto &w : spec.workloads) {
        if (!isWorkload(w))
            osp_panic("SweepSpec: unknown workload ", w.c_str());
    }
    if (spec.modes.empty())
        osp_panic("SweepSpec: no run modes");
    if (spec.l2Sizes.empty())
        osp_panic("SweepSpec: no L2 sizes");
    if (spec.numSeeds == 0)
        osp_panic("SweepSpec: numSeeds must be >= 1");
    for (RunMode m : spec.modes) {
        if (needsPredictor(m) &&
            (spec.predictors.empty() || spec.pollution.empty()))
            osp_panic("SweepSpec: Accelerated mode requires at "
                      "least one predictor variant and pollution "
                      "policy");
    }
    if (spec.scale <= 0.0)
        osp_panic("SweepSpec: scale must be positive");
}

} // namespace

std::vector<SweepCell>
expandSweep(const SweepSpec &spec)
{
    validateSpec(spec);
    std::vector<SweepCell> cells;
    for (const auto &workload : spec.workloads) {
        for (std::uint64_t l2 : spec.l2Sizes) {
            for (std::uint64_t si = 0; si < spec.numSeeds; ++si) {
                for (RunMode mode : spec.modes) {
                    std::size_t num_pred =
                        needsPredictor(mode)
                            ? spec.predictors.size()
                            : 1;
                    std::size_t num_poll =
                        needsPredictor(mode) ? spec.pollution.size()
                                             : 1;
                    for (std::size_t pi = 0; pi < num_pred; ++pi) {
                        for (std::size_t qi = 0; qi < num_poll;
                             ++qi) {
                            SweepCell c;
                            c.index = cells.size();
                            c.workload = workload;
                            c.mode = mode;
                            c.predictorIndex = pi;
                            c.pollutionIndex = qi;
                            c.l2Bytes = l2;
                            c.seedIndex = si;
                            c.seed =
                                cellSeed(spec.baseSeed, si);
                            cells.push_back(std::move(c));
                        }
                    }
                }
            }
        }
    }
    return cells;
}

CellResult
runCell(const SweepSpec &spec, const SweepCell &cell)
{
    MachineConfig cfg = spec.baseConfig;
    cfg.seed = cell.seed;
    cfg.hier.l2.sizeBytes = cell.l2Bytes;
    cfg.appOnly = (cell.mode == RunMode::AppOnly);

    CellResult result;
    result.cell = cell;

    auto start = std::chrono::steady_clock::now();
    if (cell.mode == RunMode::Accelerated) {
        cfg.pollutionPolicy = spec.pollution[cell.pollutionIndex];
        auto machine = makeMachine(cell.workload, cfg, spec.scale);
        Accelerator accel(
            spec.predictors[cell.predictorIndex].params);
        machine->setController(&accel);
        result.totals = machine->run();
        result.stats = accel.aggregateStats();
        result.hasStats = true;
    } else {
        auto machine = makeMachine(cell.workload, cfg, spec.scale);
        result.totals = machine->run();
    }
    auto end = std::chrono::steady_clock::now();
    result.wallSeconds =
        std::chrono::duration<double>(end - start).count();
    return result;
}

namespace
{

/**
 * Fill the derived fields: error vs the Full baseline at the same
 * (workload, L2, seed index), Eq. 10 estimates, and the
 * per-predictor-variant rollup. Runs after the pool join, in
 * cell-index order — part of the determinism contract.
 */
void
aggregate(SweepResult &result)
{
    for (CellResult &r : result.cells) {
        if (r.cell.mode == RunMode::Full)
            continue;
        for (const CellResult &base : result.cells) {
            if (base.cell.mode != RunMode::Full ||
                base.cell.workload != r.cell.workload ||
                base.cell.l2Bytes != r.cell.l2Bytes ||
                base.cell.seedIndex != r.cell.seedIndex)
                continue;
            r.cycleError = absError(
                static_cast<double>(r.totals.totalCycles()),
                static_cast<double>(base.totals.totalCycles()));
            r.hasBaseline = true;
            break;
        }
    }
    for (CellResult &r : result.cells) {
        if (r.cell.mode == RunMode::Accelerated)
            r.estSpeedupR133 = estimatedSpeedup(r.totals, 133.0);
    }

    result.summary.clear();
    for (std::size_t pi = 0; pi < result.spec.predictors.size();
         ++pi) {
        VariantSummary s;
        s.label = result.spec.predictors[pi].label;
        double err_sum = 0.0;
        std::uint64_t err_count = 0;
        double cov_sum = 0.0;
        double est_sum = 0.0;
        for (const CellResult &r : result.cells) {
            if (r.cell.mode != RunMode::Accelerated ||
                r.cell.predictorIndex != pi)
                continue;
            ++s.cells;
            cov_sum += r.totals.coverage();
            est_sum += r.estSpeedupR133;
            if (r.hasBaseline) {
                err_sum += r.cycleError;
                ++err_count;
                if (r.cycleError > s.worstCycleError)
                    s.worstCycleError = r.cycleError;
            }
        }
        if (s.cells == 0)
            continue;
        s.meanCycleError =
            err_count ? err_sum / static_cast<double>(err_count)
                      : 0.0;
        s.meanCoverage = cov_sum / static_cast<double>(s.cells);
        s.meanEstSpeedupR133 =
            est_sum / static_cast<double>(s.cells);
        result.summary.push_back(std::move(s));
    }
}

} // namespace

SweepResult
runSweep(const SweepSpec &spec, const RunnerOptions &options)
{
    SweepResult result;
    result.spec = spec;

    std::vector<SweepCell> cells = expandSweep(spec);
    result.cells.resize(cells.size());

    unsigned threads = options.threads;
    if (threads == 0) {
        threads = std::thread::hardware_concurrency();
        if (threads == 0)
            threads = 1;
    }

    auto start = std::chrono::steady_clock::now();
    {
        WorkStealingPool pool(threads);
        result.threads = pool.numThreads();
        for (const SweepCell &cell : cells) {
            // Each task owns exactly one preassigned result slot,
            // so completion order cannot affect the aggregate.
            CellResult *slot = &result.cells[cell.index];
            const SweepSpec *s = &spec;
            pool.submit([slot, s, cell] {
                *slot = runCell(*s, cell);
            });
        }
        pool.wait();
    }
    auto end = std::chrono::steady_clock::now();
    result.wallSeconds =
        std::chrono::duration<double>(end - start).count();

    aggregate(result);
    return result;
}

const CellResult *
SweepResult::find(const std::string &workload, RunMode mode,
                  std::size_t predictor_index,
                  std::uint64_t l2_bytes, std::uint64_t seed_index,
                  std::size_t pollution_index) const
{
    if (l2_bytes == 0 && !spec.l2Sizes.empty())
        l2_bytes = spec.l2Sizes.front();
    for (const CellResult &r : cells) {
        if (r.cell.workload == workload && r.cell.mode == mode &&
            r.cell.l2Bytes == l2_bytes &&
            r.cell.seedIndex == seed_index &&
            (mode != RunMode::Accelerated ||
             (r.cell.predictorIndex == predictor_index &&
              r.cell.pollutionIndex == pollution_index)))
            return &r;
    }
    return nullptr;
}

JsonValue
sweepToJson(const SweepResult &result, const JsonOptions &options)
{
    const SweepSpec &spec = result.spec;

    JsonValue doc = JsonValue::object();
    doc.add("schema", "ospredict-sweep-v1");

    JsonValue sweep = JsonValue::object();
    sweep.add("name", spec.name);
    sweep.add("base_seed", spec.baseSeed);
    sweep.add("scale", spec.scale);
    sweep.add("smoke", spec.smoke);
    sweep.add("num_seeds", spec.numSeeds);
    JsonValue workloads = JsonValue::array();
    for (const auto &w : spec.workloads)
        workloads.append(w);
    sweep.add("workloads", std::move(workloads));
    JsonValue modes = JsonValue::array();
    for (RunMode m : spec.modes)
        modes.append(runModeName(m));
    sweep.add("modes", std::move(modes));
    JsonValue predictors = JsonValue::array();
    for (const auto &p : spec.predictors)
        predictors.append(p.label);
    sweep.add("predictors", std::move(predictors));
    JsonValue pollution = JsonValue::array();
    for (PollutionPolicy p : spec.pollution)
        pollution.append(pollutionPolicyName(p));
    sweep.add("pollution", std::move(pollution));
    JsonValue l2s = JsonValue::array();
    for (std::uint64_t l2 : spec.l2Sizes)
        l2s.append(l2);
    sweep.add("l2_bytes", std::move(l2s));
    doc.add("sweep", std::move(sweep));

    JsonValue cells = JsonValue::array();
    for (const CellResult &r : result.cells) {
        JsonValue cell = JsonValue::object();

        JsonValue config = JsonValue::object();
        config.add("index",
                   static_cast<std::uint64_t>(r.cell.index));
        config.add("workload", r.cell.workload);
        config.add("mode", runModeName(r.cell.mode));
        if (r.cell.mode == RunMode::Accelerated) {
            config.add(
                "predictor",
                spec.predictors[r.cell.predictorIndex].label);
            config.add("pollution",
                       pollutionPolicyName(
                           spec.pollution[r.cell.pollutionIndex]));
        }
        config.add("l2_bytes", r.cell.l2Bytes);
        config.add("seed_index", r.cell.seedIndex);
        config.add("seed", r.cell.seed);
        cell.add("config", std::move(config));

        JsonValue metrics = JsonValue::object();
        metrics.add("totals", toJson(r.totals));
        if (r.hasStats)
            metrics.add("predictor_stats", toJson(r.stats));
        cell.add("metrics", std::move(metrics));

        JsonValue derived = JsonValue::object();
        if (r.hasBaseline)
            derived.add("cycle_error", r.cycleError);
        if (r.cell.mode == RunMode::Accelerated)
            derived.add("est_speedup_r133", r.estSpeedupR133);
        if (derived.size())
            cell.add("derived", std::move(derived));

        if (options.includeTiming)
            cell.add("wall_s", r.wallSeconds);
        cells.append(std::move(cell));
    }
    doc.add("cells", std::move(cells));

    JsonValue summary = JsonValue::object();
    JsonValue variants = JsonValue::array();
    for (const VariantSummary &s : result.summary) {
        JsonValue v = JsonValue::object();
        v.add("predictor", s.label);
        v.add("cells", s.cells);
        v.add("mean_cycle_error", s.meanCycleError);
        v.add("worst_cycle_error", s.worstCycleError);
        v.add("mean_coverage", s.meanCoverage);
        v.add("mean_est_speedup_r133", s.meanEstSpeedupR133);
        variants.append(std::move(v));
    }
    summary.add("predictors", std::move(variants));
    doc.add("summary", std::move(summary));

    if (options.includeTiming) {
        JsonValue timing = JsonValue::object();
        timing.add("threads", result.threads);
        timing.add("wall_s", result.wallSeconds);
        doc.add("timing", std::move(timing));
    }
    return doc;
}

void
writeResultsJson(std::ostream &os, const SweepResult &result,
                 const JsonOptions &options)
{
    sweepToJson(result, options).write(os, 2);
    os << "\n";
}

} // namespace osp
