/**
 * @file
 * Lossless (de)serialization of a CellResult — the value format of
 * the persistent sweep-cell cache (driver/cell_cache).
 *
 * The existing sweepToJson() emitters are presentation formats:
 * they omit raw fields, merge others into derived metrics, and so
 * cannot reconstruct a CellResult. This codec is the opposite — it
 * round-trips *every* raw field (run totals, predictor stats, the
 * full metrics/trace/accuracy snapshots, the captured PLT profile)
 * so that a cache hit feeds the aggregator exactly the bytes a
 * fresh simulation would have. Combined with util/json.hh's
 * shortest-round-trip double emission (parse(emit(x)) == x
 * bit-exactly), a warm sweep's results document is byte-identical
 * to the cold run's.
 *
 * Deliberately NOT round-tripped: wallSeconds (volatile, excluded
 * from canonical output; a cached cell reports 0) and the
 * aggregator-derived fields (cycleError, signedCycleError,
 * hasBaseline, estSpeedupR133) — aggregate() recomputes those after
 * every sweep, cached or not.
 *
 * Schema: "ospredict-cell-v1". Any mismatch decodes to nullopt —
 * the cache treats it as a miss, never a crash.
 */

#ifndef OSP_DRIVER_CELL_IO_HH
#define OSP_DRIVER_CELL_IO_HH

#include <optional>
#include <string>

#include "sweep.hh"

namespace osp
{

inline constexpr const char *cellSchema = "ospredict-cell-v1";

/** Serialize @p result to the compact cache value form. */
std::string encodeCellResult(const CellResult &result);

/** Parse a cache value; nullopt on any schema/shape mismatch. */
std::optional<CellResult> decodeCellResult(std::string_view text);

} // namespace osp

#endif // OSP_DRIVER_CELL_IO_HH
