#include "experiments.hh"

#include "util/logging.hh"
#include "workload/registry.hh"

namespace osp
{

PredictorParams
experimentPredictor(RelearnStrategy strategy)
{
    PredictorParams p;
    p.learningWindow = 100;
    p.relearn.strategy = strategy;
    return p;
}

namespace
{

SweepSpec
baseSpec(const std::string &name, double scale)
{
    SweepSpec spec;
    spec.name = name;
    spec.workloads = osIntensiveWorkloads();
    spec.baseSeed = experimentSeed;
    spec.scale = scale;
    return spec;
}

} // namespace

SweepSpec
fig08Sweep(double scale_mult)
{
    SweepSpec spec =
        baseSpec("fig08", experimentAccuracyScale * scale_mult);
    spec.modes = {RunMode::Full, RunMode::AppOnly,
                  RunMode::Accelerated};
    spec.predictors = {{"statistical", experimentPredictor()}};
    return spec;
}

SweepSpec
fig10Sweep(double scale_mult)
{
    SweepSpec spec =
        baseSpec("fig10", experimentShapeScale * scale_mult);
    spec.modes = {RunMode::Full, RunMode::AppOnly,
                  RunMode::Accelerated};
    spec.predictors = {{"statistical", experimentPredictor()}};
    spec.l2Sizes = {512 * 1024, 1024 * 1024};
    return spec;
}

SweepSpec
fig11Sweep(double scale_mult)
{
    SweepSpec spec =
        baseSpec("fig11", experimentAccuracyScale * scale_mult);
    spec.modes = {RunMode::Full, RunMode::Accelerated};
    // The paper's strategy axis with audit sampling (this repo's
    // drift extension) disabled so it cannot blur the strategies'
    // differences, plus the repository default as a fifth variant.
    const RelearnStrategy strategies[] = {
        RelearnStrategy::BestMatch,
        RelearnStrategy::Statistical,
        RelearnStrategy::Delayed,
        RelearnStrategy::Eager,
    };
    for (RelearnStrategy s : strategies) {
        PredictorParams p = experimentPredictor(s);
        p.auditEvery = 0;
        spec.predictors.push_back(
            {relearnStrategyName(s), p});
    }
    spec.predictors.push_back(
        {"stat+audit", experimentPredictor()});
    return spec;
}

SweepSpec
table2Sweep(double scale_mult)
{
    SweepSpec spec =
        baseSpec("table2", experimentAccuracyScale * scale_mult);
    spec.modes = {RunMode::Full, RunMode::Accelerated};
    spec.predictors = {{"statistical", experimentPredictor()}};
    return spec;
}

SweepSpec
fig13Sweep(double scale_mult)
{
    // The composition experiment needs the predictor to mature
    // inside the run (otherwise the "combined" corner degenerates
    // to sampling alone), so its smoke shrink is floored well above
    // the generic 1/20: coverage, not wall clock, is the binding
    // constraint here.
    double eff = scale_mult < experimentSampleMinScaleMult
                     ? experimentSampleMinScaleMult
                     : scale_mult;
    SweepSpec spec =
        baseSpec("fig13", experimentAccuracyScale * eff);
    spec.modes = {RunMode::Full, RunMode::Accelerated};
    // The learning window tracks the work volume like the interval
    // length does: a shrunk run carries proportionally fewer
    // service invocations, so the paper's window of 100 would
    // never fill.
    PredictorParams pred = experimentPredictor();
    pred.learningWindow = static_cast<std::uint32_t>(
        pred.learningWindow * eff);
    if (pred.learningWindow < 10)
        pred.learningWindow = 10;
    spec.predictors = {{"statistical", pred}};
    SampleParams sample;
    // Interval length tracks the work volume so shrunk runs still
    // produce enough full intervals per stratum to estimate
    // within-stratum variance.
    sample.intervalLen =
        static_cast<InstCount>(experimentSampleIntervalLen * eff);
    if (sample.intervalLen < 200)
        sample.intervalLen = 200;
    sample.strata = experimentSampleStrata;
    sample.rate = experimentSampleRate;
    applySweepSampling(spec, sample);
    return spec;
}

const std::vector<std::string> &
namedSweeps()
{
    static const std::vector<std::string> names = {
        "fig08", "fig10", "fig11", "table2", "fig13",
    };
    return names;
}

SweepSpec
makeNamedSweep(const std::string &name, double scale_mult,
               bool smoke)
{
    SweepSpec spec;
    if (name == "fig08")
        spec = fig08Sweep(scale_mult);
    else if (name == "fig10")
        spec = fig10Sweep(scale_mult);
    else if (name == "fig11")
        spec = fig11Sweep(scale_mult);
    else if (name == "table2")
        spec = table2Sweep(scale_mult);
    else if (name == "fig13")
        spec = fig13Sweep(scale_mult);
    else
        osp_panic("unknown sweep ", name.c_str());
    spec.smoke = smoke;
    return spec;
}

} // namespace osp
