#include "thread_pool.hh"

namespace osp
{

WorkStealingPool::WorkStealingPool(unsigned threads)
{
    if (threads == 0)
        threads = 1;
    deques_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        deques_.push_back(std::make_unique<Deque>());
    workers_.reserve(threads);
    for (unsigned i = 0; i < threads; ++i)
        workers_.emplace_back(
            [this, i] { workerLoop(static_cast<std::size_t>(i)); });
}

WorkStealingPool::~WorkStealingPool()
{
    wait();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
WorkStealingPool::submit(std::function<void()> task)
{
    std::size_t target;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        target = nextDeque_;
        nextDeque_ = (nextDeque_ + 1) % deques_.size();
        ++outstanding_;
        ++pending_;
    }
    {
        std::lock_guard<std::mutex> lock(deques_[target]->mutex);
        deques_[target]->tasks.push_back(std::move(task));
    }
    workReady_.notify_one();
}

void
WorkStealingPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return outstanding_ == 0; });
}

bool
WorkStealingPool::takeTask(std::size_t self,
                           std::function<void()> &out)
{
    bool found = false;
    {
        // Own deque: newest-first, the cache-friendly end.
        Deque &mine = *deques_[self];
        std::lock_guard<std::mutex> lock(mine.mutex);
        if (!mine.tasks.empty()) {
            out = std::move(mine.tasks.back());
            mine.tasks.pop_back();
            found = true;
        }
    }
    for (std::size_t i = 1; !found && i < deques_.size(); ++i) {
        // Victims: oldest-first, so a steal grabs the task that has
        // waited longest.
        Deque &victim = *deques_[(self + i) % deques_.size()];
        std::lock_guard<std::mutex> lock(victim.mutex);
        if (!victim.tasks.empty()) {
            out = std::move(victim.tasks.front());
            victim.tasks.pop_front();
            found = true;
        }
    }
    if (found) {
        std::lock_guard<std::mutex> lock(mutex_);
        --pending_;
    }
    return found;
}

void
WorkStealingPool::workerLoop(std::size_t self)
{
    for (;;) {
        std::function<void()> task;
        if (takeTask(self, task)) {
            task();
            bool done;
            {
                std::lock_guard<std::mutex> lock(mutex_);
                done = (--outstanding_ == 0);
            }
            if (done)
                allDone_.notify_all();
            continue;
        }
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_)
            return;
        // pending_ > 0 means a queued task exists that this worker
        // raced with; rescan instead of sleeping.
        if (pending_ == 0) {
            workReady_.wait(lock, [this] {
                return stopping_ || pending_ > 0;
            });
            if (stopping_)
                return;
        }
    }
}

} // namespace osp
