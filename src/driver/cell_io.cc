#include "cell_io.hh"

#include "obs/snapshot_io.hh"
#include "util/json.hh"

namespace osp
{

namespace
{

/** Signals a malformed document to decodeCellResult's catch. */
struct BadDocument
{
};

/** Object member access that throws BadDocument instead of
 *  panicking — a corrupt cache value must decode to nullopt. */
const JsonValue &
field(const JsonValue &obj, std::string_view key)
{
    const JsonValue *v = obj.find(key);
    if (!v)
        throw BadDocument{};
    return *v;
}

// Encoders. Compact array forms keep the cache values small where
// the data is regular (trace events, counters); everything else is
// a keyed object so the format stays debuggable with jq.

JsonValue
memToJson(const HierarchyCounts &m)
{
    JsonValue v = JsonValue::array();
    v.append(m.l1iAccesses);
    v.append(m.l1iMisses);
    v.append(m.l1dAccesses);
    v.append(m.l1dMisses);
    v.append(m.l2Accesses);
    v.append(m.l2Misses);
    return v;
}

bool
memFromJson(const JsonValue &v, HierarchyCounts &m)
{
    if (!v.isArray() || v.size() != 6)
        return false;
    m.l1iAccesses = v.at(0).asUint();
    m.l1iMisses = v.at(1).asUint();
    m.l1dAccesses = v.at(2).asUint();
    m.l1dMisses = v.at(3).asUint();
    m.l2Accesses = v.at(4).asUint();
    m.l2Misses = v.at(5).asUint();
    return true;
}

JsonValue
totalsToJson(const RunTotals &t)
{
    JsonValue v = JsonValue::object();
    v.add("app_insts", t.appInsts);
    v.add("os_insts", t.osInsts);
    v.add("os_pred_insts", t.osPredInsts);
    v.add("app_cycles", t.appCycles);
    v.add("os_sim_cycles", t.osSimCycles);
    v.add("os_pred_cycles", t.osPredCycles);
    v.add("os_invocations", t.osInvocations);
    v.add("os_simulated", t.osSimulated);
    v.add("os_predicted", t.osPredicted);
    v.add("measured_mem", memToJson(t.measuredMem));
    v.add("predicted_mem", memToJson(t.predictedMem));
    JsonValue services = JsonValue::array();
    for (const ServiceTotals &s : t.perService) {
        JsonValue sv = JsonValue::array();
        sv.append(s.invocations);
        sv.append(s.simulated);
        sv.append(s.predicted);
        sv.append(s.insts);
        sv.append(s.cycles);
        services.append(std::move(sv));
    }
    v.add("per_service", std::move(services));
    return v;
}

bool
totalsFromJson(const JsonValue &v, RunTotals &t)
{
    if (!v.isObject())
        return false;
    const JsonValue *services = v.find("per_service");
    if (!services || !services->isArray() ||
        services->size() != t.perService.size())
        return false;
    t.appInsts = field(v, "app_insts").asUint();
    t.osInsts = field(v, "os_insts").asUint();
    t.osPredInsts = field(v, "os_pred_insts").asUint();
    t.appCycles = field(v, "app_cycles").asUint();
    t.osSimCycles = field(v, "os_sim_cycles").asUint();
    t.osPredCycles = field(v, "os_pred_cycles").asUint();
    t.osInvocations = field(v, "os_invocations").asUint();
    t.osSimulated = field(v, "os_simulated").asUint();
    t.osPredicted = field(v, "os_predicted").asUint();
    if (!memFromJson(field(v, "measured_mem"), t.measuredMem) ||
        !memFromJson(field(v, "predicted_mem"), t.predictedMem))
        return false;
    for (std::size_t i = 0; i < t.perService.size(); ++i) {
        const JsonValue &sv = services->at(i);
        if (!sv.isArray() || sv.size() != 5)
            return false;
        ServiceTotals &s = t.perService[i];
        s.invocations = sv.at(0).asUint();
        s.simulated = sv.at(1).asUint();
        s.predicted = sv.at(2).asUint();
        s.insts = sv.at(3).asUint();
        s.cycles = sv.at(4).asUint();
    }
    return true;
}

JsonValue
statsToJson(const ServicePredictor::Stats &s)
{
    JsonValue v = JsonValue::array();
    v.append(s.warmupRuns);
    v.append(s.learnedRuns);
    v.append(s.predictedRuns);
    v.append(s.outliers);
    v.append(s.relearnEvents);
    v.append(s.audits);
    v.append(s.auditFailures);
    v.append(s.auditWarmupRuns);
    v.append(s.driftResets);
    return v;
}

bool
statsFromJson(const JsonValue &v, ServicePredictor::Stats &s)
{
    if (!v.isArray() || v.size() != 9)
        return false;
    s.warmupRuns = v.at(0).asUint();
    s.learnedRuns = v.at(1).asUint();
    s.predictedRuns = v.at(2).asUint();
    s.outliers = v.at(3).asUint();
    s.relearnEvents = v.at(4).asUint();
    s.audits = v.at(5).asUint();
    s.auditFailures = v.at(6).asUint();
    s.auditWarmupRuns = v.at(7).asUint();
    s.driftResets = v.at(8).asUint();
    return true;
}

JsonValue
accuracyToJson(const obs::AccuracySnapshot &a)
{
    JsonValue v = JsonValue::object();
    v.add("tolerance", a.tolerance);
    v.add("total_cycles", a.totalCycles);
    v.add("predicted_cycles", a.predictedCycles);
    JsonValue entries = JsonValue::array();
    for (const obs::AccuracyEntry &e : a.entries) {
        JsonValue ev = JsonValue::object();
        ev.add("service", static_cast<std::uint64_t>(e.service));
        ev.add("cluster", static_cast<std::uint64_t>(e.cluster));
        ev.add("predictions", e.predictions);
        ev.add("outlier_predictions", e.outlierPredictions);
        ev.add("predicted_cycles", e.predictedCycles);
        ev.add("audits", e.audits);
        ev.add("audit_failures", e.auditFailures);
        ev.add("err_count", e.errCount);
        ev.add("err_mean", e.errMean);
        ev.add("err_m2", e.errM2);
        ev.add("err_min", e.errMin);
        ev.add("err_max", e.errMax);
        ev.add("miss_count", e.missCount);
        ev.add("miss_mean", e.missMean);
        ev.add("ipc_count", e.ipcCount);
        ev.add("ipc_mean", e.ipcMean);
        ev.add("ci95", e.ci95);
        ev.add("has_ci", e.hasCi);
        ev.add("drift", e.drift);
        entries.append(std::move(ev));
    }
    v.add("entries", std::move(entries));
    return v;
}

bool
accuracyFromJson(const JsonValue &v, obs::AccuracySnapshot &a)
{
    if (!v.isObject())
        return false;
    const JsonValue *entries = v.find("entries");
    if (!entries || !entries->isArray())
        return false;
    a.tolerance = field(v, "tolerance").asDouble();
    a.totalCycles = field(v, "total_cycles").asUint();
    a.predictedCycles = field(v, "predicted_cycles").asUint();
    for (const JsonValue &ev : entries->elements()) {
        if (!ev.isObject())
            return false;
        obs::AccuracyEntry e;
        e.service = static_cast<std::uint8_t>(
            field(ev, "service").asUint());
        e.cluster = static_cast<std::uint32_t>(
            field(ev, "cluster").asUint());
        e.predictions = field(ev, "predictions").asUint();
        e.outlierPredictions = field(ev, "outlier_predictions").asUint();
        e.predictedCycles = field(ev, "predicted_cycles").asUint();
        e.audits = field(ev, "audits").asUint();
        e.auditFailures = field(ev, "audit_failures").asUint();
        e.errCount = field(ev, "err_count").asUint();
        e.errMean = field(ev, "err_mean").asDouble();
        e.errM2 = field(ev, "err_m2").asDouble();
        e.errMin = field(ev, "err_min").asDouble();
        e.errMax = field(ev, "err_max").asDouble();
        e.missCount = field(ev, "miss_count").asUint();
        e.missMean = field(ev, "miss_mean").asDouble();
        e.ipcCount = field(ev, "ipc_count").asUint();
        e.ipcMean = field(ev, "ipc_mean").asDouble();
        e.ci95 = field(ev, "ci95").asDouble();
        e.hasCi = field(ev, "has_ci").asBool();
        e.drift = field(ev, "drift").asBool();
        a.entries.push_back(e);
    }
    return true;
}

} // namespace

std::string
encodeCellResult(const CellResult &r)
{
    JsonValue doc = JsonValue::object();
    doc.add("schema", cellSchema);

    JsonValue cell = JsonValue::object();
    cell.add("index", static_cast<std::uint64_t>(r.cell.index));
    cell.add("workload", r.cell.workload);
    cell.add("mode", static_cast<std::uint64_t>(r.cell.mode));
    cell.add("predictor_index",
             static_cast<std::uint64_t>(r.cell.predictorIndex));
    cell.add("pollution_index",
             static_cast<std::uint64_t>(r.cell.pollutionIndex));
    cell.add("l2_bytes", r.cell.l2Bytes);
    cell.add("seed_index", r.cell.seedIndex);
    cell.add("seed", r.cell.seed);
    doc.add("cell", std::move(cell));

    if (r.failed) {
        doc.add("error", r.error);
        return doc.dump(-1);
    }

    doc.add("totals", totalsToJson(r.totals));
    if (r.hasStats)
        doc.add("stats", statsToJson(r.stats));
    doc.add("telemetry", obs::metricsSnapshotToJson(r.telemetry));

    JsonValue trace_info = JsonValue::array();
    trace_info.append(
        static_cast<std::uint64_t>(r.traceInfo.capacity));
    trace_info.append(r.traceInfo.recorded);
    trace_info.append(r.traceInfo.dropped);
    doc.add("trace_info", std::move(trace_info));

    doc.add("accuracy", accuracyToJson(r.accuracy));

    JsonValue events = JsonValue::array();
    for (const obs::TraceEvent &ev : r.trace) {
        JsonValue e = JsonValue::array();
        e.append(ev.tick);
        e.append(ev.a);
        e.append(ev.b);
        e.append(static_cast<std::uint64_t>(ev.kind));
        e.append(static_cast<std::uint64_t>(ev.service));
        events.append(std::move(e));
    }
    doc.add("trace", std::move(events));

    if (!r.pltProfile.empty())
        doc.add("plt_profile", r.pltProfile);

    // Sampled cells carry their measured/estimated sample section
    // (oracle comparisons are aggregator-derived and deliberately
    // absent: a cached cell must not depend on other cells).
    if (r.sample.present) {
        const CellSampleSection &s = r.sample;
        JsonValue sv = JsonValue::object();
        sv.add("interval_len", s.intervalLen);
        sv.add("num_intervals", s.numIntervals);
        sv.add("num_strata", s.numStrata);
        sv.add("sampled_intervals", s.sampledIntervals);
        sv.add("tail_insts", s.tailInsts);
        sv.add("tail_cycles", s.tailCycles);
        sv.add("detailed_app_insts", s.detailedAppInsts);
        sv.add("ff_app_insts", s.ffAppInsts);
        sv.add("est_app_cycles", s.estAppCycles);
        sv.add("est_total_cycles", s.estTotalCycles);
        sv.add("ci95_half", s.ciHalfWidth);
        sv.add("df", s.df);
        sv.add("has_ci", s.hasCi);
        sv.add("detailed_fraction", s.detailedFraction);
        JsonValue strata = JsonValue::array();
        for (const StratumEstimate &h : s.strata) {
            JsonValue row = JsonValue::array();
            row.append(h.population);
            row.append(h.sampled);
            row.append(h.mean);
            row.append(h.sampleVar);
            strata.append(std::move(row));
        }
        sv.add("strata", std::move(strata));
        doc.add("sample", std::move(sv));
    }
    return doc.dump(-1);
}

std::optional<CellResult>
decodeCellResult(std::string_view text)
try {
    bool ok = false;
    JsonValue doc = JsonValue::parse(text, &ok);
    if (!ok || !doc.isObject())
        return std::nullopt;
    const JsonValue *schema = doc.find("schema");
    if (!schema || !schema->isString() ||
        schema->asString() != cellSchema)
        return std::nullopt;
    const JsonValue *cell = doc.find("cell");
    if (!cell || !cell->isObject())
        return std::nullopt;

    CellResult r;
    r.cell.index =
        static_cast<std::size_t>(field(*cell, "index").asUint());
    r.cell.workload = field(*cell, "workload").asString();
    r.cell.mode = static_cast<RunMode>(field(*cell, "mode").asUint());
    r.cell.predictorIndex = static_cast<std::size_t>(
        field(*cell, "predictor_index").asUint());
    r.cell.pollutionIndex = static_cast<std::size_t>(
        field(*cell, "pollution_index").asUint());
    r.cell.l2Bytes = field(*cell, "l2_bytes").asUint();
    r.cell.seedIndex = field(*cell, "seed_index").asUint();
    r.cell.seed = field(*cell, "seed").asUint();

    if (const JsonValue *error = doc.find("error")) {
        r.failed = true;
        r.error = error->asString();
        return r;
    }

    const JsonValue *totals = doc.find("totals");
    const JsonValue *telemetry = doc.find("telemetry");
    const JsonValue *trace_info = doc.find("trace_info");
    const JsonValue *accuracy = doc.find("accuracy");
    const JsonValue *trace = doc.find("trace");
    if (!totals || !telemetry || !trace_info || !accuracy ||
        !trace || !trace->isArray())
        return std::nullopt;
    if (!totalsFromJson(*totals, r.totals))
        return std::nullopt;
    if (const JsonValue *stats = doc.find("stats")) {
        if (!statsFromJson(*stats, r.stats))
            return std::nullopt;
        r.hasStats = true;
    }
    if (!obs::metricsSnapshotFromJson(*telemetry, r.telemetry))
        return std::nullopt;
    if (!trace_info->isArray() || trace_info->size() != 3)
        return std::nullopt;
    r.traceInfo.capacity =
        static_cast<std::size_t>(trace_info->at(0).asUint());
    r.traceInfo.recorded = trace_info->at(1).asUint();
    r.traceInfo.dropped = trace_info->at(2).asUint();
    if (!accuracyFromJson(*accuracy, r.accuracy))
        return std::nullopt;
    for (const JsonValue &e : trace->elements()) {
        if (!e.isArray() || e.size() != 5)
            return std::nullopt;
        obs::TraceEvent ev;
        ev.tick = e.at(0).asUint();
        ev.a = e.at(1).asUint();
        ev.b = e.at(2).asUint();
        ev.kind =
            static_cast<obs::TraceEventKind>(e.at(3).asUint());
        ev.service =
            static_cast<std::uint8_t>(e.at(4).asUint());
        r.trace.push_back(ev);
    }
    if (const JsonValue *profile = doc.find("plt_profile"))
        r.pltProfile = profile->asString();

    // A sampled-mode cell without its sample section is a payload
    // from a stale schema: reject it (decoding to a miss) rather
    // than assembling a document with a silently absent estimate.
    const JsonValue *sample = doc.find("sample");
    if (isSampledMode(r.cell.mode) &&
        (!sample || !sample->isObject()))
        return std::nullopt;
    if (sample && sample->isObject()) {
        CellSampleSection &s = r.sample;
        s.present = true;
        s.intervalLen = field(*sample, "interval_len").asUint();
        s.numIntervals = field(*sample, "num_intervals").asUint();
        s.numStrata = field(*sample, "num_strata").asUint();
        s.sampledIntervals =
            field(*sample, "sampled_intervals").asUint();
        s.tailInsts = field(*sample, "tail_insts").asUint();
        s.tailCycles = field(*sample, "tail_cycles").asUint();
        s.detailedAppInsts =
            field(*sample, "detailed_app_insts").asUint();
        s.ffAppInsts = field(*sample, "ff_app_insts").asUint();
        s.estAppCycles =
            field(*sample, "est_app_cycles").asDouble();
        s.estTotalCycles =
            field(*sample, "est_total_cycles").asDouble();
        s.ciHalfWidth = field(*sample, "ci95_half").asDouble();
        s.df = field(*sample, "df").asUint();
        s.hasCi = field(*sample, "has_ci").asBool();
        s.detailedFraction =
            field(*sample, "detailed_fraction").asDouble();
        const JsonValue &strata = field(*sample, "strata");
        if (!strata.isArray())
            return std::nullopt;
        for (const JsonValue &row : strata.elements()) {
            if (!row.isArray() || row.size() != 4)
                return std::nullopt;
            StratumEstimate h;
            h.population = row.at(0).asUint();
            h.sampled = row.at(1).asUint();
            h.mean = row.at(2).asDouble();
            h.sampleVar = row.at(3).asDouble();
            r.sample.strata.push_back(h);
        }
    }
    return r;
} catch (const BadDocument &) {
    return std::nullopt;
}

} // namespace osp
