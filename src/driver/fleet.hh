/**
 * @file
 * The fleet observability plane: store-backed worker telemetry for
 * distributed sweeps.
 *
 * A `--jobs N` fleet is otherwise a black box — each worker's
 * telemetry dies with its process and live progress is invisible.
 * This layer gives every worker a single overwritten key
 *
 *     fleet/<fingerprint>/<owner>
 *
 * holding a versioned "ospredict-worker-v1" snapshot: its claim-loop
 * stats, mergeable metrics (claim/commit transaction latency, cell
 * wall times, the store's self-profiling histograms), per-cell wall
 * times, dropped-trace accounting, and a bounded ring of lifecycle
 * events. Snapshots are staged by FleetPublisher into the worker's
 * *existing* claim/commit transactions, so they ride the shared-mode
 * transaction gate: a snapshot is either fully committed or absent,
 * never torn, and any process can read the latest committed state
 * mid-run through an ordinary snapshot ReadTx (the `sweep --monitor`
 * loop does exactly that from a read-only open).
 *
 * On the read side, readFleetView() aggregates the keyspace into a
 * FleetView — cells by state, workers in owner order, metrics merged
 * across workers — from which flow the human monitor rendering, the
 * deterministic "ospredict-fleet-v1" JSON report, the
 * Prometheus-style text export, and the merged chrome://tracing
 * timeline with one lane per worker pid.
 *
 * Nothing here touches results.json: fleet keys live outside the
 * cell keyspace and outside the cell identity hash, so the sweep's
 * byte-identity contract is unaffected.
 */

#ifndef OSP_DRIVER_FLEET_HH
#define OSP_DRIVER_FLEET_HH

#include <chrono>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "claim_executor.hh"
#include "obs/metrics.hh"
#include "store/page_store.hh"
#include "sweep.hh"
#include "util/json.hh"

namespace osp
{

inline constexpr std::string_view workerSnapshotSchema =
    "ospredict-worker-v1";
inline constexpr std::string_view fleetReportSchema =
    "ospredict-fleet-v1";

/** Structured lifecycle events a worker publishes (bounded ring). */
enum class FleetEventKind : std::uint8_t
{
    Claimed,    //!< won a claim transaction
    Reclaimed,  //!< the claim took over an expired lease
    Executed,   //!< a cell run finished (tUs = start, durUs = wall)
    Committed,  //!< result committed (done claim)
    Retry,      //!< execution threw; retry claim recorded
    Failed,     //!< retries exhausted; terminal failed claim
    LostLease,  //!< result discarded, lease reclaimed under us
    Poll,       //!< idle poll while other leases are live
    Exited,     //!< worker finished (nothing left to claim)
};

inline constexpr std::size_t numFleetEventKinds = 9;

/** Wire/display name ("claimed", "reclaimed", ...). */
const char *fleetEventKindName(FleetEventKind kind);

/** One lifecycle event. Times are real microseconds — fleet data is
 *  observability, deliberately outside the determinism contract. */
struct FleetEvent
{
    /** No cell attached to this event (polls, exit). */
    static constexpr std::uint64_t noCell = UINT64_MAX;

    std::uint64_t tUs = 0;  //!< µs since worker start (steady clock)
    FleetEventKind kind = FleetEventKind::Claimed;
    std::uint64_t cell = noCell;  //!< cell index in expansion order
    std::uint64_t durUs = 0;      //!< Executed: wall µs of the run
};

/** One worker's published state (the fleet/<fp>/<owner> value). */
struct WorkerSnapshot
{
    std::string owner;
    std::uint64_t pid = 0;
    std::uint64_t version = 0;  //!< publish counter, 1-based
    std::uint64_t epoch = 0;    //!< heartbeat at publish time
    bool exited = false;        //!< final snapshot of a clean exit
    std::uint64_t startUnixUs = 0;  //!< system clock at worker start
    std::uint64_t uptimeUs = 0;     //!< steady µs start -> publish
    WorkerStats stats;
    /** Per-worker dropped-trace accounting: executed cells whose
     *  event ring overflowed, and the events they lost. Carried here
     *  so assemble/monitor can re-warn with owner attribution (the
     *  in-process warning dies with the worker). */
    std::uint64_t ringsWithDrops = 0;
    std::uint64_t totalDropped = 0;
    /** (cell index, wall µs) per executed cell, execution order. */
    std::vector<std::pair<std::uint64_t, std::uint64_t>> cellWalls;
    std::vector<FleetEvent> events;  //!< newest eventCapacity kept
    std::uint64_t eventsDropped = 0;
    /** Mergeable instruments: the claim loop's histograms plus the
     *  store's self-profile folded in under component "store". */
    obs::MetricsSnapshot metrics;
};

/** `fleet/<fingerprint>/<owner>`. */
std::string fleetKey(const std::string &fingerprint,
                     const std::string &owner);

/** Canonical compact-JSON encoding ("ospredict-worker-v1"). */
std::string encodeWorkerSnapshot(const WorkerSnapshot &snap);

/** Strict decode; nullopt on any malformed structure. */
std::optional<WorkerSnapshot>
decodeWorkerSnapshot(std::string_view text);

/**
 * The worker-side accumulator and publisher. One per claim loop;
 * not thread-safe (the lease refresher deliberately does not
 * publish). note*() calls record what happened between
 * transactions; publish() stages the next snapshot version into a
 * transaction the caller is about to commit, so a snapshot becomes
 * visible exactly when the claim-table mutation it describes does.
 */
class FleetPublisher
{
  public:
    FleetPublisher(std::string fingerprint, std::string owner,
                   std::size_t event_capacity = 256);

    /** µs since construction (the event clock). */
    std::uint64_t nowUs() const;

    /** Append an event, dropping the oldest beyond capacity. */
    void noteEvent(FleetEventKind kind,
                   std::uint64_t cell = FleetEvent::noCell,
                   std::uint64_t dur_us = 0,
                   std::uint64_t t_us = UINT64_MAX);

    /** Record one executed cell's wall time. */
    void noteCellWall(std::uint64_t cell_index,
                      std::uint64_t wall_us);

    /** Record one executed cell whose event ring overflowed. */
    void noteTraceDrops(std::uint64_t dropped);

    /** Claim/commit transaction latency histograms. */
    void observeClaimTx(std::uint64_t us);
    void observeCommitTx(std::uint64_t us);

    /**
     * Stage fleet/<fp>/<owner> := the next snapshot version into
     * @p tx. @p store supplies the self-profile to fold in;
     * @p epoch is the heartbeat this transaction observed.
     */
    void publish(store::WriteTx &tx, store::PageStore &store,
                 const WorkerStats &stats, std::uint64_t epoch,
                 bool exited);

    std::uint64_t version() const { return version_; }

  private:
    std::string fingerprint_;
    std::string owner_;
    std::size_t eventCapacity_;
    std::uint64_t pid_;
    std::uint64_t startUnixUs_;
    std::chrono::steady_clock::time_point start_;
    std::uint64_t version_ = 0;
    std::uint64_t ringsWithDrops_ = 0;
    std::uint64_t totalDropped_ = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> cellWalls_;
    std::vector<FleetEvent> events_;
    std::uint64_t eventsDropped_ = 0;
    obs::Registry registry_;
};

/** Cells of the sweep bucketed by their store/claim state. */
struct FleetCellCounts
{
    std::uint64_t total = 0;
    std::uint64_t done = 0;       //!< committed result (or done claim)
    std::uint64_t failed = 0;     //!< terminal failed claim
    std::uint64_t claimed = 0;    //!< live lease held
    std::uint64_t retry = 0;      //!< awaiting another claimant
    std::uint64_t unclaimed = 0;  //!< never claimed

    std::uint64_t
    outstanding() const
    {
        return total - done - failed;
    }
};

/** One consistent aggregation of the fleet keyspace. */
struct FleetView
{
    std::string sweep;  //!< spec name (caller-provided label)
    std::string fingerprint;
    std::uint64_t heartbeat = 0;
    FleetCellCounts cells;
    std::vector<WorkerSnapshot> workers;  //!< owner (key) order
    WorkerStats totals;                   //!< summed worker stats
    std::uint64_t ringsWithDrops = 0;     //!< summed drop accounting
    std::uint64_t totalDropped = 0;
    obs::MetricsSnapshot merged;  //!< metrics merged across workers
};

/**
 * Read one consistent snapshot of the fleet state: cell states for
 * @p cell_keys (content hashes in cell-index order) plus every
 * decoded worker snapshot, all through a single ReadTx. Works on
 * any open mode, including read-only monitors of a live store.
 */
FleetView readFleetView(store::PageStore &store,
                        const std::string &fingerprint,
                        const std::vector<std::string> &cell_keys);

/**
 * The deterministic "ospredict-fleet-v1" report: derived purely
 * from the view (no clocks), workers in owner order — the same
 * store bytes always produce the same report bytes.
 */
JsonValue fleetReportToJson(const FleetView &view);

/** fleetReportToJson() pretty-printed, trailing newline. */
void writeFleetReport(std::ostream &os, const FleetView &view);

/** Prometheus text exposition of the same view (counters, gauges
 *  and cumulative-bucket histograms under the ospredict_ prefix). */
void writePrometheusReport(std::ostream &os, const FleetView &view);

/**
 * Human monitor rendering: one status block — cells by state,
 * per-worker health (live/stale/exited by heartbeat lag vs
 * @p lease_ticks), throughput and a crude ETA from the per-cell
 * wall-time history.
 */
void renderFleetStatus(std::ostream &os, const FleetView &view,
                       std::uint64_t lease_ticks);

/** Re-warn about workers whose cells dropped trace events, with
 *  per-owner attribution (see WorkerSnapshot::ringsWithDrops). */
void warnFleetDrops(const FleetView &view);

/**
 * The merged chrome://tracing timeline: every cell's retained trace
 * (identical lanes to writeChromeTrace — pid = cell index, ts =
 * retired instructions) plus one process lane per worker pid whose
 * lifecycle events are laid out in real microseconds since the Unix
 * epoch. The two clock domains are disjoint by construction and
 * labelled in otherData.
 */
void writeMergedChromeTrace(std::ostream &os,
                            const SweepResult &result,
                            const FleetView &view);

} // namespace osp

#endif // OSP_DRIVER_FLEET_HH
