/**
 * @file
 * A work-stealing thread pool for the experiment harness.
 *
 * Sweep cells are extremely uneven (a full-detail iperf run costs
 * ~100x an emulated SPEC cell), so a single shared queue would
 * serialize on the mutex at the fine end while a static partition
 * would idle half the workers at the coarse end. The classic answer
 * is per-worker deques with stealing: a worker pops newest-first
 * from its own deque (cache-warm) and steals oldest-first from a
 * victim (largest remaining work in recursive-split workloads).
 *
 * The implementation favors clarity over lock-free cleverness: each
 * deque has its own mutex, and contention is negligible because
 * tasks here are milliseconds to minutes, not microseconds.
 *
 * Determinism note: the pool guarantees nothing about execution
 * order — harness determinism comes from tasks writing to
 * preassigned result slots and from aggregation running after
 * wait() in a fixed order (see sweep.cc).
 */

#ifndef OSP_DRIVER_THREAD_POOL_HH
#define OSP_DRIVER_THREAD_POOL_HH

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace osp
{

/** See file comment. */
class WorkStealingPool
{
  public:
    /** Start @p threads workers (clamped to >= 1). */
    explicit WorkStealingPool(unsigned threads);

    /** Waits for all submitted work, then joins the workers. */
    ~WorkStealingPool();

    WorkStealingPool(const WorkStealingPool &) = delete;
    WorkStealingPool &operator=(const WorkStealingPool &) = delete;

    /**
     * Enqueue a task. Round-robins across worker deques so the
     * initial distribution is balanced; stealing handles the rest.
     * Tasks must not throw (the harness has no cross-thread error
     * channel; tasks record failures in their result slots).
     */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

    unsigned numThreads() const
    {
        return static_cast<unsigned>(workers_.size());
    }

  private:
    struct Deque
    {
        std::mutex mutex;
        std::deque<std::function<void()>> tasks;
    };

    void workerLoop(std::size_t self);

    /** Pop from own back, else steal from another's front. */
    bool takeTask(std::size_t self, std::function<void()> &out);

    std::vector<std::unique_ptr<Deque>> deques_;
    std::vector<std::thread> workers_;

    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::size_t outstanding_ = 0;  //!< submitted, not yet finished
    std::size_t pending_ = 0;      //!< submitted, not yet started
    std::size_t nextDeque_ = 0;
    bool stopping_ = false;
};

} // namespace osp

#endif // OSP_DRIVER_THREAD_POOL_HH
