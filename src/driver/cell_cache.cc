#include "cell_cache.hh"

#include "cell_io.hh"
#include "store/claim_table.hh"
#include "util/hash.hh"

namespace osp
{

namespace
{

constexpr std::string_view cellPrefix = "cell/";

JsonValue
relearnContext(const RelearnParams &p)
{
    JsonValue v = JsonValue::object();
    v.add("strategy", static_cast<std::uint64_t>(p.strategy));
    v.add("p_min", p.pMin);
    v.add("moving_window", p.movingWindow);
    v.add("delayed_threshold", p.delayedThreshold);
    v.add("min_epos", p.minEpos);
    v.add("alpha", p.alpha);
    return v;
}

JsonValue
predictorContext(const PredictorParams &p)
{
    JsonValue v = JsonValue::object();
    v.add("doc", p.doc);
    v.add("p_min", p.pMin);
    v.add("learning_window", p.learningWindow);
    v.add("warmup_invocations", p.warmupInvocations);
    v.add("max_warmup_invocations", p.maxWarmupInvocations);
    v.add("stability_window", p.stabilityWindow);
    v.add("stability_tolerance", p.stabilityTolerance);
    v.add("audit_every", p.auditEvery);
    v.add("audit_tolerance", p.auditTolerance);
    v.add("audit_warmup", p.auditWarmup);
    v.add("audit_trigger_count", p.auditTriggerCount);
    v.add("audit_ci_min_samples", p.auditCiMinSamples);
    v.add("audit_mean_tolerance", p.auditMeanTolerance);
    v.add("cluster_range", p.clusterRange);
    v.add("ema_alpha", p.emaAlpha);
    v.add("use_mix_signature", p.useMixSignature);
    v.add("relearn", relearnContext(p.relearn));
    // Backend + hyperparameters fold into the identity so cached
    // cells can never alias across backends: two runs differing
    // only in the prediction strategy must hash to different keys.
    v.add("backend", predictorBackendName(p.backend));
    if (p.backend == PredictorBackendKind::Learned) {
        JsonValue l = JsonValue::object();
        l.add("learning_rate", p.learned.learningRate);
        l.add("rate_decay", p.learned.rateDecay);
        l.add("history_alpha", p.learned.historyAlpha);
        l.add("cpi_min", p.learned.cpiMin);
        l.add("cpi_max", p.learned.cpiMax);
        l.add("outlier_threshold", p.learned.outlierThreshold);
        l.add("buckets_per_octave", p.learned.bucketsPerOctave);
        v.add("learned", std::move(l));
    }
    return v;
}

JsonValue
cacheContext(const CacheParams &c)
{
    JsonValue v = JsonValue::array();
    v.append(c.sizeBytes);
    v.append(c.assoc);
    v.append(c.lineBytes);
    v.append(static_cast<std::uint64_t>(c.repl));
    return v;
}

JsonValue
machineContext(const MachineConfig &cfg)
{
    JsonValue v = JsonValue::object();
    v.add("l1i", cacheContext(cfg.hier.l1i));
    v.add("l1d", cacheContext(cfg.hier.l1d));
    v.add("l2", cacheContext(cfg.hier.l2));
    v.add("l1i_hit", cfg.hier.l1iHitLatency);
    v.add("l1d_hit", cfg.hier.l1dHitLatency);
    v.add("l2_hit", cfg.hier.l2HitLatency);
    v.add("mem_latency", cfg.hier.memLatency);
    v.add("bus_cycles_per_line", cfg.hier.busCyclesPerLine);
    v.add("tlb_entries", cfg.hier.tlbEntries);
    v.add("tlb_assoc", cfg.hier.tlbAssoc);
    v.add("tlb_miss_penalty", cfg.hier.tlbMissPenalty);
    v.add("l2_next_line_prefetch", cfg.hier.l2NextLinePrefetch);
    v.add("hier_seed", cfg.hier.seed);
    v.add("issue_width", cfg.cpu.issueWidth);
    v.add("retire_width", cfg.cpu.retireWidth);
    v.add("window_size", cfg.cpu.windowSize);
    v.add("mispredict_penalty", cfg.cpu.mispredictPenalty);
    v.add("mshrs", cfg.cpu.mshrs);
    v.add("no_cache_mem_latency", cfg.cpu.noCacheMemLatency);
    v.add("level", static_cast<std::uint64_t>(cfg.level));
    v.add("record_intervals", cfg.recordIntervals);
    v.add("bp_warming", cfg.bpWarming);
    v.add("block_ops", cfg.blockOps);
    return v;
}

} // namespace

CellCache::CellCache(store::PageStore &store,
                     std::string code_fingerprint)
    : store_(store), fingerprint_(std::move(code_fingerprint))
{
}

void
CellCache::setWarmProfileHash(const std::string &workload,
                              std::uint64_t hash)
{
    warmProfileHash_[workload] = hash;
}

std::string
CellCache::cellKey(const SweepSpec &spec, const SweepCell &cell,
                   std::size_t trace_capacity) const
{
    // The canonical identity of one cell's simulation: everything
    // runCell() reads, nothing it doesn't (labels, sweep name and
    // the smoke flag are presentation-only and deliberately
    // absent). Doubles rely on the emitter's shortest-round-trip
    // guarantee for canonical bytes.
    JsonValue ctx = JsonValue::object();
    ctx.add("schema", cellSchema);
    ctx.add("store_version", store::storeVersion);
    ctx.add("fingerprint", fingerprint_);
    ctx.add("trace_capacity",
            static_cast<std::uint64_t>(trace_capacity));
    ctx.add("scale", spec.scale);
    ctx.add("workload", cell.workload);
    ctx.add("mode", static_cast<std::uint64_t>(cell.mode));
    ctx.add("l2_bytes", cell.l2Bytes);
    ctx.add("seed_index", cell.seedIndex);
    ctx.add("seed", cell.seed);
    ctx.add("machine", machineContext(spec.baseConfig));
    if (cell.mode == RunMode::Accelerated ||
        cell.mode == RunMode::SampledAccel) {
        ctx.add("predictor_index",
                static_cast<std::uint64_t>(cell.predictorIndex));
        ctx.add("predictor",
                predictorContext(
                    spec.predictors[cell.predictorIndex].params));
        ctx.add("pollution_index",
                static_cast<std::uint64_t>(cell.pollutionIndex));
        ctx.add("pollution",
                static_cast<std::uint64_t>(
                    spec.pollution[cell.pollutionIndex]));
        auto it = warmProfileHash_.find(cell.workload);
        if (it != warmProfileHash_.end())
            ctx.add("warm_profile_hash", it->second);
    }
    // Sampling knobs join the identity only for sampled cells, so
    // every pre-sampling key (and cached value) stays valid.
    if (isSampledMode(cell.mode)) {
        JsonValue s = JsonValue::object();
        s.add("interval_len", spec.sample.intervalLen);
        s.add("strata", spec.sample.strata);
        s.add("rate", spec.sample.rate);
        s.add("allocation",
              static_cast<std::uint64_t>(spec.sample.allocation));
        ctx.add("sample", std::move(s));
    }
    return StableHash().str(ctx.dump(-1)).hex();
}

std::string
CellCache::storeKey(const std::string &cell_key) const
{
    std::string k(cellPrefix);
    k += fingerprint_;
    k += '/';
    k += cell_key;
    return k;
}

std::optional<CellResult>
CellCache::fetch(const std::string &cell_key,
                 const SweepCell &cell, bool claim_aware)
{
    auto &hits = registry_.counter("cell_cache", "hits");
    auto &misses = registry_.counter("cell_cache", "misses");

    std::optional<std::string> value;
    std::optional<store::ClaimRecord> claim;
    {
        store::ReadTx read = store_.beginRead();
        value = read.get(storeKey(cell_key));
        if (!value && claim_aware)
            claim = store::ClaimTable(fingerprint_)
                        .get(read, cell_key);
    }
    if (!value) {
        // Assembly replays exhausted failures from the claim table:
        // workers never cache a failed result, but the final
        // document must mark the cell failed exactly as a
        // single-process run would have.
        if (claim && claim->state == store::ClaimState::Failed) {
            CellResult failed;
            failed.cell = cell;
            failed.failed = true;
            failed.error = claim->error;
            registry_.counter("cell_cache", "failed_replays").inc();
            return failed;
        }
        misses.inc();
        return std::nullopt;
    }
    registry_.counter("cell_cache", "bytes_read")
        .inc(value->size());
    std::optional<CellResult> result = decodeCellResult(*value);
    // Coordinate cross-check: a decode failure or a hash collision
    // (a value recorded for a different cell) degrades to a miss.
    if (!result || result->failed ||
        result->cell.workload != cell.workload ||
        result->cell.mode != cell.mode ||
        result->cell.predictorIndex != cell.predictorIndex ||
        result->cell.pollutionIndex != cell.pollutionIndex ||
        result->cell.l2Bytes != cell.l2Bytes ||
        result->cell.seedIndex != cell.seedIndex ||
        result->cell.seed != cell.seed) {
        misses.inc();
        return std::nullopt;
    }
    // The stored index is from the recording sweep's expansion;
    // the current spec may order cells differently.
    result->cell.index = cell.index;
    hits.inc();
    return result;
}

void
CellCache::noteMisses(std::uint64_t n)
{
    registry_.counter("cell_cache", "misses").inc(n);
}

void
CellCache::commitResults(
    const std::vector<std::pair<std::string, const CellResult *>>
        &items)
{
    // One pass, one transaction: stale-fingerprint eviction and
    // this sweep's inserts commit (or fail) together. The claim
    // keyspaces age out with the cells they coordinated.
    std::vector<std::string> stale;
    {
        // cell/ and claim/ hold many keys per fingerprint, so the
        // live set is a prefix; claimhb/ holds exactly one key per
        // fingerprint, so it is matched exactly (a prefix test
        // would let a fingerprint that merely extends ours escape
        // eviction).
        struct Family
        {
            std::string prefix, live;
            bool exact;
        };
        const Family families[] = {
            {std::string(cellPrefix),
             std::string(cellPrefix) + fingerprint_ + "/", false},
            {"claim/", "claim/" + fingerprint_ + "/", false},
            {"claimhb/", "claimhb/" + fingerprint_, true},
            {"fleet/", "fleet/" + fingerprint_ + "/", false},
        };
        store::ReadTx read = store_.beginRead();
        for (const Family &family : families) {
            read.scan(family.prefix, [&](std::string_view k,
                                         std::string_view) {
                bool is_live =
                    family.exact
                        ? k == family.live
                        : k.compare(0, family.live.size(),
                                    family.live) == 0;
                if (!is_live)
                    stale.emplace_back(k);
                return true;
            });
        }
    }

    std::uint64_t bytes = 0;
    store::WriteTx tx = store_.beginWrite();
    for (const std::string &k : stale)
        tx.erase(k);
    std::uint64_t inserts = 0;
    for (const auto &[cell_key, result] : items) {
        std::string value = encodeCellResult(*result);
        bytes += value.size();
        tx.put(storeKey(cell_key), value);
        ++inserts;
    }
    tx.commit();

    registry_.counter("cell_cache", "inserts").inc(inserts);
    registry_.counter("cell_cache", "evictions")
        .inc(stale.size());
    registry_.counter("cell_cache", "bytes_written").inc(bytes);
}

JsonValue
CellCache::statsToJson()
{
    JsonValue doc = JsonValue::object();
    doc.add("schema", "ospredict-store-stats-v1");
    doc.add("fingerprint", fingerprint_);

    // Fixed field order; untouched counters read as zero, so the
    // document shape never depends on which events occurred.
    obs::MetricsSnapshot snap = registry_.snapshot();
    JsonValue counters = JsonValue::object();
    for (const char *name :
         {"hits", "misses", "failed_replays", "inserts",
          "evictions", "bytes_read", "bytes_written"})
        counters.add(name, snap.counterValue("cell_cache", name));
    doc.add("cache", std::move(counters));

    store::StoreInfo info = store_.info();
    store::StoreProfile prof = store_.profile();
    JsonValue s = JsonValue::object();
    s.add("page_size", info.pageSize);
    s.add("txid", info.txid);
    s.add("num_pages", info.numPages);
    s.add("free_pages", info.freePages);
    s.add("pending_pages", info.pendingPages);
    s.add("leaf_pages", info.leafPages);
    s.add("root_run_pages", info.rootRunPages);
    s.add("keys", info.keys);
    s.add("file_bytes", info.fileBytes);
    // Self-profiling totals: how long this handle actually spent
    // blocked on the writer gate and committing (lockWaitMs only
    // bounds the former; these record it).
    s.add("lock_wait_us_total", prof.lockWaitUsTotal);
    s.add("lock_acquisitions", prof.lockAcquisitions);
    s.add("commit_count", prof.commitCount);
    s.add("commit_us_total", prof.commitUsTotal);
    s.add("pages_written_total", prof.pagesWrittenTotal);
    doc.add("store", std::move(s));

    JsonValue hists = JsonValue::object();
    auto hist = [](const obs::Histogram &h) {
        JsonValue v = JsonValue::object();
        v.add("count", h.count());
        v.add("sum", h.sum());
        JsonValue buckets = JsonValue::array();
        for (std::size_t i = 0; i < obs::Histogram::numBuckets;
             ++i) {
            if (!h.bucket(i))
                continue;
            JsonValue b = JsonValue::array();
            b.append(obs::Histogram::bucketLow(i));
            b.append(h.bucket(i));
            buckets.append(std::move(b));
        }
        v.add("buckets", std::move(buckets));
        return v;
    };
    hists.add("lock_wait_us", hist(prof.lockWaitUs));
    hists.add("commit_us", hist(prof.commitUs));
    hists.add("commit_cow_pages", hist(prof.commitCowPages));
    hists.add("commit_leaf_reads", hist(prof.commitLeafReads));
    doc.add("store_profile", std::move(hists));
    return doc;
}

} // namespace osp
