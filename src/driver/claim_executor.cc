#include "claim_executor.hh"

#include <algorithm>
#include <chrono>
#include <csignal>
#include <optional>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cell_cache.hh"
#include "cell_io.hh"
#include "store/claim_table.hh"

namespace osp
{

namespace
{

/** Outcome of one claim transaction. */
struct ClaimOutcome
{
    /** Index into the expansion of the cell we claimed. */
    std::optional<std::size_t> cellIndex;
    /** Cells neither committed nor terminal — some worker still
     *  owes a result (live lease or awaiting retry by us). */
    std::uint64_t outstanding = 0;
    bool reclaimedExpired = false;
};

} // namespace

WorkerStats
runSweepWorker(const SweepSpec &spec, CellCache &cache,
               const WorkerOptions &options)
{
    WorkerStats stats;
    store::ClaimTable table(cache.fingerprint());
    store::PageStore &store = cache.store();

    std::vector<SweepCell> cells = expandSweep(spec);
    std::vector<std::string> keys(cells.size());
    for (const SweepCell &cell : cells)
        keys[cell.index] =
            cache.cellKey(spec, cell, options.traceCapacity);

    // Warm-start profiles, as in runSweep.
    std::vector<const std::string *> warm(cells.size(), nullptr);
    if (options.warmProfiles) {
        for (const SweepCell &cell : cells) {
            if (cell.mode != RunMode::Accelerated)
                continue;
            auto it = options.warmProfiles->find(cell.workload);
            if (it != options.warmProfiles->end())
                warm[cell.index] = &it->second;
        }
    }

    long poll_ms = options.pollMs;
    bool first_claim = true;
    for (;;) {
        // --- claim transaction --------------------------------
        ClaimOutcome outcome;
        {
            store::WriteTx tx = store.beginWrite();
            std::uint64_t hb = table.bumpHeartbeat(tx);
            ++stats.heartbeats;
            for (const SweepCell &cell : cells) {
                const std::string &key = keys[cell.index];
                if (tx.get(cache.storeKey(key)))
                    continue;  // result already committed
                auto rec = table.get(tx, key);
                if (rec && rec->state == store::ClaimState::Done)
                    continue;  // done claim, value raced in
                if (rec && rec->state == store::ClaimState::Failed)
                    continue;  // terminal
                if (outcome.cellIndex) {
                    ++outcome.outstanding;
                    continue;
                }
                store::ClaimRecord next;
                next.owner = options.owner;
                next.state = store::ClaimState::Claimed;
                next.epoch = hb;
                if (!rec) {
                    // Unclaimed: take it.
                } else if (rec->state == store::ClaimState::Retry) {
                    next.retries = rec->retries;
                } else if (rec->owner == options.owner) {
                    // Our own stale lease (a previous incarnation
                    // of this owner id): re-claim at full price.
                    next.retries = rec->retries;
                } else if (hb - rec->epoch > options.leaseTicks) {
                    // Expired lease: the owner stopped committing.
                    // The abandoned attempt costs one retry.
                    next.retries = rec->retries + 1;
                    if (next.retries >= options.maxRetries) {
                        next.state = store::ClaimState::Failed;
                        next.error = "lease expired (owner " +
                                     rec->owner + ") after " +
                                     std::to_string(next.retries) +
                                     " attempts";
                        table.put(tx, key, next);
                        ++stats.exhausted;
                        continue;
                    }
                    outcome.reclaimedExpired = true;
                } else {
                    ++outcome.outstanding;  // live lease elsewhere
                    continue;
                }
                table.put(tx, key, next);
                outcome.cellIndex = cell.index;
            }
            tx.commit();
        }

        if (outcome.cellIndex) {
            ++stats.claimed;
            if (outcome.reclaimedExpired)
                ++stats.reclaimed;
            poll_ms = options.pollMs;
        }
        if (first_claim && outcome.cellIndex &&
            options.killAfterFirstClaim) {
            // Crash seam: die holding exactly one live lease.
            ::kill(::getpid(), SIGKILL);
        }
        first_claim = false;

        if (!outcome.cellIndex) {
            if (outcome.outstanding == 0)
                return stats;  // sweep complete (or terminal)
            // Everything left is leased by live workers: wait for
            // them to finish, fail, or expire.
            ++stats.polls;
            std::this_thread::sleep_for(
                std::chrono::milliseconds(poll_ms));
            poll_ms = std::min<long>(poll_ms * 2, 1000);
            continue;
        }

        // --- execute (no transaction held) --------------------
        const SweepCell &cell = cells[*outcome.cellIndex];
        const std::string &key = keys[cell.index];
        CellResult result;
        bool failed = false;
        std::string error;
        try {
            result = options.cellRunner
                         ? options.cellRunner(spec, cell,
                                              options.traceCapacity)
                         : runCell(spec, cell,
                                   options.traceCapacity,
                                   warm[cell.index]);
            ++stats.executed;
        } catch (const std::exception &e) {
            failed = true;
            error = e.what();
        } catch (...) {
            failed = true;
            error = "unknown exception";
        }

        // --- commit transaction -------------------------------
        {
            store::WriteTx tx = store.beginWrite();
            table.bumpHeartbeat(tx);
            ++stats.heartbeats;
            auto rec = table.get(tx, key);
            if (!rec ||
                rec->state != store::ClaimState::Claimed ||
                rec->owner != options.owner) {
                // Someone reclaimed our expired lease while we ran;
                // their (identical, deterministic) result wins.
                ++stats.lostLeases;
                tx.commit();
                continue;
            }
            store::ClaimRecord next = *rec;
            if (!failed) {
                tx.put(cache.storeKey(key),
                       encodeCellResult(result));
                next.state = store::ClaimState::Done;
                next.error.clear();
                ++stats.committed;
            } else {
                next.retries = rec->retries + 1;
                next.error = error;
                if (next.retries >= options.maxRetries) {
                    next.state = store::ClaimState::Failed;
                    ++stats.exhausted;
                } else {
                    next.state = store::ClaimState::Retry;
                    ++stats.retriesRecorded;
                }
            }
            table.put(tx, key, next);
            tx.commit();
        }
    }
}

JsonValue
workerStatsToJson(const WorkerStats &stats,
                  const std::string &owner)
{
    JsonValue doc = JsonValue::object();
    doc.add("owner", owner);
    doc.add("claimed", stats.claimed);
    doc.add("executed", stats.executed);
    doc.add("committed", stats.committed);
    doc.add("reclaimed", stats.reclaimed);
    doc.add("retries_recorded", stats.retriesRecorded);
    doc.add("exhausted", stats.exhausted);
    doc.add("lost_leases", stats.lostLeases);
    doc.add("polls", stats.polls);
    doc.add("heartbeats", stats.heartbeats);
    return doc;
}

} // namespace osp
