#include "claim_executor.hh"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <limits>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include <unistd.h>

#include "cell_cache.hh"
#include "cell_io.hh"
#include "fleet.hh"
#include "store/claim_table.hh"

namespace osp
{

namespace
{

/** Outcome of one claim transaction. */
struct ClaimOutcome
{
    /** Index into the expansion of the cell we claimed. */
    std::optional<std::size_t> cellIndex;
    /** Cells neither committed nor terminal — some worker still
     *  owes a result (live lease or awaiting retry by us). */
    std::uint64_t outstanding = 0;
    bool reclaimedExpired = false;
};

/**
 * Background lease refresher: while a cell executes, periodically
 * re-assert the claim's epoch so the lease stays fresh however
 * fast other workers' poll/claim/commit transactions advance the
 * heartbeat. Best-effort — a refresh that loses the store gate or
 * hits an I/O error is simply skipped; the worst case (the lease
 * expires and another worker re-runs the cell) is benign because
 * reclaims are free and cells are deterministic.
 */
class LeaseRefresher
{
  public:
    LeaseRefresher(store::PageStore &store,
                   const store::ClaimTable &table,
                   const std::string &cell_key,
                   const std::string &owner, long period_ms)
        : store_(store), table_(table), cellKey_(cell_key),
          owner_(owner)
    {
        if (period_ms > 0)
            thread_ = std::thread(
                [this, period_ms] { run(period_ms); });
    }

    ~LeaseRefresher() { stop(); }

    /** Join the refresher; returns how many refreshes landed. */
    std::uint64_t
    stop()
    {
        if (thread_.joinable()) {
            {
                std::lock_guard<std::mutex> lock(mu_);
                stop_ = true;
            }
            cv_.notify_one();
            thread_.join();
        }
        return refreshes_;
    }

  private:
    void
    run(long period_ms)
    {
        std::unique_lock<std::mutex> lock(mu_);
        while (!cv_.wait_for(lock,
                             std::chrono::milliseconds(period_ms),
                             [this] { return stop_; })) {
            lock.unlock();
            refreshOnce();
            lock.lock();
        }
    }

    void
    refreshOnce()
    {
        try {
            store::WriteTx tx = store_.beginWrite();
            auto rec = table_.get(tx, cellKey_);
            if (!rec ||
                rec->state != store::ClaimState::Claimed ||
                rec->owner != owner_)
                return;  // reclaimed under us; drop the tx
            std::uint64_t hb = table_.heartbeat(tx);
            if (rec->epoch == hb)
                return;  // already fresh; nothing to commit
            rec->epoch = hb;
            table_.put(tx, cellKey_, *rec);
            tx.commit();
            ++refreshes_;
        } catch (...) {
            // Skip this refresh; the next period tries again.
        }
    }

    store::PageStore &store_;
    const store::ClaimTable &table_;
    std::string cellKey_;
    std::string owner_;
    std::thread thread_;
    std::mutex mu_;
    std::condition_variable cv_;
    bool stop_ = false;
    std::uint64_t refreshes_ = 0;
};

} // namespace

WorkerStats
runSweepWorker(const SweepSpec &spec, CellCache &cache,
               const WorkerOptions &options)
{
    WorkerStats stats;
    store::ClaimTable table(cache.fingerprint());
    store::PageStore &store = cache.store();

    std::vector<SweepCell> cells = expandSweep(spec);
    std::vector<std::string> keys(cells.size());
    for (const SweepCell &cell : cells)
        keys[cell.index] =
            cache.cellKey(spec, cell, options.traceCapacity);

    // Warm-start profiles, as in runSweep.
    std::vector<const std::string *> warm(cells.size(), nullptr);
    if (options.warmProfiles) {
        for (const SweepCell &cell : cells) {
            if (cell.mode != RunMode::Accelerated)
                continue;
            auto it = options.warmProfiles->find(cell.workload);
            if (it != options.warmProfiles->end())
                warm[cell.index] = &it->second;
        }
    }

    // The fleet publisher rides the transactions this loop was
    // making anyway, so a snapshot becomes visible exactly when the
    // claim-table mutation it describes does — including the very
    // first claim, which is why a --kill-after-claim victim's
    // version-1 snapshot survives its SIGKILL.
    std::unique_ptr<FleetPublisher> fleet;
    if (options.publishFleet)
        fleet = std::make_unique<FleetPublisher>(
            cache.fingerprint(), options.owner,
            options.fleetEventCapacity);

    long poll_ms = options.pollMs;
    bool first_claim = true;
    for (;;) {
        // --- claim transaction --------------------------------
        ClaimOutcome outcome;
        bool exiting = false;
        {
            std::uint64_t tx_t0 = fleet ? fleet->nowUs() : 0;
            store::WriteTx tx = store.beginWrite();
            // Bump even when this pass claims nothing: once every
            // other cell is done, idle polls are the only thing
            // still advancing the clock, and without them a
            // crashed worker's last lease would never expire. Live
            // owners are immune to the resulting churn — their
            // refresher re-asserts the epoch while they execute,
            // and reclaiming never charges a retry.
            std::uint64_t hb = table.bumpHeartbeat(tx);
            ++stats.heartbeats;
            for (const SweepCell &cell : cells) {
                const std::string &key = keys[cell.index];
                if (tx.get(cache.storeKey(key)))
                    continue;  // result already committed
                auto rec = table.get(tx, key);
                if (rec && rec->state == store::ClaimState::Done)
                    continue;  // done claim, value raced in
                if (rec && rec->state == store::ClaimState::Failed)
                    continue;  // terminal
                if (outcome.cellIndex) {
                    ++outcome.outstanding;
                    continue;
                }
                store::ClaimRecord next;
                next.owner = options.owner;
                next.state = store::ClaimState::Claimed;
                next.epoch = hb;
                if (!rec) {
                    // Unclaimed: take it.
                } else if (rec->state == store::ClaimState::Retry) {
                    next.retries = rec->retries;
                } else if (rec->owner == options.owner) {
                    // Our own stale lease (a previous incarnation
                    // of this owner id): re-claim at full price.
                    next.retries = rec->retries;
                } else {
                    // hb is this transaction's bump, so any well-
                    // formed store has epoch <= hb (check_store
                    // asserts it). An epoch from the future means
                    // the heartbeat record was corrupted and the
                    // counter restarted near zero: treat the lease
                    // as infinitely old so the keyspace heals
                    // through reclaim.
                    std::uint64_t age =
                        hb >= rec->epoch
                            ? hb - rec->epoch
                            : std::numeric_limits<
                                  std::uint64_t>::max();
                    if (age <= options.leaseTicks) {
                        ++outcome.outstanding;  // live lease
                        continue;
                    }
                    // Expired lease: the owner stopped refreshing
                    // (crashed, killed, hung). Reclaiming is free
                    // — only execution failures charge retries —
                    // so a slow but live owner can never be driven
                    // to terminal failure by lease churn; the
                    // duplicate run it causes is benign because
                    // cells are deterministic.
                    next.retries = rec->retries;
                    outcome.reclaimedExpired = true;
                }
                table.put(tx, key, next);
                outcome.cellIndex = cell.index;
            }
            // Stats move *inside* the transaction so the snapshot
            // published with it already reflects this pass.
            exiting = !outcome.cellIndex && outcome.outstanding == 0;
            if (outcome.cellIndex) {
                ++stats.claimed;
                if (outcome.reclaimedExpired)
                    ++stats.reclaimed;
            } else if (!exiting) {
                ++stats.polls;
            }
            if (fleet) {
                if (outcome.cellIndex)
                    fleet->noteEvent(outcome.reclaimedExpired
                                         ? FleetEventKind::Reclaimed
                                         : FleetEventKind::Claimed,
                                     *outcome.cellIndex);
                else if (exiting)
                    fleet->noteEvent(FleetEventKind::Exited);
                else
                    fleet->noteEvent(FleetEventKind::Poll);
                fleet->publish(tx, store, stats, hb, exiting);
            }
            tx.commit();
            if (fleet)
                fleet->observeClaimTx(fleet->nowUs() - tx_t0);
        }

        if (outcome.cellIndex)
            poll_ms = options.pollMs;
        if (first_claim && outcome.cellIndex &&
            options.killAfterFirstClaim) {
            // Crash seam: die holding exactly one live lease.
            ::kill(::getpid(), SIGKILL);
        }
        first_claim = false;

        if (!outcome.cellIndex) {
            if (exiting)
                return stats;  // sweep complete (or terminal)
            // Everything left is leased by live workers: wait for
            // them to finish, fail, or expire (the poll was already
            // counted, and published, inside the transaction).
            std::this_thread::sleep_for(
                std::chrono::milliseconds(poll_ms));
            poll_ms = std::min<long>(poll_ms * 2, 1000);
            continue;
        }

        // --- execute (no transaction held) --------------------
        const SweepCell &cell = cells[*outcome.cellIndex];
        const std::string &key = keys[cell.index];
        CellResult result;
        bool failed = false;
        std::string error;
        std::uint64_t exec_t0 = fleet ? fleet->nowUs() : 0;
        {
            LeaseRefresher refresher(store, table, key,
                                     options.owner,
                                     options.refreshMs);
            try {
                result =
                    options.cellRunner
                        ? options.cellRunner(spec, cell,
                                             options.traceCapacity)
                        : runCell(spec, cell,
                                  options.traceCapacity,
                                  warm[cell.index]);
                ++stats.executed;
            } catch (const std::exception &e) {
                failed = true;
                error = e.what();
            } catch (...) {
                failed = true;
                error = "unknown exception";
            }
            stats.refreshes += refresher.stop();
        }
        if (fleet && !failed) {
            std::uint64_t wall = fleet->nowUs() - exec_t0;
            fleet->noteCellWall(cell.index, wall);
            fleet->noteTraceDrops(result.traceInfo.dropped);
            fleet->noteEvent(FleetEventKind::Executed, cell.index,
                             wall, exec_t0);
        }

        // --- commit transaction -------------------------------
        {
            std::uint64_t tx_t0 = fleet ? fleet->nowUs() : 0;
            store::WriteTx tx = store.beginWrite();
            std::uint64_t hb = table.bumpHeartbeat(tx);
            ++stats.heartbeats;
            auto rec = table.get(tx, key);
            if (!rec ||
                rec->state != store::ClaimState::Claimed ||
                rec->owner != options.owner) {
                // Someone reclaimed our expired lease while we ran;
                // their (identical, deterministic) result wins.
                ++stats.lostLeases;
                if (fleet) {
                    fleet->noteEvent(FleetEventKind::LostLease,
                                     cell.index);
                    fleet->publish(tx, store, stats, hb, false);
                }
                tx.commit();
                if (fleet)
                    fleet->observeCommitTx(fleet->nowUs() - tx_t0);
                continue;
            }
            store::ClaimRecord next = *rec;
            if (!failed) {
                tx.put(cache.storeKey(key),
                       encodeCellResult(result));
                next.state = store::ClaimState::Done;
                next.error.clear();
                ++stats.committed;
                if (fleet)
                    fleet->noteEvent(FleetEventKind::Committed,
                                     cell.index);
            } else {
                next.retries = rec->retries + 1;
                next.error = error;
                if (next.retries >= options.maxRetries) {
                    next.state = store::ClaimState::Failed;
                    ++stats.exhausted;
                    if (fleet)
                        fleet->noteEvent(FleetEventKind::Failed,
                                         cell.index);
                } else {
                    next.state = store::ClaimState::Retry;
                    ++stats.retriesRecorded;
                    if (fleet)
                        fleet->noteEvent(FleetEventKind::Retry,
                                         cell.index);
                }
            }
            table.put(tx, key, next);
            if (fleet)
                fleet->publish(tx, store, stats, hb, false);
            tx.commit();
            if (fleet)
                fleet->observeCommitTx(fleet->nowUs() - tx_t0);
        }
    }
}

JsonValue
workerStatsToJson(const WorkerStats &stats,
                  const std::string &owner)
{
    JsonValue doc = JsonValue::object();
    doc.add("owner", owner);
    doc.add("claimed", stats.claimed);
    doc.add("executed", stats.executed);
    doc.add("committed", stats.committed);
    doc.add("reclaimed", stats.reclaimed);
    doc.add("retries_recorded", stats.retriesRecorded);
    doc.add("exhausted", stats.exhausted);
    doc.add("lost_leases", stats.lostLeases);
    doc.add("polls", stats.polls);
    doc.add("heartbeats", stats.heartbeats);
    doc.add("refreshes", stats.refreshes);
    return doc;
}

} // namespace osp
