/**
 * @file
 * The parallel experiment-sweep harness.
 *
 * The paper's evaluation (and this repo's bench/ regenerations) is a
 * pile of cartesian sweeps: workload x run-mode x re-learning
 * strategy x pollution policy x L2 size x seed, each point an
 * independent Machine(+Accelerator) run. A SweepSpec names such a
 * product, expandSweep() flattens it into indexed cells, and
 * runSweep() executes the cells on a work-stealing pool, each cell
 * an isolated simulator instance with a deterministic seed derived
 * from (baseSeed, seed index).
 *
 * Determinism contract: the aggregated result — and its JSON form
 * with timing excluded — is byte-identical for any thread count at
 * the same spec. Cells write into preassigned slots, aggregation
 * runs after the join in cell-index order, and nothing reads clocks
 * except the (excludable) wall-time fields. This is what lets CI
 * diff result artifacts and makes the harness trustworthy for
 * accuracy claims.
 */

#ifndef OSP_DRIVER_SWEEP_HH
#define OSP_DRIVER_SWEEP_HH

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "core/report.hh"
#include "core/service_predictor.hh"
#include "obs/telemetry.hh"
#include "sim/machine.hh"
#include "stats/stratify.hh"
#include "util/json.hh"

namespace osp
{

/** How one cell executes its workload. */
enum class RunMode
{
    Full,         //!< fully detailed (reference/baseline)
    AppOnly,      //!< application-only (SimpleScalar-style)
    Accelerated,  //!< detailed + the paper's prediction engine
    /** Stratified interval sampling of user time, OS time fully
     *  simulated (sample-only ablation). */
    Sampled,
    /** Sampling composed with the prediction engine: user time
     *  sampled, kernel time predicted — the multiplicative shrink
     *  of detailed-simulation work (fig13). */
    SampledAccel,
};

/** Display name ("full", "app-only", "accelerated", "sampled",
 *  "sampled-accel"). */
const char *runModeName(RunMode mode);

/** True for the two stratified-sampling modes. */
bool isSampledMode(RunMode mode);

/** One predictor configuration under test, with a report label. */
struct PredictorVariant
{
    std::string label;
    PredictorParams params;
};

/**
 * Stratified interval-sampling knobs for the Sampled/SampledAccel
 * modes (the `--sample intervals=N,strata=K,rate=R` CLI surface).
 * Part of cell identity: every field is folded into the content
 * address of sampled cells.
 */
struct SampleParams
{
    bool enabled = false;
    /** Interval length in application instructions. */
    InstCount intervalLen = 20000;
    std::uint32_t strata = 4;
    /** Target fraction of full intervals simulated in detail. */
    double rate = 0.25;
    StratifyParams::Allocation allocation =
        StratifyParams::Allocation::Proportional;
};

/** A named cartesian product of experiment dimensions. */
struct SweepSpec
{
    std::string name;
    std::vector<std::string> workloads;
    std::vector<RunMode> modes = {RunMode::Full,
                                  RunMode::Accelerated};
    /** Applied to Accelerated cells only; baseline modes run once
     *  regardless of how many variants are listed. */
    std::vector<PredictorVariant> predictors;
    /** Cache-pollution policies (Accelerated cells only). */
    std::vector<PollutionPolicy> pollution = {
        PollutionPolicy::Footprint};
    std::vector<std::uint64_t> l2Sizes = {1024 * 1024};
    /** Seed replications: seed index i runs every other dimension
     *  at cellSeed(baseSeed, i). */
    std::uint64_t numSeeds = 1;
    std::uint64_t baseSeed = 42;
    /** Work-volume scale handed to makeMachine(). */
    double scale = 1.0;
    /** Label only: set when the scale was reduced for smoke runs. */
    bool smoke = false;
    /** Stratified-sampling knobs; consulted by Sampled and
     *  SampledAccel cells only. */
    SampleParams sample;
    /** Template for every cell's MachineConfig; seed, L2 size,
     *  appOnly and pollution policy are overridden per cell. */
    MachineConfig baseConfig;
};

/**
 * Turn sampling on for @p spec: records @p params and appends a
 * Sampled mode (when the spec has a Full baseline to compare
 * against) and a SampledAccel mode (when the spec has predictors to
 * compose with), skipping modes already present. This is the
 * `--sample` CLI transform, exposed so tests and CI drive the exact
 * same spec mutation.
 */
void applySweepSampling(SweepSpec &spec, const SampleParams &params);

/**
 * Per-cell machine seed. Seed index 0 maps to the base seed itself,
 * so single-seed sweeps replay the documented bench results
 * (EXPERIMENTS.md, seed 42) exactly; further indices are splitmix64
 * mixes, giving independent streams per replication.
 *
 * Cells that must be *comparable* — the same (workload, L2, seed
 * index) under different modes or predictors, e.g. an accelerated
 * run and the full-detail baseline its error is measured against —
 * deliberately share a seed: deriving from the flat cell index
 * instead would make every error metric measure seed variance, not
 * prediction quality.
 */
std::uint64_t cellSeed(std::uint64_t base_seed,
                       std::uint64_t seed_index);

/** One point of the flattened product. */
struct SweepCell
{
    std::size_t index = 0;      //!< position in expansion order
    std::string workload;
    RunMode mode = RunMode::Full;
    std::size_t predictorIndex = 0;  //!< into spec.predictors
    std::size_t pollutionIndex = 0;  //!< into spec.pollution
    std::uint64_t l2Bytes = 1024 * 1024;
    std::uint64_t seedIndex = 0;
    std::uint64_t seed = 0;     //!< cellSeed(base, seedIndex)
};

/**
 * Select the prediction backend for every predictor variant of a
 * sweep (the `sweep --backend` CLI flag). Uniform per sweep: each
 * variant keeps its label and re-learning parameters, only the
 * strategy behind the common PredictorBackend interface changes, so
 * per-backend accuracy documents stay comparable column-for-column.
 */
void setSweepBackend(SweepSpec &spec, PredictorBackendKind kind);

/**
 * Flatten a spec into cells, in deterministic order: workload
 * (outer), L2 size, seed index, mode, then predictor x pollution
 * for Accelerated cells. Baseline (Full/AppOnly) cells are emitted
 * once per (workload, L2, seed) — the predictor and pollution axes
 * do not affect them, so duplicating them would only burn cycles.
 */
std::vector<SweepCell> expandSweep(const SweepSpec &spec);

/**
 * What a sampled cell's two-phase run measured and estimated (the
 * per-cell payload of the "ospredict-sample-v1" results section).
 * Cycles are carried as doubles: the estimate is a weighted mean
 * expansion, not a count.
 */
struct CellSampleSection
{
    bool present = false;
    InstCount intervalLen = 0;
    std::uint64_t numIntervals = 0;      //!< full intervals
    std::uint64_t numStrata = 0;
    std::uint64_t sampledIntervals = 0;  //!< full intervals sampled
    InstCount tailInsts = 0;             //!< always-detailed tail
    Cycles tailCycles = 0;
    /** App instructions simulated on the timing engine (sampled
     *  intervals + tail) vs fast-forwarded with warming. */
    InstCount detailedAppInsts = 0;
    InstCount ffAppInsts = 0;
    double estAppCycles = 0.0;   //!< stratified total + tail
    double estTotalCycles = 0.0; //!< + measured/predicted OS cycles
    double ciHalfWidth = 0.0;    //!< 95% half-width on estTotal
    std::uint64_t df = 0;
    bool hasCi = false;
    /** Detailed-simulated fraction of all retired instructions
     *  (app sampled + tail + detailed OS) — the work that remains. */
    double detailedFraction = 0.0;
    /** Per-stratum [N_h, n_h, mean, sample variance]. */
    std::vector<StratumEstimate> strata;

    // Filled by the aggregator when a Full baseline exists:
    /** |estTotalCycles - oracle| / oracle. */
    double oracleError = 0.0;
    bool hasOracle = false;
    bool withinCi = false;  //!< oracle inside [est +- ciHalfWidth]
};

/** Everything one cell produced. */
struct CellResult
{
    SweepCell cell;
    RunTotals totals;
    /** Aggregate predictor statistics (Accelerated cells). */
    ServicePredictor::Stats stats{};
    bool hasStats = false;
    /**
     * The cell's metrics registry at end of run (sorted instrument
     * order; see obs/metrics.hh). Always populated by the runner.
     */
    obs::MetricsSnapshot telemetry;
    /** Ring occupancy/overflow of the cell's tracer. */
    obs::TraceSummary traceInfo;
    /**
     * The cell's accuracy-ledger snapshot: per-(service, cluster)
     * audit-error distributions, drift flags and predicted-cycle
     * mass (see obs/accuracy.hh). Empty for baseline cells — only
     * Accelerated cells predict. Always taken by the runner.
     */
    obs::AccuracySnapshot accuracy;
    /** Retained trace events, oldest first (empty unless the runner
     *  was given a trace capacity). */
    std::vector<obs::TraceEvent> trace;
    /**
     * The learned PLT profile at end of run (Accelerator::saveState
     * text; empty for baseline cells). Captured so the persistent
     * store can archive it for cross-run warm starts.
     */
    std::string pltProfile;
    /** Two-phase sampling measurements (Sampled/SampledAccel cells
     *  only; present is false otherwise). */
    CellSampleSection sample;
    /**
     * Worker-thread failure capture: a cell whose run threw keeps
     * its slot with failed set and the exception text in error, so
     * one bad cell no longer takes down the whole sweep (and CI can
     * see *which* point failed). Failed cells are excluded from
     * baselines and summaries.
     */
    bool failed = false;
    std::string error;
    /** Wall-clock seconds for this cell's run() (volatile: excluded
     *  from canonical JSON). */
    double wallSeconds = 0.0;

    // Filled by the aggregator:
    /** |cycles - baseline| / baseline vs the Full cell at the same
     *  (workload, L2, seed index); valid when hasBaseline. */
    double cycleError = 0.0;
    /** Signed form of the same oracle error, (cycles - baseline) /
     *  baseline: comparable to the accuracy ledger's signed
     *  audit-estimated error. Valid when hasBaseline. */
    double signedCycleError = 0.0;
    bool hasBaseline = false;
    /** Eq. 10 estimate at the paper's R = 133 (Accelerated). */
    double estSpeedupR133 = 1.0;
};

/** Per-predictor-variant rollup over accelerated cells. */
struct VariantSummary
{
    std::string label;
    std::uint64_t cells = 0;
    double meanCycleError = 0.0;
    double worstCycleError = 0.0;
    double meanCoverage = 0.0;
    double meanEstSpeedupR133 = 0.0;
};

/**
 * The canonical store section of a cached sweep ("ospredict-
 * store-v1" in the results document). Deliberately contains only
 * data invariant across thread counts AND across warm/cold runs —
 * the code fingerprint and the per-cell content-addressed keys —
 * so the determinism contract extends to cached sweeps. Volatile
 * cache statistics (hits/misses/bytes) live in the separate
 * --store-stats document instead.
 */
struct StoreSection
{
    bool present = false;
    std::string fingerprint;         //!< code fingerprint in keys
    std::vector<std::string> cellKeys;  //!< hex, cell-index order
};

/** The aggregated result set of one sweep. */
struct SweepResult
{
    SweepSpec spec;
    std::vector<CellResult> cells;   //!< in cell-index order
    std::vector<VariantSummary> summary;
    StoreSection store;              //!< set when a cache was used
    unsigned threads = 1;            //!< volatile (timing section)
    double wallSeconds = 0.0;        //!< volatile (timing section)
    /** Worker processes that executed cells before this (assembly)
     *  pass; 0 = single-process run. Volatile (timing section). */
    unsigned workerProcesses = 0;

    /**
     * Cell lookup by coordinates; nullptr when the spec did not
     * generate such a cell. Baseline modes ignore the predictor and
     * pollution indices (they are pinned to 0 in expansion).
     */
    const CellResult *find(const std::string &workload, RunMode mode,
                           std::size_t predictor_index = 0,
                           std::uint64_t l2_bytes = 0,
                           std::uint64_t seed_index = 0,
                           std::size_t pollution_index = 0) const;
};

class CellCache;

/** Runner knobs. */
struct RunnerOptions
{
    /** Worker threads; 0 picks hardware_concurrency(). */
    unsigned threads = 1;
    /** Per-cell event-ring size; 0 = metrics only, no tracing. */
    std::size_t traceCapacity = 0;
    /**
     * Persistent sweep-cell cache. When set, every executed cell is
     * recorded (one transaction after the join) and the results
     * document gains the canonical store section. Lookups and
     * inserts run on the driving thread in cell-index order, so
     * caching never perturbs the determinism contract.
     */
    CellCache *cache = nullptr;
    /**
     * Reuse cached cells instead of re-simulating them (requires
     * cache). Off, the cache only records — a cold run counts every
     * cell as a miss, which is what CI's zero-miss warm assertion
     * is measured against.
     */
    bool incremental = false;
    /**
     * Assembly after a distributed run (requires incremental):
     * cells with no cached value but an exhausted claim record are
     * marked failed from the claim table instead of re-executed, so
     * the assembled document equals the single-process one even for
     * cells that failed in a worker. See CellCache::fetch.
     */
    bool claimAware = false;
    /**
     * Archived PLT profiles by workload: accelerated cells of a
     * listed workload warm-start their predictors from the profile
     * (and the profile's hash becomes part of those cells' cache
     * identity — see CellCache). Null = no warm starts.
     */
    const std::map<std::string, std::string> *warmProfiles = nullptr;
    /**
     * Test seam: replaces the per-cell body (runCell) when set.
     * Exceptions it throws are captured into the cell's slot like
     * any worker failure.
     */
    std::function<CellResult(const SweepSpec &, const SweepCell &,
                             std::size_t trace_capacity)>
        cellRunner;
};

/**
 * Execute every cell of the sweep on a work-stealing pool and
 * aggregate (error vs baselines, Eq. 10 estimates, per-variant
 * summaries). See the file comment for the determinism contract.
 */
SweepResult runSweep(const SweepSpec &spec,
                     const RunnerOptions &options = {});

/**
 * Run a single cell in isolation: the exact Machine(+Accelerator)
 * construction the pool workers perform. Exposed so tests can
 * assert that sweep cells match standalone runs, and so tools can
 * re-run one point of a sweep.
 *
 * @param trace_capacity the cell's event-ring size (0 = no tracing)
 * @param warm_profile   archived PLT profile text to warm-start an
 *                       Accelerated cell's predictors from
 *                       (nullptr = learn online as usual)
 */
CellResult runCell(const SweepSpec &spec, const SweepCell &cell,
                   std::size_t trace_capacity = 0,
                   const std::string *warm_profile = nullptr);

/** JSON emission knobs. */
struct JsonOptions
{
    /**
     * Include wall-clock fields (per-cell "wall_s" and the
     * top-level "timing" object). These are the only
     * non-deterministic bytes in the document; exclude them to get
     * the canonical form CI diffs across thread counts.
     */
    bool includeTiming = true;
};

/** Build the "ospredict-sweep-v1" results document. */
JsonValue sweepToJson(const SweepResult &result,
                      const JsonOptions &options = {});

/** sweepToJson() pretty-printed to a stream, trailing newline. */
void writeResultsJson(std::ostream &os, const SweepResult &result,
                      const JsonOptions &options = {});

/**
 * Human-readable accuracy report (util/table): one per-cell rollup
 * table — audits, pooled audit error with its 95% CI, the
 * extrapolated end-to-end estimate, the oracle error where a Full
 * baseline exists and whether the oracle fell inside the ledger's
 * CI — followed by the error-budget table ranking (workload,
 * service, cluster) rows by their absolute contribution to
 * end-to-end error. Deterministic: derived from the same per-cell
 * snapshots as the JSON section, ordered by (|contribution|, cell
 * index, service, cluster).
 */
void writeAccuracyReport(std::ostream &os,
                         const SweepResult &result);

/**
 * Emit every cell's retained trace events as a chrome://tracing
 * JSON document (load via chrome://tracing or https://ui.perfetto.dev).
 * pid = cell index, tid = service index, ts/dur = simulated
 * instruction count / cycles — so the document is as deterministic
 * as the sweep itself. Cells are emitted in index order.
 */
void writeChromeTrace(std::ostream &os, const SweepResult &result);

/** writeChromeTrace's event list without the document wrapper:
 *  append every cell's lanes to @p events. Shared with the
 *  fleet-merged trace (driver/fleet.hh), whose cell lanes must stay
 *  byte-identical to the single-process ones. */
void appendCellTraceEvents(JsonValue &events,
                           const SweepResult &result);

} // namespace osp

#endif // OSP_DRIVER_SWEEP_HH
