#include "spec_like.hh"

#include "util/logging.hh"

namespace osp
{

const char *
specVariantName(SpecVariant variant)
{
    switch (variant) {
      case SpecVariant::Gzip: return "gzip";
      case SpecVariant::Vpr: return "vpr";
      case SpecVariant::Art: return "art";
      case SpecVariant::Swim: return "swim";
    }
    return "?";
}

SpecWorkload::SpecWorkload(SyntheticKernel &kern,
                           const SpecParams &p, std::uint64_t seed)
    : BaseWorkload(specVariantName(p.variant), kern, seed,
                   0x57EC0ULL + static_cast<int>(p.variant)),
      params(p)
{
    prof.code = Region{user.code.base, 24 * 1024};
    switch (params.variant) {
      case SpecVariant::Gzip:
        prof.loadFrac = 0.22;
        prof.storeFrac = 0.08;
        prof.branchFrac = 0.18;
        prof.fpFrac = 0.0;
        prof.depChance = 0.45;
        prof.depDistMean = 5.0;
        prof.branchRandomFrac = 0.06;
        prof.blockRunBytes = 384;
        data = Region{user.heap.base, 384 * 1024};
        pattern = PatternKind::Hot;
        break;
      case SpecVariant::Vpr:
        prof.loadFrac = 0.30;
        prof.storeFrac = 0.06;
        prof.branchFrac = 0.16;
        prof.fpFrac = 0.0;
        prof.depChance = 0.50;
        prof.depDistMean = 3.0;
        prof.branchRandomFrac = 0.10;
        prof.code = Region{user.code.base, 32 * 1024};
        prof.blockRunBytes = 224;
        data = Region{user.heap.base, 2560 * 1024};
        pattern = PatternKind::PointerChase;
        break;
      case SpecVariant::Art:
        prof.loadFrac = 0.32;
        prof.storeFrac = 0.10;
        prof.branchFrac = 0.10;
        prof.fpFrac = 0.25;
        prof.depChance = 0.40;
        prof.depDistMean = 6.0;
        prof.branchRandomFrac = 0.03;
        prof.code = Region{user.code.base, 16 * 1024};
        prof.blockRunBytes = 512;
        data = Region{user.heap.base, 3 * 1024 * 1024};
        pattern = PatternKind::Sequential;
        break;
      case SpecVariant::Swim:
        prof.loadFrac = 0.30;
        prof.storeFrac = 0.14;
        prof.branchFrac = 0.06;
        prof.fpFrac = 0.30;
        prof.depChance = 0.35;
        prof.depDistMean = 8.0;
        prof.branchRandomFrac = 0.02;
        prof.code = Region{user.code.base, 12 * 1024};
        prof.blockRunBytes = 768;
        data = Region{user.heap.base, 8 * 1024 * 1024};
        pattern = PatternKind::Sequential;
        break;
    }
}

bool
SpecWorkload::inWarmup() const
{
    return opsQueued < params.warmupOps;
}

BaseWorkload::Advance
SpecWorkload::advance(ServiceRequest &req)
{
    if (opsQueued >= params.warmupOps + params.measureOps)
        return Advance::Done;

    if (params.syscallEvery &&
        sinceSyscall >= params.syscallEvery) {
        sinceSyscall = 0;
        // Alternate a heap grow (gzip window slide / vpr realloc)
        // with a timing check.
        if (brkNext) {
            brkNext = false;
            req = request(ServiceType::SysBrk, 64 * 1024);
        } else {
            brkNext = true;
            req = request(ServiceType::SysGettimeofday);
        }
        return Advance::Syscall;
    }

    constexpr InstCount block = 20000;
    compute(prof, block, data, pattern);
    opsQueued += block;
    sinceSyscall += block;
    return Advance::Continue;
}

} // namespace osp
