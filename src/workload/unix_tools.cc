#include "unix_tools.hh"

#include "util/logging.hh"

namespace osp
{

namespace
{
constexpr std::uint64_t dirIdFlag = 0x40000000ULL;

CodeProfile
toolProfile(const Region &code)
{
    CodeProfile p;
    p.loadFrac = 0.25;
    p.storeFrac = 0.10;
    p.branchFrac = 0.18;
    p.depChance = 0.45;
    p.depDistMean = 3.5;
    p.branchRandomFrac = 0.08;
    p.code = Region{code.base, 24 * 1024};
    p.blockRunBytes = 288;
    return p;
}

/** od's formatting loop: tight, predictable, store-heavy. */
CodeProfile
odProfile(const Region &code)
{
    CodeProfile p;
    p.loadFrac = 0.20;
    p.storeFrac = 0.22;
    p.branchFrac = 0.12;
    p.depChance = 0.40;
    p.depDistMean = 5.0;
    p.branchRandomFrac = 0.02;
    p.code = Region{code.base + 24 * 1024, 8 * 1024};
    p.blockRunBytes = 640;
    return p;
}

} // namespace

DuWorkload::DuWorkload(SyntheticKernel &kern,
                       const UnixToolParams &p, std::uint64_t seed)
    : BaseWorkload("du", kern, seed, 0xD0ULL), params(p)
{
    appProf = toolProfile(user.code);
    dirLimit = params.maxDirs ? params.maxDirs
                              : kernel.vfs().numDirs();
    if (dirLimit > kernel.vfs().numDirs())
        dirLimit = kernel.vfs().numDirs();
}

bool
DuWorkload::inWarmup() const
{
    return dirsDone < params.warmupDirs && dirsDone < dirLimit;
}

BaseWorkload::Advance
DuWorkload::advance(ServiceRequest &req)
{
    switch (phase) {
      case Phase::OpenDir:
        if (curDir >= dirLimit)
            return Advance::Done;
        compute(appProf, 400, user.heap, PatternKind::Hot);
        req = request(ServiceType::SysOpen, dirIdFlag | curDir);
        phase = Phase::Getdents;
        return Advance::Syscall;

      case Phase::Getdents:
        dirFd = lastResult.value;
        req = request(ServiceType::SysRead, dirFd, 16 * 1024,
                      user.ioBuffer.base);
        phase = Phase::CloseDir;
        return Advance::Syscall;

      case Phase::CloseDir:
        req = request(ServiceType::SysClose, dirFd);
        curFile = 0;
        phase = Phase::StatFile;
        return Advance::Syscall;

      case Phase::StatFile:
        {
            const auto &files = kernel.vfs().dirFiles(curDir);
            if (curFile >= files.size()) {
                phase = Phase::NextDir;
                return Advance::Continue;
            }
            // Accumulate the size in du's hash table.
            compute(appProf, 150, user.heap, PatternKind::Hot);
            req = request(ServiceType::SysStat64,
                          files[curFile], user.stack.base);
            ++curFile;
            return Advance::Syscall;
        }

      case Phase::NextDir:
        compute(appProf, 250, user.heap);
        ++curDir;
        ++dirsDone;
        if (dirsDone % 32 == 0) {
            // du grows its directory hash periodically.
            req = request(ServiceType::SysBrk, 16 * 1024);
            phase = Phase::OpenDir;
            return Advance::Syscall;
        }
        phase = Phase::OpenDir;
        return Advance::Continue;
    }
    osp_panic("DuWorkload: bad phase");
}

FindOdWorkload::FindOdWorkload(SyntheticKernel &kern,
                               const UnixToolParams &p,
                               std::uint64_t seed)
    : BaseWorkload("find-od", kern, seed, 0xF1ULL), params(p)
{
    appProf = toolProfile(user.code);
    odProf = odProfile(user.code);
    dirLimit = params.maxDirs ? params.maxDirs
                              : kernel.vfs().numDirs();
    if (dirLimit > kernel.vfs().numDirs())
        dirLimit = kernel.vfs().numDirs();
    outFileId = kernel.vfs().addFile(4096, 3);
}

bool
FindOdWorkload::inWarmup() const
{
    return dirsDone < params.warmupDirs && dirsDone < dirLimit;
}

BaseWorkload::Advance
FindOdWorkload::advance(ServiceRequest &req)
{
    switch (phase) {
      case Phase::OpenOut:
        compute(appProf, 500, user.heap);
        req = request(ServiceType::SysOpen, outFileId);
        phase = Phase::OpenDir;
        outFd = ~0ULL;
        return Advance::Syscall;

      case Phase::OpenDir:
        if (outFd == ~0ULL)
            outFd = lastResult.value;
        if (curDir >= dirLimit)
            return Advance::Done;
        compute(appProf, 350, user.heap, PatternKind::Hot);
        req = request(ServiceType::SysOpen, dirIdFlag | curDir);
        phase = Phase::Getdents;
        return Advance::Syscall;

      case Phase::Getdents:
        dirFd = lastResult.value;
        req = request(ServiceType::SysRead, dirFd, 16 * 1024,
                      user.ioBuffer.base);
        phase = Phase::CloseDir;
        return Advance::Syscall;

      case Phase::CloseDir:
        req = request(ServiceType::SysClose, dirFd);
        curFile = 0;
        phase = Phase::StatFile;
        return Advance::Syscall;

      case Phase::StatFile:
        {
            const auto &files = kernel.vfs().dirFiles(curDir);
            if (curFile >= files.size()) {
                phase = Phase::NextDir;
                return Advance::Continue;
            }
            compute(appProf, 200, user.heap);
            req = request(ServiceType::SysStat64,
                          files[curFile], user.stack.base);
            phase = Phase::OpenFile;
            return Advance::Syscall;
        }

      case Phase::OpenFile:
        {
            const auto &files = kernel.vfs().dirFiles(curDir);
            // fork+exec of od is folded into user compute.
            compute(appProf, 900, user.heap, PatternKind::Hot);
            req = request(ServiceType::SysOpen, files[curFile]);
            phase = Phase::ReadChunk;
            return Advance::Syscall;
        }

      case Phase::ReadChunk:
        if (lastResultType == ServiceType::SysOpen)
            fileFd = lastResult.value;
        req = request(ServiceType::SysRead, fileFd, 4096,
                      user.ioBuffer.base);
        phase = Phase::FormatAndWrite;
        return Advance::Syscall;

      case Phase::FormatAndWrite:
        lastReadBytes = lastResult.value;
        if (lastReadBytes == 0) {
            phase = Phase::CloseFile;
            return Advance::Continue;
        }
        // od formats ~3.2 output bytes per input byte; the
        // formatting loop costs ~1.2 ops per input byte and walks
        // only the 4KB chunk just read.
        compute(odProf, (lastReadBytes * 12) / 10,
                Region{user.ioBuffer.base, 4096},
                PatternKind::Sequential);
        req = request(ServiceType::SysWrite, outFd,
                      (lastReadBytes * 32) / 10,
                      user.ioBuffer.base);
        phase = Phase::ReadChunk;
        return Advance::Syscall;

      case Phase::CloseFile:
        req = request(ServiceType::SysClose, fileFd);
        ++curFile;
        phase = Phase::StatFile;
        return Advance::Syscall;

      case Phase::NextDir:
        compute(appProf, 300, user.heap);
        ++curDir;
        ++dirsDone;
        phase = Phase::OpenDir;
        return Advance::Continue;
    }
    osp_panic("FindOdWorkload: bad phase");
}

} // namespace osp
