/**
 * @file
 * The iperf network-benchmarking workload of Sec. 5.2.
 *
 * The client side of an iperf TCP bandwidth test: a single socket,
 * back-to-back sys_write calls of a fixed block size, periodic
 * gettimeofday for bandwidth reporting. Nearly every instruction
 * retires in kernel mode (the paper reports up to 99% OS
 * instructions), and the transmit path's working set — sk_buff
 * pool, socket buffers, NIC driver state, kernel code — is what
 * makes iperf the most L2-size-sensitive workload (2.03x speedup
 * from 512KB to 1MB in paper Fig. 2).
 */

#ifndef OSP_WORKLOAD_NETBENCH_HH
#define OSP_WORKLOAD_NETBENCH_HH

#include <cstdint>

#include "base_workload.hh"

namespace osp
{

/** iperf parameters. */
struct IperfParams
{
    /** Socket writes skipped before measurement (paper: 4096). */
    std::uint32_t warmupWrites = 200;
    /** Socket writes measured (paper: 4096). */
    std::uint32_t measureWrites = 1200;
    /** Bytes per write. */
    std::uint64_t writeBytes = 16 * 1024;
    /** Writes between gettimeofday timestamps. */
    std::uint32_t reportEvery = 128;
};

/** See file comment. */
class IperfWorkload : public BaseWorkload
{
  public:
    IperfWorkload(SyntheticKernel &kernel, const IperfParams &params,
                  std::uint64_t seed);

    bool inWarmup() const override;

    std::uint32_t writesDone() const { return writesDone_; }

  protected:
    Advance advance(ServiceRequest &req) override;

  private:
    enum class Phase
    {
        Connect,
        Write,
        Timestamp,
    };

    IperfParams params;
    CodeProfile appProf;
    Phase phase = Phase::Connect;
    std::uint64_t sockFd = 0;
    std::uint32_t writesDone_ = 0;
};

} // namespace osp

#endif // OSP_WORKLOAD_NETBENCH_HH
