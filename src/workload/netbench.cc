#include "netbench.hh"

#include "util/logging.hh"

namespace osp
{

namespace
{

CodeProfile
iperfProfile(const Region &code)
{
    CodeProfile p;
    p.loadFrac = 0.20;
    p.storeFrac = 0.08;
    p.branchFrac = 0.14;
    p.depChance = 0.35;
    p.depDistMean = 5.0;
    p.branchRandomFrac = 0.03;
    p.code = Region{code.base, 12 * 1024};
    p.blockRunBytes = 512;
    return p;
}

} // namespace

IperfWorkload::IperfWorkload(SyntheticKernel &kern,
                             const IperfParams &p, std::uint64_t seed)
    : BaseWorkload("iperf", kern, seed, 0x1BE4ULL), params(p)
{
    appProf = iperfProfile(user.code);
}

bool
IperfWorkload::inWarmup() const
{
    return writesDone_ < params.warmupWrites;
}

BaseWorkload::Advance
IperfWorkload::advance(ServiceRequest &req)
{
    switch (phase) {
      case Phase::Connect:
        compute(appProf, 900, user.heap);
        req = request(ServiceType::SysSocketcall, 0);
        phase = Phase::Write;
        sockFd = ~0ULL;
        return Advance::Syscall;

      case Phase::Write:
        if (sockFd == ~0ULL)
            sockFd = lastResult.value;
        if (writesDone_ >=
            params.warmupWrites + params.measureWrites) {
            return Advance::Done;
        }
        // Refill the send block and loop bookkeeping (touches only
        // the write block itself, like iperf's tight client loop).
        compute(appProf, 80,
                Region{user.ioBuffer.base, params.writeBytes});
        ++writesDone_;
        if (params.reportEvery &&
            writesDone_ % params.reportEvery == 0) {
            phase = Phase::Timestamp;
        }
        req = request(ServiceType::SysWrite, sockFd,
                      params.writeBytes, user.ioBuffer.base);
        return Advance::Syscall;

      case Phase::Timestamp:
        compute(appProf, 200, user.heap);
        req = request(ServiceType::SysGettimeofday);
        phase = Phase::Write;
        return Advance::Syscall;
    }
    osp_panic("IperfWorkload: bad phase");
}

} // namespace osp
