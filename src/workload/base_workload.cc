#include "base_workload.hh"

#include "util/logging.hh"

namespace osp
{

BaseWorkload::BaseWorkload(std::string name, SyntheticKernel &kern,
                           std::uint64_t seed, std::uint64_t stream)
    : kernel(kern), gen(seed, stream), rng(seed, stream ^ 0xAAAAULL),
      name_(std::move(name))
{
}

UserProgram::Step
BaseWorkload::step(MicroOp &op, ServiceRequest &req)
{
    // A phase transition may legitimately return Continue without
    // queueing instructions; the bound catches state machines that
    // livelock.
    for (int spins = 0; spins < 10000; ++spins) {
        if (!gen.done()) {
            op = gen.next();
            return Step::Op;
        }
        switch (advance(req)) {
          case Advance::Syscall:
            return Step::Syscall;
          case Advance::Done:
            return Step::Done;
          case Advance::Continue:
            break;
        }
    }
    osp_panic(name_, ": advance() looped without making progress");
}

} // namespace osp
