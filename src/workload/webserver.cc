#include "webserver.hh"

#include "util/logging.hh"

namespace osp
{

namespace
{

/** The paper's eight documents: 104KB to 1.4MB. */
const std::uint64_t baseSizesKb[8] = {104, 200, 300, 420,
                                      600, 800, 1000, 1400};

CodeProfile
apacheProfile(const Region &code)
{
    CodeProfile p;
    p.loadFrac = 0.24;
    p.storeFrac = 0.09;
    p.branchFrac = 0.17;
    p.depChance = 0.42;
    p.depDistMean = 4.0;
    p.branchRandomFrac = 0.07;
    p.code = code;
    p.blockRunBytes = 320;
    return p;
}

} // namespace

AbWorkload::AbWorkload(SyntheticKernel &kern, const AbParams &p,
                       std::uint64_t seed)
    : BaseWorkload(p.sequential ? "ab-seq" : "ab-rand", kern, seed,
                   0xAB00ULL + (p.sequential ? 1 : 0)),
      params(p),
      totalRequests(p.warmupRequests + p.measureRequests)
{
    appProf = apacheProfile(user.code);
    for (std::uint64_t kb : baseSizesKb) {
        auto bytes = static_cast<std::uint64_t>(
            static_cast<double>(kb * 1024) * params.fileScale);
        if (bytes < 4096)
            bytes = 4096;
        fileSizes.push_back(bytes);
        fileIds.push_back(kernel.vfs().addFile(bytes, 4));
    }
    logFileId = kernel.vfs().addFile(4096, 4);
}

bool
AbWorkload::inWarmup() const
{
    return requestsDone_ < params.warmupRequests;
}

std::uint32_t
AbWorkload::fileFor(std::uint32_t r)
{
    if (!params.sequential)
        return rng.range(static_cast<std::uint32_t>(fileIds.size()));
    // Equal runs per document, ascending size (sizes are sorted).
    std::uint64_t idx =
        (static_cast<std::uint64_t>(r) * fileIds.size()) /
        totalRequests;
    if (idx >= fileIds.size())
        idx = fileIds.size() - 1;
    return static_cast<std::uint32_t>(idx);
}

BaseWorkload::Advance
AbWorkload::advance(ServiceRequest &req)
{
    switch (phase) {
      case Phase::OpenLog:
        // One-time server start-up: open the access log.
        compute(appProf, 600, user.heap);
        req = request(ServiceType::SysOpen, logFileId);
        phase = Phase::Accept;
        logFd = ~0ULL;
        return Advance::Syscall;

      case Phase::Accept:
        if (logFd == ~0ULL)
            logFd = lastResult.value;
        if (requestsDone_ >= totalRequests)
            return Advance::Done;
        compute(appProf, 250, user.stack);
        req = request(ServiceType::SysSocketcall, 0);
        phase = Phase::AcceptMutex;
        return Advance::Syscall;

      case Phase::AcceptMutex:
        connFd = lastResult.value;
        req = request(ServiceType::SysIpc, 1);
        phase = Phase::Poll;
        return Advance::Syscall;

      case Phase::Poll:
        compute(appProf, 120, user.stack);
        req = request(ServiceType::SysPoll, connFd, 2);
        phase = Phase::Recv;
        return Advance::Syscall;

      case Phase::Recv:
        req = request(ServiceType::SysSocketcall, 2, connFd, 600);
        phase = Phase::ParseRequest;
        return Advance::Syscall;

      case Phase::ParseRequest:
        // HTTP parsing and vhost/URI mapping.
        compute(appProf, 1500, user.heap, PatternKind::Hot);
        curFile = fileFor(requestsDone_);
        phase = Phase::Stat;
        return Advance::Continue;

      case Phase::Stat:
        req = request(ServiceType::SysStat64, fileIds[curFile],
                      user.stack.base);
        phase = Phase::Open;
        return Advance::Syscall;

      case Phase::Open:
        compute(appProf, 300, user.heap);
        req = request(ServiceType::SysOpen, fileIds[curFile]);
        phase = Phase::Fcntl;
        return Advance::Syscall;

      case Phase::Fcntl:
        fileFd = lastResult.value;
        req = request(ServiceType::SysFcntl64, connFd, 1);
        phase = Phase::TimestampStart;
        return Advance::Syscall;

      case Phase::TimestampStart:
        req = request(ServiceType::SysGettimeofday);
        phase = Phase::Read;
        bytesLeft = fileSizes[curFile];
        firstChunk = true;
        return Advance::Syscall;

      case Phase::Read:
        if (bytesLeft == 0) {
            phase = Phase::LogWrite;
            return Advance::Continue;
        }
        {
            std::uint64_t chunk = bytesLeft < params.chunkBytes
                                      ? bytesLeft
                                      : params.chunkBytes;
            req = request(ServiceType::SysRead, fileFd, chunk,
                          user.ioBuffer.base);
            phase = Phase::Writev;
            return Advance::Syscall;
        }

      case Phase::Writev:
        lastReadBytes = lastResult.value;
        if (lastReadBytes == 0) {
            phase = Phase::LogWrite;
            return Advance::Continue;
        }
        bytesLeft -= lastReadBytes;
        // Chunk bookkeeping in user space.
        compute(appProf, 250, user.heap);
        {
            std::uint64_t hdr = firstChunk ? 300 : 0;
            firstChunk = false;
            req = request(ServiceType::SysWritev, connFd,
                          lastReadBytes + hdr, hdr ? 3 : 2);
        }
        phase = Phase::Read;
        return Advance::Syscall;

      case Phase::LogWrite:
        // Format the access-log line.
        compute(appProf, 700, user.heap, PatternKind::Hot);
        req = request(ServiceType::SysWrite, logFd, 90,
                      user.heap.base);
        phase = Phase::TimestampEnd;
        return Advance::Syscall;

      case Phase::TimestampEnd:
        req = request(ServiceType::SysGettimeofday);
        phase = Phase::CloseFile;
        return Advance::Syscall;

      case Phase::CloseFile:
        req = request(ServiceType::SysClose, fileFd);
        phase = Phase::CloseConn;
        return Advance::Syscall;

      case Phase::CloseConn:
        req = request(ServiceType::SysClose, connFd);
        ++requestsDone_;
        phase = Phase::Accept;
        return Advance::Syscall;
    }
    osp_panic("AbWorkload: bad phase");
}

} // namespace osp
