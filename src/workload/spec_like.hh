/**
 * @file
 * SPEC CPU2000-like compute workloads (gzip, vpr, art, swim).
 *
 * These are the right-hand bars of the paper's Figs. 1-2: programs
 * that practically never enter the kernel (a rare brk or
 * gettimeofday, timer ticks aside), for which application-only and
 * full-system simulation agree. Each variant reproduces the
 * qualitative micro-architectural character of its namesake:
 *
 *  - gzip: integer, moderately branchy, ~384KB hot window buffer;
 *  - vpr:  pointer-chasing over a ~1.5MB routing graph;
 *  - art:  FP streaming over a ~3MB working set (L2-hostile);
 *  - swim: FP streaming over a ~8MB grid (memory-bound).
 */

#ifndef OSP_WORKLOAD_SPEC_LIKE_HH
#define OSP_WORKLOAD_SPEC_LIKE_HH

#include <cstdint>
#include <string>

#include "base_workload.hh"

namespace osp
{

/** Which SPEC-like kernel to run. */
enum class SpecVariant
{
    Gzip,
    Vpr,
    Art,
    Swim,
};

/** SPEC-like parameters. */
struct SpecParams
{
    SpecVariant variant = SpecVariant::Gzip;
    /** User instructions skipped before measurement. */
    InstCount warmupOps = 200000;
    /** User instructions measured. */
    InstCount measureOps = 4000000;
    /** User instructions between rare kernel entries (0 = none). */
    InstCount syscallEvery = 1500000;
};

/** See file comment. */
class SpecWorkload : public BaseWorkload
{
  public:
    SpecWorkload(SyntheticKernel &kernel, const SpecParams &params,
                 std::uint64_t seed);

    bool inWarmup() const override;

  protected:
    Advance advance(ServiceRequest &req) override;

  private:
    SpecParams params;
    CodeProfile prof;
    Region data;
    PatternKind pattern = PatternKind::Sequential;
    InstCount opsQueued = 0;
    InstCount sinceSyscall = 0;
    bool brkNext = true;
};

/** Variant name: "gzip" / "vpr" / "art" / "swim". */
const char *specVariantName(SpecVariant variant);

} // namespace osp

#endif // OSP_WORKLOAD_SPEC_LIKE_HH
