/**
 * @file
 * The Apache + ab web-server workloads of Sec. 5.2.
 *
 * Each HTTP request runs the Apache worker's syscall sequence:
 * accept, accept-mutex semop (sys_ipc), poll, recv, stat64, open,
 * fcntl64, then a read/writev loop streaming the document to the
 * client in chunks, an access-log write, gettimeofday timestamps,
 * and closes. Eight documents with sizes spanning 104KB-1.4MB (scaled
 * by AbParams::fileScale) are served:
 *
 *  - ab-rand picks the document uniformly at random per request —
 *    the realistic, hard-to-predict client;
 *  - ab-seq serves equal runs of each document in ascending size
 *    order — the adversarial pattern whose late-appearing behaviour
 *    points stress the re-learning machinery (paper Fig. 4b).
 */

#ifndef OSP_WORKLOAD_WEBSERVER_HH
#define OSP_WORKLOAD_WEBSERVER_HH

#include <cstdint>
#include <vector>

#include "base_workload.hh"

namespace osp
{

/** Web-server workload parameters. */
struct AbParams
{
    /** Serve documents in ascending-size runs (ab-seq) instead of
     *  uniformly at random (ab-rand). */
    bool sequential = false;
    /** Requests skipped (served in emulation) before measurement. */
    std::uint32_t warmupRequests = 40;
    /** Requests measured. */
    std::uint32_t measureRequests = 150;
    /** File read chunk (Apache's buffered read size). */
    std::uint64_t chunkBytes = 16 * 1024;
    /** Scale factor on the paper's 104KB-1.4MB document sizes. 0.5
     *  keeps the served set (~2.4MB) larger than both the page
     *  cache and the L2, as in the paper's setup. */
    double fileScale = 0.5;
};

/** See file comment. */
class AbWorkload : public BaseWorkload
{
  public:
    AbWorkload(SyntheticKernel &kernel, const AbParams &params,
               std::uint64_t seed);

    bool inWarmup() const override;

    /** Requests fully completed so far. */
    std::uint32_t requestsDone() const { return requestsDone_; }

  protected:
    Advance advance(ServiceRequest &req) override;

  private:
    enum class Phase
    {
        OpenLog,
        Accept,
        AcceptMutex,
        Poll,
        Recv,
        ParseRequest,
        Stat,
        Open,
        Fcntl,
        TimestampStart,
        Read,
        Writev,
        LogWrite,
        TimestampEnd,
        CloseFile,
        CloseConn,
    };

    /** Pick the document served by request @p r. */
    std::uint32_t fileFor(std::uint32_t r);

    AbParams params;
    CodeProfile appProf;
    std::vector<std::uint32_t> fileIds;
    std::vector<std::uint64_t> fileSizes;
    std::uint32_t logFileId = 0;

    Phase phase = Phase::OpenLog;
    std::uint32_t requestsDone_ = 0;
    std::uint32_t totalRequests;
    std::uint64_t connFd = 0;
    std::uint64_t fileFd = 0;
    std::uint64_t logFd = 0;
    std::uint32_t curFile = 0;
    std::uint64_t bytesLeft = 0;
    std::uint64_t lastReadBytes = 0;
    bool firstChunk = true;
};

} // namespace osp

#endif // OSP_WORKLOAD_WEBSERVER_HH
