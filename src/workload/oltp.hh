/**
 * @file
 * An OLTP-style transaction-processing workload.
 *
 * The paper's introduction lists transaction processing among the
 * application classes that need full-system simulation, but its
 * evaluation never includes one; this workload is the repository's
 * generalization test (bench ext1): the predictor is tuned on the
 * paper's five OS-intensive benchmarks and must hold up on this
 * sixth, unseen syscall/interrupt profile.
 *
 * Each transaction models a simple storage-engine commit path:
 * lock acquisition (sys_ipc), a few random record-page reads
 * (sys_open + sys_read over a large set of small files, exercising
 * the dentry cache and the page cache's random-access path), user
 * compute (predicate evaluation + tuple formatting), a write-ahead
 * log append (sys_write), unlock (sys_ipc), and a periodic client
 * round-trip (sys_poll + sys_socketcall).
 */

#ifndef OSP_WORKLOAD_OLTP_HH
#define OSP_WORKLOAD_OLTP_HH

#include <cstdint>
#include <vector>

#include "base_workload.hh"

namespace osp
{

/** OLTP parameters. */
struct OltpParams
{
    /** Transactions skipped before measurement. */
    std::uint32_t warmupTransactions = 50;
    /** Transactions measured. */
    std::uint32_t measureTransactions = 400;
    /** Record pages read per transaction (uniform 1..max). */
    std::uint32_t maxReadsPerTxn = 4;
    /** Bytes appended to the write-ahead log per commit. */
    std::uint64_t logRecordBytes = 512;
    /** Transactions between client round-trips. */
    std::uint32_t clientEvery = 4;
};

/** See file comment. */
class OltpWorkload : public BaseWorkload
{
  public:
    OltpWorkload(SyntheticKernel &kernel, const OltpParams &params,
                 std::uint64_t seed);

    bool inWarmup() const override;

    std::uint32_t transactionsDone() const { return done_; }

  protected:
    Advance advance(ServiceRequest &req) override;

  private:
    enum class Phase
    {
        Setup,        //!< open WAL + accept the client socket
        SetupSocket,
        BeginTxn,     //!< lock
        OpenRecord,
        ReadRecord,
        Compute,
        CloseRecord,
        MaybeMoreReads,
        WriteLog,
        Unlock,
        ClientPoll,   //!< every clientEvery transactions
        ClientReply,
    };

    OltpParams params;
    CodeProfile engineProf;
    std::uint32_t total;
    std::uint32_t walFileId = 0;
    Phase phase = Phase::Setup;
    std::uint32_t done_ = 0;
    std::uint64_t walFd = 0;
    std::uint64_t sockFd = 0;
    std::uint64_t recordFd = 0;
    std::uint32_t readsLeft = 0;
};

} // namespace osp

#endif // OSP_WORKLOAD_OLTP_HH
