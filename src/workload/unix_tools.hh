/**
 * @file
 * The Unix-tool workloads of Sec. 5.2: `du -h /usr` and
 * `find /usr -type f -exec od {} \;`.
 *
 * Both walk the synthetic VFS tree. du opens each directory, reads
 * its entries (getdents) and stat64s every file — almost pure
 * metadata traffic. find-od additionally opens each regular file,
 * reads it in 4KB chunks, formats an octal dump in user mode
 * (od's dominant user-time loop) and writes the formatted output,
 * which exercises the page-cache write path heavily.
 */

#ifndef OSP_WORKLOAD_UNIX_TOOLS_HH
#define OSP_WORKLOAD_UNIX_TOOLS_HH

#include <cstdint>

#include "base_workload.hh"

namespace osp
{

/** Parameters shared by du and find-od. */
struct UnixToolParams
{
    /** Directories walked before measurement starts. */
    std::uint32_t warmupDirs = 8;
    /** 0 = walk the whole tree. */
    std::uint32_t maxDirs = 0;
};

/** `du -h /usr`. */
class DuWorkload : public BaseWorkload
{
  public:
    DuWorkload(SyntheticKernel &kernel, const UnixToolParams &params,
               std::uint64_t seed);

    bool inWarmup() const override;

  protected:
    Advance advance(ServiceRequest &req) override;

  private:
    enum class Phase
    {
        OpenDir,
        Getdents,
        CloseDir,
        StatFile,
        NextDir,
    };

    UnixToolParams params;
    CodeProfile appProf;
    std::uint32_t dirLimit;
    Phase phase = Phase::OpenDir;
    std::uint32_t curDir = 0;
    std::uint32_t curFile = 0;
    std::uint64_t dirFd = 0;
    std::uint32_t dirsDone = 0;
};

/** `find /usr -type f -exec od {} \;`. */
class FindOdWorkload : public BaseWorkload
{
  public:
    FindOdWorkload(SyntheticKernel &kernel,
                   const UnixToolParams &params, std::uint64_t seed);

    bool inWarmup() const override;

  protected:
    Advance advance(ServiceRequest &req) override;

  private:
    enum class Phase
    {
        OpenOut,
        OpenDir,
        Getdents,
        CloseDir,
        StatFile,
        OpenFile,
        ReadChunk,
        FormatAndWrite,
        CloseFile,
        NextDir,
    };

    UnixToolParams params;
    CodeProfile appProf;
    CodeProfile odProf;
    std::uint32_t dirLimit;
    std::uint32_t outFileId = 0;
    Phase phase = Phase::OpenOut;
    std::uint32_t curDir = 0;
    std::uint32_t curFile = 0;
    std::uint64_t dirFd = 0;
    std::uint64_t fileFd = 0;
    std::uint64_t outFd = 0;
    std::uint64_t lastReadBytes = 0;
    std::uint32_t dirsDone = 0;
};

} // namespace osp

#endif // OSP_WORKLOAD_UNIX_TOOLS_HH
