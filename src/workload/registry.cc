#include "registry.hh"

#include <algorithm>

#include "netbench.hh"
#include "oltp.hh"
#include "spec_like.hh"
#include "unix_tools.hh"
#include "util/logging.hh"
#include "webserver.hh"

namespace osp
{

namespace
{

std::uint32_t
scaled(std::uint32_t base, double scale)
{
    auto v = static_cast<std::uint32_t>(
        static_cast<double>(base) * scale);
    return std::max<std::uint32_t>(v, 1);
}

} // namespace

const std::vector<std::string> &
allWorkloads()
{
    static const std::vector<std::string> names = {
        "ab-rand", "ab-seq", "du", "find-od", "iperf",
        "gzip", "vpr", "art", "swim",
    };
    return names;
}

const std::vector<std::string> &
osIntensiveWorkloads()
{
    static const std::vector<std::string> names = {
        "ab-rand", "ab-seq", "du", "find-od", "iperf",
    };
    return names;
}

const std::vector<std::string> &
specWorkloads()
{
    static const std::vector<std::string> names = {
        "gzip", "vpr", "art", "swim",
    };
    return names;
}

const std::vector<std::string> &
extraWorkloads()
{
    static const std::vector<std::string> names = {"oltp"};
    return names;
}

bool
isWorkload(const std::string &name)
{
    const auto &names = allWorkloads();
    if (std::find(names.begin(), names.end(), name) != names.end())
        return true;
    const auto &extra = extraWorkloads();
    return std::find(extra.begin(), extra.end(), name) !=
           extra.end();
}

KernelParams
kernelParamsFor(const std::string &name, std::uint64_t seed)
{
    KernelParams kp;
    kp.seed = seed;
    if (name == "ab-rand" || name == "ab-seq") {
        // Documents total ~2.4MB (scaled); keep the page cache
        // smaller so cold reads keep recurring, as on the paper's
        // memory-pressured server.
        kp.pageCachePages = 384;
        kp.vfs.numDirs = 4;
        kp.vfs.filesPerDirMin = 2;
        kp.vfs.filesPerDirMax = 4;
    } else if (name == "du") {
        kp.pageCachePages = 512;
        kp.vfs.numDirs = 300;
        kp.vfs.dentryCapacity = 1024;
    } else if (name == "find-od") {
        kp.pageCachePages = 512;
        kp.vfs.numDirs = 96;
        kp.vfs.filesPerDirMin = 3;
        kp.vfs.filesPerDirMax = 10;
        kp.vfs.fileSizeMin = 2 * 1024;
        kp.vfs.fileSizeMax = 24 * 1024;
        kp.vfs.dentryCapacity = 1024;
    } else if (name == "iperf") {
        kp.pageCachePages = 64;
        kp.vfs.numDirs = 2;
        kp.vfs.filesPerDirMin = 1;
        kp.vfs.filesPerDirMax = 2;
    } else if (name == "oltp") {
        // Many small record pages; the working set dwarfs the page
        // cache so record reads mix cached and disk paths.
        kp.pageCachePages = 256;
        kp.vfs.numDirs = 64;
        kp.vfs.filesPerDirMin = 8;
        kp.vfs.filesPerDirMax = 16;
        kp.vfs.fileSizeMin = 4 * 1024;
        kp.vfs.fileSizeMax = 16 * 1024;
        kp.vfs.dentryCapacity = 512;
        kp.ipcContention = 0.35;
    } else {
        // SPEC-like: tiny OS footprint.
        kp.pageCachePages = 64;
        kp.vfs.numDirs = 2;
        kp.vfs.filesPerDirMin = 1;
        kp.vfs.filesPerDirMax = 2;
    }
    return kp;
}

std::unique_ptr<Machine>
makeMachine(const std::string &name, const MachineConfig &cfg,
            double scale)
{
    if (!isWorkload(name))
        osp_fatal("unknown workload '", name, "'");

    auto kernel =
        std::make_unique<SyntheticKernel>(
            kernelParamsFor(name, cfg.seed));
    SyntheticKernel &kref = *kernel;
    std::unique_ptr<UserProgram> workload;

    if (name == "ab-rand" || name == "ab-seq") {
        AbParams p;
        p.sequential = (name == "ab-seq");
        p.warmupRequests = scaled(40, scale);
        // The paper measures 300 requests for ab-rand and 700 for
        // ab-seq (Sec. 5.2); ours serve half-scale documents.
        p.measureRequests =
            scaled(p.sequential ? 200 : 100, scale);
        workload =
            std::make_unique<AbWorkload>(kref, p, cfg.seed);
    } else if (name == "du") {
        UnixToolParams p;
        p.warmupDirs = scaled(10, scale);
        p.maxDirs = scaled(150, scale);
        workload =
            std::make_unique<DuWorkload>(kref, p, cfg.seed);
    } else if (name == "find-od") {
        UnixToolParams p;
        p.warmupDirs = scaled(4, scale);
        p.maxDirs = scaled(48, scale);
        workload =
            std::make_unique<FindOdWorkload>(kref, p, cfg.seed);
    } else if (name == "iperf") {
        IperfParams p;
        p.warmupWrites = scaled(200, scale);
        p.measureWrites = scaled(1200, scale);
        workload =
            std::make_unique<IperfWorkload>(kref, p, cfg.seed);
    } else if (name == "oltp") {
        OltpParams p;
        p.warmupTransactions = scaled(50, scale);
        p.measureTransactions = scaled(400, scale);
        workload =
            std::make_unique<OltpWorkload>(kref, p, cfg.seed);
    } else {
        SpecParams p;
        if (name == "gzip")
            p.variant = SpecVariant::Gzip;
        else if (name == "vpr")
            p.variant = SpecVariant::Vpr;
        else if (name == "art")
            p.variant = SpecVariant::Art;
        else
            p.variant = SpecVariant::Swim;
        // The warm-up must sweep the whole data region once so
        // first-touch page faults happen before measurement — the
        // counterpart of the paper skipping SPEC's first 2 billion
        // (initialization) instructions.
        p.warmupOps = 2000000;
        p.measureOps = static_cast<InstCount>(4000000 * scale);
        workload =
            std::make_unique<SpecWorkload>(kref, p, cfg.seed);
    }

    return std::make_unique<Machine>(cfg, std::move(workload),
                                     std::move(kernel));
}

} // namespace osp
