/**
 * @file
 * Workload registry: build any of the paper's nine benchmarks by
 * name, with a matched kernel configuration, wired into a Machine.
 *
 * This is the main entry point examples, tests and benches use:
 *
 * @code
 *   MachineConfig cfg;
 *   auto machine = makeMachine("ab-rand", cfg);
 *   machine->run();
 * @endcode
 */

#ifndef OSP_WORKLOAD_REGISTRY_HH
#define OSP_WORKLOAD_REGISTRY_HH

#include <memory>
#include <string>
#include <vector>

#include "os/kernel.hh"
#include "sim/machine.hh"

namespace osp
{

/** Names of all nine benchmarks (Sec. 5.2 order). */
const std::vector<std::string> &allWorkloads();

/** The five OS-intensive benchmarks (left bars of Fig. 1). */
const std::vector<std::string> &osIntensiveWorkloads();

/** The four SPEC2000-like benchmarks. */
const std::vector<std::string> &specWorkloads();

/**
 * Workloads beyond the paper's nine (currently: "oltp", the
 * transaction-processing class the paper's introduction motivates
 * but never evaluates — used as a generalization test).
 */
const std::vector<std::string> &extraWorkloads();

/** True if @p name is a known workload. */
bool isWorkload(const std::string &name);

/**
 * Kernel parameters matched to a workload (page-cache size, VFS
 * shape, interrupt latencies). Seed is taken from @p seed.
 */
KernelParams kernelParamsFor(const std::string &name,
                             std::uint64_t seed);

/**
 * Build kernel + workload + machine for a named benchmark.
 *
 * @param name  workload name (see allWorkloads())
 * @param cfg   machine configuration (seed is reused for the kernel
 *              and the workload)
 * @param scale scales the measured-work volume (requests / writes /
 *              directories / instructions); 1.0 is the bench-tuned
 *              default, tests typically pass less
 */
std::unique_ptr<Machine> makeMachine(const std::string &name,
                                     const MachineConfig &cfg,
                                     double scale = 1.0);

} // namespace osp

#endif // OSP_WORKLOAD_REGISTRY_HH
