/**
 * @file
 * Shared machinery for guest applications.
 *
 * A workload is a small state machine: it queues user-mode compute
 * into its own CodeGenerator, and between compute blocks it raises
 * system calls. BaseWorkload implements the UserProgram pull
 * interface on top of that: step() serves generated instructions
 * until the generator runs dry, then asks the subclass to advance
 * its state machine.
 */

#ifndef OSP_WORKLOAD_BASE_WORKLOAD_HH
#define OSP_WORKLOAD_BASE_WORKLOAD_HH

#include <cstdint>
#include <string>

#include "os/kernel.hh"
#include "sim/codegen.hh"
#include "sim/interfaces.hh"

namespace osp
{

/** Standard user-space address map shared by all workloads. */
struct UserLayout
{
    Region code{0x00400000ULL, 64 * 1024};
    /** Modest by default: the OS-intensive workloads' user sides are
     *  cache-friendly (SPEC-like workloads size their own data
     *  regions explicitly). */
    Region heap{0x10000000ULL, 192 * 1024};
    Region ioBuffer{0x20000000ULL, 256 * 1024};
    Region stack{0x30000000ULL, 64 * 1024};
};

/** See file comment. */
class BaseWorkload : public UserProgram
{
  public:
    BaseWorkload(std::string name, SyntheticKernel &kernel,
                 std::uint64_t seed, std::uint64_t stream);

    Step step(MicroOp &op, ServiceRequest &req) final;

    /**
     * Drain queued user compute in blocks straight from the
     * generator. Never advances the state machine (see the
     * UserProgram contract): returning 0 routes the Machine back to
     * step(), which is where syscalls and completion happen.
     */
    std::size_t
    opBlock(MicroOp *buf, std::size_t cap) final
    {
        return gen.nextBlock(buf, cap);
    }

    void
    onServiceReturn(ServiceType type, ServiceResult result) override
    {
        lastResult = result;
        lastResultType = type;
    }

    const char *name() const override { return name_.c_str(); }

  protected:
    /** What advance() decided. */
    enum class Advance
    {
        Continue,  //!< user compute was queued; keep stepping
        Syscall,   //!< @p req was filled
        Done,      //!< program finished
    };

    /**
     * Move the state machine forward: queue user compute into gen,
     * fill @p req with a syscall, or finish. Called whenever the
     * generator runs dry. Returning Continue without queueing work
     * is a panic (it would livelock the machine).
     */
    virtual Advance advance(ServiceRequest &req) = 0;

    /** Queue @p ops of user compute with the given profile/data. */
    void
    compute(const CodeProfile &profile, std::uint64_t ops,
            Region data, PatternKind pattern = PatternKind::Sequential)
    {
        gen.pushCompute(profile, ops, data, pattern);
    }

    /** Build a ServiceRequest in place. */
    static ServiceRequest
    request(ServiceType type, std::uint64_t a0 = 0,
            std::uint64_t a1 = 0, std::uint64_t a2 = 0)
    {
        ServiceRequest req;
        req.type = type;
        req.args = SyscallArgs{a0, a1, a2};
        return req;
    }

    SyntheticKernel &kernel;
    UserLayout user;
    CodeGenerator gen;
    Pcg32 rng;
    ServiceResult lastResult;
    ServiceType lastResultType = ServiceType::SysGettimeofday;

  private:
    std::string name_;
};

} // namespace osp

#endif // OSP_WORKLOAD_BASE_WORKLOAD_HH
