#include "oltp.hh"

#include "util/logging.hh"

namespace osp
{

namespace
{

/** Storage-engine code: B-tree walks are pointer-chasing and
 *  branchy; tuple work is moderately serial. */
CodeProfile
engineProfile(const Region &code)
{
    CodeProfile p;
    p.loadFrac = 0.28;
    p.storeFrac = 0.10;
    p.branchFrac = 0.17;
    p.depChance = 0.48;
    p.depDistMean = 3.0;
    p.branchRandomFrac = 0.09;
    p.code = Region{code.base, 40 * 1024};
    p.blockRunBytes = 256;
    return p;
}

} // namespace

OltpWorkload::OltpWorkload(SyntheticKernel &kern,
                           const OltpParams &p, std::uint64_t seed)
    : BaseWorkload("oltp", kern, seed, 0x01A9ULL),
      params(p),
      total(p.warmupTransactions + p.measureTransactions)
{
    engineProf = engineProfile(user.code);
    walFileId = kernel.vfs().addFile(4096, 3);
}

bool
OltpWorkload::inWarmup() const
{
    return done_ < params.warmupTransactions;
}

BaseWorkload::Advance
OltpWorkload::advance(ServiceRequest &req)
{
    switch (phase) {
      case Phase::Setup:
        // Buffer-pool and latch-table initialization, then open the
        // write-ahead log (modeled as an extra file).
        compute(engineProf, 2000, user.heap, PatternKind::Hot);
        req = request(ServiceType::SysOpen, walFileId);
        phase = Phase::SetupSocket;
        return Advance::Syscall;

      case Phase::SetupSocket:
        walFd = lastResult.value;
        req = request(ServiceType::SysSocketcall, 0);
        phase = Phase::BeginTxn;
        sockFd = ~0ULL;
        return Advance::Syscall;

      case Phase::BeginTxn:
        if (sockFd == ~0ULL)
            sockFd = lastResult.value;
        if (done_ >= total)
            return Advance::Done;
        // Acquire the commit lock.
        req = request(ServiceType::SysIpc, 0);
        readsLeft = 1 + rng.range(params.maxReadsPerTxn);
        phase = Phase::OpenRecord;
        return Advance::Syscall;

      case Phase::OpenRecord:
        {
            // Pick a random record page (file) from the original
            // tree (never the WAL, which was added last).
            std::uint32_t file = rng.range(walFileId);
            compute(engineProf, 250, user.heap, PatternKind::Hot);
            req = request(ServiceType::SysOpen, file);
            phase = Phase::ReadRecord;
            return Advance::Syscall;
        }

      case Phase::ReadRecord:
        recordFd = lastResult.value;
        req = request(ServiceType::SysRead, recordFd, 4096,
                      user.ioBuffer.base);
        phase = Phase::Compute;
        return Advance::Syscall;

      case Phase::Compute:
        // Predicate evaluation and tuple materialization.
        compute(engineProf, 600 + rng.range(400),
                Region{user.ioBuffer.base, 4096});
        phase = Phase::CloseRecord;
        return Advance::Continue;

      case Phase::CloseRecord:
        req = request(ServiceType::SysClose, recordFd);
        phase = Phase::MaybeMoreReads;
        return Advance::Syscall;

      case Phase::MaybeMoreReads:
        if (--readsLeft > 0) {
            phase = Phase::OpenRecord;
            return Advance::Continue;
        }
        phase = Phase::WriteLog;
        return Advance::Continue;

      case Phase::WriteLog:
        // Commit: append the WAL record.
        compute(engineProf, 350, user.heap, PatternKind::Hot);
        req = request(ServiceType::SysWrite, walFd,
                      params.logRecordBytes, user.heap.base);
        phase = Phase::Unlock;
        return Advance::Syscall;

      case Phase::Unlock:
        req = request(ServiceType::SysIpc, 1);
        ++done_;
        phase = (params.clientEvery &&
                 done_ % params.clientEvery == 0)
                    ? Phase::ClientPoll
                    : Phase::BeginTxn;
        return Advance::Syscall;

      case Phase::ClientPoll:
        req = request(ServiceType::SysPoll, sockFd, 1);
        phase = Phase::ClientReply;
        return Advance::Syscall;

      case Phase::ClientReply:
        {
            // Read the client's batch request, send the results.
            compute(engineProf, 300, user.heap);
            req = request(ServiceType::SysSocketcall, 1, sockFd,
                          2048);
            phase = Phase::BeginTxn;
            return Advance::Syscall;
        }
    }
    osp_panic("OltpWorkload: bad phase");
}

} // namespace osp
