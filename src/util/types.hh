/**
 * @file
 * Fundamental scalar types shared by every module.
 *
 * Follows the gem5 convention of giving architectural quantities
 * named types so interfaces document themselves.
 */

#ifndef OSP_UTIL_TYPES_HH
#define OSP_UTIL_TYPES_HH

#include <cstdint>

namespace osp
{

/** A (virtual) memory address. The simulator does not model paging
 *  hardware, so virtual and physical addresses coincide. */
using Addr = std::uint64_t;

/** A count of processor clock cycles. */
using Cycles = std::uint64_t;

/** A count of dynamically executed (retired) instructions. */
using InstCount = std::uint64_t;

/** A signed difference of cycle counts. */
using CyclesDelta = std::int64_t;

/**
 * Who architecturally owns a memory access or a cache line: the
 * application (user mode) or the operating system (kernel mode).
 *
 * The paper's technique requires separating OS performance from
 * application performance; tagging every access and resident line
 * with its owner is what makes that separation exact.
 */
enum class Owner : std::uint8_t
{
    App = 0,
    Os = 1,
};

/** Number of distinct Owner values (for owner-indexed arrays). */
inline constexpr int numOwners = 2;

/** Short human-readable owner name ("app" / "os"). */
inline const char *
ownerName(Owner owner)
{
    return owner == Owner::App ? "app" : "os";
}

} // namespace osp

#endif // OSP_UTIL_TYPES_HH
