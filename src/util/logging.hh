/**
 * @file
 * Status and error reporting in the gem5 style.
 *
 * panic()  - an internal invariant was violated (a simulator bug);
 *            aborts so a debugger/core dump can inspect the state.
 * fatal()  - the simulation cannot continue due to a user error
 *            (bad configuration, invalid arguments); exits with 1.
 * warn()   - something works well enough but may explain odd
 *            behaviour observed later.
 * inform() - normal operating status the user should see.
 */

#ifndef OSP_UTIL_LOGGING_HH
#define OSP_UTIL_LOGGING_HH

#include <cstdio>
#include <sstream>
#include <string>

namespace osp
{

/** Verbosity levels accepted by setLogLevel(). */
enum class LogLevel
{
    Silent = 0,  //!< suppress warn() and inform()
    Warn = 1,    //!< show warn() only
    Inform = 2,  //!< show warn() and inform()
};

/** Set the global verbosity for warn()/inform(). panic()/fatal()
 *  always print. */
void setLogLevel(LogLevel level);

/** Current global verbosity. */
LogLevel logLevel();

namespace detail
{

/** Concatenate a parameter pack into one string via operator<<. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const std::string &msg);
void informImpl(const std::string &msg);

} // namespace detail

/** Report an internal simulator bug and abort. */
#define osp_panic(...) \
    ::osp::detail::panicImpl(__FILE__, __LINE__, \
                             ::osp::detail::concat(__VA_ARGS__))

/** Report an unrecoverable user error and exit(1). */
#define osp_fatal(...) \
    ::osp::detail::fatalImpl(__FILE__, __LINE__, \
                             ::osp::detail::concat(__VA_ARGS__))

/** Warn about behaviour that might be surprising but is survivable. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::warnImpl(detail::concat(std::forward<Args>(args)...));
}

/** Print an informational status message. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::informImpl(detail::concat(std::forward<Args>(args)...));
}

} // namespace osp

#endif // OSP_UTIL_LOGGING_HH
