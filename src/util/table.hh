/**
 * @file
 * Aligned-column table and CSV emission for benchmark harnesses.
 *
 * Every bench binary regenerates one figure or table of the paper;
 * TablePrinter renders the rows the paper reports in a form that is
 * readable on a terminal and trivially machine-parsable as CSV.
 */

#ifndef OSP_UTIL_TABLE_HH
#define OSP_UTIL_TABLE_HH

#include <ostream>
#include <string>
#include <vector>

namespace osp
{

/**
 * A simple column-aligned table builder.
 *
 * Usage:
 * @code
 *   TablePrinter t({"bench", "speedup"});
 *   t.addRow({"iperf", "15.6"});
 *   t.print(std::cout);
 * @endcode
 */
class TablePrinter
{
  public:
    /** Construct with the header row. */
    explicit TablePrinter(std::vector<std::string> header);

    /** Append a data row; must have as many cells as the header. */
    void addRow(std::vector<std::string> row);

    /** Format a double with the given precision (helper for rows). */
    static std::string fmt(double value, int precision = 3);

    /** Format a double as a percentage string, e.g. "3.2%". */
    static std::string pct(double fraction, int precision = 1);

    /** Render with aligned columns and a header separator. */
    void print(std::ostream &os) const;

    /** Render as comma-separated values (header + rows). */
    void printCsv(std::ostream &os) const;

    /** Number of data rows added so far. */
    std::size_t numRows() const { return rows.size(); }

  private:
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;
};

} // namespace osp

#endif // OSP_UTIL_TABLE_HH
