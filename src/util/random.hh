/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator owns a Pcg32 seeded
 * from a (seed, stream) pair, so whole experiments replay exactly
 * from a single seed and components do not perturb each other's
 * sequences when one of them draws more numbers.
 *
 * PCG32 (O'Neill, 2014): 64-bit LCG state with an output permutation;
 * small, fast, and statistically far better than rand().
 */

#ifndef OSP_UTIL_RANDOM_HH
#define OSP_UTIL_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace osp
{

/**
 * A PCG-XSH-RR 32-bit pseudo-random generator with an explicit
 * stream id. Distinct stream ids produce independent sequences even
 * under the same seed.
 */
class Pcg32
{
  public:
    /**
     * Precomputed constants for repeated range(bound) draws with a
     * fixed bound (makeRange/rangeWith). Hot paths that alternate
     * between several fixed bounds keep one of these per bound so no
     * draw ever recomputes the rejection threshold or the Lemire
     * magic (a division each).
     */
    struct RangeDraw
    {
        std::uint32_t bound = 0;
        std::uint32_t threshold = 0;
        std::uint64_t magic = 0;
    };

    /**
     * Exact-replay lookup table for geometric(p) with a fixed p.
     * boundary[k-1] is the smallest raw draw r for which the
     * original expression 1 + (uint32)(log(r/2^32) / log(1-p))
     * evaluates to k, found at build time by evaluating that same
     * expression (same process, same libm) around the analytic
     * boundary — so a table hit is the original result by
     * construction. Draws below boundary[entries-1] (the large-d
     * tail) and tables that failed verification fall back to the
     * original formula. Either way: one draw, same value.
     */
    struct GeomTable
    {
        static constexpr std::uint32_t kMaxEntries = 32;
        static constexpr std::uint32_t kBuckets = 256;
        double p = -1.0;
        double logOneMinusP = 1.0;
        std::uint32_t entries = 0;  //!< 0 when the table is unusable
        std::uint32_t boundary[kMaxEntries] = {};
        /**
         * Direct index on the draw's top 8 bits: low byte is the
         * result d when the whole bucket maps to one value, or d
         * with bits 32.. holding the one boundary inside the bucket
         * (result d + (r < boundary)). 0 = bucket not covered, use
         * the formula. Turns the common lookup into one load and
         * one compare instead of a data-dependent scan.
         */
        std::uint64_t bucket[kBuckets] = {};
    };

    /** Construct from a seed and a stream selector. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        reseed(seed, stream);
    }

    /** Re-initialize with a new (seed, stream) pair. */
    void
    reseed(std::uint64_t seed, std::uint64_t stream = 0)
    {
        state = 0;
        inc = (stream << 1u) | 1u;
        next();
        state += seed;
        next();
    }

    /** Next raw 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state;
        state = old * 6364136223846793005ULL + inc;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next()) << 32) | next();
    }

    /**
     * Uniform integer in [0, bound). Uses rejection sampling so the
     * distribution is exactly uniform (no modulo bias).
     */
    std::uint32_t
    range(std::uint32_t bound)
    {
        if (bound <= 1)
            return 0;
        // The rejection threshold and the reciprocal both depend
        // only on the bound; callers overwhelmingly reuse the same
        // bound (address-stream spans), so memoize them and replace
        // two divisions per draw with two multiplies. The remainder
        // uses Lemire's direct-computation trick, which is exact for
        // all 32-bit operands: n % d == mulhi64(M * n, d) with
        // M = 2^64/d + 1 (Lemire, Kaser & Kurz 2019).
        if (bound != rangeBound) {
            rangeBound = bound;
            rangeThreshold = (-bound) % bound;
            rangeMagic = ~std::uint64_t(0) / bound + 1;
        }
        for (;;) {
            std::uint32_t r = next();
            if (r >= rangeThreshold) {
                std::uint64_t low = rangeMagic * r;
                return static_cast<std::uint32_t>(
                    (static_cast<unsigned __int128>(low) * bound) >>
                    64);
            }
        }
    }

    /** Precompute range(bound) constants for rangeWith(). */
    static RangeDraw
    makeRange(std::uint32_t bound)
    {
        RangeDraw d;
        d.bound = bound;
        if (bound > 1) {
            d.threshold = (-bound) % bound;
            d.magic = ~std::uint64_t(0) / bound + 1;
        }
        return d;
    }

    /** range(d.bound) using precomputed constants: same draws, same
     *  rejection, same value — no divisions. */
    std::uint32_t
    rangeWith(const RangeDraw &d)
    {
        if (d.bound <= 1)
            return 0;
        for (;;) {
            std::uint32_t r = next();
            if (r >= d.threshold) {
                std::uint64_t low = d.magic * r;
                return static_cast<std::uint32_t>(
                    (static_cast<unsigned __int128>(low) *
                     d.bound) >>
                    64);
            }
        }
    }

    /**
     * Uniform integer in [0, bound) for 64-bit bounds, rejection
     * sampled like range(). bound 0 means the full 2^64 span.
     */
    std::uint64_t
    range64(std::uint64_t bound)
    {
        if (bound == 0)
            return next64();
        if (bound == 1)
            return 0;
        std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            std::uint64_t r = next64();
            if (r >= threshold)
                return r % bound;
        }
    }

    /**
     * Uniform integer in [lo, hi] inclusive. Spans that fit in 32
     * bits draw one 32-bit value (preserving the historical stream
     * for every existing caller); wider spans — which previously
     * truncated to 32 bits, a full-span request wrapping to a span
     * of 0 and always returning lo — use 64-bit rejection sampling.
     */
    std::int64_t
    rangeInclusive(std::int64_t lo, std::int64_t hi)
    {
        // Unsigned arithmetic: hi - lo is well defined even for
        // (INT64_MIN, INT64_MAX), where the +1 wraps span to 0 —
        // range64's encoding of the full 2^64 span.
        std::uint64_t span = static_cast<std::uint64_t>(hi) -
                             static_cast<std::uint64_t>(lo) + 1;
        std::uint64_t off;
        if (span != 0 && span <= 0xFFFFFFFFULL)
            off = range(static_cast<std::uint32_t>(span));
        else
            off = range64(span);
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(lo) + off);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /**
     * Integer threshold T(p) such that chance(p) == next() < T(p),
     * *exactly*: uniform() is next()/2^32 with no rounding (a 32-bit
     * integer scaled by a power of two), so r/2^32 < p iff
     * r < ceil(p * 2^32) for every integer r. Hot paths with a fixed
     * p precompute this once and use chanceRaw(), replacing an
     * int->double conversion, multiply and double compare with one
     * integer compare per trial — same draw, same outcome, faster.
     */
    static std::uint64_t
    rawThreshold(double p)
    {
        if (p <= 0.0)
            return 0;
        if (p >= 1.0)
            return std::uint64_t(1) << 32;
        return static_cast<std::uint64_t>(
            std::ceil(p * 4294967296.0));
    }

    /** chance(p) with a precomputed rawThreshold(p). Consumes
     *  exactly one draw, like chance(). */
    bool
    chanceRaw(std::uint64_t threshold)
    {
        return next() < threshold;
    }

    /** Normally distributed double (Box-Muller, one value per call). */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        if (haveSpare) {
            haveSpare = false;
            return mean + stddev * spare;
        }
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        double mul = std::sqrt(-2.0 * std::log(s) / s);
        spare = v * mul;
        haveSpare = true;
        return mean + stddev * u * mul;
    }

    /** Exponentially distributed double with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        if (u <= 0.0)
            u = 1e-12;
        return -mean * std::log(u);
    }

    /**
     * Geometrically distributed trial count (>= 1) with success
     * probability p. Used for dependency-distance sampling.
     */
    std::uint32_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 1;
        if (p <= 0.0)
            return 1;
        double u = uniform();
        if (u <= 0.0)
            u = 1e-12;
        // log(1 - p) depends only on p; components call geometric()
        // with a fixed per-profile p, so memoizing halves the log
        // count on the lowering hot path without changing any sample
        // (same p -> bit-identical denominator).
        if (p != geomP) {
            geomP = p;
            geomLogOneMinusP = std::log(1.0 - p);
        }
        return 1 + static_cast<std::uint32_t>(std::log(u) /
                                              geomLogOneMinusP);
    }

    /**
     * Build a GeomTable for geometric(p). The evaluator below is the
     * geometric() expression verbatim; each boundary is located by
     * scanning that evaluator around the analytic estimate
     * (1-p)^k * 2^32, so table lookups reproduce geometric() exactly.
     * Rounding in std::log can only move a boundary by a few raw
     * units (the true ratio moves >= 1/(u*|log(1-p)|*2^32) per unit
     * of r, orders of magnitude more than a sub-ulp log error), so a
     * window around the estimate always brackets it; a window that
     * fails to show one clean transition marks the table unusable
     * and every draw falls back to the formula.
     */
    static GeomTable
    makeGeomTable(double p)
    {
        GeomTable t;
        t.p = p;
        if (p <= 0.0 || p >= 1.0)
            return t;
        t.logOneMinusP = std::log(1.0 - p);
        // Tiny p spreads the distribution far past the table, so a
        // scan would nearly always fall through; not worth building.
        if (p < 0.01)
            return t;
        auto dOf = [&](std::uint32_t r) {
            double u = r * (1.0 / 4294967296.0);
            if (u <= 0.0)
                u = 1e-12;
            return 1 + static_cast<std::uint32_t>(
                           std::log(u) / t.logOneMinusP);
        };
        std::uint64_t prev = std::uint64_t(1) << 32;
        for (std::uint32_t k = 1; k <= GeomTable::kMaxEntries;
             ++k) {
            double est =
                std::pow(1.0 - p, static_cast<double>(k)) *
                4294967296.0;
            if (est < 256.0)
                break;  // boundaries crowd; leave the tail to log()
            std::uint64_t g = static_cast<std::uint64_t>(est);
            constexpr std::uint64_t kWin = 128;
            std::uint64_t lo = g > kWin ? g - kWin : 1;
            std::uint64_t hi = g + kWin;
            if (hi >= prev)
                hi = prev - 1;
            // Anything unexpected in the window — a second boundary,
            // a wiggle, no transition — just stops extending: the
            // entries verified so far stay exact, and draws below
            // them take the formula path.
            if (dOf(static_cast<std::uint32_t>(lo)) != k + 1 ||
                dOf(static_cast<std::uint32_t>(hi)) != k)
                break;
            std::uint64_t s = 0;
            bool clean = true;
            for (std::uint64_t r = lo + 1; r <= hi && clean; ++r) {
                std::uint32_t d =
                    dOf(static_cast<std::uint32_t>(r));
                if (!s) {
                    if (d == k)
                        s = r;
                    else if (d != k + 1)
                        clean = false;
                } else if (d != k) {
                    clean = false;
                }
            }
            if (!clean || !s)
                break;
            t.boundary[k - 1] = static_cast<std::uint32_t>(s);
            t.entries = k;
            prev = s;
        }

        // Index the verified intervals by the draw's top byte.
        auto dFromBoundaries =
            [&](std::uint64_t r) -> std::uint32_t {
            for (std::uint32_t k = 0; k < t.entries; ++k)
                if (r >= t.boundary[k])
                    return k + 1;
            return 0;  // below coverage
        };
        for (std::uint32_t i = 0; i < GeomTable::kBuckets; ++i) {
            std::uint64_t lo = std::uint64_t(i) << 24;
            std::uint64_t hi = (std::uint64_t(i + 1) << 24) - 1;
            std::uint32_t dlo = dFromBoundaries(lo);
            std::uint32_t dhi = dFromBoundaries(hi);
            if (dlo == 0 || dhi == 0)
                continue;  // (partly) uncovered: formula
            if (dlo == dhi)
                t.bucket[i] = dhi;
            else if (dlo == dhi + 1)
                t.bucket[i] =
                    (static_cast<std::uint64_t>(
                         t.boundary[dhi - 1])
                     << 32) |
                    dhi;
            // >1 boundary inside: leave 0, formula
        }
        return t;
    }

    /**
     * geometric(t.p) via a GeomTable: identical guard order, one
     * draw, and the original formula whenever the table cannot
     * answer. Bit-identical to geometric(t.p) by construction.
     */
    std::uint32_t
    geometricWith(const GeomTable &t)
    {
        if (t.p >= 1.0)
            return 1;
        if (t.p <= 0.0)
            return 1;
        std::uint32_t r = next();
        std::uint64_t e = t.bucket[r >> 24];
        if (e) {
            return static_cast<std::uint32_t>(e & 0xff) +
                   (r < static_cast<std::uint32_t>(e >> 32));
        }
        double u = r * (1.0 / 4294967296.0);
        if (u <= 0.0)
            u = 1e-12;
        return 1 + static_cast<std::uint32_t>(std::log(u) /
                                              t.logOneMinusP);
    }

  private:
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
    bool haveSpare = false;
    double spare = 0.0;
    std::uint32_t rangeBound = 0;
    std::uint32_t rangeThreshold = 0;
    std::uint64_t rangeMagic = 0;
    double geomP = -1.0;
    double geomLogOneMinusP = 1.0;
};

} // namespace osp

#endif // OSP_UTIL_RANDOM_HH
