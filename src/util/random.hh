/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * Every stochastic component of the simulator owns a Pcg32 seeded
 * from a (seed, stream) pair, so whole experiments replay exactly
 * from a single seed and components do not perturb each other's
 * sequences when one of them draws more numbers.
 *
 * PCG32 (O'Neill, 2014): 64-bit LCG state with an output permutation;
 * small, fast, and statistically far better than rand().
 */

#ifndef OSP_UTIL_RANDOM_HH
#define OSP_UTIL_RANDOM_HH

#include <cmath>
#include <cstdint>

namespace osp
{

/**
 * A PCG-XSH-RR 32-bit pseudo-random generator with an explicit
 * stream id. Distinct stream ids produce independent sequences even
 * under the same seed.
 */
class Pcg32
{
  public:
    /** Construct from a seed and a stream selector. */
    explicit Pcg32(std::uint64_t seed = 0x853c49e6748fea9bULL,
                   std::uint64_t stream = 0xda3e39cb94b95bdbULL)
    {
        reseed(seed, stream);
    }

    /** Re-initialize with a new (seed, stream) pair. */
    void
    reseed(std::uint64_t seed, std::uint64_t stream = 0)
    {
        state = 0;
        inc = (stream << 1u) | 1u;
        next();
        state += seed;
        next();
    }

    /** Next raw 32-bit value. */
    std::uint32_t
    next()
    {
        std::uint64_t old = state;
        state = old * 6364136223846793005ULL + inc;
        std::uint32_t xorshifted =
            static_cast<std::uint32_t>(((old >> 18u) ^ old) >> 27u);
        std::uint32_t rot = static_cast<std::uint32_t>(old >> 59u);
        return (xorshifted >> rot) | (xorshifted << ((-rot) & 31u));
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next64()
    {
        return (static_cast<std::uint64_t>(next()) << 32) | next();
    }

    /**
     * Uniform integer in [0, bound). Uses rejection sampling so the
     * distribution is exactly uniform (no modulo bias).
     */
    std::uint32_t
    range(std::uint32_t bound)
    {
        if (bound <= 1)
            return 0;
        std::uint32_t threshold = (-bound) % bound;
        for (;;) {
            std::uint32_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /**
     * Uniform integer in [0, bound) for 64-bit bounds, rejection
     * sampled like range(). bound 0 means the full 2^64 span.
     */
    std::uint64_t
    range64(std::uint64_t bound)
    {
        if (bound == 0)
            return next64();
        if (bound == 1)
            return 0;
        std::uint64_t threshold = (-bound) % bound;
        for (;;) {
            std::uint64_t r = next64();
            if (r >= threshold)
                return r % bound;
        }
    }

    /**
     * Uniform integer in [lo, hi] inclusive. Spans that fit in 32
     * bits draw one 32-bit value (preserving the historical stream
     * for every existing caller); wider spans — which previously
     * truncated to 32 bits, a full-span request wrapping to a span
     * of 0 and always returning lo — use 64-bit rejection sampling.
     */
    std::int64_t
    rangeInclusive(std::int64_t lo, std::int64_t hi)
    {
        // Unsigned arithmetic: hi - lo is well defined even for
        // (INT64_MIN, INT64_MAX), where the +1 wraps span to 0 —
        // range64's encoding of the full 2^64 span.
        std::uint64_t span = static_cast<std::uint64_t>(hi) -
                             static_cast<std::uint64_t>(lo) + 1;
        std::uint64_t off;
        if (span != 0 && span <= 0xFFFFFFFFULL)
            off = range(static_cast<std::uint32_t>(span));
        else
            off = range64(span);
        return static_cast<std::int64_t>(
            static_cast<std::uint64_t>(lo) + off);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return next() * (1.0 / 4294967296.0);
    }

    /** Uniform double in [lo, hi). */
    double
    uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        return uniform() < p;
    }

    /** Normally distributed double (Box-Muller, one value per call). */
    double
    gaussian(double mean = 0.0, double stddev = 1.0)
    {
        if (haveSpare) {
            haveSpare = false;
            return mean + stddev * spare;
        }
        double u, v, s;
        do {
            u = uniform(-1.0, 1.0);
            v = uniform(-1.0, 1.0);
            s = u * u + v * v;
        } while (s >= 1.0 || s == 0.0);
        double mul = std::sqrt(-2.0 * std::log(s) / s);
        spare = v * mul;
        haveSpare = true;
        return mean + stddev * u * mul;
    }

    /** Exponentially distributed double with the given mean. */
    double
    exponential(double mean)
    {
        double u = uniform();
        if (u <= 0.0)
            u = 1e-12;
        return -mean * std::log(u);
    }

    /**
     * Geometrically distributed trial count (>= 1) with success
     * probability p. Used for dependency-distance sampling.
     */
    std::uint32_t
    geometric(double p)
    {
        if (p >= 1.0)
            return 1;
        if (p <= 0.0)
            return 1;
        double u = uniform();
        if (u <= 0.0)
            u = 1e-12;
        return 1 + static_cast<std::uint32_t>(std::log(u) /
                                              std::log(1.0 - p));
    }

  private:
    std::uint64_t state = 0;
    std::uint64_t inc = 0;
    bool haveSpare = false;
    double spare = 0.0;
};

} // namespace osp

#endif // OSP_UTIL_RANDOM_HH
