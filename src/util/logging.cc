#include "logging.hh"

#include <cstdlib>

namespace osp
{

namespace
{
LogLevel globalLevel = LogLevel::Inform;
} // namespace

void
setLogLevel(LogLevel level)
{
    globalLevel = level;
}

LogLevel
logLevel()
{
    return globalLevel;
}

namespace detail
{

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::fflush(stderr);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file,
                 line);
    std::fflush(stderr);
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    if (static_cast<int>(globalLevel) >= static_cast<int>(LogLevel::Warn))
        std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
informImpl(const std::string &msg)
{
    if (static_cast<int>(globalLevel) >=
        static_cast<int>(LogLevel::Inform)) {
        std::fprintf(stdout, "info: %s\n", msg.c_str());
    }
}

} // namespace detail

} // namespace osp
