/**
 * @file
 * Minimal JSON document model: deterministic emission plus a strict
 * recursive-descent parser.
 *
 * Built for the experiment harness (src/driver), whose contract is
 * that an aggregated results file is *byte-identical* across runner
 * thread counts at the same seed, so CI can diff result artifacts.
 * Determinism therefore drives the design:
 *
 *  - objects preserve insertion order (no hash maps);
 *  - integers are kept exactly (signed/unsigned 64-bit);
 *  - doubles are emitted with std::to_chars shortest round-trip
 *    form, so emission is locale-independent and parse(emit(x))
 *    reproduces x bit-exactly.
 *
 * No external dependencies; the parser exists mainly so tests and
 * tools can round-trip the emitted artifacts.
 */

#ifndef OSP_UTIL_JSON_HH
#define OSP_UTIL_JSON_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace osp
{

/** See file comment. */
class JsonValue
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Uint,
        Double,
        String,
        Array,
        Object,
    };

    JsonValue() = default;
    JsonValue(std::nullptr_t) {}
    JsonValue(bool v) : kind_(Kind::Bool), bool_(v) {}
    JsonValue(int v) : kind_(Kind::Int), int_(v) {}
    JsonValue(long v) : kind_(Kind::Int), int_(v) {}
    JsonValue(long long v) : kind_(Kind::Int), int_(v) {}
    JsonValue(unsigned v) : kind_(Kind::Uint), uint_(v) {}
    JsonValue(unsigned long v) : kind_(Kind::Uint), uint_(v) {}
    JsonValue(unsigned long long v) : kind_(Kind::Uint), uint_(v) {}
    JsonValue(double v) : kind_(Kind::Double), double_(v) {}
    JsonValue(const char *v) : kind_(Kind::String), string_(v) {}
    JsonValue(std::string v)
        : kind_(Kind::String), string_(std::move(v))
    {
    }

    /** Empty aggregate factories. */
    static JsonValue array();
    static JsonValue object();

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isBool() const { return kind_ == Kind::Bool; }
    bool isString() const { return kind_ == Kind::String; }
    bool isArray() const { return kind_ == Kind::Array; }
    bool isObject() const { return kind_ == Kind::Object; }

    bool
    isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Uint ||
               kind_ == Kind::Double;
    }

    bool asBool() const { return bool_; }
    const std::string &asString() const { return string_; }

    /** Numeric access with integer/double conversion. */
    double asDouble() const;
    std::int64_t asInt() const;
    std::uint64_t asUint() const;

    /** Array/object element count (0 for scalars). */
    std::size_t size() const;

    /** Array element (unchecked index). */
    const JsonValue &at(std::size_t i) const;

    /** Append to an array (converts a Null value to an array). */
    JsonValue &append(JsonValue v);

    /** Append a key/value pair to an object (converts Null). Keys
     *  are kept in insertion order and may not repeat. */
    JsonValue &add(std::string key, JsonValue v);

    /** Object member lookup; nullptr when absent or not an object. */
    const JsonValue *find(std::string_view key) const;

    /** Object member access; osp_panic when absent. */
    const JsonValue &operator[](std::string_view key) const;

    const std::vector<std::pair<std::string, JsonValue>> &
    members() const
    {
        return object_;
    }

    const std::vector<JsonValue> &elements() const { return array_; }

    /**
     * Serialize. @p indent < 0 emits the compact single-line form;
     * >= 0 pretty-prints with that many spaces per level. Both forms
     * are deterministic byte-for-byte given equal documents.
     */
    void write(std::ostream &os, int indent = 2) const;

    /** write() into a string. */
    std::string dump(int indent = 2) const;

    /**
     * Strict parse of a complete JSON document (trailing garbage is
     * an error). On failure returns a Null value, sets *ok to false
     * and, when given, fills @p error with a position-tagged
     * message.
     */
    static JsonValue parse(std::string_view text, bool *ok,
                           std::string *error = nullptr);

  private:
    void writeIndented(std::ostream &os, int indent,
                       int depth) const;

    Kind kind_ = Kind::Null;
    bool bool_ = false;
    std::int64_t int_ = 0;
    std::uint64_t uint_ = 0;
    double double_ = 0.0;
    std::string string_;
    std::vector<JsonValue> array_;
    std::vector<std::pair<std::string, JsonValue>> object_;
};

/** Exact (shortest round-trip) double formatting used by write(). */
std::string jsonNumberToString(double value);

} // namespace osp

#endif // OSP_UTIL_JSON_HH
