#include "json.hh"

#include <array>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <sstream>

#include "logging.hh"

namespace osp
{

std::string
jsonNumberToString(double value)
{
    if (!std::isfinite(value)) {
        // JSON has no NaN/Inf; emitting null keeps documents valid
        // and makes the hole visible to consumers.
        return "null";
    }
    std::array<char, 64> buf{};
    auto res =
        std::to_chars(buf.data(), buf.data() + buf.size(), value);
    std::string s(buf.data(), res.ptr);
    // to_chars shortest form may lack any float marker ("42");
    // that is fine for JSON, whose numbers carry no type.
    return s;
}

JsonValue
JsonValue::array()
{
    JsonValue v;
    v.kind_ = Kind::Array;
    return v;
}

JsonValue
JsonValue::object()
{
    JsonValue v;
    v.kind_ = Kind::Object;
    return v;
}

double
JsonValue::asDouble() const
{
    switch (kind_) {
      case Kind::Int: return static_cast<double>(int_);
      case Kind::Uint: return static_cast<double>(uint_);
      case Kind::Double: return double_;
      default: osp_panic("JsonValue: not a number");
    }
}

std::int64_t
JsonValue::asInt() const
{
    switch (kind_) {
      case Kind::Int: return int_;
      case Kind::Uint: return static_cast<std::int64_t>(uint_);
      case Kind::Double: return static_cast<std::int64_t>(double_);
      default: osp_panic("JsonValue: not a number");
    }
}

std::uint64_t
JsonValue::asUint() const
{
    switch (kind_) {
      case Kind::Int: return static_cast<std::uint64_t>(int_);
      case Kind::Uint: return uint_;
      case Kind::Double: return static_cast<std::uint64_t>(double_);
      default: osp_panic("JsonValue: not a number");
    }
}

std::size_t
JsonValue::size() const
{
    if (kind_ == Kind::Array)
        return array_.size();
    if (kind_ == Kind::Object)
        return object_.size();
    return 0;
}

const JsonValue &
JsonValue::at(std::size_t i) const
{
    if (kind_ != Kind::Array || i >= array_.size())
        osp_panic("JsonValue: bad array access ", i);
    return array_[i];
}

JsonValue &
JsonValue::append(JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Array;
    if (kind_ != Kind::Array)
        osp_panic("JsonValue: append on non-array");
    array_.push_back(std::move(v));
    return *this;
}

JsonValue &
JsonValue::add(std::string key, JsonValue v)
{
    if (kind_ == Kind::Null)
        kind_ = Kind::Object;
    if (kind_ != Kind::Object)
        osp_panic("JsonValue: add on non-object");
    for (const auto &[k, unused] : object_) {
        (void)unused;
        if (k == key)
            osp_panic("JsonValue: duplicate key ", key.c_str());
    }
    object_.emplace_back(std::move(key), std::move(v));
    return *this;
}

const JsonValue *
JsonValue::find(std::string_view key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object_) {
        if (k == key)
            return &v;
    }
    return nullptr;
}

const JsonValue &
JsonValue::operator[](std::string_view key) const
{
    const JsonValue *v = find(key);
    if (!v)
        osp_panic("JsonValue: missing key ",
                  std::string(key).c_str());
    return *v;
}

namespace
{

void
writeEscaped(std::ostream &os, const std::string &s)
{
    os << '"';
    for (char c : s) {
        switch (c) {
          case '"': os << "\\\""; break;
          case '\\': os << "\\\\"; break;
          case '\n': os << "\\n"; break;
          case '\r': os << "\\r"; break;
          case '\t': os << "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                static const char hex[] = "0123456789abcdef";
                os << "\\u00" << hex[(c >> 4) & 0xF]
                   << hex[c & 0xF];
            } else {
                os << c;
            }
        }
    }
    os << '"';
}

void
newlineIndent(std::ostream &os, int indent, int depth)
{
    os << '\n';
    for (int i = 0; i < indent * depth; ++i)
        os << ' ';
}

} // namespace

void
JsonValue::writeIndented(std::ostream &os, int indent,
                         int depth) const
{
    switch (kind_) {
      case Kind::Null:
        os << "null";
        break;
      case Kind::Bool:
        os << (bool_ ? "true" : "false");
        break;
      case Kind::Int:
        os << int_;
        break;
      case Kind::Uint:
        os << uint_;
        break;
      case Kind::Double:
        os << jsonNumberToString(double_);
        break;
      case Kind::String:
        writeEscaped(os, string_);
        break;
      case Kind::Array:
        if (array_.empty()) {
            os << "[]";
            break;
        }
        os << '[';
        for (std::size_t i = 0; i < array_.size(); ++i) {
            if (i)
                os << ',';
            if (indent >= 0)
                newlineIndent(os, indent, depth + 1);
            array_[i].writeIndented(os, indent, depth + 1);
        }
        if (indent >= 0)
            newlineIndent(os, indent, depth);
        os << ']';
        break;
      case Kind::Object:
        if (object_.empty()) {
            os << "{}";
            break;
        }
        os << '{';
        for (std::size_t i = 0; i < object_.size(); ++i) {
            if (i)
                os << ',';
            if (indent >= 0)
                newlineIndent(os, indent, depth + 1);
            writeEscaped(os, object_[i].first);
            os << (indent >= 0 ? ": " : ":");
            object_[i].second.writeIndented(os, indent, depth + 1);
        }
        if (indent >= 0)
            newlineIndent(os, indent, depth);
        os << '}';
        break;
    }
}

void
JsonValue::write(std::ostream &os, int indent) const
{
    writeIndented(os, indent, 0);
}

std::string
JsonValue::dump(int indent) const
{
    std::ostringstream oss;
    write(oss, indent);
    return oss.str();
}

namespace
{

/** Recursive-descent JSON parser over a string_view. */
class Parser
{
  public:
    Parser(std::string_view text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool
    parseDocument(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out, 0))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters");
        return true;
    }

  private:
    static constexpr int maxDepth = 64;

    bool
    fail(const char *what)
    {
        if (error_ && error_->empty()) {
            *error_ = "json parse error at offset " +
                      std::to_string(pos_) + ": " + what;
        }
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) != word)
            return false;
        pos_ += word.size();
        return true;
    }

    bool
    parseString(std::string &out)
    {
        if (!consume('"'))
            return fail("expected string");
        out.clear();
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return fail("bad escape");
            char e = text_[pos_++];
            switch (e) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return fail("bad \\u escape");
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = text_[pos_++];
                    code <<= 4;
                    if (h >= '0' && h <= '9')
                        code |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return fail("bad \\u escape");
                }
                // Basic-plane UTF-8 encoding; the harness only
                // emits the escapes handled above, so surrogate
                // pairs are out of scope.
                if (code < 0x80) {
                    out += static_cast<char>(code);
                } else if (code < 0x800) {
                    out += static_cast<char>(0xC0 | (code >> 6));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                } else {
                    out += static_cast<char>(0xE0 | (code >> 12));
                    out += static_cast<char>(0x80 |
                                             ((code >> 6) & 0x3F));
                    out += static_cast<char>(0x80 | (code & 0x3F));
                }
                break;
              }
              default: return fail("bad escape");
            }
        }
        return fail("unterminated string");
    }

    bool
    parseNumber(JsonValue &out)
    {
        std::size_t start = pos_;
        if (consume('-')) {
        }
        while (pos_ < text_.size() &&
               std::isdigit(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
        bool integral = true;
        if (consume('.')) {
            integral = false;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        if (pos_ < text_.size() &&
            (text_[pos_] == 'e' || text_[pos_] == 'E')) {
            integral = false;
            ++pos_;
            if (pos_ < text_.size() &&
                (text_[pos_] == '+' || text_[pos_] == '-'))
                ++pos_;
            while (pos_ < text_.size() &&
                   std::isdigit(
                       static_cast<unsigned char>(text_[pos_])))
                ++pos_;
        }
        std::string_view token = text_.substr(start, pos_ - start);
        if (token.empty() || token == "-")
            return fail("expected number");
        const char *first = token.data();
        const char *last = token.data() + token.size();
        if (integral && token[0] != '-') {
            std::uint64_t u = 0;
            auto r = std::from_chars(first, last, u);
            if (r.ec == std::errc() && r.ptr == last) {
                out = JsonValue(u);
                return true;
            }
        } else if (integral) {
            std::int64_t i = 0;
            auto r = std::from_chars(first, last, i);
            if (r.ec == std::errc() && r.ptr == last) {
                out = JsonValue(i);
                return true;
            }
        }
        double d = 0.0;
        auto r = std::from_chars(first, last, d);
        if (r.ec != std::errc() || r.ptr != last)
            return fail("bad number");
        out = JsonValue(d);
        return true;
    }

    bool
    parseValue(JsonValue &out, int depth)
    {
        if (depth > maxDepth)
            return fail("nesting too deep");
        skipWs();
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        char c = text_[pos_];
        if (c == '{') {
            ++pos_;
            out = JsonValue::object();
            skipWs();
            if (consume('}'))
                return true;
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (!consume(':'))
                    return fail("expected ':'");
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                if (out.find(key))
                    return fail("duplicate object key");
                out.add(std::move(key), std::move(v));
                skipWs();
                if (consume(','))
                    continue;
                if (consume('}'))
                    return true;
                return fail("expected ',' or '}'");
            }
        }
        if (c == '[') {
            ++pos_;
            out = JsonValue::array();
            skipWs();
            if (consume(']'))
                return true;
            for (;;) {
                JsonValue v;
                if (!parseValue(v, depth + 1))
                    return false;
                out.append(std::move(v));
                skipWs();
                if (consume(','))
                    continue;
                if (consume(']'))
                    return true;
                return fail("expected ',' or ']'");
            }
        }
        if (c == '"') {
            std::string s;
            if (!parseString(s))
                return false;
            out = JsonValue(std::move(s));
            return true;
        }
        if (literal("true")) {
            out = JsonValue(true);
            return true;
        }
        if (literal("false")) {
            out = JsonValue(false);
            return true;
        }
        if (literal("null")) {
            out = JsonValue(nullptr);
            return true;
        }
        return parseNumber(out);
    }

    std::string_view text_;
    std::string *error_;
    std::size_t pos_ = 0;
};

} // namespace

JsonValue
JsonValue::parse(std::string_view text, bool *ok,
                 std::string *error)
{
    JsonValue out;
    Parser p(text, error);
    bool good = p.parseDocument(out);
    if (ok)
        *ok = good;
    if (!good)
        return JsonValue();
    return out;
}

} // namespace osp
