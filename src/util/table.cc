#include "table.hh"

#include <algorithm>
#include <cstdio>

#include "logging.hh"

namespace osp
{

TablePrinter::TablePrinter(std::vector<std::string> hdr)
    : header(std::move(hdr))
{
    if (header.empty())
        osp_panic("TablePrinter requires at least one column");
}

void
TablePrinter::addRow(std::vector<std::string> row)
{
    if (row.size() != header.size()) {
        osp_panic("TablePrinter row has ", row.size(),
                  " cells, expected ", header.size());
    }
    rows.push_back(std::move(row));
}

std::string
TablePrinter::fmt(double value, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
    return buf;
}

std::string
TablePrinter::pct(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision,
                  fraction * 100.0);
    return buf;
}

void
TablePrinter::print(std::ostream &os) const
{
    std::vector<std::size_t> width(header.size());
    for (std::size_t c = 0; c < header.size(); ++c)
        width[c] = header[c].size();
    for (const auto &row : rows)
        for (std::size_t c = 0; c < row.size(); ++c)
            width[c] = std::max(width[c], row[c].size());

    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size()) {
                os << std::string(width[c] - row[c].size() + 2, ' ');
            }
        }
        os << '\n';
    };

    emit(header);
    std::size_t total = 0;
    for (std::size_t c = 0; c < width.size(); ++c)
        total += width[c] + (c + 1 < width.size() ? 2 : 0);
    os << std::string(total, '-') << '\n';
    for (const auto &row : rows)
        emit(row);
}

void
TablePrinter::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << row[c];
            if (c + 1 < row.size())
                os << ',';
        }
        os << '\n';
    };
    emit(header);
    for (const auto &row : rows)
        emit(row);
}

} // namespace osp
