/**
 * @file
 * Stable content hashing for persistence and content addressing.
 *
 * The persistent store (src/store) and the sweep-cell cache
 * (src/driver/cell_cache) both need a hash whose value is part of
 * an on-disk format: it must be identical across platforms, runs,
 * thread counts and compilers, and re-implementable in a few lines
 * of Python (tools/check_store.py validates store files with it).
 * std::hash guarantees none of that, so this is 64-bit FNV-1a —
 * simple, endianness-free (bytes are folded one at a time), and
 * with well-known constants any checker can reproduce.
 *
 * Not a cryptographic hash: keys derived from it are
 * collision-checked by storing the full key context alongside the
 * value (see CellCache).
 */

#ifndef OSP_UTIL_HASH_HH
#define OSP_UTIL_HASH_HH

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

namespace osp
{

/** Streaming 64-bit FNV-1a. */
class StableHash
{
  public:
    static constexpr std::uint64_t offsetBasis =
        0xcbf29ce484222325ULL;
    static constexpr std::uint64_t prime = 0x100000001b3ULL;

    /** Fold raw bytes. */
    StableHash &
    bytes(const void *data, std::size_t len)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < len; ++i) {
            state_ ^= p[i];
            state_ *= prime;
        }
        return *this;
    }

    /** Fold a string's bytes plus a terminator, so consecutive
     *  strings cannot alias ("ab","c" vs "a","bc"). */
    StableHash &
    str(std::string_view s)
    {
        bytes(s.data(), s.size());
        const unsigned char sep = 0x1f;
        return bytes(&sep, 1);
    }

    /** Fold an unsigned 64-bit value, little-endian byte order. */
    StableHash &
    u64(std::uint64_t v)
    {
        unsigned char b[8];
        for (int i = 0; i < 8; ++i)
            b[i] = static_cast<unsigned char>(v >> (8 * i));
        return bytes(b, 8);
    }

    std::uint64_t value() const { return state_; }

    /** 16-digit lowercase hex of value(). */
    std::string
    hex() const
    {
        static const char digits[] = "0123456789abcdef";
        std::string out(16, '0');
        std::uint64_t v = state_;
        for (int i = 15; i >= 0; --i) {
            out[static_cast<std::size_t>(i)] = digits[v & 0xf];
            v >>= 4;
        }
        return out;
    }

  private:
    std::uint64_t state_ = offsetBasis;
};

/** One-shot hash of a byte range. */
inline std::uint64_t
stableHash64(const void *data, std::size_t len)
{
    return StableHash().bytes(data, len).value();
}

/** One-shot hash of a string. */
inline std::uint64_t
stableHash64(std::string_view s)
{
    return stableHash64(s.data(), s.size());
}

} // namespace osp

#endif // OSP_UTIL_HASH_HH
