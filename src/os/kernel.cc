#include "kernel.hh"

#include <algorithm>

#include "util/logging.hh"

namespace osp
{

namespace
{
constexpr std::uint64_t pageBytes = KernelIface::kUserPageBytes;
constexpr std::uint64_t mssBytes = 1448;
/** Pages speculatively filled after a page-cache miss. */
constexpr std::uint32_t readaheadPages = 3;
/** Dirty pages accumulated before a writeback burst. */
constexpr std::uint64_t writebackBatch = 64;
/** Dir pseudo-file-id flag (sys_open of a directory). */
constexpr std::uint64_t dirIdFlag = 0x40000000ULL;
} // namespace

SyntheticKernel::SyntheticKernel(const KernelParams &params)
    : params_(params),
      layout_(makeKernelLayout()),
      vfs_(params.vfs, params.seed),
      net_(layout_.socketArea, params.maxSockets),
      pageCache_(params.pageCachePages, layout_.pageCacheArea.base),
      irq(params.timerPeriod),
      rng(params.seed, 0x05C001ULL)
{
    fdTable.resize(64);
    userPagePresent.assign(params.userSpaceSpan / pageBytes, false);
    entryProf = entryProfile(layout_);
    for (int t = 0; t < numServiceTypes; ++t)
        svcProf[t] = serviceProfile(layout_,
                                    static_cast<ServiceType>(t));
}

std::uint64_t
SyntheticKernel::jitter(std::uint64_t base)
{
    if (params_.opJitter <= 0.0)
        return base;
    double f = rng.uniform(1.0 - params_.opJitter,
                           1.0 + params_.opJitter);
    auto n = static_cast<std::uint64_t>(
        static_cast<double>(base) * f);
    return n ? n : 1;
}

void
SyntheticKernel::compute(CodeGenerator *gen,
                         const CodeProfile &profile,
                         std::uint64_t ops, Region data,
                         PatternKind pattern)
{
    if (gen)
        gen->pushCompute(profile, ops, data, pattern);
}

void
SyntheticKernel::copy(CodeGenerator *gen, ServiceType svc,
                      std::uint64_t bytes, Region src, Region dst)
{
    if (gen)
        gen->pushCopy(copyProfile(layout_, svc), bytes, src, dst);
}

void
SyntheticKernel::planEntry(CodeGenerator *gen)
{
    compute(gen, entryProf, jitter(90), layout_.stack);
}

void
SyntheticKernel::planExit(CodeGenerator *gen)
{
    compute(gen, entryProf, jitter(70), layout_.stack);
}

std::int32_t
SyntheticKernel::allocFd(Fd::Kind kind, std::uint32_t id)
{
    for (std::size_t i = 0; i < fdTable.size(); ++i) {
        if (fdTable[i].kind == Fd::Kind::Free) {
            fdTable[i] = Fd{kind, id, 0, false};
            return static_cast<std::int32_t>(i);
        }
    }
    fdTable.push_back(Fd{kind, id, 0, false});
    return static_cast<std::int32_t>(fdTable.size() - 1);
}

SyntheticKernel::Fd &
SyntheticKernel::fdRef(std::uint64_t fd, const char *who)
{
    if (fd >= fdTable.size() ||
        fdTable[fd].kind == Fd::Kind::Free) {
        osp_panic(who, ": bad file descriptor ", fd);
    }
    return fdTable[fd];
}

bool
SyntheticKernel::touchUserPage(Addr addr)
{
    if (addr >= kernelBase)
        return false;
    std::uint64_t page = addr / pageBytes;
    if (page >= userPagePresent.size())
        return false;
    if (userPagePresent[page])
        return false;
    userPagePresent[page] = true;
    return true;
}

std::optional<ServiceRequest>
SyntheticKernel::pendingInterrupt(InstCount now)
{
    return irq.nextDue(now);
}

ServiceResult
SyntheticKernel::invoke(ServiceType type, const SyscallArgs &args,
                        InstCount now, CodeGenerator *gen)
{
    switch (type) {
      case ServiceType::SysRead: return doRead(args, now, gen);
      case ServiceType::SysWrite: return doWrite(args, now, gen);
      case ServiceType::SysOpen: return doOpen(args, gen);
      case ServiceType::SysClose: return doClose(args, gen);
      case ServiceType::SysStat64: return doStat(args, gen);
      case ServiceType::SysPoll: return doPoll(args, gen);
      case ServiceType::SysSocketcall:
        return doSocketcall(args, now, gen);
      case ServiceType::SysWritev: return doWritev(args, now, gen);
      case ServiceType::SysFcntl64: return doFcntl(args, gen);
      case ServiceType::SysIpc: return doIpc(args, gen);
      case ServiceType::SysGettimeofday:
        return doGettimeofday(gen);
      case ServiceType::SysBrk: return doBrk(args, gen);
      case ServiceType::IntPageFault:
        return doPageFault(args, gen);
      case ServiceType::IntDisk: return doDiskIrq(gen);
      case ServiceType::IntNic: return doNicIrq(now, gen);
      case ServiceType::IntTimer: return doTimerIrq(gen);
      case ServiceType::NumTypes: break;
    }
    osp_panic("SyntheticKernel::invoke: bad service type ",
              static_cast<int>(type));
}

ServiceResult
SyntheticKernel::doRead(const SyscallArgs &args, InstCount now,
                        CodeGenerator *gen)
{
    Fd &fd = fdRef(args.arg0, "sys_read");
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::SysRead)];

    if (fd.kind == Fd::Kind::Socket) {
        planEntry(gen);
        std::uint64_t got = recvBytes(ServiceType::SysRead, fd.id,
                                      args.arg1, args.arg2, gen);
        planExit(gen);
        return ServiceResult{got};
    }

    if (fd.kind == Fd::Kind::Dir) {
        // getdents: enumerate the directory once.
        planEntry(gen);
        if (fd.dirEof) {
            compute(gen, prof, jitter(120), layout_.dentryArea,
                    PatternKind::Random);
            planExit(gen);
            return ServiceResult{0};
        }
        const auto &entries = vfs_.dirFiles(fd.id);
        std::uint64_t bytes = 48ULL * entries.size();
        compute(gen, prof, jitter(150), layout_.dentryArea,
                PatternKind::Random);
        compute(gen, prof, jitter(35) * entries.size(),
                layout_.dentryArea, PatternKind::PointerChase);
        copy(gen, ServiceType::SysRead, bytes, layout_.dentryArea,
             Region{args.arg2, bytes});
        fd.dirEof = true;
        planExit(gen);
        return ServiceResult{bytes};
    }

    // Regular file read through the page cache.
    std::uint64_t size = vfs_.fileSize(fd.id);
    std::uint64_t remaining =
        fd.offset < size ? size - fd.offset : 0;
    std::uint64_t n = std::min<std::uint64_t>(args.arg1, remaining);

    planEntry(gen);
    if (n == 0) {
        compute(gen, prof, jitter(120), layout_.dentryArea,
                PatternKind::Random);
        planExit(gen);
        return ServiceResult{0};
    }

    compute(gen, prof, jitter(220), layout_.dentryArea,
            PatternKind::Random);

    std::uint64_t cursor = fd.offset;
    std::uint64_t end = fd.offset + n;
    std::uint32_t miss_count = 0;
    std::uint32_t total_pages =
        static_cast<std::uint32_t>(size / pageBytes) + 1;

    while (cursor < end) {
        auto page = static_cast<std::uint32_t>(cursor / pageBytes);
        std::uint64_t in_page = pageBytes - (cursor % pageBytes);
        std::uint64_t chunk =
            std::min<std::uint64_t>(in_page, end - cursor);
        Region dst{args.arg2 + (cursor - fd.offset), chunk};

        auto frame = pageCache_.lookup(fd.id, page);
        if (frame) {
            // Fast path: page resident, lock + copy to user.
            compute(gen, prof, jitter(60), layout_.mmArea);
            copy(gen, ServiceType::SysRead, chunk,
                 Region{*frame, pageBytes}, dst);
        } else {
            // Slow path: allocate a frame, submit block I/O,
            // readahead, then copy.
            ++miss_count;
            auto fill = pageCache_.fill(fd.id, page);
            compute(gen, prof, jitter(450), layout_.driverArea,
                    PatternKind::Random);
            compute(gen, prof,
                    jitter(fill.evicted ? 380 : 260),
                    layout_.mmArea, PatternKind::Random);
            compute(gen, prof, jitter(380), layout_.driverArea);
            for (std::uint32_t ra = 1; ra <= readaheadPages; ++ra) {
                std::uint32_t rp = page + ra;
                if (rp >= total_pages)
                    break;
                if (!pageCache_.lookup(fd.id, rp)) {
                    pageCache_.fill(fd.id, rp);
                    compute(gen, prof, jitter(160),
                            layout_.driverArea);
                }
            }
            copy(gen, ServiceType::SysRead, chunk,
                 Region{fill.frameAddr, pageBytes}, dst);
        }
        cursor += chunk;
    }
    fd.offset += n;
    planExit(gen);

    if (miss_count && !diskIrqPending) {
        diskIrqPending = true;
        irq.schedule(ServiceType::IntDisk,
                     now + params_.diskLatency);
    }
    return ServiceResult{n};
}

ServiceResult
SyntheticKernel::doWrite(const SyscallArgs &args, InstCount now,
                         CodeGenerator *gen)
{
    Fd &fd = fdRef(args.arg0, "sys_write");
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::SysWrite)];

    if (fd.kind == Fd::Kind::Socket) {
        planEntry(gen);
        std::uint64_t sent = sendBytes(ServiceType::SysWrite, fd.id,
                                       args.arg1, args.arg2, now,
                                       gen);
        planExit(gen);
        return ServiceResult{sent};
    }

    // File append through the page cache.
    std::uint64_t n = args.arg1;
    planEntry(gen);
    compute(gen, prof, jitter(180), layout_.dentryArea,
            PatternKind::Random);
    std::uint64_t cursor = fd.offset;
    std::uint64_t end = fd.offset + n;
    while (cursor < end) {
        auto page = static_cast<std::uint32_t>(cursor / pageBytes);
        std::uint64_t in_page = pageBytes - (cursor % pageBytes);
        std::uint64_t chunk =
            std::min<std::uint64_t>(in_page, end - cursor);
        auto fill = pageCache_.fill(fd.id, page);
        if (fill.evicted)
            compute(gen, prof, jitter(120), layout_.mmArea,
                    PatternKind::Random);
        copy(gen, ServiceType::SysWrite, chunk,
             Region{args.arg2 + (cursor - fd.offset), chunk},
             Region{fill.frameAddr, pageBytes});
        compute(gen, prof, jitter(80), layout_.mmArea);
        ++dirtyPages;
        cursor += chunk;
    }
    fd.offset += n;

    if (dirtyPages >= writebackBatch) {
        // Periodic writeback burst: walk the dirty list and submit.
        dirtyPages = 0;
        compute(gen, prof, jitter(800), layout_.driverArea,
                PatternKind::Random);
        if (!diskIrqPending) {
            diskIrqPending = true;
            irq.schedule(ServiceType::IntDisk,
                         now + params_.diskLatency);
        }
    }
    planExit(gen);
    return ServiceResult{n};
}

ServiceResult
SyntheticKernel::doOpen(const SyscallArgs &args, CodeGenerator *gen)
{
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::SysOpen)];
    planEntry(gen);

    if (args.arg0 & dirIdFlag) {
        auto dir =
            static_cast<std::uint32_t>(args.arg0 & ~dirIdFlag);
        if (dir >= vfs_.numDirs())
            osp_panic("sys_open: bad dir id ", dir);
        compute(gen, prof, jitter(340), layout_.dentryArea,
                PatternKind::PointerChase);
        compute(gen, prof, jitter(90), layout_.stack);
        planExit(gen);
        return ServiceResult{static_cast<std::uint64_t>(
            allocFd(Fd::Kind::Dir, dir))};
    }

    auto file = static_cast<std::uint32_t>(args.arg0);
    std::uint32_t depth = vfs_.pathDepth(file);
    std::uint32_t misses = vfs_.resolve(file);
    // Cached components walk the dcache hash; missed components
    // allocate dentries and read inodes.
    compute(gen, prof, jitter(120) * (depth - misses),
            layout_.dentryArea, PatternKind::PointerChase);
    compute(gen, prof, jitter(420) * misses, layout_.dentryArea,
            PatternKind::Random);
    compute(gen, prof, jitter(90), layout_.stack);
    planExit(gen);
    return ServiceResult{static_cast<std::uint64_t>(
        allocFd(Fd::Kind::File, file))};
}

ServiceResult
SyntheticKernel::doClose(const SyscallArgs &args, CodeGenerator *gen)
{
    Fd &fd = fdRef(args.arg0, "sys_close");
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::SysClose)];
    planEntry(gen);
    compute(gen, prof, jitter(240), layout_.dentryArea,
            PatternKind::Random);
    if (fd.kind == Fd::Kind::Socket)
        net_.closeSocket(fd.id);
    fd = Fd();
    planExit(gen);
    return ServiceResult{0};
}

ServiceResult
SyntheticKernel::doStat(const SyscallArgs &args, CodeGenerator *gen)
{
    auto file = static_cast<std::uint32_t>(args.arg0);
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::SysStat64)];
    std::uint32_t depth = vfs_.pathDepth(file);
    std::uint32_t misses = vfs_.resolve(file);
    planEntry(gen);
    compute(gen, prof, jitter(150), layout_.dentryArea,
            PatternKind::Random);
    compute(gen, prof, jitter(110) * (depth - misses),
            layout_.dentryArea, PatternKind::PointerChase);
    compute(gen, prof, jitter(380) * misses, layout_.dentryArea,
            PatternKind::Random);
    copy(gen, ServiceType::SysStat64, 128, layout_.dentryArea,
         Region{args.arg1, 128});
    planExit(gen);
    return ServiceResult{vfs_.fileSize(file)};
}

ServiceResult
SyntheticKernel::doPoll(const SyscallArgs &args, CodeGenerator *gen)
{
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::SysPoll)];
    std::uint64_t nfds = std::max<std::uint64_t>(args.arg1 + 1, 1);
    Fd &fd = fdRef(args.arg0, "sys_poll");
    if (fd.kind != Fd::Kind::Socket)
        osp_panic("sys_poll: fd ", args.arg0, " is not a socket");

    planEntry(gen);
    compute(gen, prof, jitter(110) * nfds, layout_.socketArea,
            PatternKind::PointerChase);
    std::uint64_t ready = net_.rxAvailable(fd.id) > 0 ? 1 : 0;
    if (!ready) {
        // Block until the next request arrives: scheduler round trip
        // plus softirq receive processing.
        compute(gen, prof, jitter(1300), layout_.stack,
                PatternKind::Random);
        net_.deliverRx(fd.id, 600);
        ready = 1;
    }
    planExit(gen);
    return ServiceResult{ready};
}

std::uint64_t
SyntheticKernel::sendBytes(ServiceType svc, std::uint32_t sock,
                           std::uint64_t bytes, Addr user_buf,
                           InstCount now, CodeGenerator *gen)
{
    const CodeProfile &prof = svcProf[static_cast<int>(svc)];
    Region skb = net_.skbPool();
    Region sock_buf = net_.socketBuffer(sock);

    compute(gen, prof, jitter(160), layout_.socketArea,
            PatternKind::Random);
    std::uint64_t done = 0;
    while (done < bytes) {
        std::uint64_t seg =
            std::min<std::uint64_t>(mssBytes, bytes - done);
        // TCP segmentation: sk_buff allocation walks the pool.
        compute(gen, prof, jitter(140), skb, PatternKind::Random);
        copy(gen, svc, seg, Region{user_buf + done, seg}, sock_buf);
        done += seg;
    }
    net_.queueTx(sock, bytes);
    if (!nicIrqPending) {
        nicIrqPending = true;
        irq.schedule(ServiceType::IntNic, now + params_.nicLatency);
    }
    return bytes;
}

std::uint64_t
SyntheticKernel::recvBytes(ServiceType svc, std::uint32_t sock,
                           std::uint64_t bytes, Addr user_buf,
                           CodeGenerator *gen)
{
    const CodeProfile &prof = svcProf[static_cast<int>(svc)];
    Region skb = net_.skbPool();

    compute(gen, prof, jitter(150), layout_.socketArea,
            PatternKind::Random);
    std::uint64_t avail = net_.takeRx(sock, bytes);
    if (avail == 0) {
        // Nothing buffered: block; the next client request arrives
        // and is processed by the softirq path before we return.
        compute(gen, prof, jitter(700), skb, PatternKind::Random);
        net_.deliverRx(sock, bytes);
        avail = net_.takeRx(sock, bytes);
    }
    std::uint64_t done = 0;
    while (done < avail) {
        std::uint64_t seg =
            std::min<std::uint64_t>(mssBytes, avail - done);
        compute(gen, prof, jitter(150), skb, PatternKind::Random);
        copy(gen, svc, seg, skb, Region{user_buf + done, seg});
        done += seg;
    }
    return avail;
}

ServiceResult
SyntheticKernel::doSocketcall(const SyscallArgs &args, InstCount now,
                              CodeGenerator *gen)
{
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::SysSocketcall)];
    planEntry(gen);
    ServiceResult result;
    switch (args.arg0) {
      case 0:  // accept
        {
            compute(gen, prof, jitter(850), layout_.socketArea,
                    PatternKind::Random);
            std::uint32_t sock = net_.openSocket();
            result.value = static_cast<std::uint64_t>(
                allocFd(Fd::Kind::Socket, sock));
            break;
        }
      case 1:  // send
        {
            Fd &fd = fdRef(args.arg1, "socketcall(send)");
            result.value = sendBytes(ServiceType::SysSocketcall,
                                     fd.id, args.arg2, 0, now, gen);
            break;
        }
      case 2:  // recv
      default:
        {
            Fd &fd = fdRef(args.arg1, "socketcall(recv)");
            result.value = recvBytes(ServiceType::SysSocketcall,
                                     fd.id, args.arg2, 0, gen);
            break;
        }
    }
    planExit(gen);
    return result;
}

ServiceResult
SyntheticKernel::doWritev(const SyscallArgs &args, InstCount now,
                          CodeGenerator *gen)
{
    Fd &fd = fdRef(args.arg0, "sys_writev");
    if (fd.kind != Fd::Kind::Socket)
        osp_panic("sys_writev: fd ", args.arg0, " is not a socket");
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::SysWritev)];
    std::uint64_t iovcnt = std::max<std::uint64_t>(args.arg2, 1);

    planEntry(gen);
    compute(gen, prof, jitter(200), layout_.socketArea,
            PatternKind::Random);
    compute(gen, prof, jitter(90) * iovcnt, layout_.stack);
    sendBytes(ServiceType::SysWritev, fd.id, args.arg1, 0, now, gen);
    planExit(gen);
    return ServiceResult{args.arg1};
}

ServiceResult
SyntheticKernel::doFcntl(const SyscallArgs &args, CodeGenerator *gen)
{
    fdRef(args.arg0, "sys_fcntl64");
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::SysFcntl64)];
    planEntry(gen);
    compute(gen, prof, jitter(170 + 40 * (args.arg1 % 4)),
            layout_.stack, PatternKind::Random);
    planExit(gen);
    return ServiceResult{0};
}

ServiceResult
SyntheticKernel::doIpc(const SyscallArgs &args, CodeGenerator *gen)
{
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::SysIpc)];
    planEntry(gen);
    compute(gen, prof, jitter(300), layout_.ipcArea,
            PatternKind::Random);
    bool contended = rng.chance(params_.ipcContention);
    if (contended) {
        // Sleeping waiter to wake: scheduler interaction.
        compute(gen, prof, jitter(350), layout_.stack,
                PatternKind::Random);
    }
    planExit(gen);
    return ServiceResult{args.arg0};
}

ServiceResult
SyntheticKernel::doGettimeofday(CodeGenerator *gen)
{
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::SysGettimeofday)];
    planEntry(gen);
    compute(gen, prof, jitter(95), layout_.timeArea);
    planExit(gen);
    return ServiceResult{timerTicks};
}

ServiceResult
SyntheticKernel::doBrk(const SyscallArgs &args, CodeGenerator *gen)
{
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::SysBrk)];
    std::uint64_t pages = (args.arg0 + pageBytes - 1) / pageBytes;
    planEntry(gen);
    compute(gen, prof, jitter(260), layout_.mmArea,
            PatternKind::Random);
    compute(gen, prof, jitter(40) * pages, layout_.mmArea);
    planExit(gen);
    return ServiceResult{pages};
}

ServiceResult
SyntheticKernel::doPageFault(const SyscallArgs &args,
                             CodeGenerator *gen)
{
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::IntPageFault)];
    planEntry(gen);
    // VMA lookup is a tree walk; then anonymous zero-fill.
    compute(gen, prof, jitter(750), layout_.mmArea,
            PatternKind::PointerChase);
    Addr page_base = args.arg0 & ~(pageBytes - 1);
    copy(gen, ServiceType::IntPageFault, pageBytes,
         Region{layout_.mmArea.base, pageBytes},
         Region{page_base, pageBytes});
    planExit(gen);
    return ServiceResult{0};
}

ServiceResult
SyntheticKernel::doDiskIrq(CodeGenerator *gen)
{
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::IntDisk)];
    diskIrqPending = false;
    planEntry(gen);
    compute(gen, prof, jitter(650), layout_.driverArea,
            PatternKind::Random);
    compute(gen, prof, jitter(150), layout_.stack);
    planExit(gen);
    return ServiceResult{0};
}

ServiceResult
SyntheticKernel::doNicIrq(InstCount now, CodeGenerator *gen)
{
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::IntNic)];
    nicIrqPending = false;
    planEntry(gen);
    compute(gen, prof, jitter(380), layout_.driverArea,
            PatternKind::Random);
    std::uint32_t sent = net_.drainTx(64);
    compute(gen, prof, jitter(260) * sent, net_.skbPool(),
            PatternKind::Random);
    if (net_.pendingTxPackets() > 0 && !nicIrqPending) {
        nicIrqPending = true;
        irq.schedule(ServiceType::IntNic,
                     now + params_.nicLatency / 2);
    }
    planExit(gen);
    return ServiceResult{sent};
}

ServiceResult
SyntheticKernel::doTimerIrq(CodeGenerator *gen)
{
    const CodeProfile &prof =
        svcProf[static_cast<int>(ServiceType::IntTimer)];
    ++timerTicks;
    planEntry(gen);
    compute(gen, prof, jitter(820), layout_.timeArea,
            PatternKind::Random);
    if (timerTicks % 4 == 0) {
        // Scheduler tick: runqueue accounting.
        compute(gen, prof, jitter(600), layout_.stack,
                PatternKind::Random);
    }
    planExit(gen);
    return ServiceResult{timerTicks};
}

} // namespace osp
