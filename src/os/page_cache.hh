/**
 * @file
 * The kernel's file page cache.
 *
 * Exact-LRU cache of 4KB file pages with a bounded number of page
 * frames. Each cached (file, page) pair owns a stable frame address
 * inside the layout's pageCacheArea, so repeated reads of a hot page
 * touch the same cache lines — the state-dependence that gives
 * sys_read its multiple behaviour points (paper Sec. 3, Fig. 4):
 * a read served from the page cache executes a short copy path,
 * while a read that misses allocates frames, queues disk I/O and
 * runs several times more instructions.
 */

#ifndef OSP_OS_PAGE_CACHE_HH
#define OSP_OS_PAGE_CACHE_HH

#include <cstdint>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/types.hh"

namespace osp
{

/** See file comment. */
class PageCache
{
  public:
    /**
     * @param capacity_pages number of 4KB frames resident at once
     * @param frame_base     address of frame 0
     * @param frame_spread   the frame allocator rotates over
     *                       capacity_pages * frame_spread distinct
     *                       frame addresses, like a real kernel
     *                       handing out fresh DRAM pages: newly
     *                       filled pages land on cache-cold frames
     *                       instead of recycling a hot compact
     *                       arena (which would make streaming file
     *                       data spuriously L2-resident under large
     *                       caches)
     */
    PageCache(std::uint32_t capacity_pages, Addr frame_base,
              std::uint32_t frame_spread = 8);

    /** Frame address of a cached page, if present (refreshes LRU). */
    std::optional<Addr> lookup(std::uint32_t file,
                               std::uint32_t page);

    /** Result of a fill. */
    struct FillResult
    {
        Addr frameAddr = 0;
        bool evicted = false;  //!< a victim page was displaced
    };

    /**
     * Insert a (file, page) mapping, evicting the LRU page if the
     * cache is full. Filling an already-present page just refreshes
     * it.
     */
    FillResult fill(std::uint32_t file, std::uint32_t page);

    /** Drop every page of @p file (e.g. on truncate). */
    void invalidateFile(std::uint32_t file);

    /** Number of resident pages. */
    std::uint32_t residentPages() const
    {
        return static_cast<std::uint32_t>(map.size());
    }

    std::uint32_t capacity() const { return capacityPages; }

    /** Lifetime lookup hits / misses (lookup() only). */
    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

  private:
    static std::uint64_t
    key(std::uint32_t file, std::uint32_t page)
    {
        return (static_cast<std::uint64_t>(file) << 32) | page;
    }

    struct Entry
    {
        std::uint64_t key;
        std::uint32_t frame;
    };

    /** Next cold frame from the rotating pool. */
    std::uint32_t allocFrame();

    std::uint32_t capacityPages;
    Addr frameBase;
    std::uint32_t poolFrames;
    std::uint32_t nextFrame = 0;
    std::vector<bool> frameInUse;
    /** MRU at front. */
    std::list<Entry> lru;
    std::unordered_map<std::uint64_t, std::list<Entry>::iterator> map;
    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
};

} // namespace osp

#endif // OSP_OS_PAGE_CACHE_HH
