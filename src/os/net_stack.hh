/**
 * @file
 * A minimal in-kernel network stack: sockets, transmit backlog and
 * an sk_buff pool.
 *
 * Transmit work queued by sys_write / sys_writev / sys_socketcall is
 * drained later by the NIC interrupt handler (Int_121); the number
 * of packets pending when the interrupt fires determines how much
 * work the handler does, which is exactly the kind of
 * environment-dependent behaviour variation the paper observes for
 * interrupt services.
 */

#ifndef OSP_OS_NET_STACK_HH
#define OSP_OS_NET_STACK_HH

#include <cstdint>
#include <vector>

#include "sim/code_profile.hh"
#include "util/types.hh"

namespace osp
{

/** See file comment. */
class NetStack
{
  public:
    /**
     * @param buffer_area region holding all socket buffers and the
     *                    sk_buff pool
     * @param max_sockets socket-table size
     */
    NetStack(Region buffer_area, std::uint32_t max_sockets = 16);

    /** Allocate a socket; returns its id. */
    std::uint32_t openSocket();

    /** Release a socket (pending tx is dropped). */
    void closeSocket(std::uint32_t sock);

    /** Queue @p bytes for transmission; returns queued packets
     *  (1448-byte MSS segments). */
    std::uint32_t queueTx(std::uint32_t sock, std::uint64_t bytes);

    /** Make @p bytes available for reception on @p sock. */
    void deliverRx(std::uint32_t sock, std::uint64_t bytes);

    /** Consume up to @p max_bytes of received data; returns the
     *  number of bytes actually taken. */
    std::uint64_t takeRx(std::uint32_t sock, std::uint64_t max_bytes);

    /** Received bytes waiting on @p sock. */
    std::uint64_t rxAvailable(std::uint32_t sock) const;

    /**
     * Drain up to @p max_packets from the global transmit backlog
     * (NIC handler); returns the number of packets sent.
     */
    std::uint32_t drainTx(std::uint32_t max_packets);

    /** Packets waiting in the transmit backlog. */
    std::uint32_t pendingTxPackets() const { return txBacklog; }

    /** Buffer region of one socket (for handler data accesses). */
    Region socketBuffer(std::uint32_t sock) const;

    /** The shared sk_buff pool region (hot on every tx/rx path). */
    Region skbPool() const { return skbPool_; }

    std::uint32_t maxSockets() const
    {
        return static_cast<std::uint32_t>(sockets.size());
    }

  private:
    struct Socket
    {
        bool open = false;
        std::uint64_t rxAvail = 0;
    };

    std::vector<Socket> sockets;
    std::uint32_t txBacklog = 0;
    Region area;
    Region skbPool_;
    std::uint64_t perSocketBytes = 0;
};

} // namespace osp

#endif // OSP_OS_NET_STACK_HH
