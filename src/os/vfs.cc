#include "vfs.hh"

#include <cmath>

#include "util/logging.hh"

namespace osp
{

Vfs::Vfs(const VfsParams &p, std::uint64_t seed) : params(p)
{
    Pcg32 rng(seed, 0xF5F5ULL);
    dirs.resize(params.numDirs);
    double log_min =
        std::log(static_cast<double>(params.fileSizeMin));
    double log_max =
        std::log(static_cast<double>(params.fileSizeMax));
    for (std::uint32_t d = 0; d < params.numDirs; ++d) {
        std::uint32_t count = static_cast<std::uint32_t>(
            rng.rangeInclusive(params.filesPerDirMin,
                               params.filesPerDirMax));
        for (std::uint32_t i = 0; i < count; ++i) {
            FileInfo info;
            info.size = static_cast<std::uint64_t>(
                std::exp(rng.uniform(log_min, log_max)));
            info.dir = d;
            // '/usr/<sub>/.../file': 3-6 components.
            info.depth = static_cast<std::uint32_t>(
                rng.rangeInclusive(3, 6));
            std::uint32_t id =
                static_cast<std::uint32_t>(files.size());
            files.push_back(info);
            dirs[d].push_back(id);
        }
    }
}

std::uint32_t
Vfs::addFile(std::uint64_t size_bytes, std::uint32_t path_components)
{
    FileInfo info;
    info.size = size_bytes;
    info.dir = 0;
    info.depth = path_components;
    std::uint32_t id = static_cast<std::uint32_t>(files.size());
    files.push_back(info);
    if (dirs.empty())
        dirs.resize(1);
    dirs[0].push_back(id);
    return id;
}

const std::vector<std::uint32_t> &
Vfs::dirFiles(std::uint32_t dir) const
{
    if (dir >= dirs.size())
        osp_panic("Vfs::dirFiles: bad dir id ", dir);
    return dirs[dir];
}

std::uint64_t
Vfs::fileSize(std::uint32_t file) const
{
    if (file >= files.size())
        osp_panic("Vfs::fileSize: bad file id ", file);
    return files[file].size;
}

std::uint32_t
Vfs::pathDepth(std::uint32_t file) const
{
    if (file >= files.size())
        osp_panic("Vfs::pathDepth: bad file id ", file);
    return files[file].depth;
}

bool
Vfs::touchDentry(std::uint64_t key)
{
    auto it = dentryMap.find(key);
    if (it != dentryMap.end()) {
        dentryLru.splice(dentryLru.begin(), dentryLru, it->second);
        return false;
    }
    if (dentryMap.size() >= params.dentryCapacity) {
        std::uint64_t victim = dentryLru.back();
        dentryLru.pop_back();
        dentryMap.erase(victim);
        ++evictions;
    }
    dentryLru.push_front(key);
    dentryMap[key] = dentryLru.begin();
    return true;
}

std::uint32_t
Vfs::resolve(std::uint32_t file)
{
    if (file >= files.size())
        osp_panic("Vfs::resolve: bad file id ", file);
    const FileInfo &info = files[file];
    std::uint32_t misses = 0;
    // Components share prefixes within a directory: model the
    // component keys as (dir, level) for the prefix plus a final
    // per-file key, so sibling files reuse cached prefix dentries.
    for (std::uint32_t level = 0; level + 1 < info.depth; ++level) {
        std::uint64_t key =
            (static_cast<std::uint64_t>(info.dir) << 8) | level;
        if (touchDentry(key))
            ++misses;
    }
    std::uint64_t leaf = 0x100000000ULL + file;
    if (touchDentry(leaf))
        ++misses;
    return misses;
}

} // namespace osp
