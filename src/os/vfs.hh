/**
 * @file
 * A synthetic file-system tree with a dentry cache.
 *
 * Generates a deterministic directory tree (for the du / find-od
 * workloads, which walk '/usr') and supports registering extra files
 * with exact sizes (the web server's eight documents of
 * Sec. 5.2). Path resolution cost depends on the number of path
 * components and on whether each component's dentry is cached — the
 * state that differentiates sys_open / sys_stat64 behaviour points.
 */

#ifndef OSP_OS_VFS_HH
#define OSP_OS_VFS_HH

#include <cstdint>
#include <list>
#include <unordered_map>
#include <vector>

#include "util/random.hh"

namespace osp
{

/** Shape of the generated tree. */
struct VfsParams
{
    std::uint32_t numDirs = 160;
    std::uint32_t filesPerDirMin = 4;
    std::uint32_t filesPerDirMax = 24;
    /** File sizes are log-uniform between these bounds (bytes). */
    std::uint64_t fileSizeMin = 2 * 1024;
    std::uint64_t fileSizeMax = 96 * 1024;
    /** Dentry-cache capacity (entries) before LRU eviction. */
    std::uint32_t dentryCapacity = 4096;
};

/** See file comment. */
class Vfs
{
  public:
    Vfs(const VfsParams &params, std::uint64_t seed);

    /** Register an extra file (e.g. a web document); returns its
     *  file id. */
    std::uint32_t addFile(std::uint64_t size_bytes,
                          std::uint32_t path_components = 3);

    std::uint32_t numDirs() const
    {
        return static_cast<std::uint32_t>(dirs.size());
    }

    std::uint32_t numFiles() const
    {
        return static_cast<std::uint32_t>(files.size());
    }

    /** File ids contained in directory @p dir. */
    const std::vector<std::uint32_t> &dirFiles(std::uint32_t dir)
        const;

    std::uint64_t fileSize(std::uint32_t file) const;

    /** Number of path components of the file (resolution depth). */
    std::uint32_t pathDepth(std::uint32_t file) const;

    /**
     * Resolve a path: returns how many of the components missed the
     * dentry cache (0 = fully cached fast path) and inserts all of
     * them. Mirrors Linux's path_walk: each miss costs a slow
     * hash-chain allocation in the handler's plan.
     */
    std::uint32_t resolve(std::uint32_t file);

    /** Total dentry-cache insertions that evicted an entry. */
    std::uint64_t dentryEvictions() const { return evictions; }

  private:
    struct FileInfo
    {
        std::uint64_t size;
        std::uint32_t dir;
        std::uint32_t depth;
    };

    /** Touch one dentry key; returns true on miss. */
    bool touchDentry(std::uint64_t key);

    VfsParams params;
    std::vector<FileInfo> files;
    std::vector<std::vector<std::uint32_t>> dirs;
    // Dentry cache: key -> LRU iterator.
    std::list<std::uint64_t> dentryLru;
    std::unordered_map<std::uint64_t,
                       std::list<std::uint64_t>::iterator>
        dentryMap;
    std::uint64_t evictions = 0;
};

} // namespace osp

#endif // OSP_OS_VFS_HH
