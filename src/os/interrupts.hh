/**
 * @file
 * Asynchronous interrupt scheduling.
 *
 * Events are keyed to retired-instruction counts rather than cycles:
 * the predictor replaces detailed simulation of OS services with
 * emulation, and interrupt arrival must be identical either way or
 * prediction would perturb functional behaviour (DESIGN.md,
 * substitution table). The periodic timer (Int_239) re-arms itself;
 * device completions (Int_49 disk, Int_121 NIC) are scheduled by the
 * service handlers that initiate I/O.
 */

#ifndef OSP_OS_INTERRUPTS_HH
#define OSP_OS_INTERRUPTS_HH

#include <optional>
#include <queue>
#include <vector>

#include "sim/service_types.hh"
#include "util/types.hh"

namespace osp
{

/** See file comment. */
class InterruptController
{
  public:
    /**
     * @param timer_period instructions between timer ticks
     *                     (0 disables the periodic timer)
     */
    explicit InterruptController(InstCount timer_period);

    /** Schedule a one-shot interrupt at the given instruction
     *  count. */
    void schedule(ServiceType type, InstCount at,
                  SyscallArgs args = {});

    /**
     * The next interrupt due at or before @p now, if any. The timer
     * re-arms automatically when delivered.
     */
    std::optional<ServiceRequest> nextDue(InstCount now);

    /** Pending one-shot events (excludes the self-arming timer). */
    std::size_t pending() const { return heap.size(); }

    /**
     * Instruction count of the earliest pending event (one-shot or
     * timer), or InstCount max when nothing will ever fire. Exact:
     * nextDue(now) returns an event iff now >= nextDueAt().
     */
    InstCount
    nextDueAt() const
    {
        InstCount due = ~InstCount(0);
        if (!heap.empty())
            due = heap.top().at;
        if (timerPeriod_ && nextTimerAt < due)
            due = nextTimerAt;
        return due;
    }

    InstCount timerPeriod() const { return timerPeriod_; }

  private:
    struct Event
    {
        InstCount at;
        ServiceType type;
        SyscallArgs args;

        bool
        operator>(const Event &o) const
        {
            return at > o.at;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>>
        heap;
    InstCount timerPeriod_;
    InstCount nextTimerAt;
};

} // namespace osp

#endif // OSP_OS_INTERRUPTS_HH
