/**
 * @file
 * The kernel's address-space layout and per-service code profiles.
 *
 * The synthetic kernel occupies the top of the flat address space
 * (like the 3GB/1GB x86 Linux split the paper's guest used). Each
 * service handler executes out of its own code sub-region, so the
 * kernel's aggregate instruction footprint (~430KB) is much larger
 * than the 16KB L1I — the main reason OS IPC is characteristically
 * low (paper Fig. 3b) — and, together with the kernel data
 * structures, contends with the application for L2 space, which is
 * what makes the L2-size experiments (Figs. 2, 10, 12) interesting
 * for OS-intensive workloads.
 */

#ifndef OSP_OS_LAYOUT_HH
#define OSP_OS_LAYOUT_HH

#include "sim/code_profile.hh"
#include "sim/service_types.hh"
#include "util/types.hh"

namespace osp
{

/** Boundary between user and kernel addresses. */
inline constexpr Addr kernelBase = 0xC0000000ULL;

/** Kernel address-space map. */
struct KernelLayout
{
    /** Shared syscall/interrupt entry+exit stub code. */
    Region entryCode{0xC0000000ULL, 8 * 1024};
    /** Per-service handler code (filled in by makeKernelLayout). */
    Region serviceCode[numServiceTypes];
    /** Kernel stacks / thread_info. */
    Region stack{0xC0800000ULL, 16 * 1024};
    /** Dentry + inode caches (VFS metadata). */
    Region dentryArea{0xC0900000ULL, 256 * 1024};
    /** Socket structures and sk_buff pool. Sized so the transmit
     *  path's working set thrashes a 512KB L2 but fits 1MB
     *  (iperf's 2x speedup in the paper's Fig. 2). */
    Region socketArea{0xC0A00000ULL, 640 * 1024};
    /** Device driver rings and DMA descriptors. */
    Region driverArea{0xC0B00000ULL, 64 * 1024};
    /** struct page array, page tables, mm bookkeeping. */
    Region mmArea{0xC0C00000ULL, 128 * 1024};
    /** SysV IPC structures (semaphores, message queues). */
    Region ipcArea{0xC0D00000ULL, 32 * 1024};
    /** Timekeeping (jiffies, timer wheel). */
    Region timeArea{0xC0D80000ULL, 16 * 1024};
    /** Page-cache page frames (4KB each). */
    Region pageCacheArea{0xD0000000ULL, 64ULL * 1024 * 1024};
};

/** Build the layout, packing per-service code regions. */
KernelLayout makeKernelLayout();

/** Code footprint (bytes) of one service's handler. */
std::uint64_t serviceCodeFootprint(ServiceType type);

/**
 * The instruction-mix profile a service handler executes with.
 * Kernel code is branchy, serial (short dependency distances) and
 * has poor spatial locality compared to application loops.
 */
CodeProfile serviceProfile(const KernelLayout &layout,
                           ServiceType type);

/** Profile of the shared kernel entry/exit stubs. */
CodeProfile entryProfile(const KernelLayout &layout);

/**
 * Profile of a tight kernel copy loop (copy_to_user and friends):
 * tiny code footprint, long straight-line runs, well-predicted.
 * The code region is the first 4KB of the owning service's region.
 */
CodeProfile copyProfile(const KernelLayout &layout, ServiceType type);

} // namespace osp

#endif // OSP_OS_LAYOUT_HH
