#include "interrupts.hh"

namespace osp
{

InterruptController::InterruptController(InstCount timer_period)
    : timerPeriod_(timer_period),
      nextTimerAt(timer_period ? timer_period : ~InstCount(0))
{
}

void
InterruptController::schedule(ServiceType type, InstCount at,
                              SyscallArgs args)
{
    heap.push(Event{at, type, args});
}

std::optional<ServiceRequest>
InterruptController::nextDue(InstCount now)
{
    // Deliver whichever of (device events, timer) is due first.
    bool device_due = !heap.empty() && heap.top().at <= now;
    bool timer_due = timerPeriod_ && nextTimerAt <= now;

    if (device_due &&
        (!timer_due || heap.top().at <= nextTimerAt)) {
        Event e = heap.top();
        heap.pop();
        ServiceRequest req;
        req.type = e.type;
        req.args = e.args;
        return req;
    }
    if (timer_due) {
        nextTimerAt += timerPeriod_;
        ServiceRequest req;
        req.type = ServiceType::IntTimer;
        return req;
    }
    return std::nullopt;
}

} // namespace osp
