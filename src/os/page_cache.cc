#include "page_cache.hh"

#include "util/logging.hh"

namespace osp
{

PageCache::PageCache(std::uint32_t capacity_pages, Addr frame_base,
                     std::uint32_t frame_spread)
    : capacityPages(capacity_pages), frameBase(frame_base)
{
    if (capacity_pages == 0)
        osp_fatal("PageCache capacity must be >= 1 page");
    if (frame_spread == 0)
        frame_spread = 1;
    poolFrames = capacity_pages * frame_spread;
    frameInUse.assign(poolFrames, false);
}

std::uint32_t
PageCache::allocFrame()
{
    // At most capacityPages of poolFrames are in use, so this scan
    // terminates quickly.
    while (frameInUse[nextFrame])
        nextFrame = (nextFrame + 1) % poolFrames;
    std::uint32_t frame = nextFrame;
    frameInUse[frame] = true;
    nextFrame = (nextFrame + 1) % poolFrames;
    return frame;
}

std::optional<Addr>
PageCache::lookup(std::uint32_t file, std::uint32_t page)
{
    auto it = map.find(key(file, page));
    if (it == map.end()) {
        ++misses_;
        return std::nullopt;
    }
    ++hits_;
    lru.splice(lru.begin(), lru, it->second);
    return frameBase + 4096ULL * it->second->frame;
}

PageCache::FillResult
PageCache::fill(std::uint32_t file, std::uint32_t page)
{
    FillResult result;
    std::uint64_t k = key(file, page);
    auto it = map.find(k);
    if (it != map.end()) {
        lru.splice(lru.begin(), lru, it->second);
        result.frameAddr = frameBase + 4096ULL * it->second->frame;
        return result;
    }

    if (map.size() >= capacityPages) {
        // Evict the LRU page; its frame returns to the cold pool
        // (and is not reused until the allocator wraps around).
        Entry victim = lru.back();
        lru.pop_back();
        map.erase(victim.key);
        frameInUse[victim.frame] = false;
        result.evicted = true;
    }
    std::uint32_t frame = allocFrame();
    lru.push_front(Entry{k, frame});
    map[k] = lru.begin();
    result.frameAddr = frameBase + 4096ULL * frame;
    return result;
}

void
PageCache::invalidateFile(std::uint32_t file)
{
    for (auto it = lru.begin(); it != lru.end();) {
        if ((it->key >> 32) == file) {
            frameInUse[it->frame] = false;
            map.erase(it->key);
            it = lru.erase(it);
        } else {
            ++it;
        }
    }
}

} // namespace osp
