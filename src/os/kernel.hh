/**
 * @file
 * The synthetic kernel: a stateful model of the Linux 2.6-era
 * services the paper's workloads exercise.
 *
 * Each handler does two things in a single invoke() call: it
 * *functionally* executes the service against kernel state (page
 * cache, dentry cache, sockets, fd table), and it *plans* the
 * instruction stream the service executes, as work items pushed
 * into a CodeGenerator. Detailed simulation and fast emulation both
 * consume the same plan, so the invocation's instruction count — the
 * paper's behaviour signature — is identical in either mode.
 *
 * Behaviour points arise from state- and parameter-dependent paths,
 * exactly as in the real kernel: a sys_read served from the page
 * cache plans a short copy; one that misses plans block-layer
 * submission, page allocation, and schedules a disk-completion
 * interrupt; sys_open cost depends on how many path components miss
 * the dentry cache; Int_121 cost depends on the transmit backlog;
 * Int_239 runs a longer path every few ticks (scheduler tick).
 *
 * Syscall ABI (SyscallArgs):
 *   sys_read          arg0=fd, arg1=bytes, arg2=user buffer addr
 *   sys_write         arg0=fd, arg1=bytes, arg2=user buffer addr
 *   sys_open          arg0=file id                    -> fd
 *   sys_close         arg0=fd
 *   sys_stat64        arg0=file id                    -> size
 *   sys_poll          arg0=nfds, arg1=socket fd       -> ready count
 *   sys_socketcall    arg0=op (0 accept, 1 send, 2 recv),
 *                     arg1=fd (send/recv), arg2=bytes -> fd / bytes
 *   sys_writev        arg0=fd, arg1=total bytes, arg2=iov count
 *   sys_fcntl64       arg0=fd, arg1=cmd
 *   sys_ipc           arg0=op
 *   sys_gettimeofday  (none)
 *   sys_brk           arg0=bytes grown
 *   Int_14            arg0=faulting address
 */

#ifndef OSP_OS_KERNEL_HH
#define OSP_OS_KERNEL_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "interrupts.hh"
#include "layout.hh"
#include "net_stack.hh"
#include "page_cache.hh"
#include "sim/interfaces.hh"
#include "util/random.hh"
#include "vfs.hh"

namespace osp
{

/** Kernel configuration. */
struct KernelParams
{
    /** Instructions between timer ticks (0 disables the timer).
     *  Default models ~1ms at 4GHz and OS-ish IPC. */
    InstCount timerPeriod = 1500000;
    /** Instructions from disk-I/O submission to Int_49. */
    InstCount diskLatency = 250000;
    /** Instructions from packet queueing to Int_121. */
    InstCount nicLatency = 25000;
    /** Page-cache frames (4KB each). */
    std::uint32_t pageCachePages = 1024;
    VfsParams vfs;
    std::uint32_t maxSockets = 16;
    /** Extent of fault-tracked user address space (covers the
     *  whole UserLayout: code, heap, I/O buffers and stacks). */
    Addr userSpaceSpan = 1024ULL * 1024 * 1024;
    /** +-fraction of plan-size jitter (invocation-to-invocation
     *  variation within one behaviour point). */
    double opJitter = 0.015;
    /** Probability a sys_ipc operation finds the semaphore
     *  contended (extra wakeup path). */
    double ipcContention = 0.25;
    std::uint64_t seed = 1;
};

/** See file comment. */
class SyntheticKernel : public KernelIface
{
  public:
    explicit SyntheticKernel(const KernelParams &params);

    // KernelIface
    ServiceResult invoke(ServiceType type, const SyscallArgs &args,
                         InstCount now, CodeGenerator *gen) override;
    std::optional<ServiceRequest>
    pendingInterrupt(InstCount now) override;
    InstCount nextInterruptAt() const override
    {
        return irq.nextDueAt();
    }
    bool touchUserPage(Addr addr) override;

    /** Subsystem access (workload setup and tests). */
    Vfs &vfs() { return vfs_; }
    NetStack &net() { return net_; }
    PageCache &pageCache() { return pageCache_; }
    const KernelLayout &layout() const { return layout_; }
    const KernelParams &params() const { return params_; }

  private:
    /** File-descriptor table entry. */
    struct Fd
    {
        enum class Kind : std::uint8_t { Free, File, Dir, Socket };
        Kind kind = Kind::Free;
        std::uint32_t id = 0;       //!< file / dir / socket id
        std::uint64_t offset = 0;   //!< file read/write position
        bool dirEof = false;
    };

    /** Jittered op count: base * (1 +- opJitter). */
    std::uint64_t jitter(std::uint64_t base);

    /** Plan helpers; all are no-ops when gen is null. */
    void compute(CodeGenerator *gen, const CodeProfile &profile,
                 std::uint64_t ops, Region data,
                 PatternKind pattern = PatternKind::Sequential);
    void copy(CodeGenerator *gen, ServiceType svc,
              std::uint64_t bytes, Region src, Region dst);
    void planEntry(CodeGenerator *gen);
    void planExit(CodeGenerator *gen);

    std::int32_t allocFd(Fd::Kind kind, std::uint32_t id);
    Fd &fdRef(std::uint64_t fd, const char *who);

    // Handlers.
    ServiceResult doRead(const SyscallArgs &args, InstCount now,
                         CodeGenerator *gen);
    ServiceResult doWrite(const SyscallArgs &args, InstCount now,
                          CodeGenerator *gen);
    ServiceResult doOpen(const SyscallArgs &args, CodeGenerator *gen);
    ServiceResult doClose(const SyscallArgs &args,
                          CodeGenerator *gen);
    ServiceResult doStat(const SyscallArgs &args, CodeGenerator *gen);
    ServiceResult doPoll(const SyscallArgs &args, CodeGenerator *gen);
    ServiceResult doSocketcall(const SyscallArgs &args, InstCount now,
                               CodeGenerator *gen);
    ServiceResult doWritev(const SyscallArgs &args, InstCount now,
                           CodeGenerator *gen);
    ServiceResult doFcntl(const SyscallArgs &args,
                          CodeGenerator *gen);
    ServiceResult doIpc(const SyscallArgs &args, CodeGenerator *gen);
    ServiceResult doGettimeofday(CodeGenerator *gen);
    ServiceResult doBrk(const SyscallArgs &args, CodeGenerator *gen);
    ServiceResult doPageFault(const SyscallArgs &args,
                              CodeGenerator *gen);
    ServiceResult doDiskIrq(CodeGenerator *gen);
    ServiceResult doNicIrq(InstCount now, CodeGenerator *gen);
    ServiceResult doTimerIrq(CodeGenerator *gen);

    /** Socket transmit path shared by write/send/writev. */
    std::uint64_t sendBytes(ServiceType svc, std::uint32_t sock,
                            std::uint64_t bytes, Addr user_buf,
                            InstCount now, CodeGenerator *gen);
    /** Socket receive path shared by read/recv. */
    std::uint64_t recvBytes(ServiceType svc, std::uint32_t sock,
                            std::uint64_t bytes, Addr user_buf,
                            CodeGenerator *gen);

    KernelParams params_;
    KernelLayout layout_;
    Vfs vfs_;
    NetStack net_;
    PageCache pageCache_;
    InterruptController irq;
    Pcg32 rng;

    std::vector<Fd> fdTable;
    std::vector<bool> userPagePresent;
    std::uint64_t dirtyPages = 0;
    std::uint64_t timerTicks = 0;
    bool diskIrqPending = false;
    bool nicIrqPending = false;

    // Cached per-service profiles.
    CodeProfile entryProf;
    CodeProfile svcProf[numServiceTypes];
};

} // namespace osp

#endif // OSP_OS_KERNEL_HH
