#include "net_stack.hh"

#include "util/logging.hh"

namespace osp
{

namespace
{
constexpr std::uint64_t mssBytes = 1448;
} // namespace

NetStack::NetStack(Region buffer_area, std::uint32_t max_sockets)
    : area(buffer_area)
{
    if (max_sockets == 0)
        osp_fatal("NetStack needs at least one socket");
    sockets.resize(max_sockets);
    // Half the area is per-socket buffers, half is the skb pool.
    perSocketBytes = (area.size / 2) / max_sockets;
    if (perSocketBytes < 4096)
        osp_fatal("NetStack buffer area too small: ", area.size);
    skbPool_ = Region{area.base + area.size / 2, area.size / 2};
}

std::uint32_t
NetStack::openSocket()
{
    for (std::uint32_t s = 0; s < sockets.size(); ++s) {
        if (!sockets[s].open) {
            sockets[s].open = true;
            sockets[s].rxAvail = 0;
            return s;
        }
    }
    osp_fatal("NetStack: socket table exhausted");
}

void
NetStack::closeSocket(std::uint32_t sock)
{
    if (sock >= sockets.size() || !sockets[sock].open)
        osp_panic("NetStack::closeSocket: bad socket ", sock);
    sockets[sock].open = false;
    sockets[sock].rxAvail = 0;
}

std::uint32_t
NetStack::queueTx(std::uint32_t sock, std::uint64_t bytes)
{
    if (sock >= sockets.size() || !sockets[sock].open)
        osp_panic("NetStack::queueTx: bad socket ", sock);
    auto packets = static_cast<std::uint32_t>(
        (bytes + mssBytes - 1) / mssBytes);
    txBacklog += packets;
    return packets;
}

void
NetStack::deliverRx(std::uint32_t sock, std::uint64_t bytes)
{
    if (sock >= sockets.size() || !sockets[sock].open)
        osp_panic("NetStack::deliverRx: bad socket ", sock);
    sockets[sock].rxAvail += bytes;
}

std::uint64_t
NetStack::takeRx(std::uint32_t sock, std::uint64_t max_bytes)
{
    if (sock >= sockets.size() || !sockets[sock].open)
        osp_panic("NetStack::takeRx: bad socket ", sock);
    std::uint64_t taken = sockets[sock].rxAvail < max_bytes
                              ? sockets[sock].rxAvail
                              : max_bytes;
    sockets[sock].rxAvail -= taken;
    return taken;
}

std::uint64_t
NetStack::rxAvailable(std::uint32_t sock) const
{
    if (sock >= sockets.size())
        osp_panic("NetStack::rxAvailable: bad socket ", sock);
    return sockets[sock].rxAvail;
}

std::uint32_t
NetStack::drainTx(std::uint32_t max_packets)
{
    std::uint32_t sent =
        txBacklog < max_packets ? txBacklog : max_packets;
    txBacklog -= sent;
    return sent;
}

Region
NetStack::socketBuffer(std::uint32_t sock) const
{
    if (sock >= sockets.size())
        osp_panic("NetStack::socketBuffer: bad socket ", sock);
    return Region{area.base + sock * perSocketBytes, perSocketBytes};
}

} // namespace osp
