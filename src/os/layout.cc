#include "layout.hh"

namespace osp
{

std::uint64_t
serviceCodeFootprint(ServiceType type)
{
    switch (type) {
      case ServiceType::SysRead: return 48 * 1024;
      case ServiceType::SysWrite: return 32 * 1024;
      case ServiceType::SysOpen: return 40 * 1024;
      case ServiceType::SysClose: return 12 * 1024;
      case ServiceType::SysPoll: return 24 * 1024;
      case ServiceType::SysSocketcall: return 48 * 1024;
      case ServiceType::SysStat64: return 24 * 1024;
      case ServiceType::SysWritev: return 40 * 1024;
      case ServiceType::SysFcntl64: return 8 * 1024;
      case ServiceType::SysIpc: return 16 * 1024;
      case ServiceType::SysGettimeofday: return 4 * 1024;
      case ServiceType::SysBrk: return 12 * 1024;
      case ServiceType::IntPageFault: return 24 * 1024;
      case ServiceType::IntDisk: return 32 * 1024;
      case ServiceType::IntNic: return 48 * 1024;
      case ServiceType::IntTimer: return 16 * 1024;
      case ServiceType::NumTypes: break;
    }
    return 16 * 1024;
}

KernelLayout
makeKernelLayout()
{
    KernelLayout layout;
    Addr cursor = layout.entryCode.base + layout.entryCode.size;
    for (int t = 0; t < numServiceTypes; ++t) {
        std::uint64_t bytes =
            serviceCodeFootprint(static_cast<ServiceType>(t));
        layout.serviceCode[t] = Region{cursor, bytes};
        cursor += bytes;
    }
    return layout;
}

CodeProfile
serviceProfile(const KernelLayout &layout, ServiceType type)
{
    CodeProfile p;
    p.loadFrac = 0.28;
    p.storeFrac = 0.12;
    p.branchFrac = 0.20;
    p.fpFrac = 0.0;
    p.depChance = 0.50;
    p.depDistMean = 2.5;
    p.branchRandomFrac = 0.12;
    p.code = layout.serviceCode[static_cast<int>(type)];
    p.blockRunBytes = 128;  // branchy kernel code: short runs
    return p;
}

CodeProfile
entryProfile(const KernelLayout &layout)
{
    CodeProfile p;
    p.loadFrac = 0.30;
    p.storeFrac = 0.25;  // context save/restore is store-heavy
    p.branchFrac = 0.08;
    p.depChance = 0.35;
    p.depDistMean = 4.0;
    p.branchRandomFrac = 0.05;
    p.code = layout.entryCode;
    p.blockRunBytes = 512;  // straight-line stub code
    return p;
}

CodeProfile
copyProfile(const KernelLayout &layout, ServiceType type)
{
    CodeProfile p;
    // Mix fractions are ignored by pushCopy (it emits a fixed
    // load/store/alu/branch pattern); only the code region and
    // block-run length matter.
    p.branchRandomFrac = 0.0;
    const Region &svc = layout.serviceCode[static_cast<int>(type)];
    p.code = Region{svc.base, 4 * 1024};
    p.blockRunBytes = 2048;  // tight unrolled loop
    return p;
}

} // namespace osp
