#include "metrics.hh"

#include "util/logging.hh"

namespace osp::obs
{

namespace
{

/** Panic helper for a (component, name) registered as two types. */
[[noreturn]] void
duplicateKind(const std::pair<std::string, std::string> &key)
{
    osp_panic("obs::Registry: '", key.first, "/", key.second,
              "' already registered as a different instrument type");
}

} // namespace

Counter &
Registry::counter(const std::string &component,
                  const std::string &name)
{
    Key key{component, name};
    if (gauges_.count(key) || histograms_.count(key))
        duplicateKind(key);
    return counters_[std::move(key)];
}

Gauge &
Registry::gauge(const std::string &component, const std::string &name)
{
    Key key{component, name};
    if (counters_.count(key) || histograms_.count(key))
        duplicateKind(key);
    return gauges_[std::move(key)];
}

Histogram &
Registry::histogram(const std::string &component,
                    const std::string &name)
{
    Key key{component, name};
    if (counters_.count(key) || gauges_.count(key))
        duplicateKind(key);
    return histograms_[std::move(key)];
}

std::size_t
Registry::size() const
{
    return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsSnapshot
Registry::snapshot() const
{
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto &[key, c] : counters_)
        snap.counters.push_back({key.first, key.second, c.value()});
    snap.gauges.reserve(gauges_.size());
    for (const auto &[key, g] : gauges_)
        snap.gauges.push_back({key.first, key.second, g.value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto &[key, h] : histograms_) {
        HistogramEntry e;
        e.component = key.first;
        e.name = key.second;
        e.count = h.count();
        e.sum = h.sum();
        for (std::size_t i = 0; i < Histogram::numBuckets; ++i) {
            if (h.bucket(i))
                e.buckets.emplace_back(Histogram::bucketLow(i),
                                       h.bucket(i));
        }
        snap.histograms.push_back(std::move(e));
    }
    return snap;
}

std::uint64_t
MetricsSnapshot::counterValue(std::string_view component,
                              std::string_view name) const
{
    for (const auto &c : counters) {
        if (c.component == component && c.name == name)
            return c.value;
    }
    return 0;
}

} // namespace osp::obs
