#include "metrics.hh"

#include "util/logging.hh"

namespace osp::obs
{

namespace
{

/** Panic helper for a (component, name) registered as two types. */
[[noreturn]] void
duplicateKind(const std::pair<std::string, std::string> &key)
{
    osp_panic("obs::Registry: '", key.first, "/", key.second,
              "' already registered as a different instrument type");
}

} // namespace

Counter &
Registry::counter(const std::string &component,
                  const std::string &name)
{
    Key key{component, name};
    if (gauges_.count(key) || histograms_.count(key))
        duplicateKind(key);
    return counters_[std::move(key)];
}

Gauge &
Registry::gauge(const std::string &component, const std::string &name)
{
    Key key{component, name};
    if (counters_.count(key) || histograms_.count(key))
        duplicateKind(key);
    return gauges_[std::move(key)];
}

Histogram &
Registry::histogram(const std::string &component,
                    const std::string &name)
{
    Key key{component, name};
    if (counters_.count(key) || gauges_.count(key))
        duplicateKind(key);
    return histograms_[std::move(key)];
}

std::size_t
Registry::size() const
{
    return counters_.size() + gauges_.size() + histograms_.size();
}

MetricsSnapshot
Registry::snapshot() const
{
    MetricsSnapshot snap;
    snap.counters.reserve(counters_.size());
    for (const auto &[key, c] : counters_)
        snap.counters.push_back({key.first, key.second, c.value()});
    snap.gauges.reserve(gauges_.size());
    for (const auto &[key, g] : gauges_)
        snap.gauges.push_back({key.first, key.second, g.value()});
    snap.histograms.reserve(histograms_.size());
    for (const auto &[key, h] : histograms_)
        snap.histograms.push_back(
            histogramEntry(key.first, key.second, h));
    return snap;
}

HistogramEntry
histogramEntry(std::string component, std::string name,
               const Histogram &h)
{
    HistogramEntry e;
    e.component = std::move(component);
    e.name = std::move(name);
    e.count = h.count();
    e.sum = h.sum();
    for (std::size_t i = 0; i < Histogram::numBuckets; ++i) {
        if (h.bucket(i))
            e.buckets.emplace_back(Histogram::bucketLow(i),
                                   h.bucket(i));
    }
    return e;
}

std::uint64_t
MetricsSnapshot::counterValue(std::string_view component,
                              std::string_view name) const
{
    for (const auto &c : counters) {
        if (c.component == component && c.name == name)
            return c.value;
    }
    return 0;
}

const HistogramEntry *
MetricsSnapshot::findHistogram(std::string_view component,
                               std::string_view name) const
{
    for (const auto &h : histograms) {
        if (h.component == component && h.name == name)
            return &h;
    }
    return nullptr;
}

namespace
{

/** Order entries the way Registry::snapshot emits them. */
template <typename Entry>
int
compareKeys(const Entry &a, const Entry &b)
{
    if (int c = a.component.compare(b.component))
        return c;
    return a.name.compare(b.name);
}

/** Merge two (component, name)-sorted entry vectors; matching keys
 *  are combined with @p combine, the rest copied through in order. */
template <typename Entry, typename Combine>
std::vector<Entry>
mergeSorted(std::vector<Entry> a, const std::vector<Entry> &b,
            Combine combine)
{
    std::vector<Entry> out;
    out.reserve(a.size() + b.size());
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        int c = compareKeys(a[i], b[j]);
        if (c < 0) {
            out.push_back(std::move(a[i++]));
        } else if (c > 0) {
            out.push_back(b[j++]);
        } else {
            combine(a[i], b[j]);
            out.push_back(std::move(a[i]));
            ++i;
            ++j;
        }
    }
    for (; i < a.size(); ++i)
        out.push_back(std::move(a[i]));
    for (; j < b.size(); ++j)
        out.push_back(b[j]);
    return out;
}

/** Merge sorted (low, count) bucket lists, summing matching lows. */
std::vector<std::pair<std::uint64_t, std::uint64_t>>
mergeBuckets(
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> &a,
    const std::vector<std::pair<std::uint64_t, std::uint64_t>> &b)
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    out.reserve(a.size() + b.size());
    std::size_t i = 0, j = 0;
    while (i < a.size() && j < b.size()) {
        if (a[i].first < b[j].first) {
            out.push_back(a[i++]);
        } else if (a[i].first > b[j].first) {
            out.push_back(b[j++]);
        } else {
            out.emplace_back(a[i].first,
                             a[i].second + b[j].second);
            ++i;
            ++j;
        }
    }
    for (; i < a.size(); ++i)
        out.push_back(a[i]);
    for (; j < b.size(); ++j)
        out.push_back(b[j]);
    return out;
}

} // namespace

void
MetricsSnapshot::merge(const MetricsSnapshot &other)
{
    counters = mergeSorted(std::move(counters), other.counters,
                           [](CounterEntry &a, const CounterEntry &b) {
                               a.value += b.value;
                           });
    gauges = mergeSorted(std::move(gauges), other.gauges,
                         [](GaugeEntry &a, const GaugeEntry &b) {
                             if (b.value > a.value)
                                 a.value = b.value;
                         });
    histograms = mergeSorted(
        std::move(histograms), other.histograms,
        [](HistogramEntry &a, const HistogramEntry &b) {
            a.count += b.count;
            a.sum += b.sum;
            a.buckets = mergeBuckets(a.buckets, b.buckets);
        });
}

} // namespace osp::obs
