#include "accuracy.hh"

#include <cmath>

#include "stats/student_t.hh"

namespace osp::obs
{

double
accuracyCi95(const RunningStats &stats)
{
    if (stats.count() < 2)
        return 0.0;
    // Two-sided 95% = one-sided alpha 0.025.
    double t = studentTCritical(stats.count() - 1, 0.025);
    return t * stats.sampleStddev() /
           std::sqrt(static_cast<double>(stats.count()));
}

void
AccuracyLedger::notePrediction(std::uint8_t service,
                               std::uint32_t cluster,
                               std::uint64_t predicted_cycles,
                               bool outlier)
{
    Accum &a = entries_[Key{service, cluster}];
    ++a.predictions;
    if (outlier)
        ++a.outlierPredictions;
    a.predictedCycles += predicted_cycles;
}

void
AccuracyLedger::noteAudit(std::uint8_t service,
                          std::uint32_t cluster,
                          const AuditSample &sample)
{
    Accum &a = entries_[Key{service, cluster}];
    ++a.audits;
    if (sample.failed)
        ++a.auditFailures;
    if (sample.actualCycles > 0.0) {
        a.err.add((sample.predictedCycles - sample.actualCycles) /
                  sample.actualCycles);
    }
    if (sample.actualL2Misses > 0.0) {
        a.miss.add(
            (sample.predictedL2Misses - sample.actualL2Misses) /
            sample.actualL2Misses);
    }
    if (sample.actualIpc > 0.0) {
        a.ipc.add((sample.predictedIpc - sample.actualIpc) /
                  sample.actualIpc);
    }
}

AccuracySnapshot
AccuracyLedger::snapshot() const
{
    AccuracySnapshot snap;
    snap.tolerance = tolerance_;
    snap.totalCycles = totalCycles_;
    snap.predictedCycles = predictedCycles_;
    snap.entries.reserve(entries_.size());
    for (const auto &[key, a] : entries_) {
        AccuracyEntry e;
        e.service = key.first;
        e.cluster = key.second;
        e.predictions = a.predictions;
        e.outlierPredictions = a.outlierPredictions;
        e.predictedCycles = a.predictedCycles;
        e.audits = a.audits;
        e.auditFailures = a.auditFailures;
        e.errCount = a.err.count();
        e.errMean = a.err.mean();
        e.errM2 = a.err.count()
                      ? a.err.sampleVariance() *
                            static_cast<double>(a.err.count() - 1)
                      : 0.0;
        e.errMin = a.err.count() ? a.err.min() : 0.0;
        e.errMax = a.err.count() ? a.err.max() : 0.0;
        e.missCount = a.miss.count();
        e.missMean = a.miss.mean();
        e.ipcCount = a.ipc.count();
        e.ipcMean = a.ipc.mean();
        e.hasCi = e.errCount >= 2;
        e.ci95 = accuracyCi95(a.err);
        // Drift: the whole CI outside the +-tolerance band — we are
        // 95% confident the cluster's mean error exceeds what the
        // audit check tolerates.
        e.drift = e.hasCi && (e.errMean - e.ci95 > tolerance_ ||
                              e.errMean + e.ci95 < -tolerance_);
        snap.entries.push_back(e);
    }
    return snap;
}

AccuracyRollup
rollupAccuracy(const AccuracySnapshot &snapshot)
{
    AccuracyRollup r;
    for (const AccuracyEntry &e : snapshot.entries) {
        r.predictions += e.predictions;
        r.outlierPredictions += e.outlierPredictions;
        r.predictedCycles += e.predictedCycles;
        r.audits += e.audits;
        r.auditFailures += e.auditFailures;
        r.err.merge(e.errStats());
        if (e.drift)
            ++r.driftingClusters;
        if (e.errCount == 0)
            r.unattributedCycles += e.predictedCycles;
    }
    r.hasCi = r.err.count() >= 2;
    r.ci95 = accuracyCi95(r.err);
    if (snapshot.totalCycles > 0 && r.err.count() > 0) {
        // Extrapolate the pooled per-invocation audit error to the
        // run: audits sample every auditEvery-th prediction, so the
        // pooled mean estimates the error of the whole predicted
        // mass, which is predictedCycles / totalCycles of the run.
        double share =
            static_cast<double>(snapshot.predictedCycles) /
            static_cast<double>(snapshot.totalCycles);
        double unaudited = std::max(0.0, 1.0 - share);
        r.estRelTotalErr = r.err.mean() * share;
        // Sampling noise of the audited mass, plus a 1-sigma bound
        // on the unobservable deviation of the unaudited mass (see
        // AccuracyRollup::estCi95).
        r.estCi95 =
            r.ci95 * share + r.err.sampleStddev() * unaudited;
        r.hasEstimate = true;
    }
    return r;
}

} // namespace osp::obs
