/**
 * @file
 * A bounded ring-buffer tracer for per-invocation simulator events.
 *
 * Aggregate counters (obs/metrics.hh) answer "how often"; the tracer
 * answers "in what order" — when each service moved between
 * learning and prediction, which cluster matched which invocation,
 * where the pollution injector actually landed. Events are
 * fixed-size PODs stamped with the simulated instruction count (the
 * only clock the determinism contract allows), recorded into a
 * preallocated ring that overwrites the oldest entry on overflow, so
 * tracing cost and memory are bounded no matter how long a run is.
 *
 * A tracer constructed with capacity 0 is *disabled*: record() is a
 * single predictable branch, which is what keeps always-compiled-in
 * telemetry within the harness's overhead budget.
 *
 * The event vocabulary is deliberately small and predictor-centric —
 * it exists to expose the learn/predict machinery the paper's claims
 * are about, not to be a general logging bus.
 */

#ifndef OSP_OBS_TRACE_HH
#define OSP_OBS_TRACE_HH

#include <cstdint>
#include <vector>

namespace osp::obs
{

/** What one trace event describes. Payload fields a/b per kind. */
enum class TraceEventKind : std::uint8_t
{
    /** A fully simulated OS-service interval ended.
     *  a = instructions, b = measured cycles. */
    ServiceDetailed = 0,
    /** An emulated (predicted) interval ended.
     *  a = instructions, b = predicted cycles. */
    ServicePredicted,
    /** A prediction matched a regular PLT cluster.
     *  a = cluster index, b = signature instruction count. */
    ClusterMatch,
    /** A prediction matched no cluster (outlier).
     *  a = signature instruction count, b = outlier entries now
     *  tracked for the service. */
    Outlier,
    /** The predictor changed phase.
     *  a = from, b = to (0 warm-up, 1 learning, 2 predicting). */
    ModeTransition,
    /** A re-learning window opened.
     *  a = reason (0 outlier policy, 1 audit drift), b = window. */
    Relearn,
    /** An audit sample was compared against the PLT.
     *  a = 1 pass / 0 fail, b = consecutive failures after it. */
    Audit,
    /** The pollution injector modelled a skipped service's cache
     *  displacement. a = lines requested, b = slots affected. */
    Pollution,
};

/** Display name ("service-detailed", "cluster-match", ...). */
const char *traceEventKindName(TraceEventKind kind);

/** One fixed-size trace record. */
struct TraceEvent
{
    /** Total retired instructions when the event was recorded. */
    std::uint64_t tick = 0;
    std::uint64_t a = 0;  //!< kind-specific payload
    std::uint64_t b = 0;  //!< kind-specific payload
    TraceEventKind kind = TraceEventKind::ServiceDetailed;
    /** ServiceType index the event concerns; 0xff = whole machine. */
    std::uint8_t service = 0xff;
};

/** Marker for events not tied to one service type. */
inline constexpr std::uint8_t traceNoService = 0xff;

/** See file comment. */
class EventTracer
{
  public:
    /** @param capacity ring size in events; 0 disables tracing. */
    explicit EventTracer(std::size_t capacity = 0)
        : capacity_(capacity)
    {
        ring_.reserve(capacity);
    }

    bool enabled() const { return capacity_ != 0; }
    std::size_t capacity() const { return capacity_; }

    /** Advance the event clock (the machine's instruction count). */
    void setTick(std::uint64_t tick) { tick_ = tick; }
    std::uint64_t tick() const { return tick_; }

    /** Record one event at the current tick. No-op when disabled. */
    void
    record(TraceEventKind kind, std::uint8_t service,
           std::uint64_t a, std::uint64_t b)
    {
        if (!capacity_)
            return;
        TraceEvent ev;
        ev.tick = tick_;
        ev.a = a;
        ev.b = b;
        ev.kind = kind;
        ev.service = service;
        if (ring_.size() < capacity_) {
            ring_.push_back(ev);
        } else {
            ring_[head_] = ev;
            head_ = (head_ + 1) % capacity_;
        }
        ++recorded_;
    }

    /** Events ever offered to the ring (kept + overwritten). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events lost to overflow (oldest-first overwrite). */
    std::uint64_t
    dropped() const
    {
        return recorded_ - ring_.size();
    }

    /** Retained events, oldest first. */
    std::vector<TraceEvent> events() const;

  private:
    std::size_t capacity_;
    std::vector<TraceEvent> ring_;
    std::size_t head_ = 0;  //!< oldest entry once the ring is full
    std::uint64_t recorded_ = 0;
    std::uint64_t tick_ = 0;
};

} // namespace osp::obs

#endif // OSP_OBS_TRACE_HH
