/**
 * @file
 * JSON codec for MetricsSnapshot, shared by every on-disk telemetry
 * encoding (ospredict-cell-v1 cache values, ospredict-worker-v1 fleet
 * snapshots).
 *
 * The format is part of the cell cache's byte-identity contract:
 * counters and gauges as compact [component, name, value] arrays,
 * histograms as keyed objects with occupied buckets listed as
 * [low, count] pairs. Changing a single byte here invalidates every
 * cached cell, so additions must be new keys, never reshapes.
 */

#ifndef OSP_OBS_SNAPSHOT_IO_HH
#define OSP_OBS_SNAPSHOT_IO_HH

#include "obs/metrics.hh"
#include "util/json.hh"

namespace osp::obs
{

/** Encode a snapshot; inverse of metricsSnapshotFromJson. */
JsonValue metricsSnapshotToJson(const MetricsSnapshot &m);

/** Decode into @p m (appending to its vectors); false on any
 *  malformed structure, leaving @p m partially filled. */
bool metricsSnapshotFromJson(const JsonValue &v, MetricsSnapshot &m);

} // namespace osp::obs

#endif // OSP_OBS_SNAPSHOT_IO_HH
