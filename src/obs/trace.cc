#include "trace.hh"

namespace osp::obs
{

const char *
traceEventKindName(TraceEventKind kind)
{
    switch (kind) {
      case TraceEventKind::ServiceDetailed:
        return "service-detailed";
      case TraceEventKind::ServicePredicted:
        return "service-predicted";
      case TraceEventKind::ClusterMatch: return "cluster-match";
      case TraceEventKind::Outlier: return "outlier";
      case TraceEventKind::ModeTransition:
        return "mode-transition";
      case TraceEventKind::Relearn: return "relearn";
      case TraceEventKind::Audit: return "audit";
      case TraceEventKind::Pollution: return "pollution";
    }
    return "?";
}

std::vector<TraceEvent>
EventTracer::events() const
{
    std::vector<TraceEvent> out;
    out.reserve(ring_.size());
    for (std::size_t i = 0; i < ring_.size(); ++i)
        out.push_back(ring_[(head_ + i) % ring_.size()]);
    return out;
}

} // namespace osp::obs
