/**
 * @file
 * Typed simulator metrics: counters, gauges and histograms behind a
 * per-run registry.
 *
 * The registry exists so a sweep cell's internal behaviour —
 * predictor phase transitions, PLT occupancy, pollution-injector
 * effectiveness — can be surfaced in the results document without
 * each component growing ad-hoc stats plumbing. Design constraints,
 * in order:
 *
 *  - *Determinism.* Snapshots enumerate instruments in sorted
 *    (component, name) order, so two runs that perform the same work
 *    serialize byte-identically — the sweep harness extends its
 *    thread-count-invariance contract over the telemetry section.
 *  - *Zero cost when detached.* Components hold instrument pointers
 *    that are null until a Telemetry sink is attached; the untaken
 *    branch on a null pointer is the entire disabled-path cost, and
 *    nothing is ever looked up by name on a hot path.
 *  - *Stable addresses.* Instruments live in node-based maps, so the
 *    pointers cached at attach time survive later registrations.
 *
 * One registry belongs to one simulator instance (sweep cell); it is
 * deliberately not thread-safe. Parallelism in this repo is across
 * cells, never within one.
 */

#ifndef OSP_OBS_METRICS_HH
#define OSP_OBS_METRICS_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace osp::obs
{

/** A monotonically increasing unsigned count. */
class Counter
{
  public:
    void inc(std::uint64_t n = 1) { value_ += n; }
    std::uint64_t value() const { return value_; }

  private:
    std::uint64_t value_ = 0;
};

/** A point-in-time value; set() overwrites. */
class Gauge
{
  public:
    void set(double v) { value_ = v; }
    double value() const { return value_; }

  private:
    double value_ = 0.0;
};

/**
 * A power-of-two-bucketed histogram of unsigned samples. Bucket i
 * holds values whose bit width is i (bucket 0 is the value 0, bucket
 * i covers [2^(i-1), 2^i - 1]), which is exact enough for the
 * order-of-magnitude questions telemetry answers (interval sizes,
 * predicted miss counts) at a fixed 65-word footprint.
 */
class Histogram
{
  public:
    static constexpr std::size_t numBuckets = 65;

    void
    observe(std::uint64_t value)
    {
        ++buckets_[bucketOf(value)];
        ++count_;
        sum_ += value;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }

    /** Occupancy of one bucket. */
    std::uint64_t bucket(std::size_t i) const { return buckets_[i]; }

    /** Bucket index for a value (its bit width). */
    static std::size_t
    bucketOf(std::uint64_t value)
    {
        std::size_t width = 0;
        while (value) {
            ++width;
            value >>= 1;
        }
        return width;
    }

    /** Inclusive lower bound of bucket i. */
    static std::uint64_t
    bucketLow(std::size_t i)
    {
        return i ? 1ULL << (i - 1) : 0;
    }

  private:
    std::uint64_t buckets_[numBuckets] = {};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
};

/** One counter in a snapshot. */
struct CounterEntry
{
    std::string component;
    std::string name;
    std::uint64_t value = 0;
};

/** One gauge in a snapshot. */
struct GaugeEntry
{
    std::string component;
    std::string name;
    double value = 0.0;
};

/** One histogram in a snapshot; only occupied buckets are listed,
 *  as (inclusive lower bound, count) pairs in ascending order. */
struct HistogramEntry
{
    std::string component;
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> buckets;
};

/** A registry's full state, in sorted (component, name) order. */
struct MetricsSnapshot
{
    std::vector<CounterEntry> counters;
    std::vector<GaugeEntry> gauges;
    std::vector<HistogramEntry> histograms;

    bool
    empty() const
    {
        return counters.empty() && gauges.empty() &&
               histograms.empty();
    }

    /** Counter value lookup (tests, aggregation); 0 when absent. */
    std::uint64_t counterValue(std::string_view component,
                               std::string_view name) const;

    /** Histogram lookup by (component, name); nullptr when absent. */
    const HistogramEntry *
    findHistogram(std::string_view component,
                  std::string_view name) const;

    /**
     * Fold @p other into this snapshot, instrument by instrument.
     * Counters sum; histograms add count/sum and merge their
     * (low, count) bucket lists (exact, since both sides share the
     * power-of-two bucket layout); gauges keep the high-water value,
     * the only order-independent reduction for point-in-time
     * readings. Instruments present on one side only are copied.
     * Both snapshots must be in sorted (component, name) order —
     * everything Registry::snapshot or metricsSnapshotFromJson
     * produces is — and the result preserves that order, so merging
     * is deterministic regardless of worker arrival order.
     */
    void merge(const MetricsSnapshot &other);
};

/** Snapshot entry for one live histogram (shared by Registry
 *  snapshots and ad-hoc instrument exports). */
HistogramEntry histogramEntry(std::string component, std::string name,
                              const Histogram &h);

/** See file comment. */
class Registry
{
  public:
    /**
     * Find or create an instrument. The returned reference is
     * stable for the registry's lifetime. Registering the same
     * (component, name) under two different instrument types is a
     * bug and panics.
     */
    Counter &counter(const std::string &component,
                     const std::string &name);
    Gauge &gauge(const std::string &component,
                 const std::string &name);
    Histogram &histogram(const std::string &component,
                         const std::string &name);

    /** Number of registered instruments (all types). */
    std::size_t size() const;

    /** Enumerate everything in sorted (component, name) order. */
    MetricsSnapshot snapshot() const;

  private:
    using Key = std::pair<std::string, std::string>;

    /** One sorted map per type: node-based, so instrument addresses
     *  are stable and snapshot order is the key order. */
    std::map<Key, Counter> counters_;
    std::map<Key, Gauge> gauges_;
    std::map<Key, Histogram> histograms_;
};

} // namespace osp::obs

#endif // OSP_OBS_METRICS_HH
