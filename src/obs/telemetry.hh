/**
 * @file
 * The telemetry sink instrumented components attach to: one metrics
 * registry plus one event tracer, owned together because they share
 * a lifetime (one simulator instance / sweep cell) and a clock (the
 * tracer's tick, advanced by the Machine).
 *
 * Producers (Machine, Accelerator, ServicePredictor) accept a
 * `Telemetry *` that defaults to null; every instrumentation site is
 * either a null-pointer branch or an increment through a pointer
 * cached at attach time, so runs without a sink pay nothing
 * measurable. The sweep runner owns one Telemetry per cell and
 * serializes both halves into the results document after the run.
 */

#ifndef OSP_OBS_TELEMETRY_HH
#define OSP_OBS_TELEMETRY_HH

#include "metrics.hh"
#include "trace.hh"

namespace osp::obs
{

/** See file comment. */
struct Telemetry
{
    /** @param trace_capacity event-ring size; 0 = metrics only. */
    explicit Telemetry(std::size_t trace_capacity = 0)
        : tracer(trace_capacity)
    {
    }

    Registry registry;
    EventTracer tracer;
};

/** Serializable summary of a tracer's state. */
struct TraceSummary
{
    std::uint64_t capacity = 0;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
};

inline TraceSummary
summarize(const EventTracer &tracer)
{
    return {tracer.capacity(), tracer.recorded(), tracer.dropped()};
}

} // namespace osp::obs

#endif // OSP_OBS_TELEMETRY_HH
