/**
 * @file
 * The telemetry sink instrumented components attach to: one metrics
 * registry, one event tracer, and one prediction-accuracy ledger,
 * owned together because they share a lifetime (one simulator
 * instance / sweep cell) and a clock (the tracer's tick, advanced
 * by the Machine).
 *
 * Producers (Machine, Accelerator, ServicePredictor) accept a
 * `Telemetry *` that defaults to null; every instrumentation site is
 * either a null-pointer branch or an increment through a pointer
 * cached at attach time, so runs without a sink pay nothing
 * measurable. The sweep runner owns one Telemetry per cell and
 * serializes all three parts into the results document after the
 * run.
 */

#ifndef OSP_OBS_TELEMETRY_HH
#define OSP_OBS_TELEMETRY_HH

#include "accuracy.hh"
#include "metrics.hh"
#include "trace.hh"
#include "util/logging.hh"

namespace osp::obs
{

/** See file comment. */
struct Telemetry
{
    /** @param trace_capacity event-ring size; 0 = metrics only. */
    explicit Telemetry(std::size_t trace_capacity = 0)
        : tracer(trace_capacity)
    {
    }

    Registry registry;
    EventTracer tracer;
    AccuracyLedger accuracy;
};

/** Serializable summary of a tracer's state. */
struct TraceSummary
{
    std::uint64_t capacity = 0;
    std::uint64_t recorded = 0;
    std::uint64_t dropped = 0;
};

inline TraceSummary
summarize(const EventTracer &tracer)
{
    return {tracer.capacity(), tracer.recorded(), tracer.dropped()};
}

/**
 * Emit one warn() covering every overflowed ring of a document
 * being serialized (a truncated trace silently missing its oldest
 * events is exactly the kind of artifact that misleads later
 * analysis). Serializers call this once per document with the
 * totals they observed; it is silent when nothing was dropped.
 */
inline void
warnIfDropped(const char *what, std::uint64_t rings_with_drops,
              std::uint64_t total_dropped)
{
    if (total_dropped == 0)
        return;
    warn("telemetry: ", what, ": ", total_dropped,
         " trace event(s) dropped across ", rings_with_drops,
         " ring(s); oldest events are missing - raise the trace "
         "capacity for complete traces");
}

} // namespace osp::obs

#endif // OSP_OBS_TELEMETRY_HH
