#include "snapshot_io.hh"

namespace osp::obs
{

JsonValue
metricsSnapshotToJson(const MetricsSnapshot &m)
{
    JsonValue v = JsonValue::object();
    JsonValue counters = JsonValue::array();
    for (const auto &c : m.counters) {
        JsonValue e = JsonValue::array();
        e.append(c.component);
        e.append(c.name);
        e.append(c.value);
        counters.append(std::move(e));
    }
    v.add("counters", std::move(counters));
    JsonValue gauges = JsonValue::array();
    for (const auto &g : m.gauges) {
        JsonValue e = JsonValue::array();
        e.append(g.component);
        e.append(g.name);
        e.append(g.value);
        gauges.append(std::move(e));
    }
    v.add("gauges", std::move(gauges));
    JsonValue histograms = JsonValue::array();
    for (const auto &h : m.histograms) {
        JsonValue e = JsonValue::object();
        e.add("component", h.component);
        e.add("name", h.name);
        e.add("count", h.count);
        e.add("sum", h.sum);
        JsonValue buckets = JsonValue::array();
        for (const auto &[low, count] : h.buckets) {
            JsonValue b = JsonValue::array();
            b.append(low);
            b.append(count);
            buckets.append(std::move(b));
        }
        e.add("buckets", std::move(buckets));
        histograms.append(std::move(e));
    }
    v.add("histograms", std::move(histograms));
    return v;
}

bool
metricsSnapshotFromJson(const JsonValue &v, MetricsSnapshot &m)
{
    if (!v.isObject())
        return false;
    const JsonValue *counters = v.find("counters");
    const JsonValue *gauges = v.find("gauges");
    const JsonValue *histograms = v.find("histograms");
    if (!counters || !gauges || !histograms)
        return false;
    for (const JsonValue &e : counters->elements()) {
        if (!e.isArray() || e.size() != 3)
            return false;
        CounterEntry c;
        c.component = e.at(0).asString();
        c.name = e.at(1).asString();
        c.value = e.at(2).asUint();
        m.counters.push_back(std::move(c));
    }
    for (const JsonValue &e : gauges->elements()) {
        if (!e.isArray() || e.size() != 3)
            return false;
        GaugeEntry g;
        g.component = e.at(0).asString();
        g.name = e.at(1).asString();
        g.value = e.at(2).asDouble();
        m.gauges.push_back(std::move(g));
    }
    for (const JsonValue &e : histograms->elements()) {
        if (!e.isObject())
            return false;
        const JsonValue *component = e.find("component");
        const JsonValue *name = e.find("name");
        const JsonValue *count = e.find("count");
        const JsonValue *sum = e.find("sum");
        const JsonValue *buckets = e.find("buckets");
        if (!component || !name || !count || !sum || !buckets)
            return false;
        HistogramEntry h;
        h.component = component->asString();
        h.name = name->asString();
        h.count = count->asUint();
        h.sum = sum->asUint();
        for (const JsonValue &b : buckets->elements()) {
            if (!b.isArray() || b.size() != 2)
                return false;
            h.buckets.emplace_back(b.at(0).asUint(),
                                   b.at(1).asUint());
        }
        m.histograms.push_back(std::move(h));
    }
    return true;
}

} // namespace osp::obs
