/**
 * @file
 * The prediction-accuracy ledger: audit-driven error distributions
 * per (service type, PLT cluster).
 *
 * The paper's headline claims are accuracy claims (3.2% average
 * execution-time error, Sec. 5), yet a live run can normally only
 * check them offline, against a full-detail oracle re-run. The
 * predictor's audit samples (every auditEvery-th prediction is
 * simulated in detail and compared with what the PLT would have
 * said) are exactly an online error estimate — this module stops
 * discarding them. For every audited prediction it accumulates the
 * signed relative error of cycles, L2 misses and IPC into Welford
 * accumulators keyed by (service, cluster), puts a Student-t 95%
 * confidence interval on the mean relative cycle error, and flags
 * *drift* when that interval lies entirely outside the configured
 * audit tolerance band — i.e. when the data says the cluster is
 * systematically wrong, not merely noisy.
 *
 * Because each prediction also books its predicted-cycle mass under
 * the cluster that produced it, the end-to-end execution-time error
 * decomposes into named culprits: contribution of a cluster ~
 * mean_rel_err x predicted_cycles / total_cycles (the "error
 * budget"). The rollup extrapolates the pooled audit error to the
 * whole run the same way, which oracle-enabled sweeps (full-detail
 * baseline present) can cross-check against ground truth.
 *
 * Like the rest of obs/, the ledger is purely observational: it is
 * fed through the Telemetry sink, never influences a decision or an
 * RNG draw, and costs nothing when no sink is attached.
 */

#ifndef OSP_OBS_ACCURACY_HH
#define OSP_OBS_ACCURACY_HH

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "stats/running_stats.hh"

namespace osp::obs
{

/** Cluster id used when a prediction had no cluster at all (empty
 *  PLT — cannot happen in normal operation). */
inline constexpr std::uint32_t accuracyNoCluster = 0xffffffffu;

/** One audited prediction: what the PLT would have predicted for
 *  the signature vs. what detailed simulation measured. */
struct AuditSample
{
    double predictedCycles = 0.0;
    double actualCycles = 0.0;
    double predictedL2Misses = 0.0;
    double actualL2Misses = 0.0;
    double predictedIpc = 0.0;
    double actualIpc = 0.0;
    /** The predictor's verdict (tolerance/3-sigma check). */
    bool failed = false;
};

/** Serializable per-(service, cluster) slice of the ledger. */
struct AccuracyEntry
{
    std::uint8_t service = 0;
    /** Index into the service's PLT cluster array (the identity
     *  exposed by ServicePredictor::lastMatchedCluster()). */
    std::uint32_t cluster = accuracyNoCluster;

    std::uint64_t predictions = 0;
    /** Of predictions, those with an outlier signature (predicted
     *  from the closest cluster — this one). */
    std::uint64_t outlierPredictions = 0;
    /** Predicted-cycle mass booked under this cluster. */
    std::uint64_t predictedCycles = 0;
    std::uint64_t audits = 0;
    std::uint64_t auditFailures = 0;

    /** Signed relative cycle error (pred - actual) / actual over
     *  audit samples, in moments form (see RunningStats). */
    std::uint64_t errCount = 0;
    double errMean = 0.0;
    double errM2 = 0.0;
    double errMin = 0.0;
    double errMax = 0.0;
    /** Signed relative L2-miss / IPC errors (means only; samples
     *  with a zero denominator are skipped). */
    std::uint64_t missCount = 0;
    double missMean = 0.0;
    std::uint64_t ipcCount = 0;
    double ipcMean = 0.0;

    // Derived at snapshot time:
    /** Half-width of the two-sided 95% CI on errMean; valid only
     *  when hasCi (at least two audit samples). */
    double ci95 = 0.0;
    bool hasCi = false;
    /** True when the 95% CI lies entirely outside the +-tolerance
     *  band: statistically confident systematic error. */
    bool drift = false;

    /** Reconstruct the error accumulator (merging/rollups). */
    RunningStats
    errStats() const
    {
        return RunningStats::fromMoments(errCount, errMean, errM2,
                                         errMin, errMax);
    }
};

/** Deterministic, serializable state of one ledger. */
struct AccuracySnapshot
{
    /** The audit tolerance the drift flags were computed against. */
    double tolerance = 0.0;
    /** End-of-run totals (from Machine): the error-budget
     *  denominator and the predicted-cycle mass. */
    std::uint64_t totalCycles = 0;
    std::uint64_t predictedCycles = 0;
    /** Sorted by (service, cluster). */
    std::vector<AccuracyEntry> entries;

    bool empty() const { return entries.empty(); }
};

/** Whole-snapshot rollup: pooled audit statistics and the
 *  extrapolated end-to-end error estimate. */
struct AccuracyRollup
{
    std::uint64_t predictions = 0;
    std::uint64_t outlierPredictions = 0;
    std::uint64_t predictedCycles = 0;  //!< booked by the ledger
    std::uint64_t audits = 0;
    std::uint64_t auditFailures = 0;
    /** Pooled signed relative cycle error over all audit samples. */
    RunningStats err;
    /** 95% CI half-width on err.mean(); valid when hasCi. */
    double ci95 = 0.0;
    bool hasCi = false;
    /**
     * Audit-estimated end-to-end execution-time error: the pooled
     * mean relative error scaled by the predicted share of total
     * cycles — comparable to the oracle's (accel-full)/full. Valid
     * when hasEstimate (audits exist and run totals were noted).
     *
     * estCi95 (valid with hasCi) is the estimate's uncertainty,
     * two terms: the audit CI scaled by the predicted share
     * (sampling noise of the audited mass), plus the unaudited
     * share of cycles times the per-invocation error stddev — the
     * detailed runs and unaudited clusters making up that share
     * execute under different thermal conditions than the oracle
     * (post-emulation cold starts in learning/re-learning windows)
     * and their deviation is unobservable online, so it is bounded
     * by the dispersion a typical audited invocation shows.
     */
    double estRelTotalErr = 0.0;
    double estCi95 = 0.0;
    bool hasEstimate = false;
    /** Clusters whose CI excludes the tolerance band. */
    std::uint64_t driftingClusters = 0;
    /** Predicted-cycle mass in clusters with no audit sample —
     *  the unknown part of the error budget. */
    std::uint64_t unattributedCycles = 0;
};

AccuracyRollup rollupAccuracy(const AccuracySnapshot &snapshot);

/** Two-sided 95% Student-t CI half-width on the mean of @p stats
 *  (0.0 with fewer than two samples — gate on count() >= 2). */
double accuracyCi95(const RunningStats &stats);

/** See file comment. */
class AccuracyLedger
{
  public:
    /** Audit tolerance the drift test uses (PredictorParams::
     *  auditTolerance; the Accelerator sets it on attach). */
    void setTolerance(double tolerance) { tolerance_ = tolerance; }
    double tolerance() const { return tolerance_; }

    /** Book one prediction's cycle mass under the cluster that
     *  produced it. */
    void notePrediction(std::uint8_t service, std::uint32_t cluster,
                        std::uint64_t predicted_cycles,
                        bool outlier);

    /** Record one audited prediction. */
    void noteAudit(std::uint8_t service, std::uint32_t cluster,
                   const AuditSample &sample);

    /** End-of-run totals (Machine::run()): the denominator that
     *  turns per-cluster error into an error budget. */
    void
    noteRunTotals(std::uint64_t total_cycles,
                  std::uint64_t predicted_cycles)
    {
        totalCycles_ = total_cycles;
        predictedCycles_ = predicted_cycles;
    }

    /** True when no prediction or audit was ever recorded. */
    bool empty() const { return entries_.empty(); }

    /** Deterministic snapshot, sorted by (service, cluster), with
     *  the derived CI and drift fields filled in. */
    AccuracySnapshot snapshot() const;

  private:
    struct Accum
    {
        std::uint64_t predictions = 0;
        std::uint64_t outlierPredictions = 0;
        std::uint64_t predictedCycles = 0;
        std::uint64_t audits = 0;
        std::uint64_t auditFailures = 0;
        RunningStats err;
        RunningStats miss;
        RunningStats ipc;
    };

    using Key = std::pair<std::uint8_t, std::uint32_t>;

    double tolerance_ = 0.0;
    std::uint64_t totalCycles_ = 0;
    std::uint64_t predictedCycles_ = 0;
    std::map<Key, Accum> entries_;
};

} // namespace osp::obs

#endif // OSP_OBS_ACCURACY_HH
