#include "service_types.hh"

#include "util/logging.hh"

namespace osp
{

const char *
serviceName(ServiceType type)
{
    switch (type) {
      case ServiceType::SysRead: return "sys_read";
      case ServiceType::SysWrite: return "sys_write";
      case ServiceType::SysOpen: return "sys_open";
      case ServiceType::SysClose: return "sys_close";
      case ServiceType::SysPoll: return "sys_poll";
      case ServiceType::SysSocketcall: return "sys_socketcall";
      case ServiceType::SysStat64: return "sys_stat64";
      case ServiceType::SysWritev: return "sys_writev";
      case ServiceType::SysFcntl64: return "sys_fcntl64";
      case ServiceType::SysIpc: return "sys_ipc";
      case ServiceType::SysGettimeofday: return "sys_gettimeofday";
      case ServiceType::SysBrk: return "sys_brk";
      case ServiceType::IntPageFault: return "Int_14";
      case ServiceType::IntDisk: return "Int_49";
      case ServiceType::IntNic: return "Int_121";
      case ServiceType::IntTimer: return "Int_239";
      case ServiceType::NumTypes: break;
    }
    osp_panic("serviceName: invalid service type ",
              static_cast<int>(type));
}

bool
isInterrupt(ServiceType type)
{
    switch (type) {
      case ServiceType::IntDisk:
      case ServiceType::IntNic:
      case ServiceType::IntTimer:
        return true;
      default:
        return false;
    }
}

} // namespace osp
