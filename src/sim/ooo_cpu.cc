#include "ooo_cpu.hh"

#include <algorithm>

#include "util/logging.hh"

namespace osp
{

OooCpu::OooCpu(const CpuParams &p, MemoryHierarchy *hierarchy,
               GshareBp *predictor)
    : params(p), hier(hierarchy), bp(predictor)
{
    if (params.windowSize == 0 || params.issueWidth == 0 ||
        params.retireWidth == 0) {
        osp_fatal("OooCpu: widths and window size must be >= 1");
    }
    rob.assign(params.windowSize, RobSlot());
    mshrBusyUntil.assign(std::max<std::uint32_t>(params.mshrs, 1), 0);
}

Cycles
OooCpu::producerReady(std::uint32_t dist, Cycles dflt) const
{
    if (dist == 0 || dist > params.windowSize)
        return dflt;
    if (seq < intervalSeq + dist)
        return dflt;  // producer predates this interval (drained)
    std::uint64_t producer = seq - dist;
    return rob[producer % params.windowSize].ready;
}

std::size_t
OooCpu::earliestMshr() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < mshrBusyUntil.size(); ++i) {
        if (mshrBusyUntil[i] < mshrBusyUntil[best])
            best = i;
    }
    return best;
}

void
OooCpu::execute(const MicroOp &op, Owner owner)
{
    ++insts;

    // Reorder-buffer occupancy: the slot this op will take frees at
    // the commit time of the op windowSize earlier.
    std::uint64_t idx = seq % params.windowSize;
    if (seq >= intervalSeq + params.windowSize) {
        Cycles slot_free = rob[idx].commit;
        if (fetchCycle < slot_free) {
            fetchCycle = slot_free;
            fetchedThisCycle = 0;
        }
    }

    // Instruction fetch: one cache access per new 64B line.
    if (hier) {
        Addr line = op.pc >> 6;
        if (line != lastFetchLine) {
            lastFetchLine = line;
            auto out = hier->access(op.pc, AccessType::InstFetch,
                                    owner, fetchCycle);
            if (out.l1Miss) {
                fetchCycle +=
                    out.latency - hier->params().l1iHitLatency;
                fetchedThisCycle = 0;
            }
        }
    }

    // Fetch/issue bandwidth.
    if (fetchedThisCycle >= params.issueWidth) {
        fetchCycle += 1;
        fetchedThisCycle = 0;
    }
    ++fetchedThisCycle;
    Cycles dispatch = fetchCycle;

    Cycles dep_ready = producerReady(op.depDist, dispatch);
    Cycles ready;

    switch (op.cls) {
      case OpClass::IntAlu:
      case OpClass::FpAlu:
        ready = std::max(dispatch, dep_ready) + op.execLat;
        break;
      case OpClass::Load:
        {
            Cycles issue = std::max(dispatch, dep_ready);
            if (hier) {
                if (hier->probeL1(op.effAddr, AccessType::Load)) {
                    auto out = hier->access(
                        op.effAddr, AccessType::Load, owner, issue);
                    ready = issue + out.latency;
                } else {
                    // Long-latency miss: admission into an MSHR
                    // gates the request (and, transitively, the
                    // bus), so a saturated memory system
                    // back-pressures the core.
                    std::size_t m = earliestMshr();
                    Cycles start =
                        std::max(issue, mshrBusyUntil[m]);
                    auto out = hier->access(
                        op.effAddr, AccessType::Load, owner, start);
                    mshrBusyUntil[m] = start + out.latency;
                    ready = start + out.latency;
                }
            } else {
                ready = issue + params.noCacheMemLatency;
            }
            break;
        }
      case OpClass::Store:
        {
            Cycles issue = std::max(dispatch, dep_ready);
            ready = issue + 1;
            if (hier) {
                if (hier->probeL1(op.effAddr, AccessType::Store)) {
                    hier->access(op.effAddr, AccessType::Store,
                                 owner, issue);
                } else {
                    // A store miss occupies an MSHR like a load;
                    // the store retires once admitted (write
                    // buffer), hiding the fill latency but not
                    // unbounded memory-system pressure.
                    std::size_t m = earliestMshr();
                    Cycles start =
                        std::max(issue, mshrBusyUntil[m]);
                    auto out = hier->access(
                        op.effAddr, AccessType::Store, owner,
                        start);
                    mshrBusyUntil[m] = start + out.latency;
                    ready = start + 1;
                }
            }
            break;
        }
      case OpClass::Branch:
      default:
        ready = std::max(dispatch, dep_ready) + 1;
        if (bp) {
            bool correct = bp->predictAndUpdate(op.pc, op.taken);
            if (!correct) {
                // Redirect fetch once the branch resolves.
                fetchCycle = ready + params.mispredictPenalty;
                fetchedThisCycle = 0;
            }
        }
        break;
    }

    // In-order commit under the retire-width constraint.
    Cycles commit = std::max(ready, lastCommit);
    if (commit == lastCommit) {
        if (committedThisCycle >= params.retireWidth) {
            commit += 1;
            committedThisCycle = 1;
        } else {
            ++committedThisCycle;
        }
    } else {
        committedThisCycle = 1;
    }
    lastCommit = commit;

    rob[idx].ready = ready;
    rob[idx].commit = commit;
    ++seq;
}

Cycles
OooCpu::drain()
{
    Cycles cycles = lastCommit - intervalStart;
    intervalStart = lastCommit;
    // Serialize: the next interval starts fetching after the drain.
    fetchCycle = std::max(fetchCycle, lastCommit);
    fetchedThisCycle = 0;
    committedThisCycle = 0;
    intervalSeq = seq;
    lastFetchLine = ~static_cast<Addr>(0);
    return cycles;
}

void
OooCpu::reset()
{
    rob.assign(params.windowSize, RobSlot());
    mshrBusyUntil.assign(mshrBusyUntil.size(), 0);
    seq = 0;
    intervalSeq = 0;
    fetchCycle = 0;
    fetchedThisCycle = 0;
    lastCommit = 0;
    committedThisCycle = 0;
    lastFetchLine = ~static_cast<Addr>(0);
    intervalStart = 0;
    insts = 0;
}

} // namespace osp
