#include "interval_profile.hh"

#include "util/logging.hh"

namespace osp
{

IntervalProfiler::IntervalProfiler(InstCount interval_len)
    : intervalLen_(interval_len)
{
    if (intervalLen_ == 0)
        osp_fatal("IntervalProfiler requires interval_len > 0");
}

void
IntervalProfiler::reset()
{
    intervals_.clear();
    fullIntervals_ = 0;
    tailInsts_ = 0;
}

IntervalFeatures &
IntervalProfiler::at(std::uint64_t interval)
{
    if (interval >= intervals_.size())
        intervals_.resize(static_cast<std::size_t>(interval) + 1);
    return intervals_[static_cast<std::size_t>(interval)];
}

void
IntervalProfiler::noteOps(std::uint64_t interval, const MicroOp *ops,
                          std::size_t n)
{
    IntervalFeatures &f = at(interval);
    f.ops += n;
    for (std::size_t i = 0; i < n; ++i) {
        switch (ops[i].cls) {
          case OpClass::IntAlu:
            break;
          case OpClass::FpAlu:
            ++f.fp;
            break;
          case OpClass::Load:
            ++f.loads;
            break;
          case OpClass::Store:
            ++f.stores;
            break;
          case OpClass::Branch:
            ++f.branches;
            if (ops[i].taken)
                ++f.taken;
            break;
        }
    }
}

void
IntervalProfiler::noteService(std::uint64_t interval,
                              ServiceType type, InstCount insts)
{
    IntervalFeatures &f = at(interval);
    ++f.svcInvocations;
    f.svcInsts += insts;
    ++f.svcCounts[static_cast<std::size_t>(type)];
}

void
IntervalProfiler::finish(InstCount total_app_insts)
{
    fullIntervals_ = total_app_insts / intervalLen_;
    tailInsts_ = total_app_insts % intervalLen_;
    // A trailing partial interval may have tallies; keep them out
    // of the feature matrix (the tail is measured, not sampled) but
    // leave the record in place for inspection.
    if (intervals_.size() <
        static_cast<std::size_t>(fullIntervals_))
        intervals_.resize(
            static_cast<std::size_t>(fullIntervals_));
}

std::vector<std::vector<double>>
IntervalProfiler::featureMatrix() const
{
    const auto n = static_cast<std::size_t>(fullIntervals_);
    const auto len = static_cast<double>(intervalLen_);
    std::vector<std::vector<double>> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const IntervalFeatures &f = intervals_[i];
        std::vector<double> row;
        row.reserve(7 + f.svcCounts.size());
        row.push_back(static_cast<double>(f.loads) / len);
        row.push_back(static_cast<double>(f.stores) / len);
        row.push_back(static_cast<double>(f.branches) / len);
        row.push_back(static_cast<double>(f.fp) / len);
        row.push_back(f.branches
                          ? static_cast<double>(f.taken) /
                                static_cast<double>(f.branches)
                          : 0.0);
        row.push_back(static_cast<double>(f.svcInsts) / len);
        row.push_back(static_cast<double>(f.svcInvocations));
        const double inv = f.svcInvocations
                               ? 1.0 / static_cast<double>(
                                           f.svcInvocations)
                               : 0.0;
        for (std::uint32_t c : f.svcCounts)
            row.push_back(static_cast<double>(c) * inv);
        out.push_back(std::move(row));
    }
    return out;
}

std::vector<double>
IntervalProfiler::costProxy() const
{
    const auto n = static_cast<std::size_t>(fullIntervals_);
    const auto len = static_cast<double>(intervalLen_);
    std::vector<double> out;
    out.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        const IntervalFeatures &f = intervals_[i];
        out.push_back(
            static_cast<double>(f.loads + f.stores) / len);
    }
    return out;
}

} // namespace osp
