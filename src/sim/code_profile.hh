/**
 * @file
 * Static descriptions of synthesized code: instruction mixes, code
 * footprints and data-access patterns.
 *
 * A CodeProfile captures what distinguishes, say, kernel
 * copy-to-user loops (high load/store fraction, short dependency
 * chains, tiny code footprint) from VFS path resolution
 * (pointer-chasing, branchy, large cold code footprint). Workloads
 * and OS service handlers compose these into work items which the
 * CodeGenerator lowers into MicroOps.
 */

#ifndef OSP_SIM_CODE_PROFILE_HH
#define OSP_SIM_CODE_PROFILE_HH

#include <cstdint>

#include "util/types.hh"

namespace osp
{

/** A contiguous range of the (flat) simulated address space. */
struct Region
{
    Addr base = 0;
    std::uint64_t size = 0;

    bool
    contains(Addr addr) const
    {
        return addr >= base && addr < base + size;
    }
};

/** How a stream of data accesses walks its region. */
enum class PatternKind : std::uint8_t
{
    Sequential,    //!< base..end with a fixed stride, wrapping
    Random,        //!< uniform random line-aligned addresses
    PointerChase,  //!< random but serialized by dependences
    Hot,           //!< 90% of accesses to a small hot prefix
};

/**
 * Instruction mix and micro-architectural character of a piece of
 * synthesized code. Fractions are cumulative-checked at generation
 * time (load + store + branch + fp <= 1; remainder is integer ALU).
 */
struct CodeProfile
{
    double loadFrac = 0.25;
    double storeFrac = 0.10;
    double branchFrac = 0.15;
    double fpFrac = 0.0;

    /** Probability an op carries a register dependence on a recent
     *  producer; higher = more serial code (lower ILP). */
    double depChance = 0.35;
    /** Mean of the geometric dependency-distance distribution; small
     *  values create long serial chains. */
    double depDistMean = 4.0;

    /** Fraction of branches whose direction is effectively random
     *  (unlearnable by the predictor); the rest follow a strongly
     *  biased taken pattern the predictor learns quickly. */
    double branchRandomFrac = 0.05;

    /** FP execute latency (cycles) when cls == FpAlu. */
    std::uint8_t fpLatency = 4;

    /** Static code region instruction fetches walk through. */
    Region code{0x00400000ULL, 8 * 1024};
    /** Average dynamic basic-block run before the fetch point jumps
     *  somewhere else in the code region (bytes of straight-line
     *  code; instructions are 4 bytes). */
    std::uint32_t blockRunBytes = 256;
};

} // namespace osp

#endif // OSP_SIM_CODE_PROFILE_HH
