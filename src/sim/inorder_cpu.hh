/**
 * @file
 * A single-issue in-order core with blocking memory accesses.
 *
 * This is the fast timing model of Table 1 ("inorder" rows): every
 * instruction costs one cycle plus memory stalls plus branch
 * misprediction penalties. With no cache model attached it runs at
 * roughly 1 IPC, like Simics's in-order mode.
 */

#ifndef OSP_SIM_INORDER_CPU_HH
#define OSP_SIM_INORDER_CPU_HH

#include <algorithm>
#include <vector>

#include "cpu.hh"

namespace osp
{

/** See file comment. `final` so the Machine's concrete-engine run
 *  loop calls execute() directly (and inlines it) instead of going
 *  through the vtable. */
class InOrderCpu final : public CpuModel
{
  public:
    /**
     * @param params    core parameters (mispredictPenalty and
     *                  noCacheMemLatency are used)
     * @param hierarchy cache model, or nullptr for flat memory
     * @param bp        branch predictor, or nullptr to assume
     *                  perfect prediction
     */
    InOrderCpu(const CpuParams &params, MemoryHierarchy *hierarchy,
               GshareBp *bp);

    /** Defined inline below the class: this is the per-instruction
     *  body of every in-order simulation, and keeping it visible to
     *  the caller lets the whole fetch/load hit chain flatten into
     *  the run loop. */
    void execute(const MicroOp &op, Owner owner) override;
    Cycles drain() override;
    Cycles now() const override { return now_; }
    InstCount instructions() const override { return insts; }
    void reset() override;

  private:
    CpuParams params;
    MemoryHierarchy *hier;
    GshareBp *bp;
    Cycles now_ = 0;
    Cycles intervalStart = 0;
    InstCount insts = 0;
    Addr lastFetchLine = ~static_cast<Addr>(0);
    /** Write-buffer slots: store misses retire immediately unless
     *  all slots are busy, bounding memory-system pressure. */
    std::vector<Cycles> storeBusyUntil;
};

inline void
InOrderCpu::execute(const MicroOp &op, Owner owner)
{
    ++insts;

    // Instruction fetch: one cache access per new 64B line.
    if (hier) {
        Addr line = op.pc >> 6;
        if (line != lastFetchLine) {
            lastFetchLine = line;
            auto out = hier->access(op.pc, AccessType::InstFetch,
                                    owner, now_);
            if (out.l1Miss) {
                // Stall for everything beyond the pipelined L1 hit.
                now_ += out.latency - hier->params().l1iHitLatency;
            }
        }
    }

    now_ += 1;  // single-issue base cost

    switch (op.cls) {
      case OpClass::IntAlu:
        break;
      case OpClass::FpAlu:
        now_ += op.execLat > 1 ? op.execLat - 1 : 0;
        break;
      case OpClass::Load:
        {
            Cycles lat = params.noCacheMemLatency;
            if (hier) {
                lat = hier->access(op.effAddr, AccessType::Load,
                                   owner, now_).latency;
            }
            // Blocking load: the full latency serializes.
            now_ += lat > 1 ? lat - 1 : 0;
            break;
        }
      case OpClass::Store:
        if (hier) {
            if (hier->probeL1(op.effAddr, AccessType::Store)) {
                hier->access(op.effAddr, AccessType::Store, owner,
                             now_);
            } else {
                // Store miss: take a write-buffer slot; stall only
                // when every slot is still busy.
                std::size_t best = 0;
                for (std::size_t i = 1;
                     i < storeBusyUntil.size(); ++i) {
                    if (storeBusyUntil[i] < storeBusyUntil[best])
                        best = i;
                }
                Cycles start =
                    std::max(now_, storeBusyUntil[best]);
                auto out = hier->access(
                    op.effAddr, AccessType::Store, owner, start);
                storeBusyUntil[best] = start + out.latency;
                now_ = start;
            }
        }
        break;
      case OpClass::Branch:
        if (bp) {
            bool correct = bp->predictAndUpdate(op.pc, op.taken);
            if (!correct)
                now_ += params.mispredictPenalty;
        }
        break;
    }
}

} // namespace osp

#endif // OSP_SIM_INORDER_CPU_HH
