/**
 * @file
 * A single-issue in-order core with blocking memory accesses.
 *
 * This is the fast timing model of Table 1 ("inorder" rows): every
 * instruction costs one cycle plus memory stalls plus branch
 * misprediction penalties. With no cache model attached it runs at
 * roughly 1 IPC, like Simics's in-order mode.
 */

#ifndef OSP_SIM_INORDER_CPU_HH
#define OSP_SIM_INORDER_CPU_HH

#include <vector>

#include "cpu.hh"

namespace osp
{

/** See file comment. */
class InOrderCpu : public CpuModel
{
  public:
    /**
     * @param params    core parameters (mispredictPenalty and
     *                  noCacheMemLatency are used)
     * @param hierarchy cache model, or nullptr for flat memory
     * @param bp        branch predictor, or nullptr to assume
     *                  perfect prediction
     */
    InOrderCpu(const CpuParams &params, MemoryHierarchy *hierarchy,
               GshareBp *bp);

    void execute(const MicroOp &op, Owner owner) override;
    Cycles drain() override;
    Cycles now() const override { return now_; }
    InstCount instructions() const override { return insts; }
    void reset() override;

  private:
    CpuParams params;
    MemoryHierarchy *hier;
    GshareBp *bp;
    Cycles now_ = 0;
    Cycles intervalStart = 0;
    InstCount insts = 0;
    Addr lastFetchLine = ~static_cast<Addr>(0);
    /** Write-buffer slots: store misses retire immediately unless
     *  all slots are busy, bounding memory-system pressure. */
    std::vector<Cycles> storeBusyUntil;
};

} // namespace osp

#endif // OSP_SIM_INORDER_CPU_HH
