/**
 * @file
 * The dynamic instruction record consumed by the timing models.
 *
 * The simulator is generator-driven: workloads and OS service
 * handlers synthesize streams of MicroOps with realistic mixes,
 * dependency distances and memory addresses, and the CPU models
 * consume them. A MicroOp is deliberately small (fits in 24 bytes)
 * because detailed simulation throughput bounds every experiment.
 */

#ifndef OSP_SIM_MICROOP_HH
#define OSP_SIM_MICROOP_HH

#include <cstdint>

#include "util/types.hh"

namespace osp
{

/** Functional class of a dynamic instruction. */
enum class OpClass : std::uint8_t
{
    IntAlu,   //!< 1-cycle integer operation
    FpAlu,    //!< multi-cycle floating-point operation
    Load,     //!< memory read
    Store,    //!< memory write
    Branch,   //!< conditional branch (direction in MicroOp)
};

/** One dynamic instruction. */
struct MicroOp
{
    Addr pc = 0;        //!< instruction address (I-fetch, BP index)
    Addr effAddr = 0;   //!< effective address for Load/Store
    OpClass cls = OpClass::IntAlu;
    /** Distance (in dynamic instructions) to the producer this op
     *  depends on; 0 means no register dependence is modeled. */
    std::uint8_t depDist = 0;
    /** Base execution latency in cycles (excludes memory). */
    std::uint8_t execLat = 1;
    /** Architectural branch direction (Branch only). */
    bool taken = false;
};

} // namespace osp

#endif // OSP_SIM_MICROOP_HH
