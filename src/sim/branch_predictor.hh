/**
 * @file
 * A gshare dynamic branch predictor.
 *
 * The processor model of Sec. 5.1 has a 10-cycle misprediction
 * penalty; what fraction of branches pay it must come from a real
 * predictor, because OS code is characteristically branchier and
 * less predictable than application loops and that difference is a
 * large part of why OS IPC is low (Fig. 3b).
 */

#ifndef OSP_SIM_BRANCH_PREDICTOR_HH
#define OSP_SIM_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "util/types.hh"

namespace osp
{

/**
 * Gshare: a table of 2-bit saturating counters indexed by
 * (pc ^ global history).
 */
class GshareBp
{
  public:
    /** @param history_bits global-history length; the table has
     *  2^history_bits counters. */
    explicit GshareBp(std::uint32_t history_bits = 12);

    /** Predict the direction of the branch at @p pc. */
    bool predict(Addr pc) const;

    /**
     * Update with the architectural outcome and return whether the
     * prediction (made with the pre-update state) was correct.
     */
    bool predictAndUpdate(Addr pc, bool taken);

    /** Number of predictions made via predictAndUpdate(). */
    std::uint64_t lookups() const { return lookups_; }

    /** Number of those that were wrong. */
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Misprediction ratio (0 when no lookups yet). */
    double
    mispredictRate() const
    {
        return lookups_ ? static_cast<double>(mispredicts_) /
                              static_cast<double>(lookups_)
                        : 0.0;
    }

    /** Clear tables, history and statistics. */
    void reset();

  private:
    std::uint32_t index(Addr pc) const;

    std::uint32_t historyBits;
    std::uint32_t mask;
    std::uint32_t history = 0;
    std::vector<std::uint8_t> counters;
    std::uint64_t lookups_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace osp

#endif // OSP_SIM_BRANCH_PREDICTOR_HH
