#include "inorder_cpu.hh"

namespace osp
{

InOrderCpu::InOrderCpu(const CpuParams &p, MemoryHierarchy *hierarchy,
                       GshareBp *predictor)
    : params(p), hier(hierarchy), bp(predictor)
{
    storeBusyUntil.assign(
        std::max<std::uint32_t>(params.mshrs, 1), 0);
}

void
InOrderCpu::execute(const MicroOp &op, Owner owner)
{
    ++insts;

    // Instruction fetch: one cache access per new 64B line.
    if (hier) {
        Addr line = op.pc >> 6;
        if (line != lastFetchLine) {
            lastFetchLine = line;
            auto out = hier->access(op.pc, AccessType::InstFetch,
                                    owner, now_);
            if (out.l1Miss) {
                // Stall for everything beyond the pipelined L1 hit.
                now_ += out.latency - hier->params().l1iHitLatency;
            }
        }
    }

    now_ += 1;  // single-issue base cost

    switch (op.cls) {
      case OpClass::IntAlu:
        break;
      case OpClass::FpAlu:
        now_ += op.execLat > 1 ? op.execLat - 1 : 0;
        break;
      case OpClass::Load:
        {
            Cycles lat = params.noCacheMemLatency;
            if (hier) {
                lat = hier->access(op.effAddr, AccessType::Load,
                                   owner, now_).latency;
            }
            // Blocking load: the full latency serializes.
            now_ += lat > 1 ? lat - 1 : 0;
            break;
        }
      case OpClass::Store:
        if (hier) {
            if (hier->probeL1(op.effAddr, AccessType::Store)) {
                hier->access(op.effAddr, AccessType::Store, owner,
                             now_);
            } else {
                // Store miss: take a write-buffer slot; stall only
                // when every slot is still busy.
                std::size_t best = 0;
                for (std::size_t i = 1;
                     i < storeBusyUntil.size(); ++i) {
                    if (storeBusyUntil[i] < storeBusyUntil[best])
                        best = i;
                }
                Cycles start =
                    std::max(now_, storeBusyUntil[best]);
                auto out = hier->access(
                    op.effAddr, AccessType::Store, owner, start);
                storeBusyUntil[best] = start + out.latency;
                now_ = start;
            }
        }
        break;
      case OpClass::Branch:
        if (bp) {
            bool correct = bp->predictAndUpdate(op.pc, op.taken);
            if (!correct)
                now_ += params.mispredictPenalty;
        }
        break;
    }
}

Cycles
InOrderCpu::drain()
{
    Cycles cycles = now_ - intervalStart;
    intervalStart = now_;
    return cycles;
}

void
InOrderCpu::reset()
{
    now_ = 0;
    intervalStart = 0;
    insts = 0;
    lastFetchLine = ~static_cast<Addr>(0);
    storeBusyUntil.assign(storeBusyUntil.size(), 0);
}

} // namespace osp
