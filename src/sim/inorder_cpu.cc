#include "inorder_cpu.hh"

namespace osp
{

InOrderCpu::InOrderCpu(const CpuParams &p, MemoryHierarchy *hierarchy,
                       GshareBp *predictor)
    : params(p), hier(hierarchy), bp(predictor)
{
    storeBusyUntil.assign(
        std::max<std::uint32_t>(params.mshrs, 1), 0);
}

Cycles
InOrderCpu::drain()
{
    Cycles cycles = now_ - intervalStart;
    intervalStart = now_;
    return cycles;
}

void
InOrderCpu::reset()
{
    now_ = 0;
    intervalStart = 0;
    insts = 0;
    lastFetchLine = ~static_cast<Addr>(0);
    storeBusyUntil.assign(storeBusyUntil.size(), 0);
}

} // namespace osp
