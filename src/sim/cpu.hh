/**
 * @file
 * Shared CPU-model interface and parameters.
 *
 * The simulator supports the same detail levels the paper measures
 * in Table 1 — in-order or out-of-order core, with or without the
 * cache model attached — plus pure functional emulation. All timing
 * models consume MicroOps one at a time and account cycles against
 * an *interval* that the Machine opens and drains at every
 * user/kernel mode switch; a mode switch serializes the pipeline,
 * which is architecturally faithful (syscall/iret are serializing on
 * x86) and gives each OS-service interval a well-defined cycle cost.
 */

#ifndef OSP_SIM_CPU_HH
#define OSP_SIM_CPU_HH

#include <cstdint>

#include "branch_predictor.hh"
#include "mem/hierarchy.hh"
#include "microop.hh"
#include "util/types.hh"

namespace osp
{

/** Core parameters; defaults follow Sec. 5.1 (Pentium-4-like). */
struct CpuParams
{
    std::uint32_t issueWidth = 4;       //!< fetch/issue width
    std::uint32_t retireWidth = 3;      //!< commit width
    std::uint32_t windowSize = 126;     //!< in-flight instructions
    Cycles mispredictPenalty = 10;
    std::uint32_t mshrs = 8;            //!< outstanding misses
    /** Flat memory-access latency when no cache model is attached
     *  (the "nocache" detail levels of Table 1). */
    Cycles noCacheMemLatency = 2;
};

/**
 * Interface of an interval-draining timing model.
 *
 * The memory hierarchy pointer may be null: that is the "nocache"
 * configuration, where every access costs CpuParams::noCacheMemLatency.
 */
class CpuModel
{
  public:
    virtual ~CpuModel() = default;

    /** Account one instruction. */
    virtual void execute(const MicroOp &op, Owner owner) = 0;

    /**
     * Close the current interval: complete everything in flight and
     * return the cycles the interval consumed. The next interval
     * starts from a serialized (empty) pipeline.
     */
    virtual Cycles drain() = 0;

    /** Absolute cycle count since construction/reset. */
    virtual Cycles now() const = 0;

    /** Instructions executed since construction/reset. */
    virtual InstCount instructions() const = 0;

    /** Full reset (pipeline, clocks, statistics). */
    virtual void reset() = 0;
};

} // namespace osp

#endif // OSP_SIM_CPU_HH
