/**
 * @file
 * The detailed out-of-order timing model.
 *
 * A one-pass, trace-driven OOO model in the style of interval
 * simulators: each instruction is dispatched subject to fetch
 * bandwidth and reorder-buffer occupancy, becomes ready when its
 * producer (depDist back in program order) and its execution
 * latency allow, and commits in order under a retire-width
 * constraint. Loads overlap through a finite MSHR pool; branch
 * mispredictions redirect fetch after a fixed penalty.
 *
 * Parameters default to the paper's Sec. 5.1 configuration: 4-wide
 * issue, 126-entry window, 3-wide retire, 10-cycle misprediction
 * penalty.
 */

#ifndef OSP_SIM_OOO_CPU_HH
#define OSP_SIM_OOO_CPU_HH

#include <vector>

#include "cpu.hh"

namespace osp
{

/** See file comment. `final` so concrete-pointer callers (the
 *  Machine's templated run loop) can devirtualize execute(). */
class OooCpu final : public CpuModel
{
  public:
    /**
     * @param params    core parameters
     * @param hierarchy cache model, or nullptr for flat memory
     * @param bp        branch predictor, or nullptr for perfect
     *                  prediction
     */
    OooCpu(const CpuParams &params, MemoryHierarchy *hierarchy,
           GshareBp *bp);

    void execute(const MicroOp &op, Owner owner) override;
    Cycles drain() override;
    Cycles now() const override { return lastCommit; }
    InstCount instructions() const override { return insts; }
    void reset() override;

  private:
    struct RobSlot
    {
        Cycles ready = 0;
        Cycles commit = 0;
    };

    /** Ready time of the producer depDist ops back, or @p dflt if it
     *  left the window / predates the interval. */
    Cycles producerReady(std::uint32_t dist, Cycles dflt) const;

    /** Index of the MSHR that frees earliest. */
    std::size_t earliestMshr() const;

    CpuParams params;
    MemoryHierarchy *hier;
    GshareBp *bp;

    std::vector<RobSlot> rob;     //!< ring buffer of windowSize
    std::uint64_t seq = 0;        //!< ops dispatched since reset
    std::uint64_t intervalSeq = 0;  //!< seq at last drain

    Cycles fetchCycle = 0;
    std::uint32_t fetchedThisCycle = 0;
    Cycles lastCommit = 0;
    std::uint32_t committedThisCycle = 0;
    Addr lastFetchLine = ~static_cast<Addr>(0);

    std::vector<Cycles> mshrBusyUntil;

    Cycles intervalStart = 0;
    InstCount insts = 0;
};

} // namespace osp

#endif // OSP_SIM_OOO_CPU_HH
