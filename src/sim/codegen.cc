#include "codegen.hh"

#include <algorithm>

#include "util/logging.hh"

namespace osp
{

CodeGenerator::CodeGenerator(std::uint64_t seed, std::uint64_t stream)
    : rng(seed, stream)
{
}

void
CodeGenerator::pushCompute(const CodeProfile &profile,
                           std::uint64_t num_ops, Region data,
                           PatternKind pattern, std::uint32_t stride)
{
    if (num_ops == 0)
        return;
    WorkItem item;
    item.kind = WorkItem::Kind::Compute;
    item.profile = profile;
    item.opsLeft = num_ops;
    item.data = data;
    item.pattern = pattern;
    item.stride = std::max<std::uint32_t>(stride, 1);
    startItem(item);
    items.push_back(item);
}

void
CodeGenerator::pushCopy(const CodeProfile &profile,
                        std::uint64_t bytes, Region src, Region dst)
{
    if (bytes == 0)
        return;
    WorkItem item;
    item.kind = WorkItem::Kind::Copy;
    item.profile = profile;
    std::uint64_t units = (bytes + 15) / 16;
    item.opsLeft = units * 4;
    item.src = src;
    item.dst = dst;
    item.srcCursor = src.base;
    item.dstCursor = dst.base;
    startItem(item);
    items.push_back(item);
}

namespace
{

// Fixed-probability trials in the lowering path, as raw thresholds.
const std::uint64_t kThrHot = Pcg32::rawThreshold(0.9);
const std::uint64_t kThrHalf = Pcg32::rawThreshold(0.5);
const std::uint64_t kThrFlip = Pcg32::rawThreshold(0.02);

} // namespace

void
CodeGenerator::startItem(WorkItem &item)
{
    const CodeProfile &p = item.profile;
    // Cumulative sums formed exactly as the per-op comparisons
    // historically did, so the raw thresholds are bit-equivalent.
    item.thrLoad = Pcg32::rawThreshold(p.loadFrac);
    item.thrStore = Pcg32::rawThreshold(p.loadFrac + p.storeFrac);
    item.thrBranch =
        Pcg32::rawThreshold(p.loadFrac + p.storeFrac + p.branchFrac);
    item.thrFp = Pcg32::rawThreshold(p.loadFrac + p.storeFrac +
                                     p.branchFrac + p.fpFrac);
    item.thrBranchRandom = Pcg32::rawThreshold(p.branchRandomFrac);
    item.thrDep = Pcg32::rawThreshold(p.depChance);
    item.geomIdx =
        geomTableFor(1.0 / std::max(p.depDistMean, 1.0));

    const Region &code = item.profile.code;
    if (code.size < 64)
        osp_panic("code region too small: ", code.size);
    // Start fetching at a random 64-byte-aligned block.
    std::uint64_t blocks = code.size / 64;
    item.pc = code.base + 64ULL * rng.range(
        static_cast<std::uint32_t>(std::min<std::uint64_t>(
            blocks, 0xffffffffULL)));
    item.blockLeft = item.profile.blockRunBytes;
    if (item.data.size == 0)
        item.data = Region{code.base, 4096};
    if (item.kind == WorkItem::Kind::Compute &&
        item.pattern == PatternKind::Sequential) {
        auto it = seqCursors.find(item.data.base);
        item.dataCursor = it != seqCursors.end() &&
                                  item.data.contains(it->second)
                              ? it->second
                              : item.data.base;
    } else {
        item.dataCursor = item.data.base;
    }

    // Fixed per-item draw bounds (code blocks, data lines, hot
    // lines), formed exactly as nextPc()/dataAddr() historically
    // computed them per draw.
    item.pcDraw = Pcg32::makeRange(
        static_cast<std::uint32_t>(std::min<std::uint64_t>(
            blocks, 0xffffffffULL)));
    const Region &region = item.data;
    std::uint64_t lines =
        std::max<std::uint64_t>(region.size / 64, 1);
    item.dataDraw = Pcg32::makeRange(
        static_cast<std::uint32_t>(std::min<std::uint64_t>(
            lines, 0xffffffffULL)));
    std::uint64_t hot =
        std::max<std::uint64_t>(region.size / 10, 64);
    std::uint64_t hot_lines = std::max<std::uint64_t>(hot / 64, 1);
    item.hotDraw = Pcg32::makeRange(
        static_cast<std::uint32_t>(std::min<std::uint64_t>(
            hot_lines, 0xffffffffULL)));
}

std::uint32_t
CodeGenerator::geomTableFor(double p)
{
    for (std::size_t i = 0; i < geomTables.size(); ++i)
        if (geomTables[i].p == p)
            return static_cast<std::uint32_t>(i);
    geomTables.push_back(Pcg32::makeGeomTable(p));
    return static_cast<std::uint32_t>(geomTables.size() - 1);
}

std::uint64_t
CodeGenerator::pendingOps() const
{
    std::uint64_t n = 0;
    for (const auto &item : items)
        n += item.opsLeft;
    return n;
}

Addr
CodeGenerator::nextPc(WorkItem &item)
{
    const Region &code = item.profile.code;
    if (item.blockLeft < 4) {
        // Jump to a new block within the code footprint.
        item.pc = code.base + 64ULL * rng.rangeWith(item.pcDraw);
        item.blockLeft = item.profile.blockRunBytes;
    }
    Addr pc = item.pc;
    item.pc += 4;
    item.blockLeft -= 4;
    if (item.pc >= code.base + code.size) {
        item.pc = code.base;
        item.blockLeft = item.profile.blockRunBytes;
    }
    return pc;
}

Addr
CodeGenerator::dataAddr(WorkItem &item, bool chase)
{
    const Region &region = item.data;
    if (region.size == 0)
        return region.base;
    switch (chase ? PatternKind::PointerChase : item.pattern) {
      case PatternKind::Sequential:
        {
            Addr a = item.dataCursor;
            item.dataCursor += item.stride;
            if (item.dataCursor >= region.base + region.size)
                item.dataCursor = region.base;
            return a;
        }
      case PatternKind::Random:
      case PatternKind::PointerChase:
        return region.base + 64ULL * rng.rangeWith(item.dataDraw);
      case PatternKind::Hot:
        // 90% of accesses hit the first 10% of the region.
        return region.base +
               64ULL * rng.rangeWith(rng.chanceRaw(kThrHot)
                                         ? item.hotDraw
                                         : item.dataDraw);
    }
    return region.base;
}

MicroOp
CodeGenerator::next()
{
    if (items.empty())
        osp_panic("CodeGenerator::next() called with no work queued");
    WorkItem &item = items.front();
    MicroOp op = item.kind == WorkItem::Kind::Compute
                     ? lowerCompute(item)
                     : lowerCopy(item);
    item.opsLeft -= 1;
    if (item.opsLeft == 0) {
        if (item.kind == WorkItem::Kind::Compute &&
            item.pattern == PatternKind::Sequential) {
            seqCursors[item.data.base] = item.dataCursor;
        }
        items.pop_front();
    }
    return op;
}

std::size_t
CodeGenerator::nextBlock(MicroOp *out, std::size_t cap)
{
    std::size_t n = 0;
    while (n < cap && !items.empty()) {
        WorkItem &item = items.front();
        std::size_t take = static_cast<std::size_t>(
            std::min<std::uint64_t>(cap - n, item.opsLeft));
        if (item.kind == WorkItem::Kind::Compute) {
            for (std::size_t k = 0; k < take; ++k)
                out[n++] = lowerCompute(item);
        } else {
            for (std::size_t k = 0; k < take; ++k)
                out[n++] = lowerCopy(item);
        }
        item.opsLeft -= take;
        if (item.opsLeft == 0) {
            if (item.kind == WorkItem::Kind::Compute &&
                item.pattern == PatternKind::Sequential) {
                seqCursors[item.data.base] = item.dataCursor;
            }
            items.pop_front();
        }
    }
    return n;
}

MicroOp
CodeGenerator::lowerCompute(WorkItem &item)
{
    const CodeProfile &p = item.profile;
    MicroOp op;
    op.pc = nextPc(item);

    // One draw, compared against the item's precomputed raw
    // thresholds — outcome-identical to the historical
    // uniform()-vs-cumulative-fraction chain (see rawThreshold).
    std::uint32_t roll = rng.next();
    bool chase = item.pattern == PatternKind::PointerChase;
    if (roll < item.thrLoad) {
        op.cls = OpClass::Load;
        op.effAddr = dataAddr(item, chase);
        op.execLat = 0;  // latency comes from the memory system
        if (chase) {
            // Serialize on the previous load (pointer dereference);
            // opsSinceLoad is 1 when the previous op was a load.
            op.depDist = static_cast<std::uint8_t>(
                std::min<std::uint32_t>(opsSinceLoad, 255));
        }
    } else if (roll < item.thrStore) {
        op.cls = OpClass::Store;
        op.effAddr = dataAddr(item, false);
        op.execLat = 1;
    } else if (roll < item.thrBranch) {
        op.cls = OpClass::Branch;
        op.execLat = 1;
        if (rng.chanceRaw(item.thrBranchRandom)) {
            op.taken = rng.chanceRaw(kThrHalf);
        } else {
            // Strongly biased (loop-like) branch; predictors learn it.
            op.taken = !rng.chanceRaw(kThrFlip);
        }
    } else if (roll < item.thrFp) {
        op.cls = OpClass::FpAlu;
        op.execLat = p.fpLatency;
    } else {
        op.cls = OpClass::IntAlu;
        op.execLat = 1;
    }

    if (op.cls != OpClass::Load || !chase) {
        if (rng.chanceRaw(item.thrDep)) {
            std::uint32_t d =
                rng.geometricWith(geomTables[item.geomIdx]);
            op.depDist =
                static_cast<std::uint8_t>(std::min<std::uint32_t>(
                    d, 255));
        }
    }
    opsSinceLoad = op.cls == OpClass::Load
                       ? 1
                       : std::min<std::uint32_t>(opsSinceLoad + 1,
                                                 255);
    return op;
}

MicroOp
CodeGenerator::lowerCopy(WorkItem &item)
{
    MicroOp op;
    op.pc = nextPc(item);
    switch (item.copyPhase) {
      case 0:
        op.cls = OpClass::Load;
        op.effAddr = item.srcCursor;
        op.execLat = 0;
        break;
      case 1:
        op.cls = OpClass::Store;
        op.effAddr = item.dstCursor;
        op.execLat = 1;
        op.depDist = 1;  // stores the value just loaded
        break;
      case 2:
        op.cls = OpClass::IntAlu;
        op.execLat = 1;
        break;
      case 3:
      default:
        op.cls = OpClass::Branch;
        op.execLat = 1;
        op.taken = true;  // loop-closing branch, well predicted
        item.srcCursor += 16;
        item.dstCursor += 16;
        if (item.src.size &&
            item.srcCursor >= item.src.base + item.src.size) {
            item.srcCursor = item.src.base;
        }
        if (item.dst.size &&
            item.dstCursor >= item.dst.base + item.dst.size) {
            item.dstCursor = item.dst.base;
        }
        break;
    }
    opsSinceLoad = op.cls == OpClass::Load
                       ? 1
                       : std::min<std::uint32_t>(opsSinceLoad + 1,
                                                 255);
    item.copyPhase = (item.copyPhase + 1) & 3;
    return op;
}

} // namespace osp
