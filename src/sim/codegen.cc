#include "codegen.hh"

#include <algorithm>

#include "util/logging.hh"

namespace osp
{

CodeGenerator::CodeGenerator(std::uint64_t seed, std::uint64_t stream)
    : rng(seed, stream)
{
}

void
CodeGenerator::pushCompute(const CodeProfile &profile,
                           std::uint64_t num_ops, Region data,
                           PatternKind pattern, std::uint32_t stride)
{
    if (num_ops == 0)
        return;
    WorkItem item;
    item.kind = WorkItem::Kind::Compute;
    item.profile = profile;
    item.opsLeft = num_ops;
    item.data = data;
    item.pattern = pattern;
    item.stride = std::max<std::uint32_t>(stride, 1);
    startItem(item);
    items.push_back(item);
}

void
CodeGenerator::pushCopy(const CodeProfile &profile,
                        std::uint64_t bytes, Region src, Region dst)
{
    if (bytes == 0)
        return;
    WorkItem item;
    item.kind = WorkItem::Kind::Copy;
    item.profile = profile;
    std::uint64_t units = (bytes + 15) / 16;
    item.opsLeft = units * 4;
    item.src = src;
    item.dst = dst;
    item.srcCursor = src.base;
    item.dstCursor = dst.base;
    startItem(item);
    items.push_back(item);
}

void
CodeGenerator::startItem(WorkItem &item)
{
    const Region &code = item.profile.code;
    if (code.size < 64)
        osp_panic("code region too small: ", code.size);
    // Start fetching at a random 64-byte-aligned block.
    std::uint64_t blocks = code.size / 64;
    item.pc = code.base + 64ULL * rng.range(
        static_cast<std::uint32_t>(std::min<std::uint64_t>(
            blocks, 0xffffffffULL)));
    item.blockLeft = item.profile.blockRunBytes;
    if (item.data.size == 0)
        item.data = Region{code.base, 4096};
    if (item.kind == WorkItem::Kind::Compute &&
        item.pattern == PatternKind::Sequential) {
        auto it = seqCursors.find(item.data.base);
        item.dataCursor = it != seqCursors.end() &&
                                  item.data.contains(it->second)
                              ? it->second
                              : item.data.base;
    } else {
        item.dataCursor = item.data.base;
    }
}

std::uint64_t
CodeGenerator::pendingOps() const
{
    std::uint64_t n = 0;
    for (const auto &item : items)
        n += item.opsLeft;
    return n;
}

Addr
CodeGenerator::nextPc(WorkItem &item)
{
    const Region &code = item.profile.code;
    if (item.blockLeft < 4) {
        // Jump to a new block within the code footprint.
        std::uint64_t blocks = code.size / 64;
        item.pc = code.base + 64ULL * rng.range(
            static_cast<std::uint32_t>(std::min<std::uint64_t>(
                blocks, 0xffffffffULL)));
        item.blockLeft = item.profile.blockRunBytes;
    }
    Addr pc = item.pc;
    item.pc += 4;
    item.blockLeft -= 4;
    if (item.pc >= code.base + code.size) {
        item.pc = code.base;
        item.blockLeft = item.profile.blockRunBytes;
    }
    return pc;
}

Addr
CodeGenerator::dataAddr(WorkItem &item, bool chase)
{
    const Region &region = item.data;
    if (region.size == 0)
        return region.base;
    switch (chase ? PatternKind::PointerChase : item.pattern) {
      case PatternKind::Sequential:
        {
            Addr a = item.dataCursor;
            item.dataCursor += item.stride;
            if (item.dataCursor >= region.base + region.size)
                item.dataCursor = region.base;
            return a;
        }
      case PatternKind::Random:
      case PatternKind::PointerChase:
        {
            std::uint64_t lines = std::max<std::uint64_t>(
                region.size / 64, 1);
            std::uint32_t pick = rng.range(
                static_cast<std::uint32_t>(std::min<std::uint64_t>(
                    lines, 0xffffffffULL)));
            return region.base + 64ULL * pick;
        }
      case PatternKind::Hot:
        {
            // 90% of accesses hit the first 10% of the region.
            std::uint64_t hot = std::max<std::uint64_t>(
                region.size / 10, 64);
            std::uint64_t span = rng.chance(0.9) ? hot : region.size;
            std::uint64_t lines = std::max<std::uint64_t>(
                span / 64, 1);
            std::uint32_t pick = rng.range(
                static_cast<std::uint32_t>(std::min<std::uint64_t>(
                    lines, 0xffffffffULL)));
            return region.base + 64ULL * pick;
        }
    }
    return region.base;
}

MicroOp
CodeGenerator::next()
{
    if (items.empty())
        osp_panic("CodeGenerator::next() called with no work queued");
    WorkItem &item = items.front();
    MicroOp op = item.kind == WorkItem::Kind::Compute
                     ? lowerCompute(item)
                     : lowerCopy(item);
    item.opsLeft -= 1;
    if (item.opsLeft == 0) {
        if (item.kind == WorkItem::Kind::Compute &&
            item.pattern == PatternKind::Sequential) {
            seqCursors[item.data.base] = item.dataCursor;
        }
        items.pop_front();
    }
    return op;
}

MicroOp
CodeGenerator::lowerCompute(WorkItem &item)
{
    const CodeProfile &p = item.profile;
    MicroOp op;
    op.pc = nextPc(item);

    double roll = rng.uniform();
    bool chase = item.pattern == PatternKind::PointerChase;
    if (roll < p.loadFrac) {
        op.cls = OpClass::Load;
        op.effAddr = dataAddr(item, chase);
        op.execLat = 0;  // latency comes from the memory system
        if (chase) {
            // Serialize on the previous load (pointer dereference);
            // opsSinceLoad is 1 when the previous op was a load.
            op.depDist = static_cast<std::uint8_t>(
                std::min<std::uint32_t>(opsSinceLoad, 255));
        }
    } else if (roll < p.loadFrac + p.storeFrac) {
        op.cls = OpClass::Store;
        op.effAddr = dataAddr(item, false);
        op.execLat = 1;
    } else if (roll < p.loadFrac + p.storeFrac + p.branchFrac) {
        op.cls = OpClass::Branch;
        op.execLat = 1;
        if (rng.chance(p.branchRandomFrac)) {
            op.taken = rng.chance(0.5);
        } else {
            // Strongly biased (loop-like) branch; predictors learn it.
            op.taken = !rng.chance(0.02);
        }
    } else if (roll < p.loadFrac + p.storeFrac + p.branchFrac +
                          p.fpFrac) {
        op.cls = OpClass::FpAlu;
        op.execLat = p.fpLatency;
    } else {
        op.cls = OpClass::IntAlu;
        op.execLat = 1;
    }

    if (op.cls != OpClass::Load || !chase) {
        if (rng.chance(p.depChance)) {
            double mean = std::max(p.depDistMean, 1.0);
            std::uint32_t d = rng.geometric(1.0 / mean);
            op.depDist =
                static_cast<std::uint8_t>(std::min<std::uint32_t>(
                    d, 255));
        }
    }
    opsSinceLoad = op.cls == OpClass::Load
                       ? 1
                       : std::min<std::uint32_t>(opsSinceLoad + 1,
                                                 255);
    return op;
}

MicroOp
CodeGenerator::lowerCopy(WorkItem &item)
{
    MicroOp op;
    op.pc = nextPc(item);
    switch (item.copyPhase) {
      case 0:
        op.cls = OpClass::Load;
        op.effAddr = item.srcCursor;
        op.execLat = 0;
        break;
      case 1:
        op.cls = OpClass::Store;
        op.effAddr = item.dstCursor;
        op.execLat = 1;
        op.depDist = 1;  // stores the value just loaded
        break;
      case 2:
        op.cls = OpClass::IntAlu;
        op.execLat = 1;
        break;
      case 3:
      default:
        op.cls = OpClass::Branch;
        op.execLat = 1;
        op.taken = true;  // loop-closing branch, well predicted
        item.srcCursor += 16;
        item.dstCursor += 16;
        if (item.src.size &&
            item.srcCursor >= item.src.base + item.src.size) {
            item.srcCursor = item.src.base;
        }
        if (item.dst.size &&
            item.dstCursor >= item.dst.base + item.dst.size) {
            item.dstCursor = item.dst.base;
        }
        break;
    }
    opsSinceLoad = op.cls == OpClass::Load
                       ? 1
                       : std::min<std::uint32_t>(opsSinceLoad + 1,
                                                 255);
    item.copyPhase = (item.copyPhase + 1) & 3;
    return op;
}

} // namespace osp
