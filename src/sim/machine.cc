#include "machine.hh"

#include <algorithm>
#include <type_traits>

#include "util/logging.hh"

namespace osp
{

const char *
pollutionPolicyName(PollutionPolicy policy)
{
    switch (policy) {
      case PollutionPolicy::None: return "none";
      case PollutionPolicy::PaperInvalidateApp:
        return "paper-invalidate-app";
      case PollutionPolicy::InvalidateAny: return "invalidate-any";
      case PollutionPolicy::SyntheticInstall:
        return "synthetic-install";
      case PollutionPolicy::Footprint: return "footprint";
    }
    return "?";
}

Machine::Machine(const MachineConfig &config,
                 std::unique_ptr<UserProgram> workload,
                 std::unique_ptr<KernelIface> kernel)
    : config_(config),
      workload_(std::move(workload)),
      kernel_(std::move(kernel)),
      hier(config_.hier),
      bp(12),
      inorder(config_.cpu, &hier, &bp),
      inorderNoCache(config_.cpu, nullptr, &bp),
      ooo(config_.cpu, &hier, &bp),
      oooNoCache(config_.cpu, nullptr, &bp),
      pollutionRng(config_.seed, 0x9011ULL)
{
    if (!workload_)
        osp_fatal("Machine requires a workload");
    if (!kernel_ && !config_.appOnly)
        osp_fatal("Machine requires a kernel unless appOnly is set");
}

void
Machine::setController(ServiceController *ctrl)
{
    controller = ctrl;
}

void
Machine::setIntervalProfiler(IntervalProfiler *profiler)
{
    profiler_ = profiler;
}

void
Machine::setSamplePlan(const SamplePlan *plan)
{
    samplePlan_ = plan;
}

void
Machine::setTelemetry(obs::Telemetry *telemetry)
{
    telemetry_ = telemetry;
    if (!telemetry) {
        cServicesDetailed_ = nullptr;
        cServicesPredicted_ = nullptr;
        cPollutionRequested_ = nullptr;
        cPollutionAffected_ = nullptr;
        cFootprintFills_ = nullptr;
        cIntervalsSampled_ = nullptr;
        cSampleDetailedInsts_ = nullptr;
        cSampleFfInsts_ = nullptr;
        hServiceInsts_ = nullptr;
        return;
    }
    obs::Registry &reg = telemetry->registry;
    cServicesDetailed_ = &reg.counter("machine", "services_detailed");
    cServicesPredicted_ =
        &reg.counter("machine", "services_predicted");
    cPollutionRequested_ =
        &reg.counter("machine", "pollution_lines_requested");
    cPollutionAffected_ =
        &reg.counter("machine", "pollution_slots_affected");
    cFootprintFills_ =
        &reg.counter("machine", "footprint_install_fills");
    cIntervalsSampled_ =
        &reg.counter("machine", "intervals_sampled");
    cSampleDetailedInsts_ =
        &reg.counter("machine", "sample_detailed_insts");
    cSampleFfInsts_ = &reg.counter("machine", "sample_ff_insts");
    hServiceInsts_ = &reg.histogram("machine", "service_insts");
}

void
Machine::warmOp(const MicroOp &op, Addr &fetch_line)
{
    // Same state-mutating calls the timing engines make (fetch per
    // new 64B line, one access per load/store, one predictor update
    // per branch), through the bus-neutral warm path so only cache
    // contents and predictor state carry across the fast-forward.
    if (usesCaches(config_.level)) {
        const Addr line = op.pc >> 6;
        if (line != fetch_line) {
            fetch_line = line;
            hier.warmAccess(op.pc, AccessType::InstFetch,
                            Owner::App);
        }
        if (op.cls == OpClass::Load)
            hier.warmAccess(op.effAddr, AccessType::Load,
                            Owner::App);
        else if (op.cls == OpClass::Store)
            hier.warmAccess(op.effAddr, AccessType::Store,
                            Owner::App);
    }
    if (op.cls == OpClass::Branch)
        bp.predictAndUpdate(op.pc, op.taken);
}

void
Machine::publishCacheStats()
{
    if (!telemetry_)
        return;
    obs::Registry &reg = telemetry_->registry;
    auto publish = [&](const std::string &comp, const Cache &c) {
        const CacheStats &s = c.stats();
        auto app = static_cast<int>(Owner::App);
        auto os = static_cast<int>(Owner::Os);
        reg.counter(comp, "accesses_app").inc(s.accesses[app]);
        reg.counter(comp, "accesses_os").inc(s.accesses[os]);
        reg.counter(comp, "misses_app").inc(s.misses[app]);
        reg.counter(comp, "misses_os").inc(s.misses[os]);
        reg.counter(comp, "evictions").inc(s.evictions);
        reg.counter(comp, "writebacks").inc(s.writebacks);
        reg.counter(comp, "cross_evictions").inc(s.crossEvictions);
        reg.counter(comp, "injected_evictions")
            .inc(s.injectedEvictions);
        reg.counter(comp, "injected_fills").inc(s.injectedFills);
    };
    publish("mem.l1i", hier.l1i());
    publish("mem.l1d", hier.l1d());
    publish("mem.l2", hier.l2());
}

template <class EngineT>
void
Machine::drainIntoT(EngineT *eng, Owner owner)
{
    if constexpr (std::is_same_v<EngineT, EmulateEngine>) {
        (void)eng;
        (void)owner;
    } else {
        Cycles cycles = eng->drain();
        if (cycles == 0)
            return;
        if (owner == Owner::App)
            totals_.appCycles += cycles;
        else
            totals_.osSimCycles += cycles;
    }
}

template <class EngineT>
void
Machine::deliverInterruptsT(EngineT *eng)
{
    while (auto irq = kernel_->pendingInterrupt(totals_.totalInsts()))
        runServiceT(eng, *irq);
}

template <class EngineT>
void
Machine::runServiceT(EngineT *eng, const ServiceRequest &req)
{
    constexpr bool timing =
        !std::is_same_v<EngineT, EmulateEngine>;
    auto type_idx = static_cast<int>(req.type);

    // Trace events from here on (including the controller's) stamp
    // the retired-instruction count, which is thread-count-invariant
    // unlike any wall clock.
    if (telemetry_)
        telemetry_->tracer.setTick(totals_.totalInsts());

    // A controller participates only when the run's configured
    // level is detailed — i.e. when it is actually offered the
    // chooseLevel() decision. An Emulate-level run with a
    // controller attached (e.g. the Phase-1 profiling pass of
    // sampled simulation) must not feed the predictor's learning or
    // audit state: a later detailed pass over the same controller
    // would double-count every service.
    const bool controller_active =
        controller && isDetailed(config_.level);

    // Decide the detail level for this invocation.
    DetailLevel level;
    if (!warmupDone) {
        level = DetailLevel::Emulate;
    } else if (controller_active) {
        DetailLevel chosen = controller->chooseLevel(req.type);
        // Any detailed choice maps onto the run's detail engine so
        // one run uses a single consistent timing model.
        level = isDetailed(chosen) ? config_.level
                                   : DetailLevel::Emulate;
    } else {
        level = config_.level;
    }
    bool detailed = isDetailed(level);

    // Close the application segment.
    drainIntoT(eng, Owner::App);

    // Functional execution + plan. A fresh generator per invocation,
    // seeded by the global invocation sequence, keeps the stream
    // identical regardless of the chosen detail level.
    CodeGenerator gen(config_.seed, 0x05ECA11ULL + ++serviceSeq);
    HierarchyCounts before = hier.counts();
    ServiceResult result = kernel_->invoke(
        req.type, req.args, totals_.totalInsts(), &gen);

    InstCount n = 0;
    std::uint64_t mix_loads = 0;
    std::uint64_t mix_stores = 0;
    std::uint64_t mix_branches = 0;
    bool need_mix = controller_active && controller->wantsOpMix();
    auto tally = [&](const MicroOp &op) {
        switch (op.cls) {
          case OpClass::Load: ++mix_loads; break;
          case OpClass::Store: ++mix_stores; break;
          case OpClass::Branch: ++mix_branches; break;
          default: break;
        }
    };
    MicroOp buf[kMaxBlockOps];
    std::size_t filled;
    if (detailed) {
        if constexpr (timing) {
            // The hot learning path: retire the kernel plan in
            // blocks on the concrete engine — no virtual dispatch,
            // no per-op queue-front checks.
            while ((filled = gen.nextBlock(buf, kMaxBlockOps)) != 0) {
                for (std::size_t i = 0; i < filled; ++i) {
                    eng->execute(buf[i], Owner::Os);
                    tally(buf[i]);
                }
                n += filled;
            }
        }
    } else if (config_.pollutionPolicy == PollutionPolicy::Footprint
               && usesCaches(config_.level) && warmupDone) {
        // Emulate, reservoir-sampling the interval's real addresses
        // for footprint-faithful pollution injection below.
        dataSample.clear();
        codeSample.clear();
        std::uint64_t data_seen = 0;
        std::uint64_t code_seen = 0;
        constexpr std::size_t dataCap = 2048;
        constexpr std::size_t codeCap = 512;
        while ((filled = gen.nextBlock(buf, kMaxBlockOps)) != 0) {
            for (std::size_t i = 0; i < filled; ++i) {
                const MicroOp &op = buf[i];
                tally(op);
                ++n;
                if (config_.bpWarming && op.cls == OpClass::Branch)
                    bp.predictAndUpdate(op.pc, op.taken);
                if (op.cls == OpClass::Load ||
                    op.cls == OpClass::Store) {
                    ++data_seen;
                    if (dataSample.size() < dataCap) {
                        dataSample.push_back(op.effAddr);
                    } else {
                        std::uint32_t j = pollutionRng.range(
                            static_cast<std::uint32_t>(data_seen));
                        if (j < dataCap)
                            dataSample[j] = op.effAddr;
                    }
                }
                if ((n & 15) == 0) {
                    ++code_seen;
                    if (codeSample.size() < codeCap) {
                        codeSample.push_back(op.pc);
                    } else {
                        std::uint32_t j = pollutionRng.range(
                            static_cast<std::uint32_t>(code_seen));
                        if (j < codeCap)
                            codeSample[j] = op.pc;
                    }
                }
            }
        }
    } else {
        bool warm_bp = config_.bpWarming && warmupDone &&
                       isDetailed(config_.level);
        if (!warm_bp && !need_mix) {
            // Nothing consumes the op stream: the plan's size is
            // known analytically, which is the fastest emulation
            // mode (a fresh generator serves each invocation, so
            // skipping the lowering perturbs nothing).
            n = gen.pendingOps();
            gen.clear();
        } else {
            while ((filled = gen.nextBlock(buf, kMaxBlockOps)) != 0) {
                for (std::size_t i = 0; i < filled; ++i) {
                    const MicroOp &op = buf[i];
                    tally(op);
                    ++n;
                    if (warm_bp && op.cls == OpClass::Branch)
                        bp.predictAndUpdate(op.pc, op.taken);
                }
            }
        }
    }
    totals_.osInsts += n;

    Cycles sim_cycles = 0;
    HierarchyCounts mem_delta;
    if (detailed) {
        if constexpr (timing) {
            sim_cycles = eng->drain();
            totals_.osSimCycles += sim_cycles;
            mem_delta = hier.counts() - before;
        }
    }

    if (!warmupDone) {
        lastServiceResult = result;
        return;
    }

    std::uint64_t invocation = invocationIndex[type_idx]++;
    ++totals_.osInvocations;
    auto &svc = totals_.perService[type_idx];
    ++svc.invocations;
    svc.insts += n;

    if (profiler_)
        profiler_->noteService(
            totals_.appInsts / profiler_->intervalLen(), req.type,
            n);

    ServiceController::Prediction pred;
    if (controller_active) {
        ServiceController::IntervalOutcome outcome;
        outcome.type = req.type;
        outcome.invocation = invocation;
        outcome.insts = n;
        outcome.loads = mix_loads;
        outcome.stores = mix_stores;
        outcome.branches = mix_branches;
        outcome.detailed = detailed;
        outcome.cycles = sim_cycles;
        outcome.mem = mem_delta;
        pred = controller->onServiceEnd(outcome);
    }

    IntervalRecord rec;
    rec.type = req.type;
    rec.invocation = invocation;
    rec.insts = n;
    rec.detailed = detailed;

    if (hServiceInsts_)
        hServiceInsts_->observe(n);

    if (detailed) {
        ++totals_.osSimulated;
        ++svc.simulated;
        svc.cycles += sim_cycles;
        rec.cycles = sim_cycles;
        rec.mem = mem_delta;
        if (cServicesDetailed_)
            cServicesDetailed_->inc();
        trace(obs::TraceEventKind::ServiceDetailed,
              static_cast<std::uint8_t>(type_idx), n, sim_cycles);
    } else {
        ++totals_.osPredicted;
        ++svc.predicted;
        totals_.osPredInsts += n;
        totals_.osPredCycles += pred.cycles;
        totals_.predictedMem += pred.mem;
        svc.cycles += pred.cycles;
        rec.cycles = pred.cycles;
        rec.mem = pred.mem;
        if (cServicesPredicted_)
            cServicesPredicted_->inc();
        trace(obs::TraceEventKind::ServicePredicted,
              static_cast<std::uint8_t>(type_idx), n, pred.cycles);
        // Model the skipped service's displacement of cached state
        // (Sec. 4.5 and DESIGN.md).
        if (usesCaches(config_.level)) {
            std::uint64_t requested = pred.mem.l1iMisses +
                                      pred.mem.l1dMisses +
                                      pred.mem.l2Misses;
            std::uint64_t affected = 0;
            switch (config_.pollutionPolicy) {
              case PollutionPolicy::None:
                requested = 0;
                break;
              case PollutionPolicy::PaperInvalidateApp:
                affected = hier.pollute(
                    pred.mem.l1iMisses, pred.mem.l1dMisses,
                    pred.mem.l2Misses,
                    Cache::PollutionMode::InvalidateApp);
                break;
              case PollutionPolicy::InvalidateAny:
                affected = hier.pollute(
                    pred.mem.l1iMisses, pred.mem.l1dMisses,
                    pred.mem.l2Misses,
                    Cache::PollutionMode::InvalidateAny);
                break;
              case PollutionPolicy::SyntheticInstall:
                affected = hier.pollute(
                    pred.mem.l1iMisses, pred.mem.l1dMisses,
                    pred.mem.l2Misses,
                    Cache::PollutionMode::Install);
                break;
              case PollutionPolicy::Footprint:
                {
                    // First pass: install the sampled real
                    // footprint, so the skipped service's own hot
                    // state stays resident. Installs that find the
                    // line already cached displace nothing, so a
                    // second pass injects synthetic displacement for
                    // whatever remains of the predicted miss counts.
                    std::uint64_t l1d_fills = 0;
                    std::uint64_t l1i_fills = 0;
                    std::uint64_t l2_fills = 0;
                    for (std::uint64_t k = 0;
                         k < pred.mem.l1dMisses &&
                         !dataSample.empty();
                         ++k) {
                        auto out = hier.installLine(
                            dataSample[k % dataSample.size()],
                            false, Owner::Os);
                        l1d_fills += out.l1Fill;
                        l2_fills += out.l2Fill;
                    }
                    for (std::uint64_t k = 0;
                         k < pred.mem.l1iMisses &&
                         !codeSample.empty();
                         ++k) {
                        auto out = hier.installLine(
                            codeSample[k % codeSample.size()], true,
                            Owner::Os);
                        l1i_fills += out.l1Fill;
                        l2_fills += out.l2Fill;
                    }
                    auto rest = [](std::uint64_t want,
                                   std::uint64_t got) {
                        return want > got ? want - got : 0;
                    };
                    std::uint64_t fills =
                        l1i_fills + l1d_fills + l2_fills;
                    if (cFootprintFills_)
                        cFootprintFills_->inc(fills);
                    affected = fills + hier.pollute(
                        rest(pred.mem.l1iMisses, l1i_fills),
                        rest(pred.mem.l1dMisses, l1d_fills),
                        rest(pred.mem.l2Misses, l2_fills),
                        Cache::PollutionMode::Install);
                }
                break;
            }
            if (requested) {
                if (cPollutionRequested_)
                    cPollutionRequested_->inc(requested);
                if (cPollutionAffected_)
                    cPollutionAffected_->inc(affected);
                trace(obs::TraceEventKind::Pollution,
                      static_cast<std::uint8_t>(type_idx),
                      requested, affected);
            }
        }
    }

    if (config_.recordIntervals)
        intervals_.push_back(rec);

    lastServiceResult = result;
}

template <class EngineT>
const RunTotals &
Machine::runLoop(EngineT *eng, InstCount max_insts)
{
    constexpr bool timing =
        !std::is_same_v<EngineT, EmulateEngine>;

    if (running)
        osp_panic("Machine::run() may only be called once");
    running = true;

    warmupDone = !workload_->inWarmup();

    const bool app_only = config_.appOnly;
    const std::size_t block_cap = std::clamp<std::size_t>(
        config_.blockOps, 1, kMaxBlockOps);
    MicroOp buf[kMaxBlockOps];

    // Direct-mapped memo of pages already known resident. Sound
    // because KernelIface guarantees a page never becomes absent
    // once touched, so skipping a repeat touchUserPage() skips only
    // a guaranteed-false virtual call. ~0 can never equal a real
    // addr >> 12 (addresses are far below 2^48).
    constexpr std::size_t kPageMemoSlots = 256;
    constexpr unsigned kPageShift = 12;
    static_assert((Addr(1) << kPageShift) ==
                  KernelIface::kUserPageBytes);
    Addr page_memo[kPageMemoSlots];
    for (Addr &slot : page_memo)
        slot = ~Addr(0);

    // Earliest pending interrupt: polled per instruction only once
    // the retired count reaches it, refreshed after every service
    // invocation (which may schedule earlier events). The default
    // KernelIface hint of 0 degenerates to the poll-every-op
    // behaviour this loop replaced.
    constexpr InstCount kNever = ~InstCount(0);
    InstCount irq_due = kNever;
    auto refreshIrq = [&] {
        if (!app_only && kernel_)
            irq_due = kernel_->nextInterruptAt();
    };
    refreshIrq();

    // Stratified-sampling support: with a profiler (Phase 1) or a
    // sample plan (Phase 2) attached, retirement chunks are
    // additionally cut at fixed-length app-instruction interval
    // edges so every chunk lies inside one interval. Detached (the
    // common case) this costs one predictable test per chunk and
    // nothing per op.
    const InstCount interval_len =
        samplePlan_ ? samplePlan_->intervalLen
                    : (profiler_ ? profiler_->intervalLen() : 0);
    constexpr std::uint64_t kNoInterval = ~std::uint64_t(0);
    std::uint64_t cur_interval = kNoInterval;
    Cycles interval_cycles0 = 0;
    InstCount interval_insts0 = 0;
    Addr warm_fetch_line = ~Addr(0);
    sampleLog_.clear();

    MicroOp op;
    ServiceRequest req;
    for (;;) {
        if (max_insts && totals_.totalInsts() >= max_insts)
            break;

        if (!warmupDone && !workload_->inWarmup()) {
            // Warm-up just ended: functional state (page cache,
            // sockets, predictor-visible history) is warm; discard
            // the statistics gathered so far. (Warm-up state only
            // changes when the workload's state machine advances —
            // never inside a fetched block — so checking at block
            // granularity is exact.)
            warmupDone = true;
            totals_ = RunTotals();
            intervals_.clear();
            if (profiler_)
                profiler_->reset();
            sampleLog_.clear();
            cur_interval = kNoInterval;
        }

        // Fetch a block of queued user compute; fall back to
        // step() for syscalls, completion and non-batching
        // programs.
        std::size_t n = block_cap > 1
                            ? workload_->opBlock(buf, block_cap)
                            : 0;
        if (n == 0) {
            UserProgram::Step s = workload_->step(op, req);
            if (s == UserProgram::Step::Done)
                break;
            if (s != UserProgram::Step::Op) {
                if (app_only) {
                    ServiceResult res =
                        kernel_
                            ? kernel_->invoke(req.type, req.args,
                                              totals_.totalInsts(),
                                              nullptr)
                            : ServiceResult();
                    workload_->onServiceReturn(req.type, res);
                } else {
                    runServiceT(eng, req);
                    workload_->onServiceReturn(req.type,
                                               lastServiceResult);
                    deliverInterruptsT(eng);
                    refreshIrq();
                }
                continue;
            }
            buf[0] = op;
            n = 1;
        }

        if constexpr (!timing) {
            if (app_only) {
                // Pure emulation with no kernel: whole-block
                // retirement — no faults, no interrupts, no timing
                // models. Clamp so the retired count never passes
                // max_insts (the per-op loop stopped exactly there).
                std::size_t take = n;
                if (max_insts) {
                    InstCount room =
                        max_insts - totals_.totalInsts();
                    take = static_cast<std::size_t>(
                        std::min<InstCount>(take, room));
                }
                totals_.appInsts += take;
                continue;
            }
        }

        // Retire the block in chunks whose boundaries are the next
        // interrupt-due point and the max_insts cap, so neither is
        // re-checked per op. Within a chunk the only per-op work is
        // the (memoized) fault check and the engine itself; retired
        // ops accumulate in a local and flush to totals_ at chunk
        // end (and before any service call, which reads the count).
        const bool engine_live = timing && warmupDone;
        std::size_t i = 0;
        while (i < n) {
            const InstCount base = totals_.totalInsts();
            if (i && max_insts && base >= max_insts)
                break;
            bool chunk_live = engine_live;
            [[maybe_unused]] bool warm_ff = false;
            if (interval_len && warmupDone) {
                // Interval bookkeeping at the chunk edge: close a
                // finished sampled interval (drain so its cycle
                // cost is exact) and open the next.
                const std::uint64_t iv =
                    totals_.appInsts / interval_len;
                if (iv != cur_interval) {
                    if (samplePlan_) {
                        if (cur_interval != kNoInterval &&
                            samplePlan_->sampled(cur_interval)) {
                            drainIntoT(eng, Owner::App);
                            sampleLog_.push_back(
                                {cur_interval,
                                 totals_.appCycles -
                                     interval_cycles0,
                                 totals_.appInsts -
                                     interval_insts0});
                        }
                        if (samplePlan_->sampled(iv)) {
                            interval_cycles0 = totals_.appCycles;
                            interval_insts0 = totals_.appInsts;
                        }
                    }
                    cur_interval = iv;
                }
                if (samplePlan_) {
                    chunk_live = engine_live &&
                                 samplePlan_->sampled(cur_interval);
                    warm_ff = timing && warmupDone && !chunk_live;
                }
            }
            InstCount limit = static_cast<InstCount>(n - i);
            if (max_insts)
                limit = std::min(limit, max_insts - base);
            if (interval_len && warmupDone)
                limit = std::min(
                    limit,
                    interval_len - totals_.appInsts % interval_len);
            bool irq_boundary = false;
            if (!app_only) {
                // The op that reaches irq_due triggers delivery
                // *after* it retires; if irq_due is already past
                // (a service landed us beyond it), the next op
                // delivers.
                InstCount until =
                    irq_due > base ? irq_due - base : 1;
                if (until <= limit) {
                    limit = until;
                    irq_boundary = true;
                }
            }
            const std::size_t end =
                i + static_cast<std::size_t>(limit);
            const std::size_t chunk_begin = i;
            InstCount retired = 0;
            bool resync = false;
            for (; i < end; ++i) {
                const MicroOp &o = buf[i];
                if (!app_only && (o.cls == OpClass::Load ||
                                  o.cls == OpClass::Store)) {
                    const Addr page = o.effAddr >> kPageShift;
                    Addr &slot =
                        page_memo[page & (kPageMemoSlots - 1)];
                    if (slot != page) {
                        if (kernel_->touchUserPage(o.effAddr)) {
                            totals_.appInsts += retired;
                            retired = 0;
                            ServiceRequest fault;
                            fault.type = ServiceType::IntPageFault;
                            fault.args.arg0 = o.effAddr;
                            runServiceT(eng, fault);
                            refreshIrq();
                            slot = page;
                            // Retire the faulting op here, then
                            // resync: the service moved the counts,
                            // so the chunk boundaries are stale.
                            if constexpr (timing) {
                                if (chunk_live)
                                    eng->execute(o, Owner::App);
                                else if (warm_ff)
                                    warmOp(o, warm_fetch_line);
                            }
                            ++totals_.appInsts;
                            ++i;
                            if (totals_.totalInsts() >= irq_due) {
                                deliverInterruptsT(eng);
                                refreshIrq();
                            }
                            resync = true;
                            break;
                        }
                        slot = page;
                    }
                }
                if constexpr (timing) {
                    if (chunk_live)
                        eng->execute(o, Owner::App);
                    else if (warm_ff)
                        warmOp(o, warm_fetch_line);
                }
                ++retired;
            }
            if (profiler_ && warmupDone && i > chunk_begin)
                profiler_->noteOps(cur_interval, buf + chunk_begin,
                                   i - chunk_begin);
            if (resync)
                continue;
            totals_.appInsts += retired;
            if (irq_boundary) {
                deliverInterruptsT(eng);
                refreshIrq();
            }
        }
    }

    // Close the last (possibly partial, always-detailed-tail)
    // sampled interval and finalize the profile.
    if (samplePlan_ && warmupDone && cur_interval != kNoInterval &&
        samplePlan_->sampled(cur_interval)) {
        drainIntoT(eng, Owner::App);
        sampleLog_.push_back(
            {cur_interval, totals_.appCycles - interval_cycles0,
             totals_.appInsts - interval_insts0});
    }
    if (profiler_)
        profiler_->finish(totals_.appInsts);
    if (samplePlan_ && cIntervalsSampled_) {
        InstCount detailed = 0;
        for (const IntervalSample &s : sampleLog_)
            detailed += s.appInsts;
        cIntervalsSampled_->inc(sampleLog_.size());
        cSampleDetailedInsts_->inc(detailed);
        cSampleFfInsts_->inc(totals_.appInsts - detailed);
    }

    drainIntoT(eng, Owner::App);
    totals_.measuredMem = hier.counts();
    publishCacheStats();
    if (telemetry_) {
        // Hand the accuracy ledger its error-budget denominator:
        // total simulated time and the predicted share of it.
        telemetry_->accuracy.noteRunTotals(totals_.totalCycles(),
                                           totals_.osPredCycles);
    }
    return totals_;
}

const RunTotals &
Machine::run(InstCount max_insts)
{
    // One switch for the whole run: every per-instruction dispatch
    // below this point is on a concrete engine type.
    switch (config_.level) {
      case DetailLevel::InOrderCache:
        return runLoop(&inorder, max_insts);
      case DetailLevel::InOrderNoCache:
        return runLoop(&inorderNoCache, max_insts);
      case DetailLevel::OooCache:
        return runLoop(&ooo, max_insts);
      case DetailLevel::OooNoCache:
        return runLoop(&oooNoCache, max_insts);
      case DetailLevel::Emulate:
        break;
    }
    EmulateEngine none;
    return runLoop(&none, max_insts);
}

} // namespace osp
