/**
 * @file
 * Lowering of declarative work items into MicroOp streams.
 *
 * Workloads and OS service handlers describe what a piece of code
 * does ("run 1200 VFS-profile ops over the dentry region", "copy
 * 16KB from the page cache to the user buffer") and the
 * CodeGenerator turns that into a deterministic instruction stream.
 *
 * Determinism matters: the same plan produces the same instruction
 * count whether it is consumed by the detailed timing models or by
 * the fast emulator, which is precisely the property that makes the
 * instruction count usable as a performance-behaviour signature
 * (Sec. 3 of the paper).
 */

#ifndef OSP_SIM_CODEGEN_HH
#define OSP_SIM_CODEGEN_HH

#include <cstddef>
#include <cstdint>
#include <deque>
#include <unordered_map>
#include <vector>

#include "code_profile.hh"
#include "microop.hh"
#include "util/random.hh"

namespace osp
{

/**
 * A queue of work items lowered lazily into MicroOps.
 *
 * Each instance owns its RNG, so two generators never perturb each
 * other and a given (seed, stream) pair replays exactly.
 */
class CodeGenerator
{
  public:
    explicit CodeGenerator(std::uint64_t seed, std::uint64_t stream);

    /**
     * Queue a generic compute block.
     *
     * @param profile  instruction mix / code footprint to draw from
     * @param num_ops  exact number of MicroOps the block yields
     * @param data     region loads and stores fall into
     * @param pattern  how data accesses walk the region
     * @param stride   stride for sequential patterns (bytes)
     */
    void pushCompute(const CodeProfile &profile, std::uint64_t num_ops,
                     Region data,
                     PatternKind pattern = PatternKind::Sequential,
                     std::uint32_t stride = 64);

    /**
     * Queue a copy loop moving @p bytes from @p src to @p dst.
     * Lowered as 4 ops per 16 bytes: load, store, index update,
     * loop branch. Yields exactly 4 * ceil(bytes/16) ops.
     */
    void pushCopy(const CodeProfile &profile, std::uint64_t bytes,
                  Region src, Region dst);

    /** True when every queued item is exhausted. */
    bool done() const { return items.empty(); }

    /** Exact number of MicroOps left across all queued items. */
    std::uint64_t pendingOps() const;

    /** Produce the next MicroOp. Calling with done() is a panic. */
    MicroOp next();

    /**
     * Lower up to @p cap MicroOps into @p out and return how many
     * were produced (0 iff done()). Produces the byte-identical
     * sequence repeated next() calls would — same RNG draws, same
     * cursor updates — but hoists the per-op queue-front checks and
     * kind dispatch out of the loop, which is what makes block
     * retirement in the Machine worth having.
     */
    std::size_t nextBlock(MicroOp *out, std::size_t cap);

    /** Drop all queued work. */
    void clear() { items.clear(); }

  private:
    struct WorkItem
    {
        enum class Kind : std::uint8_t { Compute, Copy };
        Kind kind = Kind::Compute;
        CodeProfile profile;  //!< copied: callers may reuse/destroy
        std::uint64_t opsLeft = 0;
        // Data-access cursors.
        Region data;
        PatternKind pattern = PatternKind::Sequential;
        std::uint32_t stride = 64;
        Addr dataCursor = 0;
        // Copy state.
        Region src;
        Region dst;
        Addr srcCursor = 0;
        Addr dstCursor = 0;
        std::uint8_t copyPhase = 0;
        // Fetch state.
        Addr pc = 0;
        std::uint32_t blockLeft = 0;
        /**
         * Raw-integer forms of the profile's class-selection and
         * Bernoulli thresholds (Pcg32::rawThreshold), derived once
         * in startItem() from the exact cumulative doubles the
         * lowering compares used to rebuild per op. Same draws,
         * same outcomes — minus four int->double conversions and
         * double compares per lowered op.
         */
        std::uint64_t thrLoad = 0;
        std::uint64_t thrStore = 0;      //!< load + store
        std::uint64_t thrBranch = 0;     //!< load + store + branch
        std::uint64_t thrFp = 0;         //!< ... + fp
        std::uint64_t thrBranchRandom = 0;
        std::uint64_t thrDep = 0;
        /**
         * Precomputed range(bound) constants for the item's fixed
         * bounds (code-block jumps, data-region lines, hot-subset
         * lines), so the per-draw path never recomputes a rejection
         * threshold or Lemire magic when draws alternate between
         * bounds. Same draws, same values as plain range().
         */
        Pcg32::RangeDraw pcDraw;
        Pcg32::RangeDraw dataDraw;
        Pcg32::RangeDraw hotDraw;
        /** Index into geomTables for the profile's dep-distance p. */
        std::uint32_t geomIdx = 0;
    };

    /** Pick a data address for the current item and advance cursors. */
    Addr dataAddr(WorkItem &item, bool chase);

    /** Advance the fetch point; returns the pc for the next op. */
    Addr nextPc(WorkItem &item);

    MicroOp lowerCompute(WorkItem &item);
    MicroOp lowerCopy(WorkItem &item);

    void startItem(WorkItem &item);

    /** Index of the (built-on-demand) GeomTable for probability p. */
    std::uint32_t geomTableFor(double p);

    std::deque<WorkItem> items;
    Pcg32 rng;
    /**
     * One exact-replay geometric table per distinct dep-distance
     * probability seen (a handful per run: user profile + service
     * profiles). Items reference them by index, so re-pushing a
     * profile every few thousand ops never rebuilds a table.
     */
    std::vector<Pcg32::GeomTable> geomTables;
    /** Dynamic distance (ops) since the last emitted load, for
     *  pointer-chase dependence chains. */
    std::uint32_t opsSinceLoad = 255;
    /**
     * Sequential-pattern cursors persisted across work items, keyed
     * by region base: a streaming workload split into many compute
     * blocks keeps walking forward instead of restarting at the
     * region base each block.
     */
    std::unordered_map<Addr, Addr> seqCursors;
};

} // namespace osp

#endif // OSP_SIM_CODEGEN_HH
