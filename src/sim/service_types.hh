/**
 * @file
 * OS service taxonomy and the syscall/interrupt ABI of the simulated
 * machine.
 *
 * An *OS service* is a specific type of system call or interrupt
 * handled in privileged mode (paper Sec. 3); an *OS service
 * interval* runs from the mode switch into the kernel until the
 * return to user mode. The type of the initiating event names the
 * whole interval even if the handler internally performs more work
 * (the paper's simplification).
 *
 * The service list mirrors the ones the paper's Figs. 3-5 report for
 * the Linux 2.6.13 guest: the hot system calls of the web server /
 * Unix tool / network workloads plus the timer, disk and NIC
 * interrupt vectors and the page-fault exception.
 */

#ifndef OSP_SIM_SERVICE_TYPES_HH
#define OSP_SIM_SERVICE_TYPES_HH

#include <cstdint>

namespace osp
{

/** Every OS service type the synthetic kernel implements. */
enum class ServiceType : std::uint8_t
{
    SysRead = 0,
    SysWrite,
    SysOpen,
    SysClose,
    SysPoll,
    SysSocketcall,
    SysStat64,
    SysWritev,
    SysFcntl64,
    SysIpc,
    SysGettimeofday,
    SysBrk,
    IntPageFault,  //!< Int_14: page-fault exception (synchronous)
    IntDisk,       //!< Int_49: disk I/O completion
    IntNic,        //!< Int_121: network interface
    IntTimer,      //!< Int_239: local APIC timer tick
    NumTypes,
};

/** Number of distinct service types (for type-indexed tables). */
inline constexpr int numServiceTypes =
    static_cast<int>(ServiceType::NumTypes);

/** Linux-style display name, e.g. "sys_read" or "Int_239". */
const char *serviceName(ServiceType type);

/** True for asynchronous services (interrupts), false for system
 *  calls and synchronous exceptions. */
bool isInterrupt(ServiceType type);

/** Arguments passed from user mode on a syscall; the meaning of each
 *  register is service-specific (like x86 EBX/ECX/EDX). */
struct SyscallArgs
{
    std::uint64_t arg0 = 0;
    std::uint64_t arg1 = 0;
    std::uint64_t arg2 = 0;
};

/** Value returned to user mode when the service interval ends. */
struct ServiceResult
{
    std::uint64_t value = 0;
};

/** A pending mode-switch request: which service, with which args. */
struct ServiceRequest
{
    ServiceType type = ServiceType::SysRead;
    SyscallArgs args;
};

} // namespace osp

#endif // OSP_SIM_SERVICE_TYPES_HH
