/**
 * @file
 * The three interfaces the Machine binds together: the guest
 * application (UserProgram), the guest kernel (KernelIface), and the
 * acceleration controller (ServiceController).
 *
 * Layering: sim/ owns only the abstractions; os/ implements
 * KernelIface, workload/ implements UserProgram, and core/ (the
 * paper's contribution) implements ServiceController.
 */

#ifndef OSP_SIM_INTERFACES_HH
#define OSP_SIM_INTERFACES_HH

#include <cstddef>
#include <cstdint>
#include <optional>

#include "codegen.hh"
#include "detail_level.hh"
#include "mem/hierarchy.hh"
#include "microop.hh"
#include "service_types.hh"
#include "util/types.hh"

namespace osp
{

/**
 * A guest application. The Machine pulls user-mode instructions from
 * it; when the program needs the OS it raises a syscall instead of
 * an instruction.
 */
class UserProgram
{
  public:
    virtual ~UserProgram() = default;

    /** What the program produced on this step. */
    enum class Step
    {
        Op,       //!< @p op was filled with a user-mode instruction
        Syscall,  //!< @p req was filled with a service request
        Done,     //!< the program finished
    };

    /** Produce the next instruction or service request. */
    virtual Step step(MicroOp &op, ServiceRequest &req) = 0;

    /**
     * Fill up to @p cap already-queued user-mode instructions into
     * @p buf and return how many were produced. Must never advance
     * the program's syscall state machine: a return of 0 means the
     * next event has to come from step() (a syscall, completion, or
     * a program that does not batch). The ops returned must be the
     * byte-identical sequence step() would have produced, so the
     * Machine can retire whole blocks without any behavioural
     * difference. The default keeps legacy programs working with
     * zero changes.
     */
    virtual std::size_t
    opBlock(MicroOp *buf, std::size_t cap)
    {
        (void)buf;
        (void)cap;
        return 0;
    }

    /** Deliver the result of a completed synchronous service. */
    virtual void onServiceReturn(ServiceType type,
                                 ServiceResult result) = 0;

    /**
     * True while the program is still in its skipped warm-up phase
     * (e.g. the first 300 HTTP requests of Sec. 5.2). The Machine
     * runs warm-up in pure emulation and resets statistics when it
     * ends.
     */
    virtual bool inWarmup() const { return false; }

    /** Workload display name ("ab-rand", "du", ...). */
    virtual const char *name() const = 0;
};

/**
 * A guest kernel. Functionally executes OS services (updating its
 * own state: page cache, sockets, ...) and, when asked, plans the
 * instruction stream the service executes. The plan is produced by
 * the same call that updates state, so detailed simulation and fast
 * emulation observe the identical instruction count — the
 * mode-invariant signature the paper's predictor requires.
 */
class KernelIface
{
  public:
    virtual ~KernelIface() = default;

    /**
     * Execute one service invocation functionally and, if @p gen is
     * non-null, queue its instruction plan into @p gen.
     *
     * @param type service type
     * @param args user-provided arguments
     * @param now  retired-instruction count at entry (for scheduling
     *             deferred interrupts)
     * @param gen  plan sink, or nullptr for functional-only
     *             execution (application-only simulation)
     */
    virtual ServiceResult invoke(ServiceType type,
                                 const SyscallArgs &args,
                                 InstCount now,
                                 CodeGenerator *gen) = 0;

    /**
     * The next interrupt due at or before the given
     * retired-instruction count, if any. Arrival is keyed to
     * instruction counts, not cycles, so detailed and emulated runs
     * observe identical interrupt schedules.
     */
    virtual std::optional<ServiceRequest>
    pendingInterrupt(InstCount now) = 0;

    /**
     * Lower bound on the retired-instruction count of the earliest
     * pending interrupt, or InstCount max if none is pending. The
     * Machine uses this to skip the per-instruction
     * pendingInterrupt() poll: it only polls once the count reaches
     * the bound, and refreshes the bound after every service
     * invocation (which may schedule earlier events). Returning 0 —
     * the conservative default — restores the poll-every-op
     * behaviour, so implementations that cannot cheaply answer stay
     * correct.
     */
    virtual InstCount nextInterruptAt() const { return 0; }

    /**
     * Page granularity of touchUserPage(): implementations must
     * fault at most once per kUserPageBytes-aligned page, and a page
     * once resident never becomes absent again. The Machine's run
     * loop relies on both properties to memoize known-present pages
     * and skip the per-access virtual call.
     */
    static constexpr Addr kUserPageBytes = 4096;

    /**
     * Record a user-mode touch of @p addr; returns true if it
     * page-faults (first touch of the page), in which case the
     * Machine runs the Int_14 service before the access.
     */
    virtual bool touchUserPage(Addr addr) = 0;
};

/**
 * Decides, per OS-service invocation, whether to simulate in detail
 * (learning) or skip to emulation and predict (prediction) — the
 * paper's core mechanism. Implemented by core/Accelerator; a null
 * controller means every service is fully simulated.
 */
class ServiceController
{
  public:
    /** Cycle/miss prediction for an emulated invocation. */
    struct Prediction
    {
        Cycles cycles = 0;
        HierarchyCounts mem;  //!< predicted per-interval cache deltas
    };

    /** One finished OS-service interval. */
    struct IntervalOutcome
    {
        ServiceType type = ServiceType::SysRead;
        /** Per-type invocation index (0-based). */
        std::uint64_t invocation = 0;
        InstCount insts = 0;      //!< the signature
        /** Instruction mix (populated when wantsOpMix(), or when
         *  the interval's op stream was consumed anyway). */
        std::uint64_t loads = 0;
        std::uint64_t stores = 0;
        std::uint64_t branches = 0;
        bool detailed = false;    //!< fully simulated?
        Cycles cycles = 0;        //!< valid when detailed
        HierarchyCounts mem;      //!< valid when detailed
    };

    virtual ~ServiceController() = default;

    /**
     * Controllers using instruction-mix signatures return true so
     * the Machine tallies per-class counts even in emulation (it
     * then always lowers the op stream instead of taking the
     * analytic-count shortcut).
     */
    virtual bool wantsOpMix() const { return false; }

    /** Choose the detail level for the next invocation of @p type. */
    virtual DetailLevel chooseLevel(ServiceType type) = 0;

    /**
     * Consume a finished interval. For a detailed interval the
     * return value is ignored; for an emulated interval the
     * controller must return its performance prediction, which the
     * Machine adds to the run totals and uses to inject cache
     * pollution.
     */
    virtual Prediction onServiceEnd(const IntervalOutcome &outcome) = 0;
};

} // namespace osp

#endif // OSP_SIM_INTERFACES_HH
