/**
 * @file
 * Simulation detail levels (the modes of the paper's Table 1, plus
 * pure functional emulation used for fast-forwarding).
 */

#ifndef OSP_SIM_DETAIL_LEVEL_HH
#define OSP_SIM_DETAIL_LEVEL_HH

namespace osp
{

/** How much timing detail to model while executing instructions. */
enum class DetailLevel
{
    Emulate,         //!< functional only: count instructions
    InOrderNoCache,  //!< in-order core, flat memory
    InOrderCache,    //!< in-order core + cache hierarchy
    OooNoCache,      //!< out-of-order core, flat memory
    OooCache,        //!< out-of-order core + cache hierarchy
};

/** Short display name for reports. */
inline const char *
detailLevelName(DetailLevel level)
{
    switch (level) {
      case DetailLevel::Emulate: return "emulate";
      case DetailLevel::InOrderNoCache: return "inorder-nocache";
      case DetailLevel::InOrderCache: return "inorder-cache";
      case DetailLevel::OooNoCache: return "ooo-nocache";
      case DetailLevel::OooCache: return "ooo-cache";
    }
    return "?";
}

/** True if the level uses the cache hierarchy. */
inline bool
usesCaches(DetailLevel level)
{
    return level == DetailLevel::InOrderCache ||
           level == DetailLevel::OooCache;
}

/** True if the level models timing at all. */
inline bool
isDetailed(DetailLevel level)
{
    return level != DetailLevel::Emulate;
}

} // namespace osp

#endif // OSP_SIM_DETAIL_LEVEL_HH
