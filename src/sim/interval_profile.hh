/**
 * @file
 * Phase-1 interval profiling and Phase-2 sample plans for stratified
 * interval sampling (composed with OS-service prediction; see
 * EXPERIMENTS.md "Sampled simulation").
 *
 * Execution is sliced into fixed-length intervals of *application*
 * retired instructions (OS-service instructions never shift a
 * boundary, so interval edges are identical across detail levels —
 * the kernel plans come from the same seeded generator either way).
 * Phase 1 attaches an IntervalProfiler to an Emulate-engine run and
 * records a cheap per-interval feature vector; Phase 2 hands the
 * Machine a SamplePlan naming the intervals to simulate in detail,
 * fast-forwarding the rest with functional cache/branch-predictor
 * warming.
 */

#ifndef OSP_SIM_INTERVAL_PROFILE_HH
#define OSP_SIM_INTERVAL_PROFILE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "microop.hh"
#include "service_types.hh"
#include "util/types.hh"

namespace osp
{

/** Per-interval tallies gathered during the Phase-1 Emulate pass. */
struct IntervalFeatures
{
    std::uint64_t ops = 0;       //!< app instructions observed
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t branches = 0;
    std::uint64_t fp = 0;
    std::uint64_t taken = 0;     //!< taken branches
    std::uint64_t svcInvocations = 0;
    InstCount svcInsts = 0;      //!< OS instructions in services
    std::array<std::uint32_t,
               static_cast<std::size_t>(numServiceTypes)>
        svcCounts{};             //!< service-signature mix
};

/**
 * Accumulates per-interval features from the run loop. The Machine
 * feeds it whole retired chunks (never spanning an interval edge)
 * plus one call per OS-service invocation, and finish()es it with
 * the final app-instruction count. reset() discards warm-up
 * tallies, mirroring the Machine's own warm-up statistics reset.
 */
class IntervalProfiler
{
  public:
    explicit IntervalProfiler(InstCount interval_len);

    InstCount intervalLen() const { return intervalLen_; }

    void reset();

    /** Tally @p n retired app ops belonging to @p interval. */
    void noteOps(std::uint64_t interval, const MicroOp *ops,
                 std::size_t n);

    /** Tally one OS-service invocation of @p insts kernel ops. */
    void noteService(std::uint64_t interval, ServiceType type,
                     InstCount insts);

    /** Close the profile at @p total_app_insts retired. */
    void finish(InstCount total_app_insts);

    const std::vector<IntervalFeatures> &intervals() const
    {
        return intervals_;
    }
    /** Intervals of exactly intervalLen() app insts; anything past
     *  fullIntervals() * intervalLen() is the always-detailed tail. */
    std::uint64_t fullIntervals() const { return fullIntervals_; }
    InstCount tailInsts() const { return tailInsts_; }

    /** Feature matrix over the full intervals (densities per app
     *  instruction + service-signature mix), for stratification. */
    std::vector<std::vector<double>> featureMatrix() const;

    /** Per-interval memory-access density, the Neyman-allocation
     *  cost proxy (memory stalls dominate CPI variation). */
    std::vector<double> costProxy() const;

  private:
    IntervalFeatures &at(std::uint64_t interval);

    InstCount intervalLen_;
    std::vector<IntervalFeatures> intervals_;
    std::uint64_t fullIntervals_ = 0;
    InstCount tailInsts_ = 0;
};

/** Phase-2 contract: which intervals run on the timing engine. */
struct SamplePlan
{
    InstCount intervalLen = 0;
    /** Number of full-length intervals seen by Phase 1; intervals
     *  at or past this index form the tail, which is always
     *  simulated in detail (it is measured, not extrapolated). */
    std::uint64_t fullIntervals = 0;
    std::vector<std::uint8_t> sampledMask;  //!< size fullIntervals

    bool sampled(std::uint64_t interval) const
    {
        return interval >= fullIntervals ||
               sampledMask[static_cast<std::size_t>(interval)] != 0;
    }
};

/** One detailed-simulated interval's measurement from Phase 2. */
struct IntervalSample
{
    std::uint64_t index = 0;
    Cycles appCycles = 0;   //!< app cycles accrued in the interval
    InstCount appInsts = 0; //!< app insts retired in the interval
};

} // namespace osp

#endif // OSP_SIM_INTERVAL_PROFILE_HH
