/**
 * @file
 * The full-system simulator: binds a guest application, a guest
 * kernel, the CPU timing models and the memory hierarchy, and runs
 * them with per-interval switchable detail — the capability the
 * paper had to assume Simics would eventually grow (Sec. 6.4).
 *
 * Execution alternates between user mode (instructions pulled from
 * the UserProgram) and kernel mode (OS-service intervals planned by
 * the KernelIface). Every mode switch drains the active timing
 * model, so each interval has a well-defined cycle cost, and raises
 * events that a ServiceController (the paper's learning/prediction
 * engine) can use to decide whether the next OS-service invocation
 * is simulated in detail or fast-forwarded in emulation.
 */

#ifndef OSP_SIM_MACHINE_HH
#define OSP_SIM_MACHINE_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "branch_predictor.hh"
#include "codegen.hh"
#include "cpu.hh"
#include "util/random.hh"
#include "detail_level.hh"
#include "inorder_cpu.hh"
#include "interfaces.hh"
#include "interval_profile.hh"
#include "mem/hierarchy.hh"
#include "obs/telemetry.hh"
#include "ooo_cpu.hh"
#include "service_types.hh"
#include "util/types.hh"

namespace osp
{

/**
 * How a predicted (emulated) OS-service interval's cache side
 * effects are modelled.
 */
enum class PollutionPolicy
{
    /** No pollution modeling at all (ablation baseline). */
    None,
    /** The paper's Sec. 4.5 model: invalidate predicted-miss-count
     *  application-owned victims in uniformly random sets. */
    PaperInvalidateApp,
    /** As above but victims may be any line. */
    InvalidateAny,
    /** Replace victims with synthetic never-hit lines: full
     *  capacity displacement, no footprint reuse. */
    SyntheticInstall,
    /**
     * Footprint-faithful: install predicted-miss-count lines with
     * *real* addresses reservoir-sampled from the emulated
     * instruction stream (which the Machine iterates anyway for the
     * signature), so the skipped service both displaces other
     * content and keeps its own hot lines resident. Costs
     * O(predicted misses) per skipped interval — no timing models
     * involved.
     */
    Footprint,
};

/** Display name for reports. */
const char *pollutionPolicyName(PollutionPolicy policy);

/** Whole-machine configuration. */
struct MachineConfig
{
    HierarchyParams hier;
    CpuParams cpu;
    /** Timing model used for detailed portions. */
    DetailLevel level = DetailLevel::OooCache;
    /** Application-only simulation: OS services complete
     *  functionally in zero simulated time (the SimpleScalar-style
     *  baseline of Figs. 1-2). */
    bool appOnly = false;
    /** Master seed; everything stochastic derives from it. */
    std::uint64_t seed = 1;
    /** Keep a per-interval log of OS services (Figs. 3-5). */
    bool recordIntervals = false;
    /**
     * Cache-pollution model for predicted OS intervals (see
     * DESIGN.md and the abl4 bench).
     */
    PollutionPolicy pollutionPolicy = PollutionPolicy::Footprint;
    /**
     * Keep updating the branch predictor from emulated OS-service
     * branches. The (pc, direction) stream is identical in
     * emulation and detailed simulation, so this reproduces the
     * full run's predictor state exactly at table-update cost — it
     * models the OS's pollution of app branch-prediction state,
     * which the cache-only pollution model misses.
     */
    bool bpWarming = true;
    /**
     * User-mode instructions fetched per workload block. The block
     * path amortizes the per-op virtual step() and interrupt polls
     * over whole compute bursts and is simulation-outcome-identical
     * for every value (blocks never cross a syscall, warm-up
     * boundary or interrupt-delivery point). 1 selects the legacy
     * one-op-at-a-time loop — kept as the microbench comparison
     * point. Clamped to [1, 256].
     */
    std::uint32_t blockOps = 256;
};

/** One logged OS-service interval (recordIntervals mode). */
struct IntervalRecord
{
    ServiceType type = ServiceType::SysRead;
    std::uint64_t invocation = 0;  //!< per-type index, post-warmup
    InstCount insts = 0;
    bool detailed = false;
    Cycles cycles = 0;            //!< simulated or predicted
    HierarchyCounts mem;          //!< simulated or predicted

    double
    ipc() const
    {
        return cycles ? static_cast<double>(insts) /
                            static_cast<double>(cycles)
                      : 0.0;
    }
};

/** Per-service aggregate of a run. */
struct ServiceTotals
{
    std::uint64_t invocations = 0;
    std::uint64_t simulated = 0;   //!< fully simulated (learning)
    std::uint64_t predicted = 0;   //!< emulated + predicted
    InstCount insts = 0;
    Cycles cycles = 0;             //!< simulated + predicted cycles
};

/** Whole-run totals. */
struct RunTotals
{
    InstCount appInsts = 0;
    InstCount osInsts = 0;
    /** Of osInsts, those executed in emulation (prediction
     *  periods) — the X of the paper's Eq. 10. */
    InstCount osPredInsts = 0;
    Cycles appCycles = 0;
    Cycles osSimCycles = 0;    //!< from detailed OS intervals
    Cycles osPredCycles = 0;   //!< from predicted OS intervals
    std::uint64_t osInvocations = 0;
    std::uint64_t osSimulated = 0;
    std::uint64_t osPredicted = 0;
    /** Measured memory-system counters (detailed portions). */
    HierarchyCounts measuredMem;
    /** Predicted memory-system counters (emulated OS intervals). */
    HierarchyCounts predictedMem;
    std::array<ServiceTotals, numServiceTypes> perService{};

    /** Total simulated time: app + simulated OS + predicted OS. */
    Cycles
    totalCycles() const
    {
        return appCycles + osSimCycles + osPredCycles;
    }

    /** Total retired instructions (app + OS). */
    InstCount totalInsts() const { return appInsts + osInsts; }

    /** Combined IPC. */
    double
    ipc() const
    {
        Cycles c = totalCycles();
        return c ? static_cast<double>(totalInsts()) /
                       static_cast<double>(c)
                 : 0.0;
    }

    /** Fraction of instructions executed in kernel mode. */
    double
    osInstFraction() const
    {
        InstCount t = totalInsts();
        return t ? static_cast<double>(osInsts) /
                       static_cast<double>(t)
                 : 0.0;
    }

    /** Prediction coverage: fraction of OS invocations skipped. */
    double
    coverage() const
    {
        return osInvocations
                   ? static_cast<double>(osPredicted) /
                         static_cast<double>(osInvocations)
                   : 0.0;
    }

    /** Combined (measured + predicted) memory counters. */
    HierarchyCounts
    combinedMem() const
    {
        HierarchyCounts c = measuredMem;
        c += predictedMem;
        return c;
    }
};

/**
 * The simulator. Construct with a config, a workload and a kernel;
 * optionally attach a ServiceController; call run().
 */
class Machine
{
  public:
    Machine(const MachineConfig &config,
            std::unique_ptr<UserProgram> workload,
            std::unique_ptr<KernelIface> kernel);

    /** Attach (or detach, with nullptr) the acceleration
     *  controller. Not owned; must outlive the run. */
    void setController(ServiceController *controller);

    /**
     * Attach (or detach, with nullptr) a telemetry sink. Not owned;
     * must outlive the run. The machine registers its own
     * instruments under "machine", publishes per-level cache
     * statistics under "mem.<level>" when run() returns, drives
     * the tracer's clock with the retired-instruction count (the
     * only clock that is identical across thread counts), and
     * hands the accuracy ledger the end-of-run cycle totals it
     * needs to turn per-cluster error into an error budget. Purely
     * observational: attaching changes no simulated outcome.
     */
    void setTelemetry(obs::Telemetry *telemetry);

    /**
     * Attach (or detach, with nullptr) a Phase-1 interval profiler.
     * Not owned; must outlive the run. While attached, the run loop
     * cuts retirement chunks at app-instruction interval edges and
     * feeds the profiler per-chunk tallies plus one note per
     * OS-service invocation; profiling restarts when warm-up ends
     * (mirroring the statistics reset). Purely observational.
     */
    void setIntervalProfiler(IntervalProfiler *profiler);

    /**
     * Attach (or detach, with nullptr) a Phase-2 sample plan. Not
     * owned; must outlive the run. Intervals the plan samples run
     * on the configured timing engine and are logged in
     * sampleLog(); the rest fast-forward in emulation with
     * functional cache/branch-predictor warming. OS services are
     * unaffected (kernel time is never sampled: it is either
     * simulated in detail or predicted by the controller).
     */
    void setSamplePlan(const SamplePlan *plan);

    /** Per-sampled-interval measurements (Phase-2 runs only). */
    const std::vector<IntervalSample> &sampleLog() const
    {
        return sampleLog_;
    }

    /**
     * Run until the workload completes or @p max_insts total
     * instructions retire (0 = no limit). Returns the totals, which
     * stay accessible via totals() afterwards.
     */
    const RunTotals &run(InstCount max_insts = 0);

    const RunTotals &totals() const { return totals_; }

    /** Per-interval log (only populated with recordIntervals). */
    const std::vector<IntervalRecord> &intervals() const
    {
        return intervals_;
    }

    MemoryHierarchy &hierarchy() { return hier; }
    const MachineConfig &config() const { return config_; }
    const GshareBp &branchPredictor() const { return bp; }
    UserProgram &workload() { return *workload_; }
    KernelIface &kernel() { return *kernel_; }

  private:
    /**
     * Tag type standing in for "no timing model": the run loop is
     * instantiated once per concrete engine (InOrderCpu, OooCpu,
     * EmulateEngine), so the per-instruction path calls the timing
     * model directly — inlineable, no virtual dispatch — and the
     * Emulate instantiation compiles the timing calls out entirely.
     */
    struct EmulateEngine
    {
    };

    /** Upper bound on ops per fetched block (stack buffer size). */
    static constexpr std::size_t kMaxBlockOps = 256;

    /** The run loop, devirtualized over the engine type. */
    template <class EngineT>
    const RunTotals &runLoop(EngineT *eng, InstCount max_insts);

    /** Run one complete OS-service interval. */
    template <class EngineT>
    void runServiceT(EngineT *eng, const ServiceRequest &req);

    /** Deliver all interrupts due at the current instruction count. */
    template <class EngineT>
    void deliverInterruptsT(EngineT *eng);

    /** Drain the engine and credit cycles to @p owner. */
    template <class EngineT>
    void drainIntoT(EngineT *eng, Owner owner);

    /**
     * Functionally warm caches and the branch predictor with one
     * fast-forwarded app op: the same state-mutating accesses the
     * timing engines make, with the latency discarded.
     * @p fetch_line memoizes the last touched I-line.
     */
    void warmOp(const MicroOp &op, Addr &fetch_line);

    /** Record a machine-level trace event (no-op unattached). */
    void
    trace(obs::TraceEventKind kind, std::uint8_t service,
          std::uint64_t a, std::uint64_t b)
    {
        if (telemetry_)
            telemetry_->tracer.record(kind, service, a, b);
    }

    /** Copy final per-level cache statistics into the registry. */
    void publishCacheStats();

    MachineConfig config_;
    std::unique_ptr<UserProgram> workload_;
    std::unique_ptr<KernelIface> kernel_;
    ServiceController *controller = nullptr;

    MemoryHierarchy hier;
    GshareBp bp;
    InOrderCpu inorder;
    InOrderCpu inorderNoCache;
    OooCpu ooo;
    OooCpu oooNoCache;

    RunTotals totals_;
    std::vector<IntervalRecord> intervals_;
    IntervalProfiler *profiler_ = nullptr;
    const SamplePlan *samplePlan_ = nullptr;
    std::vector<IntervalSample> sampleLog_;
    std::array<std::uint64_t, numServiceTypes> invocationIndex{};
    std::uint64_t serviceSeq = 0;  //!< global invocation counter
    ServiceResult lastServiceResult;
    bool warmupDone = false;
    bool running = false;

    /** Footprint-pollution reservoirs (reused across intervals). */
    Pcg32 pollutionRng;
    std::vector<Addr> dataSample;
    std::vector<Addr> codeSample;

    // Telemetry (null/cached-pointer scheme: see obs/telemetry.hh).
    obs::Telemetry *telemetry_ = nullptr;
    obs::Counter *cServicesDetailed_ = nullptr;
    obs::Counter *cServicesPredicted_ = nullptr;
    obs::Counter *cPollutionRequested_ = nullptr;
    obs::Counter *cPollutionAffected_ = nullptr;
    obs::Counter *cFootprintFills_ = nullptr;
    obs::Counter *cIntervalsSampled_ = nullptr;
    obs::Counter *cSampleDetailedInsts_ = nullptr;
    obs::Counter *cSampleFfInsts_ = nullptr;
    obs::Histogram *hServiceInsts_ = nullptr;
};

} // namespace osp

#endif // OSP_SIM_MACHINE_HH
