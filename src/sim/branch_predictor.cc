#include "branch_predictor.hh"

#include "util/logging.hh"

namespace osp
{

GshareBp::GshareBp(std::uint32_t history_bits)
    : historyBits(history_bits)
{
    if (history_bits == 0 || history_bits > 24)
        osp_fatal("GshareBp: history bits must be in [1, 24]");
    mask = (1u << historyBits) - 1;
    counters.assign(1u << historyBits, 1);  // weakly not-taken
}

std::uint32_t
GshareBp::index(Addr pc) const
{
    return (static_cast<std::uint32_t>(pc >> 2) ^ history) & mask;
}

bool
GshareBp::predict(Addr pc) const
{
    return counters[index(pc)] >= 2;
}

bool
GshareBp::predictAndUpdate(Addr pc, bool taken)
{
    std::uint32_t idx = index(pc);
    bool prediction = counters[idx] >= 2;
    bool correct = (prediction == taken);

    ++lookups_;
    if (!correct)
        ++mispredicts_;

    if (taken && counters[idx] < 3)
        ++counters[idx];
    else if (!taken && counters[idx] > 0)
        --counters[idx];

    history = ((history << 1) | (taken ? 1u : 0u)) & mask;
    return correct;
}

void
GshareBp::reset()
{
    counters.assign(counters.size(), 1);
    history = 0;
    lookups_ = 0;
    mispredicts_ = 0;
}

} // namespace osp
