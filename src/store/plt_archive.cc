#include "plt_archive.hh"

#include "util/hash.hh"

namespace osp::store
{

namespace
{
constexpr std::string_view pltPrefix = "plt/";
}

std::string
PltArchive::key(std::string_view workload)
{
    std::string k(pltPrefix);
    k.append(workload);
    return k;
}

void
PltArchive::save(std::string_view workload, std::string_view profile)
{
    WriteTx tx = store_.beginWrite();
    tx.put(key(workload), profile);
    tx.commit();
}

std::optional<std::string>
PltArchive::load(std::string_view workload) const
{
    return store_.beginRead().get(key(workload));
}

std::vector<PltArchiveEntry>
PltArchive::list() const
{
    std::vector<PltArchiveEntry> entries;
    store_.beginRead().scan(
        pltPrefix,
        [&](std::string_view k, std::string_view v) {
            PltArchiveEntry e;
            e.workload = std::string(k.substr(pltPrefix.size()));
            e.profileHash = stableHash64(v);
            e.bytes = v.size();
            entries.push_back(std::move(e));
            return true;
        });
    return entries;
}

bool
PltArchive::remove(std::string_view workload)
{
    WriteTx tx = store_.beginWrite();
    bool erased = tx.erase(key(workload));
    tx.commit();
    return erased;
}

} // namespace osp::store
