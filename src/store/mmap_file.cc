#include "mmap_file.hh"

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include <fcntl.h>
#include <sys/file.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

namespace osp::store
{

namespace
{

[[noreturn]] void
throwErrno(const std::string &what, const std::string &path)
{
    throw std::runtime_error("store: " + what + " '" + path +
                             "': " + std::strerror(errno));
}

} // namespace

std::uint32_t
osDefaultPageSize()
{
    static const std::uint32_t page_size = []() -> std::uint32_t {
        long sz = ::sysconf(_SC_PAGE_SIZE);
        if (sz <= 0)
            return 4096;
        return static_cast<std::uint32_t>(sz);
    }();
    return page_size;
}

MappedView::~MappedView()
{
    if (base_ && length_)
        ::munmap(base_, length_);
}

MmapFile::MmapFile(const std::string &path, bool read_only,
                   std::size_t min_length)
    : path_(path), readOnly_(read_only)
{
    int flags = read_only ? O_RDONLY : (O_RDWR | O_CREAT);
    fd_ = ::open(path.c_str(), flags, 0644);
    if (fd_ < 0)
        throwErrno("cannot open", path);

    struct stat st{};
    if (::fstat(fd_, &st) != 0) {
        ::close(fd_);
        throwErrno("cannot stat", path);
    }
    length_ = static_cast<std::size_t>(st.st_size);

    if (!read_only && length_ < min_length) {
        if (::ftruncate(fd_, static_cast<off_t>(min_length)) != 0) {
            ::close(fd_);
            throwErrno("cannot extend", path);
        }
        length_ = min_length;
    }
    if (length_ == 0) {
        if (read_only)
            throw std::runtime_error("store: empty file '" + path +
                                     "'");
        // Mapping a zero-length file is an error; the store always
        // passes a min_length when creating.
        throw std::runtime_error(
            "store: zero-length mapping requested for '" + path +
            "'");
    }
    map();
}

MmapFile::~MmapFile()
{
    view_.reset();
    if (fd_ >= 0)
        ::close(fd_);
}

void
MmapFile::map()
{
    int prot = PROT_READ | (readOnly_ ? 0 : PROT_WRITE);
    void *base = ::mmap(nullptr, length_, prot, MAP_SHARED, fd_, 0);
    if (base == MAP_FAILED)
        throwErrno("cannot mmap", path_);
    view_ = std::make_shared<MappedView>(base, length_);
}

void
MmapFile::grow(std::size_t new_length)
{
    if (readOnly_)
        throw std::runtime_error("store: grow on read-only '" +
                                 path_ + "'");
    if (new_length <= length_)
        return;
    if (::ftruncate(fd_, static_cast<off_t>(new_length)) != 0)
        throwErrno("cannot extend", path_);
    length_ = new_length;
    map();  // publishes the new view; old views stay mapped
}

bool
MmapFile::refresh()
{
    struct stat st{};
    if (::fstat(fd_, &st) != 0)
        throwErrno("cannot stat", path_);
    auto disk = static_cast<std::size_t>(st.st_size);
    if (disk <= length_)
        return false;
    length_ = disk;
    map();  // publishes the longer view; old views stay mapped
    return true;
}

void
MmapFile::sync(std::size_t offset, std::size_t len)
{
    if (readOnly_ || len == 0)
        return;
    // msync requires a page-aligned address: round the range out.
    std::size_t page = osDefaultPageSize();
    std::size_t begin = offset - offset % page;
    std::size_t end = offset + len;
    if (end > length_)
        end = length_;
    if (::msync(view_->data() + begin, end - begin, MS_SYNC) != 0)
        throwErrno("cannot msync", path_);
}

// --- FileLock --------------------------------------------------------

FileLock::FileLock(const std::string &path) : path_(path)
{
    fd_ = ::open(path.c_str(), O_RDWR | O_CREAT | O_CLOEXEC, 0644);
    if (fd_ < 0)
        throwErrno("cannot open lock file", path);
}

FileLock::~FileLock()
{
    unlock();
    if (fd_ >= 0)
        ::close(fd_);
}

bool
FileLock::tryLock(const std::string &hint, long wait_ms)
{
    if (held_)
        return true;
    auto deadline = std::chrono::steady_clock::now() +
                    std::chrono::milliseconds(wait_ms);
    long backoff_ms = 1;
    for (;;) {
        if (::flock(fd_, LOCK_EX | LOCK_NB) == 0)
            break;
        if (errno != EWOULDBLOCK && errno != EINTR)
            throwErrno("cannot flock", path_);
        if (wait_ms <= 0 ||
            std::chrono::steady_clock::now() >= deadline)
            return false;
        std::this_thread::sleep_for(
            std::chrono::milliseconds(backoff_ms));
        backoff_ms = std::min<long>(backoff_ms * 2, 50);
    }
    held_ = true;

    std::string line = "pid " + std::to_string(::getpid()) + " (" +
                       hint + ")\n";
    // Best effort: a failed hint write must not fail the lock.
    if (::ftruncate(fd_, 0) == 0) {
        ssize_t n [[maybe_unused]] =
            ::pwrite(fd_, line.data(), line.size(), 0);
    }
    return true;
}

void
FileLock::unlock()
{
    if (!held_)
        return;
    ::flock(fd_, LOCK_UN);
    held_ = false;
}

std::string
FileLock::holderHint() const
{
    char buf[256];
    ssize_t n = ::pread(fd_, buf, sizeof(buf) - 1, 0);
    if (n <= 0)
        return "";
    std::string hint(buf, static_cast<std::size_t>(n));
    while (!hint.empty() &&
           (hint.back() == '\n' || hint.back() == '\r'))
        hint.pop_back();
    return hint;
}

} // namespace osp::store
