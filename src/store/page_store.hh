/**
 * @file
 * A page-oriented, mmap-backed, crash-safe key-value store — the
 * persistence layer behind cross-run PLT reuse and incremental
 * sweeps (the boltdb design, cut down to this repo's needs).
 *
 * File format (all integers little-endian):
 *
 *  - The file is an array of fixed-size pages; the page size is the
 *    OS VM page size at creation time and is recorded in the meta,
 *    so a file opens correctly on machines with a different VM page
 *    size.
 *  - Every allocated page starts with a 16-byte PageHeader {id,
 *    flags, count, overflow}; `overflow` is the number of extra
 *    contiguous pages forming one logical run (large values, the
 *    root directory, the freelist).
 *  - Pages 0 and 1 are two alternating meta pages. A meta carries
 *    {magic, version, pageSize, root, freelist, numPages, txid,
 *    checksum}; the checksum is 64-bit FNV-1a over the preceding
 *    meta bytes (util/hash.hh — reproduced by
 *    tools/check_store.py). Commit N writes meta slot N%2, so a
 *    torn meta write always leaves the previous commit's meta
 *    intact: open picks the valid meta with the larger txid.
 *  - The key space is one two-level copy-on-write B+tree: a root
 *    directory run listing (first key, leaf page) pairs in key
 *    order, and single-page leaves of sorted {key, value} records.
 *    Values too large to inline live in overflow runs referenced by
 *    the record.
 *  - The freelist run lists reusable page ids. Pages freed by a
 *    commit stay *pending* — unavailable for reuse — until every
 *    reader that could still reference them has finished; they are
 *    written into the on-disk freelist immediately, which is safe
 *    because a crash also terminates those readers.
 *
 * Transactions: single-writer (a mutex serializes WriteTx),
 * many-reader. A write commit never modifies a page any committed
 * tree references — dirty leaves, the root and the freelist are
 * rewritten to fresh pages — so ReadTx is a true snapshot: it pins
 * the root it started from (plus the mmap view, see mmap_file.hh)
 * and is completely isolated from concurrent commits. Durability
 * ordering is data-pages msync, then meta write, then meta msync;
 * killing the process between any two steps recovers to the
 * previous commit.
 *
 * Multi-process arbitration (StoreOptions): every store has a
 * sidecar lockfile "<path>.lock" (see FileLock in mmap_file.hh).
 *
 *  - *Exclusive* (default): a read-write open acquires the lock
 *    for the store's whole lifetime, so a second read-write open —
 *    from another process or another handle in this one — fails
 *    fast with a diagnostic naming the holder instead of silently
 *    corrupting the file (StoreOptions::lockWaitMs bounds an
 *    optional wait). Read-only opens take no lock; they are
 *    offline-inspection tools.
 *  - *Shared* (worker mode): the open does not keep the lock.
 *    Instead EVERY transaction — read and write — holds it from
 *    begin to destruction, globally serializing transactions
 *    across all sharing processes, and re-reads the meta pages
 *    (plus freelist and mapping length) at begin so each
 *    transaction starts from the newest committed tree. This is
 *    deliberately coarse: distributed sweep workers spend their
 *    time simulating *outside* transactions, so a global
 *    transaction gate costs them nothing while making cross-
 *    process reader/page-reuse races impossible by construction.
 *    Transactions cannot nest on one thread in this mode (the
 *    store throws rather than self-deadlocking).
 */

#ifndef OSP_STORE_PAGE_STORE_HH
#define OSP_STORE_PAGE_STORE_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "mmap_file.hh"
#include "obs/metrics.hh"

namespace osp::store
{

/** On-disk page types (PageHeader::flags). */
enum PageFlags : std::uint16_t
{
    PageMeta = 0x01,
    PageFreelist = 0x02,
    PageBranch = 0x04,
    PageLeaf = 0x08,
    PageOverflow = 0x10,
};

/** Fixed 16-byte header of every allocated page. */
struct PageHeader
{
    std::uint64_t id = 0;
    std::uint16_t flags = 0;
    std::uint16_t count = 0;     //!< leaf record count
    std::uint32_t overflow = 0;  //!< extra pages in this run
};

inline constexpr std::size_t pageHeaderSize = 16;
inline constexpr std::uint32_t storeMagic = 0x4F535044;  // "OSPD"
inline constexpr std::uint32_t storeVersion = 1;
/** Maximum accepted key length (values are unbounded). */
inline constexpr std::size_t maxKeySize = 1024;

/** Decoded meta page. */
struct Meta
{
    std::uint32_t magic = storeMagic;
    std::uint32_t version = storeVersion;
    std::uint32_t pageSize = 0;
    std::uint32_t reserved = 0;
    std::uint64_t root = 0;      //!< root run page id; 0 = empty
    std::uint64_t freelist = 0;  //!< freelist run page id; 0 = empty
    std::uint64_t numPages = 0;  //!< allocation high-water mark
    std::uint64_t txid = 0;
    std::uint64_t checksum = 0;  //!< FNV-1a of the fields above
};

/** Point-in-time store statistics (info()). */
struct StoreInfo
{
    std::uint32_t pageSize = 0;
    std::uint64_t txid = 0;
    std::uint64_t numPages = 0;
    std::uint64_t freePages = 0;
    std::uint64_t pendingPages = 0;
    std::uint64_t leafPages = 0;
    std::uint64_t rootRunPages = 0;
    std::uint64_t keys = 0;
    std::uint64_t fileBytes = 0;
};

/**
 * Cumulative self-profiling counters for one store handle. The store
 * is the claim executor's scaling bottleneck, so contention must be
 * measurable rather than guessed: every flock/gate acquisition
 * records how long it actually blocked (StoreOptions::lockWaitMs
 * only bounds the wait), and every commit records its wall time and
 * page traffic. Process-local — each handle profiles its own view of
 * the shared file; fleet-wide pictures come from merging the
 * per-worker exports (obs::MetricsSnapshot::merge).
 */
struct StoreProfile
{
    std::uint64_t lockAcquisitions = 0;  //!< successful gate/flock takes
    std::uint64_t lockWaitUsTotal = 0;   //!< total µs blocked on them
    std::uint64_t commitCount = 0;
    std::uint64_t commitUsTotal = 0;
    std::uint64_t pagesWrittenTotal = 0;  //!< COW pages across commits
    obs::Histogram lockWaitUs;       //!< µs blocked per acquisition
    obs::Histogram commitUs;         //!< µs per commit
    obs::Histogram commitCowPages;   //!< pages written per commit
    obs::Histogram commitLeafReads;  //!< B+tree leaves decoded per commit
};

class PageStore;

/**
 * A snapshot read transaction. Holds the mmap view and the root the
 * store had at begin; reads never block and never observe a later
 * commit. Destroying the object releases the snapshot (allowing
 * pages freed since to be reused).
 */
class ReadTx
{
  public:
    ~ReadTx();
    ReadTx(ReadTx &&other) noexcept;
    ReadTx &operator=(ReadTx &&) = delete;
    ReadTx(const ReadTx &) = delete;
    ReadTx &operator=(const ReadTx &) = delete;

    /** Value for @p key, or nullopt. */
    std::optional<std::string> get(std::string_view key) const;

    /**
     * Visit every (key, value) whose key starts with @p prefix, in
     * key order. Return false from @p fn to stop early.
     */
    void scan(std::string_view prefix,
              const std::function<bool(std::string_view,
                                       std::string_view)> &fn) const;

    /** Number of keys in the snapshot. */
    std::uint64_t size() const;

    std::uint64_t txid() const { return txid_; }

  private:
    friend class PageStore;
    ReadTx(PageStore *store, std::shared_ptr<MappedView> view,
           std::uint64_t root, std::uint64_t txid);

    PageStore *store_;
    std::shared_ptr<MappedView> view_;
    std::uint64_t root_;
    std::uint64_t txid_;
    bool gated_ = false;  //!< holds the shared-mode tx gate
};

/**
 * The (single) write transaction: stage puts/erases, then commit()
 * atomically or drop the object to roll back. Holds the store's
 * writer lock for its lifetime.
 */
class WriteTx
{
  public:
    ~WriteTx();
    WriteTx(WriteTx &&other) noexcept;
    WriteTx &operator=(WriteTx &&) = delete;
    WriteTx(const WriteTx &) = delete;
    WriteTx &operator=(const WriteTx &) = delete;

    /** Insert or replace. Throws on oversized keys. */
    void put(std::string_view key, std::string_view value);

    /** Remove @p key; false when absent. */
    bool erase(std::string_view key);

    /** Read through the transaction (sees staged writes). */
    std::optional<std::string> get(std::string_view key) const;

    /** scan() over the staged state, in key order. */
    void scan(std::string_view prefix,
              const std::function<bool(std::string_view,
                                       std::string_view)> &fn) const;

    /**
     * Write everything out with crash-safe ordering and publish the
     * new tree. Throws (leaving the committed state untouched) on
     * I/O errors or an armed fail point. The transaction is spent
     * afterwards.
     */
    void commit();

  private:
    friend class PageStore;
    explicit WriteTx(PageStore *store);

    struct Leaf
    {
        std::vector<std::pair<std::string, std::string>> records;
        bool dirty = false;
        /** Pages to free when this leaf is rewritten: its own page
         *  and its values' overflow runs, as (first page, count). */
        std::vector<std::pair<std::uint64_t, std::uint64_t>> owned;
    };

    /** Index of the leaf that should hold @p key. */
    std::size_t leafIndexFor(std::string_view key) const;
    /** Decode a leaf on first touch. */
    Leaf &loadLeaf(std::size_t index);
    const Leaf &loadLeaf(std::size_t index) const;

    PageStore *store_;
    std::unique_lock<std::mutex> writerLock_;
    std::shared_ptr<MappedView> view_;
    std::uint64_t baseTxid_ = 0;
    bool done_ = false;
    bool gated_ = false;  //!< holds the shared-mode tx gate

    /** (first key, page id) of every base-tree leaf, key order. */
    std::vector<std::pair<std::string, std::uint64_t>> rootIndex_;
    mutable std::map<std::size_t, Leaf> leaves_;
};

/** Open/creation options. */
struct StoreOptions
{
    bool readOnly = false;
    /** Page size for a newly created file; 0 = the OS VM page
     *  size. Existing files always use their recorded size. */
    std::uint32_t pageSize = 0;
    /**
     * Shared (multi-process worker) mode: the writer gate is held
     * per transaction instead of per open, and every transaction
     * refreshes from disk first. See the file comment.
     */
    bool shared = false;
    /**
     * Exclusive mode: how long a read-write open waits for the
     * writer gate before failing with the holder diagnostic.
     * 0 = fail immediately (the `sweep --store-wait` flag).
     */
    long lockWaitMs = 0;
    /**
     * Shared mode: how long a transaction waits for the gate. The
     * generous default covers commit-sized critical sections of
     * any realistic worker fleet; hitting it usually means an
     * *exclusive* handle holds the store open.
     */
    long txLockWaitMs = 60000;
};

/** See file comment. */
class PageStore
{
  public:
    /** Commit fail points (crash-safety tests). */
    enum class FailPoint
    {
        None,
        /** Throw after data pages are synced, before the meta page
         *  is written — models a kill mid-commit. */
        BeforeMetaWrite,
        /** Throw after the meta bytes are written but before they
         *  are synced (the meta may or may not survive a real
         *  crash; in-process state rolls back either way). */
        BeforeMetaSync,
    };

    /**
     * Open a store file, creating it when absent (unless
     * read-only). Throws std::runtime_error when the file exists
     * but no valid meta page is found (corruption is an error,
     * never a silent empty store).
     */
    static std::unique_ptr<PageStore>
    open(const std::string &path, const StoreOptions &options = {});

    ~PageStore();

    ReadTx beginRead();
    WriteTx beginWrite();

    StoreInfo info();

    /** Copy of the self-profiling state (thread-safe). */
    StoreProfile profile() const;

    const std::string &path() const { return file_->path(); }
    std::uint32_t pageSize() const { return meta_.pageSize; }
    bool shared() const { return shared_; }

    /** Arm a commit fail point (test seam; one-shot). */
    void setFailPoint(FailPoint fp) { failPoint_ = fp; }

  private:
    friend class ReadTx;
    friend class WriteTx;

    PageStore() = default;

    /** Raw page access on a view. */
    const unsigned char *pagePtr(const MappedView &view,
                                 std::uint64_t id) const;
    PageHeader readHeader(const MappedView &view,
                          std::uint64_t id) const;

    /** Decode the root directory run under @p root. */
    std::vector<std::pair<std::string, std::uint64_t>>
    decodeRoot(const MappedView &view, std::uint64_t root) const;

    /** Decode one leaf's records; fills @p owned with the leaf page
     *  and its overflow runs when non-null. */
    std::vector<std::pair<std::string, std::string>>
    decodeLeaf(const MappedView &view, std::uint64_t id,
               std::vector<std::pair<std::uint64_t, std::uint64_t>>
                   *owned) const;

    /** Read a record's value (inline or via its overflow run). */
    std::string readValue(const MappedView &view,
                          const unsigned char *rec,
                          std::size_t ksize) const;

    void loadFreelist();
    void unregisterReader(std::uint64_t txid);

    /** Shared mode: acquire/release the cross-process transaction
     *  gate (in-process queueing + the sidecar flock). acquire
     *  throws on same-thread nesting or gate timeout. */
    void acquireTxGate();
    void releaseTxGate();

    /** Shared mode, gate + stateMu_ held: remap if the file grew
     *  and adopt the newest committed meta/freelist from disk. */
    void refreshFromDisk();

    /** Allocate a run of @p n contiguous pages from the free list
     *  or the end of the file (no mapping change; commit grows the
     *  file afterwards). Caller holds stateMu_. */
    std::uint64_t allocRun(std::uint64_t n);

    /** Move pending pages whose freeing commit is now invisible to
     *  every reader into the free list. Caller holds stateMu_. */
    void promotePending();

    /** The committing half of WriteTx::commit(). */
    void commitTx(WriteTx &tx);

    /** Self-profiling recorders (thread-safe; see StoreProfile). */
    void recordLockWait(std::uint64_t us);
    void recordCommit(std::uint64_t us, std::uint64_t cow_pages,
                      std::uint64_t leaf_reads);

    std::unique_ptr<MmapFile> file_;
    Meta meta_;                     //!< last committed meta
    std::vector<std::uint64_t> free_;
    /** txid -> pages that commit freed (await reader drain). */
    std::map<std::uint64_t, std::vector<std::uint64_t>> pending_;
    std::multiset<std::uint64_t> readers_;
    std::uint64_t allocHigh_ = 0;   //!< next never-used page id

    std::mutex stateMu_;   //!< meta_/free_/pending_/readers_/view
    std::mutex writerMu_;  //!< serializes write transactions
    mutable std::mutex profileMu_;  //!< guards profile_
    StoreProfile profile_;
    FailPoint failPoint_ = FailPoint::None;

    /** The sidecar writer gate ("<path>.lock"). Exclusive mode
     *  holds it from open to close; shared mode per transaction. */
    std::unique_ptr<FileLock> gate_;
    bool shared_ = false;
    long txLockWaitMs_ = 0;
    /** In-process half of the shared-mode gate: queues threads
     *  before the flock and detects same-thread nesting. */
    std::mutex gateMu_;
    std::condition_variable gateCv_;
    bool gateHeld_ = false;
    std::thread::id gateOwner_;
};

/** Meta checksum as stored on disk (exposed for tools/tests). */
std::uint64_t metaChecksum(const Meta &meta);

} // namespace osp::store

#endif // OSP_STORE_PAGE_STORE_HH
