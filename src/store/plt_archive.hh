/**
 * @file
 * The PLT archive: a typed layer over PageStore that persists
 * learned per-service performance-lookup-table profiles across
 * simulator runs.
 *
 * A profile is the line-oriented "ospredict-profile v1" text that
 * Accelerator::saveState() emits — per-service cluster snapshots
 * (Welford stats for instructions, cycles, IPC and cache rates).
 * The archive keys profiles by workload name, so a later sweep can
 * warm-start every predictor for that workload and skip the online
 * learning phase entirely (the paper's cross-run reuse experiment,
 * bench/abl5_cross_run.cpp, done persistently).
 *
 * Warm-starting CHANGES simulated results — predictions begin at
 * invocation one instead of after the learning window — so the
 * sweep runner treats the profile text's stable hash as part of a
 * cell's identity (see driver/cell_cache): cells simulated with a
 * profile never alias cells simulated without one.
 *
 * Key layout inside the shared store:
 *     plt/<workload>            -> profile text
 * which keeps the namespace disjoint from the cell cache's
 * "cell/<hash>" keys.
 */

#ifndef OSP_STORE_PLT_ARCHIVE_HH
#define OSP_STORE_PLT_ARCHIVE_HH

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "page_store.hh"

namespace osp::store
{

/** One archived profile (listing view). */
struct PltArchiveEntry
{
    std::string workload;
    std::uint64_t profileHash = 0;  //!< stableHash64(profile text)
    std::size_t bytes = 0;
};

/**
 * Typed accessors for the "plt/" keyspace of a PageStore. Stateless;
 * every call runs its own transaction against @p store.
 */
class PltArchive
{
  public:
    explicit PltArchive(PageStore &store) : store_(store) {}

    /** Persist @p profile (Accelerator::saveState text) as the
     *  archived profile for @p workload, replacing any previous
     *  one. */
    void save(std::string_view workload, std::string_view profile);

    /** The archived profile for @p workload, or nullopt. */
    std::optional<std::string> load(std::string_view workload) const;

    /** Every archived profile, in workload order. */
    std::vector<PltArchiveEntry> list() const;

    /** Remove the profile for @p workload; false when absent. */
    bool remove(std::string_view workload);

    /** The store key that holds @p workload's profile. */
    static std::string key(std::string_view workload);

  private:
    PageStore &store_;
};

} // namespace osp::store

#endif // OSP_STORE_PLT_ARCHIVE_HH
