/**
 * @file
 * A growable memory-mapped file for the page store.
 *
 * Two properties the store needs drive the shape of this wrapper:
 *
 *  - *Readers keep their view.* A snapshot-isolated reader holds raw
 *    pointers into the mapping for its whole transaction. Growing
 *    the file therefore never munmap()s the old view: a new, larger
 *    mapping is created and published, while existing transactions
 *    keep a shared_ptr to the view they started with. Both views
 *    map the same file with MAP_SHARED, so pages written through
 *    the new view are coherent in the old one — but copy-on-write
 *    at the store layer guarantees a reader never looks at a page
 *    written after its transaction began.
 *  - *Durability is explicit.* Nothing is guaranteed on disk until
 *    sync() returns; the store orders data-page syncs before the
 *    meta-page sync to get its crash-safety.
 *
 * POSIX only (mmap/ftruncate/msync); the repo's CI targets are
 * Linux. The OS page-size query follows the usual sysconf idiom
 * with a 4 KB fallback.
 *
 * FileLock adds the multi-process arbitration primitive: an
 * flock(2)-held sidecar lockfile with bounded-backoff acquisition
 * and a human-readable holder hint, used by the page store both as
 * an open-lifetime writer gate (exclusive mode) and as a
 * per-transaction gate (shared worker mode). flock locks belong to
 * the open file description, so two opens of the same sidecar
 * conflict even within one process — which is exactly what makes
 * two PageStore handles in one process behave like two processes
 * in tests.
 */

#ifndef OSP_STORE_MMAP_FILE_HH
#define OSP_STORE_MMAP_FILE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace osp::store
{

/** The OS VM page size (sysconf), 4096 on query failure. */
std::uint32_t osDefaultPageSize();

/** One immutable mapping of the file at some length. */
class MappedView
{
  public:
    MappedView(void *base, std::size_t length)
        : base_(base), length_(length)
    {
    }
    ~MappedView();

    MappedView(const MappedView &) = delete;
    MappedView &operator=(const MappedView &) = delete;

    unsigned char *
    data() const
    {
        return static_cast<unsigned char *>(base_);
    }
    std::size_t length() const { return length_; }

  private:
    void *base_;
    std::size_t length_;
};

/** See file comment. */
class MmapFile
{
  public:
    /**
     * Open (creating if absent and not read-only) and map the file.
     * Throws std::runtime_error on any system-call failure.
     *
     * @param min_length grow the file to at least this many bytes
     *                   before mapping (ignored when read-only)
     */
    MmapFile(const std::string &path, bool read_only,
             std::size_t min_length = 0);
    ~MmapFile();

    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    /** The current (newest) view. Hold the returned shared_ptr for
     *  as long as pointers into it are live. */
    std::shared_ptr<MappedView> view() const { return view_; }

    /** Current file length in bytes. */
    std::size_t length() const { return length_; }

    bool readOnly() const { return readOnly_; }
    const std::string &path() const { return path_; }

    /**
     * Extend the file to @p new_length bytes and publish a new view
     * of the full length. Old views stay valid until their last
     * holder drops them. No-op when already at least that long.
     */
    void grow(std::size_t new_length);

    /**
     * Re-stat the file and, when another process has grown it,
     * publish a new full-length view (old views stay mapped, as in
     * grow()). Returns true when the mapping changed. The file
     * never shrinks, so a stale shorter view is the only case.
     */
    bool refresh();

    /** msync a byte range of the newest view to disk (MS_SYNC). */
    void sync(std::size_t offset, std::size_t len);

  private:
    void map();

    std::string path_;
    bool readOnly_;
    int fd_ = -1;
    std::size_t length_ = 0;
    std::shared_ptr<MappedView> view_;
};

/**
 * An flock(2)-based advisory lock on a sidecar file (see file
 * comment). The sidecar is created on construction and never
 * deleted — unlinking a lockfile while another process holds its
 * own descriptor to it would split the lock namespace.
 *
 * While held, the sidecar's content is a one-line holder hint
 * ("pid 1234 (exclusive)") so a contending opener can say *who*
 * holds the store, not just that someone does. The hint is written
 * under the lock and read optimistically (diagnostics only).
 */
class FileLock
{
  public:
    /** Open (creating if absent) the sidecar at @p path. Throws
     *  std::runtime_error on system-call failure. */
    explicit FileLock(const std::string &path);
    ~FileLock();

    FileLock(const FileLock &) = delete;
    FileLock &operator=(const FileLock &) = delete;

    /**
     * Acquire the exclusive lock, retrying with bounded exponential
     * backoff (1 ms doubling to 50 ms) until roughly @p wait_ms
     * milliseconds have elapsed; 0 means a single non-blocking
     * attempt. On success the holder hint is rewritten to
     * "pid <pid> (<hint>)". Returns false on timeout.
     */
    bool tryLock(const std::string &hint, long wait_ms);

    /** Release the lock (no-op when not held). */
    void unlock();

    bool held() const { return held_; }
    const std::string &path() const { return path_; }

    /** Last hint written by any holder ("" when none). Read
     *  without the lock: a diagnostic, not a synchronization. */
    std::string holderHint() const;

  private:
    std::string path_;
    int fd_ = -1;
    bool held_ = false;
};

} // namespace osp::store

#endif // OSP_STORE_MMAP_FILE_HH
