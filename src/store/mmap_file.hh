/**
 * @file
 * A growable memory-mapped file for the page store.
 *
 * Two properties the store needs drive the shape of this wrapper:
 *
 *  - *Readers keep their view.* A snapshot-isolated reader holds raw
 *    pointers into the mapping for its whole transaction. Growing
 *    the file therefore never munmap()s the old view: a new, larger
 *    mapping is created and published, while existing transactions
 *    keep a shared_ptr to the view they started with. Both views
 *    map the same file with MAP_SHARED, so pages written through
 *    the new view are coherent in the old one — but copy-on-write
 *    at the store layer guarantees a reader never looks at a page
 *    written after its transaction began.
 *  - *Durability is explicit.* Nothing is guaranteed on disk until
 *    sync() returns; the store orders data-page syncs before the
 *    meta-page sync to get its crash-safety.
 *
 * POSIX only (mmap/ftruncate/msync); the repo's CI targets are
 * Linux. The OS page-size query follows the usual sysconf idiom
 * with a 4 KB fallback.
 */

#ifndef OSP_STORE_MMAP_FILE_HH
#define OSP_STORE_MMAP_FILE_HH

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

namespace osp::store
{

/** The OS VM page size (sysconf), 4096 on query failure. */
std::uint32_t osDefaultPageSize();

/** One immutable mapping of the file at some length. */
class MappedView
{
  public:
    MappedView(void *base, std::size_t length)
        : base_(base), length_(length)
    {
    }
    ~MappedView();

    MappedView(const MappedView &) = delete;
    MappedView &operator=(const MappedView &) = delete;

    unsigned char *
    data() const
    {
        return static_cast<unsigned char *>(base_);
    }
    std::size_t length() const { return length_; }

  private:
    void *base_;
    std::size_t length_;
};

/** See file comment. */
class MmapFile
{
  public:
    /**
     * Open (creating if absent and not read-only) and map the file.
     * Throws std::runtime_error on any system-call failure.
     *
     * @param min_length grow the file to at least this many bytes
     *                   before mapping (ignored when read-only)
     */
    MmapFile(const std::string &path, bool read_only,
             std::size_t min_length = 0);
    ~MmapFile();

    MmapFile(const MmapFile &) = delete;
    MmapFile &operator=(const MmapFile &) = delete;

    /** The current (newest) view. Hold the returned shared_ptr for
     *  as long as pointers into it are live. */
    std::shared_ptr<MappedView> view() const { return view_; }

    /** Current file length in bytes. */
    std::size_t length() const { return length_; }

    bool readOnly() const { return readOnly_; }
    const std::string &path() const { return path_; }

    /**
     * Extend the file to @p new_length bytes and publish a new view
     * of the full length. Old views stay valid until their last
     * holder drops them. No-op when already at least that long.
     */
    void grow(std::size_t new_length);

    /** msync a byte range of the newest view to disk (MS_SYNC). */
    void sync(std::size_t offset, std::size_t len);

  private:
    void map();

    std::string path_;
    bool readOnly_;
    int fd_ = -1;
    std::size_t length_ = 0;
    std::shared_ptr<MappedView> view_;
};

} // namespace osp::store

#endif // OSP_STORE_MMAP_FILE_HH
